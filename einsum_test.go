package sparta

import (
	"math"
	"strings"
	"testing"
)

func TestEinsumMatchesContract(t *testing.T) {
	x := Random([]uint64{5, 6, 4, 3}, 60, 1)
	y := Random([]uint64{4, 3, 5, 5}, 60, 2)
	want, _, err := Contract(x, y, []int{2, 3}, []int{0, 1}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := Einsum("abef,efcd->abcd", x, y, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !got.Equal(want) {
		t.Fatal("einsum result differs from explicit contraction")
	}
}

func TestEinsumOutputPermutation(t *testing.T) {
	x := Random([]uint64{5, 6, 4}, 40, 3)
	y := Random([]uint64{4, 7}, 20, 4)
	// Natural order would be a,b,c; request c,a,b.
	z, _, err := Einsum("abe,ec->cab", x, y, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Dims) != 3 || z.Dims[0] != 7 || z.Dims[1] != 5 || z.Dims[2] != 6 {
		t.Fatalf("permuted dims = %v", z.Dims)
	}
	if !z.IsSorted() {
		t.Fatal("permuted output not re-sorted")
	}
	// Cross-check one value against the natural order result.
	nat, _, err := Einsum("abe,ec->abc", x, y, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if nat.NNZ() != z.NNZ() {
		t.Fatalf("nnz %d vs %d", nat.NNZ(), z.NNZ())
	}
	ref := map[[3]uint32]float64{}
	for i := 0; i < nat.NNZ(); i++ {
		ref[[3]uint32{nat.Inds[0][i], nat.Inds[1][i], nat.Inds[2][i]}] = nat.Vals[i]
	}
	for i := 0; i < z.NNZ(); i++ {
		k := [3]uint32{z.Inds[1][i], z.Inds[2][i], z.Inds[0][i]} // (a,b,c) from (c,a,b)
		if math.Abs(ref[k]-z.Vals[i]) > 1e-12 {
			t.Fatalf("value mismatch at %v", k)
		}
	}
}

func TestEinsumScalar(t *testing.T) {
	x := Random([]uint64{4, 5}, 10, 5)
	y := Random([]uint64{4, 5}, 10, 6)
	z, _, err := Einsum("ab,ab->", x, y, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Dims) != 1 || z.Dims[0] != 1 {
		t.Fatalf("scalar dims = %v", z.Dims)
	}
}

func TestEinsumSpecErrors(t *testing.T) {
	x := Random([]uint64{4, 5}, 10, 7)
	y := Random([]uint64{5, 4}, 10, 8)
	bad := []string{
		"ab->ab",       // one input
		"ab,bc",        // no output
		"ab,bc->ac->x", // two arrows
		"a1,bc->ac",    // invalid label
		"aa,ab->ab",    // trace
		"ab,bc->abc",   // contracted label kept... b shared & in out
		"ab,cd->abcd",  // nothing contracted
		"ab,bc->a",     // free label c dropped
		"ab,bc->acx",   // unknown output label
		"abc,bc->a",    // X arity mismatch (tensor is order 2)
		"ab,bcd->acd",  // Y arity mismatch
		",ab->ab",      // empty operand
	}
	for _, spec := range bad {
		if _, _, err := Einsum(spec, x, y, Options{Algorithm: AlgSparta}); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestEinsumSpacesTolerated(t *testing.T) {
	x := Random([]uint64{4, 5}, 10, 9)
	y := Random([]uint64{5, 3}, 10, 10)
	if _, _, err := Einsum("ab, bc -> ac", x, y, Options{Algorithm: AlgSparta}); err != nil {
		t.Fatal(err)
	}
}

func TestEinsumDimMismatch(t *testing.T) {
	x := Random([]uint64{4, 5}, 10, 11)
	y := Random([]uint64{6, 3}, 10, 12)
	_, _, err := Einsum("ab,bc->ac", x, y, Options{Algorithm: AlgSparta})
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("dim mismatch not reported: %v", err)
	}
}
