package sparta

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestEvalChainMatchesManual(t *testing.T) {
	a := Random([]uint64{6, 5, 4}, 50, 31)
	b := Random([]uint64{4, 7}, 25, 32)
	c := Random([]uint64{7, 3}, 15, 33)
	aSnap, bSnap, cSnap := a.Clone(), b.Clone(), c.Clone()

	res, err := EvalChain([]ChainStep{
		{Out: "W", Spec: "abe,ec->abc", X: "A", Y: "B"},
		{Out: "Z", Spec: "abc,cd->abd", X: "W", Y: "C"},
	}, map[string]*Tensor{"A": a, "B": b, "C": c}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	w1, _, err := Einsum("abe,ec->abc", a, b, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Einsum("abc,cd->abd", w1, c, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tensors["Z"]
	if got.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d vs %d", got.NNZ(), want.NNZ())
	}
	for i := 0; i < got.NNZ(); i++ {
		if math.Abs(got.Vals[i]-want.Vals[i]) > 1e-9 {
			t.Fatalf("value mismatch at %d", i)
		}
	}
	// Inputs must be untouched (still original storage & values).
	if !a.Equal(aSnap) || !b.Equal(bSnap) || !c.Equal(cSnap) {
		t.Fatal("inputs mutated")
	}
	// All names resolvable.
	for _, name := range []string{"A", "B", "C", "W", "Z"} {
		if res.Tensors[name] == nil {
			t.Fatalf("%q missing from results", name)
		}
	}
}

func TestEvalChainSelfContraction(t *testing.T) {
	a := Random([]uint64{5, 4}, 18, 34)
	res, err := EvalChain([]ChainStep{
		{Out: "G", Spec: "ab,cb->ac", X: "A", Y: "A"},
		{Out: "n", Spec: "ac,ac->", X: "G", Y: "G"},
	}, map[string]*Tensor{"A": a}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	n := res.Tensors["n"]
	if n.Dims[0] != 1 {
		t.Fatalf("scalar dims = %v", n.Dims)
	}
	// The Gram-matrix norm must be positive for a non-trivial A.
	if n.NNZ() != 1 || n.Vals[0] <= 0 {
		t.Fatalf("|G|^2 = %v", n.Vals)
	}
}

func TestEvalChainErrors(t *testing.T) {
	a := Random([]uint64{4, 4}, 10, 35)
	in := map[string]*Tensor{"A": a}
	cases := []struct {
		name  string
		steps []ChainStep
	}{
		{"empty", nil},
		{"undefined X", []ChainStep{{Out: "Z", Spec: "ab,bc->ac", X: "Q", Y: "A"}}},
		{"undefined Y", []ChainStep{{Out: "Z", Spec: "ab,bc->ac", X: "A", Y: "Q"}}},
		{"redefines", []ChainStep{{Out: "A", Spec: "ab,bc->ac", X: "A", Y: "A"}}},
		{"no out", []ChainStep{{Spec: "ab,bc->ac", X: "A", Y: "A"}}},
		{"bad spec", []ChainStep{{Out: "Z", Spec: "nope", X: "A", Y: "A"}}},
	}
	for _, c := range cases {
		if _, err := EvalChain(c.steps, in, Options{Algorithm: AlgSparta}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := EvalChain([]ChainStep{{Out: "Z", Spec: "ab,bc->ac", X: "A", Y: "A"}},
		map[string]*Tensor{"A": nil}, Options{}); err == nil {
		t.Error("nil input accepted")
	}
}

// TestEvalChainInPlaceSafety: an intermediate used twice later must not be
// corrupted by the in-place optimization.
func TestEvalChainInPlaceSafety(t *testing.T) {
	a := Random([]uint64{5, 5}, 20, 36)
	res, err := EvalChain([]ChainStep{
		{Out: "W", Spec: "ab,bc->ac", X: "A", Y: "A"},
		{Out: "P", Spec: "ac,cd->ad", X: "W", Y: "A"}, // W used here...
		{Out: "Q", Spec: "ac,cd->ad", X: "W", Y: "A"}, // ...and here
	}, map[string]*Tensor{"A": a}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	p, q := res.Tensors["P"], res.Tensors["Q"]
	if !p.Equal(q) {
		t.Fatal("repeated use of an intermediate gave different results")
	}
}

// TestEvalChainReusesPreparedY: steps that contract different X tensors
// against the same Y must build its hash table once — the chain-local plan
// cache serves the later steps (Report.HtYReused).
func TestEvalChainReusesPreparedY(t *testing.T) {
	a := Random([]uint64{6, 5, 4}, 60, 41)
	b := Random([]uint64{7, 5, 4}, 55, 42)
	v := Random([]uint64{4, 8}, 30, 43)

	res, err := EvalChain([]ChainStep{
		{Out: "P", Spec: "abc,cd->abd", X: "A", Y: "V"},
		{Out: "Q", Spec: "xbc,cd->xbd", X: "B", Y: "V"},
		{Out: "R", Spec: "abd,xbd->ax", X: "P", Y: "Q"},
	}, map[string]*Tensor{"A": a, "B": b, "V": v}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0].HtYReused {
		t.Error("first use of V claims a reused HtY")
	}
	if !res.Reports[1].HtYReused {
		t.Error("second contraction against V rebuilt its HtY")
	}
	if res.Reports[2].HtYReused {
		t.Error("fresh intermediate Q claims a reused HtY")
	}

	// The reused path must give the same result as a fresh contraction.
	want, _, err := Einsum("xbc,cd->xbd", b, v, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tensors["Q"].Equal(want) {
		t.Error("reused-HtY step output differs from one-shot Einsum")
	}
}

// chainOracle evaluates a chain the maximally defensive way: every step
// runs one-shot Einsum on clones of its operands, so no aliasing or
// in-place optimization can possibly apply. EvalChain must match it.
func chainOracle(t *testing.T, steps []ChainStep, inputs map[string]*Tensor, opt Options) map[string]*Tensor {
	t.Helper()
	env := map[string]*Tensor{}
	for k, v := range inputs {
		env[k] = v.Clone()
	}
	for _, st := range steps {
		z, _, err := Einsum(st.Spec, env[st.X].Clone(), env[st.Y].Clone(), opt)
		if err != nil {
			t.Fatalf("oracle step %s: %v", st.Spec, err)
		}
		env[st.Out] = z
	}
	return env
}

// TestEvalChainAliasingEdges drives the in-place machinery through every
// aliasing shape at once — a step with X == Y, an input referenced by
// several steps, an intermediate later used as both X and Y of one step —
// and checks (a) all outputs match the clone-everything oracle and (b) no
// input tensor is ever mutated.
func TestEvalChainAliasingEdges(t *testing.T) {
	for _, kernel := range []Kernel{KernelFlat, KernelChained} {
		a := Random([]uint64{8, 8}, 40, 71)
		b := Random([]uint64{8, 8}, 40, 72)
		snapA, snapB := a.Clone(), b.Clone()
		steps := []ChainStep{
			// A appears in three steps; G's step has X == Y (same input).
			{Out: "G", Spec: "ab,cb->ac", X: "A", Y: "A"},
			{Out: "H", Spec: "ab,bc->ac", X: "A", Y: "B"},
			// G is used as both X and Y of one later step (self-square).
			{Out: "GG", Spec: "ac,cd->ad", X: "G", Y: "G"},
			// H used twice: once as X here, once as Y below.
			{Out: "P", Spec: "ad,dc->ac", X: "GG", Y: "H"},
			{Out: "Z", Spec: "ac,ac->", X: "P", Y: "H"},
		}
		inputs := map[string]*Tensor{"A": a, "B": b}
		opt := Options{Algorithm: AlgSparta, Kernel: kernel}
		res, err := EvalChain(steps, inputs, opt)
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		oracle := chainOracle(t, steps, inputs, opt)
		for _, name := range []string{"G", "H", "GG", "P", "Z"} {
			if !res.Tensors[name].Equal(oracle[name]) {
				t.Errorf("kernel %v: %q differs from clone-everything oracle", kernel, name)
			}
		}
		if !a.Equal(snapA) || !b.Equal(snapB) {
			t.Fatalf("kernel %v: inputs mutated by the chain", kernel)
		}
	}
}

// TestEvalChainAliasingWithPlanner runs the same aliasing chain under
// PlannerAuto: whatever the planner decides (this chain is unplannable —
// H is consumed twice), outputs and input immutability must hold.
func TestEvalChainAliasingWithPlanner(t *testing.T) {
	a := Random([]uint64{8, 8}, 40, 81)
	b := Random([]uint64{8, 8}, 40, 82)
	snapA, snapB := a.Clone(), b.Clone()
	steps := []ChainStep{
		{Out: "G", Spec: "ab,cb->ac", X: "A", Y: "A"},
		{Out: "H", Spec: "ab,bc->ac", X: "A", Y: "B"},
		{Out: "P", Spec: "ac,cd->ad", X: "G", Y: "H"},
		{Out: "Z", Spec: "ad,ad->", X: "P", Y: "P"},
	}
	inputs := map[string]*Tensor{"A": a, "B": b}
	opt := Options{Algorithm: AlgSparta, Planner: PlannerAuto}
	res, err := EvalChain(steps, inputs, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle := chainOracle(t, steps, inputs, Options{Algorithm: AlgSparta})
	if !res.Tensors["Z"].Equal(oracle["Z"]) {
		t.Error("planner-auto output differs from oracle")
	}
	if !a.Equal(snapA) || !b.Equal(snapB) {
		t.Fatal("inputs mutated")
	}
}

// TestEvalChainCtxCancel: a canceled context aborts the chain mid-way.
func TestEvalChainCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvalChainCtx(ctx, []ChainStep{
		{Out: "W", Spec: "ab,bc->ac", X: "A", Y: "B"},
	}, map[string]*Tensor{
		"A": Random([]uint64{20, 30}, 200, 1),
		"B": Random([]uint64{30, 25}, 200, 2),
	}, Options{Algorithm: AlgSparta})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
