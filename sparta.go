// Package sparta is a Go implementation of Sparta — high-performance,
// element-wise sparse tensor contraction on heterogeneous memory (Liu, Ren,
// Gioiosa, Li, Li; PPoPP 2021).
//
// The core operation is the sparse tensor contraction (SpTC)
//
//	Z = X ×_{cmodesX}^{cmodesY} Y
//
// between two COO sparse tensors of arbitrary order, computed in five
// stages (input processing, index search, accumulation, writeback, output
// sorting) with three selectable algorithms: the SpGEMM-style baseline
// SpTC-SPA, the intermediate COOY+HtA, and Sparta proper (hash-table Y +
// hash-table accumulator). All stages are parallel.
//
// The package also provides the paper's substrates: a block-sparse
// contraction engine (the ITensor-style baseline of §5.3), synthetic
// dataset generators standing in for the FROSTT and Hubbard-2D tensors, and
// a DRAM+Optane heterogeneous-memory simulator implementing the §4 data
// placement policies.
//
// Quick start:
//
//	x := sparta.Random([]uint64{100, 80, 60}, 5000, 1)
//	y := sparta.Random([]uint64{60, 50}, 2000, 2)
//	z, rep, err := sparta.Contract(x, y, []int{2}, []int{0}, sparta.Options{
//		Algorithm: sparta.AlgSparta,
//	})
package sparta

import (
	"context"
	"io"

	"sparta/internal/blocksparse"
	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/engine"
	"sparta/internal/gen"
	"sparta/internal/hetmem"
	"sparta/internal/hicoo"
	"sparta/internal/reorder"
)

// Tensor is a sparse tensor in coordinate (COO) format. See NewTensor,
// Random, GeneratePreset, and LoadTNS for constructors.
type Tensor = coo.Tensor

// NewTensor allocates an empty COO tensor with the given mode sizes.
func NewTensor(dims []uint64, capHint int) (*Tensor, error) { return coo.New(dims, capHint) }

// LoadTNS reads a tensor from a FROSTT-style .tns file.
func LoadTNS(path string) (*Tensor, error) { return coo.LoadTNS(path) }

// ReadTNS parses a .tns stream.
func ReadTNS(r io.Reader) (*Tensor, error) { return coo.ReadTNS(r) }

// LoadBin reads a tensor from the repository's fast binary format (either
// version; see Tensor.SaveBin for v1 and Tensor.SaveBinV2 for the
// mmap-ready v2 layout).
func LoadBin(path string) (*Tensor, error) { return coo.LoadBin(path) }

// ReadBin parses a binary tensor stream.
func ReadBin(r io.Reader) (*Tensor, error) { return coo.ReadBin(r) }

// Mapped is a read-only tensor view backed by an mmap'd v2 binary file:
// opening is O(1), pages fault in as they are touched, and the kernel can
// evict cold pages under memory pressure — the substrate of the out-of-core
// streaming tier.
type Mapped = coo.Mapped

// OpenMapped opens a binary tensor file as a Mapped view (zero-copy for v2
// files on little-endian unix hosts; a heap fallback elsewhere).
func OpenMapped(path string) (*Mapped, error) { return coo.OpenMapped(path) }

// XStream yields sorted X windows for ContractStream; see Mapped.Stream and
// NewTensorStream for the two producers.
type XStream = core.XStream

// StreamOptions configures ContractStream (Options plus the Z spill
// controls).
type StreamOptions = core.StreamOptions

// NewTensorStream adapts an in-memory X to an XStream: permute to
// contraction order, sort, and cut into sub-tensor-aligned windows.
func NewTensorStream(x *Tensor, cmodesX []int, windowNNZ, threads int, inPlace bool) (XStream, error) {
	return core.NewTensorStream(x, cmodesX, windowNNZ, threads, inPlace)
}

// ContractStream computes Z walking X window by window against a prepared
// Y, keeping only one window's working set hot; output is bitwise identical
// to the in-memory Sparta path.
func ContractStream(ctx context.Context, xs XStream, pr *PreparedY, opt StreamOptions) (*Tensor, *Report, error) {
	return core.ContractStream(ctx, xs, pr, opt)
}

// MergeRuns merges sorted, pairwise-disjoint output runs into one tensor
// (concatenation when the runs are already ascending — the streamed-driver
// case).
func MergeRuns(dims []uint64, runs []*Tensor) (*Tensor, error) { return coo.MergeRuns(dims, runs) }

// Algorithm selects the SpTC variant.
type Algorithm = core.Algorithm

// The three algorithms of the evaluation (numbers match the original
// artifact's EXPERIMENT_MODES).
const (
	AlgSPA      = core.AlgSPA      // SpTC-SPA baseline (Algorithm 1)
	AlgCOOHtA   = core.AlgCOOHtA   // COO Y + hash-table accumulator
	AlgTwoPhase = core.AlgTwoPhase // traditional symbolic+numeric two-phase SpTC
	AlgSparta   = core.AlgSparta   // Sparta (Algorithm 2)
)

// Kernel selects the hash-table layout family (HtY + HtA) used by the
// accumulating algorithms. Both produce identical outputs.
type Kernel = core.Kernel

const (
	KernelFlat    = core.KernelFlat    // open addressing, lock-free two-pass HtY build (default)
	KernelChained = core.KernelChained // the seed separate-chaining layout, kept for A/B
)

// Planner controls chain-level contraction-order planning: EvalChain with
// PlannerAuto reorders a chain's contractions when the fitted cost model
// prices a different tree below the written order (see PlanChain).
type Planner = core.Planner

const (
	PlannerOff  = core.PlannerOff  // execute chains exactly as written (default)
	PlannerAuto = core.PlannerAuto // reorder when the cost model predicts a win
)

// Options configures Contract.
type Options = core.Options

// Report carries stage timings, operation counters, and data-object sizes
// from one contraction.
type Report = core.Report

// Stage identifies one of the five SpTC stages.
type Stage = core.Stage

// The five stages.
const (
	StageInput  = core.StageInput
	StageSearch = core.StageSearch
	StageAccum  = core.StageAccum
	StageWrite  = core.StageWrite
	StageSort   = core.StageSort
	NumStages   = core.NumStages
)

// Contract computes Z = X ×_{cmodesX}^{cmodesY} Y: contract mode
// cmodesX[k] of X against cmodesY[k] of Y (paired mode sizes must match).
// Output modes are X's free modes in their original order followed by Y's
// free modes. A fully contracted result is a 1-mode, size-1 tensor.
//
// For best performance pass the larger tensor as Y (the paper's §3.3 rule:
// Y is the probed side, X drives the probes); ChooseY reports whether
// swapping is advisable.
func Contract(x, y *Tensor, cmodesX, cmodesY []int, opt Options) (*Tensor, *Report, error) {
	return core.Contract(x, y, cmodesX, cmodesY, opt)
}

// ContractCtx is Contract with cancellation: a canceled context or expired
// deadline stops the contraction at the next parallel chunk boundary and
// returns ctx.Err().
func ContractCtx(ctx context.Context, x, y *Tensor, cmodesX, cmodesY []int, opt Options) (*Tensor, *Report, error) {
	return core.ContractCtx(ctx, x, y, cmodesX, cmodesY, opt)
}

// ---------------------------------------------------------------------------
// Prepared contractions

// PreparedY is a contraction plan with the Y-side hash table already built
// (stage ① charged once): Prepare once, then Contract many X tensors
// against it. Safe for concurrent use and immune to later mutation of the
// source Y. Warm calls set Report.HtYReused.
type PreparedY = core.PreparedY

// Prepare builds the Y-side plan for contracting cmodesY of y under opt's
// algorithm settings (AlgSparta only — the baselines have no reusable Y
// structure).
func Prepare(y *Tensor, cmodesY []int, opt Options) (*PreparedY, error) {
	return core.PrepareY(y, cmodesY, opt)
}

// Engine caches prepared plans in an LRU keyed by a content fingerprint of
// Y plus the contract-mode spec, so repeated contractions against the same
// Y — chains, serving workloads — skip the HtY build automatically.
type Engine = engine.Engine

// EngineConfig sizes an Engine's plan cache.
type EngineConfig = engine.Config

// EngineStats is a snapshot of an Engine's cache counters.
type EngineStats = engine.Stats

// NewEngine builds a caching contraction engine.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// ChooseY reports whether the paper's "larger tensor is Y" rule suggests
// swapping the operands (note that swapping reorders the output modes to
// Y-free-then-X-free, so the caller must permute the result if mode order
// matters).
func ChooseY(x, y *Tensor) bool { return x.NNZ() > y.NNZ() }

// ---------------------------------------------------------------------------
// Generators

// Preset describes one of the paper's Table 3 datasets.
type Preset = gen.Preset

// Presets lists Table 3.
var Presets = gen.Presets

// FindPreset looks a preset up by name ("Chicago", "NIPS", ...).
func FindPreset(name string) (Preset, error) { return gen.FindPreset(name) }

// GeneratePreset synthesizes a preset scaled to about targetNNZ non-zeros,
// preserving order, relative mode sizes, and density.
func GeneratePreset(p Preset, targetNNZ int, seed int64) *Tensor {
	return gen.Generate(p, targetNNZ, seed)
}

// Random draws a uniform random sparse tensor (sorted, duplicate-free).
func Random(dims []uint64, nnz int, seed int64) *Tensor { return gen.Random(dims, nnz, seed) }

// RandomSkewed draws a sparse tensor with Zipf-like index skew alpha.
func RandomSkewed(dims []uint64, nnz int, alpha float64, seed int64) *Tensor {
	return gen.RandomSkewed(dims, nnz, alpha, seed)
}

// Workload is one dataset-contraction combination from the evaluation.
type Workload = gen.Workload

// ---------------------------------------------------------------------------
// Block-sparse baseline

// BlockTensor is a block-sparse tensor (sector-partitioned modes with dense
// non-zero blocks) — the representation ITensor-style libraries contract.
type BlockTensor = blocksparse.Tensor

// NewBlockTensor builds an empty block tensor from per-mode sector
// partitions.
func NewBlockTensor(parts [][]uint64) (*BlockTensor, error) { return blocksparse.New(parts) }

// BlockContract contracts two block-sparse tensors the block-wise way:
// matching dense block pairs multiplied with GEMM.
func BlockContract(x, y *BlockTensor, cmodesX, cmodesY []int, threads int) (*BlockTensor, error) {
	return blocksparse.Contract(x, y, cmodesX, cmodesY, threads)
}

// BlockContractCtx is BlockContract with cooperative cancellation: the
// block-pair GEMM loop checkpoints ctx between chunk claims and returns
// ctx.Err() once the context is done.
func BlockContractCtx(ctx context.Context, x, y *BlockTensor, cmodesX, cmodesY []int, threads int) (*BlockTensor, error) {
	return blocksparse.ContractCtx(ctx, x, y, cmodesX, cmodesY, threads)
}

// Hubbard generates the SpTC pair of Table 4 row id (1..10) at paper scale.
func Hubbard(id int, seed int64) (x, y *BlockTensor, spec gen.HubbardSpec, err error) {
	return gen.Hubbard(id, seed)
}

// HubbardCutoff is the element-wise truncation the paper applies to the
// Hubbard tensors (1e-8).
const HubbardCutoff = gen.HubbardCutoff

// ---------------------------------------------------------------------------
// Formats and reordering

// HiCOO is a block-compressed sparse tensor (hierarchical COO): one byte
// per mode per non-zero inside 2^bits-wide blocks. See CompressHiCOO.
type HiCOO = hicoo.Tensor

// CompressHiCOO converts a duplicate-free COO tensor to HiCOO with
// 2^bits-wide blocks (1 <= bits <= 8). Expand back with its ToCOO method.
func CompressHiCOO(t *Tensor, bits uint) (*HiCOO, error) { return hicoo.FromCOO(t, bits) }

// Relabeling is a per-mode index bijection from ReorderByFrequency.
type Relabeling = reorder.Relabeling

// ReorderByFrequency builds the frequency relabeling of t: on each mode,
// the index value with the most non-zeros becomes 0, and so on. Apply it
// with Relabeling.Apply (then re-Sort); restore labels with Undo.
func ReorderByFrequency(t *Tensor) *Relabeling { return reorder.ByFrequency(t) }

// ---------------------------------------------------------------------------
// Heterogeneous memory

// MemObject identifies one of the six placed data objects (X, Y, HtY, HtA,
// Zlocal, Z).
type MemObject = hetmem.Object

// MemProfile is the recorded access profile of a contraction, the input to
// the placement policies.
type MemProfile = hetmem.Profile

// MemPolicy simulates a placement strategy.
type MemPolicy = hetmem.Policy

// ProfileFromReport derives a memory access profile from a Sparta run.
func ProfileFromReport(rep *Report, orderX, orderY, orderZ int) *MemProfile {
	return hetmem.FromReport(rep, orderX, orderY, orderZ)
}

// MemPolicies returns the §5.5 policy lineup: Sparta static placement, IAL,
// Memory mode, Optane-only, DRAM-only.
func MemPolicies() []MemPolicy { return hetmem.AllPolicies() }
