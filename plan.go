package sparta

import (
	"sync"

	"sparta/internal/plan"
)

// PlannerModel is the contraction cost model the chain planner prices
// candidate orders with (nanoseconds per element, one coefficient per
// pipeline stage).
type PlannerModel = plan.Model

// FitPlannerModel fits a cost model to measured contraction reports:
// each stage coefficient becomes the median observed wall time per driving
// element. Stages with no usable sample keep the built-in default.
func FitPlannerModel(reports []*Report) PlannerModel {
	return plan.FitModel(reports)
}

// plannerObs is a bounded ring of recent contraction reports. EvalChain
// feeds it after every successful chain; the planner fits its cost model
// from it, so ordering decisions track this machine's measured per-stage
// costs rather than built-in constants.
var plannerObs struct {
	sync.Mutex
	reports []*Report
	next    int
}

const plannerFitWindow = 64

func observeReports(reps []*Report) {
	plannerObs.Lock()
	defer plannerObs.Unlock()
	for _, r := range reps {
		if r == nil {
			continue
		}
		if len(plannerObs.reports) < plannerFitWindow {
			plannerObs.reports = append(plannerObs.reports, r)
		} else {
			plannerObs.reports[plannerObs.next] = r
		}
		plannerObs.next = (plannerObs.next + 1) % plannerFitWindow
	}
}

// plannerModel returns the current fitted model (defaults until the first
// chain has run).
func plannerModel() plan.Model {
	plannerObs.Lock()
	defer plannerObs.Unlock()
	if len(plannerObs.reports) == 0 {
		return plan.DefaultModel()
	}
	return plan.FitModel(plannerObs.reports)
}

// PlanResult reports what the contraction-order planner decided for a
// chain. Steps always holds an executable chain: the reordered one when
// Planned is true, the input chain otherwise.
type PlanResult struct {
	Steps   []ChainStep
	Planned bool
	// Reason explains a Planned=false outcome ("written order is already
	// optimal under the model", "intermediate consumed more than once", …).
	Reason string
	// Order and NaiveOrder render the chosen and written contraction trees
	// as expressions over input names, e.g. "((A×B)×(C×D))".
	Order, NaiveOrder string
	// Model costs in nanoseconds; equal when not planned.
	NaiveCostNS, PlannedCostNS float64
	// StepOrders[i] and EstNNZ[i] are planned step i's subtree expression
	// and estimated output nnz (also surfaced per step on Report).
	StepOrders []string
	EstNNZ     []int
	// EstPeakNNZ / NaiveEstPeakNNZ are the largest estimated step outputs
	// of the planned and written trees.
	EstPeakNNZ, NaiveEstPeakNNZ int
	// Exhaustive is true when the subset DP searched every feasible tree
	// (chains of up to 8 input occurrences); larger networks use the
	// greedy fallback.
	Exhaustive bool
}

// PlanChain runs the cost-based contraction-order planner over a chain
// without executing it: per-tensor sparsity statistics (cached by content
// fingerprint) feed an output-size estimator, and a dynamic program over
// contraction trees picks the cheapest order under the fitted cost model.
// Chains the planner cannot reorder safely come back unchanged with
// Planned=false and a Reason — never an error; errors are reserved for
// internal failures.
//
// EvalChain with Options.Planner == PlannerAuto runs exactly this and
// executes the winning order.
func PlanChain(steps []ChainStep, inputs map[string]*Tensor, opt Options) (*PlanResult, error) {
	model := plannerModel()
	res, err := plan.PlanSteps(toPlanSteps(steps), inputs, plan.Config{
		Model:   &model,
		Threads: opt.Threads,
	})
	if err != nil {
		return nil, err
	}
	return &PlanResult{
		Steps:           fromPlanSteps(res.Steps),
		Planned:         res.Planned,
		Reason:          res.Reason,
		Order:           res.Order,
		NaiveOrder:      res.NaiveOrder,
		NaiveCostNS:     res.NaiveCostNS,
		PlannedCostNS:   res.PlannedCostNS,
		StepOrders:      res.StepOrders,
		EstNNZ:          res.EstNNZ,
		EstPeakNNZ:      res.EstPeakNNZ,
		NaiveEstPeakNNZ: res.NaiveEstPeakNNZ,
		Exhaustive:      res.Exhaustive,
	}, nil
}

func toPlanSteps(steps []ChainStep) []plan.Step {
	out := make([]plan.Step, len(steps))
	for i, st := range steps {
		out[i] = plan.Step{Out: st.Out, Spec: st.Spec, X: st.X, Y: st.Y}
	}
	return out
}

func fromPlanSteps(steps []plan.Step) []ChainStep {
	out := make([]ChainStep, len(steps))
	for i, st := range steps {
		out[i] = ChainStep{Out: st.Out, Spec: st.Spec, X: st.X, Y: st.Y}
	}
	return out
}
