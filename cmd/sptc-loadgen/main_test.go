package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sparta/internal/bench"
	"sparta/internal/obs"
)

// stubServer mimics the sptc-serve surface the load generator depends on —
// /healthz, PUT /tensors, POST /contract, /metrics with the RED histogram
// and cache counters — with a deterministic latency profile, so the whole
// client pipeline (open loop, scrape delta, quantile cross-check, report,
// -check gates) runs hermetically in-process.
type stubServer struct {
	reg  *obs.Registry
	mu   sync.Mutex
	seen map[string]bool // y names contracted at least once (plan cache stand-in)
	reqN int
}

func newStub() *stubServer {
	return &stubServer{reg: obs.NewRegistry(), seen: map[string]bool{}}
}

func (st *stubServer) handler() http.Handler {
	mux := obs.NewMux(st.reg)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("PUT /tensors/{name}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "{}")
	})
	mux.HandleFunc("POST /contract", func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		var req struct {
			Y string `json:"y"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		st.mu.Lock()
		hit := st.seen[req.Y]
		st.seen[req.Y] = true
		n := st.reqN
		st.reqN++
		st.mu.Unlock()
		outcome := "miss"
		if hit {
			outcome = "hit"
		}
		st.reg.Counter("sptc_engine_cache_total", "t", "outcome", outcome).Inc()
		// Latency profile: deterministic ramp 5..25ms, long enough that the
		// sleep dominates per-request client overhead even under -race.
		time.Sleep(time.Duration(5*(1+n%5)) * time.Millisecond)
		st.reg.Histogram("sptc_serve_request_seconds", "t", obs.LatencyBuckets,
			"route", "contract").Observe(time.Since(t0).Seconds())
		fmt.Fprintln(w, `{"nnz":1}`)
	})
	return mux
}

// TestLoadgenEndToEnd runs the full generator against the stub and checks
// the emitted BENCH_4.json: counts add up, the quantile cross-check
// machinery produces a complete agreement map, and the check passes. The
// agreement bound here is deliberately slack — client-side latency includes
// connection and scheduling overhead the stub's handler window never sees,
// which inflates disagreement on a loaded single-core CI box under -race;
// the tight ≤10% agreement contract is held by the real-server run that
// stamps the committed BENCH_4.json (make slo-baseline) and by the exact
// quantile round-trip tests in internal/bench.
func TestLoadgenEndToEnd(t *testing.T) {
	st := newStub()
	// Pre-observe nothing: the before-scrape must tolerate an absent family.
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_4.json")
	err := run(ts.URL, 60, 1500*time.Millisecond, 0.8, 2, 2, 100, 7, 0, out, "testcommit", true, 75)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.LoadReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("BENCH_4.json: %v", err)
	}
	if rep.Meta.Bench != "loadgen" || rep.Meta.Commit != "testcommit" || rep.Meta.Seed != 7 {
		t.Errorf("meta block: %+v", rep.Meta)
	}
	r := rep.Run
	if r.Requests == 0 || r.OK != r.Requests || r.Errors != 0 {
		t.Fatalf("run counts: %+v", r)
	}
	if r.Client.Count != uint64(r.OK) || r.Server.Count != uint64(r.OK) {
		t.Errorf("histogram counts: client %d server %d ok %d", r.Client.Count, r.Server.Count, r.OK)
	}
	// The stub sleeps 5-25ms; both views must land in a plausible range.
	if r.Client.P50 < 0.002 || r.Client.P99 > 0.5 {
		t.Errorf("client quantiles implausible: %+v", r.Client)
	}
	for q, g := range r.AgreementPct {
		if g > 75 {
			t.Errorf("%s disagreement %.1f%%", q, g)
		}
	}
	if len(r.AgreementPct) != 3 {
		t.Errorf("agreement map incomplete: %v", r.AgreementPct)
	}
	if r.CacheHits == 0 || r.CacheMisses == 0 {
		t.Errorf("cache traffic not observed: hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
	if r.CacheMisses != 3 {
		// 1 hot + 2 cold plans, each missing exactly once in the stub.
		t.Errorf("cache misses = %d, want 3 (one per distinct Y)", r.CacheMisses)
	}
}

// TestLoadgenCheckFailsOnErrors: a server that 500s must fail -check.
func TestLoadgenCheckFailsOnErrors(t *testing.T) {
	reg := obs.NewRegistry()
	mux := obs.NewMux(reg)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("PUT /tensors/{name}", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "{}") })
	mux.HandleFunc("POST /contract", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := run(ts.URL, 100, 200*time.Millisecond, 1, 1, 1, 100, 7, 0, "", "", true, 10)
	if err == nil {
		t.Fatal("check passed against a 500ing server")
	}
}
