// Command sptc-loadgen drives sptc-serve with open-loop load and reports
// whether the server's own telemetry agrees with what the client saw.
//
//	sptc-serve -addr :8080 &
//	sptc-loadgen -addr http://localhost:8080 -rps 30 -duration 30s \
//	    -hot-ratio 0.9 -cold-plans 4 -json BENCH_4.json
//
// Open-loop means arrivals fire at their scheduled times (start + i/RPS)
// regardless of how many requests are still outstanding — the generator
// never waits for the server, so overload shows up as queueing and sheds
// instead of silently slowing the offered rate (the coordinated-omission
// trap of closed-loop drivers).
//
// The tensor mix: a pool of X sides contracted against one hot Y (whose
// prepared HtY the plan cache retains) and -cold-plans alternative Y's,
// chosen per request with probability -hot-ratio for the hot plan. Cold
// picks rotate, so with enough cache entries they all eventually warm —
// the knob controls plan-cache pressure, not a fixed miss rate.
//
// Latency is measured twice: client-side into an HDR-style fixed-bucket
// histogram (obs.LatencyBuckets, the exact layout the server's RED
// histogram uses), and server-side by scraping /metrics before and after
// the run and diffing the cumulative bucket counts — so both quantile sets
// describe exactly this run's distribution and should agree to within a
// bucket's width. -check enforces that agreement (plus zero transport
// errors and a warm cache) with a nonzero exit for CI.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sparta/internal/bench"
	"sparta/internal/gen"
	"sparta/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "sptc-serve base URL")
		rps       = flag.Float64("rps", 20, "offered request rate (open loop)")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		hotRatio  = flag.Float64("hot-ratio", 0.9, "fraction of requests against the hot (cached) plan")
		coldPlans = flag.Int("cold-plans", 4, "number of alternative Y tensors rotated through cold requests")
		xPool     = flag.Int("x-pool", 4, "number of distinct X tensors cycled through requests")
		scale     = flag.Int("scale", 4000, "non-zeros per generated tensor")
		seed      = flag.Int64("seed", 1, "generator seed (tensors and mix schedule)")
		timeoutMS = flag.Int("timeout-ms", 0, "per-request server-side deadline (0 = none)")
		jsonOut   = flag.String("json", "", "write the BENCH_4.json report here ('' = stdout summary only)")
		commit    = flag.String("commit", "", "commit hash for the meta block (default: build-info VCS stamp)")
		check     = flag.Bool("check", false, "exit nonzero on transport errors, client/server quantile disagreement, or a cold cache")
		maxAgree  = flag.Float64("max-agreement-pct", 10, "largest allowed client/server quantile gap with -check")
	)
	flag.Parse()
	if err := run(*addr, *rps, *duration, *hotRatio, *coldPlans, *xPool, *scale,
		*seed, *timeoutMS, *jsonOut, *commit, *check, *maxAgree); err != nil {
		fmt.Fprintf(os.Stderr, "sptc-loadgen: %v\n", err)
		os.Exit(1)
	}
}

// result is one request's outcome as the client saw it.
type result struct {
	dur     time.Duration
	outcome string // "ok", "shed_inflight", "shed_memory", "timeout", "error"
	err     error
}

func run(addr string, rps float64, duration time.Duration, hotRatio float64,
	coldPlans, xPool, scale int, seed int64, timeoutMS int,
	jsonOut, commit string, check bool, maxAgree float64) error {
	if rps <= 0 {
		return fmt.Errorf("-rps must be positive")
	}
	if coldPlans < 1 && hotRatio < 1 {
		return fmt.Errorf("-cold-plans must be >= 1 when -hot-ratio < 1")
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	if err := waitHealthy(client, addr, 10*time.Second); err != nil {
		return err
	}

	// Upload the working set. X dims end in 50 and every Y starts with 50 so
	// one spec covers all pairs.
	const spec = "abc,cde->abde"
	rng := rand.New(rand.NewSource(seed))
	xNames := make([]string, xPool)
	for i := range xNames {
		xNames[i] = fmt.Sprintf("loadX%d", i)
		x := gen.Random([]uint64{40, 30, 50}, scale, rng.Int63())
		if err := upload(client, addr, xNames[i], x); err != nil {
			return err
		}
	}
	yNames := []string{"loadYhot"}
	for i := 0; i < coldPlans; i++ {
		yNames = append(yNames, fmt.Sprintf("loadYcold%d", i))
	}
	for _, name := range yNames {
		y := gen.Random([]uint64{50, 35, 20}, scale, rng.Int63())
		if err := upload(client, addr, name, y); err != nil {
			return err
		}
	}

	before, err := scrape(client, addr)
	if err != nil {
		return err
	}

	// Open loop: one goroutine per scheduled arrival; a collector folds the
	// results into the client histogram so no worker shares mutable state.
	results := make(chan result, 1024)
	var wg sync.WaitGroup
	var collected sync.WaitGroup
	hist := obs.NewHistShard(obs.LatencyBuckets)
	counts := map[string]int{}
	var firstErr error
	collected.Add(1)
	go func() {
		defer collected.Done()
		for r := range results {
			counts[r.outcome]++
			if r.outcome == "ok" {
				hist.Observe(r.dur.Seconds())
			} else if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		}
	}()

	start := time.Now()
	interval := time.Duration(float64(time.Second) / rps)
	n := 0
	for {
		at := start.Add(time.Duration(n) * interval)
		if at.Sub(start) >= duration {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		// Deterministic mix schedule: request n's Y depends only on (seed, n).
		mixRng := rand.New(rand.NewSource(seed + int64(n)*1_000_003))
		y := yNames[0]
		if hotRatio < 1 && mixRng.Float64() >= hotRatio {
			y = yNames[1+n%coldPlans]
		}
		x := xNames[n%len(xNames)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- fire(client, addr, x, y, spec, timeoutMS)
		}()
		n++
	}
	wg.Wait()
	wall := time.Since(start)
	close(results)
	collected.Wait()

	after, err := scrape(client, addr)
	if err != nil {
		return err
	}

	rep, err := report(commit, rps, wall, hotRatio, coldPlans, scale, seed,
		n, counts, hist, before, after)
	if err != nil {
		return err
	}
	printSummary(os.Stdout, rep, counts)
	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	if check {
		return checkRun(rep, firstErr, maxAgree)
	}
	return nil
}

func waitHealthy(client *http.Client, addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy: %v", addr, err)
			}
			return fmt.Errorf("server at %s not healthy", addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

type tensorIface interface{ WriteTNS(w io.Writer) error }

func upload(client *http.Client, addr, name string, t tensorIface) error {
	var buf bytes.Buffer
	if err := t.WriteTNS(&buf); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, addr+"/tensors/"+name, &buf)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("uploading %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("uploading %s: status %d: %s", name, resp.StatusCode, body)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// fire sends one contraction and classifies the reply. The wall includes
// reading the full response body — the latency a real client experiences.
func fire(client *http.Client, addr, x, y, spec string, timeoutMS int) result {
	body, _ := json.Marshal(map[string]interface{}{
		"x": x, "y": y, "spec": spec, "timeout_ms": timeoutMS,
	})
	t0 := time.Now()
	resp, err := client.Post(addr+"/contract", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{outcome: "error", err: err}
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	dur := time.Since(t0)
	switch {
	case resp.StatusCode == http.StatusOK:
		return result{dur: dur, outcome: "ok"}
	case resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(reply, []byte("inflight")):
		return result{dur: dur, outcome: "shed_inflight"}
	case resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(reply, []byte("budget")):
		return result{dur: dur, outcome: "shed_memory"}
	case resp.StatusCode == http.StatusGatewayTimeout:
		return result{dur: dur, outcome: "timeout"}
	default:
		return result{dur: dur, outcome: "error",
			err: fmt.Errorf("POST /contract: status %d: %s", resp.StatusCode, reply)}
	}
}

// metricsPage is one scrape: the raw text plus the parsed families this
// tool reads.
type metricsPage struct {
	hist  *bench.ScrapedHist
	shed  map[string]float64
	cache map[string]float64
}

func scrape(client *http.Client, addr string) (*metricsPage, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	text := string(buf)
	return &metricsPage{
		hist:  bench.ParseHistogram(text, "sptc_serve_request_seconds", map[string]string{"route": "contract"}),
		shed:  bench.ParseCounters(text, "sptc_serve_shed_total", "reason"),
		cache: bench.ParseCounters(text, "sptc_engine_cache_total", "outcome"),
	}, nil
}

func report(commit string, rps float64, wall time.Duration, hotRatio float64,
	coldPlans, scale int, seed int64, requests int, counts map[string]int,
	hist *obs.HistShard, before, after *metricsPage) (*bench.LoadReport, error) {
	run := bench.LoadRun{
		TargetRPS:   rps,
		DurationSec: wall.Seconds(),
		Requests:    requests,
		OK:          counts["ok"],
		Errors:      counts["error"],
		HotRatio:    hotRatio,
		ColdPlans:   coldPlans,
	}
	run.AchievedRPS = float64(run.OK) / wall.Seconds()

	// Shed breakdown from the server's own by-reason counters (delta over
	// the run), cross-checkable against the client's 503 classification.
	shed := map[string]int{}
	var shedTotal int
	for reason, v := range after.shed {
		d := int(v - before.shed[reason])
		if d > 0 {
			shed[reason] = d
			shedTotal += d
		}
	}
	if len(shed) > 0 {
		run.Shed = shed
	}
	if requests > 0 {
		run.ShedRate = float64(shedTotal) / float64(requests)
	}
	run.CacheHits = uint64(after.cache["hit"] - before.cache["hit"])
	run.CacheMisses = uint64(after.cache["miss"] - before.cache["miss"])

	// Client quantiles from the generator's own histogram.
	cCounts := hist.Counts()
	run.Client = bench.Quantiles{
		Count: hist.Count(),
		P50:   obs.QuantileFromBuckets(obs.LatencyBuckets, cCounts, 0.50),
		P95:   obs.QuantileFromBuckets(obs.LatencyBuckets, cCounts, 0.95),
		P99:   obs.QuantileFromBuckets(obs.LatencyBuckets, cCounts, 0.99),
	}

	// Server quantiles from the scrape delta. The server observes every
	// contract request (sheds included); restrict the comparison to runs
	// where the two populations coincide — the agreement map stays empty
	// otherwise and -check flags it only via its error/shed gates.
	if after.hist != nil {
		delta := after.hist.Delta(before.hist)
		if delta == nil {
			return nil, fmt.Errorf("server histogram changed shape mid-run (restart?)")
		}
		var total uint64
		for _, c := range delta {
			total += c
		}
		run.Server = bench.Quantiles{
			Count: total,
			P50:   obs.QuantileFromBuckets(after.hist.Bounds, delta, 0.50),
			P95:   obs.QuantileFromBuckets(after.hist.Bounds, delta, 0.95),
			P99:   obs.QuantileFromBuckets(after.hist.Bounds, delta, 0.99),
		}
		if run.Client.Count > 0 && total == run.Client.Count {
			run.AgreementPct = map[string]float64{
				"p50": bench.AgreementPct(run.Client.P50, run.Server.P50),
				"p95": bench.AgreementPct(run.Client.P95, run.Server.P95),
				"p99": bench.AgreementPct(run.Client.P99, run.Server.P99),
			}
		}
	}

	dataset := fmt.Sprintf("synthetic 3-mode pool (nnz=%d), spec abc,cde->abde, hot-ratio %.2f, %d cold plans",
		scale, hotRatio, coldPlans)
	return &bench.LoadReport{Meta: bench.LoadMeta(commit, dataset, seed, rps), Run: run}, nil
}

func printSummary(w io.Writer, rep *bench.LoadReport, counts map[string]int) {
	r := rep.Run
	fmt.Fprintf(w, "offered %.1f rps for %.1fs: %d requests, %d ok (%.1f rps achieved), %d errors, shed rate %.2f%%\n",
		r.TargetRPS, r.DurationSec, r.Requests, r.OK, r.AchievedRPS, r.Errors, 100*r.ShedRate)
	var outs []string
	for o := range counts {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		if o != "ok" {
			fmt.Fprintf(w, "  %-14s %d\n", o, counts[o])
		}
	}
	fmt.Fprintf(w, "client  p50 %s  p95 %s  p99 %s  (n=%d)\n",
		fmtDur(r.Client.P50), fmtDur(r.Client.P95), fmtDur(r.Client.P99), r.Client.Count)
	fmt.Fprintf(w, "server  p50 %s  p95 %s  p99 %s  (n=%d)\n",
		fmtDur(r.Server.P50), fmtDur(r.Server.P95), fmtDur(r.Server.P99), r.Server.Count)
	if len(r.AgreementPct) > 0 {
		fmt.Fprintf(w, "agreement: p50 %.1f%%  p95 %.1f%%  p99 %.1f%%\n",
			r.AgreementPct["p50"], r.AgreementPct["p95"], r.AgreementPct["p99"])
	}
	fmt.Fprintf(w, "plan cache over run: %d hits, %d misses\n", r.CacheHits, r.CacheMisses)
}

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// checkRun is the CI gate: a run is usable as a baseline or smoke signal
// only if the client saw no transport errors, both latency views agree,
// and the plan cache actually absorbed warm traffic.
func checkRun(rep *bench.LoadReport, firstErr error, maxAgree float64) error {
	r := rep.Run
	var problems []string
	if r.Errors > 0 {
		problems = append(problems, fmt.Sprintf("%d transport/server errors (first: %v)", r.Errors, firstErr))
	}
	if r.OK == 0 {
		problems = append(problems, "no successful requests")
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if g, ok := r.AgreementPct[q]; ok && g > maxAgree {
			problems = append(problems, fmt.Sprintf("client/server %s disagree by %.1f%% (max %.1f%%)", q, g, maxAgree))
		}
	}
	if len(r.AgreementPct) == 0 && r.OK > 0 {
		problems = append(problems,
			"no client/server cross-check: populations differ (sheds or concurrent traffic) or the scrape failed")
	}
	if r.CacheHits == 0 {
		problems = append(problems, "plan cache saw no hits (hot path never warmed)")
	}
	if len(problems) > 0 {
		return fmt.Errorf("check failed:\n  - %s", strings.Join(problems, "\n  - "))
	}
	return nil
}
