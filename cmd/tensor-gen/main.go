// Command tensor-gen writes synthetic evaluation tensors to .tns files.
//
//	tensor-gen -list                          # show Table 3 presets
//	tensor-gen -preset Chicago -nnz 100000 -o chicago.tns
//	tensor-gen -dims 1000,500,200 -nnz 50000 -alpha 1.5 -o rand.tns
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sparta"
	"sparta/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tensor-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list   = flag.Bool("list", false, "list Table 3 presets and exit")
		preset = flag.String("preset", "", "preset name (see -list)")
		dims   = flag.String("dims", "", "custom mode sizes, comma separated")
		nnz    = flag.Int("nnz", 100000, "target non-zero count")
		alpha  = flag.Float64("alpha", 1.0, "index skew for -dims tensors (1 = uniform)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("o", "", "output .tns path")
	)
	flag.Parse()

	if *list {
		tab := stats.NewTable("Tensor", "Order", "Dimensions", "#Non-zeros", "Density")
		for _, p := range sparta.Presets {
			tab.Row(p.Name, len(p.Dims), dimsString(p.Dims), p.NNZ, fmt.Sprintf("%.1e", p.Density))
		}
		tab.Render(os.Stdout)
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}

	var t *sparta.Tensor
	switch {
	case *preset != "":
		p, err := sparta.FindPreset(*preset)
		if err != nil {
			return err
		}
		t = sparta.GeneratePreset(p, *nnz, *seed)
	case *dims != "":
		var d []uint64
		for _, f := range strings.Split(*dims, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("bad dim %q", f)
			}
			d = append(d, v)
		}
		t = sparta.RandomSkewed(d, *nnz, *alpha, *seed)
	default:
		return fmt.Errorf("pass -preset or -dims")
	}
	if err := t.SaveTNS(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %v to %s\n", t, *out)
	return nil
}

func dimsString(dims []uint64) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.FormatUint(d, 10)
	}
	return strings.Join(parts, "x")
}
