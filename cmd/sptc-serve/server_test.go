package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparta/internal/core"
	"sparta/internal/einsum"
	"sparta/internal/engine"
	"sparta/internal/gen"
)

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg)
	s.loadDemo()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postContract(t *testing.T, url string, req contractRequest) (*http.Response, contractReply, errorReply) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/contract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /contract: %v", err)
	}
	defer resp.Body.Close()
	var ok contractReply
	var bad errorReply
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading reply: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &ok); err != nil {
			t.Fatalf("decoding reply %q: %v", buf.String(), err)
		}
	} else if err := json.Unmarshal(buf.Bytes(), &bad); err != nil {
		t.Fatalf("decoding error reply %q: %v", buf.String(), err)
	}
	return resp, ok, bad
}

// TestContractWarmCold is the serving core: the first contraction builds
// the HtY, the second (same Y) reuses it, and both produce the identical
// output tensor.
func TestContractWarmCold(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	req := contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"}

	resp, cold, _ := postContract(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d", resp.StatusCode)
	}
	if cold.HtYReused {
		t.Error("cold request claims hty_reused")
	}
	if cold.NNZ == 0 || cold.Fingerprint == "" {
		t.Fatalf("degenerate cold reply: %+v", cold)
	}

	resp, warm, _ := postContract(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d", resp.StatusCode)
	}
	if !warm.HtYReused {
		t.Error("warm request did not reuse the prepared HtY")
	}
	if warm.Fingerprint != cold.Fingerprint || warm.NNZ != cold.NNZ {
		t.Errorf("warm output differs: cold %s/%d, warm %s/%d",
			cold.Fingerprint, cold.NNZ, warm.Fingerprint, warm.NNZ)
	}
	if warm.CacheHits == 0 {
		t.Error("warm request left cache_hits at 0")
	}
}

// TestConcurrentRequests hammers one warm route from many goroutines; all
// must succeed with the same fingerprint.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t, serverConfig{MaxInflight: 4, QueueWait: 30 * time.Second})
	req := contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"}
	resp, first, _ := postContract(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming request: status %d", resp.StatusCode)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, rep, bad := postContract(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, bad.Error)
				return
			}
			if rep.Fingerprint != first.Fingerprint {
				errs <- fmt.Errorf("fingerprint %s != %s", rep.Fingerprint, first.Fingerprint)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShedTinyBudget: with a DRAM budget far below any footprint, Sparta
// requests are shed with 503, and the shed is counted.
func TestShedTinyBudget(t *testing.T) {
	s, ts := testServer(t, serverConfig{DRAMBudget: 1024})
	resp, _, bad := postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 shed, got %d", resp.StatusCode)
	}
	if !strings.Contains(bad.Error, "DRAM budget") {
		t.Errorf("shed reply does not explain itself: %q", bad.Error)
	}
	if n := s.reg.Counter("sptc_serve_requests_total", "", "route", "contract", "outcome", "shed_memory").Value(); n == 0 {
		t.Error("shed_memory counter not incremented")
	}
}

// streamedBudget picks a DRAM budget between the prepared table's size and
// the full footprint of the demo contraction, so admission lands on the
// streamed tier: HtY fits, the unwindowed working set does not.
func streamedBudget(t *testing.T, s *server, spec string) uint64 {
	t.Helper()
	ein, err := einsum.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Algorithm: core.AlgSparta, Threads: s.threads}
	pr, _, err := s.eng.Prepare(s.tensors["demoB"], ein.CmodesY, opt)
	if err != nil {
		t.Fatal(err)
	}
	fp := engine.EstimateFootprint(s.tensors["demoA"].NNZ(), pr)
	return fp.HtY + (fp.Total(s.threads)-fp.HtY)/8
}

// TestStreamedTier: a budget that holds the prepared table but not the full
// working set degrades to the windowed out-of-core driver instead of
// shedding — 200, tagged "streamed", and bit-identical to the in-memory
// result.
func TestStreamedTier(t *testing.T) {
	_, ts0 := testServer(t, serverConfig{})
	for _, spec := range []string{"abc,cde->abde", "abc,cde->deab"} {
		req := contractRequest{X: "demoA", Y: "demoB", Spec: spec}
		resp, base, bad := postContract(t, ts0.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: baseline status %d (%s)", spec, resp.StatusCode, bad.Error)
		}
		if base.ExecutionTier != "dram" {
			t.Errorf("%s: unbudgeted request ran tier %q, want dram", spec, base.ExecutionTier)
		}

		probe := newServer(serverConfig{})
		probe.loadDemo()
		s, ts := testServer(t, serverConfig{DRAMBudget: streamedBudget(t, probe, spec)})
		resp, got, bad := postContract(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: streamed tier shed instead of degrading: status %d (%s)",
				spec, resp.StatusCode, bad.Error)
		}
		if got.ExecutionTier != "streamed" {
			t.Errorf("%s: execution_tier = %q, want streamed", spec, got.ExecutionTier)
		}
		if got.Fingerprint != base.Fingerprint || got.NNZ != base.NNZ {
			t.Errorf("%s: streamed output differs: dram %s/%d, streamed %s/%d",
				spec, base.Fingerprint, base.NNZ, got.Fingerprint, got.NNZ)
		}
		if got.Windows < 1 {
			t.Errorf("%s: streamed reply reports %d windows", spec, got.Windows)
		}
		if n := s.reg.Counter("sptc_serve_tier_total", "", "tier", "streamed").Value(); n == 0 {
			t.Error("streamed tier counter not incremented")
		}
	}
}

// TestShedInflight: with the only slot occupied and no queue wait, a
// request is shed immediately.
func TestShedInflight(t *testing.T) {
	s, ts := testServer(t, serverConfig{MaxInflight: 1, QueueWait: -1})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()
	resp, _, bad := postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 shed, got %d (%s)", resp.StatusCode, bad.Error)
	}
	if n := s.reg.Counter("sptc_serve_requests_total", "", "route", "contract", "outcome", "shed_inflight").Value(); n == 0 {
		t.Error("shed_inflight counter not incremented")
	}
}

// TestTensorUploadRoundTrip uploads a .tns body and contracts against it.
func TestTensorUploadRoundTrip(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	y := gen.Random([]uint64{50, 12, 9}, 500, 7)
	var buf bytes.Buffer
	if err := y.WriteTNS(&buf); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/tensors/up", &buf)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info tensorInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.NNZ != y.NNZ() {
		t.Fatalf("upload: status %d, info %+v", resp.StatusCode, info)
	}
	cresp, rep, bad := postContract(t, ts.URL, contractRequest{X: "demoA", Y: "up", Spec: "abc,cde->abde"})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("contract vs uploaded: status %d (%s)", cresp.StatusCode, bad.Error)
	}
	if rep.NNZ == 0 {
		t.Error("contraction against uploaded tensor produced nothing")
	}
}

// TestBadRequests drives the 400 paths.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	cases := []contractRequest{
		{X: "nope", Y: "demoB", Spec: "abc,cde->abde"},
		{X: "demoA", Y: "nope", Spec: "abc,cde->abde"},
		{X: "demoA", Y: "demoB", Spec: "abc,cde"},              // no arrow
		{X: "demoA", Y: "demoB", Spec: "ab,cde->abde"},         // rank mismatch
		{X: "demoA", Y: "demoB", Spec: "abc,cde->abde", Algorithm: "nope"},
		{X: "demoA", Y: "demoB", Spec: "abc,cde->abde", Kernel: "nope"},
	}
	for _, c := range cases {
		resp, _, _ := postContract(t, ts.URL, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: want 400, got %d", c, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/contract", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: want 400, got %d", resp.StatusCode)
	}
}

// TestMetricsExposition checks the serving metrics appear on /metrics.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`sptc_serve_requests_total{outcome="ok",route="contract"}`,
		`sptc_engine_cache_total{outcome="hit"}`,
		"sptc_serve_inflight",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"512", 512, true},
		{"64K", 64_000, true},
		{"1.5M", 1_500_000, true},
		{"2Gi", 2 << 30, true},
		{"4Ki", 4096, true},
		{"", 0, false},
		{"x", 0, false},
		{"-5", 0, false},
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}
