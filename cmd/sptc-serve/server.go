package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/dist"
	"sparta/internal/einsum"
	"sparta/internal/engine"
	"sparta/internal/gen"
	"sparta/internal/hetmem"
	"sparta/internal/obs"
	"sparta/internal/parallel"
)

// serverConfig sizes one server instance (all fields optional; zero values
// mean "default/disabled" as documented on the flags).
type serverConfig struct {
	Threads      int
	CacheEntries int
	CacheBytes   uint64
	DRAMBudget   uint64
	MaxInflight  int
	QueueWait    time.Duration
	// Tracer, when non-nil, records one span tree per request on a private
	// track (exported at /debug/trace and by -trace on shutdown).
	Tracer *obs.Tracer
	// AccessLog, when non-nil, receives one JSON line per tensor/contract
	// request (request ID, status, outcome, per-phase walls, tags).
	AccessLog io.Writer

	// ShardURLs lists remote worker base URLs; when non-empty, AlgSparta
	// contractions run sharded across them (DESIGN.md §15). Mutually
	// exclusive with LocalShards.
	ShardURLs []string
	// LocalShards, when >0, runs AlgSparta contractions sharded across this
	// many in-process executors (each with a private plan cache) — the
	// single-box scatter/gather mode.
	LocalShards int
	// ShardTimeout caps each shard attempt (0 = no per-attempt timeout).
	ShardTimeout time.Duration
	// ShardRetries is the executor attempt count per shard including the
	// primary (0 = coordinator default: primary plus one failover).
	ShardRetries int
}

// server is the HTTP front end: a tensor store, the caching engine, and the
// two admission gates. All handler state is safe for concurrent use.
type server struct {
	eng     *engine.Engine
	reg     *obs.Registry
	adm     engine.Admission
	threads int

	queueWait time.Duration
	inflight  chan struct{} // counting semaphore; nil = unbounded
	// waiters counts requests currently blocked on an inflight slot — the
	// queue depth the Retry-After header is derived from.
	waiters atomic.Int64

	tracer   *obs.Tracer
	accessMu sync.Mutex
	accessW  io.Writer

	// admMu serializes admission decisions so concurrent requests cannot
	// jointly oversubscribe the budget; admitted holds the summed admitted
	// footprints currently running.
	admMu    sync.Mutex
	admitted uint64

	// coord, when non-nil, executes AlgSparta contractions sharded across
	// in-process or remote workers instead of through s.eng directly.
	coord *dist.Coordinator

	mu      sync.RWMutex
	tensors map[string]*coo.Tensor

	inflightN atomic.Int64 // backs the gauge (obs gauges have no atomic add)
	gInflight *obs.Gauge
}

func newServer(cfg serverConfig) *server {
	reg := obs.NewRegistry()
	threads := cfg.Threads
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	s := &server{
		eng: engine.New(engine.Config{
			CacheEntries: cfg.CacheEntries,
			CacheBytes:   cfg.CacheBytes,
			Metrics:      reg,
		}),
		reg:       reg,
		adm:       engine.Admission{DRAMBudget: cfg.DRAMBudget},
		threads:   threads,
		queueWait: cfg.QueueWait,
		tracer:    cfg.Tracer,
		accessW:   cfg.AccessLog,
		tensors:   map[string]*coo.Tensor{},
		gInflight: reg.Gauge("sptc_serve_inflight", "contractions currently executing"),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if execs := shardExecutors(cfg, reg); len(execs) > 0 {
		// Executor names are generated unique, so NewCoordinator cannot fail.
		s.coord, _ = dist.NewCoordinator(dist.Config{
			Executors:    execs,
			ShardTimeout: cfg.ShardTimeout,
			MaxAttempts:  cfg.ShardRetries,
			Metrics:      reg,
		})
	}
	return s
}

// shardExecutors builds the shard fleet from the config: remote HTTP workers
// when URLs are given, otherwise LocalShards in-process executors. Each local
// shard gets a private plan cache sized like the front engine's.
func shardExecutors(cfg serverConfig, reg *obs.Registry) []dist.Executor {
	if len(cfg.ShardURLs) > 0 {
		execs := make([]dist.Executor, len(cfg.ShardURLs))
		for i, u := range cfg.ShardURLs {
			execs[i] = dist.NewHTTP(u, dist.HTTPConfig{})
		}
		return execs
	}
	if cfg.LocalShards <= 0 {
		return nil
	}
	execs := make([]dist.Executor, cfg.LocalShards)
	for i := range execs {
		execs[i] = dist.NewLocal(fmt.Sprintf("local-%d", i), dist.LocalConfig{
			CacheEntries: cfg.CacheEntries,
			CacheBytes:   cfg.CacheBytes,
			Metrics:      reg,
		})
	}
	return execs
}

// loadDemo installs two synthetic contractible tensors (demoA: 40x30x50,
// demoB: 50x35x20; spec "abc,cde->abde") for smoke tests.
func (s *server) loadDemo() {
	s.mu.Lock()
	s.tensors["demoA"] = gen.Random([]uint64{40, 30, 50}, 4000, 1)
	s.tensors["demoB"] = gen.Random([]uint64{50, 35, 20}, 3000, 2)
	s.mu.Unlock()
}

// handler builds the route table on top of the obs exposition mux, so
// /metrics, /debug/pprof, and /debug/vars ride along.
func (s *server) handler() http.Handler {
	mux := obs.NewMux(s.reg)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("PUT /tensors/{name}", s.instrumented("tensors", s.handlePutTensor))
	mux.HandleFunc("GET /tensors/{name}", s.instrumented("tensors", s.handleGetTensor))
	mux.HandleFunc("POST /contract", s.instrumented("contract", s.handleContract))
	mux.HandleFunc("POST /shard/contract", s.instrumented("shard", s.handleShardContract))
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

// statusWriter captures the status code for the access log and RED metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a handler with the request lifecycle: assign (or adopt
// from X-Request-ID) a request ID, open a ReqTrace on a private trace track,
// thread it through the context so engine and core phases land on it, then
// observe the wall into the RED histogram and emit one access-log line.
func (s *server) instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rt := obs.StartRequest(s.tracer, route, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(obs.WithReq(r.Context(), rt)))
		wall := time.Since(start)
		s.reg.Histogram("sptc_serve_request_seconds", "request wall time by route",
			obs.LatencyBuckets, "route", route).Observe(wall.Seconds())
		rt.Finish()
		s.writeAccess(rt, r, sw.status, wall)
	}
}

// accessLine is one structured access-log record: everything needed to find
// the request again — its ID resolves to a span tree in the Chrome trace —
// plus the per-phase walls so slow requests are attributable without the
// trace at all.
type accessLine struct {
	TS        string            `json:"ts"`
	RequestID string            `json:"request_id"`
	Route     string            `json:"route"`
	Method    string            `json:"method"`
	Path      string            `json:"path"`
	Status    int               `json:"status"`
	WallNS    int64             `json:"wall_ns"`
	Phases    map[string]int64  `json:"phases,omitempty"`
	Tags      map[string]string `json:"tags,omitempty"`
}

func (s *server) writeAccess(rt *obs.ReqTrace, r *http.Request, status int, wall time.Duration) {
	if s.accessW == nil {
		return
	}
	line := accessLine{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: rt.ID(),
		Route:     rt.Route(),
		Method:    r.Method,
		Path:      r.URL.Path,
		Status:    status,
		WallNS:    wall.Nanoseconds(),
		Tags:      rt.Tags(),
	}
	if ph := rt.Phases(); len(ph) > 0 {
		line.Phases = make(map[string]int64, len(ph))
		for _, p := range ph {
			line.Phases[p.Name] += p.Dur.Nanoseconds() // repeated phases sum
		}
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.accessMu.Lock()
	_, _ = s.accessW.Write(buf)
	s.accessMu.Unlock()
}

// handleTrace serves the accumulated Chrome trace (load into Perfetto or
// chrome://tracing; each request is one track named by its request ID's
// span tree).
func (s *server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "tracing disabled (start with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteJSON(w)
}

// countReq folds one request outcome into the metrics registry and tags it
// onto the request trace so the access log carries it too. Shed outcomes
// additionally feed the by-reason shed counter the load generator reads.
func (s *server) countReq(r *http.Request, route, outcome string) {
	s.reg.Counter("sptc_serve_requests_total", "requests by route and outcome",
		"route", route, "outcome", outcome).Inc()
	if reason, ok := strings.CutPrefix(outcome, "shed_"); ok {
		s.reg.Counter("sptc_serve_shed_total", "requests shed by reason",
			"reason", reason).Inc()
	}
	obs.ReqFrom(r.Context()).SetTag("outcome", outcome)
}

// retryAfterSecs derives the Retry-After hint on 503s from the current queue
// depth: with W requests already waiting for one of C slots, a newcomer's
// expected wait is on the order of W/C service times, clamped to [1, 30]s.
func (s *server) retryAfterSecs() int {
	c := 1
	if s.inflight != nil {
		c = cap(s.inflight)
	}
	secs := 1 + int(s.waiters.Load())/c
	if secs > 30 {
		secs = 30
	}
	return secs
}

// shed writes a 503 with the Retry-After hint and records the outcome.
func (s *server) shed(w http.ResponseWriter, r *http.Request, outcome, msg string) {
	s.countReq(r, "contract", outcome)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The connection is gone if this fails; nothing useful to do.
	_ = json.NewEncoder(w).Encode(v)
}

type errorReply struct {
	Error string `json:"error"`
}

// tensorInfo is the metadata reply for uploads and GETs.
type tensorInfo struct {
	Name        string   `json:"name"`
	Order       int      `json:"order"`
	Dims        []uint64 `json:"dims"`
	NNZ         int      `json:"nnz"`
	Fingerprint string   `json:"fingerprint"`
}

func (s *server) infoFor(name string, t *coo.Tensor) tensorInfo {
	return tensorInfo{
		Name:        name,
		Order:       t.Order(),
		Dims:        t.Dims,
		NNZ:         t.NNZ(),
		Fingerprint: engine.FingerprintTensor(t, s.threads).String(),
	}
}

func (s *server) handlePutTensor(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Sniff the body: binary SPTN uploads (the dist executor's Y replication
	// path) start with the magic; everything else parses as FROSTT .tns text.
	br := bufio.NewReader(r.Body)
	var t *coo.Tensor
	var err error
	if head, _ := br.Peek(4); string(head) == "SPTN" {
		t, err = coo.ReadBin(br)
	} else {
		t, err = coo.ReadTNS(br)
	}
	if err != nil {
		s.countReq(r, "tensors", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.tensors[name] = t
	s.mu.Unlock()
	s.countReq(r, "tensors", "ok")
	writeJSON(w, http.StatusOK, s.infoFor(name, t))
}

func (s *server) handleGetTensor(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	t, ok := s.tensors[name]
	s.mu.RUnlock()
	if !ok {
		s.countReq(r, "tensors", "not_found")
		writeJSON(w, http.StatusNotFound, errorReply{Error: fmt.Sprintf("no tensor %q", name)})
		return
	}
	s.countReq(r, "tensors", "ok")
	writeJSON(w, http.StatusOK, s.infoFor(name, t))
}

// contractRequest is the POST /contract body. Algorithm: "sparta"
// (default), "spa", "coohta", "twophase". Kernel: "flat" (default),
// "chained".
type contractRequest struct {
	X         string `json:"x"`
	Y         string `json:"y"`
	Spec      string `json:"spec"`
	Algorithm string `json:"algorithm"`
	Kernel    string `json:"kernel"`
	Threads   int    `json:"threads"`
	TimeoutMS int    `json:"timeout_ms"`
}

type contractReply struct {
	RequestID   string   `json:"request_id,omitempty"`
	Spec        string   `json:"spec"`
	OutDims     []uint64 `json:"out_dims"`
	NNZ         int      `json:"nnz"`
	Fingerprint string   `json:"fingerprint"`
	HtYReused   bool     `json:"hty_reused"`
	CacheHits   uint64   `json:"cache_hits"`
	CacheMisses uint64   `json:"cache_misses"`
	WallNS      int64    `json:"wall_ns"`
	// ExecutionTier reports which path ran: "dram" (in-memory fast path) or
	// "streamed" (windowed out-of-core degrade tier). Clients watching for
	// capacity pressure alert on the streamed fraction instead of on 503s.
	ExecutionTier string `json:"execution_tier,omitempty"`
	// Windows is the streamed window count (0 on the dram tier).
	Windows int `json:"windows,omitempty"`
	// Shards / ShardRetries report the scatter/gather fan-out when the server
	// runs in sharded mode (-local-shards / -shards): how many shard legs
	// were dispatched and how many failover attempts they consumed.
	Shards       int `json:"shards,omitempty"`
	ShardRetries int `json:"shard_retries,omitempty"`
}

func parseAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "", "sparta":
		return core.AlgSparta, nil
	case "spa":
		return core.AlgSPA, nil
	case "coohta":
		return core.AlgCOOHtA, nil
	case "twophase":
		return core.AlgTwoPhase, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func parseKernel(name string) (core.Kernel, error) {
	switch name {
	case "", "flat":
		return core.KernelFlat, nil
	case "chained":
		return core.KernelChained, nil
	}
	return 0, fmt.Errorf("unknown kernel %q", name)
}

// acquireSlot takes an inflight slot, waiting up to queueWait. It reports
// whether the slot was obtained; the caller must releaseSlot on true.
func (s *server) acquireSlot(ctx context.Context) bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	if s.queueWait <= 0 {
		return false
	}
	s.waiters.Add(1)
	defer s.waiters.Add(-1)
	timer := time.NewTimer(s.queueWait)
	defer timer.Stop()
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (s *server) releaseSlot() {
	if s.inflight != nil {
		<-s.inflight
	}
}

func (s *server) handleContract(w http.ResponseWriter, r *http.Request) {
	var req contractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countReq(r, "contract", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad JSON: " + err.Error()})
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err == nil {
		var kerr error
		var k core.Kernel
		if k, kerr = parseKernel(req.Kernel); kerr != nil {
			err = kerr
		} else {
			err = s.contract(w, r, req, alg, k)
		}
	}
	if err != nil {
		s.countReq(r, "contract", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
	}
}

// contract runs the admission gates and the contraction; it returns an
// error only for bad requests (the caller writes 400), and writes every
// other reply itself.
func (s *server) contract(w http.ResponseWriter, r *http.Request, req contractRequest, alg core.Algorithm, kernel core.Kernel) error {
	rt := obs.ReqFrom(r.Context())
	rt.SetTag("spec", req.Spec)
	rt.SetTag("x", req.X)
	rt.SetTag("y", req.Y)

	s.mu.RLock()
	x, okX := s.tensors[req.X]
	y, okY := s.tensors[req.Y]
	s.mu.RUnlock()
	if !okX {
		return fmt.Errorf("no tensor %q", req.X)
	}
	if !okY {
		return fmt.Errorf("no tensor %q", req.Y)
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	threads := req.Threads
	if threads < 1 {
		threads = s.threads
	}
	opt := core.Options{
		Algorithm: alg,
		Kernel:    kernel,
		Threads:   threads,
		Metrics:   s.reg,
	}

	// Gate 1: concurrency. Queue briefly, then shed.
	spQ := rt.StartPhase("queue wait")
	got := s.acquireSlot(ctx)
	spQ.End()
	if !got {
		s.shed(w, r, "shed_inflight", "server at max inflight contractions")
		return nil
	}
	defer s.releaseSlot()
	s.gInflight.Set(float64(s.inflightN.Add(1)))
	defer func() { s.gInflight.Set(float64(s.inflightN.Add(-1))) }()

	// Sharded mode: AlgSparta requests scatter/gather across the shard fleet
	// instead of running on the front engine. The front's DRAM admission gate
	// does not apply — each shard sees only its partition (~1/S of X) and
	// local executors size their own caches; remote workers run their own
	// gates and shed upstream.
	if s.coord != nil && alg == core.AlgSparta {
		return s.contractSharded(w, r, req, opt)
	}

	// Gate 2: memory. Only the Sparta algorithm goes through the prepared
	// path, so only it has the footprint model; the baselines run ungated
	// (they exist for A/B comparison, not production serving). Oversized
	// requests no longer shed outright: when the prepared table fits but the
	// full working set does not, the windowed out-of-core driver runs
	// instead, and only a table that cannot fit at all is refused.
	spA := rt.StartPhase("admission")
	release, tier, res, pr, ein, aerr := s.admit(ctx, req, x, y, opt)
	spA.End()
	if aerr != nil {
		return aerr
	}
	defer release()
	rt.SetTag("execution_tier", tier.String())
	s.reg.Counter("sptc_serve_tier_total", "contract requests by execution tier",
		"tier", tier.String()).Inc()
	if tier == engine.TierShed {
		s.shed(w, r, "shed_memory",
			"estimated footprint exceeds DRAM budget (prepared table ht_Y alone does not fit)")
		return nil
	}

	start := time.Now()
	spC := rt.StartPhase("contract")
	var (
		z   *coo.Tensor
		rep *core.Report
		err error
	)
	if tier == engine.TierStreamed {
		z, rep, err = s.contractStreamed(ctx, x, pr, ein, res, opt)
	} else {
		z, rep, err = s.eng.Einsum(ctx, req.Spec, x, y, opt)
	}
	spC.End()
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.countReq(r, "contract", "timeout")
		writeJSON(w, http.StatusGatewayTimeout, errorReply{Error: err.Error()})
		return nil
	case errors.Is(err, context.Canceled):
		s.countReq(r, "contract", "canceled")
		// The client is gone; status is moot but 499-style close is not
		// expressible, so use 503.
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error()})
		return nil
	default:
		return err
	}

	// Fold the kernel's own stage timings into the request record: the span
	// tree shows them as core spans; the access log gets them as phases.
	rt.AddPhase("stage_input", rep.StageWall[core.StageInput])
	rt.AddPhase("stage_search", rep.StageWall[core.StageSearch])
	rt.AddPhase("stage_accum", rep.StageWall[core.StageAccum])
	rt.AddPhase("stage_write", rep.StageWall[core.StageWrite])
	rt.AddPhase("stage_sort", rep.StageWall[core.StageSort])
	rt.SetTag("hty_reused", strconv.FormatBool(rep.HtYReused))
	rt.SetTag("nnz_z", strconv.Itoa(z.NNZ()))
	if rep.Streamed {
		rt.SetTag("windows", strconv.Itoa(rep.Windows))
	}

	st := s.eng.Stats()
	s.countReq(r, "contract", "ok")
	s.reg.Histogram("sptc_serve_contract_seconds", "contraction wall time",
		[]float64{0.001, 0.01, 0.1, 1, 10}).Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, contractReply{
		RequestID:     rt.ID(),
		Spec:          req.Spec,
		OutDims:       z.Dims,
		NNZ:           z.NNZ(),
		Fingerprint:   engine.FingerprintTensor(z, threads).String(),
		HtYReused:     rep.HtYReused,
		CacheHits:     st.Hits,
		CacheMisses:   st.Misses,
		WallNS:        time.Since(start).Nanoseconds(),
		ExecutionTier: tier.String(),
		Windows:       rep.Windows,
	})
	return nil
}

// contractSharded runs one request through the coordinator: partition X,
// fan out to the shard executors, merge the sorted runs. Output is bitwise
// identical to the one-shot path (internal/dist oracle suite). Called with
// the inflight slot already held; returns an error only for bad requests.
func (s *server) contractSharded(w http.ResponseWriter, r *http.Request, req contractRequest, opt core.Options) error {
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	rt := obs.ReqFrom(r.Context())
	s.mu.RLock()
	x, okX := s.tensors[req.X]
	y, okY := s.tensors[req.Y]
	s.mu.RUnlock()
	if !okX {
		return fmt.Errorf("no tensor %q", req.X)
	}
	if !okY {
		return fmt.Errorf("no tensor %q", req.Y)
	}

	start := time.Now()
	spC := rt.StartPhase("contract")
	z, rep, err := s.coord.Einsum(obs.WithReq(ctx, rt), req.Spec, x, y, opt)
	spC.End()
	var se *dist.ShardError
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.countReq(r, "contract", "timeout")
		writeJSON(w, http.StatusGatewayTimeout, errorReply{Error: err.Error()})
		return nil
	case errors.Is(err, context.Canceled):
		s.countReq(r, "contract", "canceled")
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error()})
		return nil
	case errors.As(err, &se):
		// Every failover attempt for some shard failed: the fleet cannot
		// serve this request right now. Named shed reason, retryable 503.
		s.shed(w, r, "shed_shards",
			fmt.Sprintf("shard %s failed after %d attempts: %v", se.Shard, se.Attempts, se.Err))
		return nil
	default:
		return err
	}

	rt.AddPhase("stage_input", rep.StageWall[core.StageInput])
	rt.AddPhase("stage_search", rep.StageWall[core.StageSearch])
	rt.AddPhase("stage_accum", rep.StageWall[core.StageAccum])
	rt.AddPhase("stage_write", rep.StageWall[core.StageWrite])
	rt.AddPhase("stage_sort", rep.StageWall[core.StageSort])
	rt.SetTag("hty_reused", strconv.FormatBool(rep.HtYReused))
	rt.SetTag("nnz_z", strconv.Itoa(z.NNZ()))

	s.countReq(r, "contract", "ok")
	s.reg.Histogram("sptc_serve_contract_seconds", "contraction wall time",
		[]float64{0.001, 0.01, 0.1, 1, 10}).Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, contractReply{
		RequestID:     rt.ID(),
		Spec:          req.Spec,
		OutDims:       z.Dims,
		NNZ:           z.NNZ(),
		Fingerprint:   engine.FingerprintTensor(z, opt.Threads).String(),
		HtYReused:     rep.HtYReused,
		WallNS:        time.Since(start).Nanoseconds(),
		ExecutionTier: "sharded",
		Windows:       rep.Windows,
		Shards:        rep.Shards,
		ShardRetries:  rep.ShardRetries,
	})
	return nil
}

// handleShardContract is the worker side of the coordinator→worker hop: the
// shard's X partition arrives as a binary SPTN body, Y is referenced by the
// name the executor registered it under, and the reply is binary Z plus the
// full core report in the X-Sptc-Report header. The request ID arrives via
// X-Request-ID, so this span tree joins the coordinator's request.
func (s *server) handleShardContract(w http.ResponseWriter, r *http.Request) {
	fail := func(status int, msg string) {
		s.countReq(r, "shard", "bad_request")
		writeJSON(w, status, errorReply{Error: msg})
	}
	q := r.URL.Query()
	yName := q.Get("y")
	s.mu.RLock()
	y, okY := s.tensors[yName]
	s.mu.RUnlock()
	if !okY {
		fail(http.StatusNotFound, fmt.Sprintf("no tensor %q", yName))
		return
	}
	cx, err := dist.ParseModesCSV(q.Get("cx"))
	if err != nil {
		fail(http.StatusBadRequest, "cx: "+err.Error())
		return
	}
	cy, err := dist.ParseModesCSV(q.Get("cy"))
	if err != nil {
		fail(http.StatusBadRequest, "cy: "+err.Error())
		return
	}
	kernel, err := parseKernel(q.Get("kernel"))
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	threads := s.threads
	if ts := q.Get("threads"); ts != "" {
		if threads, err = strconv.Atoi(ts); err != nil || threads < 1 {
			fail(http.StatusBadRequest, "bad threads value")
			return
		}
	}
	x, err := coo.ReadBin(r.Body)
	if err != nil {
		fail(http.StatusBadRequest, "decoding X: "+err.Error())
		return
	}

	ctx := r.Context()
	rt := obs.ReqFrom(ctx)
	rt.SetTag("y", yName)
	opt := core.Options{
		Algorithm: core.AlgSparta,
		Kernel:    kernel,
		Threads:   threads,
		Metrics:   s.reg,
		// The partition is request-local: let the kernel permute it in place.
		InPlace: true,
	}
	pr, hit, err := s.eng.PrepareCtx(ctx, y, cy, opt)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	z, rep, err := pr.Contract(ctx, x, cx, opt)
	if err != nil {
		s.countReq(r, "shard", "error")
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorReply{Error: err.Error()})
		return
	}
	if hit {
		rep.HtYReused = true
		rep.HtYBuild = 0
	}
	rt.SetTag("nnz_z", strconv.Itoa(z.NNZ()))
	s.countReq(r, "shard", "ok")
	if buf, err := json.Marshal(rep); err == nil {
		w.Header().Set("X-Sptc-Report", string(buf))
	}
	w.Header().Set("Content-Type", "application/x-sptn")
	// The connection is gone if this fails; nothing useful to do.
	_ = z.WriteBin(w)
}

// contractStreamed runs the degrade tier: X (already resident) is permuted
// to contraction order, sorted, and walked window by window against the
// cached prepared table, so only one window's accumulators and staging are
// ever hot — the request runs inside the budget instead of being shed. A
// spec that permutes the output must re-sort Z afterwards, which
// materializes heap copies of every column anyway, so Z spilling is only
// honored for identity-output specs.
func (s *server) contractStreamed(ctx context.Context, x *coo.Tensor, pr *core.PreparedY, ein *einsum.Plan, res hetmem.Residency, opt core.Options) (*coo.Tensor, *core.Report, error) {
	xs, err := core.NewTensorStream(x, ein.CmodesX, res.WindowNNZ, opt.Threads, false)
	if err != nil {
		return nil, nil, err
	}
	z, rep, err := core.ContractStream(ctx, xs, pr, core.StreamOptions{
		Options: opt,
		SpillZ:  res.SpillZ && ein.IdentityOut,
	})
	if err != nil {
		return nil, nil, err
	}
	if !ein.IdentityOut {
		if err := z.Permute(ein.OutPerm); err != nil {
			return nil, nil, err
		}
		z.Sort(opt.Threads)
	}
	return z, rep, nil
}

// admit runs the DRAM admission gate and assigns the execution tier. It
// returns a release func (always non-nil) plus, on the prepared path, the
// residency plan, the cached prepared Y, and the parsed spec the streamed
// tier needs. Requests outside the prepared path, or with admission
// disabled, get TierDRAM with a no-op release.
func (s *server) admit(ctx context.Context, req contractRequest, x, y *coo.Tensor, opt core.Options) (release func(), tier engine.Tier, res hetmem.Residency, pr *core.PreparedY, ein *einsum.Plan, err error) {
	release = func() {}
	tier = engine.TierDRAM
	if s.adm.DRAMBudget == 0 || opt.Algorithm != core.AlgSparta {
		return release, tier, res, nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return release, tier, res, nil, nil, err
	}
	// Resolve the contract modes so the Y side can be prepared (cached
	// across requests) and its exact resident size used in the estimate.
	pr, ein, err = s.prepareFor(ctx, req.Spec, x, y, opt)
	if err != nil {
		return release, tier, res, nil, nil, err
	}
	fp := engine.EstimateFootprint(x.NNZ(), pr)
	s.admMu.Lock()
	tier, res = s.adm.Plan(fp, opt.Threads, x.NNZ(), s.admitted)
	// A fully contracted X has one sub-tensor spanning everything and cannot
	// be windowed; it either fits whole or must still be shed.
	if tier == engine.TierStreamed && len(ein.CmodesX) >= x.Order() {
		tier = engine.TierShed
	}
	if tier == engine.TierShed {
		s.admMu.Unlock()
		return release, tier, res, pr, ein, nil
	}
	// Streamed requests account only their windowed resident demand — the
	// point of the degrade tier is that concurrent work can still fit.
	total := fp.Total(opt.Threads)
	if tier == engine.TierStreamed {
		total = fp.WindowedTotal(opt.Threads, res.WindowNNZ, x.NNZ())
	}
	s.admitted += total
	s.admMu.Unlock()
	release = func() {
		s.admMu.Lock()
		s.admitted -= total
		s.admMu.Unlock()
	}
	return release, tier, res, pr, ein, nil
}

// prepareFor parses the spec far enough to prepare the Y side through the
// engine's plan cache (the later Einsum call re-resolves the same cached
// plan — the fingerprint lookup is the cheap part). The parsed plan rides
// along so the streamed tier can reuse it.
func (s *server) prepareFor(ctx context.Context, spec string, x, y *coo.Tensor, opt core.Options) (*core.PreparedY, *einsum.Plan, error) {
	ein, err := einsum.Parse(spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ein.CheckRanks(spec, x.Order(), y.Order()); err != nil {
		return nil, nil, err
	}
	pr, _, err := s.eng.PrepareCtx(ctx, y, ein.CmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	return pr, ein, nil
}
