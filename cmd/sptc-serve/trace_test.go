package main

// Tests for the request lifecycle: request IDs, the access log ↔ span tree
// correspondence, Retry-After on sheds, quantile exposition, and the error
// paths (malformed bodies, unknown tensors, mid-request cancellation).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"sparta/internal/gen"
	"sparta/internal/obs"
)

// traceDump mirrors the Chrome trace-event JSON far enough for assertions.
type traceDump struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func fetchTrace(t *testing.T, url string) traceDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", resp.StatusCode)
	}
	var td traceDump
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	return td
}

// spanTreeFor returns the set of span names recorded on the track whose
// "request" span carries the given request ID, or nil if no such tree.
func (td traceDump) spanTreeFor(id string) map[string]bool {
	track := -1
	for _, ev := range td.TraceEvents {
		if ev.Name == "request" && ev.Ph == "B" && ev.Args["request_id"] == id {
			track = ev.Tid
		}
	}
	if track < 0 {
		return nil
	}
	names := map[string]bool{}
	for _, ev := range td.TraceEvents {
		if ev.Tid == track && ev.Ph == "B" {
			names[ev.Name] = true
		}
	}
	return names
}

// TestRequestIDHeader: the server echoes a supplied X-Request-ID and mints
// one when absent.
func TestRequestIDHeader(t *testing.T) {
	_, ts := testServer(t, serverConfig{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/tensors/demoA", nil)
	req.Header.Set("X-Request-ID", "feedfacefeedface")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "feedfacefeedface" {
		t.Errorf("supplied ID not echoed: got %q", got)
	}

	resp, err = http.Get(ts.URL + "/tensors/demoA")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated ID: got %q, want 16 hex chars", got)
	}
}

// TestAccessLogTraceResolution is the tentpole acceptance check: every
// request ID in the access log resolves to a complete span tree in the
// Chrome trace, and the access line carries the per-stage walls and plan
// tags that make it useful without the trace.
func TestAccessLogTraceResolution(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := testServer(t, serverConfig{
		MaxInflight: 2,
		QueueWait:   time.Second,
		Tracer:      obs.NewTracer(),
		AccessLog:   &logBuf,
	})
	req := contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"}
	for i := 0; i < 2; i++ { // cold then warm
		if resp, _, bad := postContract(t, ts.URL, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("contract %d: status %d (%s)", i, resp.StatusCode, bad.Error)
		}
	}
	td := fetchTrace(t, ts.URL)

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	wantSpans := []string{
		"queue wait", "admission", "cache lookup", "contract",
		"input processing", "x sort", "compute", "writeback gather", "request",
	}
	for i, ln := range lines {
		var al accessLine
		if err := json.Unmarshal([]byte(ln), &al); err != nil {
			t.Fatalf("access line %d: %v (%s)", i, err, ln)
		}
		if al.RequestID == "" || al.Route != "contract" || al.Status != http.StatusOK {
			t.Fatalf("access line %d degenerate: %+v", i, al)
		}
		if al.Tags["outcome"] != "ok" || al.Tags["plan_fp"] == "" {
			t.Errorf("access line %d tags: %+v", i, al.Tags)
		}
		warm := i == 1
		if got := al.Tags["hty_reused"]; got != strconv.FormatBool(warm) {
			t.Errorf("access line %d: hty_reused = %q, want %v", i, got, warm)
		}
		wantCache := "miss"
		if warm {
			wantCache = "hit"
		}
		if got := al.Tags["plan_cache"]; got != wantCache {
			t.Errorf("access line %d: plan_cache = %q, want %q", i, got, wantCache)
		}
		if al.Phases["contract"] <= 0 {
			t.Errorf("access line %d: no contract phase wall: %+v", i, al.Phases)
		}
		if _, ok := al.Phases["stage_input"]; !ok {
			t.Errorf("access line %d: missing stage_input wall: %+v", i, al.Phases)
		}

		// The ID must resolve to a complete span tree in the trace.
		tree := td.spanTreeFor(al.RequestID)
		if tree == nil {
			t.Fatalf("request %s has no span tree in the trace", al.RequestID)
		}
		for _, name := range wantSpans {
			if !tree[name] {
				t.Errorf("request %s (line %d): span tree missing %q (has %v)",
					al.RequestID, i, name, tree)
			}
		}
		if !warm && !tree["hty prepare"] {
			t.Errorf("cold request %s: span tree missing the hty prepare phase", al.RequestID)
		}
	}
}

// TestTraceEndpointDisabled: without a tracer, /debug/trace 404s instead of
// serving an empty file that looks like "no requests happened".
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tracing disabled: want 404, got %d", resp.StatusCode)
	}
}

// TestRetryAfterOnShed is the satellite regression test: both shed paths
// must carry a Retry-After header derived from the queue depth.
func TestRetryAfterOnShed(t *testing.T) {
	s, ts := testServer(t, serverConfig{MaxInflight: 1, QueueWait: -1})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()

	resp, _, _ := postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %d", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("shed_inflight Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	// Deeper queue -> longer hint, clamped at 30s.
	s.waiters.Store(10)
	if got := s.retryAfterSecs(); got != 11 {
		t.Errorf("retryAfterSecs with 10 waiters over 1 slot = %d, want 11", got)
	}
	s.waiters.Store(1000)
	if got := s.retryAfterSecs(); got != 30 {
		t.Errorf("retryAfterSecs clamp = %d, want 30", got)
	}
	s.waiters.Store(0)

	// The memory-shed path carries the header too.
	s2, ts2 := testServer(t, serverConfig{DRAMBudget: 1024})
	_ = s2
	resp2, _, _ := postContract(t, ts2.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 memory shed, got %d", resp2.StatusCode)
	}
	if ra, err := strconv.Atoi(resp2.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("shed_memory Retry-After = %q, want integer >= 1", resp2.Header.Get("Retry-After"))
	}
}

// TestMalformedPutBody: a body that is not a .tns file is a 400 with the
// bad_request outcome counted on the tensors route.
func TestMalformedPutBody(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/tensors/bad",
		strings.NewReader("this is not\na tensor at all\n"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed PUT: want 400, got %d", resp.StatusCode)
	}
	if n := s.reg.Counter("sptc_serve_requests_total", "", "route", "tensors", "outcome", "bad_request").Value(); n == 0 {
		t.Error("bad_request outcome not counted")
	}
	// The broken upload must not have installed anything.
	resp, err = http.Get(ts.URL + "/tensors/bad")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tensor installed despite malformed body: status %d", resp.StatusCode)
	}
}

// loadSlowPair installs a contraction big enough (~tens of ms) that a
// mid-request cancel lands while the kernel is running.
func loadSlowPair(s *server) contractRequest {
	s.mu.Lock()
	s.tensors["slowX"] = gen.Random([]uint64{300, 300}, 90_000, 11)
	s.tensors["slowY"] = gen.Random([]uint64{300, 300}, 90_000, 12)
	s.mu.Unlock()
	return contractRequest{X: "slowX", Y: "slowY", Spec: "ab,bc->ac"}
}

// waitCounter polls a registry counter until it is nonzero or the deadline
// passes (server-side accounting can trail the client's cancel).
func waitCounter(t *testing.T, s *server, outcome string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.reg.Counter("sptc_serve_requests_total", "", "route", "contract", "outcome", outcome).Value() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("outcome %q never counted", outcome)
}

// TestContractTimeout: a 1ms deadline on a heavyweight contraction yields
// 504 and the timeout outcome.
func TestContractTimeout(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	req := loadSlowPair(s)
	req.TimeoutMS = 1
	resp, _, _ := postContract(t, ts.URL, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d", resp.StatusCode)
	}
	waitCounter(t, s, "timeout")
}

// TestClientDisconnect is the satellite error-path test: a client that
// vanishes mid-contraction must produce the canceled outcome and leave no
// goroutines behind.
func TestClientDisconnect(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	req := loadSlowPair(s)
	before := runtime.NumGoroutine()

	// A private transport so idle keep-alive connections (a cancel racing a
	// fast completion parks one: readLoop + writeLoop + the server's conn
	// handler) can be torn down before the leak check.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}

	const rounds = 3
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		body, _ := json.Marshal(req)
		hr, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/contract", bytes.NewReader(body))
		hr.Header.Set("Content-Type", "application/json")
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		if resp, err := client.Do(hr); err == nil {
			// The cancel raced a fast completion; still fine, just no signal.
			resp.Body.Close()
		}
		cancel()
	}
	waitCounter(t, s, "canceled")

	// All handler goroutines must drain once the contexts are gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		tr.CloseIdleConnections()
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak after canceled requests: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestServeQuantileExposition: the RED histogram exports p50/p95/p99 on
// /metrics — the lines the load generator cross-checks against.
func TestServeQuantileExposition(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	for i := 0; i < 3; i++ {
		postContract(t, ts.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		want := fmt.Sprintf(`sptc_serve_request_seconds_quantile{route="contract",quantile=%q}`, q)
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(text, `sptc_serve_request_seconds_bucket{route="contract",le=`) {
		t.Error("/metrics missing request latency buckets")
	}
}
