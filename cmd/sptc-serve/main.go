// Command sptc-serve is an HTTP contraction service over the prepared-plan
// engine: upload tensors, contract them with einsum specs, and let the plan
// cache absorb the stage-① HtY build across requests that share a Y side.
//
//	sptc-serve -addr :8080 -demo
//	curl -X PUT --data-binary @y.tns localhost:8080/tensors/y
//	curl -X POST -d '{"x":"demoA","y":"demoB","spec":"abc,cde->abde"}' \
//	    localhost:8080/contract
//
// Endpoints:
//
//	PUT  /tensors/{name}   upload a FROSTT .tns or binary SPTN body
//	GET  /tensors/{name}   tensor metadata (order, dims, nnz, fingerprint)
//	POST /contract         run one contraction (JSON request, JSON reply)
//	POST /shard/contract   worker-side shard execution (binary SPTN in/out)
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text (plus /debug/pprof, /debug/vars)
//	GET  /debug/trace      Chrome trace of request span trees (with -trace)
//
// Every tensor/contract request carries a request ID (adopted from
// X-Request-ID or generated) that is echoed in the response header, keyed
// into the access log (-access-log: one JSON line per request with
// per-phase walls), and names the request's span tree in the Chrome trace
// (-trace file, or scrape /debug/trace live).
//
// Two gates protect the process (DESIGN.md §10):
//
//   - -max-inflight bounds concurrent contractions; excess requests queue up
//     to -queue-wait, then are shed with 503.
//   - -dram-budget enables hetmem-style admission control: each request's
//     estimated footprint (prepared HtY + Eq.6 accumulator bound + Z_local
//     bound) is planned into the remaining budget with the paper's static
//     placement priority, and requests whose objects would not fit entirely
//     in DRAM are shed with 503 rather than thrashing. 0 disables the gate.
//
// Sharded mode (DESIGN.md §15): -local-shards N scatter/gathers every Sparta
// contraction across N in-process executors; -shards lists remote worker
// URLs (other sptc-serve instances) to fan out to instead. Either way the
// merged output is bitwise identical to the one-shot contraction, and a
// request whose shard exhausts its failover attempts is shed with a named
// reason (shed_shards).
//
// -demo preloads two synthetic tensors (demoA, demoB; contractible with
// "abc,cde->abde") so smoke tests need no uploads.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sparta/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		threads      = flag.Int("threads", 0, "worker threads per contraction (<1 = GOMAXPROCS)")
		cacheEntries = flag.Int("cache-entries", 0, "plan cache entry cap (0 = default, negative = disable)")
		cacheBytes   = flag.String("cache-bytes", "0", "plan cache byte budget (0 = none; accepts K/M/G suffixes)")
		dramBudget   = flag.String("dram-budget", "0", "DRAM admission budget in bytes (0 = admission disabled; accepts K/M/G suffixes)")
		maxInflight  = flag.Int("max-inflight", runtime.GOMAXPROCS(0), "max concurrent contractions")
		queueWait    = flag.Duration("queue-wait", 2*time.Second, "max time a request waits for an inflight slot before 503")
		demo         = flag.Bool("demo", false, "preload synthetic tensors demoA and demoB")
		traceFile    = flag.String("trace", "", "record request span trees; write Chrome trace here on shutdown ('' = tracing off)")
		traceLimit   = flag.Int("trace-limit", 1<<20, "max buffered trace events before new spans are dropped (0 = unbounded)")
		accessLog    = flag.String("access-log", "", "structured access log destination: a path, 'stdout', or 'stderr' ('' = off)")
		shardURLs    = flag.String("shards", "", "comma-separated remote worker base URLs for sharded execution ('' = off)")
		localShards  = flag.Int("local-shards", 0, "shard Sparta contractions across N in-process executors (0 = off)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard attempt timeout in sharded mode (0 = request timeout only)")
		shardRetries = flag.Int("shard-retries", 0, "executor attempts per shard including the primary (0 = primary plus one failover)")
	)
	flag.Parse()

	cb, err := parseBytes(*cacheBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptc-serve: -cache-bytes: %v\n", err)
		os.Exit(2)
	}
	db, err := parseBytes(*dramBudget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptc-serve: -dram-budget: %v\n", err)
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		tracer.SetLimit(*traceLimit)
	}
	var accessW io.Writer
	var accessF *os.File
	switch *accessLog {
	case "":
	case "stdout", "-":
		accessW = os.Stdout
	case "stderr":
		accessW = os.Stderr
	default:
		accessF, err = os.Create(*accessLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sptc-serve: -access-log: %v\n", err)
			os.Exit(2)
		}
		accessW = accessF
	}

	var urls []string
	if *shardURLs != "" {
		for _, u := range strings.Split(*shardURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	srv := newServer(serverConfig{
		Threads:      *threads,
		CacheEntries: *cacheEntries,
		CacheBytes:   cb,
		DRAMBudget:   db,
		MaxInflight:  *maxInflight,
		QueueWait:    *queueWait,
		Tracer:       tracer,
		AccessLog:    accessW,
		ShardURLs:    urls,
		LocalShards:  *localShards,
		ShardTimeout: *shardTimeout,
		ShardRetries: *shardRetries,
	})
	if *demo {
		srv.loadDemo()
	}

	log.Printf("sptc-serve listening on %s (inflight=%d, dram-budget=%d)", *addr, *maxInflight, db)
	hs := &http.Server{Addr: *addr, Handler: srv.handler(), ReadHeaderTimeout: 10 * time.Second}

	// Serve until SIGINT/SIGTERM, then drain and flush the trace/log files —
	// the span trees are only worth recording if they survive shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("sptc-serve: %v", err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sptc-serve: shutdown: %v", err)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceFile); err != nil {
			log.Printf("sptc-serve: writing trace: %v", err)
		} else {
			log.Printf("sptc-serve: wrote %d trace events to %s (%d dropped)",
				tracer.Len(), *traceFile, tracer.Dropped())
		}
	}
	if accessF != nil {
		_ = accessF.Close()
	}
}

// parseBytes reads "512", "64K", "1.5M"-style sizes (decimal multipliers;
// Ki/Mi/Gi accepted for the binary ones).
func parseBytes(s string) (uint64, error) {
	var mult float64 = 1
	switch {
	case len(s) == 0:
		return 0, fmt.Errorf("empty size")
	default:
		suffixes := []struct {
			suf string
			m   float64
		}{
			{"Ki", 1 << 10}, {"Mi", 1 << 20}, {"Gi", 1 << 30},
			{"K", 1e3}, {"M", 1e6}, {"G", 1e9},
		}
		for _, sm := range suffixes {
			if len(s) > len(sm.suf) && s[len(s)-len(sm.suf):] == sm.suf {
				mult = sm.m
				s = s[:len(s)-len(sm.suf)]
				break
			}
		}
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return uint64(v * mult), nil
}
