package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/gen"
)

// TestShardedLocalMode runs the same contraction through a plain server and
// a -local-shards server; the sharded reply must carry the identical output
// fingerprint (the serve-level face of the dist oracle suite).
func TestShardedLocalMode(t *testing.T) {
	_, plain := testServer(t, serverConfig{})
	_, sharded := testServer(t, serverConfig{LocalShards: 4})
	req := contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"}

	resp, want, _ := postContract(t, plain.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain server: status %d", resp.StatusCode)
	}
	resp, got, bad := postContract(t, sharded.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded server: status %d: %s", resp.StatusCode, bad.Error)
	}
	if got.Fingerprint != want.Fingerprint || got.NNZ != want.NNZ {
		t.Errorf("sharded output differs: plain %s/%d, sharded %s/%d",
			want.Fingerprint, want.NNZ, got.Fingerprint, got.NNZ)
	}
	if got.ExecutionTier != "sharded" {
		t.Errorf("execution_tier = %q, want sharded", got.ExecutionTier)
	}
	if got.Shards < 1 || got.Shards > 4 {
		t.Errorf("reply claims %d shards", got.Shards)
	}

	// Warm pass: every shard's plan cache now holds the HtY.
	resp, warm, _ := postContract(t, sharded.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sharded request: status %d", resp.StatusCode)
	}
	if !warm.HtYReused {
		t.Error("warm sharded request did not reuse the shards' HtY plans")
	}
	if warm.Fingerprint != want.Fingerprint {
		t.Errorf("warm sharded output drifted: %s != %s", warm.Fingerprint, want.Fingerprint)
	}
}

// TestShardedRemoteWorkers fans out across two real worker servers over HTTP:
// Y replicates via the binary PUT path, partitions flow through
// /shard/contract, and the merged output still matches the one-shot server.
func TestShardedRemoteWorkers(t *testing.T) {
	_, plain := testServer(t, serverConfig{})
	_, w1 := testServer(t, serverConfig{})
	_, w2 := testServer(t, serverConfig{})
	_, coord := testServer(t, serverConfig{ShardURLs: []string{w1.URL, w2.URL}})
	req := contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"}

	resp, want, _ := postContract(t, plain.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain server: status %d", resp.StatusCode)
	}
	resp, got, bad := postContract(t, coord.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator: status %d: %s", resp.StatusCode, bad.Error)
	}
	if got.Fingerprint != want.Fingerprint || got.NNZ != want.NNZ {
		t.Errorf("remote-sharded output differs: plain %s/%d, sharded %s/%d",
			want.Fingerprint, want.NNZ, got.Fingerprint, got.NNZ)
	}
}

// TestShardedAllWorkersDown: a coordinator whose whole fleet is unreachable
// sheds with the named reason instead of hanging or 500ing.
func TestShardedAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // keep the URL, kill the listener
	_, coord := testServer(t, serverConfig{ShardURLs: []string{dead.URL}})
	resp, _, bad := postContract(t, coord.URL, contractRequest{X: "demoA", Y: "demoB", Spec: "abc,cde->abde"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 shed, got %d", resp.StatusCode)
	}
	if !strings.Contains(bad.Error, "attempts") {
		t.Errorf("shed reply does not name the shard failure: %q", bad.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed reply lacks Retry-After")
	}
}

// TestShardWorkerEndpoint drives /shard/contract directly: binary X in,
// binary Z out, full core report in the X-Sptc-Report header.
func TestShardWorkerEndpoint(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	x := gen.Random([]uint64{20, 16}, 180, 5)
	y := gen.Random([]uint64{16, 12}, 120, 6)
	s.mu.Lock()
	s.tensors["shardY"] = y
	s.mu.Unlock()

	var body bytes.Buffer
	if err := x.WriteBin(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/shard/contract?y=shardY&cx=1&cy=0&kernel=flat&threads=2",
		"application/x-sptn", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	z, err := coo.ReadBin(resp.Body)
	if err != nil {
		t.Fatalf("decoding Z: %v", err)
	}

	pr, err := core.PrepareY(y, []int{0}, core.Options{Algorithm: core.AlgSparta, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pr.Contract(t.Context(), x, []int{1}, core.Options{Algorithm: core.AlgSparta, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want) {
		t.Errorf("worker endpoint output differs from direct contraction (nnz %d vs %d)", z.NNZ(), want.NNZ())
	}

	var rep core.Report
	if hdr := resp.Header.Get("X-Sptc-Report"); hdr == "" {
		t.Error("no X-Sptc-Report header")
	} else if err := json.Unmarshal([]byte(hdr), &rep); err != nil {
		t.Errorf("bad X-Sptc-Report header: %v", err)
	} else if rep.NNZZ != z.NNZ() {
		t.Errorf("report NNZZ=%d, tensor has %d", rep.NNZZ, z.NNZ())
	}

	// Unknown Y and malformed modes fail cleanly.
	resp2, err := http.Post(ts.URL+"/shard/contract?y=nope&cx=1&cy=0", "application/x-sptn", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown Y: status %d, want 404", resp2.StatusCode)
	}
	resp3, err := http.Post(ts.URL+"/shard/contract?y=shardY&cx=zap&cy=0", "application/x-sptn", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cx: status %d, want 400", resp3.StatusCode)
	}
}

// TestBinaryTensorUpload: the PUT sniffer accepts a binary SPTN body (the
// dist executor's Y replication format) alongside FROSTT text.
func TestBinaryTensorUpload(t *testing.T) {
	s, ts := testServer(t, serverConfig{})
	y := gen.Random([]uint64{10, 8}, 60, 7)
	var body bytes.Buffer
	if err := y.WriteBin(&body); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/tensors/bin", &body)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary PUT: status %d", resp.StatusCode)
	}
	s.mu.RLock()
	got := s.tensors["bin"]
	s.mu.RUnlock()
	if got == nil || !got.Equal(y) {
		t.Error("binary upload did not round-trip")
	}
}
