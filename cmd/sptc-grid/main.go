// Command sptc-grid gates the bench-grid artifacts (scripts/paper/run_all.sh)
// against committed per-cell thresholds, the same stamp/diff discipline
// sptc-slo applies to the loadgen baseline:
//
//	make bench-grid                 # sweep the duels into bench_grid/
//	make grid-check                 # gate against lint/grid_thresholds.json
//	make grid-stamp                 # re-stamp after an accepted perf change
//
// A grid cell is one (experiment, scale, threads) run — the JSON file
// `<exp>_s<scale>_t<threads>_rN.json`. Within each cell the gate walks every
// duel row generically:
//
//   - fields named "speedup*" fold to the cell's minimum; the stamped bound
//     is that minimum times the slack, and a fresh run fails when any fresh
//     minimum drops below the bound.
//   - fields containing "slowdown" fold to the maximum; the stamped bound is
//     the maximum divided by the slack (i.e. allowed to grow by 1/slack).
//   - "identical_output" must be true in every row, stamping or checking —
//     a correctness oracle never gets slack.
//
// Only ratios are gated, never absolute walls, so the committed thresholds
// transfer across machines; the default slack of 0.5 absorbs run-to-run
// noise on shared boxes. Checking also refuses any grid whose summary.tsv
// recorded ERR cells. Cells present in the thresholds but missing from the
// fresh run are skipped unless -require-all — CI sweeps a small subset of
// the full grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

type cellBounds struct {
	// MinSpeedup maps a speedup field name to the lowest value any row of
	// the cell may report.
	MinSpeedup map[string]float64 `json:"min_speedup,omitempty"`
	// MaxSlowdown maps a slowdown field name to the highest allowed value.
	MaxSlowdown map[string]float64 `json:"max_slowdown,omitempty"`
}

type thresholdsFile struct {
	// Slack records what the bounds were stamped with, for humans reading
	// the file; the bounds themselves already include it.
	Slack float64                `json:"slack"`
	Cells map[string]*cellBounds `json:"cells"`
}

// cellStats is one cell's folded fresh measurements.
type cellStats struct {
	minSpeedup  map[string]float64
	maxSlowdown map[string]float64
	notIdentical []string // files with a failed identical_output oracle
	files        int
}

var cellRe = regexp.MustCompile(`^(.+)_r\d+\.json$`)

func main() {
	var (
		stamp      = flag.Bool("stamp", false, "re-stamp the thresholds file from the grid runs in -dir")
		check      = flag.Bool("check", false, "gate the grid runs in -dir against the thresholds file")
		dirs       = flag.String("dir", "bench_grid", "comma-separated grid artifact directories")
		thresholds = flag.String("thresholds", "lint/grid_thresholds.json", "committed thresholds file")
		slack      = flag.Float64("slack", 0.5, "stamp: speedup bounds shrink to measured*slack, slowdown bounds grow to measured/slack")
		requireAll = flag.Bool("require-all", false, "check: fail when a stamped cell is missing from the fresh grid")
	)
	flag.Parse()
	if *stamp == *check {
		fmt.Fprintln(os.Stderr, "sptc-grid: exactly one of -stamp or -check is required")
		os.Exit(2)
	}
	if *slack <= 0 || *slack > 1 {
		fmt.Fprintln(os.Stderr, "sptc-grid: -slack must be in (0, 1]")
		os.Exit(2)
	}

	cells, errs := collect(strings.Split(*dirs, ","))
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "sptc-grid: %v\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	if len(cells) == 0 {
		fmt.Fprintln(os.Stderr, "sptc-grid: no grid cells found (run make bench-grid first)")
		os.Exit(1)
	}

	if *stamp {
		if err := doStamp(cells, *thresholds, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "sptc-grid: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := doCheck(cells, *thresholds, *requireAll); err != nil {
		fmt.Fprintf(os.Stderr, "sptc-grid: %v\n", err)
		os.Exit(1)
	}
}

// collect folds every grid JSON in the given directories into per-cell
// stats, and surfaces ERR rows from each directory's summary.tsv.
func collect(dirs []string) (map[string]*cellStats, []error) {
	cells := map[string]*cellStats{}
	var errs []error
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		if sum, err := os.ReadFile(filepath.Join(dir, "summary.tsv")); err == nil {
			for _, line := range strings.Split(string(sum), "\n") {
				if strings.Contains(line, "\tERR") {
					errs = append(errs, fmt.Errorf("%s/summary.tsv records a failed cell: %s", dir, strings.TrimSpace(line)))
				}
			}
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, f := range files {
			m := cellRe.FindStringSubmatch(filepath.Base(f))
			if m == nil {
				continue // not a grid cell artifact
			}
			cell := m[1]
			st := cells[cell]
			if st == nil {
				st = &cellStats{minSpeedup: map[string]float64{}, maxSlowdown: map[string]float64{}}
				cells[cell] = st
			}
			if err := foldFile(f, st); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", f, err))
			}
		}
	}
	return cells, errs
}

// foldFile walks one duel JSON generically: every top-level array of objects
// (or a top-level array) contributes rows; speedup fields fold to minima,
// slowdown fields to maxima, identical_output oracles are collected.
func foldFile(path string, st *cellStats) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rows []map[string]any
	var top any
	if err := json.Unmarshal(raw, &top); err != nil {
		return err
	}
	appendRows := func(arr []any) {
		for _, r := range arr {
			if obj, ok := r.(map[string]any); ok {
				rows = append(rows, obj)
			}
		}
	}
	switch v := top.(type) {
	case []any:
		appendRows(v)
	case map[string]any:
		for _, field := range v {
			if arr, ok := field.([]any); ok {
				appendRows(arr)
			}
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("no duel rows found")
	}
	st.files++
	for _, row := range rows {
		for k, v := range row {
			if k == "identical_output" {
				if ok, isBool := v.(bool); isBool && !ok {
					st.notIdentical = append(st.notIdentical, filepath.Base(path))
				}
				continue
			}
			f, isNum := v.(float64)
			if !isNum {
				continue
			}
			switch {
			case strings.HasPrefix(k, "speedup"):
				if cur, seen := st.minSpeedup[k]; !seen || f < cur {
					st.minSpeedup[k] = f
				}
			case strings.Contains(k, "slowdown"):
				if cur, seen := st.maxSlowdown[k]; !seen || f > cur {
					st.maxSlowdown[k] = f
				}
			}
		}
	}
	return nil
}

func doStamp(cells map[string]*cellStats, path string, slack float64) error {
	out := thresholdsFile{Slack: slack, Cells: map[string]*cellBounds{}}
	for name, st := range cells {
		if len(st.notIdentical) > 0 {
			return fmt.Errorf("refusing to stamp: cell %s has identical_output=false in %s — fix correctness first",
				name, strings.Join(st.notIdentical, ", "))
		}
		b := &cellBounds{}
		if len(st.minSpeedup) > 0 {
			b.MinSpeedup = map[string]float64{}
			for k, v := range st.minSpeedup {
				b.MinSpeedup[k] = round3(v * slack)
			}
		}
		if len(st.maxSlowdown) > 0 {
			b.MaxSlowdown = map[string]float64{}
			for k, v := range st.maxSlowdown {
				b.MaxSlowdown[k] = round3(v / slack)
			}
		}
		out.Cells[name] = b
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("stamped %d cells into %s (slack %.2f)\n", len(out.Cells), path, slack)
	return nil
}

func doCheck(cells map[string]*cellStats, path string, requireAll bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading thresholds (run make grid-stamp first?): %w", err)
	}
	var th thresholdsFile
	if err := json.Unmarshal(raw, &th); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	var violations []string
	checked := 0
	for _, name := range sortedKeys(th.Cells) {
		bounds := th.Cells[name]
		st, present := cells[name]
		if !present {
			if requireAll {
				violations = append(violations, fmt.Sprintf("%s: stamped cell missing from the fresh grid", name))
			}
			continue
		}
		checked++
		if len(st.notIdentical) > 0 {
			violations = append(violations, fmt.Sprintf("%s: identical_output=false in %s",
				name, strings.Join(st.notIdentical, ", ")))
		}
		for _, k := range sortedKeys(bounds.MinSpeedup) {
			bound := bounds.MinSpeedup[k]
			got, seen := st.minSpeedup[k]
			if !seen {
				violations = append(violations, fmt.Sprintf("%s: field %s missing from the fresh run", name, k))
				continue
			}
			if got < bound {
				violations = append(violations, fmt.Sprintf("%s: %s = %.3f below the stamped bound %.3f", name, k, got, bound))
			}
		}
		for _, k := range sortedKeys(bounds.MaxSlowdown) {
			bound := bounds.MaxSlowdown[k]
			got, seen := st.maxSlowdown[k]
			if !seen {
				violations = append(violations, fmt.Sprintf("%s: field %s missing from the fresh run", name, k))
				continue
			}
			if got > bound {
				violations = append(violations, fmt.Sprintf("%s: %s = %.3f above the stamped bound %.3f", name, k, got, bound))
			}
		}
	}
	// Fresh cells with no stamped bounds are advisory: a new experiment
	// lands, then gets stamped.
	for _, name := range sortedKeys(cells) {
		if _, ok := th.Cells[name]; !ok {
			fmt.Printf("note: cell %s has no stamped thresholds (run make grid-stamp to adopt it)\n", name)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", v)
		}
		return fmt.Errorf("%d grid threshold violation(s)", len(violations))
	}
	if checked == 0 {
		return fmt.Errorf("no stamped cell matched the fresh grid — nothing was gated")
	}
	fmt.Printf("grid check passed: %d cell(s) within thresholds\n", checked)
	return nil
}

func round3(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
