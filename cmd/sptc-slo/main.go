// Command sptc-slo is the load-SLO regression gate: it diffs a fresh
// sptc-loadgen run (BENCH_4.json schema) against a committed baseline and
// fails when the serving latency or shed behaviour regressed.
//
//	sptc-loadgen -addr ... -json fresh.json
//	sptc-slo -baseline BENCH_4.json -fresh fresh.json
//
// Gates (each overridable):
//
//   - p95 latency: fresh client p95 may exceed the baseline's by at most
//     -max-p95-pct percent.
//   - shed rate: fresh shed rate may exceed the baseline's by at most
//     -max-shed-pp percentage points.
//   - errors: any transport/server errors in the fresh run fail outright.
//
// -stamp promotes the fresh run to the baseline path instead of comparing —
// refusing runs with sheds or errors, so a degraded run can never become
// the bar the next change is measured against.
//
// Exit codes: 0 pass, 1 SLO regression (or refused stamp), 2 usage/IO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sparta/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_4.json", "committed baseline report")
		fresh     = flag.String("fresh", "", "fresh loadgen report to gate (required unless -stamp)")
		maxP95Pct = flag.Float64("max-p95-pct", 50, "max allowed client p95 increase over baseline, percent")
		maxShedPP = flag.Float64("max-shed-pp", 1, "max allowed shed-rate increase over baseline, percentage points")
		stamp     = flag.Bool("stamp", false, "promote -fresh to -baseline instead of comparing")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "sptc-slo: -fresh is required")
		os.Exit(2)
	}

	freshRep, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptc-slo: %v\n", err)
		os.Exit(2)
	}

	if *stamp {
		if reasons := stampRefusals(freshRep); len(reasons) > 0 {
			fmt.Fprintf(os.Stderr, "sptc-slo: refusing to stamp %s as baseline:\n", *fresh)
			for _, r := range reasons {
				fmt.Fprintf(os.Stderr, "  - %s\n", r)
			}
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(freshRep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sptc-slo: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sptc-slo: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("stamped %s -> %s (p95 %.4fs, %d ok, shed rate %.2f%%)\n",
			*fresh, *baseline, freshRep.Run.Client.P95, freshRep.Run.OK, 100*freshRep.Run.ShedRate)
		return
	}

	baseRep, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sptc-slo: %v\n", err)
		os.Exit(2)
	}
	regressions := diff(baseRep, freshRep, *maxP95Pct, *maxShedPP)
	fmt.Printf("baseline %s (commit %s): p95 %.4fs, shed %.2f%%\n",
		*baseline, baseRep.Meta.Commit, baseRep.Run.Client.P95, 100*baseRep.Run.ShedRate)
	fmt.Printf("fresh    %s (commit %s): p95 %.4fs, shed %.2f%%\n",
		*fresh, freshRep.Meta.Commit, freshRep.Run.Client.P95, 100*freshRep.Run.ShedRate)
	if len(regressions) == 0 {
		fmt.Println("SLO gate: PASS")
		return
	}
	fmt.Println("SLO gate: FAIL")
	for _, r := range regressions {
		fmt.Printf("  - %s\n", r)
	}
	os.Exit(1)
}

func load(path string) (*bench.LoadReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.LoadReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Meta.Bench != "loadgen" {
		return nil, fmt.Errorf("%s: bench %q is not a loadgen report", path, rep.Meta.Bench)
	}
	return &rep, nil
}

// stampRefusals lists why a run is unfit to become the baseline: a baseline
// recorded under shedding or errors would hide those same failures in every
// later comparison.
func stampRefusals(rep *bench.LoadReport) []string {
	var out []string
	r := rep.Run
	if r.Errors > 0 {
		out = append(out, fmt.Sprintf("run has %d errors", r.Errors))
	}
	if r.ShedRate > 0 || len(r.Shed) > 0 {
		out = append(out, fmt.Sprintf("run shed %.2f%% of requests (%v)", 100*r.ShedRate, r.Shed))
	}
	if r.OK == 0 {
		out = append(out, "run completed no requests")
	}
	if r.Client.P95 <= 0 {
		out = append(out, "run has no client p95")
	}
	return out
}

// diff returns the list of violated gates (empty = pass).
func diff(base, fresh *bench.LoadReport, maxP95Pct, maxShedPP float64) []string {
	var out []string
	b, f := base.Run, fresh.Run
	if f.Errors > 0 {
		out = append(out, fmt.Sprintf("fresh run has %d errors", f.Errors))
	}
	if f.OK == 0 {
		out = append(out, "fresh run completed no requests")
	}
	if b.Client.P95 > 0 && f.Client.P95 > b.Client.P95*(1+maxP95Pct/100) {
		out = append(out, fmt.Sprintf("client p95 regressed %.1f%% (%.4fs -> %.4fs, max +%.1f%%)",
			100*(f.Client.P95/b.Client.P95-1), b.Client.P95, f.Client.P95, maxP95Pct))
	}
	if dp := 100 * (f.ShedRate - b.ShedRate); dp > maxShedPP {
		out = append(out, fmt.Sprintf("shed rate rose %.2fpp (%.2f%% -> %.2f%%, max +%.2fpp)",
			dp, 100*b.ShedRate, 100*f.ShedRate, maxShedPP))
	}
	return out
}
