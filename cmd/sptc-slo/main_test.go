package main

import (
	"testing"

	"sparta/internal/bench"
)

func goodRun() *bench.LoadReport {
	return &bench.LoadReport{
		Meta: bench.Meta{Bench: "loadgen", Commit: "abc"},
		Run: bench.LoadRun{
			TargetRPS: 30, Requests: 900, OK: 900,
			AchievedRPS: 29.8,
			Client:      bench.Quantiles{Count: 900, P50: 0.004, P95: 0.010, P99: 0.015},
			Server:      bench.Quantiles{Count: 900, P50: 0.004, P95: 0.010, P99: 0.015},
		},
	}
}

// TestGatePassesOnItself: the committed-baseline self-comparison (the CI
// sanity leg) must be clean.
func TestGatePassesOnItself(t *testing.T) {
	base := goodRun()
	if regs := diff(base, base, 25, 1); len(regs) != 0 {
		t.Fatalf("baseline vs itself: %v", regs)
	}
}

// TestGateFailsOnInjectedP95Regression is the acceptance check: +50% p95
// must trip a 25% gate, and stay within a 60% gate.
func TestGateFailsOnInjectedP95Regression(t *testing.T) {
	base, fresh := goodRun(), goodRun()
	fresh.Run.Client.P95 *= 1.5
	regs := diff(base, fresh, 25, 1)
	if len(regs) != 1 {
		t.Fatalf("want exactly the p95 regression, got %v", regs)
	}
	if regs := diff(base, fresh, 60, 1); len(regs) != 0 {
		t.Fatalf("+50%% within a 60%% gate should pass, got %v", regs)
	}
}

// TestGateFailsOnShedIncrease: a shed-rate rise beyond the allowance fails
// even with identical latency.
func TestGateFailsOnShedIncrease(t *testing.T) {
	base, fresh := goodRun(), goodRun()
	fresh.Run.ShedRate = 0.05 // 5pp over a 0% baseline
	fresh.Run.Shed = map[string]int{"inflight": 45}
	if regs := diff(base, fresh, 25, 1); len(regs) != 1 {
		t.Fatalf("want the shed regression, got %v", regs)
	}
	if regs := diff(base, fresh, 25, 10); len(regs) != 0 {
		t.Fatalf("5pp within a 10pp allowance should pass, got %v", regs)
	}
}

// TestGateFailsOnErrors: fresh errors fail regardless of thresholds.
func TestGateFailsOnErrors(t *testing.T) {
	base, fresh := goodRun(), goodRun()
	fresh.Run.Errors = 3
	if regs := diff(base, fresh, 1000, 1000); len(regs) == 0 {
		t.Fatal("errors must fail the gate")
	}
}

// TestStampRefusals: degraded runs can never become the baseline.
func TestStampRefusals(t *testing.T) {
	if rs := stampRefusals(goodRun()); len(rs) != 0 {
		t.Fatalf("clean run refused: %v", rs)
	}
	shedders := goodRun()
	shedders.Run.ShedRate = 0.01
	if rs := stampRefusals(shedders); len(rs) == 0 {
		t.Fatal("shedding run accepted as baseline")
	}
	errored := goodRun()
	errored.Run.Errors = 1
	if rs := stampRefusals(errored); len(rs) == 0 {
		t.Fatal("errored run accepted as baseline")
	}
	empty := goodRun()
	empty.Run.OK = 0
	empty.Run.Client = bench.Quantiles{}
	if rs := stampRefusals(empty); len(rs) == 0 {
		t.Fatal("empty run accepted as baseline")
	}
}
