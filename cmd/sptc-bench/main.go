// Command sptc-bench regenerates the paper's evaluation tables and figures.
//
//	sptc-bench -exp fig4                # one experiment
//	sptc-bench -exp all                 # the whole evaluation
//	sptc-bench -exp fig4 -scale 20000   # larger synthetic datasets
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 table2 table3 table4
// headline ablation kernels all. See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Observability (DESIGN.md §8):
//
//	sptc-bench -exp kernels -trace out.json       # Chrome trace-event spans
//	sptc-bench -exp all -metrics-addr :9090       # /metrics + pprof + expvar
//	sptc-bench -exp fig4 -metrics-addr :9090 -hold 60s
//
// -trace writes every contraction's stage and per-worker chunk spans (plus
// fig8's bandwidth counter tracks) as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. -metrics-addr
// serves the obs registry in Prometheus text format at /metrics alongside
// net/http/pprof and expvar under /debug/; -hold keeps the process (and the
// endpoint) alive after the experiments finish so the run can be scraped.
// With either flag set, probe-length and stage-time histogram summaries are
// printed after the experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sparta"
	"sparta/internal/bench"
	"sparta/internal/obs"
	"sparta/internal/stats"
)

var experiments = []struct {
	name string
	desc string
	run  func(io.Writer, bench.Config) error
}{
	{"table3", "dataset characteristics (generator presets)", runTable3},
	{"fig2", "SpTC-SPA stage breakdown", bench.Fig2},
	{"table2", "access patterns per stage and object", bench.Table2},
	{"fig3", "one-object-in-PMM characterization", bench.Fig3},
	{"fig4", "algorithm speedups (HtY+HtA, COOY+HtA vs COOY+SPA)", bench.Fig4},
	{"headline", "28-576x summary and Sparta stage shares", bench.Headline},
	{"table4", "Hubbard-2D tensor characteristics", bench.Table4},
	{"fig5", "Sparta vs block-sparse (ITensor-style)", bench.Fig5},
	{"fig6", "thread scalability", bench.Fig6},
	{"fig7", "heterogeneous-memory policy comparison", bench.Fig7},
	{"fig8", "bandwidth timelines", bench.Fig8},
	{"fig9", "peak memory consumption", bench.Fig9},
	{"scaling", "speedup growth with dataset size", bench.Scaling},
	{"ablation", "design-choice ablations", bench.Ablation},
	{"search", "Y index-search structure comparison (COO/CSF/HtY)", bench.SearchAblation},
	{"duel", "stage-by-stage algorithm comparison on one workload", bench.Duel},
	{"kernels", "hash-kernel duel: chained (seed) vs flat open addressing", runKernels},
	{"sort", "sort duel: quicksort vs radix, unfused vs fused writeback", runSort},
	{"planner", "contraction-order duel: written chains vs cost-based planner", runPlanner},
	{"twophase", "symbolic+numeric two-phase SpTC vs Sparta's dynamic allocation", bench.TwoPhase},
	{"ooc", "out-of-core duel: mmap-streamed windows vs in-memory driver", runOOC},
	{"shard", "shard duel: scatter/gather across S workers vs one-shot", runShard},
	{"formats", "storage formats: COO vs CSF vs HiCOO footprint and scan", bench.Formats},
	{"reorder", "frequency index reordering: block density and Sparta time", bench.Reorder},
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (or 'all'); empty lists them")
		scale       = flag.Int("scale", 4000, "target non-zeros per generated dataset")
		threads     = flag.Int("t", 0, "worker threads (0 = all cores)")
		seed        = flag.Int64("seed", 42, "generator seed")
		dramFrac    = flag.Float64("dram", 0.6, "simulated DRAM budget as fraction of peak memory")
		tracePath   = flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/pprof, /debug/vars on this address")
		hold        = flag.Duration("hold", 0, "keep serving -metrics-addr this long after the experiments finish")
	)
	commit := flag.String("commit", "", "git revision recorded in -json metadata (default: the binary's stamped vcs.revision)")
	flag.StringVar(&duelJSON, "json", "", "for -exp kernels/sort/planner/ooc/shard: also write the duel rows to this JSON file")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Threads: *threads, Seed: *seed, DRAMFraction: *dramFrac, Commit: *commit}
	if *tracePath != "" {
		cfg.Tracer = obs.NewTracer()
	}
	if *metricsAddr != "" || *tracePath != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		var err error
		if srv, err = obs.StartServer(*metricsAddr, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "sptc-bench: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())
	}

	if *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-9s %s\n", e.name, e.desc)
		}
		fmt.Println("  all       run everything")
		return
	}
	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = names[:0]
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	for i, name := range names {
		found := false
		for _, e := range experiments {
			if e.name == name {
				found = true
				if i > 0 {
					fmt.Println()
				}
				sp := cfg.Tracer.Start("exp "+name, 0)
				err := e.run(os.Stdout, cfg)
				sp.End()
				if err != nil {
					fmt.Fprintf(os.Stderr, "sptc-bench: %s: %v\n", name, err)
					os.Exit(1)
				}
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "sptc-bench: unknown experiment %q (run without -exp to list)\n", name)
			os.Exit(1)
		}
	}

	if *tracePath != "" {
		if err := cfg.Tracer.WriteFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "sptc-bench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s (load in https://ui.perfetto.dev)\n",
			cfg.Tracer.Len(), *tracePath)
	}
	printHistograms(os.Stdout, cfg.Metrics)
	if srv != nil && *hold > 0 {
		fmt.Printf("holding the metrics endpoint for %v\n", *hold)
		time.Sleep(*hold)
	}
	if srv != nil {
		_ = srv.Close()
	}
}

// printHistograms renders every populated registry histogram as a summary
// table — the terminal rendering of what /metrics exposes for scraping.
func printHistograms(w io.Writer, reg *obs.Registry) {
	first := true
	for _, s := range reg.Snapshot() {
		if s.Type != "histogram" || s.Count == 0 {
			continue
		}
		if first {
			fmt.Fprintln(w, "\nObserved distributions:")
			first = false
		}
		fmt.Fprintln(w)
		stats.RenderHistogram(w, s.Name+s.Labels, s.Bounds, s.Counts)
	}
}

// duelJSON is the -json flag: when set, the kernels, sort, and planner
// experiments also persist their rows (this is how the BENCH_*.json files
// at the repo root are produced: sptc-bench -exp kernels -json BENCH_1.json,
// -exp sort -json BENCH_2.json, -exp planner -json BENCH_3.json — see
// `make bench-json`).
var duelJSON string

func runKernels(w io.Writer, cfg bench.Config) error {
	return bench.KernelsJSON(w, cfg, duelJSON)
}

func runSort(w io.Writer, cfg bench.Config) error {
	return bench.SortJSON(w, cfg, duelJSON)
}

func runPlanner(w io.Writer, cfg bench.Config) error {
	return bench.PlannerJSON(w, cfg, duelJSON)
}

func runOOC(w io.Writer, cfg bench.Config) error {
	return bench.OOCJSON(w, cfg, duelJSON)
}

func runShard(w io.Writer, cfg bench.Config) error {
	return bench.ShardJSON(w, cfg, duelJSON)
}

func runTable3(w io.Writer, cfg bench.Config) error {
	fmt.Fprintln(w, "Table 3: dataset characteristics (paper scale -> generated scale)")
	tab := stats.NewTable("Tensor", "Order", "Paper dims", "Paper nnz", "Density", "Generated", "Gen nnz")
	for _, p := range sparta.Presets {
		t := cfg.Tensor(p)
		tab.Row(p.Name, len(p.Dims), dimsString(p.Dims), p.NNZ,
			fmt.Sprintf("%.1e", p.Density), dimsString(t.Dims), t.NNZ())
	}
	tab.Render(w)
	return nil
}

func dimsString(dims []uint64) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "x")
}
