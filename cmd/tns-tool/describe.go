package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"sparta/internal/obs"
	"sparta/internal/stats"
)

// describeCmd prints tensor features beyond stat's summary: per-mode index
// occupancy, skew (imbalance of the per-index non-zero counts, the quantity
// that drives Sparta's sub-tensor load balance when the mode becomes the
// split dimension), and nnz-per-index distribution histograms rendered with
// the observability layer's bucketing.
func describeCmd(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("describe needs one file")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	card := 1.0
	for _, d := range t.Dims {
		card *= float64(d)
	}
	fmt.Printf("%v\n", t)
	fmt.Printf("order    %d\n", t.Order())
	fmt.Printf("nnz      %d\n", t.NNZ())
	fmt.Printf("density  %.3e\n", float64(t.NNZ())/card)
	fmt.Printf("payload  %s\n", stats.FormatBytes(t.Bytes()))

	tab := stats.NewTable("Mode", "Size", "Distinct", "MinIdx", "MaxIdx", "Occupancy", "MeanNNZ", "MaxNNZ", "Imbalance")
	shards := make([]*obs.HistShard, t.Order())
	for m := range t.Dims {
		counts := map[uint32]uint64{}
		min, max := uint32(math.MaxUint32), uint32(0)
		for _, v := range t.Inds[m] {
			counts[v]++
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if t.NNZ() == 0 {
			min = 0
		}
		var maxCnt uint64
		sh := obs.NewHistShard(obs.ProbeBuckets)
		for _, c := range counts {
			sh.Observe(float64(c))
			if c > maxCnt {
				maxCnt = c
			}
		}
		shards[m] = sh
		var meanCnt, imbalance float64
		if len(counts) > 0 {
			meanCnt = float64(t.NNZ()) / float64(len(counts))
			imbalance = float64(maxCnt) / meanCnt
		}
		tab.Row(m, t.Dims[m], len(counts), min, max,
			fmt.Sprintf("%.1f%%", 100*float64(len(counts))/float64(t.Dims[m])),
			meanCnt, maxCnt, imbalance)
	}
	tab.Render(os.Stdout)

	for m, sh := range shards {
		if sh.Count() == 0 {
			continue
		}
		fmt.Println()
		stats.RenderHistogram(os.Stdout,
			fmt.Sprintf("mode %d: non-zeros per used index", m),
			obs.ProbeBuckets, sh.Counts())
	}
	return nil
}
