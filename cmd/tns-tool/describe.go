package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sparta/internal/plan"
	"sparta/internal/stats"
)

// describeCmd prints tensor features beyond stat's summary: per-mode index
// occupancy, skew (imbalance of the per-index non-zero counts, the quantity
// that drives Sparta's sub-tensor load balance when the mode becomes the
// split dimension), and nnz-per-index distribution histograms rendered with
// the observability layer's bucketing. With -json it emits the exact
// machine-readable statistics the contraction-order planner consumes
// (plan.TensorStats), so offline analysis and the planner read one schema.
func describeCmd(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the planner's TensorStats as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("describe needs one file")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	st := plan.StatsOf(t)

	if *asJSON {
		// Marshal fully before touching stdout: a streaming encoder that
		// fails mid-struct leaves a truncated JSON prefix on stdout, which a
		// consumer piping into a parser reads as corrupt rather than failed.
		// Buffering keeps stdout all-or-nothing; the error travels to stderr
		// through main's usual exit path.
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return fmt.Errorf("describe: encoding %s: %w", fs.Arg(0), err)
		}
		data = append(data, '\n')
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
		return nil
	}

	fmt.Printf("%v\n", t)
	fmt.Printf("order    %d\n", t.Order())
	fmt.Printf("nnz      %d\n", st.NNZ)
	fmt.Printf("density  %.3e\n", st.Density)
	fmt.Printf("payload  %s\n", stats.FormatBytes(st.Bytes))

	tab := stats.NewTable("Mode", "Size", "Distinct", "MinIdx", "MaxIdx", "Occupancy", "MeanNNZ", "MaxNNZ", "Imbalance")
	for m, ms := range st.Modes {
		tab.Row(m, ms.Size, ms.Distinct, ms.MinIdx, ms.MaxIdx,
			fmt.Sprintf("%.1f%%", 100*float64(ms.Distinct)/float64(ms.Size)),
			ms.MeanCount, ms.MaxCount, ms.Imbalance)
	}
	tab.Render(os.Stdout)

	for m, ms := range st.Modes {
		if ms.Distinct == 0 {
			continue
		}
		fmt.Println()
		stats.RenderHistogram(os.Stdout,
			fmt.Sprintf("mode %d: non-zeros per used index", m),
			ms.HistBounds, ms.HistCounts)
	}
	return nil
}
