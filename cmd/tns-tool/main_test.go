package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sparta"
	"sparta/internal/plan"
)

func write(t *testing.T, path string, ten *sparta.Tensor) {
	t.Helper()
	if err := save(ten, path); err != nil {
		t.Fatal(err)
	}
}

func TestSubcommands(t *testing.T) {
	dir := t.TempDir()
	x := sparta.Random([]uint64{6, 5, 4}, 50, 1)
	tns := filepath.Join(dir, "x.tns")
	bin := filepath.Join(dir, "x.bin")
	write(t, tns, x)

	if err := run([]string{"stat", tns}); err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := run([]string{"describe", tns}); err != nil {
		t.Fatalf("describe: %v", err)
	}
	if err := run([]string{"describe", "-json", tns}); err != nil {
		t.Fatalf("describe -json: %v", err)
	}
	if err := run([]string{"head", "-n", "3", tns}); err != nil {
		t.Fatalf("head: %v", err)
	}
	if err := run([]string{"convert", "-o", bin, tns}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	back, err := load(bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatalf("convert lost non-zeros: %d vs %d", back.NNZ(), x.NNZ())
	}

	sorted := filepath.Join(dir, "sorted.tns")
	if err := run([]string{"sort", "-o", sorted, tns}); err != nil {
		t.Fatalf("sort: %v", err)
	}
	s, _ := load(sorted)
	if !s.IsSorted() {
		t.Fatal("sort output unsorted")
	}

	perm := filepath.Join(dir, "perm.tns")
	if err := run([]string{"permute", "-perm", "2,0,1", "-o", perm, tns}); err != nil {
		t.Fatalf("permute: %v", err)
	}
	p, _ := load(perm)
	if p.Dims[0] != 4 || p.Dims[1] != 6 || p.Dims[2] != 5 {
		t.Fatalf("permute dims = %v", p.Dims)
	}

	// diff: identical files pass, different values fail.
	if err := run([]string{"diff", tns, bin}); err != nil {
		t.Fatalf("diff identical: %v", err)
	}
	y := x.Clone()
	y.Vals[0] += 1
	other := filepath.Join(dir, "y.tns")
	write(t, other, y)
	if err := run([]string{"diff", tns, other}); err == nil {
		t.Fatal("diff missed a value change")
	}
	if err := run([]string{"diff", "-tol", "2", tns, other}); err != nil {
		t.Fatalf("diff with tolerance: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"stat", "/nonexistent.tns"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"describe"}); err == nil {
		t.Error("describe without a file accepted")
	}
	if err := run([]string{"sort", "x.tns"}); err == nil {
		t.Error("sort without -o accepted")
	}
	if err := run([]string{"permute", "-perm", "a,b", "-o", "/tmp/x.tns", "x.tns"}); err == nil {
		t.Error("bad permutation accepted")
	}
}

// TestDescribeJSON checks the -json output parses back into the planner's
// TensorStats schema with the right headline numbers.
func TestDescribeJSON(t *testing.T) {
	dir := t.TempDir()
	x := sparta.Random([]uint64{6, 5, 4}, 50, 9)
	tns := filepath.Join(dir, "x.tns")
	write(t, tns, x)

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"describe", "-json", tns})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("describe -json: %v", runErr)
	}
	var st plan.TensorStats
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatalf("output is not TensorStats JSON: %v\n%s", err, out)
	}
	if st.NNZ != x.NNZ() || len(st.Modes) != x.Order() {
		t.Fatalf("stats mismatch: nnz %d modes %d", st.NNZ, len(st.Modes))
	}
	for m, ms := range st.Modes {
		if ms.Size != x.Dims[m] {
			t.Errorf("mode %d size %d, want %d", m, ms.Size, x.Dims[m])
		}
		if ms.Distinct == 0 || len(ms.HistCounts) != len(ms.HistBounds)+1 {
			t.Errorf("mode %d histogram shape off", m)
		}
	}
}
