// Command tns-tool inspects and transforms sparse tensor files in the
// FROSTT .tns text format or the repository's binary formats (selected by
// file extension): .bin is the v1 stream layout, .sptn the v2 mmap-ready
// layout with 8-byte-aligned sections and a sorted-window index — the
// format the out-of-core streaming driver consumes zero-copy.
//
//	tns-tool stat     x.tns                # shape, nnz, density, per-mode stats
//	tns-tool describe x.tns                # + occupancy, skew, nnz-per-index histograms
//	tns-tool head    x.tns -n 20           # first non-zeros
//	tns-tool sort    x.tns -o sorted.tns   # lexicographic sort
//	tns-tool permute x.tns -perm 2,0,1 -o p.tns
//	tns-tool convert x.tns -o x.bin        # .tns <-> .bin <-> .sptn
//	tns-tool sort    x.tns -o x.sptn       # one step to a windowed v2 file
//	tns-tool diff    a.tns b.tns -tol 1e-9 # compare (sorted) tensors
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sparta"
	"sparta/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tns-tool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: tns-tool {stat|describe|head|sort|permute|convert|diff} <file> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "stat":
		return statCmd(rest)
	case "describe":
		return describeCmd(rest)
	case "head":
		return headCmd(rest)
	case "sort":
		return sortCmd(rest)
	case "permute":
		return permuteCmd(rest)
	case "convert":
		return convertCmd(rest)
	case "diff":
		return diffCmd(rest)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// load reads a tensor choosing the format by extension. LoadBin accepts
// both binary versions, so .sptn and .bin read through the same path.
func load(path string) (*sparta.Tensor, error) {
	switch filepath.Ext(path) {
	case ".bin", ".sptn":
		return sparta.LoadBin(path)
	}
	return sparta.LoadTNS(path)
}

// save writes a tensor choosing the format by extension: .sptn writes the
// v2 layout (with the sorted-window index when the tensor is sorted — so
// `tns-tool sort x.tns -o x.sptn` produces a stream-ready file in one
// step), .bin the v1 layout.
func save(t *sparta.Tensor, path string) error {
	switch filepath.Ext(path) {
	case ".sptn":
		return t.SaveBinV2(path)
	case ".bin":
		return t.SaveBin(path)
	}
	return t.SaveTNS(path)
}

func statCmd(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs one file")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	card := 1.0
	for _, d := range t.Dims {
		card *= float64(d)
	}
	fmt.Printf("%v\n", t)
	fmt.Printf("order    %d\n", t.Order())
	fmt.Printf("nnz      %d\n", t.NNZ())
	fmt.Printf("density  %.3e\n", float64(t.NNZ())/card)
	fmt.Printf("payload  %s\n", stats.FormatBytes(t.Bytes()))
	fmt.Printf("sorted   %v\n", t.IsSorted())
	tab := stats.NewTable("Mode", "Size", "Distinct", "MinIdx", "MaxIdx")
	for m := range t.Dims {
		distinct := map[uint32]bool{}
		min, max := uint32(math.MaxUint32), uint32(0)
		for _, v := range t.Inds[m] {
			distinct[v] = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if t.NNZ() == 0 {
			min = 0
		}
		tab.Row(m, t.Dims[m], len(distinct), min, max)
	}
	tab.Render(os.Stdout)
	var minV, maxV, sum float64
	if t.NNZ() > 0 {
		minV, maxV = t.Vals[0], t.Vals[0]
	}
	for _, v := range t.Vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	fmt.Printf("values   min %.4g  max %.4g  sum %.6g\n", minV, maxV, sum)
	return nil
}

func headCmd(args []string) error {
	fs := flag.NewFlagSet("head", flag.ContinueOnError)
	n := fs.Int("n", 10, "number of non-zeros to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("head needs one file")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	idx := make([]uint32, t.Order())
	for i := 0; i < t.NNZ() && i < *n; i++ {
		t.Index(i, idx)
		for _, v := range idx {
			fmt.Printf("%d ", v+1)
		}
		fmt.Printf("%g\n", t.Vals[i])
	}
	return nil
}

func sortCmd(args []string) error {
	fs := flag.NewFlagSet("sort", flag.ContinueOnError)
	out := fs.String("o", "", "output path (required)")
	threads := fs.Int("t", 0, "threads")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("sort needs one input file and -o")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	t.Sort(*threads)
	return save(t, *out)
}

func permuteCmd(args []string) error {
	fs := flag.NewFlagSet("permute", flag.ContinueOnError)
	out := fs.String("o", "", "output path (required)")
	permStr := fs.String("perm", "", "mode permutation, e.g. 2,0,1 (new mode m = old mode perm[m])")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *out == "" || *permStr == "" {
		return fmt.Errorf("permute needs one input file, -perm, and -o")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	var perm []int
	for _, f := range strings.Split(*permStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad permutation entry %q", f)
		}
		perm = append(perm, v)
	}
	if err := t.Permute(perm); err != nil {
		return err
	}
	return save(t, *out)
}

func convertCmd(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	out := fs.String("o", "", "output path (required; format by extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("convert needs one input file and -o")
	}
	t, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	return save(t, *out)
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tol", 0, "value tolerance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs two files")
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	a.Sort(0)
	b.Sort(0)
	if len(a.Dims) != len(b.Dims) {
		return fmt.Errorf("order differs: %d vs %d", len(a.Dims), len(b.Dims))
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return fmt.Errorf("mode %d size differs: %d vs %d", m, a.Dims[m], b.Dims[m])
		}
	}
	if a.NNZ() != b.NNZ() {
		return fmt.Errorf("nnz differs: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := 0; i < a.NNZ(); i++ {
		for m := range a.Dims {
			if a.Inds[m][i] != b.Inds[m][i] {
				return fmt.Errorf("non-zero %d: coordinate differs on mode %d", i, m)
			}
		}
		if d := math.Abs(a.Vals[i] - b.Vals[i]); d > *tol {
			return fmt.Errorf("non-zero %d: |%g - %g| = %g exceeds tolerance %g",
				i, a.Vals[i], b.Vals[i], d, *tol)
		}
	}
	fmt.Println("tensors are identical within tolerance")
	return nil
}
