package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lnoverflow guards the LN linearization against silent uint64 wrap-around:
// the whole scheme (§3.3) is only a bijection while the product of mode
// sizes fits in a uint64, so every multiply that combines dimension
// cardinalities must either check overflow through bits.Mul64 (the
// NewRadix pattern) or point at the invariant that makes it safe with a
// //lint:ignore lnoverflow justification (Encode sites rely on ln < Card,
// which NewRadix established with the checked product).
var lnoverflowAnalyzer = &Analyzer{
	Name: "lnoverflow",
	Doc:  "unguarded uint64 multiplication of dimension/cardinality values (LN wrap-around hazard)",
	Run:  runLnoverflow,
}

// dimNames marks identifiers/selectors treated as dimension cardinalities.
func isDimName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "dim") || strings.Contains(n, "card") || strings.Contains(n, "stride")
}

func runLnoverflow(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if fd.Body == nil {
				continue
			}
			if callsCheckedMul(p, fd.Body) {
				continue // the NewRadix pattern: 128-bit product, hi word checked
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.MUL {
					return true
				}
				if !isUint64(p, be) {
					return true
				}
				if !mentionsDim(be.X) && !mentionsDim(be.Y) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(be.OpPos),
					Analyzer: "lnoverflow",
					Message:  "unguarded uint64 multiply on a dimension product; check overflow with bits.Mul64 or name the protecting invariant with //lint:ignore",
				})
				return true
			})
		}
	}
	return diags
}

// callsCheckedMul reports whether body guards its products: a call to
// bits.Mul64 (or a local wrapper whose name contains "mul64"), or a call to
// lnum.NewRadix/MustRadix, which checks the same dims' product with the
// 128-bit multiply before any Encode-style accumulation can run.
func callsCheckedMul(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "NewRadix" || fun.Sel.Name == "MustRadix" {
				found = true
			}
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok &&
					pn.Imported().Path() == "math/bits" && fun.Sel.Name == "Mul64" {
					found = true
				}
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(fun.Name), "mul64") ||
				fun.Name == "NewRadix" || fun.Name == "MustRadix" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isUint64 reports whether the expression's static type is uint64.
func isUint64(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// mentionsDim reports whether the operand subtree names a dimension-like
// value (dims, card, strides — by identifier or selector name). len(dims)
// subtrees don't count: the length of a dims slice is a mode count, not a
// cardinality.
func mentionsDim(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return false
			}
		case *ast.Ident:
			if isDimName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isDimName(n.Sel.Name) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
