package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ctxloop keeps cancellation threaded through the dynamic-scheduling loops:
// the serving path (sptc-serve, engine.Contract) relies on context to shed
// load, and a dropped ctx anywhere between an exported entry point and
// parallel.ForChunked* silently turns a cancellable contraction into an
// unkillable one. Any exported function that lexically runs a ForChunked
// family loop must accept a context.Context, and once it has one it must
// call the Ctx variant so the checkpoint between chunk claims actually
// observes cancellation.
var ctxloopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc:  "exported function runs parallel.ForChunked* without threading a context.Context",
	Run:  runCtxloop,
}

func runCtxloop(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "/parallel") {
			continue // the loop implementations themselves
		}
		for _, fd := range funcDecls(p) {
			if fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			hasCtx := funcHasCtxParam(p, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				name, ok := forChunkedCall(p, n)
				if !ok {
					return true
				}
				switch {
				case !hasCtx:
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(n.Pos()),
						Analyzer: "ctxloop",
						Message: fmt.Sprintf(
							"exported %s runs parallel.%s without a context.Context parameter; accept a ctx and use the Ctx variant so cancellation reaches the loop",
							fd.Name.Name, name),
					})
				case !strings.HasSuffix(name, "Ctx"):
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(n.Pos()),
						Analyzer: "ctxloop",
						Message: fmt.Sprintf(
							"exported %s has a context.Context but calls parallel.%s; use parallel.%sCtx so the chunk-claim checkpoint observes cancellation",
							fd.Name.Name, name, name),
					})
				}
				return true
			})
		}
	}
	return diags
}

// forChunkedCall reports whether n is a call to parallel.ForChunked* and
// returns the function name.
func forChunkedCall(p *Package, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "ForChunked") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Name() != "parallel" {
		return "", false
	}
	return sel.Sel.Name, true
}

// funcHasCtxParam reports whether any parameter of fd is a context.Context.
func funcHasCtxParam(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		tv, ok := p.Info.Types[f.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
