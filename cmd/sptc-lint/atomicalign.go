package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// atomicalign guards the 64-bit atomic alignment contract: on 32-bit
// platforms (and the wasm port) sync/atomic's 64-bit operations fault
// unless the word is 8-byte aligned, and the only placement Go guarantees
// is "the first word in an allocated struct". A counter that works on
// amd64 therefore crashes on 386/arm the moment a field is inserted above
// it. The check finds &x.f arguments to the 64-bit sync/atomic functions
// and recomputes the field offset under a 32-bit sizes model: any offset
// that is not a multiple of 8 is a latent fault. (The atomic.Int64/Uint64
// wrapper types carry their own alignment and are always safe.)
var atomicalignAnalyzer = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operand is a struct field not 8-byte aligned on 32-bit platforms",
	Run:  runAtomicalign,
}

// atomic64Funcs are the sync/atomic functions whose pointer operand must be
// 8-byte aligned.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 is the strictest supported layout: 4-byte words, maximum
// alignment 4 (the gc layout for 386/arm).
var sizes32 = types.SizesFor("gc", "386")

func runAtomicalign(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		inspect(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomic64Funcs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			// First operand: &expr. Only struct-field operands have a
			// layout the type system can predict; locals and slice
			// elements are the allocator's problem.
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := p.Info.Selections[fsel]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			off, path := fieldOffset32(selInfo)
			if off < 0 || off%8 == 0 {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      p.Fset.Position(call.Args[0].Pos()),
				Analyzer: "atomicalign",
				Message: fmt.Sprintf(
					"atomic.%s on field %s at 32-bit offset %d (not 8-byte aligned); move the field first in its struct or use atomic.%s",
					sel.Sel.Name, path, off, wrapperFor(sel.Sel.Name)),
			})
			return true
		})
	}
	return diags
}

// fieldOffset32 resolves the selected field's byte offset from the start of
// its outermost struct under the 32-bit sizes model, following the
// selection's embedded-field path. Returns -1 when the receiver is not a
// struct chain the model can lay out.
func fieldOffset32(sel *types.Selection) (int64, string) {
	t := sel.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	var off int64
	var path []string
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return -1, ""
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		off += offsets[idx]
		path = append(path, st.Field(idx).Name())
		t = st.Field(idx).Type()
	}
	return off, strings.Join(path, ".")
}

// wrapperFor names the self-aligning sync/atomic wrapper type to suggest.
func wrapperFor(fn string) string {
	if strings.HasSuffix(fn, "Uint64") {
		return "Uint64"
	}
	return "Int64"
}
