package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want markers in fixture files:  // want <col> "substring"
// The diagnostic must sit at that file, line and column, and its message
// must contain the quoted substring.
var wantRE = regexp.MustCompile(`// want (\d+) "([^"]+)"`)

type expect struct {
	file     string
	line     int
	col      int
	analyzer string
	contains string
}

// loadFixture type-checks one fixture package under testdata/src, giving it
// the synthetic module path "fix" so path-sensitive analyzers (chunkloop,
// hotpanic) see the import-path shapes they key on.
func loadFixture(t *testing.T, path string) *Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(root, "fix")
	p, err := l.load(path)
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}
	return p
}

// parseWants scans the fixture's files for want markers.
func parseWants(t *testing.T, p *Package, analyzer string) []expect {
	t.Helper()
	var wants []expect
	ents, err := os.ReadDir(p.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file := filepath.Join(p.Dir, e.Name())
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				var col int
				fmt.Sscanf(m[1], "%d", &col)
				wants = append(wants, expect{file, i + 1, col, analyzer, m[2]})
			}
		}
	}
	return wants
}

// runFixture runs one analyzer (with the suppression machinery, like the
// real driver) over a fixture package and checks the findings against the
// want markers exactly: same file, line, column, and message substring —
// nothing missing, nothing extra.
func runFixture(t *testing.T, path string, a *Analyzer, extra ...expect) {
	t.Helper()
	p := loadFixture(t, path)
	pkgs := []*Package{p}
	sup, supDiags := collectSuppressions(pkgs)
	diags := append([]Diagnostic(nil), supDiags...)
	for _, d := range a.Run(pkgs) {
		if !suppressed(sup, d) {
			diags = append(diags, d)
		}
	}
	wants := append(parseWants(t, p, a.Name), extra...)

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line ||
				d.Pos.Column != w.col || d.Analyzer != w.analyzer {
				continue
			}
			if !strings.Contains(d.Message, w.contains) {
				t.Errorf("%s:%d:%d: message %q does not contain %q", w.file, w.line, w.col, d.Message, w.contains)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing diagnostic %s at %s:%d:%d (want message containing %q)",
				w.analyzer, w.file, w.line, w.col, w.contains)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestAtomicmixFixture(t *testing.T) {
	runFixture(t, "fix/atomicmix", atomicmixAnalyzer)
}

func TestChunkloopFixture(t *testing.T) {
	runFixture(t, "fix/internal/chunkfix", chunkloopAnalyzer)
}

func TestLnoverflowFixture(t *testing.T) {
	runFixture(t, "fix/lnoverflow", lnoverflowAnalyzer)
}

func TestHotpanicFixture(t *testing.T) {
	runFixture(t, "fix/internal/core", hotpanicAnalyzer)
}

func TestBareerrFixture(t *testing.T) {
	runFixture(t, "fix/bareerr", bareerrAnalyzer)
}

func TestSpanleakFixture(t *testing.T) {
	runFixture(t, "fix/spanleak", spanleakAnalyzer)
}

func TestCtxloopFixture(t *testing.T) {
	runFixture(t, "fix/ctxloop", ctxloopAnalyzer)
}

func TestMutexcopyFixture(t *testing.T) {
	runFixture(t, "fix/mutexcopy", mutexcopyAnalyzer)
}

func TestDeferinloopFixture(t *testing.T) {
	runFixture(t, "fix/internal/sortx", deferinloopAnalyzer)
}

func TestAtomicalignFixture(t *testing.T) {
	runFixture(t, "fix/atomicalign", atomicalignAnalyzer)
}

// TestSuppressionMachinery covers the directive plumbing itself: malformed
// and unknown-analyzer directives are reported and do not suppress, while a
// well-formed one silences its line.
func TestSuppressionMachinery(t *testing.T) {
	p := loadFixture(t, "fix/suppress")
	file := filepath.Join(p.Dir, "fix.go")
	runFixture(t, "fix/suppress", lnoverflowAnalyzer,
		expect{file, 7, 2, "lint", "malformed //lint:ignore"},
		expect{file, 9, 2, "lint", "unknown analyzer"},
	)
}

// TestModuleClean is the gate the Makefile encodes: the repo's own tree must
// lint clean. Run from the package directory, so point the walk at the
// module root.
func TestModuleClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, _, err := findModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint([]string{filepath.Join(modRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestExpandSkipsTestdata guards the fixture firewall: ./... from the tool's
// own directory must not descend into testdata (which holds intentional
// violations).
func TestExpandSkipsTestdata(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, modPath, err := findModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modRoot, modPath)
	paths, err := l.expand([]string{filepath.Join(modRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("expand leaked a testdata package: %s", p)
		}
	}
	if len(paths) < 10 {
		t.Errorf("expand found only %d packages, expected the whole module", len(paths))
	}
}
