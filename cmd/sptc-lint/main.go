// Command sptc-lint is Sparta's in-tree static-analysis gate: ten
// repo-specific analyzers over the whole module plus a compiler-diagnostic
// performance tier, built on nothing but go/parser + go/types so it runs
// offline with a bare toolchain (no golang.org/x/tools, no network, no
// module downloads).
//
//	go run ./cmd/sptc-lint ./...        # the whole module (what make verify runs)
//	go run ./cmd/sptc-lint ./internal/hashtab ./internal/core
//	go run ./cmd/sptc-lint -list        # describe the analyzers
//	go run ./cmd/sptc-lint -perf            # diff hot-path escapes/bounds checks vs lint/hotpath_budget.json
//	go run ./cmd/sptc-lint -perf-baseline   # re-stamp the budget (make perf-baseline)
//
// Analyzers:
//
//	atomicmix   struct fields accessed both via sync/atomic and plainly
//	chunkloop   hand-rolled goroutine fan-out / nnz-over-threads chunk math
//	lnoverflow  unguarded uint64 dimension-product multiplies
//	hotpanic    panic reachable from the contraction hot path
//	bareerr     dropped error results
//	spanleak    Tracer.Start* spans that are never End()ed
//	ctxloop     exported ForChunked* callers that drop context.Context
//	mutexcopy   sync.Mutex/WaitGroup/atomic values copied by value
//	deferinloop defer inside a loop in a hot-path package
//	atomicalign 64-bit atomics on struct fields misaligned for 32-bit
//
// The -perf tier runs the compiler itself (go build -gcflags '-m -m' and
// -d=ssa/check_bce/debug=1) over the hot-path packages, attributes every
// heap escape and bounds check to its enclosing function, and diffs the
// counts against the committed budget in lint/hotpath_budget.json. Any
// count above budget fails; make perf-baseline re-stamps the file after a
// deliberate change.
//
// A finding is suppressed by a comment on its line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory and the analyzer name must exist; malformed
// directives are themselves diagnostics. Test files are outside the lint
// scope (the gate covers shipped code; tests exercise intentional
// violations).
//
// Exit status: 0 when clean, 1 with findings, 2 on usage or load errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	perf := flag.Bool("perf", false, "diff compiler escape/bounds-check diagnostics against lint/hotpath_budget.json")
	perfBaseline := flag.Bool("perf-baseline", false, "re-stamp lint/hotpath_budget.json from the current diagnostics")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *perf || *perfBaseline {
		if err := perfMain(*perfBaseline); err != nil {
			if errors.Is(err, errBudgetExceeded) {
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "sptc-lint:", err)
			os.Exit(2)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sptc-lint [-list] [-perf] [-perf-baseline] <packages>   (e.g. sptc-lint ./...)")
		os.Exit(2)
	}

	diags, err := lint(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sptc-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sptc-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// lint loads the packages named by patterns and runs the analyzer suite.
func lint(patterns []string) ([]Diagnostic, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(wd)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		pkgs = append(pkgs, p)
	}
	return runSuite(pkgs), nil
}
