// Package ctxloop is the ctxloop analyzer fixture: exported functions that
// run parallel.ForChunked* loops with and without a threaded context.
package ctxloop

import (
	"context"

	"fix/internal/parallel"
)

// Exported and chunk-parallel but no context parameter: flagged.
func Scatter(n, threads int) {
	parallel.ForChunked(threads, n, 0, func(_, lo, hi int) {}) // want 2 "without a context.Context parameter"
}

// Has a context but calls the non-Ctx variant, so cancellation never
// reaches the chunk-claim checkpoint: flagged.
func Gather(ctx context.Context, n, threads int) {
	parallel.ForChunkedWork(threads, n, 0, int64(n), func(_, lo, hi int) {}) // want 2 "use parallel.ForChunkedWorkCtx"
}

// Clean: ctx threaded into the Ctx variant.
func Sweep(ctx context.Context, n, threads int) error {
	return parallel.ForChunkedCtx(ctx, threads, n, 0, func(_, lo, hi int) {})
}

// Clean: unexported helpers are reached through an exported cancellable
// entry point; the gate is on the exported surface.
func scatterSerial(n, threads int) {
	parallel.ForChunked(threads, n, 0, func(_, lo, hi int) {})
}

// Clean: properly suppressed with a reason.
func Drain(n, threads int) {
	//lint:ignore ctxloop drain runs during process shutdown; nothing can cancel it
	parallel.ForChunked(threads, n, 0, func(_, lo, hi int) {})
}
