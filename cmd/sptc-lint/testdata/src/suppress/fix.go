// Package suppress is the suppression-machinery fixture: well-formed,
// malformed, and unknown-analyzer //lint:ignore directives.
package suppress

func products(dims []uint64) uint64 {
	card := uint64(1)
	//lint:ignore lnoverflow
	card = card * dims[0] // want 14 "unguarded uint64 multiply on a dimension product"
	//lint:ignore nosuchanalyzer because I said so
	card = card * dims[1] // want 14 "unguarded uint64 multiply on a dimension product"
	//lint:ignore lnoverflow caller bounds the product below 2^64
	card = card * dims[2] // clean: properly suppressed
	return card
}
