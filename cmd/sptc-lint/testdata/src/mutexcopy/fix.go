// Package mutexcopy is the mutexcopy analyzer fixture: lock-bearing values
// copied through assignment, range, call arguments, value receivers,
// variable initialization, and returns.
package mutexcopy

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

var global counter

var snapshot = global // want 16 "variable initialization copies a sync.Mutex"

func assign() {
	c := global // want 7 "assignment copies a sync.Mutex"
	c.n++
}

func iterate(cs []counter) int {
	total := 0
	for _, c := range cs { // want 9 "range variable copies a sync.Mutex"
		total += c.n
	}
	return total
}

func observe(c counter) {}

func callArg() {
	observe(global) // want 10 "call argument copies a sync.Mutex"
}

func (c counter) get() int { // want 9 "value receiver of get copies a sync.Mutex"
	return c.n
}

func escape() counter {
	return global // want 9 "return statement copies a sync.Mutex"
}

func fresh() counter {
	return counter{} // clean: a composite literal constructs fresh state
}

func pointer(cs []counter) *counter {
	return &cs[0] // clean: sharing a pointer is the fix, not the bug
}

func suppressed() {
	//lint:ignore mutexcopy snapshot of a quiesced counter for a debug dump
	c := global
	c.n++
}
