// Package atomicalign is the atomicalign analyzer fixture: 64-bit atomics
// on struct fields whose offsets differ under the 32-bit layout.
package atomicalign

import "sync/atomic"

type good struct {
	hits  uint64 // first word of the struct: 8-byte aligned on every port
	flags uint32
}

type bad struct {
	flags uint32
	hits  uint64 // offset 4 under the 32-bit sizes model
}

type meters struct {
	hits uint64
}

type server struct {
	state uint32
	meters
}

func bump(g *good, b *bad) {
	atomic.AddUint64(&g.hits, 1) // clean: offset 0
	atomic.AddUint64(&b.hits, 1) // want 19 "not 8-byte aligned"
}

func hit(s *server) {
	atomic.AddUint64(&s.hits, 1) // want 19 "not 8-byte aligned"
}

func local() uint64 {
	var n uint64
	return atomic.LoadUint64(&n) // clean: locals are the allocator's problem
}

func legacy(b *bad) {
	//lint:ignore atomicalign the 32-bit port never builds this package
	atomic.AddUint64(&b.hits, 1)
}
