// Package bareerr is the bareerr analyzer fixture: dropped, discarded,
// deferred and conventionally-ignored error results.
package bareerr

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func pair() (int, error) { return 0, nil }

func drop() {
	work() // want 2 "error result of fix/bareerr.work is dropped"
}

func dropPair() {
	pair() // want 2 "error result of fix/bareerr.pair is dropped"
}

func closes(f *os.File) {
	f.Close() // want 2 "error result of (*os.File).Close is dropped"
}

func explicit() {
	_ = work() // clean: visible decision
}

func deferred(f *os.File) {
	defer f.Close() // clean: deferred, the result has nowhere to go
}

func conventional(sb *strings.Builder) {
	fmt.Println("ok")    // clean: fmt print family
	sb.WriteString("ok") // clean: strings.Builder never fails
}

func handled() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

func justified() {
	//lint:ignore bareerr best-effort cleanup on an already-failing path
	work()
}
