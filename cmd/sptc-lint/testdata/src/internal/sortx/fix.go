// Package sortx is the deferinloop analyzer fixture: its import path ends
// in a hot-path package suffix, so defers inside loop bodies are flagged.
package sortx

import "sync"

var mu sync.Mutex

func drain(items []int) int {
	total := 0
	for _, it := range items {
		mu.Lock()
		defer mu.Unlock() // want 3 "defer inside a loop"
		total += it
	}
	return total
}

func nested(rows [][]int) int {
	total := 0
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			defer mu.Unlock() // want 4 "defer inside a loop"
			total += v
		}
	}
	return total
}

func perCall(items []int) int {
	total := 0
	for _, it := range items {
		func() {
			mu.Lock()
			defer mu.Unlock() // clean: scoped to the literal, runs once per call
			total += it
		}()
	}
	return total
}

func once(items []int) int {
	mu.Lock()
	defer mu.Unlock() // clean: not inside a loop
	total := 0
	for _, it := range items {
		total += it
	}
	return total
}

func retry(attempts int) {
	for i := 0; i < attempts; i++ {
		//lint:ignore deferinloop bounded by the retry cap, not by nnz
		defer mu.Unlock()
	}
}
