// Package chunkfix is the chunkloop analyzer fixture: an internal package
// (import path contains /internal/, is not internal/parallel) that chunks
// work by hand.
package chunkfix

import "sync"

func fanOut(n, threads int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads // want 29 "hand-rolled per-thread chunk arithmetic"
	for lo := 0; lo < n; lo += chunk {
		wg.Add(1)
		go func(lo int) { // want 3 "manual goroutine fan-out"
			defer wg.Done()
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}(lo)
	}
	wg.Wait()
}

func staticSplit(n, t, nthreads int) (int, int) {
	lo := n * t / nthreads // want 14 "hand-rolled per-thread chunk arithmetic"
	return lo, lo
}

func modelNS(model float64, threads int) float64 {
	return model / float64(threads) // clean: float division is cost modeling, not chunking
}

func unrelated(total, parts int) int {
	return total / parts // clean: divisor is not a worker count
}
