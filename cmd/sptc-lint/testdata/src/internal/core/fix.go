// Package core is the hotpanic analyzer fixture: its import path ends in
// internal/core, so it counts as a hot package and its exported API is the
// reachability root set.
package core

// Contract mimics the hot-path entry point.
func Contract(n int) (int, error) {
	return helper(n), nil
}

func helper(n int) int {
	if n < 0 {
		panic("negative sub-tensor count") // want 3 "panic in helper is reachable from the contraction hot path"
	}
	return deeper(n)
}

func deeper(n int) int {
	if n > 1<<30 {
		panic("too large") // want 3 "panic in deeper is reachable from the contraction hot path"
	}
	return n * 2
}

// MustSize panics directly in an exported (root) function.
func MustSize(ok bool) {
	if !ok {
		panic("bad size") // want 3 "panic in MustSize is reachable from the contraction hot path"
	}
}

// cold is reachable from no exported function; its panic is not hot.
func cold() {
	panic("unreachable from the API") // clean
}
