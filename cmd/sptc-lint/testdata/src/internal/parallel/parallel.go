// Package parallel is the loop-stub the ctxloop fixture imports: the same
// ForChunked-family signatures as sparta/internal/parallel, with trivial
// serial bodies (the analyzer keys on the imported package name and the
// function-name prefix, not on this package's behavior).
package parallel

import "context"

func ForChunked(threads, n, chunk int, body func(tid, lo, hi int)) {
	body(0, 0, n)
}

func ForChunkedCtx(ctx context.Context, threads, n, chunk int, body func(tid, lo, hi int)) error {
	body(0, 0, n)
	return ctx.Err()
}

func ForChunkedWork(threads, n, chunk int, work int64, body func(tid, lo, hi int)) {
	body(0, 0, n)
}

func ForChunkedWorkCtx(ctx context.Context, threads, n, chunk int, work int64, body func(tid, lo, hi int)) error {
	body(0, 0, n)
	return ctx.Err()
}
