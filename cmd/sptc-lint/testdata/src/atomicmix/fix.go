// Package atomicmix is the atomicmix analyzer fixture: slot.key mirrors the
// HtYFlat CAS-claimed key field, mixed with plain reads and writes.
package atomicmix

import "sync/atomic"

type slot struct {
	key  uint64
	rank int32
}

type table struct {
	slots []slot
}

func (t *table) claim(i int, k uint64) bool {
	return atomic.CompareAndSwapUint64(&t.slots[i].key, 0, k)
}

func (t *table) atomicRead(i int) uint64 {
	return atomic.LoadUint64(&t.slots[i].key)
}

func (t *table) plainRead(i int) uint64 {
	return t.slots[i].key // want 20 "field slot.key is accessed with sync/atomic"
}

func (t *table) plainWrite(i int, k uint64) {
	t.slots[i].key = k // want 13 "field slot.key is accessed with sync/atomic"
}

func (t *table) rankRead(i int) int32 {
	return t.slots[i].rank // clean: rank is never touched atomically
}

func (t *table) justified(i int) uint64 {
	//lint:ignore atomicmix read-only phase; the build's parallel.For barrier happens-before
	return t.slots[i].key
}
