// Package lnoverflow is the lnoverflow analyzer fixture: dimension products
// with and without the checked-multiply guard.
package lnoverflow

import "math/bits"

func product(dims []uint64) uint64 {
	card := uint64(1)
	for _, d := range dims {
		card = card * d // want 15 "unguarded uint64 multiply on a dimension product"
	}
	return card
}

func encode(idx []uint32, dims []uint64) uint64 {
	var ln uint64
	for m, v := range idx {
		ln = ln*dims[m] + uint64(v) // want 10 "unguarded uint64 multiply on a dimension product"
	}
	return ln
}

func checked(dims []uint64) (uint64, bool) {
	card := uint64(1)
	for _, d := range dims {
		hi, lo := bits.Mul64(card, d)
		if hi != 0 {
			return 0, false
		}
		card = lo
	}
	return card, true
}

func justified(idx []uint32, dims []uint64) uint64 {
	var ln uint64
	for m, v := range idx {
		//lint:ignore lnoverflow ln stays below the cardinality the caller checked
		ln = ln*dims[m] + uint64(v)
	}
	return ln
}

func bytesEstimate(nnz int, dims []uint64) uint64 {
	return uint64(nnz) * uint64(4*len(dims)+8) // clean: len(dims) is a mode count, not a cardinality
}

func plainProduct(a, b uint64) uint64 {
	return a * b // clean: no dimension-like operand
}
