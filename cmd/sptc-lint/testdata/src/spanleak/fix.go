// Package spanleak is the spanleak fixture: a local mirror of the obs
// tracing API shapes (named Tracer with Start* methods returning a named
// Span, and named ReqTrace with Start* methods returning a named
// PhaseSpan) so the analyzer matches without importing the real package.
package spanleak

type Tracer struct{}

type Span struct{ open bool }

func (t *Tracer) Start(name string, tid int) Span { return Span{open: true} }

func (t *Tracer) StartRegion(name string) Span { return Span{open: true} }

func (s Span) End() {}

// ReqTrace mirrors the request-scoped tracing producer.
type ReqTrace struct{}

type PhaseSpan struct{ open bool }

func (rt *ReqTrace) StartPhase(name string) PhaseSpan { return PhaseSpan{open: true} }

// StartRaw returns the wrong span type for its receiver: a mismatched
// pair, which the analyzer must NOT treat as a span producer.
func (rt *ReqTrace) StartRaw(name string) Span { return Span{} }

func (ps PhaseSpan) End() {}

// Other has a Start method too, but is no Tracer and returns no Span.
type Other struct{}

func (o *Other) Start() int { return 0 }

func dropped(tr *Tracer) {
	tr.Start("a", 0) // want 2 "never ended"
}

func droppedRegion(tr *Tracer) {
	tr.StartRegion("b") // want 2 "never ended"
}

func blankDiscard(tr *Tracer) {
	_ = tr.Start("c", 0) // want 6 "never ended"
}

func neverEnded(tr *Tracer) {
	sp := tr.Start("d", 0) // want 8 "never ended"
	_ = sp
}

func properlyEnded(tr *Tracer) {
	sp := tr.Start("e", 0)
	sp.End()
}

func deferredEnd(tr *Tracer) {
	sp := tr.Start("f", 0)
	defer sp.End()
}

func inlineEnd(tr *Tracer) {
	tr.Start("g", 0).End()
}

func endedInClosure(tr *Tracer) {
	sp := tr.Start("h", 0)
	func() { sp.End() }()
}

func escapesByReturn(tr *Tracer) Span {
	sp := tr.Start("i", 0)
	return sp
}

func escapesToSink(tr *Tracer, sink func(Span)) {
	sp := tr.Start("j", 0)
	sink(sp)
}

func escapesInline(tr *Tracer, sink func(Span)) {
	sink(tr.Start("k", 0))
}

func suppressedLeak(tr *Tracer) {
	//lint:ignore spanleak fixture: proves the directive silences this line
	tr.Start("l", 0)
}

func notATracer(o *Other) {
	o.Start()
	_ = o.Start()
}

func droppedPhase(rt *ReqTrace) {
	rt.StartPhase("queue wait") // want 2 "never ended"
}

func blankDiscardPhase(rt *ReqTrace) {
	_ = rt.StartPhase("admission") // want 6 "never ended"
}

func neverEndedPhase(rt *ReqTrace) {
	ps := rt.StartPhase("contract") // want 8 "never ended"
	_ = ps
}

func properlyEndedPhase(rt *ReqTrace) {
	ps := rt.StartPhase("cache lookup")
	ps.End()
}

func deferredEndPhase(rt *ReqTrace) {
	ps := rt.StartPhase("hty prepare")
	defer ps.End()
}

func inlineEndPhase(rt *ReqTrace) {
	rt.StartPhase("writeback").End()
}

func escapesByReturnPhase(rt *ReqTrace) PhaseSpan {
	ps := rt.StartPhase("input")
	return ps
}

func mismatchedPairIgnored(rt *ReqTrace) {
	// StartRaw returns Span, not PhaseSpan: no producer match, no finding.
	rt.StartRaw("x")
	_ = rt.StartRaw("y")
}
