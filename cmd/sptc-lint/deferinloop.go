package main

import (
	"go/ast"
	"strings"
)

// deferinloop flags defer statements inside loops in the hot-path packages.
// A defer in a loop body does not run at the end of the iteration — it
// accumulates until the enclosing function returns, which in a contraction
// loop over millions of non-zeros means an unbounded deferred-call stack
// and a hidden per-iteration allocation. Outside the hot packages the
// pattern is often fine (a retry loop closing response bodies), so the
// check is scoped to the kernels where any per-iteration overhead is a
// regression. A defer inside a function literal declared in the loop is
// clean: it runs when that literal returns, once per call.
var deferinloopAnalyzer = &Analyzer{
	Name: "deferinloop",
	Doc:  "defer inside a loop in a hot-path package (deferred calls pile up until function return)",
	Run:  runDeferinloop,
}

// hotPathPkgs are the kernel packages where per-iteration overhead is a
// regression: the contraction stages themselves plus their direct
// data-structure dependencies. Kept in sync with perfPackages (perf.go).
var hotPathPkgs = []string{
	"/internal/core", "/internal/hashtab", "/internal/sortx",
	"/internal/spa", "/internal/lnum", "/internal/blocksparse",
	"/internal/parallel",
}

func isHotPathPkg(path string) bool {
	for _, suf := range hotPathPkgs {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

func runDeferinloop(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		if !isHotPathPkg(p.Path) {
			continue
		}
		for _, fd := range funcDecls(p) {
			if fd.Body == nil {
				continue
			}
			walkDefers(p, fd.Body, 0, &diags)
		}
	}
	return diags
}

// walkDefers tracks loop depth within one function frame; entering a
// FuncLit resets the depth because its defers are scoped to the literal.
func walkDefers(p *Package, n ast.Node, depth int, diags *[]Diagnostic) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Body != nil {
				walkDefers(p, n.Body, depth+1, diags)
			}
			walkDeferHeaders(p, depth, diags, n.Init, n.Cond, n.Post)
			return false
		case *ast.RangeStmt:
			if n.Body != nil {
				walkDefers(p, n.Body, depth+1, diags)
			}
			return false
		case *ast.FuncLit:
			if n.Body != nil {
				walkDefers(p, n.Body, 0, diags)
			}
			return false
		case *ast.DeferStmt:
			if depth > 0 {
				*diags = append(*diags, Diagnostic{
					Pos:      p.Fset.Position(n.Pos()),
					Analyzer: "deferinloop",
					Message:  "defer inside a loop runs at function return, not per iteration; hoist it or wrap the body in a function",
				})
			}
		}
		return true
	})
}

// walkDeferHeaders keeps loop-header clauses at the surrounding depth (a
// defer cannot appear there, but a FuncLit in a condition can).
func walkDeferHeaders(p *Package, depth int, diags *[]Diagnostic, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil {
			walkDefers(p, n, depth, diags)
		}
	}
}
