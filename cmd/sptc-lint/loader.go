package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package handed to the analyzers.
type Package struct {
	Path  string // import path ("sparta/internal/hashtab")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// loader parses and type-checks module packages with nothing but the
// standard library: module-internal imports are resolved recursively by the
// loader itself, everything else (the standard library) is delegated to the
// go/importer source importer, so the tool works offline and without
// golang.org/x/tools.
type loader struct {
	fset    *token.FileSet
	modRoot string // absolute module root (dir of go.mod)
	modPath string // module path from go.mod
	std     types.Importer
	loaded  map[string]*Package // import path -> package (nil while in flight)
	ctxt    build.Context       // build-constraint evaluation (tags, _os suffixes)
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	// The lint view is the default build: no "assert" tag, current GOOS/ARCH.
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
		ctxt:    ctxt,
	}
}

// findModule walks up from dir to the enclosing go.mod and returns its
// directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expand resolves command-line patterns into import paths. "./..." (or any
// "dir/..." form) walks for directories containing buildable .go files;
// plain directory arguments map to their package.
func (l *loader) expand(patterns []string) ([]string, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(dir string) {
		p := l.dirToPath(dir)
		if p != "" && !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				if l.hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !l.hasGoFiles(pat) {
			return nil, fmt.Errorf("%s: no buildable Go files", pat)
		}
		add(pat)
	}
	sort.Strings(paths)
	return paths, nil
}

// dirToPath converts a directory to its module import path ("" if outside
// the module).
func (l *loader) dirToPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// pathToDir inverts dirToPath for module import paths ("" for others).
func (l *loader) pathToDir(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest))
	}
	return ""
}

// hasGoFiles reports whether dir holds at least one buildable non-test file.
func (l *loader) hasGoFiles(dir string) bool {
	names, err := l.goFiles(dir)
	return err == nil && len(names) > 0
}

// goFiles lists the non-test .go files of dir that match the current build
// constraints (so e.g. only one personality of a //go:build tag pair loads).
func (l *loader) goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks one module package (memoized). It is also the
// types.Importer hook for module-internal imports, so dependencies load
// recursively in the right order.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.loaded[path] = nil // in flight: a re-entrant load is a cycle
	dir := l.pathToDir(path)
	if dir == "" {
		return nil, fmt.Errorf("%s: not a module package", path)
	}
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.loaded[path] = p
	return p, nil
}

// importPkg routes an import: module paths go through load, the rest through
// the standard-library source importer.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
