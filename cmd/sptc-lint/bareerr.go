package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// bareerr flags calls whose error result is silently dropped — a call used
// as a bare statement even though it returns an error. Sparta's pipeline
// threads errors from every stage up through Contract; a swallowed error in
// a cmd/ or bench driver turns a failed experiment into a half-written
// table.
//
// Deliberately tolerated (no diagnostic):
//   - deferred calls (`defer f.Close()` — the result has nowhere to go)
//   - the fmt print family (Print/Printf/Println/Fprint/Fprintf/Fprintln),
//     whose error results are ignored by near-universal convention
//   - methods on strings.Builder and bytes.Buffer, which document that they
//     never return a non-nil error
//   - explicit discards (`_ = f()`), which are a visible decision
var bareerrAnalyzer = &Analyzer{
	Name: "bareerr",
	Doc:  "dropped error results (call statements that ignore a returned error)",
	Run:  runBareerr,
}

var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runBareerr(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		inspect(p, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d, bad := droppedError(p, call); bad {
				diags = append(diags, d)
			}
			return true
		})
	}
	return diags
}

// droppedError reports a diagnostic when the call returns an error that the
// statement discards and no tolerance applies.
func droppedError(p *Package, call *ast.CallExpr) (Diagnostic, bool) {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil || !returnsError(tv.Type) {
		return Diagnostic{}, false
	}
	if callee := calleeFunc(p, call); callee != nil {
		if allowedErrorDrop(callee) {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Pos:      p.Fset.Position(call.Pos()),
			Analyzer: "bareerr",
			Message:  fmt.Sprintf("error result of %s is dropped; handle it or discard explicitly with _ =", callee.FullName()),
		}, true
	}
	return Diagnostic{
		Pos:      p.Fset.Position(call.Pos()),
		Analyzer: "bareerr",
		Message:  "error result of call is dropped; handle it or discard explicitly with _ =",
	}, true
}

// returnsError reports whether a call-result type includes an error (sole
// result or any member of a tuple).
func returnsError(t types.Type) bool {
	isErr := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErr(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErr(t)
}

// calleeFunc statically resolves the called function, nil for indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// allowedErrorDrop is the conventional-tolerance list.
func allowedErrorDrop(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg != nil && pkg.Path() == "fmt" && fmtPrintFuncs[f.Name()] {
		return true
	}
	// Methods on the never-failing writers.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil {
			path, name := named.Obj().Pkg().Path(), named.Obj().Name()
			if (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer") {
				return true
			}
		}
	}
	return false
}
