package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// spanleak flags Start* calls on the obs tracing types whose returned span
// is never ended: the call result dropped as a statement, discarded with
// `_ =`, or assigned to a variable that has no `.End()` call and never
// escapes the function. An un-ended span records nothing (obs.Span and
// obs.PhaseSpan append/record at End), so a leak silently deletes an
// interval from every trace and a phase wall from every access-log line —
// the kind of bug only noticed when a Perfetto timeline is missing a stage.
//
// Two producer/span pairs are enforced: Tracer.Start* → Span, and the
// request-scoped ReqTrace.Start* → PhaseSpan.
//
// A span that escapes — returned, passed to a function, stored into a
// structure — is assumed ended elsewhere and tolerated.
var spanleakAnalyzer = &Analyzer{
	Name: "spanleak",
	Doc:  "Tracer/ReqTrace Start* results whose span is never End()ed",
	Run:  runSpanleak,
}

// spanPairs maps span-producing receiver type names to the span type their
// Start* methods return. A Start* method matching a receiver but returning
// some other type is not a span producer (mismatched pairs don't count).
var spanPairs = map[string]string{
	"Tracer":   "Span",
	"ReqTrace": "PhaseSpan",
}

func runSpanleak(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if fd.Body != nil {
				diags = append(diags, spanleakFunc(p, fd)...)
			}
		}
	}
	return diags
}

// spanleakFunc checks one function body (closures included — a span started
// in a parallel.ForChunked body lives and must end inside that same body).
func spanleakFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	parents := parentMap(fd.Body)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTracerStart(p, call) {
			return true
		}
		pos := p.Fset.Position(call.Pos())
		switch par := parents[call].(type) {
		case *ast.SelectorExpr:
			// tr.Start(...).End() inline, or some longer chain (escapes).
			return true
		case *ast.ExprStmt:
			diags = append(diags, Diagnostic{pos, "spanleak",
				"span from " + startName(p, call) + " is dropped and never ended; assign it and call End"})
		case *ast.AssignStmt:
			lhs := assignTarget(par, call)
			id, isIdent := lhs.(*ast.Ident)
			if lhs == nil || !isIdent {
				return true // stored into a field/index: escapes
			}
			if id.Name == "_" {
				diags = append(diags, Diagnostic{pos, "spanleak",
					"span from " + startName(p, call) + " is discarded with _ and never ended"})
				return true
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				return true
			}
			ended, escaped := spanFate(p, fd, id, obj, parents)
			if !ended && !escaped {
				diags = append(diags, Diagnostic{pos, "spanleak",
					fmt.Sprintf("span %q is never ended (no End call, and it does not escape)", id.Name)})
			}
		}
		// Any other parent (call argument, return statement, composite
		// literal) hands the span to someone else: assumed ended there.
		return true
	})
	return diags
}

// parentMap records each node's immediate parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isTracerStart matches method calls Start* on a (pointer to) named type
// from spanPairs that return that pair's named span type — the obs tracing
// API shape, without tying the analyzer to one import path.
func isTracerStart(p *Package, call *ast.CallExpr) bool {
	return tracerStartRecv(p, call) != ""
}

// tracerStartRecv returns the matching receiver type name ("" = no match).
func tracerStartRecv(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Start") {
		return ""
	}
	recv, ok := p.Info.Types[sel.X]
	if !ok {
		return ""
	}
	res, resOK := p.Info.Types[call]
	if !resOK {
		return ""
	}
	for recvName, spanName := range spanPairs {
		if isNamed(recv.Type, recvName) && isNamed(res.Type, spanName) {
			return recvName
		}
	}
	return ""
}

// isNamed reports whether t (possibly behind one pointer) is a named type
// with the given name.
func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// startName renders the flagged call for the message, e.g. "Tracer.Start"
// or "ReqTrace.StartPhase".
func startName(p *Package, call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	return tracerStartRecv(p, call) + "." + sel.Sel.Name
}

// assignTarget returns the LHS expression matching the given RHS value of a
// (possibly parallel) assignment, nil when the shapes do not line up.
func assignTarget(as *ast.AssignStmt, rhs ast.Expr) ast.Expr {
	for i, r := range as.Rhs {
		if r == rhs && i < len(as.Lhs) {
			return as.Lhs[i]
		}
	}
	return nil
}

// spanFate scans every use of the span variable: `sp.End()` (including
// deferred) marks it ended; any use other than a blank re-discard marks it
// escaped. def is skipped — it is the assignment being classified.
func spanFate(p *Package, fd *ast.FuncDecl, def *ast.Ident, obj types.Object, parents map[ast.Node]ast.Node) (ended, escaped bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || p.Info.Uses[id] != obj {
			return true
		}
		switch par := parents[id].(type) {
		case *ast.SelectorExpr:
			if par.Sel.Name == "End" {
				ended = true
				return true
			}
			escaped = true
		case *ast.AssignStmt:
			if t, isIdent := assignTarget(par, id).(*ast.Ident); isIdent && t != nil && t.Name == "_" {
				return true // `_ = sp`: still discarded, not an escape
			}
			escaped = true
		default:
			escaped = true
		}
		return true
	})
	return ended, escaped
}
