package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The -perf tier makes the compiler's own cost diagnostics a committed
// contract: go build -gcflags '-m -m' reports every value that escapes to
// the heap, -d=ssa/check_bce/debug=1 reports every bounds check the prover
// could not eliminate. Both are attributed to their enclosing function and
// diffed against lint/hotpath_budget.json; a count above budget fails the
// lint gate, so an innocent refactor that re-introduces an allocation into
// the HtY probe loop is caught at lint time, not in a flamegraph.

// perfPackages are the budgeted hot paths, relative to the module root.
// Kept in sync with hotPathPkgs (deferinloop.go); blocksparse and parallel
// are excluded here because their inner loops delegate to core/sortx.
var perfPackages = []string{
	"internal/core",
	"internal/hashtab",
	"internal/lnum",
	"internal/sortx",
	"internal/spa",
}

// perfClean are the marquee inner loops that must carry ZERO escapes and
// ZERO bounds checks — the properties Sparta's speedups come from. The
// baseline writer refuses to stamp a budget that violates this list, so it
// cannot be relaxed by re-baselining; edit the list itself (with review)
// to change the contract.
var perfClean = []string{
	"internal/hashtab.HtYFlat.Lookup", // ④ probe loop
	"internal/sortx.lsdRange",         // ① LSD radix inner loop
	"internal/sortx.insertionKP",      // ① small-run fallback inside SortPairs
	"internal/core.gatherFused.func1", // ⑤ fused-writeback scatter closure
}

// budgetRelPath is where the committed budget lives, relative to module root.
const budgetRelPath = "lint/hotpath_budget.json"

var errBudgetExceeded = errors.New("hot-path budget exceeded")

// perfCounts is one function's diagnostic budget.
type perfCounts struct {
	Escapes int `json:"escapes"`
	Bounds  int `json:"bounds"`
}

// perfBudget is the committed budget file.
type perfBudget struct {
	Comment   string                `json:"comment"`
	Packages  []string              `json:"packages"`
	Clean     []string              `json:"clean"`
	Functions map[string]perfCounts `json:"functions"`
}

// perfFinding is one compiler diagnostic attributed to a function.
type perfFinding struct {
	File string // module-relative path
	Line int
	Col  int
	Kind string // "escape" or "bounds"
	Msg  string
	Fn   string // "internal/core.gatherFused.func2"
}

func perfMain(baseline bool) error {
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	modRoot, _, err := findModule(wd)
	if err != nil {
		return err
	}
	findings, err := perfFindings(modRoot)
	if err != nil {
		return err
	}
	counts := tallyFindings(findings)
	if viol := cleanViolations(counts); len(viol) > 0 {
		for _, fn := range viol {
			fmt.Fprintf(os.Stderr, "sptc-lint -perf: %s must stay free of escapes and bounds checks (has %d escape(s), %d bounds check(s)):\n",
				fn, counts[fn].Escapes, counts[fn].Bounds)
			printFindingsFor(findings, fn)
		}
		if baseline {
			return fmt.Errorf("refusing to stamp a baseline that violates the zero-cost contract (fix the loops, or edit perfClean in cmd/sptc-lint/perf.go)")
		}
		return errBudgetExceeded
	}
	budgetPath := filepath.Join(modRoot, filepath.FromSlash(budgetRelPath))
	if baseline {
		return writeBudget(budgetPath, counts)
	}
	budget, err := readBudget(budgetPath)
	if err != nil {
		return fmt.Errorf("%v (run make perf-baseline to create it)", err)
	}
	over := 0
	for _, fn := range sortedKeys(counts) {
		c, b := counts[fn], budget.Functions[fn]
		if c.Escapes > b.Escapes || c.Bounds > b.Bounds {
			over++
			fmt.Fprintf(os.Stderr,
				"sptc-lint -perf: %s over budget: %d escape(s) (budget %d), %d bounds check(s) (budget %d)\n",
				fn, c.Escapes, b.Escapes, c.Bounds, b.Bounds)
			printFindingsFor(findings, fn)
		}
	}
	if over > 0 {
		fmt.Fprintf(os.Stderr,
			"sptc-lint -perf: %d function(s) over budget; fix the regression or deliberately re-stamp with make perf-baseline\n", over)
		return errBudgetExceeded
	}
	fmt.Printf("sptc-lint -perf: %d function(s) within budget, %d marquee loop(s) clean across %s\n",
		len(counts), len(perfClean), strings.Join(perfPackages, " "))
	return nil
}

// printFindingsFor lists the individual diagnostics behind one function's
// counts, so a failure reads like a compiler error.
func printFindingsFor(findings []perfFinding, fn string) {
	for _, f := range findings {
		if f.Fn == fn {
			fmt.Fprintf(os.Stderr, "  %s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Kind, f.Msg)
		}
	}
}

// cleanViolations returns the perfClean entries with any findings at all.
func cleanViolations(counts map[string]perfCounts) []string {
	var out []string
	for _, fn := range perfClean {
		if c := counts[fn]; c.Escapes > 0 || c.Bounds > 0 {
			out = append(out, fn)
		}
	}
	return out
}

// perfFindings runs the compiler over the budgeted packages and returns the
// attributed diagnostics. The Go build cache replays -gcflags diagnostics
// on cache hits, so repeated runs are cheap and no cache-busting is needed.
func perfFindings(modRoot string) ([]perfFinding, error) {
	var lines []string
	for _, gcflags := range []string{"-m -m", "-d=ssa/check_bce/debug=1"} {
		out, err := runGoBuild(modRoot, gcflags, perfPackages)
		if err != nil {
			return nil, err
		}
		lines = append(lines, out...)
	}
	raw := parseDiagnostics(lines)
	return attributeFindings(modRoot, raw)
}

// runGoBuild invokes go build with the given -gcflags over pkgs (module-
// relative), returning stderr lines. A non-nil error means the build itself
// failed (diagnostics go to stderr even on success).
func runGoBuild(modRoot, gcflags string, pkgs []string) ([]string, error) {
	args := []string{"build", "-gcflags=" + gcflags}
	for _, p := range pkgs {
		args = append(args, "./"+p)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=%q: %v\n%s", gcflags, err, out)
	}
	return strings.Split(string(out), "\n"), nil
}

// diagRE matches one compiler diagnostic line: path:line:col: message.
// Indented lines (escape-analysis flow traces) do not match.
var diagRE = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(\d+): (.*)$`)

// parseDiagnostics extracts escape and bounds-check findings from compiler
// output, deduplicated (the build replays diagnostics once per dependent
// compile).
func parseDiagnostics(lines []string) []perfFinding {
	seen := map[string]bool{}
	var out []perfFinding
	for _, line := range lines {
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		var kind string
		switch {
		case strings.Contains(msg, "escapes to heap"), strings.HasPrefix(msg, "moved to heap"):
			kind = "escape"
		case strings.Contains(msg, "Found IsInBounds"), strings.Contains(msg, "Found IsSliceInBounds"):
			kind = "bounds"
		default:
			continue
		}
		key := m[1] + ":" + m[2] + ":" + m[3] + ":" + kind + ":" + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, perfFinding{File: filepath.ToSlash(m[1]), Line: ln, Col: col, Kind: kind, Msg: msg})
	}
	return out
}

// attributeFindings parses each flagged file once and names the innermost
// enclosing function of every finding: methods as Type.Method, function
// literals as Outer.funcN with N the literal's pre-order index within its
// top-level declaration (mirroring the compiler's naming closely enough to
// be stable and readable).
func attributeFindings(modRoot string, raw []perfFinding) ([]perfFinding, error) {
	byFile := map[string][]int{}
	for i, f := range raw {
		byFile[f.File] = append(byFile[f.File], i)
	}
	fset := token.NewFileSet()
	for file, idxs := range byFile {
		abs := filepath.Join(modRoot, filepath.FromSlash(file))
		af, err := parser.ParseFile(fset, abs, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: %v", file, err)
		}
		pkgRel := filepath.ToSlash(filepath.Dir(file))
		for _, i := range idxs {
			pos := findingPos(fset, af, raw[i].Line, raw[i].Col)
			raw[i].Fn = pkgRel + "." + enclosingFuncName(fset, af, pos)
		}
	}
	sort.Slice(raw, func(i, j int) bool {
		a, b := raw[i], raw[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return raw, nil
}

// findingPos converts a line:col diagnostic position into a token.Pos
// within the parsed file.
func findingPos(fset *token.FileSet, af *ast.File, line, col int) token.Pos {
	tf := fset.File(af.Pos())
	if line > tf.LineCount() {
		return af.End()
	}
	return tf.LineStart(line) + token.Pos(col-1)
}

// enclosingFuncName names the innermost function containing pos.
func enclosingFuncName(fset *token.FileSet, af *ast.File, pos token.Pos) string {
	for _, d := range af.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			if rn := recvTypeName(fd.Recv.List[0].Type); rn != "" {
				name = rn + "." + name
			}
		}
		// Pre-order numbering of every FuncLit inside this declaration;
		// the innermost literal containing pos wins. Strictly inside: a
		// diagnostic at the literal's own position ("func literal escapes
		// to heap") is the enclosing function allocating the closure, not
		// a cost of the closure body.
		n := 0
		innermost := ""
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			if fl, ok := node.(*ast.FuncLit); ok {
				n++
				if pos > fl.Pos() && pos < fl.End() {
					innermost = fmt.Sprintf("%s.func%d", name, n)
				}
			}
			return true
		})
		if innermost != "" {
			return innermost
		}
		return name
	}
	return "(file-scope)"
}

// recvTypeName extracts the receiver's base type name ("HtYFlat" from
// *HtYFlat).
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// tallyFindings folds findings into per-function counts.
func tallyFindings(findings []perfFinding) map[string]perfCounts {
	counts := map[string]perfCounts{}
	for _, f := range findings {
		c := counts[f.Fn]
		if f.Kind == "escape" {
			c.Escapes++
		} else {
			c.Bounds++
		}
		counts[f.Fn] = c
	}
	return counts
}

func sortedKeys(m map[string]perfCounts) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readBudget loads the committed budget.
func readBudget(path string) (*perfBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b perfBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string]perfCounts{}
	}
	return &b, nil
}

// writeBudget stamps the baseline: every function with findings gets its
// current counts, and the perfClean loops are recorded explicitly at zero
// so the contract is visible in the committed file.
func writeBudget(path string, counts map[string]perfCounts) error {
	funcs := map[string]perfCounts{}
	for fn, c := range counts {
		funcs[fn] = c
	}
	for _, fn := range perfClean {
		if _, ok := funcs[fn]; !ok {
			funcs[fn] = perfCounts{}
		}
	}
	b := perfBudget{
		Comment: "Per-function heap-escape and bounds-check budget over the hot-path packages. " +
			"Regenerate deliberately with make perf-baseline; functions absent from this map have budget zero. " +
			"The clean list must stay at zero and cannot be re-stamped away.",
		Packages:  perfPackages,
		Clean:     perfClean,
		Functions: funcs,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sptc-lint -perf-baseline: stamped %s with %d budgeted function(s)\n", path, len(funcs))
	return nil
}
