package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// chunkloop keeps parallelism funneled through internal/parallel: any other
// internal package that spawns goroutines by hand, or computes per-thread
// range bounds with nnz/threads arithmetic, is re-inventing the chunking
// that parallel.For/ForChunked already centralize (with Clamp's guarantees
// and the dynamic-scheduling option the paper's skewed sub-tensors need).
var chunkloopAnalyzer = &Analyzer{
	Name: "chunkloop",
	Doc:  "hand-rolled goroutine fan-out or nnz/threads chunk arithmetic outside internal/parallel",
	Run:  runChunkloop,
}

// threadsIdents are the identifier names treated as a worker count when they
// appear as a divisor in range-bound arithmetic.
var threadsIdents = map[string]bool{
	"threads": true, "nthreads": true, "nthr": true,
	"workers": true, "nworkers": true, "nw": true,
}

func runChunkloop(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		if !strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal/parallel") {
			continue
		}
		inspect(p, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				diags = append(diags, Diagnostic{
					Pos:      p.Fset.Position(n.Pos()),
					Analyzer: "chunkloop",
					Message:  "manual goroutine fan-out; route parallel work through parallel.For or parallel.ForChunked",
				})
			case *ast.BinaryExpr:
				// Only integer division computes chunk bounds; float
				// division by a thread count is cost modeling (hetmem).
				if n.Op != token.QUO || !isIntegerExpr(p, n) {
					return true
				}
				if name, ok := threadsDivisor(n.Y); ok {
					diags = append(diags, Diagnostic{
						Pos:      p.Fset.Position(n.OpPos),
						Analyzer: "chunkloop",
						Message: fmt.Sprintf(
							"hand-rolled per-thread chunk arithmetic (division by %q); use parallel.ForChunked for work splitting", name),
					})
					return false // don't re-flag nested divisions of the same expression
				}
			}
			return true
		})
	}
	return diags
}

// isIntegerExpr reports whether the expression's static type is an integer.
func isIntegerExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// threadsDivisor reports whether a divisor expression mentions a
// worker-count identifier, returning the first such name.
func threadsDivisor(e ast.Expr) (string, bool) {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && threadsIdents[strings.ToLower(id.Name)] {
			found = id.Name
			return false
		}
		return true
	})
	return found, found != ""
}
