package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// mutexcopy catches by-value copies of synchronization state: a copied
// sync.Mutex forks the lock (both copies unlock independently — the race
// detector only sees it once the two halves actually interleave), a copied
// WaitGroup forks the counter, and a copied atomic loses the writes made
// through the original. The copies arrive innocently — a range value
// variable over a slice of stat structs, a struct assignment that happens
// to embed a Mutex — so the check follows the type structure recursively
// through struct fields and array elements, like vet's copylocks but scoped
// to the forms this codebase actually writes.
var mutexcopyAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "sync.Mutex/WaitGroup/atomic value copied by value (assignment, range, call argument, or value receiver)",
	Run:  runMutexcopy,
}

func runMutexcopy(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(p *Package, n ast.Node, what string, t types.Type) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(n.Pos()),
			Analyzer: "mutexcopy",
			Message:  fmt.Sprintf("%s copies %s; pass a pointer or index in place", what, lockPath(t)),
		})
	}
	for _, p := range pkgs {
		inspect(p, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Rhs) != len(n.Lhs) {
						break // multi-value call: covered by the call's own signature
					}
					if t := copiedLockExpr(p, rhs); t != nil {
						report(p, n.Rhs[i], "assignment", t)
					}
				}
			case *ast.RangeStmt:
				// The value (and key, for maps of structs) variables are
				// fresh copies each iteration.
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if v == nil {
						continue
					}
					if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Info.Defs[id]; obj != nil {
							if t := containsLock(obj.Type()); t != nil {
								report(p, v, "range variable", t)
							}
						}
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if t := copiedLockExpr(p, arg); t != nil {
						report(p, arg, "call argument", t)
					}
				}
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, f := range n.Recv.List {
						tv, ok := p.Info.Types[f.Type]
						if !ok || tv.Type == nil {
							continue
						}
						if _, isPtr := tv.Type.(*types.Pointer); isPtr {
							continue
						}
						if t := containsLock(tv.Type); t != nil {
							report(p, f.Type, fmt.Sprintf("value receiver of %s", n.Name.Name), t)
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == len(n.Names) {
					for _, v := range n.Values {
						if t := copiedLockExpr(p, v); t != nil {
							report(p, v, "variable initialization", t)
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if t := copiedLockExpr(p, r); t != nil {
						report(p, r, "return statement", t)
					}
				}
			}
			return true
		})
	}
	return diags
}

// copiedLockExpr reports the lock type copied when e is evaluated as a
// value, or nil. Only expressions that read an existing value count:
// composite literals and calls construct fresh state, so copying them is
// initialization, not a fork.
func copiedLockExpr(p *Package, e ast.Expr) types.Type {
	switch u := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = u
	default:
		return nil
	}
	tv, ok := p.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return nil
	}
	return containsLock(tv.Type)
}

// lockTypes are the sync and sync/atomic types whose by-value copy is a bug.
var lockTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Map": true, "sync.Pool": true,
	"sync/atomic.Value": true, "sync/atomic.Bool": true, "sync/atomic.Int32": true,
	"sync/atomic.Int64": true, "sync/atomic.Uint32": true, "sync/atomic.Uint64": true,
	"sync/atomic.Uintptr": true, "sync/atomic.Pointer": true,
}

// containsLock walks t through struct fields and array elements and returns
// the first embedded lock type found (nil if none). Pointers, slices, and
// maps stop the walk: sharing a pointer to a lock is the fix, not the bug.
func containsLock(t types.Type) types.Type {
	return lockIn(t, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) types.Type {
	if seen[t] {
		return nil
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			key := obj.Pkg().Path() + "." + obj.Name()
			if lockTypes[key] {
				return t
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hit := lockIn(u.Field(i).Type(), seen); hit != nil {
				return hit
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return nil
}

// lockPath renders the found lock type with enough context to act on.
func lockPath(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return "a " + obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return "a lock-bearing value"
}
