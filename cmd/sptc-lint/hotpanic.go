package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// hotpanic keeps the contraction hot path panic-free: errors inside stage
// ②–④ code must flow out through the Report/error plumbing, because a panic
// inside a parallel.For worker takes the whole process down with a goroutine
// dump instead of a diagnosable error. The analyzer builds a static call
// graph over the module, roots it at the exported API of the hot packages
// (internal/core, internal/hashtab), and flags every panic call in a hot
// package that is reachable from those roots. Assertions are exempt by
// construction — invariant.Assert panics live in internal/invariant, which
// is not a hot package, and exist only under -tags assert anyway.
var hotpanicAnalyzer = &Analyzer{
	Name: "hotpanic",
	Doc:  "panic reachable from the contraction hot path (internal/core, internal/hashtab)",
	Run:  runHotpanic,
}

// hotPkgSuffixes marks the hot packages by import-path suffix, so the
// fixture packages of the analyzer tests can stand in for the real ones.
var hotPkgSuffixes = []string{"internal/core", "internal/hashtab"}

func isHotPkg(path string) bool {
	for _, s := range hotPkgSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runHotpanic(pkgs []*Package) []Diagnostic {
	// Function universe: every declared function/method in the loaded
	// packages, with its body and defining package.
	type fnInfo struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	fns := map[*types.Func]fnInfo{}
	for _, p := range pkgs {
		for _, fd := range funcDecls(p) {
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok && fd.Body != nil {
				fns[obj] = fnInfo{p, fd}
			}
		}
	}

	// Static call edges + direct panic sites per function. Calls through
	// interfaces or function values are invisible to this resolution, which
	// is why the roots below include every exported function and method of
	// the hot packages (e.g. each YTable implementation), not just Contract.
	edges := map[*types.Func][]*types.Func{}
	panics := map[*types.Func][]Diagnostic{}
	for obj, fi := range fns {
		p := fi.pkg
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					if isHotPkg(p.Path) {
						panics[obj] = append(panics[obj], Diagnostic{
							Pos:      p.Fset.Position(call.Pos()),
							Analyzer: "hotpanic",
						})
					}
					return true
				}
				if callee, ok := p.Info.Uses[fun].(*types.Func); ok {
					edges[obj] = append(edges[obj], callee)
				}
			case *ast.SelectorExpr:
				if callee, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
					edges[obj] = append(edges[obj], callee)
				}
			}
			return true
		})
	}

	// Roots: the exported API of the hot packages.
	var queue []*types.Func
	reach := map[*types.Func]bool{}
	rootName := map[*types.Func]string{}
	for obj, fi := range fns {
		if isHotPkg(fi.pkg.Path) && obj.Exported() {
			reach[obj] = true
			rootName[obj] = obj.Name()
			queue = append(queue, obj)
		}
	}
	via := map[*types.Func]*types.Func{} // callee -> root it was first reached from
	for _, r := range queue {
		via[r] = r
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range edges[cur] {
			if !reach[callee] {
				reach[callee] = true
				via[callee] = via[cur]
				queue = append(queue, callee)
			}
		}
	}

	var diags []Diagnostic
	for obj, sites := range panics {
		if !reach[obj] {
			continue
		}
		root := "exported API"
		if r := via[obj]; r != nil {
			root = r.FullName()
		}
		for _, d := range sites {
			d.Message = fmt.Sprintf(
				"panic in %s is reachable from the contraction hot path (via %s); report errors through the Report/error plumbing instead",
				obj.Name(), root)
			diags = append(diags, d)
		}
	}
	return diags
}
