package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// atomicmix flags struct fields that one part of a package accesses through
// sync/atomic and another part reads or writes with plain loads/stores — the
// exact hazard of the HtYFlat two-pass build, where pass 1 claims slot keys
// with CompareAndSwapUint64 and later phases touch the same field. Plain
// access is only sound after a happens-before barrier the compiler cannot
// see; every such site must either use the atomic API too (free on the hot
// path: an atomic load of an aligned word compiles to a plain load on
// amd64/arm64) or carry a //lint:ignore atomicmix justification naming the
// barrier.
var atomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct fields accessed both atomically (sync/atomic) and with plain loads/stores",
	Run:  runAtomicmix,
}

func runAtomicmix(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, atomicmixPackage(p)...)
	}
	return diags
}

func atomicmixPackage(p *Package) []Diagnostic {
	// Pass 1: fields whose address is handed to a sync/atomic function.
	atomicFields := map[*types.Var]string{} // field -> atomic func name
	atomicArgSels := map[*ast.SelectorExpr]bool{}
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := atomicCallee(p, call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if fv := fieldVar(p, sel); fv != nil {
				atomicFields[fv] = name
				atomicArgSels[sel] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// plain access.
	var diags []Diagnostic
	inspect(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || atomicArgSels[sel] {
			return true
		}
		fv := fieldVar(p, sel)
		if fv == nil {
			return true
		}
		aname, mixed := atomicFields[fv]
		if !mixed {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(sel.Sel.Pos()),
			Analyzer: "atomicmix",
			Message: fmt.Sprintf(
				"field %s.%s is accessed with sync/atomic.%s elsewhere in this package but plainly here; use the atomic API or justify the barrier with //lint:ignore",
				fieldOwner(fv), fv.Name(), aname),
		})
		return true
	})
	return diags
}

// atomicCallee returns the function name when call is sync/atomic.F(...).
func atomicCallee(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldVar resolves a selector to the struct field it names, nil otherwise.
func fieldVar(p *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// fieldOwner names the struct type a field belongs to, best effort.
func fieldOwner(fv *types.Var) string {
	// The field's parent scope is not the named type; recover the owner from
	// the position-independent string form instead.
	if fv.Pkg() != nil {
		for _, name := range fv.Pkg().Scope().Names() {
			tn, ok := fv.Pkg().Scope().Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == fv {
					return tn.Name()
				}
			}
		}
	}
	return "?"
}
