package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one Sparta-specific check. Run sees every loaded package at
// once so cross-package checks (hotpanic's call graph) need no second pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package) []Diagnostic
}

// analyzers is the suite, in reporting order.
var analyzers = []*Analyzer{
	atomicmixAnalyzer,
	chunkloopAnalyzer,
	lnoverflowAnalyzer,
	hotpanicAnalyzer,
	bareerrAnalyzer,
	spanleakAnalyzer,
	ctxloopAnalyzer,
	mutexcopyAnalyzer,
	deferinloopAnalyzer,
	atomicalignAnalyzer,
}

// ignoreDirective is the suppression marker: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it silences that analyzer
// there. The reason is mandatory — an unexplained suppression is itself
// reported.
const ignoreDirective = "//lint:ignore"

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions scans the comments of every file for ignore
// directives. Malformed directives (no analyzer, no reason, unknown
// analyzer) come back as diagnostics so they cannot silently rot.
func collectSuppressions(pkgs []*Package) (map[suppressKey]bool, []Diagnostic) {
	sup := map[suppressKey]bool{}
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreDirective) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{pos, "lint",
							"malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\""})
						continue
					}
					if !known[fields[0]] {
						diags = append(diags, Diagnostic{pos, "lint",
							fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0])})
						continue
					}
					sup[suppressKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return sup, diags
}

// suppressed reports whether d carries an ignore directive on its own line
// or the line above.
func suppressed(sup map[suppressKey]bool, d Diagnostic) bool {
	return sup[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		sup[suppressKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// runSuite runs every analyzer over the loaded packages and returns the
// surviving diagnostics sorted by position.
func runSuite(pkgs []*Package) []Diagnostic {
	sup, diags := collectSuppressions(pkgs)
	for _, a := range analyzers {
		for _, d := range a.Run(pkgs) {
			if !suppressed(sup, d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// inspect walks every file of a package, calling fn with each node; fn
// returning false prunes the subtree.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// enclosingFuncs maps every node position range to its top-level function
// declaration name; used for per-function context checks.
func funcDecls(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}
