package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestParseDiagnostics(t *testing.T) {
	lines := []string{
		"internal/core/x.go:6:2: y escapes to heap:",
		"internal/core/x.go:6:2:   flow: {heap} = &y:", // flow trace: not a finding
		"internal/core/x.go:7:5: moved to heap: tmp",
		"internal/core/x.go:8:9: Found IsInBounds",
		"internal/core/x.go:9:3: Found IsSliceInBounds",
		"internal/core/x.go:6:2: y escapes to heap:", // replayed by a dependent compile: deduped
		"internal/core/x.go:10:1: inlining call to foo",
		"  internal/core/x.go:6:2: indented, not a diagnostic",
		"# sparta/internal/core",
		"",
	}
	got := parseDiagnostics(lines)
	want := []perfFinding{
		{File: "internal/core/x.go", Line: 6, Col: 2, Kind: "escape", Msg: "y escapes to heap"},
		{File: "internal/core/x.go", Line: 7, Col: 5, Kind: "escape", Msg: "moved to heap: tmp"},
		{File: "internal/core/x.go", Line: 8, Col: 9, Kind: "bounds", Msg: "Found IsInBounds"},
		{File: "internal/core/x.go", Line: 9, Col: 3, Kind: "bounds", Msg: "Found IsSliceInBounds"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAttributeFindings checks the function naming: methods as Type.Method,
// literals as Outer.funcN, and a diagnostic at a literal's own position
// (the closure allocation) attributed to the enclosing function.
func TestAttributeFindings(t *testing.T) {
	modRoot := t.TempDir()
	src := `package core

type T struct{}

func (t *T) Method() {
	_ = 1
}

func Outer() {
	f := func() {
		_ = 2
	}
	f()
}
`
	dir := filepath.Join(modRoot, "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	raw := []perfFinding{
		{File: "internal/core/x.go", Line: 6, Col: 2, Kind: "escape"},
		{File: "internal/core/x.go", Line: 11, Col: 3, Kind: "bounds"},
		{File: "internal/core/x.go", Line: 10, Col: 7, Kind: "escape", Msg: "func literal escapes to heap"},
	}
	got, err := attributeFindings(modRoot, raw)
	if err != nil {
		t.Fatal(err)
	}
	wantFn := map[int]string{ // keyed by line
		6:  "internal/core.T.Method",
		11: "internal/core.Outer.func1",
		10: "internal/core.Outer", // the allocation belongs to the allocator
	}
	for _, f := range got {
		if want := wantFn[f.Line]; f.Fn != want {
			t.Errorf("line %d attributed to %q, want %q", f.Line, f.Fn, want)
		}
	}
}

func TestTallyAndCleanViolations(t *testing.T) {
	findings := []perfFinding{
		{Fn: "internal/sortx.lsdRange", Kind: "bounds"},
		{Fn: "internal/sortx.lsdRange", Kind: "bounds"},
		{Fn: "internal/core.other", Kind: "escape"},
	}
	counts := tallyFindings(findings)
	if c := counts["internal/sortx.lsdRange"]; c.Bounds != 2 || c.Escapes != 0 {
		t.Errorf("lsdRange counts = %+v, want 2 bounds", c)
	}
	viol := cleanViolations(counts)
	if len(viol) != 1 || viol[0] != "internal/sortx.lsdRange" {
		t.Errorf("cleanViolations = %v, want [internal/sortx.lsdRange] (a marquee loop)", viol)
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint", "hotpath_budget.json")
	counts := map[string]perfCounts{
		"internal/core.gather": {Escapes: 3, Bounds: 1},
	}
	if err := writeBudget(path, counts); err != nil {
		t.Fatal(err)
	}
	b, err := readBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Functions["internal/core.gather"]; got != (perfCounts{Escapes: 3, Bounds: 1}) {
		t.Errorf("round-tripped counts = %+v", got)
	}
	// The marquee loops are stamped explicitly at zero even with no findings.
	for _, fn := range perfClean {
		c, ok := b.Functions[fn]
		if !ok {
			t.Errorf("budget is missing the zero entry for clean loop %s", fn)
		}
		if c.Escapes != 0 || c.Bounds != 0 {
			t.Errorf("clean loop %s stamped at %+v, want zero", fn, c)
		}
	}
	// Functions absent from the map have budget zero (the map's zero value).
	if c := b.Functions["internal/core.absent"]; c.Escapes != 0 || c.Bounds != 0 {
		t.Errorf("absent function budget = %+v, want zero", c)
	}
}

// TestCommittedBudget pins the acceptance contract: the budget checked into
// the repo holds every marquee loop at zero escapes and zero bounds checks.
func TestCommittedBudget(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, _, err := findModule(wd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := readBudget(filepath.Join(modRoot, filepath.FromSlash(budgetRelPath)))
	if err != nil {
		t.Fatalf("committed budget unreadable (run make perf-baseline): %v", err)
	}
	if len(b.Clean) != len(perfClean) {
		t.Errorf("committed clean list has %d entries, perfClean has %d; re-stamp the baseline", len(b.Clean), len(perfClean))
	}
	for _, fn := range perfClean {
		c, ok := b.Functions[fn]
		if !ok {
			t.Errorf("committed budget is missing clean loop %s", fn)
			continue
		}
		if c.Escapes != 0 || c.Bounds != 0 {
			t.Errorf("committed budget allows %d escape(s), %d bounds check(s) in %s; the marquee loops must stay at zero",
				c.Escapes, c.Bounds, fn)
		}
	}
}

// TestPerfGateEndToEnd builds a throwaway module with a deliberate heap
// escape in a budgeted package and runs the real -perf pipeline against a
// zero budget: the gate must fail, a baseline stamp must then succeed, and
// the re-check against the fresh baseline must pass.
func TestPerfGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a scratch module")
	}
	modRoot := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(modRoot, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.22\n")
	write("internal/core/esc.go", `package core

// Leak deliberately escapes a local to the heap.
func Leak() *int {
	x := 42
	return &x
}
`)
	for _, p := range []string{"hashtab", "lnum", "sortx", "spa"} {
		write("internal/"+p+"/empty.go", "package "+p+"\n")
	}
	write(budgetRelPath, `{"functions":{}}`)

	t.Chdir(modRoot)
	if err := perfMain(false); !errors.Is(err, errBudgetExceeded) {
		t.Fatalf("perfMain against a zero budget = %v, want errBudgetExceeded", err)
	}
	if err := perfMain(true); err != nil {
		t.Fatalf("perfMain baseline stamp failed: %v", err)
	}
	if err := perfMain(false); err != nil {
		t.Fatalf("perfMain after re-stamp = %v, want clean", err)
	}
}
