// Command ttt performs one sparse tensor contraction between two .tns
// files, mirroring the original Sparta artifact's tool of the same name:
//
//	ttt -X x.tns -Y y.tns -m 2 -x 2,3 -y 0,1 [-Z out.tns] [-t 12]
//
// The algorithm is selected by the EXPERIMENT_MODES environment variable,
// exactly like the artifact:
//
//	EXPERIMENT_MODES=0  COOY + SPA   (SpTC-SPA baseline)
//	EXPERIMENT_MODES=1  COOY + HtA
//	EXPERIMENT_MODES=2  two-phase (symbolic + numeric) SpTC
//	EXPERIMENT_MODES=3  HtY  + HtA   (Sparta; the default)
//	EXPERIMENT_MODES=4  HtY  + HtA with the simulated Optane placement
//	                    report printed after the run
//
// It prints the five-stage timing breakdown and operation counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sparta"
	"sparta/internal/hetmem"
	"sparta/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		xPath   = flag.String("X", "", "first input tensor (.tns)")
		yPath   = flag.String("Y", "", "second input tensor (.tns)")
		zPath   = flag.String("Z", "", "output tensor path (optional)")
		nmodes  = flag.Int("m", 0, "number of contract modes")
		xModes  = flag.String("x", "", "contract modes for X, comma separated (0-based)")
		yModes  = flag.String("y", "", "contract modes for Y, comma separated (0-based)")
		threads = flag.Int("t", 0, "worker threads (0 = all cores)")
		noSort  = flag.Bool("nosort", false, "skip output sorting")
	)
	flag.Parse()
	if *xPath == "" || *yPath == "" {
		flag.Usage()
		return fmt.Errorf("-X and -Y are required")
	}
	cmX, err := parseModes(*xModes)
	if err != nil {
		return fmt.Errorf("-x: %w", err)
	}
	cmY, err := parseModes(*yModes)
	if err != nil {
		return fmt.Errorf("-y: %w", err)
	}
	if *nmodes > 0 && (len(cmX) != *nmodes || len(cmY) != *nmodes) {
		return fmt.Errorf("-m %d does not match -x/-y arity (%d/%d)", *nmodes, len(cmX), len(cmY))
	}

	alg := sparta.AlgSparta
	simulateHM := false
	switch os.Getenv("EXPERIMENT_MODES") {
	case "", "3":
	case "0":
		alg = sparta.AlgSPA
	case "1":
		alg = sparta.AlgCOOHtA
	case "2":
		alg = sparta.AlgTwoPhase
	case "4":
		simulateHM = true
	default:
		return fmt.Errorf("unsupported EXPERIMENT_MODES %q (use 0, 1, 2, 3, or 4)", os.Getenv("EXPERIMENT_MODES"))
	}

	x, err := sparta.LoadTNS(*xPath)
	if err != nil {
		return err
	}
	y, err := sparta.LoadTNS(*yPath)
	if err != nil {
		return err
	}
	fmt.Printf("X: %v\nY: %v\n", x, y)

	z, rep, err := sparta.Contract(x, y, cmX, cmY, sparta.Options{
		Algorithm:      alg,
		Threads:        *threads,
		SkipOutputSort: *noSort,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Z: %v\n\n", z)

	tab := stats.NewTable("Stage", "Wall", "Share")
	total := rep.Total()
	for s := sparta.Stage(0); s < sparta.NumStages; s++ {
		share := 0.0
		if total > 0 {
			share = 100 * float64(rep.StageWall[s]) / float64(total)
		}
		tab.Row(s.String(), rep.StageWall[s], fmt.Sprintf("%.1f%%", share))
	}
	tab.Row("Total", total, "100%")
	tab.Render(os.Stdout)

	fmt.Printf("\nalgorithm=%v threads=%d nnzX=%d nnzY=%d nnzZ=%d NF=%d\n",
		rep.Algorithm, rep.Threads, rep.NNZX, rep.NNZY, rep.NNZZ, rep.NF)
	fmt.Printf("probesHtY=%d searchSteps=%d products=%d accumHits=%d accumMiss=%d\n",
		rep.ProbesHtY, rep.SearchSteps, rep.Products, rep.AccumHits, rep.AccumMiss)

	if simulateHM {
		pf := sparta.ProfileFromReport(rep, x.Order(), y.Order(), z.Order())
		dram := pf.PeakBytes() / 4
		fmt.Printf("\nSimulated heterogeneous memory (DRAM budget %s of %s peak):\n",
			stats.FormatBytes(dram), stats.FormatBytes(pf.PeakBytes()))
		hm := stats.NewTable("Policy", "Simulated time", "Speedup vs Optane-only")
		opt := (hetmem.OptaneOnly{}).Evaluate(pf, dram).Total
		for _, pol := range sparta.MemPolicies() {
			r := pol.Evaluate(pf, dram)
			hm.Row(r.Policy, r.Total, stats.Speedup(opt, r.Total))
		}
		hm.Render(os.Stdout)
	}

	if *zPath != "" {
		if err := z.SaveTNS(*zPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *zPath)
	}
	return nil
}

func parseModes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty mode list")
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad mode %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
