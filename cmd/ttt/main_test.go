package main

import (
	"os"
	"path/filepath"
	"testing"

	"sparta"
)

func TestParseModes(t *testing.T) {
	got, err := parseModes("2, 3")
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("parseModes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "1,,2", "1,x"} {
		if _, err := parseModes(bad); err == nil {
			t.Errorf("parseModes(%q) accepted", bad)
		}
	}
}

// TestEndToEnd exercises the full tool path: write tensors, contract via
// the run() pipeline, and reload the output.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	x := sparta.Random([]uint64{8, 6, 5}, 60, 1)
	y := sparta.Random([]uint64{5, 7}, 20, 2)
	xp := filepath.Join(dir, "x.tns")
	yp := filepath.Join(dir, "y.tns")
	zp := filepath.Join(dir, "z.tns")
	if err := x.SaveTNS(xp); err != nil {
		t.Fatal(err)
	}
	if err := y.SaveTNS(yp); err != nil {
		t.Fatal(err)
	}
	os.Args = []string{"ttt", "-X", xp, "-Y", yp, "-Z", zp, "-m", "1", "-x", "2", "-y", "0"}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	z, err := sparta.LoadTNS(zp)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sparta.Contract(x, y, []int{2}, []int{0}, sparta.Options{Algorithm: sparta.AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() != want.NNZ() {
		t.Fatalf("tool output nnz %d, want %d", z.NNZ(), want.NNZ())
	}
}
