#!/usr/bin/env bash
# run_all.sh — the paper-style grid runner: sweep the sptc-bench duel
# experiments (kernels, sort, planner, ooc, shard) across scales and thread
# counts with a warmup pass per cell, collect every duel's JSON rows under an
# artifact directory, and print one summary table at the end.
#
# Each cell shells out to `sptc-bench -exp <e> -scale <s> -t <t> -json ...`;
# the duels themselves take min-of-3 reps internally, so the grid adds the
# axes (scale, threads, experiment), not the noise rejection. A warmup run
# (discarded) precedes each cell so first-touch page faults and the
# generator's tensor cache don't land in the first measured rep.
#
# A cell whose bench run fails does NOT abort the grid: it records an
# explicit ERR row in summary.tsv (wall and json columns both ERR, the log
# keeps the failure output) and the script exits non-zero after the sweep,
# so CI sees the failure but the surviving cells' artifacts still land.
#
# Knobs (environment):
#   EXPS     comma-separated experiments   (default kernels,sort,planner,ooc,shard)
#   SCALES   space-separated scales        (default "4000 20000")
#   THREADS  space-separated thread counts (default "0" = all cores)
#   REPEATS  measured runs per cell        (default 1; the duels already
#            keep min-of-3 walls internally)
#   WARMUP   warmup runs per cell          (default 1)
#   OUTDIR   artifact directory            (default bench_grid)
set -euo pipefail

EXPS="${EXPS:-kernels,sort,planner,ooc,shard}"
SCALES="${SCALES:-4000 20000}"
THREADS="${THREADS:-0}"
REPEATS="${REPEATS:-1}"
WARMUP="${WARMUP:-1}"
OUTDIR="${OUTDIR:-bench_grid}"

cd "$(dirname "$0")/../.."
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/sptc-bench" ./cmd/sptc-bench

mkdir -p "$OUTDIR"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || true)"
SUMMARY="$OUTDIR/summary.tsv"
printf 'experiment\tscale\tthreads\trun\twall_s\tjson\n' > "$SUMMARY"

FAILED=0
IFS=',' read -r -a EXP_LIST <<< "$EXPS"
for exp in "${EXP_LIST[@]}"; do
  for scale in $SCALES; do
    for t in $THREADS; do
      cell="${exp}_s${scale}_t${t}"
      for _ in $(seq 1 "$WARMUP"); do
        # Warmup failures are not fatal by themselves; the measured run
        # below records the ERR row.
        "$BIN/sptc-bench" -exp "$exp" -scale "$scale" -t "$t" >/dev/null 2>&1 || true
      done
      for run in $(seq 1 "$REPEATS"); do
        json="$OUTDIR/${cell}_r${run}.json"
        log="$OUTDIR/${cell}_r${run}.log"
        start="$(date +%s.%N)"
        if "$BIN/sptc-bench" -exp "$exp" -scale "$scale" -t "$t" \
            -commit "$COMMIT" -json "$json" > "$log" 2>&1; then
          cat "$log"
          end="$(date +%s.%N)"
          wall="$(awk -v a="$start" -v b="$end" 'BEGIN{printf "%.2f", b-a}')"
          printf '%s\t%s\t%s\t%s\t%s\t%s\n' \
            "$exp" "$scale" "$t" "$run" "$wall" "$json" >> "$SUMMARY"
        else
          echo "ERROR: cell $cell run $run failed — see $log" >&2
          cat "$log" >&2
          rm -f "$json" # a partial JSON must not look like a result
          printf '%s\t%s\t%s\t%s\tERR\tERR\n' \
            "$exp" "$scale" "$t" "$run" >> "$SUMMARY"
          FAILED=1
        fi
      done
    done
  done
done

echo
echo "grid complete — artifacts in $OUTDIR/"
if command -v column >/dev/null 2>&1; then
  column -t -s "$(printf '\t')" "$SUMMARY"
else
  cat "$SUMMARY"
fi
if [ "$FAILED" -ne 0 ]; then
  echo "grid FAILED: one or more cells errored (ERR rows above)" >&2
  exit 1
fi
