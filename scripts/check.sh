#!/bin/sh
# check.sh — the same gate as `make verify`, for environments without make:
# full build, vet, the sptc-lint analyzer suite, the hot-path escape/BCE
# budget (sptc-lint -perf vs lint/hotpath_budget.json), and the
# race-detector test sweep (-short for the bench experiments, full for the
# hot packages — see the Makefile note), then the hot packages again with
# -tags assert so the internal/invariant checks are compiled in.
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go run ./cmd/sptc-lint ./...
go run ./cmd/sptc-lint -perf
go test -race -short ./...
go test -race ./internal/hashtab ./internal/core ./internal/engine ./internal/plan ./internal/sortx ./internal/obs
go test -race -tags assert ./internal/hashtab ./internal/core ./internal/engine ./internal/plan ./internal/sortx ./internal/obs
