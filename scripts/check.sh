#!/bin/sh
# check.sh — the same gate as `make verify`, for environments without make:
# full build, vet, and race-detector test sweep (-short for the bench
# experiments, full for the hot packages — see the Makefile note).
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test -race -short ./...
go test -race ./internal/hashtab ./internal/core
