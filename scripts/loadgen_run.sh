#!/usr/bin/env bash
# loadgen_run.sh — build sptc-serve + sptc-loadgen, run an open-loop load
# test against a private server instance, and leave the BENCH_4-schema
# report at $OUT. The server is started fresh (so scrape deltas describe
# exactly this run), drained on exit, and its access log + Chrome trace are
# kept next to the report for debugging.
#
# Knobs (environment):
#   PORT      listen port                (default 18080)
#   RPS       offered request rate       (default 5; stay under the box's
#             capacity or the run sheds and cannot stamp a baseline)
#   DURATION  run length                 (default 30s)
#   SCALE     non-zeros per tensor      (default 8000: ~100ms/contraction
#             on one core, so latency dwarfs HTTP overhead and the
#             client/server quantile cross-check is tight)
#   HOT       hot-plan ratio             (default 0.9)
#   COLD      cold plan count            (default 4)
#   OUT       report path                (default loadgen_fresh.json)
#   CHECK     "1" adds -check            (default 1)
#   EXTRA     extra sptc-loadgen flags   (default empty)
set -euo pipefail

PORT="${PORT:-18080}"
RPS="${RPS:-5}"
DURATION="${DURATION:-30s}"
SCALE="${SCALE:-8000}"
HOT="${HOT:-0.9}"
COLD="${COLD:-4}"
OUT="${OUT:-loadgen_fresh.json}"
CHECK="${CHECK:-1}"
EXTRA="${EXTRA:-}"

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/sptc-serve" ./cmd/sptc-serve
go build -o "$BIN/sptc-loadgen" ./cmd/sptc-loadgen

ART="$(dirname "$OUT")"
"$BIN/sptc-serve" -addr ":$PORT" \
  -trace "$ART/loadgen_trace.json" \
  -access-log "$ART/loadgen_access.log" &
SERVE_PID=$!
# Drain on exit so the trace file is flushed even when loadgen fails.
trap 'kill -TERM "$SERVE_PID" 2>/dev/null; wait "$SERVE_PID" 2>/dev/null; rm -rf "$BIN"' EXIT

for _ in $(seq 1 100); do
  if curl -sf "http://localhost:$PORT/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

CHECK_FLAG=""
[ "$CHECK" = "1" ] && CHECK_FLAG="-check"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || true)"

# shellcheck disable=SC2086
"$BIN/sptc-loadgen" -addr "http://localhost:$PORT" \
  -rps "$RPS" -duration "$DURATION" -scale "$SCALE" \
  -hot-ratio "$HOT" -cold-plans "$COLD" \
  -commit "$COMMIT" -json "$OUT" $CHECK_FLAG $EXTRA
