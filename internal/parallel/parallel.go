// Package parallel provides the thread-pool primitives shared by all Sparta
// stages: static range partitioning (For), dynamic chunked scheduling
// (ForChunked), and a depth-bounded goroutine fan-out used by the parallel
// quicksort in package coo.
//
// The paper parallelizes all five SpTC stages with OpenMP; here each stage
// maps onto one of these helpers with an explicit thread count so that the
// thread-scalability experiment (Fig. 6) can sweep it.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the thread count used when an Options leaves it 0.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a requested thread count: values < 1 become
// DefaultThreads(), and the result never exceeds n (no point spawning more
// workers than items).
func Clamp(threads, n int) int {
	if threads < 1 {
		threads = DefaultThreads()
	}
	if n < 1 {
		return 1
	}
	if threads > n {
		threads = n
	}
	return threads
}

// MinParallelWork is the estimated-work floor below which spawning workers
// costs more than it saves: BENCH_1.json showed threads=4 slower than
// threads=1 on the NIPS 2-mode contraction because its nf is tiny and each
// sub-tensor holds a handful of non-zeros.
const MinParallelWork = 1 << 13

// ClampWork is Clamp with a serial short-circuit for tiny jobs: when the
// caller's estimate of total work (typically the non-zero count behind the n
// loop items) is below MinParallelWork, it returns 1 regardless of the
// requested thread count. A negative work estimate means "unknown" and
// disables the short-circuit.
func ClampWork(threads, n int, work int64) int {
	if work >= 0 && work < MinParallelWork {
		return 1
	}
	return Clamp(threads, n)
}

// For splits [0,n) into `threads` contiguous ranges and runs body(tid, lo, hi)
// on each in its own goroutine. Static partitioning preserves the locality of
// sorted inputs, which is what the computation stages rely on (each thread
// owns a contiguous run of X sub-tensors).
func For(threads, n int, body func(tid, lo, hi int)) {
	threads = Clamp(threads, n)
	if threads == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := n * t / threads
		hi := n * (t + 1) / threads
		go func(tid, lo, hi int) {
			defer wg.Done()
			body(tid, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
}

// ForChunked schedules [0,n) in fixed-size chunks pulled from a shared
// counter — dynamic load balancing for irregular work such as sub-tensors
// with skewed non-zero counts. chunk < 1 picks a heuristic.
func ForChunked(threads, n, chunk int, body func(tid, lo, hi int)) {
	_ = ForChunkedCtx(context.Background(), threads, n, chunk, body)
}

// ForChunkedCtx is ForChunked with a cancellation checkpoint between chunk
// claims: when ctx is done, workers stop claiming new chunks, the in-flight
// chunks run to completion (bodies never observe a torn range), and the call
// returns ctx.Err(). The chunks already executed are NOT rolled back — the
// caller owns discarding partial state. A Background context costs nothing
// on the claim path (its Done channel is nil).
func ForChunkedCtx(ctx context.Context, threads, n, chunk int, body func(tid, lo, hi int)) error {
	threads = Clamp(threads, n)
	if chunk < 1 {
		chunk = (n + threads*8 - 1) / (threads * 8)
		if chunk < 1 {
			chunk = 1
		}
	}
	done := ctx.Done()
	if threads == 1 {
		for lo := 0; lo < n; lo += chunk {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(0, lo, hi)
		}
		return nil
	}
	// Chunks are claimed with a single atomic fetch-add: every chunk is the
	// same size, so the claimed range is a pure function of the returned
	// counter value and no lock is needed.
	var next int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(tid, lo, hi)
			}
		}(t)
	}
	wg.Wait()
	return ctx.Err()
}

// ForChunkedWork is ForChunked with a ClampWork serial fallback: stages whose
// loop items hide wildly different amounts of work (sub-tensors) pass their
// total non-zero count so tiny contractions skip the goroutine machinery.
func ForChunkedWork(threads, n, chunk int, work int64, body func(tid, lo, hi int)) {
	ForChunked(ClampWork(threads, n, work), n, chunk, body)
}

// ForChunkedWorkCtx is ForChunkedCtx with the ClampWork serial fallback.
func ForChunkedWorkCtx(ctx context.Context, threads, n, chunk int, work int64, body func(tid, lo, hi int)) error {
	return ForChunkedCtx(ctx, ClampWork(threads, n, work), n, chunk, body)
}

// Fanout is a depth-budgeted goroutine spawner for divide-and-conquer
// algorithms (parallel quicksort). Spawn returns true and runs f
// asynchronously while budget remains; otherwise the caller should recurse
// serially. Wait blocks until every spawned task (transitively) finished.
type Fanout struct {
	wg     sync.WaitGroup
	budget int64
	mu     sync.Mutex
}

// NewFanout allows roughly 4*threads concurrent tasks, enough to smooth
// quicksort's uneven splits without goroutine storms.
func NewFanout(threads int) *Fanout {
	if threads < 1 {
		threads = DefaultThreads()
	}
	return &Fanout{budget: int64(4 * threads)}
}

// Spawn runs f in a new goroutine if budget remains, returning true; the
// budget slot is returned when f completes.
func (fo *Fanout) Spawn(f func()) bool {
	fo.mu.Lock()
	if fo.budget <= 0 {
		fo.mu.Unlock()
		return false
	}
	fo.budget--
	fo.mu.Unlock()
	fo.wg.Add(1)
	go func() {
		defer func() {
			fo.mu.Lock()
			fo.budget++
			fo.mu.Unlock()
			fo.wg.Done()
		}()
		f()
	}()
	return true
}

// Wait blocks until all spawned work has completed.
func (fo *Fanout) Wait() { fo.wg.Wait() }

// PrefixSum computes the exclusive prefix sum of counts and returns the
// total. Used by the writeback stage to assign each thread-local Zlocal a
// disjoint output range.
func PrefixSum(counts []int) (offsets []int, total int) {
	offsets = make([]int, len(counts))
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	return offsets, total
}
