// Package parallel provides the thread-pool primitives shared by all Sparta
// stages: static range partitioning (For), dynamic chunked scheduling
// (ForChunked), and a depth-bounded goroutine fan-out used by the parallel
// quicksort in package coo.
//
// The paper parallelizes all five SpTC stages with OpenMP; here each stage
// maps onto one of these helpers with an explicit thread count so that the
// thread-scalability experiment (Fig. 6) can sweep it.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultThreads returns the thread count used when an Options leaves it 0.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a requested thread count: values < 1 become
// DefaultThreads(), and the result never exceeds n (no point spawning more
// workers than items).
func Clamp(threads, n int) int {
	if threads < 1 {
		threads = DefaultThreads()
	}
	if n < 1 {
		return 1
	}
	if threads > n {
		threads = n
	}
	return threads
}

// For splits [0,n) into `threads` contiguous ranges and runs body(tid, lo, hi)
// on each in its own goroutine. Static partitioning preserves the locality of
// sorted inputs, which is what the computation stages rely on (each thread
// owns a contiguous run of X sub-tensors).
func For(threads, n int, body func(tid, lo, hi int)) {
	threads = Clamp(threads, n)
	if threads == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := n * t / threads
		hi := n * (t + 1) / threads
		go func(tid, lo, hi int) {
			defer wg.Done()
			body(tid, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
}

// ForChunked schedules [0,n) in fixed-size chunks pulled from a shared
// counter — dynamic load balancing for irregular work such as sub-tensors
// with skewed non-zero counts. chunk < 1 picks a heuristic.
func ForChunked(threads, n, chunk int, body func(tid, lo, hi int)) {
	threads = Clamp(threads, n)
	if chunk < 1 {
		chunk = (n + threads*8 - 1) / (threads * 8)
		if chunk < 1 {
			chunk = 1
		}
	}
	if threads == 1 {
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(0, lo, hi)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() (int, int, bool) {
		mu.Lock()
		lo := int(next)
		if lo >= n {
			mu.Unlock()
			return 0, 0, false
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = int64(hi)
		mu.Unlock()
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				body(tid, lo, hi)
			}
		}(t)
	}
	wg.Wait()
}

// Fanout is a depth-budgeted goroutine spawner for divide-and-conquer
// algorithms (parallel quicksort). Spawn returns true and runs f
// asynchronously while budget remains; otherwise the caller should recurse
// serially. Wait blocks until every spawned task (transitively) finished.
type Fanout struct {
	wg     sync.WaitGroup
	budget int64
	mu     sync.Mutex
}

// NewFanout allows roughly 4*threads concurrent tasks, enough to smooth
// quicksort's uneven splits without goroutine storms.
func NewFanout(threads int) *Fanout {
	if threads < 1 {
		threads = DefaultThreads()
	}
	return &Fanout{budget: int64(4 * threads)}
}

// Spawn runs f in a new goroutine if budget remains, returning true; the
// budget slot is returned when f completes.
func (fo *Fanout) Spawn(f func()) bool {
	fo.mu.Lock()
	if fo.budget <= 0 {
		fo.mu.Unlock()
		return false
	}
	fo.budget--
	fo.mu.Unlock()
	fo.wg.Add(1)
	go func() {
		defer func() {
			fo.mu.Lock()
			fo.budget++
			fo.mu.Unlock()
			fo.wg.Done()
		}()
		f()
	}()
	return true
}

// Wait blocks until all spawned work has completed.
func (fo *Fanout) Wait() { fo.wg.Wait() }

// PrefixSum computes the exclusive prefix sum of counts and returns the
// total. Used by the writeback stage to assign each thread-local Zlocal a
// disjoint output range.
func PrefixSum(counts []int) (offsets []int, total int) {
	offsets = make([]int, len(counts))
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	return offsets, total
}
