package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if Clamp(0, 10) < 1 {
		t.Fatal("Clamp(0, ...) must be >= 1")
	}
	if got := Clamp(8, 3); got != 3 {
		t.Fatalf("Clamp(8,3) = %d", got)
	}
	if got := Clamp(2, 0); got != 1 {
		t.Fatalf("Clamp(2,0) = %d", got)
	}
}

func TestForCoversRangeExactly(t *testing.T) {
	for _, threads := range []int{1, 3, 7} {
		for _, n := range []int{0, 1, 5, 100, 101} {
			hits := make([]int32, n)
			For(threads, n, func(tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d hit %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestForTidsDistinct(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	For(4, 100, func(tid, lo, hi int) {
		mu.Lock()
		if seen[tid] {
			mu.Unlock()
			t.Errorf("tid %d reused", tid)
			return
		}
		seen[tid] = true
		mu.Unlock()
	})
}

func TestForChunkedCoversRangeExactly(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for _, chunk := range []int{0, 1, 7, 1000} {
			n := 523
			hits := make([]int32, n)
			ForChunked(threads, n, chunk, func(tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d chunk=%d: index %d hit %d times", threads, chunk, i, h)
				}
			}
		}
	}
}

func TestForChunkedZero(t *testing.T) {
	called := false
	ForChunked(4, 0, 1, func(tid, lo, hi int) {
		if lo < hi {
			called = true
		}
	})
	if called {
		t.Fatal("body called with non-empty range for n=0")
	}
}

func TestClampWork(t *testing.T) {
	if got := ClampWork(4, 100, MinParallelWork-1); got != 1 {
		t.Fatalf("ClampWork below floor = %d, want 1", got)
	}
	if got := ClampWork(4, 100, MinParallelWork); got != 4 {
		t.Fatalf("ClampWork at floor = %d, want 4", got)
	}
	if got := ClampWork(4, 100, -1); got != 4 {
		t.Fatalf("ClampWork unknown work = %d, want 4 (no short-circuit)", got)
	}
	if got := ClampWork(4, 2, MinParallelWork); got != 2 {
		t.Fatalf("ClampWork still clamps to n: got %d, want 2", got)
	}
}

// TestForChunkedWorkSerialFallback is the regression guard for the
// tiny-contraction case: below the work floor, the body must run on a single
// worker (tid 0) and strictly in order — no goroutine hand-off at all.
func TestForChunkedWorkSerialFallback(t *testing.T) {
	var order []int
	ForChunkedWork(8, 64, 1, MinParallelWork-1, func(tid, lo, hi int) {
		if tid != 0 {
			t.Fatalf("tiny work ran on tid %d, want 0", tid)
		}
		order = append(order, lo)
	})
	for i := range order {
		if order[i] != i {
			t.Fatalf("tiny work ran out of order: %v", order)
		}
	}
	// Above the floor the range must still be covered exactly.
	hits := make([]int32, 523)
	ForChunkedWork(4, len(hits), 7, MinParallelWork, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

// BenchmarkForChunkedTiny guards the satellite fix itself: scheduling a
// tiny loop through ForChunkedWork must stay within a few times the cost of
// the bare serial loop (it previously paid goroutine+counter overhead).
func BenchmarkForChunkedTiny(b *testing.B) {
	sink := make([]int32, 64)
	b.Run("work-clamped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForChunkedWork(4, len(sink), 1, int64(len(sink)), func(_, lo, hi int) {
				for j := lo; j < hi; j++ {
					sink[j]++
				}
			})
		}
	})
	b.Run("unclamped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ForChunked(4, len(sink), 1, func(_, lo, hi int) {
				for j := lo; j < hi; j++ {
					atomic.AddInt32(&sink[j], 1)
				}
			})
		}
	})
}

func TestFanout(t *testing.T) {
	fo := NewFanout(2)
	var count int64
	var spawn func(depth int)
	spawn = func(depth int) {
		atomic.AddInt64(&count, 1)
		if depth == 0 {
			return
		}
		for i := 0; i < 2; i++ {
			d := depth - 1
			if !fo.Spawn(func() { spawn(d) }) {
				spawn(d)
			}
		}
	}
	spawn(6)
	fo.Wait()
	if count != 127 {
		t.Fatalf("count = %d, want 127", count)
	}
}

func TestPrefixSum(t *testing.T) {
	offs, total := PrefixSum([]int{3, 0, 5, 2})
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int{0, 3, 3, 8}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offs = %v", offs)
		}
	}
	offs, total = PrefixSum(nil)
	if total != 0 || len(offs) != 0 {
		t.Fatal("empty prefix sum broken")
	}
}
