package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForChunkedCtxCompletes(t *testing.T) {
	for _, threads := range []int{1, 4} {
		var sum atomic.Int64
		err := ForChunkedCtx(context.Background(), threads, 1000, 16, func(_, lo, hi int) {
			sum.Add(int64(hi - lo))
		})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if sum.Load() != 1000 {
			t.Fatalf("threads=%d: covered %d of 1000", threads, sum.Load())
		}
	}
}

// TestForChunkedCtxCancel: a context canceled mid-run stops further chunk
// claims and surfaces ctx.Err() from both the serial and parallel paths.
func TestForChunkedCtxCancel(t *testing.T) {
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		err := ForChunkedCtx(ctx, threads, 1_000_000, 1, func(_, lo, hi int) {
			if calls.Add(1) == 3 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		// The loop must have stopped far short of the full range.
		if n := calls.Load(); n > 1000 {
			t.Errorf("threads=%d: %d chunks ran after cancellation", threads, n)
		}
	}
}

func TestForChunkedWorkCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the loop starts: no body call at all
	var calls atomic.Int64
	err := ForChunkedWorkCtx(ctx, 4, 1000, 8, 1000, func(_, lo, hi int) {
		calls.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d chunks ran under a pre-canceled context", calls.Load())
	}
}

func TestForChunkedWorkCtxCompletes(t *testing.T) {
	var sum atomic.Int64
	err := ForChunkedWorkCtx(context.Background(), 4, 777, 0, 777, func(_, lo, hi int) {
		sum.Add(int64(hi - lo))
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 777 {
		t.Fatalf("covered %d of 777", sum.Load())
	}
}

// TestForChunkedBackgroundUnchanged: the ctx-less wrappers keep their
// original semantics (full coverage, no error path).
func TestForChunkedBackgroundUnchanged(t *testing.T) {
	var sum atomic.Int64
	ForChunked(3, 500, 7, func(_, lo, hi int) { sum.Add(int64(hi - lo)) })
	if sum.Load() != 500 {
		t.Fatalf("ForChunked covered %d of 500", sum.Load())
	}
	sum.Store(0)
	ForChunkedWork(3, 500, 7, 500, func(_, lo, hi int) { sum.Add(int64(hi - lo)) })
	if sum.Load() != 500 {
		t.Fatalf("ForChunkedWork covered %d of 500", sum.Load())
	}
}
