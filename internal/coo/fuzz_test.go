package coo

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS checks the text parser never panics and that anything it
// accepts survives a write/read round trip.
func FuzzReadTNS(f *testing.F) {
	f.Add("2\n3 4\n1 1 2.5\n3 4 -1\n")
	f.Add("# comment\n1\n5\n5 0.5\n")
	f.Add("3\n2 2 2\n1 1 1 1\n2 2 2 -2\n")
	f.Add("")
	f.Add("2\n3 4\n")
	f.Add("x\n")
	f.Add("2\n3 4\n0 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		ten, err := ReadTNS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := ten.Validate(); err != nil {
			t.Fatalf("accepted tensor fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := ten.WriteTNS(&buf); err != nil {
			t.Fatalf("write after read: %v", err)
		}
		back, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if !ten.Equal(back) {
			t.Fatal("round trip changed the tensor")
		}
	})
}

// FuzzReadBin checks the binary parser is robust against arbitrary bytes.
func FuzzReadBin(f *testing.F) {
	ten := MustNew([]uint64{3, 4}, 0)
	ten.Append([]uint32{1, 2}, 1.5)
	var buf bytes.Buffer
	if err := ten.WriteBin(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SPTN"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, in []byte) {
		ten, err := ReadBin(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := ten.Validate(); err != nil {
			t.Fatalf("accepted tensor fails validation: %v", err)
		}
	})
}
