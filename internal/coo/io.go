package coo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The .tns text format (FROSTT / HiParTI convention):
//
//	line 1:            order N
//	line 2:            N mode sizes
//	following lines:   N one-based indices then the value
//
// Lines starting with '#' and blank lines are ignored.

// WriteTNS writes t in .tns format.
func (t *Tensor) WriteTNS(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d\n", t.Order()); err != nil {
		return err
	}
	for m, d := range t.Dims {
		if m > 0 {
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.FormatUint(d, 10)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i := 0; i < t.NNZ(); i++ {
		for m := range t.Inds {
			if _, err := bw.WriteString(strconv.FormatUint(uint64(t.Inds[m][i])+1, 10)); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.FormatFloat(t.Vals[i], 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTNS parses a .tns stream into a tensor, validating every index against
// the declared mode sizes.
func ReadTNS(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("coo: reading order: %w", err)
	}
	order, err := strconv.Atoi(line)
	if err != nil || order < 1 {
		return nil, fmt.Errorf("coo: bad order line %q", line)
	}
	line, err = nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("coo: reading dims: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) != order {
		return nil, fmt.Errorf("coo: %d dims for order %d", len(fields), order)
	}
	dims := make([]uint64, order)
	for m, f := range fields {
		dims[m], err = strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("coo: bad dim %q: %w", f, err)
		}
	}
	t, err := New(dims, 0)
	if err != nil {
		return nil, err
	}
	idx := make([]uint32, order)
	lineNo := 2
	for {
		line, err = nextLine(sc)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		lineNo++
		fields = strings.Fields(line)
		if len(fields) != order+1 {
			return nil, fmt.Errorf("coo: line %d: %d fields, want %d", lineNo, len(fields), order+1)
		}
		for m := 0; m < order; m++ {
			u, err := strconv.ParseUint(fields[m], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("coo: line %d: bad index %q: %w", lineNo, fields[m], err)
			}
			if u < 1 || u > dims[m] {
				return nil, fmt.Errorf("coo: line %d: index %d out of range [1,%d] for mode %d", lineNo, u, dims[m], m)
			}
			idx[m] = uint32(u - 1)
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("coo: line %d: bad value %q: %w", lineNo, fields[order], err)
		}
		t.Append(idx, v)
	}
	return t, nil
}

// nextLine returns the next non-blank, non-comment line or io.EOF.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return s, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// LoadTNS reads a tensor from a .tns file on disk.
func LoadTNS(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadTNS(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// SaveTNS writes a tensor to a .tns file on disk.
func (t *Tensor) SaveTNS(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTNS(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
