package coo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// RunSpool spools sorted output runs to a scratch file so a larger-than-RAM
// Z never has to be heap-resident: the streaming driver appends one sorted,
// disjoint run per X window (runs must arrive in ascending coordinate
// order — Append enforces disjointness at the boundaries), and Materialize
// reassembles the runs into a v2 SPTN file and returns it as a Mapped view,
// whose pages the kernel can evict under pressure.
//
// On-disk scratch layout is run-major: per run, the mode columns then the
// values, so Materialize can gather each final mode-major section with
// sequential ReadAt sweeps. Not safe for concurrent use.
type RunSpool struct {
	dims  []uint64
	dir   string
	f     *os.File
	w     *bufio.Writer
	runs  []int    // nnz of each appended run
	last  []uint32 // final coordinate tuple of the last appended run
	first []uint32 // scratch: first tuple of the incoming run
	nnz   int
}

// NewRunSpool creates a spool for runs with the given output dims, backed
// by a scratch file in dir ("" = the default temp directory). The scratch
// file is unlinked immediately so a crashed process leaks nothing.
func NewRunSpool(dir string, dims []uint64) (*RunSpool, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("coo: RunSpool needs at least one mode")
	}
	f, err := os.CreateTemp(dir, "sptn-spool-*")
	if err != nil {
		return nil, err
	}
	// Unlink-after-open: the fd keeps the inode alive, the name is gone.
	_ = os.Remove(f.Name())
	return &RunSpool{
		dims:  append([]uint64(nil), dims...),
		dir:   dir,
		f:     f,
		w:     bufio.NewWriterSize(f, 1<<20),
		last:  make([]uint32, len(dims)),
		first: make([]uint32, len(dims)),
	}, nil
}

// NNZ returns the total non-zeros spooled so far.
func (s *RunSpool) NNZ() int { return s.nnz }

// Runs returns how many non-empty runs were appended.
func (s *RunSpool) Runs() int { return len(s.runs) }

// Append spools one sorted run. Runs must be disjoint and ascending: the
// first coordinate of run k+1 must be strictly greater than the last
// coordinate of run k (the streaming driver's window alignment guarantees
// this; a violation means corrupted output and is reported loudly).
// Empty runs are no-ops.
func (s *RunSpool) Append(run *Tensor) error {
	n := run.NNZ()
	if n == 0 {
		return nil
	}
	if run.Order() != len(s.dims) {
		return fmt.Errorf("coo: RunSpool: run has order %d, want %d", run.Order(), len(s.dims))
	}
	run.Index(0, s.first)
	if s.nnz > 0 && !tupleLess(s.last, s.first) {
		return fmt.Errorf("coo: RunSpool: run starting at %v does not follow previous run ending at %v", s.first, s.last)
	}
	for m := range run.Inds {
		if err := binary.Write(s.w, binary.LittleEndian, run.Inds[m]); err != nil {
			return err
		}
	}
	if err := binary.Write(s.w, binary.LittleEndian, run.Vals); err != nil {
		return err
	}
	run.Index(n-1, s.last)
	s.runs = append(s.runs, n)
	s.nnz += n
	return nil
}

// tupleLess compares coordinate tuples lexicographically.
func tupleLess(a, b []uint32) bool {
	for m := range a {
		if a[m] != b[m] {
			return a[m] < b[m]
		}
	}
	return false
}

// Materialize assembles the spooled runs into a sorted v2 SPTN file (window
// index = the run boundaries) and opens it as a Mapped view. The spool and
// the materialized file are both unlinked before returning — the mapping is
// the only remaining reference, and Close (or a dropped handle) releases
// the storage. The spool is consumed: only Close may follow.
func (s *RunSpool) Materialize() (*Mapped, error) {
	if s.f == nil {
		return nil, fmt.Errorf("coo: RunSpool already closed")
	}
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	order := len(s.dims)
	out, err := os.CreateTemp(s.dir, "sptn-z-*.sptn")
	if err != nil {
		return nil, err
	}
	outPath := out.Name()
	fail := func(err error) (*Mapped, error) {
		_ = out.Close()
		_ = os.Remove(outPath)
		return nil, err
	}

	bw := bufio.NewWriterSize(out, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return fail(err)
	}
	for _, v := range []uint32{binVersion2, uint32(order), binFlagSorted} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fail(err)
		}
	}
	nwin := uint64(len(s.runs))
	if s.nnz == 0 {
		nwin = 0
	}
	for _, v := range []uint64{uint64(s.nnz), nwin} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fail(err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.dims); err != nil {
		return fail(err)
	}
	start := 0
	for _, n := range s.runs {
		if err := binary.Write(bw, binary.LittleEndian, uint64(start)); err != nil {
			return fail(err)
		}
		start += n
	}

	// Run r's bytes start at sum of earlier run sizes; within a run, column
	// m starts at m*4*n and the values at order*4*n.
	runBase := make([]int64, len(s.runs)+1)
	for r, n := range s.runs {
		runBase[r+1] = runBase[r] + int64(n)*int64(4*order+8)
	}
	copyBuf := make([]byte, 1<<20)
	gather := func(sectionOff func(r int) int64, bytesOf func(n int) int64) error {
		for r, n := range s.runs {
			off := runBase[r] + sectionOff(r)
			if err := copySection(bw, s.f, off, bytesOf(n), copyBuf); err != nil {
				return err
			}
		}
		return nil
	}
	var zero8 [8]byte
	pad := pad8(4*uint64(s.nnz)) - 4*uint64(s.nnz)
	for m := 0; m < order; m++ {
		mm := m
		if err := gather(
			func(r int) int64 { return int64(mm) * 4 * int64(s.runs[r]) },
			func(n int) int64 { return 4 * int64(n) },
		); err != nil {
			return fail(err)
		}
		if pad > 0 {
			if _, err := bw.Write(zero8[:pad]); err != nil {
				return fail(err)
			}
		}
	}
	if err := gather(
		func(r int) int64 { return int64(order) * 4 * int64(s.runs[r]) },
		func(n int) int64 { return 8 * int64(n) },
	); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := out.Close(); err != nil {
		_ = os.Remove(outPath)
		return nil, err
	}
	_ = s.Close()

	m, err := OpenMapped(outPath)
	// The mapping (or heap copy) no longer needs the name.
	_ = os.Remove(outPath)
	return m, err
}

// copySection streams length bytes of src starting at off into w.
func copySection(w io.Writer, src *os.File, off, length int64, buf []byte) error {
	for length > 0 {
		k := int64(len(buf))
		if k > length {
			k = length
		}
		if _, err := src.ReadAt(buf[:k], off); err != nil {
			return err
		}
		if _, err := w.Write(buf[:k]); err != nil {
			return err
		}
		off += k
		length -= k
	}
	return nil
}

// Close releases the scratch file. Idempotent; Materialize calls it.
func (s *RunSpool) Close() error {
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	return f.Close()
}
