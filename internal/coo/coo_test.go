package coo

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func randomTensor(t *testing.T, dims []uint64, nnz int, seed int64) *Tensor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ten := MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		ten.Append(idx, rng.NormFloat64())
	}
	return ten
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("no modes should fail")
	}
	if _, err := New([]uint64{3, 0}, 0); err == nil {
		t.Error("zero mode should fail")
	}
	if _, err := New([]uint64{1 << 40}, 0); err == nil {
		t.Error("mode exceeding uint32 range should fail")
	}
}

func TestAppendAndValidate(t *testing.T) {
	ten := MustNew([]uint64{4, 5}, 0)
	ten.Append([]uint32{1, 2}, 3.5)
	ten.Append([]uint32{3, 4}, -1)
	if ten.NNZ() != 2 {
		t.Fatalf("nnz = %d", ten.NNZ())
	}
	if err := ten.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a column length.
	ten.Inds[1] = ten.Inds[1][:1]
	if err := ten.Validate(); err == nil {
		t.Fatal("expected validation failure for ragged columns")
	}
}

func TestValidateOutOfRange(t *testing.T) {
	ten := MustNew([]uint64{4, 5}, 0)
	ten.Inds[0] = append(ten.Inds[0], 4) // out of range
	ten.Inds[1] = append(ten.Inds[1], 0)
	ten.Vals = append(ten.Vals, 1)
	if err := ten.Validate(); err == nil {
		t.Fatal("expected out-of-range validation error")
	}
}

func TestAppendPanics(t *testing.T) {
	ten := MustNew([]uint64{2, 2}, 0)
	for _, bad := range [][]uint32{{0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%v) should panic", bad)
				}
			}()
			ten.Append(bad, 1)
		}()
	}
}

func TestPermute(t *testing.T) {
	ten := MustNew([]uint64{2, 3, 4}, 0)
	ten.Append([]uint32{1, 2, 3}, 7)
	if err := ten.Permute([]int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ten.Dims, []uint64{4, 2, 3}) {
		t.Fatalf("dims after permute: %v", ten.Dims)
	}
	got := []uint32{ten.Inds[0][0], ten.Inds[1][0], ten.Inds[2][0]}
	if !reflect.DeepEqual(got, []uint32{3, 1, 2}) {
		t.Fatalf("indices after permute: %v", got)
	}
	// Round-trip back.
	if err := ten.Permute([]int{1, 2, 0}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ten.Dims, []uint64{2, 3, 4}) {
		t.Fatalf("dims after round trip: %v", ten.Dims)
	}
}

func TestPermuteRejectsInvalid(t *testing.T) {
	ten := MustNew([]uint64{2, 3}, 0)
	for _, bad := range [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}} {
		if err := ten.Permute(bad); err == nil {
			t.Errorf("Permute(%v) should fail", bad)
		}
	}
}

func checkSorted(t *testing.T, ten *Tensor) {
	t.Helper()
	if !ten.IsSorted() {
		t.Fatal("tensor not sorted")
	}
}

// multiset fingerprint of (coords, value) pairs for permutation checking
func fingerprint(ten *Tensor) []string {
	out := make([]string, ten.NNZ())
	for i := 0; i < ten.NNZ(); i++ {
		var b strings.Builder
		for m := range ten.Inds {
			b.WriteString(string(rune(ten.Inds[m][i])) + "|")
		}
		b.WriteString(string(rune(int(ten.Vals[i] * 1000))))
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func TestSortSmallAndParallel(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for _, nnz := range []int{0, 1, 2, 15, 16, 17, 1000, 5000} {
			ten := randomTensor(t, []uint64{17, 13, 11}, nnz, int64(nnz)+100)
			before := fingerprint(ten)
			ten.Sort(threads)
			checkSorted(t, ten)
			if !reflect.DeepEqual(before, fingerprint(ten)) {
				t.Fatalf("threads=%d nnz=%d: sort changed the multiset", threads, nnz)
			}
			if err := ten.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSortFallbackPath(t *testing.T) {
	// Dims whose product overflows uint64 force the multi-column
	// quicksort path.
	dims := []uint64{1 << 31, 1 << 31, 1 << 31}
	ten := randomTensor(t, dims, 3000, 9)
	before := fingerprint(ten)
	ten.Sort(2)
	checkSorted(t, ten)
	if !reflect.DeepEqual(before, fingerprint(ten)) {
		t.Fatal("fallback sort changed the multiset")
	}
}

func TestSortIdempotent(t *testing.T) {
	ten := randomTensor(t, []uint64{9, 9, 9}, 2000, 3)
	ten.Sort(2)
	snap := ten.Clone()
	ten.Sort(2)
	if !ten.Equal(snap) {
		t.Fatal("second sort changed a sorted tensor")
	}
}

func TestSortAdversarial(t *testing.T) {
	// All-equal keys, already-sorted, and reverse-sorted inputs.
	dims := []uint64{4, 4}
	eq := MustNew(dims, 0)
	for i := 0; i < 500; i++ {
		eq.Append([]uint32{1, 2}, float64(i))
	}
	eq.Sort(2)
	checkSorted(t, eq)
	if eq.NNZ() != 500 {
		t.Fatal("lost elements")
	}

	asc := MustNew([]uint64{1 << 20}, 0)
	for i := 0; i < 3000; i++ {
		asc.Append([]uint32{uint32(i)}, 1)
	}
	asc.Sort(2)
	checkSorted(t, asc)

	desc := MustNew([]uint64{1 << 20}, 0)
	for i := 2999; i >= 0; i-- {
		desc.Append([]uint32{uint32(i)}, 1)
	}
	desc.Sort(2)
	checkSorted(t, desc)
	for i := 0; i < 3000; i++ {
		if desc.Inds[0][i] != uint32(i) {
			t.Fatalf("desc[%d] = %d", i, desc.Inds[0][i])
		}
	}
}

func TestQuickSortProperty(t *testing.T) {
	f := func(seed int64, raw uint16) bool {
		nnz := int(raw % 2048)
		ten := MustNew([]uint64{8, 8, 8}, nnz)
		rng := rand.New(rand.NewSource(seed))
		idx := make([]uint32, 3)
		for i := 0; i < nnz; i++ {
			for m := range idx {
				idx[m] = uint32(rng.Intn(8))
			}
			ten.Append(idx, rng.Float64())
		}
		before := fingerprint(ten)
		ten.Sort(3)
		return ten.IsSorted() && reflect.DeepEqual(before, fingerprint(ten))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubPtr(t *testing.T) {
	ten := MustNew([]uint64{3, 3, 3}, 0)
	rows := [][]uint32{
		{0, 0, 1}, {0, 0, 2}, {0, 1, 0}, {1, 2, 2}, {2, 0, 0}, {2, 0, 1}, {2, 2, 2},
	}
	for _, r := range rows {
		ten.Append(r, 1)
	}
	ptr, err := ten.SubPtr(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ptr, []int{0, 3, 4, 7}) {
		t.Fatalf("SubPtr(1) = %v", ptr)
	}
	ptr2, _ := ten.SubPtr(2)
	if !reflect.DeepEqual(ptr2, []int{0, 2, 3, 4, 6, 7}) {
		t.Fatalf("SubPtr(2) = %v", ptr2)
	}
	ptr0, _ := ten.SubPtr(0)
	if !reflect.DeepEqual(ptr0, []int{0, 7}) {
		t.Fatalf("SubPtr(0) = %v", ptr0)
	}
	if MaxSubNNZ(ptr) != 3 {
		t.Fatalf("MaxSubNNZ = %d", MaxSubNNZ(ptr))
	}
	if _, err := ten.SubPtr(4); err == nil {
		t.Fatal("SubPtr beyond order should fail")
	}
}

func TestSubPtrEmpty(t *testing.T) {
	ten := MustNew([]uint64{3}, 0)
	ptr, err := ten.SubPtr(1)
	if err != nil || !reflect.DeepEqual(ptr, []int{0}) {
		t.Fatalf("empty SubPtr = %v, %v", ptr, err)
	}
}

func TestDedup(t *testing.T) {
	ten := MustNew([]uint64{4, 4}, 0)
	ten.Append([]uint32{0, 1}, 1)
	ten.Append([]uint32{0, 1}, 2)
	ten.Append([]uint32{0, 2}, 5)
	ten.Append([]uint32{1, 0}, -5)
	ten.Append([]uint32{1, 0}, 5)
	if merged := ten.Dedup(); merged != 2 {
		t.Fatalf("merged = %d", merged)
	}
	if ten.NNZ() != 3 {
		t.Fatalf("nnz after dedup = %d", ten.NNZ())
	}
	if ten.Vals[0] != 3 || ten.Vals[1] != 5 || ten.Vals[2] != 0 {
		t.Fatalf("vals after dedup = %v", ten.Vals)
	}
}

func TestTNSRoundTrip(t *testing.T) {
	ten := randomTensor(t, []uint64{6, 7, 8, 9}, 500, 11)
	ten.Sort(1)
	var buf bytes.Buffer
	if err := ten.WriteTNS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ten.Equal(back) {
		t.Fatal("TNS round trip mismatch")
	}
}

func TestTNSComments(t *testing.T) {
	in := "# a comment\n2\n\n3 4\n1 1 2.5\n# middle\n3 4 -1\n"
	ten, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ten.NNZ() != 2 || ten.Dims[1] != 4 {
		t.Fatalf("parsed %v", ten)
	}
	if ten.Inds[0][1] != 2 || ten.Inds[1][1] != 3 {
		t.Fatal("1-based conversion broken")
	}
}

func TestTNSMalformed(t *testing.T) {
	cases := []string{
		"",                      // empty
		"x\n",                   // bad order
		"2\n3\n",                // dim count mismatch
		"2\n3 4\n1 1\n",         // missing value
		"2\n3 4\n0 1 1\n",       // index below 1
		"2\n3 4\n4 1 1\n",       // index above dim
		"2\n3 4\n1 1 notanum\n", // bad value
		"2\n3 a\n1 1 1\n",       // bad dim
		"2\n3 4\n1 1 1 extra\n", // extra field
		"-1\n3 4\n",             // negative order
		"2\n3 4\n1.5 1 1\n",     // fractional index
	}
	for _, c := range cases {
		if _, err := ReadTNS(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := randomTensor(t, []uint64{5, 5}, 50, 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Vals[0] += 1
	if a.Equal(b) {
		t.Fatal("value change undetected")
	}
	c := a.Clone()
	c.Inds[1][3] = (c.Inds[1][3] + 1) % 5
	if a.Equal(c) {
		t.Fatal("index change undetected")
	}
}

func TestScaleAndBytes(t *testing.T) {
	a := randomTensor(t, []uint64{5, 5}, 10, 2)
	want := a.Vals[3] * 2
	a.Scale(2)
	if a.Vals[3] != want {
		t.Fatal("scale broken")
	}
	if a.Bytes() != uint64(10*(4*2+8)) {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestStringer(t *testing.T) {
	a := MustNew([]uint64{2, 3}, 0)
	if got := a.String(); got != "COO[2x3] nnz=0" {
		t.Fatalf("String = %q", got)
	}
}

// TestSortWithEnginesAgree: the seed quicksort and the radix engine must
// produce byte-identical tensors — same coordinates AND same value order at
// duplicate coordinates (both orders are (key, original position)). Dims
// include an LN boundary case: a product one step under 2^64 keeps the
// radix on the LN path with every key byte significant.
func TestSortWithEnginesAgree(t *testing.T) {
	shapes := [][]uint64{
		{17, 13, 11},
		{1 << 20, 3},
		{1 << 31, 1 << 31, 3}, // card = 3*2^62, just under 2^64: top byte significant
	}
	for si, dims := range shapes {
		for _, nnz := range []int{0, 1, 500, 20000} {
			for _, threads := range []int{1, 4} {
				q := randomTensor(t, dims, nnz, int64(70+si))
				r := q.Clone()
				if info := q.SortWith(threads, SortQuick); info.Radix {
					t.Fatalf("shape %d: SortQuick took the radix path", si)
				}
				info := r.SortWith(threads, SortRadix)
				if nnz >= 2 && !info.Radix {
					t.Fatalf("shape %d: SortRadix fell back for LN-encodable dims", si)
				}
				if !q.Equal(r) {
					t.Fatalf("shape %d nnz=%d threads=%d: engines disagree", si, nnz, threads)
				}
				checkSorted(t, r)
			}
		}
	}
}

// TestSortWithDuplicateCoordinates: duplicates are the stability stress —
// both engines must keep the original value order at equal keys.
func TestSortWithDuplicateCoordinates(t *testing.T) {
	mk := func() *Tensor {
		ten := MustNew([]uint64{3, 3}, 0)
		for i := 0; i < 4000; i++ {
			ten.Append([]uint32{uint32(i) % 3, uint32(i/7) % 3}, float64(i))
		}
		return ten
	}
	q, r := mk(), mk()
	q.SortWith(2, SortQuick)
	r.SortWith(2, SortRadix)
	if !q.Equal(r) {
		t.Fatal("engines disagree on duplicate-coordinate value order")
	}
}

// TestSortWithFallbackInfo: non-LN-encodable dims report a non-radix sort
// regardless of the requested engine.
func TestSortWithFallbackInfo(t *testing.T) {
	dims := []uint64{1 << 31, 1 << 31, 1 << 31}
	ten := randomTensor(t, dims, 300, 5)
	if info := ten.SortWith(2, SortRadix); info.Radix {
		t.Fatal("radix reported on a non-LN-encodable box")
	}
	checkSorted(t, ten)
}
