package coo

import "fmt"

// MergeRuns merges sorted runs into one sorted tensor. The streamed
// contraction's runs are disjoint and ascending (windows never split a
// free-prefix sub-tensor), so the merge degenerates to a concatenation —
// O(total) copies, no comparisons beyond the boundary check, and the
// paper's stage ⑤ stays dead. Overlapping runs (anything a future producer
// might emit) fall back to a k-way loser-select merge that sums values of
// equal coordinates.
func MergeRuns(dims []uint64, runs []*Tensor) (*Tensor, error) {
	total := 0
	live := runs[:0:0]
	for _, r := range runs {
		if r == nil || r.NNZ() == 0 {
			continue
		}
		if r.Order() != len(dims) {
			return nil, fmt.Errorf("coo: MergeRuns: run order %d, want %d", r.Order(), len(dims))
		}
		live = append(live, r)
		total += r.NNZ()
	}
	z, err := New(dims, 0)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return z, nil
	}
	if len(live) == 1 {
		// Adopt the single run's storage under the canonical dims.
		z.Inds = live[0].Inds
		z.Vals = live[0].Vals
		return z, nil
	}
	if disjointAscending(live) {
		for m := range z.Inds {
			col := make([]uint32, 0, total)
			for _, r := range live {
				col = append(col, r.Inds[m]...)
			}
			z.Inds[m] = col
		}
		vals := make([]float64, 0, total)
		for _, r := range live {
			vals = append(vals, r.Vals...)
		}
		z.Vals = vals
		return z, nil
	}
	return kwayMerge(z, live, total), nil
}

// disjointAscending reports whether each run's last coordinate precedes the
// next run's first — the concatenation fast path's precondition.
func disjointAscending(runs []*Tensor) bool {
	order := runs[0].Order()
	a := make([]uint32, order)
	b := make([]uint32, order)
	for i := 1; i < len(runs); i++ {
		runs[i-1].Index(runs[i-1].NNZ()-1, a)
		runs[i].Index(0, b)
		if !tupleLess(a, b) {
			return false
		}
	}
	return true
}

// kwayMerge is the defensive slow path: a linear loser-select over the run
// cursors (k is small — one cursor per window), summing duplicates.
func kwayMerge(z *Tensor, runs []*Tensor, total int) *Tensor {
	for m := range z.Inds {
		z.Inds[m] = make([]uint32, 0, total)
	}
	z.Vals = make([]float64, 0, total)
	cur := make([]int, len(runs))
	tup := make([]uint32, z.Order())
	for {
		best := -1
		for r, c := range cur {
			if c >= runs[r].NNZ() {
				continue
			}
			if best < 0 || runLess(runs[r], c, runs[best], cur[best]) {
				best = r
			}
		}
		if best < 0 {
			return z
		}
		runs[best].Index(cur[best], tup)
		v := runs[best].Vals[cur[best]]
		cur[best]++
		n := z.NNZ()
		if n > 0 && sameTuple(z, n-1, tup) {
			z.Vals[n-1] += v
			continue
		}
		for m := range z.Inds {
			z.Inds[m] = append(z.Inds[m], tup[m])
		}
		z.Vals = append(z.Vals, v)
	}
}

// runLess compares element i of run a with element j of run b.
func runLess(a *Tensor, i int, b *Tensor, j int) bool {
	for m := range a.Inds {
		x, y := a.Inds[m][i], b.Inds[m][j]
		if x != y {
			return x < y
		}
	}
	return false
}

// sameTuple reports whether z's element i equals the tuple.
func sameTuple(z *Tensor, i int, tup []uint32) bool {
	for m := range z.Inds {
		if z.Inds[m][i] != tup[m] {
			return false
		}
	}
	return true
}
