package coo

import "fmt"

// MergeRuns merges sorted runs into one sorted tensor. The streamed
// contraction's runs are disjoint and ascending (windows never split a
// free-prefix sub-tensor), so the merge degenerates to a concatenation —
// O(total) copies, no comparisons beyond the boundary check, and the
// paper's stage ⑤ stays dead. Overlapping runs (anything a future producer
// might emit) fall back to a k-way loser-select merge that sums values of
// equal coordinates.
func MergeRuns(dims []uint64, runs []*Tensor) (*Tensor, error) {
	total := 0
	live := runs[:0:0]
	for _, r := range runs {
		if r == nil || r.NNZ() == 0 {
			continue
		}
		if r.Order() != len(dims) {
			return nil, fmt.Errorf("coo: MergeRuns: run order %d, want %d", r.Order(), len(dims))
		}
		live = append(live, r)
		total += r.NNZ()
	}
	z, err := New(dims, 0)
	if err != nil {
		return nil, err
	}
	if len(live) == 0 {
		return z, nil
	}
	if len(live) == 1 {
		// Adopt the single run's storage under the canonical dims.
		z.Inds = live[0].Inds
		z.Vals = live[0].Vals
		return z, nil
	}
	if disjointAscending(live) {
		for m := range z.Inds {
			col := make([]uint32, 0, total)
			for _, r := range live {
				col = append(col, r.Inds[m]...)
			}
			z.Inds[m] = col
		}
		vals := make([]float64, 0, total)
		for _, r := range live {
			vals = append(vals, r.Vals...)
		}
		z.Vals = vals
		return z, nil
	}
	return kwayMerge(z, live, total), nil
}

// disjointAscending reports whether each run's last coordinate precedes the
// next run's first — the concatenation fast path's precondition.
func disjointAscending(runs []*Tensor) bool {
	order := runs[0].Order()
	a := make([]uint32, order)
	b := make([]uint32, order)
	for i := 1; i < len(runs); i++ {
		runs[i-1].Index(runs[i-1].NNZ()-1, a)
		runs[i].Index(0, b)
		if !tupleLess(a, b) {
			return false
		}
	}
	return true
}

// kwayMerge is the general path for overlapping or interleaved runs: a
// loser-select over the run cursors that advances the winning run in blocks.
// The winner can emit every element strictly below the runner-up's head in
// one bulk copy (binary search for the span end), so k pairwise-disjoint but
// interleaved runs — the sharded coordinator's per-shard outputs — merge in
// O(total + spans·(k + log n)) instead of O(total·k·order) tuple compares.
// Equal heads (cross-run duplicate coordinates) fall back to one-element
// steps that sum into the tail, preserving the summing semantics of the
// original element-wise merge.
func kwayMerge(z *Tensor, runs []*Tensor, total int) *Tensor {
	for m := range z.Inds {
		z.Inds[m] = make([]uint32, 0, total)
	}
	z.Vals = make([]float64, 0, total)
	cur := make([]int, len(runs))
	tup := make([]uint32, z.Order())
	for {
		// best = run with the smallest head, second = runner-up head.
		best, second := -1, -1
		for r, c := range cur {
			if c >= runs[r].NNZ() {
				continue
			}
			switch {
			case best < 0 || runLess(runs[r], c, runs[best], cur[best]):
				second = best
				best = r
			case second < 0 || runLess(runs[r], c, runs[second], cur[second]):
				second = r
			}
		}
		if best < 0 {
			return z
		}
		end := runs[best].NNZ()
		if second >= 0 {
			end = searchBelow(runs[best], cur[best], end, runs[second], cur[second])
		}
		if end == cur[best] {
			// best's head equals second's head: one-element step with
			// duplicate summing.
			emitOne(z, runs[best], cur[best], tup)
			cur[best]++
			continue
		}
		appendSpan(z, runs[best], cur[best], end, tup)
		cur[best] = end
	}
}

// searchBelow returns the first index in r's [lo,hi) whose tuple is not less
// than element j of run b — the end of the span r may bulk-emit while every
// other live head is >= b's head.
func searchBelow(r *Tensor, lo, hi int, b *Tensor, j int) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if runLess(r, mid, b, j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// emitOne appends element i of run r to z, summing into the tail when the
// coordinate repeats.
func emitOne(z *Tensor, r *Tensor, i int, tup []uint32) {
	r.Index(i, tup)
	v := r.Vals[i]
	if n := z.NNZ(); n > 0 && sameTuple(z, n-1, tup) {
		z.Vals[n-1] += v
		return
	}
	for m := range z.Inds {
		z.Inds[m] = append(z.Inds[m], tup[m])
	}
	z.Vals = append(z.Vals, v)
}

// appendSpan bulk-copies r's [lo,hi) onto z. The span is strictly below every
// other run's head, but it may still duplicate z's tail (a coordinate already
// emitted via the equal-heads path) or repeat coordinates internally (a
// producer that emitted duplicates within one run); either case falls back to
// element-wise emission so values keep summing exactly as before.
func appendSpan(z *Tensor, r *Tensor, lo, hi int, tup []uint32) {
	clean := true
	if n := z.NNZ(); n > 0 {
		r.Index(lo, tup)
		clean = !sameTuple(z, n-1, tup)
	}
	for i := lo + 1; clean && i < hi; i++ {
		if runSame(r, i-1, i) {
			clean = false
		}
	}
	if !clean {
		for i := lo; i < hi; i++ {
			emitOne(z, r, i, tup)
		}
		return
	}
	for m := range z.Inds {
		z.Inds[m] = append(z.Inds[m], r.Inds[m][lo:hi]...)
	}
	z.Vals = append(z.Vals, r.Vals[lo:hi]...)
}

// runSame reports whether elements i and j of run r share a coordinate.
func runSame(r *Tensor, i, j int) bool {
	for m := range r.Inds {
		if r.Inds[m][i] != r.Inds[m][j] {
			return false
		}
	}
	return true
}

// runLess compares element i of run a with element j of run b.
func runLess(a *Tensor, i int, b *Tensor, j int) bool {
	for m := range a.Inds {
		x, y := a.Inds[m][i], b.Inds[m][j]
		if x != y {
			return x < y
		}
	}
	return false
}

// sameTuple reports whether z's element i equals the tuple.
func sameTuple(z *Tensor, i int, tup []uint32) bool {
	for m := range z.Inds {
		if z.Inds[m][i] != tup[m] {
			return false
		}
	}
	return true
}
