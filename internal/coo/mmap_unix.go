//go:build unix

package coo

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy path at build time; non-unix platforms
// fall back to a heap load with identical semantics.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared (the file is never
// written through the mapping; PROT_READ makes accidental writes fault).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
