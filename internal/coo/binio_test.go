package coo

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBinRoundTrip(t *testing.T) {
	ten := randomTensor(t, []uint64{9, 8, 7, 6}, 700, 21)
	ten.Sort(1)
	var buf bytes.Buffer
	if err := ten.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ten.Equal(back) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinEmptyTensor(t *testing.T) {
	ten := MustNew([]uint64{4, 4}, 0)
	var buf bytes.Buffer
	if err := ten.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 0 || back.Dims[1] != 4 {
		t.Fatal("empty tensor mishandled")
	}
}

func TestBinCorruption(t *testing.T) {
	ten := randomTensor(t, []uint64{5, 5}, 20, 22)
	var buf bytes.Buffer
	if err := ten.WriteBin(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Bad version.
	bad = append([]byte{}, good...)
	binary.LittleEndian.PutUint32(bad[4:], 99)
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}

	// Implausible order.
	bad = append([]byte{}, good...)
	binary.LittleEndian.PutUint32(bad[8:], 1000)
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Error("implausible order accepted")
	}

	// Truncated payload.
	if _, err := ReadBin(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Error("truncated payload accepted")
	}

	// Out-of-range index: flip an index byte beyond dims.
	// Header: 4 magic + 4 version + 4 order + 16 dims + 8 nnz = 36.
	bad = append([]byte{}, good...)
	binary.LittleEndian.PutUint32(bad[36:], 5) // dim is 5 -> index 5 invalid
	if _, err := ReadBin(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range index accepted")
	}

	// Empty input.
	if _, err := ReadBin(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.bin"
	ten := randomTensor(t, []uint64{6, 6}, 30, 23)
	if err := ten.SaveBin(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBin(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ten.Equal(back) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadBin(dir + "/missing.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
}
