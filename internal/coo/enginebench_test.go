package coo

import (
	"math/rand"
	"testing"

	"sparta/internal/parallel"
	"sparta/internal/sortx"
)

func BenchmarkEngines(b *testing.B) {
	for _, n := range []int{20000, 100000} {
		rng := rand.New(rand.NewSource(3))
		base := make([]keyPos, n)
		for i := range base {
			base[i] = keyPos{Key: rng.Uint64() & (1<<34 - 1), Pos: int32(i)}
		}
		work := make([]keyPos, n)
		b.Run("quick", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				fo := parallel.NewFanout(1)
				quickSortKeys(work, fo, maxDepth(n))
				fo.Wait()
			}
		})
		b.Run("radix1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortx.Sort(work, 1<<34-1, 1)
			}
		})
		b.Run("radix4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortx.Sort(work, 1<<34-1, 4)
			}
		})
	}
}
