package coo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the byte order of the SPTN format. On the (rare)
// big-endian host the zero-copy view would read garbage, so OpenMapped
// falls back to the byte-swapping heap loader there.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Mapped is a read-only tensor backed by an mmap'd v2 SPTN file (or, on
// platforms/files where zero-copy is impossible, a heap copy with the same
// interface). The index and value arrays are views straight into the page
// cache: loading is O(1), touching a window faults in only that window's
// pages, and the kernel evicts cold pages under memory pressure — which is
// exactly the file-backed residency tier the streaming driver builds on.
//
// The tensor view returned by Tensor() must be treated as immutable: the
// pages are PROT_READ and writes through the view fault. Close unmaps; a
// finalizer covers leaked handles.
type Mapped struct {
	t      *Tensor
	h      *mapHandle // nil on the heap-fallback path
	chunks []int      // sorted-window boundaries incl. 0 and NNZ; nil when unsorted
	sorted bool
	path   string
}

// mapHandle owns one mmap region. It is what the finalizer hangs off:
// both the Mapped and every tensor view reference the handle (never the
// other way around), so there is no finalizer cycle, and the pages stay
// mapped as long as any view is reachable.
type mapHandle struct {
	data []byte
}

func (h *mapHandle) release() error {
	if h.data == nil {
		return nil
	}
	data := h.data
	h.data = nil
	return munmapFile(data)
}

// OpenMapped opens a binary tensor file as a Mapped view. v2 files on a
// little-endian unix host map zero-copy; v1 files, big-endian hosts, and
// platforms without mmap load into heap with identical behavior (ZeroCopy
// reports which happened). The file may be removed after OpenMapped
// returns — the mapping (or heap copy) stays valid.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !mmapSupported || !hostLittleEndian() || !fi.Mode().IsRegular() || fi.Size() < 32 {
		return openHeap(path)
	}
	var ver [8]byte
	if _, err := f.ReadAt(ver[:], 0); err != nil {
		return nil, &FormatError{Section: "magic", Msg: err.Error()}
	}
	if string(ver[:4]) != binMagic {
		return nil, &FormatError{Section: "magic", Msg: fmt.Sprintf("got %q, want %q", ver[:4], binMagic)}
	}
	if binary.LittleEndian.Uint32(ver[4:]) != binVersion2 {
		// v1 has no alignment guarantees; heap-load it.
		return openHeap(path)
	}
	data, err := mmapFile(f, fi.Size())
	if err != nil {
		return openHeap(path)
	}
	m, err := newMappedView(data, path)
	if err != nil {
		_ = munmapFile(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// openHeap is the portable fallback: a normal load presented through the
// Mapped interface, with window boundaries recomputed from the data.
func openHeap(path string) (*Mapped, error) {
	t, err := LoadBin(path)
	if err != nil {
		return nil, err
	}
	m := &Mapped{t: t, path: path, sorted: t.IsSorted()}
	if m.sorted {
		m.chunks = t.ChunkBoundaries(DefaultWindowNNZ)
	}
	return m, nil
}

// newMappedView parses a v2 header out of the mapped bytes and builds the
// zero-copy tensor view. The header is validated by the same code path as
// the stream reader, then each section is checked to lie inside the mapping
// before any unsafe view is taken.
func newMappedView(data []byte, path string) (*Mapped, error) {
	h, err := readHeader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	if h.version != binVersion2 {
		return nil, &FormatError{Section: "version", Msg: "mapped view requires version 2"}
	}
	hdrSize := uint64(32) + 8*uint64(h.order) + 8*h.nwin
	need := hdrSize + h.payloadBytes()
	if uint64(len(data)) < need {
		return nil, &FormatError{Section: "payload",
			Msg: fmt.Sprintf("file has %d bytes but the header declares %d", len(data), need)}
	}
	t := &Tensor{
		Dims: append([]uint64(nil), h.dims...),
		Inds: make([][]uint32, h.order),
		Vals: []float64{},
	}
	off := hdrSize
	colPad := pad8(4 * h.nnz)
	for m := range t.Inds {
		t.Inds[m] = u32View(data[off:], h.nnz)
		off += colPad
	}
	t.Vals = f64View(data[off:], h.nnz)
	// Deliberately no full index validation here: that would touch every
	// page of a file that may be 10x RAM at open time. Structural header
	// checks ran above; the streaming driver validates each window as it
	// faults it in, and Validate() runs the full check on demand.
	mp := &Mapped{t: t, path: path, sorted: h.flags&binFlagSorted != 0}
	if mp.sorted {
		mp.chunks = make([]int, 0, h.nwin+1)
		for _, s := range h.wins {
			mp.chunks = append(mp.chunks, int(s))
		}
		mp.chunks = append(mp.chunks, int(h.nnz))
		if h.nnz == 0 {
			mp.chunks = []int{0}
		}
		// Spot-check the index against the data: every stored boundary must
		// be a mode-0 change, or the windows would split sub-tensors. An
		// empty tensor's chunk list is the single element {0} — no interior
		// boundaries to check.
		if len(mp.chunks) > 2 {
			lead := t.Inds[0]
			for _, b := range mp.chunks[1 : len(mp.chunks)-1] {
				if lead[b] == lead[b-1] {
					return nil, &FormatError{Section: "window index",
						Msg: fmt.Sprintf("boundary %d is not a mode-0 index change", b)}
				}
			}
		}
	}
	mp.h = &mapHandle{data: data}
	t.backing = mp.h
	runtime.SetFinalizer(mp.h, (*mapHandle).release)
	return mp, nil
}

// u32View reinterprets the first 4n bytes of b as a []uint32 without
// copying. b's base is 8-aligned by the v2 layout.
func u32View(b []byte, n uint64) []uint32 {
	if n == 0 {
		return []uint32{}
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// f64View reinterprets the first 8n bytes of b as a []float64.
func f64View(b []byte, n uint64) []float64 {
	if n == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// Tensor returns the (possibly zero-copy) tensor view. Callers must not
// mutate it; the streamed driver never does.
func (m *Mapped) Tensor() *Tensor { return m.t }

// NNZ returns the non-zero count.
func (m *Mapped) NNZ() int { return m.t.NNZ() }

// Dims returns the mode sizes.
func (m *Mapped) Dims() []uint64 { return m.t.Dims }

// Order returns the mode count.
func (m *Mapped) Order() int { return m.t.Order() }

// Sorted reports whether the file's non-zeros are lexicographically sorted
// (and therefore streamable window by window).
func (m *Mapped) Sorted() bool { return m.sorted }

// ZeroCopy reports whether the view is an actual mmap (false on the heap
// fallback).
func (m *Mapped) ZeroCopy() bool { return m.h != nil && m.h.data != nil }

// Bytes returns the mapped (or heap) payload size.
func (m *Mapped) Bytes() uint64 {
	if m.h != nil && m.h.data != nil {
		return uint64(len(m.h.data))
	}
	return m.t.Bytes()
}

// Validate runs the full structural check (every index in range) — a
// sequential pass over the whole mapping, so callers on the out-of-core
// path prefer the driver's incremental per-window validation.
func (m *Mapped) Validate() error { return m.t.Validate() }

// Close releases the mapping. The tensor view and every window derived from
// it are invalid afterwards. Safe to call twice; not safe concurrently with
// readers.
func (m *Mapped) Close() error {
	if m.h == nil {
		return nil
	}
	h := m.h
	m.h = nil
	m.t = nil
	runtime.SetFinalizer(h, nil)
	return h.release()
}

// Stream returns a WindowStream over the mapped tensor with windows capped
// at windowNNZ non-zeros (file chunks are merged up to the cap; a single
// stored chunk larger than the cap stays whole — sub-tensor boundaries
// cannot be split). windowNNZ <= 0 streams the whole tensor as one window.
// The file must be sorted.
func (m *Mapped) Stream(windowNNZ int) (*WindowStream, error) {
	if !m.sorted {
		return nil, fmt.Errorf("coo: %s: cannot stream an unsorted tensor file", m.path)
	}
	return &WindowStream{t: m.t, bounds: groupCapped(m.chunks, windowNNZ)}, nil
}

// WindowStream iterates sorted, sub-tensor-aligned windows of a tensor.
// Each window is a zero-allocation slice view into the backing tensor —
// pages of an mmap'd source fault in as the stream advances and are
// reclaimable once the driver moves on.
type WindowStream struct {
	t      *Tensor
	bounds []int
	next   int
}

// StreamSorted builds a WindowStream over an in-memory sorted tensor with
// windows capped at windowNNZ non-zeros, cut only at mode-0 index changes.
// The caller guarantees t is sorted (it typically just sorted it).
func StreamSorted(t *Tensor, windowNNZ int) *WindowStream {
	return &WindowStream{t: t, bounds: groupCapped(t.ChunkBoundaries(1), windowNNZ)}
}

// groupCapped merges adjacent chunks [b[i], b[i+1]) into windows of at most
// limit non-zeros, keeping every output boundary one of the input
// boundaries. A single chunk above the limit stays whole. limit <= 0 yields
// one window.
func groupCapped(b []int, limit int) []int {
	if len(b) < 2 {
		return b
	}
	if limit <= 0 {
		return []int{b[0], b[len(b)-1]}
	}
	out := make([]int, 1, 8)
	out[0] = b[0]
	for i := 1; i < len(b); i++ {
		if b[i]-out[len(out)-1] > limit && b[i-1] != out[len(out)-1] {
			out = append(out, b[i-1])
		}
	}
	return append(out, b[len(b)-1])
}

// Dims returns the mode sizes of the streamed tensor.
func (s *WindowStream) Dims() []uint64 { return s.t.Dims }

// NNZ returns the total non-zero count across all windows.
func (s *WindowStream) NNZ() int { return s.t.NNZ() }

// Windows returns how many windows the stream yields.
func (s *WindowStream) Windows() int { return len(s.bounds) - 1 }

// Next returns the next window as a read-only view, or (nil, nil) when the
// stream is exhausted.
func (s *WindowStream) Next() (*Tensor, error) {
	if s.next+1 >= len(s.bounds) {
		return nil, nil
	}
	lo, hi := s.bounds[s.next], s.bounds[s.next+1]
	s.next++
	w := &Tensor{
		Dims: s.t.Dims,
		Inds: make([][]uint32, len(s.t.Inds)),
		Vals: s.t.Vals[lo:hi],
	}
	for m := range s.t.Inds {
		w.Inds[m] = s.t.Inds[m][lo:hi]
	}
	return w, nil
}

// Reset rewinds the stream to the first window.
func (s *WindowStream) Reset() error {
	s.next = 0
	return nil
}
