package coo

import (
	"cmp"
	"slices"

	"sparta/internal/lnum"
	"sparta/internal/parallel"
	"sparta/internal/sortx"
)

// SortAlgo selects the engine behind Sort/SortWith.
type SortAlgo int

const (
	// SortAuto picks the sortx radix engine whenever the index box is
	// LN-encodable and the comparison quicksort otherwise — the default
	// for every production call site.
	SortAuto SortAlgo = iota
	// SortQuick forces the depth-budgeted comparison quicksort (the seed
	// sorter), kept selectable for the sptc-bench -exp sort duel.
	SortQuick
	// SortRadix behaves like SortAuto but states the intent: the radix
	// engine, with the tuple quicksort only for non-LN-encodable boxes
	// (radix needs a single-word key).
	SortRadix
)

// SortInfo reports which engine a SortWith call used.
type SortInfo struct {
	Radix bool        // the sortx radix path ran
	Stats sortx.Stats // radix pass/partition stats (zero value otherwise)
}

// Sort orders the non-zeros lexicographically over the current mode order.
//
// When the full index box fits in a uint64 the sorter takes the LN fast
// path: encode each coordinate once, sort (key, position) pairs with the
// parallel radix engine (package sortx), then apply the permutation to
// every column — one O(order) gather per element instead of O(order) work
// per comparison. Otherwise it falls back to the in-place multi-column
// parallel quicksort from §3.5 (OpenMP tasks in the paper, a depth-budgeted
// goroutine fan-out here).
func (t *Tensor) Sort(threads int) {
	t.SortWith(threads, SortAuto)
}

// SortWith is Sort with an explicit engine selection, returning which one
// ran; the sptc-bench -exp sort duel uses it to A/B the seed quicksort
// against the radix engine on identical inputs.
func (t *Tensor) SortWith(threads int, algo SortAlgo) SortInfo {
	n := t.NNZ()
	if n < 2 {
		return SortInfo{}
	}
	if r, err := lnum.NewRadix(t.Dims); err == nil {
		return t.sortByKeys(r, threads, algo)
	}
	fo := parallel.NewFanout(threads)
	quickSortTensor(t, 0, n, fo, maxDepth(n))
	fo.Wait()
	return SortInfo{}
}

// IsSorted reports whether the non-zeros are in lexicographic order.
func (t *Tensor) IsSorted() bool {
	for i := 1; i < t.NNZ(); i++ {
		if t.Less(i, i-1) {
			return false
		}
	}
	return true
}

// keyPos pairs an LN-encoded coordinate with its original position; the
// radix engine owns the layout so the kp slice crosses into sortx without
// conversion.
type keyPos = sortx.KeyPos

func (t *Tensor) sortByKeys(r *lnum.Radix, threads int, algo SortAlgo) SortInfo {
	n := t.NNZ()
	kp := make([]keyPos, n)
	parallel.For(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			kp[i] = keyPos{Key: r.EncodeStrided(t.Inds, i), Pos: int32(i)}
		}
	})
	var info SortInfo
	if algo == SortQuick {
		fo := parallel.NewFanout(threads)
		quickSortKeys(kp, fo, maxDepth(n))
		fo.Wait()
	} else {
		// Pos starts as 0,1,2,..., so the stable radix sort lands on the
		// exact (key, pos) order the quicksort's tie-break produces.
		info = SortInfo{Radix: true, Stats: sortx.Sort(kp, r.Card()-1, threads)}
	}
	// Apply the permutation column by column (parallel across columns and
	// within each column's gather).
	for m := range t.Inds {
		src := t.Inds[m]
		dst := make([]uint32, n)
		parallel.For(threads, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = src[kp[i].Pos]
			}
		})
		t.Inds[m] = dst
	}
	srcV := t.Vals
	dstV := make([]float64, n)
	parallel.For(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dstV[i] = srcV[kp[i].Pos]
		}
	})
	t.Vals = dstV
	return info
}

// maxDepth mirrors sort.Slice's 2*ceil(log2(n)) introsort budget: beyond it
// quicksort degenerates and we switch to heapsort-free guaranteed-progress
// behavior by just using the stdlib on the remaining range.
func maxDepth(n int) int {
	d := 0
	for i := n; i > 0; i >>= 1 {
		d++
	}
	return 2 * d
}

const serialCutoff = 1 << 11 // below this, sort serially
const insertionCutoff = 16   // below this, insertion sort

// lessKP orders by key with the original position as tie-break, making the
// key-path sort stable (duplicate coordinates keep their value order).
func lessKP(a, b keyPos) bool {
	return a.Key < b.Key || (a.Key == b.Key && a.Pos < b.Pos)
}

// cmpKP is lessKP as a three-way comparison for the stdlib fallback.
func cmpKP(a, b keyPos) int {
	if c := cmp.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	return cmp.Compare(a.Pos, b.Pos)
}

func quickSortKeys(a []keyPos, fo *parallel.Fanout, depth int) {
	for len(a) > insertionCutoff {
		if depth == 0 {
			slices.SortFunc(a, cmpKP)
			return
		}
		depth--
		p := partitionKeys(a)
		left, right := a[:p], a[p+1:]
		// Recurse on the smaller side via the fan-out when it is big enough
		// to be worth a goroutine; iterate on the larger side.
		if len(left) > len(right) {
			left, right = right, left
		}
		if len(left) > serialCutoff {
			l, d := left, depth
			if fo.Spawn(func() { quickSortKeys(l, fo, d) }) {
				a = right
				continue
			}
		}
		quickSortKeys(left, fo, depth)
		a = right
	}
	insertionSortKeys(a)
}

func partitionKeys(a []keyPos) int {
	n := len(a)
	// median-of-three pivot
	mid := n / 2
	if lessKP(a[mid], a[0]) {
		a[mid], a[0] = a[0], a[mid]
	}
	if lessKP(a[n-1], a[0]) {
		a[n-1], a[0] = a[0], a[n-1]
	}
	if lessKP(a[n-1], a[mid]) {
		a[n-1], a[mid] = a[mid], a[n-1]
	}
	a[mid], a[n-2] = a[n-2], a[mid]
	pivot := a[n-2]
	i := 0
	for j := 0; j < n-2; j++ {
		if lessKP(a[j], pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[n-2] = a[n-2], a[i]
	return i
}

func insertionSortKeys(a []keyPos) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && lessKP(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// quickSortTensor sorts t[lo:hi) in place comparing full index tuples —
// the fallback for index boxes whose cardinality overflows uint64.
func quickSortTensor(t *Tensor, lo, hi int, fo *parallel.Fanout, depth int) {
	for hi-lo > insertionCutoff {
		if depth == 0 {
			sortStdlibRange(t, lo, hi)
			return
		}
		depth--
		p := partitionTensor(t, lo, hi)
		llo, lhi := lo, p
		rlo, rhi := p+1, hi
		if lhi-llo > rhi-rlo {
			llo, lhi, rlo, rhi = rlo, rhi, llo, lhi
		}
		if lhi-llo > serialCutoff {
			a, b, d := llo, lhi, depth
			if fo.Spawn(func() { quickSortTensor(t, a, b, fo, d) }) {
				lo, hi = rlo, rhi
				continue
			}
		}
		quickSortTensor(t, llo, lhi, fo, depth)
		lo, hi = rlo, rhi
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && t.Less(j, j-1); j-- {
			t.Swap(j, j-1)
		}
	}
}

func partitionTensor(t *Tensor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if t.Less(mid, lo) {
		t.Swap(mid, lo)
	}
	if t.Less(hi-1, lo) {
		t.Swap(hi-1, lo)
	}
	if t.Less(hi-1, mid) {
		t.Swap(hi-1, mid)
	}
	t.Swap(mid, hi-2)
	pivot := hi - 2
	i := lo
	for j := lo; j < hi-2; j++ {
		if t.Less(j, pivot) {
			t.Swap(i, j)
			i++
		}
	}
	t.Swap(i, hi-2)
	return i
}

// sortStdlibRange sorts t[lo:hi) with the stdlib via an indirection slice;
// only used as the introsort depth-exhaustion fallback.
func sortStdlibRange(t *Tensor, lo, hi int) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	slices.SortFunc(idx, func(a, b int) int { return t.Compare(a, b) })
	// apply permutation within the range
	order := len(t.Dims)
	tmpI := make([][]uint32, order)
	for m := range tmpI {
		tmpI[m] = make([]uint32, hi-lo)
	}
	tmpV := make([]float64, hi-lo)
	for k, src := range idx {
		for m := range t.Inds {
			tmpI[m][k] = t.Inds[m][src]
		}
		tmpV[k] = t.Vals[src]
	}
	for m := range t.Inds {
		copy(t.Inds[m][lo:hi], tmpI[m])
	}
	copy(t.Vals[lo:hi], tmpV)
}
