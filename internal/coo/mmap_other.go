//go:build !unix

package coo

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("coo: mmap not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
