package coo

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// saveV2 writes ten to a temp .sptn file and returns the path.
func saveV2(t *testing.T, ten *Tensor) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.sptn")
	if err := ten.SaveBinV2(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func sortedRandom(t *testing.T, dims []uint64, nnz int, seed int64) *Tensor {
	t.Helper()
	ten := randomTensor(t, dims, nnz, seed)
	ten.Sort(1)
	ten.Dedup()
	return ten
}

func TestOpenMappedZeroCopy(t *testing.T) {
	ten := sortedRandom(t, []uint64{30, 8, 5}, 600, 21)
	path := saveV2(t, ten)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if mmapSupported && hostLittleEndian() && !m.ZeroCopy() {
		t.Error("v2 file on a little-endian unix host should map zero-copy")
	}
	if !m.Sorted() {
		t.Error("sorted file reported unsorted")
	}
	if m.NNZ() != ten.NNZ() || m.Order() != ten.Order() {
		t.Fatalf("shape mismatch: nnz %d order %d", m.NNZ(), m.Order())
	}
	if !m.Tensor().Equal(ten) {
		t.Fatal("mapped view differs from the written tensor")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Bytes() == 0 {
		t.Error("Bytes() = 0 on a non-empty mapping")
	}
}

func TestOpenMappedSurvivesUnlink(t *testing.T) {
	ten := sortedRandom(t, []uint64{12, 7}, 200, 22)
	path := saveV2(t, ten)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// The mapping (or heap copy) must stay readable after the name is gone.
	sum := 0.0
	for _, v := range m.Tensor().Vals {
		sum += v
	}
	if !m.Tensor().Equal(ten) {
		t.Fatal("view invalid after unlink")
	}
}

func TestOpenMappedV1HeapFallback(t *testing.T) {
	ten := sortedRandom(t, []uint64{9, 6}, 120, 23)
	path := filepath.Join(t.TempDir(), "x.bin")
	if err := ten.SaveBin(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.ZeroCopy() {
		t.Error("v1 files have no alignment guarantee and must heap-load")
	}
	if !m.Sorted() {
		t.Error("fallback lost the sort property")
	}
	if !m.Tensor().Equal(ten) {
		t.Fatal("heap fallback differs from the written tensor")
	}
	// Window boundaries are recomputed from the data on the fallback path.
	ws, err := m.Stream(0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.NNZ() != ten.NNZ() {
		t.Fatalf("stream nnz %d, want %d", ws.NNZ(), ten.NNZ())
	}
}

func TestMappedClose(t *testing.T) {
	ten := sortedRandom(t, []uint64{8, 4}, 50, 24)
	m, err := OpenMapped(saveV2(t, ten))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.ZeroCopy() {
		t.Error("ZeroCopy true after Close")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMappedStreamWindows(t *testing.T) {
	// Enough non-zeros that the v2 file stores several DefaultWindowNNZ
	// chunks, so the stream really walks multiple stored windows.
	ten := sortedRandom(t, []uint64{2048, 16, 8}, 20000, 25)
	if ten.NNZ() <= DefaultWindowNNZ {
		t.Fatalf("test tensor too small to carry a multi-chunk index: %d", ten.NNZ())
	}
	m, err := OpenMapped(saveV2(t, ten))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, cap := range []int{0, 100, DefaultWindowNNZ, 1 << 24} {
		ws, err := m.Stream(cap)
		if err != nil {
			t.Fatal(err)
		}
		if cap == 0 && ws.Windows() != 1 {
			t.Fatalf("cap 0 should stream one window, got %d", ws.Windows())
		}
		if cap == 100 && ws.Windows() < 2 {
			t.Fatalf("cap 100 should yield multiple windows, got %d", ws.Windows())
		}
		got := MustNew(ten.Dims, ten.NNZ())
		idx := make([]uint32, ten.Order())
		var prevLead int64 = -1
		for {
			w, err := ws.Next()
			if err != nil {
				t.Fatal(err)
			}
			if w == nil {
				break
			}
			if w.NNZ() == 0 {
				t.Fatal("empty window emitted")
			}
			// Every window boundary must be a mode-0 index change.
			if int64(w.Inds[0][0]) <= prevLead {
				t.Fatalf("cap %d: window starts at mode-0 index %d, previous window ended at %d",
					cap, w.Inds[0][0], prevLead)
			}
			prevLead = int64(w.Inds[0][w.NNZ()-1])
			for i := 0; i < w.NNZ(); i++ {
				w.Index(i, idx)
				got.Append(idx, w.Vals[i])
			}
		}
		if !got.Equal(ten) {
			t.Fatalf("cap %d: concatenated windows differ from the tensor", cap)
		}
		// Reset rewinds to the first window.
		if err := ws.Reset(); err != nil {
			t.Fatal(err)
		}
		w, err := ws.Next()
		if err != nil || w == nil {
			t.Fatalf("Next after Reset: %v, %v", w, err)
		}
		if w.Inds[0][0] != ten.Inds[0][0] {
			t.Fatal("Reset did not rewind to the first window")
		}
	}
}

func TestMappedUnsortedCannotStream(t *testing.T) {
	ten := MustNew([]uint64{5, 5}, 0)
	ten.Append([]uint32{4, 0}, 1)
	ten.Append([]uint32{0, 1}, 2)
	m, err := OpenMapped(saveV2(t, ten))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Sorted() {
		t.Fatal("unsorted file reported sorted")
	}
	if _, err := m.Stream(64); err == nil {
		t.Fatal("Stream on an unsorted file must error")
	}
}

// TestMappedRejectsMisalignedWindow: a stored window boundary that is not a
// mode-0 index change would let the streaming driver split a sub-tensor, so
// the open-time spot check must refuse the file.
func TestMappedRejectsMisalignedWindow(t *testing.T) {
	if !mmapSupported || !hostLittleEndian() {
		t.Skip("spot check runs only on the zero-copy path")
	}
	var buf bytes.Buffer
	buf.WriteString(binMagic)
	for _, v := range []uint32{binVersion2, 2, binFlagSorted} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, v := range []uint64{4, 2} { // nnz, nwin
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, v := range []uint64{4, 3} { // dims
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, v := range []uint64{0, 1} { // boundary 1 splits the i=0 group
		binary.Write(&buf, binary.LittleEndian, v)
	}
	for _, col := range [][]uint32{{0, 0, 1, 2}, {0, 1, 0, 0}} {
		binary.Write(&buf, binary.LittleEndian, col)
	}
	binary.Write(&buf, binary.LittleEndian, []float64{1, 2, 3, 4})
	path := filepath.Join(t.TempDir(), "bad.sptn")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenMapped(path)
	if err == nil || !strings.Contains(err.Error(), "window index") {
		t.Fatalf("want a window-index error, got %v", err)
	}
}

func TestGroupCapped(t *testing.T) {
	b := []int{0, 10, 25, 30, 100, 110}
	cases := []struct {
		limit int
		want  []int
	}{
		{0, []int{0, 110}},               // no cap: one window
		{1000, []int{0, 110}},            // everything fits one window
		{30, []int{0, 30, 100, 110}},     // merge up to the cap
		{1, []int{0, 10, 25, 30, 100, 110}}, // nothing merges
		{70, []int{0, 30, 100, 110}},     // the 70-wide chunk stays whole
	}
	for _, c := range cases {
		got := groupCapped(b, c.limit)
		if len(got) != len(c.want) {
			t.Errorf("limit %d: %v, want %v", c.limit, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("limit %d: %v, want %v", c.limit, got, c.want)
				break
			}
		}
	}
}

// splitAtMode0 cuts ten into runs at mode-0 boundaries so each run is a
// valid disjoint, ascending spool input.
func splitAtMode0(ten *Tensor, target int) []*Tensor {
	b := ten.ChunkBoundaries(target)
	runs := make([]*Tensor, 0, len(b)-1)
	for i := 1; i < len(b); i++ {
		lo, hi := b[i-1], b[i]
		r := &Tensor{Dims: ten.Dims, Inds: make([][]uint32, ten.Order()), Vals: ten.Vals[lo:hi]}
		for m := range ten.Inds {
			r.Inds[m] = ten.Inds[m][lo:hi]
		}
		runs = append(runs, r)
	}
	return runs
}

func TestRunSpoolRoundTrip(t *testing.T) {
	ten := sortedRandom(t, []uint64{50, 6, 4}, 2000, 26)
	runs := splitAtMode0(ten, 150)
	if len(runs) < 3 {
		t.Fatalf("want several runs, got %d", len(runs))
	}
	sp, err := NewRunSpool(t.TempDir(), ten.Dims)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if err := sp.Append(MustNew(ten.Dims, 0)); err != nil {
		t.Fatalf("empty run should be a no-op: %v", err)
	}
	for _, r := range runs {
		if err := sp.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if sp.NNZ() != ten.NNZ() || sp.Runs() != len(runs) {
		t.Fatalf("spool counts nnz=%d runs=%d, want %d/%d", sp.NNZ(), sp.Runs(), ten.NNZ(), len(runs))
	}
	m, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Sorted() {
		t.Error("materialized spool must be sorted")
	}
	if !m.Tensor().Equal(ten) {
		t.Fatal("materialized tensor differs from the spooled runs")
	}
	// The spool is consumed; a second Materialize must refuse.
	if _, err := sp.Materialize(); err == nil {
		t.Fatal("Materialize after Materialize should error")
	}
}

func TestRunSpoolEmpty(t *testing.T) {
	sp, err := NewRunSpool(t.TempDir(), []uint64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.NNZ() != 0 {
		t.Fatalf("empty spool materialized %d non-zeros", m.NNZ())
	}
}

func TestRunSpoolRejectsDisorder(t *testing.T) {
	dims := []uint64{8, 8}
	sp, err := NewRunSpool(t.TempDir(), dims)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	a := MustNew(dims, 0)
	a.Append([]uint32{3, 0}, 1)
	if err := sp.Append(a); err != nil {
		t.Fatal(err)
	}
	// Overlapping (equal boundary coordinate) run must be refused.
	b := MustNew(dims, 0)
	b.Append([]uint32{3, 0}, 2)
	if err := sp.Append(b); err == nil {
		t.Fatal("overlapping run accepted")
	}
	// Wrong order too.
	c := MustNew([]uint64{8, 8, 8}, 0)
	c.Append([]uint32{4, 0, 0}, 3)
	if err := sp.Append(c); err == nil {
		t.Fatal("wrong-order run accepted")
	}
}

func TestMergeRunsConcat(t *testing.T) {
	ten := sortedRandom(t, []uint64{40, 5}, 900, 27)
	runs := splitAtMode0(ten, 100)
	// nil and empty runs are skipped.
	withJunk := append([]*Tensor{nil, MustNew(ten.Dims, 0)}, runs...)
	z, err := MergeRuns(ten.Dims, withJunk)
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(ten) {
		t.Fatal("disjoint-run merge differs from the source tensor")
	}
	// Single live run: storage adopted as-is.
	z1, err := MergeRuns(ten.Dims, []*Tensor{nil, ten})
	if err != nil {
		t.Fatal(err)
	}
	if !z1.Equal(ten) {
		t.Fatal("single-run merge mismatch")
	}
	// No runs at all: a valid empty tensor.
	z0, err := MergeRuns(ten.Dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if z0.NNZ() != 0 {
		t.Fatalf("empty merge produced %d non-zeros", z0.NNZ())
	}
	// Order mismatch is an error.
	if _, err := MergeRuns([]uint64{4}, []*Tensor{ten}); err == nil {
		t.Fatal("order mismatch accepted")
	}
}

func TestMergeRunsOverlapping(t *testing.T) {
	dims := []uint64{4, 4}
	mk := func(coords [][2]uint32, vals []float64) *Tensor {
		r := MustNew(dims, len(vals))
		for i, c := range coords {
			r.Append([]uint32{c[0], c[1]}, vals[i])
		}
		return r
	}
	a := mk([][2]uint32{{0, 0}, {1, 0}, {3, 3}}, []float64{1, 2, 5})
	b := mk([][2]uint32{{0, 0}, {2, 1}}, []float64{3, 4})
	z, err := MergeRuns(dims, []*Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := mk([][2]uint32{{0, 0}, {1, 0}, {2, 1}, {3, 3}}, []float64{4, 2, 4, 5})
	if !z.Equal(want) {
		t.Fatalf("overlapping merge = %v, want %v", z, want)
	}
}
