package coo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// v2Bytes serializes t in the v2 layout.
func v2Bytes(t *testing.T, ten *Tensor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ten.WriteBinV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinV2RoundTrip(t *testing.T) {
	ten := randomTensor(t, []uint64{9, 5, 7}, 400, 11)
	ten.Sort(1)
	ten.Dedup()
	got, err := ReadBin(bytes.NewReader(v2Bytes(t, ten)))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ten) {
		t.Fatal("v2 round trip mismatch")
	}
	if !got.IsSorted() {
		t.Fatal("round-tripped tensor lost sort order")
	}
}

func TestBinV2UnsortedRoundTrip(t *testing.T) {
	// Unsorted tensors are valid v2 files; they just carry no window index.
	ten := MustNew([]uint64{4, 4}, 0)
	ten.Append([]uint32{3, 1}, 1)
	ten.Append([]uint32{0, 2}, 2)
	ten.Append([]uint32{2, 0}, 3)
	b := v2Bytes(t, ten)
	if flags := binary.LittleEndian.Uint32(b[12:]); flags&binFlagSorted != 0 {
		t.Fatalf("unsorted tensor wrote sorted flag %#x", flags)
	}
	if nwin := binary.LittleEndian.Uint64(b[24:]); nwin != 0 {
		t.Fatalf("unsorted tensor wrote %d windows", nwin)
	}
	got, err := ReadBin(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ten) {
		t.Fatal("unsorted v2 round trip mismatch")
	}
}

func TestBinV2EmptyTensor(t *testing.T) {
	ten := MustNew([]uint64{6, 3, 2}, 0)
	for name, b := range map[string][]byte{
		"v1": func() []byte {
			var buf bytes.Buffer
			if err := ten.WriteBin(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}(),
		"v2": v2Bytes(t, ten),
	} {
		got, err := ReadBin(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NNZ() != 0 || !got.Equal(ten) {
			t.Fatalf("%s: empty round trip mismatch", name)
		}
	}
}

// TestBinV2Truncation: a v2 file cut short at any byte must produce an
// error, never a panic or a silently short tensor. Covers every section
// boundary (header, window index, each index column, padding, values) by
// covering every prefix length.
func TestBinV2Truncation(t *testing.T) {
	ten := randomTensor(t, []uint64{7, 5, 3}, 60, 12)
	ten.Sort(1)
	ten.Dedup()
	full := v2Bytes(t, ten)
	for n := 0; n < len(full); n++ {
		if _, err := ReadBin(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes did not error", n, len(full))
		}
	}
	// LoadBin additionally knows the file size and must reject the header
	// before reading any payload.
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.sptn")
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBin(path); err == nil {
		t.Fatal("LoadBin accepted a half file")
	}
}

// corruptHeader builds a valid v2 byte image and lets the caller patch the
// header before parsing.
func corruptHeader(t *testing.T, patch func(b []byte)) error {
	t.Helper()
	ten := randomTensor(t, []uint64{5, 4}, 30, 13)
	ten.Sort(1)
	ten.Dedup()
	b := v2Bytes(t, ten)
	patch(b)
	_, err := ReadBin(bytes.NewReader(b))
	return err
}

func TestBinV2HostileHeaders(t *testing.T) {
	cases := map[string]func(b []byte){
		"bad magic":     func(b []byte) { b[0] = 'X' },
		"bad version":   func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 9) },
		"zero order":    func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) },
		"huge order":    func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 200) },
		"unknown flags": func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0xff) },
		"absurd nnz":    func(b []byte) { binary.LittleEndian.PutUint64(b[16:], maxBinNNZ+1) },
		"nwin over nnz": func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1<<40) },
		"zero dim":      func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 0) },
		"window index on unsorted": func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], 0) // clear sorted flag, keep nwin
		},
		"sorted flag on unsorted data": func(b []byte) {
			// Swap the first two distinct coordinates' mode-0 indices; the
			// data no longer matches the declared order. (Order 2, nnz>=2:
			// mode-0 column starts at 32 + 2*8 + nwin*8.)
			nwin := binary.LittleEndian.Uint64(b[24:])
			off := 32 + 2*8 + int(nwin)*8
			i0 := binary.LittleEndian.Uint32(b[off:])
			last := off + 4*(int(binary.LittleEndian.Uint64(b[16:]))-1)
			binary.LittleEndian.PutUint32(b[off:], binary.LittleEndian.Uint32(b[last:]))
			binary.LittleEndian.PutUint32(b[last:], i0)
		},
	}
	for name, patch := range cases {
		err := corruptHeader(t, patch)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *FormatError", name, err)
		}
	}
}

// TestBinV2HostileNNZNoOOM: a tiny file claiming a plausible-but-huge nnz
// must be rejected by the size check (LoadBin) or run out of input after
// reading only the bytes present (ReadBin) — never allocate the claimed
// payload up front.
func TestBinV2HostileNNZNoOOM(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binMagic)
	for _, v := range []uint32{binVersion2, 1, 0} {
		binary.Write(&buf, binary.LittleEndian, v)
	}
	// 2^30 non-zeros declared, ~12 GiB of payload, in a 48-byte file.
	binary.Write(&buf, binary.LittleEndian, uint64(1<<30))
	binary.Write(&buf, binary.LittleEndian, uint64(0))
	binary.Write(&buf, binary.LittleEndian, uint64(100))
	b := buf.Bytes()

	if _, err := ReadBin(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadBin accepted a hostile nnz claim")
	}
	path := filepath.Join(t.TempDir(), "hostile.sptn")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBin(path)
	if err == nil {
		t.Fatal("LoadBin accepted a hostile nnz claim")
	}
	var fe *FormatError
	if !errors.As(err, &fe) || fe.Section != "header" {
		t.Fatalf("want the header size check to reject, got %v", err)
	}
}

// TestBinV1V2Oracle: the two formats are different encodings of the same
// tensor — writing either and reading back must agree exactly, and a v1
// file converted through the heap is bit-identical to a direct v2 write.
func TestBinV1V2Oracle(t *testing.T) {
	ten := randomTensor(t, []uint64{11, 6, 4}, 300, 14)
	ten.Sort(1)
	ten.Dedup()
	dir := t.TempDir()
	v1 := filepath.Join(dir, "x.bin")
	v2 := filepath.Join(dir, "x.sptn")
	if err := ten.SaveBin(v1); err != nil {
		t.Fatal(err)
	}
	fromV1, err := LoadBin(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromV1.SaveBinV2(v2); err != nil {
		t.Fatal(err)
	}
	fromV2, err := LoadBin(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !fromV1.Equal(ten) || !fromV2.Equal(ten) {
		t.Fatal("v1 -> v2 conversion changed the tensor")
	}
	direct := v2Bytes(t, ten)
	onDisk, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, onDisk) {
		t.Fatal("converted v2 file differs from a direct v2 write")
	}
}

func TestChunkBoundaries(t *testing.T) {
	empty := MustNew([]uint64{3}, 0)
	if b := empty.ChunkBoundaries(4); len(b) != 1 || b[0] != 0 {
		t.Fatalf("empty tensor boundaries = %v", b)
	}

	ten := randomTensor(t, []uint64{40, 6}, 500, 15)
	ten.Sort(1)
	ten.Dedup()
	n := ten.NNZ()
	if b := ten.ChunkBoundaries(0); len(b) != 2 || b[0] != 0 || b[1] != n {
		t.Fatalf("target<1 should yield one window, got %v", b)
	}
	for _, target := range []int{1, 7, 64, n, 10 * n} {
		b := ten.ChunkBoundaries(target)
		if b[0] != 0 || b[len(b)-1] != n {
			t.Fatalf("target %d: boundaries %v do not cover [0,%d]", target, b, n)
		}
		for i := 1; i < len(b)-1; i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("target %d: boundaries not ascending: %v", target, b)
			}
			if ten.Inds[0][b[i]] == ten.Inds[0][b[i]-1] {
				t.Fatalf("target %d: cut %d splits a mode-0 group", target, b[i])
			}
			if b[i]-b[i-1] < target {
				t.Fatalf("target %d: window [%d,%d) below target", target, b[i-1], b[i])
			}
		}
	}
}
