package coo

import "fmt"

// SubPtr computes ptrF from the paper (Table 1): boundaries of the mode-F
// sub-tensors of a *sorted* tensor whose first `freeModes` mode indices are
// equal. ptr has len NF+1 with sub-tensor f spanning non-zeros
// [ptr[f], ptr[f+1]). With freeModes == 0 the whole tensor is one sub-tensor.
//
// The computation stages parallelize over these sub-tensors (Line 5 of
// Algorithm 2), so each accumulates to a disjoint slice of the output.
func (t *Tensor) SubPtr(freeModes int) ([]int, error) {
	if freeModes < 0 || freeModes > len(t.Dims) {
		return nil, fmt.Errorf("coo: SubPtr freeModes %d out of range (order %d)", freeModes, len(t.Dims))
	}
	n := t.NNZ()
	if n == 0 {
		return []int{0}, nil
	}
	ptr := make([]int, 1, 16)
	for i := 1; i < n; i++ {
		for m := 0; m < freeModes; m++ {
			if t.Inds[m][i] != t.Inds[m][i-1] {
				ptr = append(ptr, i)
				break
			}
		}
	}
	ptr = append(ptr, n)
	return ptr, nil
}

// MaxSubNNZ returns nnz_Fmax from Eq. 6: the largest sub-tensor size under
// the given grouping pointers.
func MaxSubNNZ(ptr []int) int {
	max := 0
	for f := 0; f+1 < len(ptr); f++ {
		if s := ptr[f+1] - ptr[f]; s > max {
			max = s
		}
	}
	return max
}
