package coo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary tensor formats (the artifact's workflow converts .tns to a binary
// format via SPLATT for fast loading; these are our equivalents).
//
// Version 1 (heap-load only):
//
//	magic   "SPTN"            4 bytes
//	version uint32            1
//	order   uint32
//	dims    order × uint64
//	nnz     uint64
//	inds    order × nnz × uint32   (mode-major, matching Tensor.Inds)
//	vals    nnz × float64
//
// Version 2 is the mmap-ready layout: every section starts on an 8-byte
// boundary so a mapped file can be viewed in place as []uint32/[]uint64/
// []float64 slices without copying, and a sorted-window chunk index lets
// the out-of-core driver walk the tensor window by window. Each window
// start is a mode-0 index change of the sorted tensor — a free-prefix
// sub-tensor boundary for any contraction that keeps at least one leading
// free mode, which is what makes per-window outputs disjoint and ordered.
//
//	off 0   magic   "SPTN"
//	off 4   version uint32    2
//	off 8   order   uint32
//	off 12  flags   uint32    bit 0: sorted lexicographically over the stored mode order
//	off 16  nnz     uint64
//	off 24  nwin    uint64    sorted-window count (0 when unsorted or empty)
//	off 32  dims    order × uint64
//	...     wins    nwin × uint64   window start offsets; window w spans
//	                                [wins[w], wins[w+1]) with an implicit
//	                                final bound of nnz; wins[0] == 0
//	...     inds    per mode: nnz × uint32, zero-padded to an 8-byte multiple
//	...     vals    nnz × float64
//
// All integers are little-endian.

const (
	binMagic    = "SPTN"
	binVersion  = 1
	binVersion2 = 2

	// binFlagSorted marks a v2 file whose non-zeros are in lexicographic
	// order; only such files carry a window index.
	binFlagSorted = 1

	// maxBinNNZ refuses absurd allocations from corrupt headers.
	maxBinNNZ = 1 << 33

	// maxBinWindows bounds the v2 window index; windows partition the
	// non-zeros, so there can never be more windows than non-zeros.
	maxBinWindows = maxBinNNZ
)

// DefaultWindowNNZ is the target non-zero count of one sorted window in the
// v2 chunk index. Windows are merged upward from this by the streaming
// driver, so the stored granularity only needs to be fine enough to respect
// any DRAM budget worth streaming under.
const DefaultWindowNNZ = 1 << 13

// FormatError is the typed error every binary-format validation failure
// returns: corrupt or hostile headers produce one of these, never a panic
// or an unbounded allocation.
type FormatError struct {
	Section string // which part of the file failed ("magic", "header", "mode 2 indices", ...)
	Msg     string
}

func (e *FormatError) Error() string {
	return "coo: bad binary tensor (" + e.Section + "): " + e.Msg
}

// pad8 rounds n up to a multiple of 8.
func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// ChunkBoundaries cuts a sorted tensor into windows of at least target
// non-zeros (the last may be smaller), with every cut at a position where
// the mode-0 index changes. The result includes both 0 and NNZ(), so
// window w spans [b[w], b[w+1]). target < 1 yields a single window.
//
// Cutting only at mode-0 changes is the streaming driver's correctness
// anchor: a mode-0 change is a free-prefix sub-tensor boundary for every
// contraction with >= 1 free X mode, so no window ever splits a sub-tensor
// and per-window outputs are disjoint, ascending runs.
func (t *Tensor) ChunkBoundaries(target int) []int {
	n := t.NNZ()
	if n == 0 {
		return []int{0}
	}
	if target < 1 {
		target = n
	}
	b := make([]int, 1, n/target+2)
	b[0] = 0
	lead := t.Inds[0]
	for i := 1; i < n; i++ {
		if lead[i] != lead[i-1] && i-b[len(b)-1] >= target {
			b = append(b, i)
		}
	}
	return append(b, n)
}

// WriteBin writes the tensor in the v1 binary format.
func (t *Tensor) WriteBin(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := []interface{}{
		uint32(binVersion),
		uint32(t.Order()),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return err
	}
	for m := range t.Inds {
		if err := binary.Write(bw, binary.LittleEndian, t.Inds[m]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinV2 writes the tensor in the mmap-ready v2 binary format. When the
// tensor is sorted the file carries the sorted flag and a window index at
// DefaultWindowNNZ granularity; unsorted tensors are still valid v2 files
// (zero-copy loadable) but cannot be streamed window by window.
func (t *Tensor) WriteBinV2(w io.Writer) error {
	n := uint64(t.NNZ())
	sorted := t.IsSorted()
	var starts []int
	if sorted && n > 0 {
		b := t.ChunkBoundaries(DefaultWindowNNZ)
		starts = b[:len(b)-1]
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var flags uint32
	if sorted {
		flags |= binFlagSorted
	}
	for _, v := range []uint32{binVersion2, uint32(t.Order()), flags} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range []uint64{n, uint64(len(starts))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Dims); err != nil {
		return err
	}
	for _, s := range starts {
		if err := binary.Write(bw, binary.LittleEndian, uint64(s)); err != nil {
			return err
		}
	}
	var zero8 [8]byte
	pad := pad8(4*n) - 4*n
	for m := range t.Inds {
		if err := binary.Write(bw, binary.LittleEndian, t.Inds[m]); err != nil {
			return err
		}
		if pad > 0 {
			if _, err := bw.Write(zero8[:pad]); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// binHeader is the parsed, validated header of either binary version.
type binHeader struct {
	version uint32
	order   uint32
	flags   uint32
	nnz     uint64
	nwin    uint64
	dims    []uint64
	wins    []uint64
}

// payloadBytes returns the byte size of everything after the dims/window
// sections (index columns + padding + values). Overflow-safe under the
// maxBinNNZ/order<=64 bounds already enforced.
func (h *binHeader) payloadBytes() uint64 {
	per := 4 * h.nnz
	if h.version >= binVersion2 {
		per = pad8(per)
	}
	return uint64(h.order)*per + 8*h.nnz
}

// readHeader parses and validates a binary header from br. limit is the
// total file size when known (LoadBin), or negative for plain readers; a
// known size lets hostile nnz/order claims be rejected before any
// payload-sized work happens.
func readHeader(br io.Reader, limit int64) (*binHeader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, &FormatError{Section: "magic", Msg: err.Error()}
	}
	if string(magic[:]) != binMagic {
		return nil, &FormatError{Section: "magic", Msg: fmt.Sprintf("got %q, want %q", magic[:], binMagic)}
	}
	h := &binHeader{}
	if err := readU32(br, &h.version, "version"); err != nil {
		return nil, err
	}
	if h.version != binVersion && h.version != binVersion2 {
		return nil, &FormatError{Section: "version", Msg: fmt.Sprintf("unsupported version %d", h.version)}
	}
	if err := readU32(br, &h.order, "order"); err != nil {
		return nil, err
	}
	if h.order == 0 || h.order > 64 {
		return nil, &FormatError{Section: "order", Msg: fmt.Sprintf("implausible order %d", h.order)}
	}
	if h.version == binVersion2 {
		if err := readU32(br, &h.flags, "flags"); err != nil {
			return nil, err
		}
		if h.flags&^uint32(binFlagSorted) != 0 {
			return nil, &FormatError{Section: "flags", Msg: fmt.Sprintf("unknown flag bits %#x", h.flags)}
		}
		if err := readU64(br, &h.nnz, "nnz"); err != nil {
			return nil, err
		}
		if err := readU64(br, &h.nwin, "nwin"); err != nil {
			return nil, err
		}
		if h.nnz > maxBinNNZ {
			return nil, &FormatError{Section: "nnz", Msg: fmt.Sprintf("implausible nnz %d", h.nnz)}
		}
		if h.nwin > maxBinWindows || h.nwin > h.nnz {
			return nil, &FormatError{Section: "nwin", Msg: fmt.Sprintf("window count %d exceeds nnz %d", h.nwin, h.nnz)}
		}
		if h.nwin > 0 && h.flags&binFlagSorted == 0 {
			return nil, &FormatError{Section: "nwin", Msg: "window index on an unsorted tensor"}
		}
	}
	var err error
	if h.dims, err = readU64s(br, uint64(h.order), "dims"); err != nil {
		return nil, err
	}
	for m, d := range h.dims {
		if d == 0 || d > 1<<32 {
			return nil, &FormatError{Section: "dims", Msg: fmt.Sprintf("mode %d has implausible size %d", m, d)}
		}
	}
	if h.version == binVersion {
		if err := readU64(br, &h.nnz, "nnz"); err != nil {
			return nil, err
		}
		if h.nnz > maxBinNNZ {
			return nil, &FormatError{Section: "nnz", Msg: fmt.Sprintf("implausible nnz %d", h.nnz)}
		}
	} else {
		if h.wins, err = readU64s(br, h.nwin, "window index"); err != nil {
			return nil, err
		}
		for w, s := range h.wins {
			if w == 0 && s != 0 {
				return nil, &FormatError{Section: "window index", Msg: fmt.Sprintf("first window starts at %d, want 0", s)}
			}
			if w > 0 && s <= h.wins[w-1] {
				return nil, &FormatError{Section: "window index", Msg: fmt.Sprintf("window %d start %d not ascending", w, s)}
			}
			if s >= h.nnz {
				return nil, &FormatError{Section: "window index", Msg: fmt.Sprintf("window %d starts at %d, past nnz %d", w, s, h.nnz)}
			}
		}
	}
	// With the true file size in hand, reject headers whose declared payload
	// cannot possibly be present — this is what keeps a 100-byte hostile file
	// claiming 2^33 non-zeros from allocating anything nnz-sized.
	if limit >= 0 {
		if p := h.payloadBytes(); p > uint64(limit) {
			return nil, &FormatError{Section: "header",
				Msg: fmt.Sprintf("declares %d payload bytes but the file has at most %d", p, limit)}
		}
	}
	return h, nil
}

// ReadBin parses either binary format, validating the header and every
// index. Corrupt input yields a *FormatError (possibly wrapped); allocation
// is bounded by the bytes actually present in r, not by header claims.
func ReadBin(r io.Reader) (*Tensor, error) {
	return readBin(r, -1)
}

func readBin(r io.Reader, limit int64) (*Tensor, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readHeader(br, limit)
	if err != nil {
		return nil, err
	}
	t, err := New(h.dims, 0)
	if err != nil {
		return nil, err
	}
	pad := int(pad8(4*h.nnz) - 4*h.nnz)
	if h.version == binVersion {
		pad = 0
	}
	var padBuf [8]byte
	for m := 0; m < int(h.order); m++ {
		section := fmt.Sprintf("mode %d indices", m)
		col, err := readU32s(br, h.nnz, section)
		if err != nil {
			return nil, err
		}
		if pad > 0 {
			if _, err := io.ReadFull(br, padBuf[:pad]); err != nil {
				return nil, &FormatError{Section: section, Msg: "truncated padding: " + err.Error()}
			}
		}
		t.Inds[m] = col
	}
	if t.Vals, err = readF64s(br, h.nnz, "values"); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if h.flags&binFlagSorted != 0 && !t.IsSorted() {
		return nil, &FormatError{Section: "flags", Msg: "file claims sorted order but the non-zeros are not sorted"}
	}
	return t, nil
}

// LoadBin reads a binary tensor file (either version). The file's true size
// bounds every header-declared allocation.
func LoadBin(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	limit := int64(-1)
	if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
		limit = fi.Size()
	}
	t, err := readBin(f, limit)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// SaveBin writes a v1 binary tensor file.
func (t *Tensor) SaveBin(path string) error {
	return t.saveWith(path, (*Tensor).WriteBin)
}

// SaveBinV2 writes a v2 (mmap-ready) binary tensor file.
func (t *Tensor) SaveBinV2(path string) error {
	return t.saveWith(path, (*Tensor).WriteBinV2)
}

func (t *Tensor) saveWith(path string, write func(*Tensor, io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(t, f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// The incremental section readers below grow their result as bytes actually
// arrive instead of pre-allocating the header-declared size, so a truncated
// or hostile stream errors out after reading only what exists. readColStep
// is entries per ReadFull — 256 KiB of scratch, reused across iterations.
const readColStep = 1 << 15

func readU32(br io.Reader, v *uint32, section string) error {
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return &FormatError{Section: section, Msg: err.Error()}
	}
	*v = binary.LittleEndian.Uint32(b[:])
	return nil
}

func readU64(br io.Reader, v *uint64, section string) error {
	var b [8]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return &FormatError{Section: section, Msg: err.Error()}
	}
	*v = binary.LittleEndian.Uint64(b[:])
	return nil
}

func readU32s(br io.Reader, n uint64, section string) ([]uint32, error) {
	out := make([]uint32, 0, min(n, readColStep))
	buf := make([]byte, 4*min(n, readColStep))
	var read uint64
	for read < n {
		k := min(n-read, readColStep)
		b := buf[:4*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, &FormatError{Section: section,
				Msg: fmt.Sprintf("truncated after %d of %d entries: %v", read, n, err)}
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		read += k
	}
	return out, nil
}

func readU64s(br io.Reader, n uint64, section string) ([]uint64, error) {
	out := make([]uint64, 0, min(n, readColStep))
	buf := make([]byte, 8*min(n, readColStep))
	var read uint64
	for read < n {
		k := min(n-read, readColStep)
		b := buf[:8*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, &FormatError{Section: section,
				Msg: fmt.Sprintf("truncated after %d of %d entries: %v", read, n, err)}
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint64(b[8*i:]))
		}
		read += k
	}
	return out, nil
}

func readF64s(br io.Reader, n uint64, section string) ([]float64, error) {
	out := make([]float64, 0, min(n, readColStep))
	buf := make([]byte, 8*min(n, readColStep))
	var read uint64
	for read < n {
		k := min(n-read, readColStep)
		b := buf[:8*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, &FormatError{Section: section,
				Msg: fmt.Sprintf("truncated after %d of %d entries: %v", read, n, err)}
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
		read += k
	}
	return out, nil
}
