package coo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary tensor format (the artifact's workflow converts .tns to a binary
// format via SPLATT for fast loading; this is our equivalent):
//
//	magic   "SPTN"            4 bytes
//	version uint32            currently 1
//	order   uint32
//	dims    order × uint64
//	nnz     uint64
//	inds    order × nnz × uint32   (mode-major, matching Tensor.Inds)
//	vals    nnz × float64
//
// All integers are little-endian.

const (
	binMagic   = "SPTN"
	binVersion = 1
)

// WriteBin writes the tensor in the binary format.
func (t *Tensor) WriteBin(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := []interface{}{
		uint32(binVersion),
		uint32(t.Order()),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return err
	}
	for m := range t.Inds {
		if err := binary.Write(bw, binary.LittleEndian, t.Inds[m]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBin parses the binary format, validating the header and every index.
func ReadBin(r io.Reader) (*Tensor, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("coo: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("coo: bad magic %q", magic)
	}
	var version, order uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binVersion {
		return nil, fmt.Errorf("coo: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &order); err != nil {
		return nil, err
	}
	if order == 0 || order > 64 {
		return nil, fmt.Errorf("coo: implausible order %d", order)
	}
	dims := make([]uint64, order)
	if err := binary.Read(br, binary.LittleEndian, dims); err != nil {
		return nil, err
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	const maxNNZ = 1 << 33 // refuse absurd allocations from corrupt headers
	if nnz > maxNNZ {
		return nil, fmt.Errorf("coo: implausible nnz %d", nnz)
	}
	t, err := New(dims, int(nnz))
	if err != nil {
		return nil, err
	}
	for m := 0; m < int(order); m++ {
		col := make([]uint32, nnz)
		if err := binary.Read(br, binary.LittleEndian, col); err != nil {
			return nil, fmt.Errorf("coo: mode %d indices: %w", m, err)
		}
		t.Inds[m] = col
	}
	t.Vals = make([]float64, nnz)
	if err := binary.Read(br, binary.LittleEndian, t.Vals); err != nil {
		return nil, fmt.Errorf("coo: values: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadBin reads a binary tensor file.
func LoadBin(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := ReadBin(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// SaveBin writes a binary tensor file.
func (t *Tensor) SaveBin(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteBin(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
