// Package coo implements the coordinate-format sparse tensor that both SpTC
// algorithms in the paper operate on (§2.1): every non-zero is a tuple of
// mode indices stored in a two-level, mode-major index array plus a value
// array. Mode-major storage makes mode permutation a pointer swap — the
// property the paper relies on for cheap input processing (§3.1, footnote 2).
package coo

import (
	"errors"
	"fmt"
	"math"

	"sparta/internal/lnum"
)

// Tensor is a sparse tensor in COO format.
//
// Inds[m][i] is the mode-m index of the i-th non-zero; Vals[i] its value.
// All index slices have identical length. Dims[m] is the size of mode m.
// A Tensor with zero non-zeros is valid.
type Tensor struct {
	Dims []uint64
	Inds [][]uint32
	Vals []float64

	// backing pins the storage owner of a zero-copy view (the mmap handle
	// of a Mapped tensor) so its finalizer cannot unmap pages this tensor
	// still references. Nil for ordinary heap tensors; Clone never copies
	// it (clones own their storage).
	backing any
}

// New allocates an empty tensor with the given mode sizes and capacity hint.
func New(dims []uint64, capHint int) (*Tensor, error) {
	if len(dims) == 0 {
		return nil, errors.New("coo: tensor must have at least one mode")
	}
	for m, d := range dims {
		if d == 0 {
			return nil, fmt.Errorf("coo: mode %d has size 0", m)
		}
		if d > math.MaxUint32+1 {
			return nil, fmt.Errorf("coo: mode %d size %d exceeds uint32 index range", m, d)
		}
	}
	t := &Tensor{Dims: append([]uint64(nil), dims...)}
	t.Inds = make([][]uint32, len(dims))
	for m := range t.Inds {
		t.Inds[m] = make([]uint32, 0, capHint)
	}
	t.Vals = make([]float64, 0, capHint)
	return t, nil
}

// MustNew is New that panics on error, for tests and generators with
// statically valid shapes.
func MustNew(dims []uint64, capHint int) *Tensor {
	t, err := New(dims, capHint)
	if err != nil {
		panic(err)
	}
	return t
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored non-zeros.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Append adds one non-zero. idx must have Order() entries in range; the
// caller is trusted in hot paths, so violations panic rather than error.
func (t *Tensor) Append(idx []uint32, v float64) {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("coo: Append arity %d, want %d", len(idx), len(t.Dims)))
	}
	for m, x := range idx {
		if uint64(x) >= t.Dims[m] {
			panic(fmt.Sprintf("coo: index %d out of range for mode %d (size %d)", x, m, t.Dims[m]))
		}
		t.Inds[m] = append(t.Inds[m], x)
	}
	t.Vals = append(t.Vals, v)
}

// Index gathers the full index tuple of non-zero i into dst.
func (t *Tensor) Index(i int, dst []uint32) {
	for m := range t.Inds {
		dst[m] = t.Inds[m][i]
	}
}

// Validate checks structural invariants: equal column lengths and in-range
// indices. Generators and I/O call it; algorithms assume it.
func (t *Tensor) Validate() error {
	if len(t.Dims) == 0 {
		return errors.New("coo: no modes")
	}
	if len(t.Inds) != len(t.Dims) {
		return fmt.Errorf("coo: %d index columns for %d modes", len(t.Inds), len(t.Dims))
	}
	n := len(t.Vals)
	for m, col := range t.Inds {
		if len(col) != n {
			return fmt.Errorf("coo: mode %d has %d indices, want %d", m, len(col), n)
		}
		for i, x := range col {
			if uint64(x) >= t.Dims[m] {
				return fmt.Errorf("coo: non-zero %d: index %d out of range for mode %d (size %d)", i, x, m, t.Dims[m])
			}
		}
	}
	return nil
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		Dims: append([]uint64(nil), t.Dims...),
		Inds: make([][]uint32, len(t.Inds)),
		Vals: append([]float64(nil), t.Vals...),
	}
	for m := range t.Inds {
		c.Inds[m] = append([]uint32(nil), t.Inds[m]...)
	}
	return c
}

// Permute reorders modes so that new mode m is old mode perm[m]. Only slice
// headers move; non-zero storage is untouched. perm must be a permutation of
// 0..Order()-1.
func (t *Tensor) Permute(perm []int) error {
	if len(perm) != len(t.Dims) {
		return fmt.Errorf("coo: permutation arity %d, want %d", len(perm), len(t.Dims))
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return fmt.Errorf("coo: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	nd := make([]uint64, len(perm))
	ni := make([][]uint32, len(perm))
	for m, p := range perm {
		nd[m] = t.Dims[p]
		ni[m] = t.Inds[p]
	}
	t.Dims, t.Inds = nd, ni
	return nil
}

// IsIdentityPerm reports whether perm is 0,1,2,...
func IsIdentityPerm(perm []int) bool {
	for i, p := range perm {
		if i != p {
			return false
		}
	}
	return true
}

// Radix builds the LN encoder over all modes of t.
func (t *Tensor) Radix() (*lnum.Radix, error) { return lnum.NewRadix(t.Dims) }

// RadixOf builds the LN encoder over a subset of modes of t.
func (t *Tensor) RadixOf(modes []int) (*lnum.Radix, error) {
	dims := make([]uint64, len(modes))
	for k, m := range modes {
		if m < 0 || m >= len(t.Dims) {
			return nil, fmt.Errorf("coo: mode %d out of range (order %d)", m, len(t.Dims))
		}
		dims[k] = t.Dims[m]
	}
	return lnum.NewRadix(dims)
}

// Swap exchanges non-zeros i and j across every mode column and the value
// array. Exported for the sorter; O(order).
func (t *Tensor) Swap(i, j int) {
	for m := range t.Inds {
		col := t.Inds[m]
		col[i], col[j] = col[j], col[i]
	}
	t.Vals[i], t.Vals[j] = t.Vals[j], t.Vals[i]
}

// Less lexicographically compares non-zeros i and j over the current mode
// order.
func (t *Tensor) Less(i, j int) bool {
	for m := range t.Inds {
		a, b := t.Inds[m][i], t.Inds[m][j]
		if a != b {
			return a < b
		}
	}
	return false
}

// Compare returns -1, 0, or 1 ordering non-zeros i and j lexicographically.
func (t *Tensor) Compare(i, j int) int {
	for m := range t.Inds {
		a, b := t.Inds[m][i], t.Inds[m][j]
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Bytes estimates the in-memory footprint of the tensor's payload arrays,
// used by the heterogeneous-memory planner.
func (t *Tensor) Bytes() uint64 {
	return uint64(t.NNZ()) * uint64(4*len(t.Dims)+8)
}

// Equal reports exact equality of dims, coordinates, and values (order
// sensitive). Intended for tests on sorted, deduplicated tensors.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.Dims) != len(o.Dims) || t.NNZ() != o.NNZ() {
		return false
	}
	for m := range t.Dims {
		if t.Dims[m] != o.Dims[m] {
			return false
		}
		for i := range t.Inds[m] {
			if t.Inds[m][i] != o.Inds[m][i] {
				return false
			}
		}
	}
	for i := range t.Vals {
		if t.Vals[i] != o.Vals[i] {
			return false
		}
	}
	return true
}

// Scale multiplies every value by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Vals {
		t.Vals[i] *= s
	}
}

// Dedup merges consecutive equal coordinates by summing values; the tensor
// must already be sorted. Zero-valued results are kept (the paper's
// algorithms never re-sparsify by value). Returns the number of merges.
func (t *Tensor) Dedup() int {
	n := t.NNZ()
	if n == 0 {
		return 0
	}
	w := 0
	merged := 0
	for i := 1; i < n; i++ {
		if t.Compare(w, i) == 0 {
			t.Vals[w] += t.Vals[i]
			merged++
			continue
		}
		w++
		if w != i {
			for m := range t.Inds {
				t.Inds[m][w] = t.Inds[m][i]
			}
			t.Vals[w] = t.Vals[i]
		}
	}
	w++
	for m := range t.Inds {
		t.Inds[m] = t.Inds[m][:w]
	}
	t.Vals = t.Vals[:w]
	return merged
}

// String summarizes the tensor shape, e.g. "COO[6186x24x77x32] nnz=5330".
func (t *Tensor) String() string {
	s := "COO["
	for m, d := range t.Dims {
		if m > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("%s] nnz=%d", s, t.NNZ())
}
