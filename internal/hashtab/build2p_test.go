package hashtab

import (
	"math/rand"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// TestBuild2PMatchesLocked: the two build strategies must produce
// equivalent tables (same keys, same item multisets, same stats).
func TestBuild2PMatchesLocked(t *testing.T) {
	dims := []uint64{6, 7, 8, 9}
	rng := rand.New(rand.NewSource(5))
	y := coo.MustNew(dims, 0)
	idx := make([]uint32, 4)
	for i := 0; i < 3000; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		y.Append(idx, rng.Float64())
	}
	radC := lnum.MustRadix(dims[:2])
	radF := lnum.MustRadix(dims[2:])
	for _, threads := range []int{1, 4} {
		a := BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, threads)
		b := BuildHtY2P(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, threads)
		if a.NKeys != b.NKeys || a.NItems != b.NItems || a.MaxItems != b.MaxItems {
			t.Fatalf("threads=%d: stats differ: %d/%d/%d vs %d/%d/%d", threads,
				a.NKeys, a.NItems, a.MaxItems, b.NKeys, b.NItems, b.MaxItems)
		}
		for ck := uint64(0); ck < radC.Card(); ck++ {
			ia, _ := a.Lookup(ck)
			ib, _ := b.Lookup(ck)
			if (ia == nil) != (ib == nil) {
				t.Fatalf("threads=%d key %d: presence differs", threads, ck)
			}
			if ia == nil {
				continue
			}
			sum := map[uint64]float64{}
			for _, it := range ia {
				sum[it.LNFree] += it.Val
			}
			for _, it := range ib {
				sum[it.LNFree] -= it.Val
			}
			for fk, v := range sum {
				if v < -1e-12 || v > 1e-12 {
					t.Fatalf("threads=%d key %d free %d: item mismatch %v", threads, ck, fk, v)
				}
			}
		}
	}
}

func TestBuild2PEmptyAndSkewed(t *testing.T) {
	dims := []uint64{4, 5}
	radC := lnum.MustRadix(dims[:1])
	radF := lnum.MustRadix(dims[1:])
	empty := coo.MustNew(dims, 0)
	h := BuildHtY2P(empty, []int{0}, []int{1}, radC, radF, 0, 2)
	if h.NKeys != 0 || h.NItems != 0 {
		t.Fatal("empty build broken")
	}
	// All non-zeros under one contract key (the lock-contention case the
	// two-pass build exists for).
	y := coo.MustNew(dims, 0)
	for j := uint32(0); j < 5; j++ {
		y.Append([]uint32{2, j}, float64(j))
	}
	h = BuildHtY2P(y, []int{0}, []int{1}, radC, radF, 4, 3)
	if h.NKeys != 1 || h.MaxItems != 5 {
		t.Fatalf("skewed build: keys=%d max=%d", h.NKeys, h.MaxItems)
	}
	items, _ := h.Lookup(2)
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
}
