package hashtab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// buildTestY creates a 4-order tensor and its HtY with contract modes {0,1}
// and free modes {2,3}.
func buildTestY(t *testing.T, nnz int, threads int) (*coo.Tensor, *HtY, *lnum.Radix, *lnum.Radix) {
	t.Helper()
	dims := []uint64{6, 7, 8, 9}
	rng := rand.New(rand.NewSource(42))
	y := coo.MustNew(dims, nnz)
	idx := make([]uint32, 4)
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		y.Append(idx, rng.Float64())
	}
	radC := lnum.MustRadix(dims[:2])
	radF := lnum.MustRadix(dims[2:])
	hty := BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, threads)
	return y, hty, radC, radF
}

func TestBuildHtYCompleteness(t *testing.T) {
	for _, threads := range []int{1, 4} {
		y, hty, radC, radF := buildTestY(t, 2000, threads)
		if hty.NItems != y.NNZ() {
			t.Fatalf("NItems = %d, want %d", hty.NItems, y.NNZ())
		}
		// Reference: group Y by contract key with a map.
		ref := map[uint64]map[uint64]float64{}
		for i := 0; i < y.NNZ(); i++ {
			ck := radC.EncodeStrided(y.Inds[:2], i)
			fk := radF.EncodeStrided(y.Inds[2:], i)
			if ref[ck] == nil {
				ref[ck] = map[uint64]float64{}
			}
			ref[ck][fk] += y.Vals[i]
		}
		if hty.NKeys != len(ref) {
			t.Fatalf("NKeys = %d, want %d", hty.NKeys, len(ref))
		}
		for ck, items := range ref {
			got, _ := hty.Lookup(ck)
			if got == nil {
				t.Fatalf("key %d missing", ck)
			}
			sum := map[uint64]float64{}
			for _, it := range got {
				sum[it.LNFree] += it.Val
			}
			if len(sum) != len(items) {
				t.Fatalf("key %d: %d distinct frees, want %d", ck, len(sum), len(items))
			}
			for fk, v := range items {
				d := sum[fk] - v
				if d < -1e-12 || d > 1e-12 {
					t.Fatalf("key %d free %d: %v, want %v", ck, fk, sum[fk], v)
				}
			}
		}
	}
}

func TestHtYLookupMiss(t *testing.T) {
	_, hty, radC, _ := buildTestY(t, 50, 1)
	misses := 0
	for ck := uint64(0); ck < radC.Card(); ck++ {
		if items, _ := hty.Lookup(ck); items == nil {
			misses++
		}
	}
	if misses != int(radC.Card())-hty.NKeys {
		t.Fatalf("misses = %d, want %d", misses, int(radC.Card())-hty.NKeys)
	}
}

func TestHtYMaxItems(t *testing.T) {
	y := coo.MustNew([]uint64{2, 2, 4}, 0)
	// three items under contract key (0,0), one under (1,1)
	y.Append([]uint32{0, 0, 0}, 1)
	y.Append([]uint32{0, 0, 1}, 1)
	y.Append([]uint32{0, 0, 2}, 1)
	y.Append([]uint32{1, 1, 0}, 1)
	radC := lnum.MustRadix([]uint64{2, 2})
	radF := lnum.MustRadix([]uint64{4})
	hty := BuildHtY(y, []int{0, 1}, []int{2}, radC, radF, 0, 1)
	if hty.MaxItems != 3 || hty.NKeys != 2 {
		t.Fatalf("MaxItems=%d NKeys=%d", hty.MaxItems, hty.NKeys)
	}
}

func TestHtYExplicitBuckets(t *testing.T) {
	y, _, _, _ := buildTestY(t, 100, 1)
	radC := lnum.MustRadix(y.Dims[:2])
	radF := lnum.MustRadix(y.Dims[2:])
	hty := BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 5, 1)
	if hty.NumBuckets() != 8 {
		t.Fatalf("buckets = %d, want 8 (pow2 roundup)", hty.NumBuckets())
	}
}

func TestHtYBytesVsEstimate(t *testing.T) {
	y, hty, _, _ := buildTestY(t, 5000, 2)
	est := EstimateHtYBytes(y.NNZ(), y.Order(), hty.NumBuckets())
	got := hty.Bytes()
	// The Eq.5 model and the Go layout differ in constants; they must
	// agree within a small factor.
	if got == 0 || est == 0 {
		t.Fatal("zero sizes")
	}
	ratio := float64(got) / float64(est)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("measured %d vs estimate %d (ratio %.2f)", got, est, ratio)
	}
}

func TestHtAAccumulates(t *testing.T) {
	h := NewHtA(4)
	h.Add(10, 1)
	h.Add(20, 2)
	h.Add(10, 3)
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	k, v := h.Entry(0)
	if k != 10 || v != 4 {
		t.Fatalf("entry 0 = %d %v", k, v)
	}
	if h.Hits != 1 || h.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", h.Hits, h.Misses)
	}
}

func TestHtAGrowth(t *testing.T) {
	h := NewHtA(16)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Add(uint64(i*2654435761), float64(i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d", h.Len())
	}
	// All keys still reachable after growth.
	for i := 0; i < n; i++ {
		h.Add(uint64(i*2654435761), 0)
	}
	if h.Len() != n {
		t.Fatalf("Len after re-add = %d", h.Len())
	}
	if h.Misses != n || h.Hits != n {
		t.Fatalf("hits=%d misses=%d", h.Hits, h.Misses)
	}
}

func TestHtAResetKeepsCapacity(t *testing.T) {
	h := NewHtA(4)
	for i := 0; i < 100; i++ {
		h.Add(uint64(i), 1)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Add(7, 5)
	if k, v := h.Entry(0); k != 7 || v != 5 {
		t.Fatal("stale state after reset")
	}
}

func TestHtAInsertionOrder(t *testing.T) {
	h := NewHtA(4)
	keys := []uint64{42, 7, 99, 3}
	for _, k := range keys {
		h.Add(k, 1)
	}
	for i, want := range keys {
		if k, _ := h.Entry(i); k != want {
			t.Fatalf("entry %d = %d, want %d", i, k, want)
		}
	}
}

// Property: HtA equals a map accumulation for arbitrary insert sequences.
func TestQuickHtAMatchesMap(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		h := NewHtA(2)
		ref := map[uint64]float64{}
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(40))
			v := rng.NormFloat64()
			h.Add(k, v)
			ref[k] += v
		}
		if h.Len() != len(ref) {
			return false
		}
		for i := 0; i < h.Len(); i++ {
			k, v := h.Entry(i)
			d := v - ref[k]
			if d < -1e-9 || d > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateHtAIsUpperBoundShape(t *testing.T) {
	// Eq. 6 must be monotone in each argument.
	base := EstimateHtABytes(64, 10, 10, 2)
	if EstimateHtABytes(64, 20, 10, 2) < base ||
		EstimateHtABytes(64, 10, 20, 2) < base ||
		EstimateHtABytes(64, 10, 10, 3) < base ||
		EstimateHtABytes(128, 10, 10, 2) < base {
		t.Fatal("Eq.6 estimator is not monotone")
	}
}

func TestHashKeyDispersion(t *testing.T) {
	// Sequential keys must not collide excessively in a small table.
	const buckets = 256
	counts := make([]int, buckets)
	for k := uint64(0); k < 4096; k++ {
		counts[hashKey(k)&(buckets-1)]++
	}
	for b, c := range counts {
		if c > 64 { // expected 16 per bucket
			t.Fatalf("bucket %d has %d of 4096 sequential keys", b, c)
		}
	}
}
