// Package hashtab implements the two hash tables at the heart of Sparta
// (§3.3, §3.4): HtY, the hash-table representation of the second input
// tensor keyed by the large-number (LN) encoding of its contract indices,
// and HtA, the hash-table accumulator keyed by the LN encoding of Y's free
// indices. Both use integer keys so key matching is a single comparison.
package hashtab

import (
	"sync"

	"sparta/internal/coo"
	"sparta/internal/lnum"
	"sparta/internal/parallel"
)

// YItem is one non-zero of Y under a given contract key: the LN encoding of
// its free indices plus its value. Items with the same key live in one
// dynamic array, preserving the spatial locality sorted COO would have.
type YItem struct {
	LNFree uint64
	Val    float64
}

// ytEntry is one distinct contract key and its item list.
type ytEntry struct {
	key   uint64
	items []YItem
}

// ytBucket is a separate-chaining bucket; the mutex serializes concurrent
// inserts during the parallel COO→HtY conversion (§3.5).
type ytBucket struct {
	mu      sync.Mutex
	entries []ytEntry
}

// HtY is the hash-table-represented second input tensor.
type HtY struct {
	buckets []ytBucket
	mask    uint64
	// NKeys is the number of distinct contract-index tuples.
	NKeys int
	// NItems is nnz_Y.
	NItems int
	// MaxItems is nnz_Fmax of Eq. 6: the largest item list.
	MaxItems int
}

// hashKey mixes an LN key into a bucket index; splitmix64 finalizer.
func hashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// NextPow2 returns the smallest power of two >= n (min 1). It is the single
// source of truth for every power-of-two table sizing in the repo (HtY
// buckets, HtA slots, Eq. 6 estimates in package core).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// YTable is the read side shared by the two HtY layouts: the chained HtY
// (seed kernel) and the flat open-addressed HtYFlat. Stage ② only ever
// probes, so the computation stages are layout-agnostic behind this
// interface; construction stays concrete per layout.
type YTable interface {
	// Lookup returns the item list for an LN contract key (nil on miss)
	// and the number of probes performed.
	Lookup(key uint64) ([]YItem, int)
	// NumBuckets returns the bucket/slot count of the key table.
	NumBuckets() int
	// NumKeys returns the number of distinct contract-index tuples.
	NumKeys() int
	// NumItems returns nnz_Y.
	NumItems() int
	// MaxItemLen returns nnz_Fmax of Eq. 6: the largest item list.
	MaxItemLen() int
	// Bytes reports the measured memory footprint of the table.
	Bytes() uint64
}

// BuildHtY converts Y (COO, any order) into an HtY. radC and radF encode
// Y's contract and free modes; cmodes/fmodes give their positions in Y.
// The conversion is O(nnz_Y) and parallel over the non-zeros with per-bucket
// locking — the paper's replacement for O(nnz_Y log nnz_Y) sort.
//
// buckets <= 0 picks the default: next power of two >= nnz_Y (load factor
// <= 1 over distinct keys).
func BuildHtY(y *coo.Tensor, cmodes, fmodes []int, radC, radF *lnum.Radix, buckets, threads int) *HtY {
	n := y.NNZ()
	if buckets <= 0 {
		buckets = NextPow2(n)
	} else {
		buckets = NextPow2(buckets)
	}
	h := &HtY{
		buckets: make([]ytBucket, buckets),
		mask:    uint64(buckets - 1),
		NItems:  n,
	}
	cCols := make([][]uint32, len(cmodes))
	for k, m := range cmodes {
		cCols[k] = y.Inds[m]
	}
	fCols := make([][]uint32, len(fmodes))
	for k, m := range fmodes {
		fCols[k] = y.Inds[m]
	}
	parallel.For(threads, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			key := radC.EncodeStrided(cCols, i)
			item := YItem{LNFree: radF.EncodeStrided(fCols, i), Val: y.Vals[i]}
			b := &h.buckets[hashKey(key)&h.mask]
			b.mu.Lock()
			found := false
			for e := range b.entries {
				if b.entries[e].key == key {
					b.entries[e].items = append(b.entries[e].items, item)
					found = true
					break
				}
			}
			if !found {
				b.entries = append(b.entries, ytEntry{key: key, items: []YItem{item}})
			}
			b.mu.Unlock()
		}
	})
	for bi := range h.buckets {
		for e := range h.buckets[bi].entries {
			h.NKeys++
			if l := len(h.buckets[bi].entries[e].items); l > h.MaxItems {
				h.MaxItems = l
			}
		}
	}
	return h
}

// Lookup returns the item list for an LN contract key, or nil. It also
// reports the number of entry probes performed, feeding the index-search
// access profile (Table 2: HtY is random read-only in stage 2).
func (h *HtY) Lookup(key uint64) (items []YItem, probes int) {
	b := &h.buckets[hashKey(key)&h.mask]
	for e := range b.entries {
		probes++
		if b.entries[e].key == key {
			return b.entries[e].items, probes
		}
	}
	return nil, probes
}

// NumBuckets returns the bucket count.
func (h *HtY) NumBuckets() int { return len(h.buckets) }

// NumKeys returns the number of distinct contract-index tuples (YTable).
func (h *HtY) NumKeys() int { return h.NKeys }

// NumItems returns nnz_Y (YTable).
func (h *HtY) NumItems() int { return h.NItems }

// MaxItemLen returns the largest item list (YTable).
func (h *HtY) MaxItemLen() int { return h.MaxItems }

// Bytes reports the measured memory footprint of the table: bucket headers
// plus per-entry and per-item payloads. Compare EstimateHtYBytes (Eq. 5).
func (h *HtY) Bytes() uint64 {
	// bucket header: mutex (8) + slice header (24)
	total := uint64(len(h.buckets)) * 32
	for bi := range h.buckets {
		for e := range h.buckets[bi].entries {
			total += 8 + 24 // key + items slice header
			total += uint64(cap(h.buckets[bi].entries[e].items)) * 16
		}
	}
	return total
}

// EstimateHtYBytes is Eq. 5: Size_ep*#Buckets + nnz_Y*(Size_idx*N_Y +
// Size_val + Size_ep). Computable before the build from tensor features
// alone, which is what lets the heterogeneous-memory planner place HtY
// before it exists.
func EstimateHtYBytes(nnzY, orderY, buckets int) uint64 {
	const sizeEP = 8  // entry pointer
	const sizeIdx = 8 // paper counts one index word per mode
	const sizeVal = 8
	return uint64(buckets)*sizeEP + uint64(nnzY)*(sizeIdx*uint64(orderY)+sizeVal+sizeEP)
}

// EstimateHtABytes is Eq. 6: the upper bound Size_ep*#Buckets +
// nnz_Fmax(X) * nnz_Fmax(Y) * (Size_idx*|F_Y| + Size_val + Size_ep).
func EstimateHtABytes(buckets, nnzFmaxX, nnzFmaxY, freeModesY int) uint64 {
	const sizeEP = 8
	const sizeIdx = 8
	const sizeVal = 8
	return uint64(buckets)*sizeEP +
		uint64(nnzFmaxX)*uint64(nnzFmaxY)*(sizeIdx*uint64(freeModesY)+sizeVal+sizeEP)
}
