package hashtab

import (
	"testing"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// FuzzHtYFlatLookup drives the lock-free two-pass build with arbitrary
// non-zero patterns and thread counts, then checks every possible contract
// key's Lookup against a plain map oracle built serially: same presence,
// same items, same (original Y) order, same stats. Duplicate coordinates,
// single-key skew and empty tensors all fall out of the byte decoding.
func FuzzHtYFlatLookup(f *testing.F) {
	f.Add([]byte{}, uint8(1))                                  // empty tensor
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(3))         // one key, duplicates
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 0, 15, 3, 3, 3}, uint8(4))
	f.Add([]byte{255, 255, 255, 128, 64, 32, 9, 9, 9}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, rawThreads uint8) {
		dims := []uint64{8, 8, 16}
		radC := lnum.MustRadix(dims[:2])
		radF := lnum.MustRadix(dims[2:])
		threads := int(rawThreads)%8 + 1

		y := coo.MustNew(dims, 0)
		type oracleItem struct {
			free uint64
			val  float64
		}
		oracle := map[uint64][]oracleItem{}
		idx := make([]uint32, 3)
		for i := 0; i+3 <= len(data); i += 3 {
			idx[0] = uint32(data[i]) % 8
			idx[1] = uint32(data[i+1]) % 8
			idx[2] = uint32(data[i+2]) % 16
			v := float64(i + 1)
			y.Append(idx, v)
			ck := radC.Encode(idx[:2])
			fk := radF.Encode(idx[2:])
			oracle[ck] = append(oracle[ck], oracleItem{fk, v})
		}

		h := BuildHtYFlat(y, []int{0, 1}, []int{2}, radC, radF, 0, threads)
		if h.NumKeys() != len(oracle) || h.NumItems() != y.NNZ() {
			t.Fatalf("stats: keys=%d items=%d, oracle keys=%d nnz=%d",
				h.NumKeys(), h.NumItems(), len(oracle), y.NNZ())
		}
		maxLen := 0
		for _, items := range oracle {
			if len(items) > maxLen {
				maxLen = len(items)
			}
		}
		if h.MaxItemLen() != maxLen {
			t.Fatalf("MaxItemLen = %d, oracle %d", h.MaxItemLen(), maxLen)
		}
		for ck := uint64(0); ck < radC.Card(); ck++ {
			items, probes := h.Lookup(ck)
			want := oracle[ck]
			if len(items) != len(want) {
				t.Fatalf("key %d: got %d items, oracle %d", ck, len(items), len(want))
			}
			if probes < 1 || probes > h.NumBuckets() {
				t.Fatalf("key %d: probe count %d out of range [1, %d]", ck, probes, h.NumBuckets())
			}
			// Original Y order inside each key group (deterministic build).
			for j, it := range items {
				if it.LNFree != want[j].free || it.Val != want[j].val {
					t.Fatalf("key %d item %d: got {%d %v}, oracle {%d %v}",
						ck, j, it.LNFree, it.Val, want[j].free, want[j].val)
				}
			}
		}
	})
}
