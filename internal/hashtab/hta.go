package hashtab

import "sparta/internal/obs"

// HtA is the hash-table-based sparse accumulator of §3.4. It is
// thread-private (one per worker, reused across sub-tensors), so it needs no
// locking. Keys are the LN encoding of Y's free indices, taken directly from
// HtY item lists — the paper's trick of pre-encoding FY once during input
// processing so no index conversion happens inside the computation loop.
//
// Layout: flat key/val/next arrays chained from a power-of-two bucket head
// array. Entries stay in insertion order, so flushing to Zlocal is a linear
// scan; chains are index-based (no pointers) to stay compact and
// GC-friendly.
type HtA struct {
	heads []int32 // bucket -> entry index, -1 when empty
	mask  uint64
	keys  []uint64
	vals  []float64
	next  []int32

	// Hits and Misses count Add outcomes (accumulate vs insert); their sum
	// is the number of products, the 2*nnz_X*nnz_Favg term of Eq. 4.
	Hits   uint64
	Misses uint64
	// Probes counts chain-node inspections, the random-read measure for
	// the accumulation access profile.
	Probes uint64

	// ProbeHist, when set, records the chain length walked by each Add into
	// a per-worker histogram shard (the table is thread-private, so plain
	// increments suffice). Nil means no distribution tracking.
	ProbeHist *obs.HistShard
}

// NewHtA returns an accumulator sized for about capHint distinct keys.
func NewHtA(capHint int) *HtA {
	if capHint < 16 {
		capHint = 16
	}
	nb := NextPow2(capHint)
	h := &HtA{
		heads: make([]int32, nb),
		mask:  uint64(nb - 1),
		keys:  make([]uint64, 0, capHint),
		vals:  make([]float64, 0, capHint),
		next:  make([]int32, 0, capHint),
	}
	for i := range h.heads {
		h.heads[i] = -1
	}
	return h
}

// Len returns the number of distinct keys accumulated.
func (h *HtA) Len() int { return len(h.keys) }

// Reset clears the accumulator for the next sub-tensor, keeping both entry
// capacity and the bucket array (counter state is preserved; it is
// cumulative per thread). Sparsely used tables unhook only the touched
// buckets, so a reused accumulator costs O(entries) per sub-tensor, not
// O(buckets) — with one reset per sub-tensor the difference dominates
// writeback time on sub-tensor-heavy workloads.
func (h *HtA) Reset() {
	if len(h.keys) < len(h.heads)/8 {
		for _, k := range h.keys {
			h.heads[hashKey(k)&h.mask] = -1
		}
	} else {
		for i := range h.heads {
			h.heads[i] = -1
		}
	}
	h.keys = h.keys[:0]
	h.vals = h.vals[:0]
	h.next = h.next[:0]
}

// Add accumulates v under key: Lines 12-15 of Algorithm 2. The chain walk
// here is the seed-shape hot loop; distribution tracking lives in
// addObserved so the unconfigured path pays only this one entry branch.
func (h *HtA) Add(key uint64, v float64) {
	if h.ProbeHist != nil {
		h.addObserved(key, v)
		return
	}
	b := hashKey(key) & h.mask
	for e := h.heads[b]; e >= 0; e = h.next[e] {
		h.Probes++
		if h.keys[e] == key {
			h.vals[e] += v
			h.Hits++
			return
		}
	}
	h.Misses++
	e := int32(len(h.keys))
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.next = append(h.next, h.heads[b])
	h.heads[b] = e
	if len(h.keys) > len(h.heads) {
		h.grow()
	}
}

// addObserved is Add with the chain length walked recorded into ProbeHist.
// Probes accounting is identical to the fast path (one count per node
// inspected); only the per-Add histogram observation is extra.
func (h *HtA) addObserved(key uint64, v float64) {
	b := hashKey(key) & h.mask
	var plen uint64
	for e := h.heads[b]; e >= 0; e = h.next[e] {
		plen++
		if h.keys[e] == key {
			h.Probes += plen
			h.ProbeHist.Observe(float64(plen))
			h.vals[e] += v
			h.Hits++
			return
		}
	}
	h.Probes += plen
	// An insert into an empty bucket walks zero nodes; record it as probe
	// length 1 so both kernels' histograms share a floor.
	if plen == 0 {
		plen = 1
	}
	h.ProbeHist.Observe(float64(plen))
	h.Misses++
	e := int32(len(h.keys))
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.next = append(h.next, h.heads[b])
	h.heads[b] = e
	if len(h.keys) > len(h.heads) {
		h.grow()
	}
}

// grow doubles the bucket array and rechains every entry; entry storage and
// insertion order are untouched.
func (h *HtA) grow() {
	nb := len(h.heads) * 2
	h.heads = make([]int32, nb)
	h.mask = uint64(nb - 1)
	for i := range h.heads {
		h.heads[i] = -1
	}
	for e := range h.keys {
		b := hashKey(h.keys[e]) & h.mask
		h.next[e] = h.heads[b]
		h.heads[b] = int32(e)
	}
}

// Entry returns the i-th (key, value) pair in insertion order.
func (h *HtA) Entry(i int) (uint64, float64) { return h.keys[i], h.vals[i] }

// Keys exposes the key array in insertion order (read-only view).
func (h *HtA) Keys() []uint64 { return h.keys }

// Vals exposes the value array in insertion order (read-only view).
func (h *HtA) Vals() []float64 { return h.vals }

// Bytes reports the current memory footprint of the accumulator.
func (h *HtA) Bytes() uint64 {
	return uint64(len(h.heads))*4 + uint64(cap(h.keys))*8 + uint64(cap(h.vals))*8 + uint64(cap(h.next))*4
}
