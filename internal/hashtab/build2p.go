package hashtab

import (
	"context"

	"sparta/internal/coo"
	"sparta/internal/invariant"
	"sparta/internal/lnum"
	"sparta/internal/parallel"
)

// BuildHtY2P is a lock-free alternative to BuildHtY: a two-pass,
// counting-sort-style construction. Pass one computes every non-zero's
// bucket and counts per-bucket loads; after a prefix sum, pass two scatters
// the non-zeros into a bucket-partitioned scratch array, and each bucket is
// then assembled serially by its owning worker — no locks anywhere.
//
// §3.5 reports the lock-based build reaching 7.8× on 12 threads; this
// variant trades the locks for an extra pass over Y. The ablation bench
// (BenchmarkAblation_YBuild2P) compares the two; on lock-contended bucket
// distributions (few distinct keys) the two-pass build wins.
//
// BuildHtY2P never blocks on anything but its own workers, so it keeps the
// context-free signature shared with BuildHtY (the two are assigned to the
// same function variable by kernel selection); cancellable callers use
// BuildHtY2PCtx.
func BuildHtY2P(y *coo.Tensor, cmodes, fmodes []int, radC, radF *lnum.Radix, buckets, threads int) *HtY {
	h, err := BuildHtY2PCtx(context.Background(), y, cmodes, fmodes, radC, radF, buckets, threads)
	if err != nil {
		// Unreachable: cancellation is the only error BuildHtY2PCtx
		// returns, and a Background context is never canceled.
		return nil
	}
	return h
}

// BuildHtY2PCtx is BuildHtY2P with cooperative cancellation: the bucket
// assembly checkpoints ctx between chunk claims, and the build returns
// ctx.Err() (discarding the partial table) once the context is done.
func BuildHtY2PCtx(ctx context.Context, y *coo.Tensor, cmodes, fmodes []int, radC, radF *lnum.Radix, buckets, threads int) (*HtY, error) {
	n := y.NNZ()
	if buckets <= 0 {
		buckets = NextPow2(n)
	} else {
		buckets = NextPow2(buckets)
	}
	h := &HtY{
		buckets: make([]ytBucket, buckets),
		mask:    uint64(buckets - 1),
		NItems:  n,
	}
	cCols := make([][]uint32, len(cmodes))
	for k, m := range cmodes {
		cCols[k] = y.Inds[m]
	}
	fCols := make([][]uint32, len(fmodes))
	for k, m := range fmodes {
		fCols[k] = y.Inds[m]
	}

	// Pass 1: bucket of every non-zero + per-bucket counts.
	bucketOf := make([]int32, n)
	keys := make([]uint64, n)
	counts := make([]int32, buckets+1)
	threads = parallel.Clamp(threads, n)
	partial := make([][]int32, threads)
	parallel.For(threads, n, func(tid, lo, hi int) {
		local := make([]int32, buckets)
		for i := lo; i < hi; i++ {
			k := radC.EncodeStrided(cCols, i)
			keys[i] = k
			b := int32(hashKey(k) & h.mask)
			bucketOf[i] = b
			local[b]++
		}
		partial[tid] = local
	})
	for _, local := range partial {
		for b, c := range local {
			counts[b+1] += c
		}
	}
	for b := 0; b < buckets; b++ {
		counts[b+1] += counts[b]
	}
	invariant.Assertf(int(counts[buckets]) == n,
		"BuildHtY2P: bucket counts prefix-sum to %d, want nnz_Y = %d", counts[buckets], n)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 2: scatter positions into a bucket-partitioned order. Each
	// thread re-walks its range using its own copy of the running
	// offsets, derived from the global prefix plus the partial counts of
	// the threads before it.
	pos := make([]int32, n) // pos[j] = original index of the j-th scattered item
	offsets := make([][]int32, threads)
	run := append([]int32(nil), counts[:buckets]...)
	for t := 0; t < threads; t++ {
		offsets[t] = append([]int32(nil), run...)
		for b, c := range partial[t] {
			run[b] += c
		}
	}
	if invariant.Enabled {
		// Each thread's starting offsets must tile the buckets exactly: the
		// final running offsets equal the next bucket's start.
		for b := 0; b < buckets; b++ {
			invariant.Assertf(run[b] == counts[b+1],
				"BuildHtY2P: scatter offsets for bucket %d end at %d, want %d", b, run[b], counts[b+1])
		}
	}
	parallel.For(threads, n, func(tid, lo, hi int) {
		off := offsets[tid]
		for i := lo; i < hi; i++ {
			b := bucketOf[i]
			pos[off[b]] = int32(i)
			off[b]++
		}
	})

	// Assemble buckets in parallel: each bucket's items are contiguous in
	// pos; group equal keys into entries preserving first-seen order.
	cerr := parallel.ForChunkedCtx(ctx, threads, buckets, 0, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := counts[b], counts[b+1]
			if lo == hi {
				continue
			}
			bk := &h.buckets[b]
			for j := lo; j < hi; j++ {
				i := pos[j]
				key := keys[i]
				item := YItem{LNFree: radF.EncodeStrided(fCols, int(i)), Val: y.Vals[i]}
				found := false
				for e := range bk.entries {
					if bk.entries[e].key == key {
						bk.entries[e].items = append(bk.entries[e].items, item)
						found = true
						break
					}
				}
				if !found {
					bk.entries = append(bk.entries, ytEntry{key: key, items: []YItem{item}})
				}
			}
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	for bi := range h.buckets {
		for e := range h.buckets[bi].entries {
			h.NKeys++
			if l := len(h.buckets[bi].entries[e].items); l > h.MaxItems {
				h.MaxItems = l
			}
		}
	}
	return h, nil
}
