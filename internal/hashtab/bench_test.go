package hashtab

import (
	"fmt"
	"math/rand"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// benchY builds a 4-order random tensor shaped like the NIPS 2-mode
// contraction workloads: ~nnz/8 distinct contract keys, so item lists
// average 8 and bucket locks see real contention.
func benchY(nnz int) (*coo.Tensor, *lnum.Radix, *lnum.Radix) {
	dims := []uint64{64, 64, 128, 128}
	rng := rand.New(rand.NewSource(1))
	y := coo.MustNew(dims, nnz)
	idx := make([]uint32, 4)
	for i := 0; i < nnz; i++ {
		ck := rng.Intn(nnz / 8)
		idx[0] = uint32(ck % 64)
		idx[1] = uint32(ck / 64 % 64)
		idx[2] = uint32(rng.Intn(128))
		idx[3] = uint32(rng.Intn(128))
		y.Append(idx, rng.Float64())
	}
	return y, lnum.MustRadix(dims[:2]), lnum.MustRadix(dims[2:])
}

// BenchmarkHtYBuild compares the three COO→HtY conversion strategies —
// bucket-locked chained, two-pass chained, and the flat lock-free arena —
// across thread counts.
func BenchmarkHtYBuild(b *testing.B) {
	y, radC, radF := benchY(1 << 16)
	builds := []struct {
		name string
		run  func(threads int)
	}{
		{"locked", func(th int) { BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, th) }},
		{"twopass", func(th int) { BuildHtY2P(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, th) }},
		{"flat", func(th int) { BuildHtYFlat(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, th) }},
	}
	for _, bd := range builds {
		for _, threads := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", bd.name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bd.run(threads)
				}
			})
		}
	}
}

// BenchmarkHtYLookup compares the probe paths on the same key stream: the
// chained bucket walk vs the flat linear probe.
func BenchmarkHtYLookup(b *testing.B) {
	y, radC, radF := benchY(1 << 16)
	chained := BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, 0)
	flat := BuildHtYFlat(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, 0)
	keys := make([]uint64, 1<<14)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 13)) // half hits, half misses
	}
	b.Run("chained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				chained.Lookup(k)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				flat.Lookup(k)
			}
		}
	})
}

// addKeyStreams builds the two accumulation regimes of §3.4: hit-heavy
// (few distinct keys, mostly accumulate) and miss-heavy (mostly fresh
// inserts, the growth-pressure case).
func addKeyStreams(n int) (hitHeavy, missHeavy []uint64) {
	rng := rand.New(rand.NewSource(3))
	hitHeavy = make([]uint64, n)
	missHeavy = make([]uint64, n)
	for i := range hitHeavy {
		hitHeavy[i] = uint64(rng.Intn(n / 64))
		missHeavy[i] = uint64(rng.Intn(4 * n))
	}
	return
}

// BenchmarkHtAAdd compares the chained and open-addressed accumulators on
// hit-heavy and miss-heavy key streams, with the per-sub-tensor Reset
// included (it is part of the real per-sub-tensor cost).
func BenchmarkHtAAdd(b *testing.B) {
	const n = 1 << 16
	hitHeavy, missHeavy := addKeyStreams(n)
	streams := []struct {
		name string
		keys []uint64
	}{{"hit-heavy", hitHeavy}, {"miss-heavy", missHeavy}}
	for _, st := range streams {
		b.Run("chained/"+st.name, func(b *testing.B) {
			h := NewHtA(1024)
			for i := 0; i < b.N; i++ {
				for _, k := range st.keys {
					h.Add(k, 1)
				}
				h.Reset()
			}
		})
		b.Run("flat/"+st.name, func(b *testing.B) {
			h := NewHtAFlat(1024)
			for i := 0; i < b.N; i++ {
				for _, k := range st.keys {
					h.Add(k, 1)
				}
				h.Reset()
			}
		})
	}
}
