package hashtab

import (
	"sparta/internal/invariant"
	"sparta/internal/obs"
)

// HtAFlat is the open-addressed variant of the sparse accumulator HtA
// (§3.4): same thread-private usage, same insertion-order keys/vals arrays
// (so the Zlocal flush contract in package core is unchanged), but the
// chained heads/next arrays are replaced by a flat linear-probe slot table
// with the key inline. An Add is one probe sequence over a contiguous
// slot slice — no chain-node indirection — kept below load factor 1/2.
//
// Each slot interleaves the key and its entry index in one 16-byte record,
// so a probe (and the hit that follows it) touches a single cache line
// instead of two parallel arrays.
//
// Keys must not be ^uint64(0) (the free-slot sentinel); LN keys never are,
// because they are strictly below their radix cardinality.
type htaSlot struct {
	key uint64 // emptySlot when free
	idx int32  // entry index in keys/vals when claimed
}

type HtAFlat struct {
	table []htaSlot
	mask  uint64

	keys  []uint64
	vals  []float64
	slots []int32 // entry -> its slot, for O(entries) sparse Reset

	// Hits and Misses count Add outcomes (accumulate vs insert); their sum
	// is the number of products, the 2*nnz_X*nnz_Favg term of Eq. 4.
	Hits   uint64
	Misses uint64
	// Probes counts slot inspections, the random-read measure for the
	// accumulation access profile (comparable to HtA's chain probes).
	Probes uint64

	// ProbeHist, when set, records each Add's probe-sequence length into a
	// per-worker histogram shard (the table is thread-private, so plain
	// increments suffice). Nil means no distribution tracking.
	ProbeHist *obs.HistShard
}

// NewHtAFlat returns an accumulator sized for about capHint distinct keys.
func NewHtAFlat(capHint int) *HtAFlat {
	if capHint < 16 {
		capHint = 16
	}
	nb := NextPow2(2 * capHint)
	h := &HtAFlat{
		table: make([]htaSlot, nb),
		mask:  uint64(nb - 1),
		keys:  make([]uint64, 0, capHint),
		vals:  make([]float64, 0, capHint),
		slots: make([]int32, 0, capHint),
	}
	for i := range h.table {
		h.table[i].key = emptySlot
	}
	return h
}

// Len returns the number of distinct keys accumulated.
func (h *HtAFlat) Len() int { return len(h.keys) }

// Reset clears the accumulator for the next sub-tensor, keeping capacity
// (counter state is cumulative per thread). Sparsely used tables free only
// the touched slots — each entry remembers its slot, so the sparse path is
// a direct O(entries) scatter with no re-probing.
func (h *HtAFlat) Reset() {
	if len(h.keys) < len(h.table)/8 {
		for i, s := range h.slots {
			if invariant.Enabled {
				// Slot-memory consistency: the remembered slot must still
				// hold the entry that claimed it.
				invariant.Assertf(h.table[s].key == h.keys[i] && h.table[s].idx == int32(i),
					"HtAFlat.Reset: entry %d remembers slot %d, but the slot holds {key %d, idx %d}",
					i, s, h.table[s].key, h.table[s].idx)
			}
			h.table[s].key = emptySlot
		}
	} else {
		for i := range h.table {
			h.table[i].key = emptySlot
		}
	}
	h.keys = h.keys[:0]
	h.vals = h.vals[:0]
	h.slots = h.slots[:0]
}

// Add accumulates v under key: Lines 12-15 of Algorithm 2. Probes are
// derived from the probe displacement after the loop, keeping the loop body
// to one slot load and two compares.
func (h *HtAFlat) Add(key uint64, v float64) {
	s0 := hashKey(key) & h.mask
	s := s0
	for {
		k := h.table[s].key
		if k == key {
			plen := ((s - s0) & h.mask) + 1
			h.Probes += plen
			if h.ProbeHist != nil {
				h.ProbeHist.Observe(float64(plen))
			}
			h.vals[h.table[s].idx] += v
			h.Hits++
			return
		}
		if k == emptySlot {
			break
		}
		s = (s + 1) & h.mask
	}
	plen := ((s - s0) & h.mask) + 1
	h.Probes += plen
	if h.ProbeHist != nil {
		h.ProbeHist.Observe(float64(plen))
	}
	h.Misses++
	h.table[s] = htaSlot{key: key, idx: int32(len(h.keys))}
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, v)
	h.slots = append(h.slots, int32(s))
	if invariant.Enabled {
		invariant.Assertf(len(h.keys) == len(h.vals) && len(h.keys) == len(h.slots),
			"HtAFlat.Add: entry arrays diverged (%d keys, %d vals, %d slots)",
			len(h.keys), len(h.vals), len(h.slots))
	}
	if 2*len(h.keys) > len(h.table) {
		h.grow()
	}
	if invariant.Enabled {
		// Load factor <= 1/2 after any insert (post-grow when it triggered):
		// the probe-length analysis of the accumulation stage depends on it.
		invariant.Assertf(2*len(h.keys) <= len(h.table),
			"HtAFlat.Add: load factor above 1/2 (%d entries in %d slots)", len(h.keys), len(h.table))
	}
}

// grow doubles the slot table and re-probes every entry; entry storage and
// insertion order are untouched.
func (h *HtAFlat) grow() {
	nb := len(h.table) * 2
	invariant.Assertf(nb&(nb-1) == 0 && 2*len(h.keys) <= nb,
		"HtAFlat.grow: %d slots cannot hold %d entries below load factor 1/2", nb, len(h.keys))
	h.table = make([]htaSlot, nb)
	h.mask = uint64(nb - 1)
	for i := range h.table {
		h.table[i].key = emptySlot
	}
	for e, key := range h.keys {
		s := hashKey(key) & h.mask
		for h.table[s].key != emptySlot {
			s = (s + 1) & h.mask
		}
		h.table[s] = htaSlot{key: key, idx: int32(e)}
		h.slots[e] = int32(s)
	}
}

// Entry returns the i-th (key, value) pair in insertion order.
func (h *HtAFlat) Entry(i int) (uint64, float64) { return h.keys[i], h.vals[i] }

// Keys exposes the key array in insertion order (read-only view).
func (h *HtAFlat) Keys() []uint64 { return h.keys }

// Vals exposes the value array in insertion order (read-only view).
func (h *HtAFlat) Vals() []float64 { return h.vals }

// Bytes reports the current memory footprint of the accumulator.
func (h *HtAFlat) Bytes() uint64 {
	return uint64(len(h.table))*16 +
		uint64(cap(h.keys))*8 + uint64(cap(h.vals))*8 + uint64(cap(h.slots))*4
}
