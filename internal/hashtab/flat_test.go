package hashtab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// TestBuildHtYFlatMatchesLocked: the flat build must produce a table
// equivalent to the chained one (same keys, same item multisets, same
// stats) under both the YTable interface and its own accessors.
func TestBuildHtYFlatMatchesLocked(t *testing.T) {
	dims := []uint64{6, 7, 8, 9}
	rng := rand.New(rand.NewSource(9))
	y := coo.MustNew(dims, 0)
	idx := make([]uint32, 4)
	for i := 0; i < 3000; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		y.Append(idx, rng.Float64())
	}
	radC := lnum.MustRadix(dims[:2])
	radF := lnum.MustRadix(dims[2:])
	for _, threads := range []int{1, 4} {
		a := BuildHtY(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, threads)
		b := BuildHtYFlat(y, []int{0, 1}, []int{2, 3}, radC, radF, 0, threads)
		if a.NKeys != b.NumKeys() || a.NItems != b.NumItems() || a.MaxItems != b.MaxItemLen() {
			t.Fatalf("threads=%d: stats differ: %d/%d/%d vs %d/%d/%d", threads,
				a.NKeys, a.NItems, a.MaxItems, b.NumKeys(), b.NumItems(), b.MaxItemLen())
		}
		for ck := uint64(0); ck < radC.Card(); ck++ {
			ia, _ := a.Lookup(ck)
			ib, _ := b.Lookup(ck)
			if (ia == nil) != (ib == nil) {
				t.Fatalf("threads=%d key %d: presence differs", threads, ck)
			}
			if ia == nil {
				continue
			}
			sum := map[uint64]float64{}
			for _, it := range ia {
				sum[it.LNFree] += it.Val
			}
			for _, it := range ib {
				sum[it.LNFree] -= it.Val
			}
			for fk, v := range sum {
				if v < -1e-12 || v > 1e-12 {
					t.Fatalf("threads=%d key %d free %d: item mismatch %v", threads, ck, fk, v)
				}
			}
		}
	}
}

// TestBuildHtYFlatDeterministic: unlike the lock-order-dependent chained
// build, the flat arena must come out bit-identical for any thread count —
// items of one key stay in original Y order.
func TestBuildHtYFlatDeterministic(t *testing.T) {
	dims := []uint64{3, 4, 50}
	rng := rand.New(rand.NewSource(11))
	y := coo.MustNew(dims, 0)
	idx := make([]uint32, 3)
	for i := 0; i < 2000; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		y.Append(idx, rng.NormFloat64())
	}
	radC := lnum.MustRadix(dims[:2])
	radF := lnum.MustRadix(dims[2:])
	ref := BuildHtYFlat(y, []int{0, 1}, []int{2}, radC, radF, 0, 1)
	for _, threads := range []int{2, 5, 8} {
		h := BuildHtYFlat(y, []int{0, 1}, []int{2}, radC, radF, 0, threads)
		for ck := uint64(0); ck < radC.Card(); ck++ {
			ia, _ := ref.Lookup(ck)
			ib, _ := h.Lookup(ck)
			if len(ia) != len(ib) {
				t.Fatalf("threads=%d key %d: %d vs %d items", threads, ck, len(ia), len(ib))
			}
			for j := range ia {
				if ia[j] != ib[j] {
					t.Fatalf("threads=%d key %d item %d: order differs: %v vs %v",
						threads, ck, j, ia[j], ib[j])
				}
			}
		}
	}
}

func TestBuildHtYFlatEmptyAndSkewed(t *testing.T) {
	dims := []uint64{4, 5}
	radC := lnum.MustRadix(dims[:1])
	radF := lnum.MustRadix(dims[1:])
	empty := coo.MustNew(dims, 0)
	h := BuildHtYFlat(empty, []int{0}, []int{1}, radC, radF, 0, 2)
	if h.NumKeys() != 0 || h.NumItems() != 0 {
		t.Fatal("empty build broken")
	}
	if items, _ := h.Lookup(3); items != nil {
		t.Fatal("empty table returned items")
	}
	// All non-zeros under one contract key (maximum CAS contention).
	y := coo.MustNew(dims, 0)
	for j := uint32(0); j < 5; j++ {
		y.Append([]uint32{2, j}, float64(j))
	}
	h = BuildHtYFlat(y, []int{0}, []int{1}, radC, radF, 4, 3)
	if h.NumKeys() != 1 || h.MaxItemLen() != 5 {
		t.Fatalf("skewed build: keys=%d max=%d", h.NumKeys(), h.MaxItemLen())
	}
	items, _ := h.Lookup(2)
	if len(items) != 5 {
		t.Fatalf("items = %d", len(items))
	}
	for j, it := range items {
		if it.LNFree != uint64(j) || it.Val != float64(j) {
			t.Fatalf("item %d out of order: %v", j, it)
		}
	}
}

// TestBuildHtYFlatBucketClamp: explicit bucket counts below nnz_Y must be
// clamped so the open-addressed table keeps a free slot.
func TestBuildHtYFlatBucketClamp(t *testing.T) {
	dims := []uint64{64, 3}
	radC := lnum.MustRadix(dims[:1])
	radF := lnum.MustRadix(dims[1:])
	y := coo.MustNew(dims, 0)
	for i := uint32(0); i < 64; i++ {
		y.Append([]uint32{i, 0}, 1) // 64 distinct contract keys
	}
	h := BuildHtYFlat(y, []int{0}, []int{1}, radC, radF, 8, 2)
	if h.NumBuckets() <= 64 {
		t.Fatalf("buckets = %d, want > nnz", h.NumBuckets())
	}
	if h.NumKeys() != 64 {
		t.Fatalf("keys = %d", h.NumKeys())
	}
	// Every key resolvable, misses terminate.
	for i := uint64(0); i < 64; i++ {
		if items, _ := h.Lookup(i); len(items) != 1 {
			t.Fatalf("key %d: %d items", i, len(items))
		}
	}
}

func TestHtAFlatAccumulates(t *testing.T) {
	h := NewHtAFlat(4)
	h.Add(10, 1)
	h.Add(20, 2)
	h.Add(10, 3)
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	k, v := h.Entry(0)
	if k != 10 || v != 4 {
		t.Fatalf("entry 0 = %d %v", k, v)
	}
	if h.Hits != 1 || h.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", h.Hits, h.Misses)
	}
}

func TestHtAFlatGrowthAndOrder(t *testing.T) {
	h := NewHtAFlat(16)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Add(uint64(i*2654435761), float64(i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := 0; i < n; i++ {
		h.Add(uint64(i*2654435761), 0)
	}
	if h.Len() != n || h.Misses != n || h.Hits != n {
		t.Fatalf("len=%d hits=%d misses=%d", h.Len(), h.Hits, h.Misses)
	}
	for i := 0; i < n; i++ {
		if k, _ := h.Entry(i); k != uint64(i*2654435761) {
			t.Fatalf("insertion order broken at %d", i)
		}
	}
}

func TestHtAFlatResetSparseAndDense(t *testing.T) {
	h := NewHtAFlat(4)
	// Dense fill, dense reset.
	for i := 0; i < 200; i++ {
		h.Add(uint64(i), 1)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	// Sparse fill (< slots/8), sparse reset path.
	for i := 0; i < 3; i++ {
		h.Add(uint64(1000+i), float64(i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("sparse reset did not clear")
	}
	h.Add(7, 5)
	if k, v := h.Entry(0); k != 7 || v != 5 {
		t.Fatal("stale state after reset")
	}
	// No stale slots survive: every old key must read as a fresh miss
	// (key 7 was just re-added above, so 200 distinct keys in total).
	for i := 0; i < 200; i++ {
		h.Add(uint64(i), 1)
	}
	if h.Len() != 200 {
		t.Fatalf("stale slots: len=%d", h.Len())
	}
}

// Property: HtAFlat equals a map accumulation (and the chained HtA) for
// arbitrary insert sequences with resets interleaved.
func TestQuickHtAFlatMatchesMap(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		h := NewHtAFlat(2)
		c := NewHtA(2)
		ref := map[uint64]float64{}
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(40))
			v := rng.NormFloat64()
			h.Add(k, v)
			c.Add(k, v)
			ref[k] += v
		}
		if h.Len() != len(ref) || h.Len() != c.Len() {
			return false
		}
		for i := 0; i < h.Len(); i++ {
			k, v := h.Entry(i)
			ck, cv := c.Entry(i)
			if k != ck || v != cv { // identical insertion order and sums
				return false
			}
			d := v - ref[k]
			if d < -1e-9 || d > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
