package hashtab

import (
	"sync/atomic"

	"sparta/internal/coo"
	"sparta/internal/invariant"
	"sparta/internal/lnum"
	"sparta/internal/parallel"
)

// emptySlot marks a free slot in the open-addressed key tables. LN keys are
// strictly below their radix cardinality, which itself fits in a uint64, so
// ^uint64(0) can never be a real key (max key = card-1 <= 2^64-2).
const emptySlot = ^uint64(0)

// ytSlot is one open-addressed slot of HtYFlat: the claiming key and its
// dense rank interleaved in 16 bytes, so a probe and the rank read that
// follows a hit touch a single cache line. The key field is first (8-byte
// aligned) because pass 1 of the build claims it with CompareAndSwapUint64.
type ytSlot struct {
	key  uint64 // emptySlot when free
	rank int32  // dense rank of the key (slot-scan order)
}

// HtYFlat is the cache-friendly layout of the hash-table-represented second
// input tensor: an open-addressed (linear-probe, power-of-two) key table over
// a contiguous CSR-style item arena. A Lookup is one probe sequence over a
// flat slot slice followed by a sub-slice of the arena — no mutexes, no
// per-entry slice headers, no pointer chasing, zero per-entry allocations.
//
// Layout:
//
//	table[s]     {key, rank}: LN contract key claiming slot s (or emptySlot)
//	             and its dense rank
//	keys[r]      key of rank r (kept for stats/debugging)
//	itemOff[r]   items of rank r live in items[itemOff[r]:itemOff[r+1]]
//	items        all nnz_Y YItems, grouped by key, original Y order inside
//	             each group
type HtYFlat struct {
	table []ytSlot
	mask  uint64

	keys    []uint64
	itemOff []int32
	items   []YItem

	// NKeys is the number of distinct contract-index tuples.
	NKeys int
	// NItems is nnz_Y.
	NItems int
	// MaxItems is nnz_Fmax of Eq. 6: the largest item list.
	MaxItems int
}

// BuildHtYFlat converts Y (COO, any order) into an HtYFlat with a lock-free,
// two-pass, counting-sort-style construction:
//
//	pass 1  every non-zero encodes its contract key, claims a slot in the
//	        open-addressed key table via compare-and-swap (no locks), and
//	        bumps that slot's item count (atomic add)
//	merge   one scan over the slots assigns dense ranks in slot order and
//	        prefix-sums the counts into arena offsets; a serial O(n) sweep
//	        in non-zero order then assigns each item its arena position
//	pass 2  every non-zero scatters its YItem (free-key encode + value) to
//	        its precomputed position — threads write disjoint slots, no locks
//
// Positions are assigned by a single sweep in original non-zero order, so
// the items of one key appear in original Y order and the build is
// deterministic regardless of thread count (unlike the lock-order-dependent
// chained build). The sweep is serial but does only one array increment per
// non-zero; the encode-heavy scatter stays parallel, and nothing in the
// build is O(threads * buckets).
//
// buckets <= 0 picks the default: next power of two >= 2*nnz_Y (load factor
// <= 0.5 over distinct keys). Explicit bucket counts are rounded up to a
// power of two and clamped to > nnz_Y so the open-addressed table always
// keeps a free slot (probe sequences must terminate).
func BuildHtYFlat(y *coo.Tensor, cmodes, fmodes []int, radC, radF *lnum.Radix, buckets, threads int) *HtYFlat {
	n := y.NNZ()
	if buckets <= 0 {
		buckets = NextPow2(2 * n)
	} else {
		buckets = NextPow2(buckets)
	}
	if min := NextPow2(n + 1); buckets < min {
		buckets = min
	}
	invariant.Assertf(buckets&(buckets-1) == 0 && buckets > n,
		"HtYFlat: %d buckets for %d items (need power of two with a free slot)", buckets, n)
	h := &HtYFlat{
		table:  make([]ytSlot, buckets),
		mask:   uint64(buckets - 1),
		NItems: n,
	}
	// The slot keys are CAS targets in pass 1, so every access — even this
	// pre-parallel initialization and the post-barrier merge below — goes
	// through sync/atomic (enforced by sptc-lint's atomicmix; an aligned
	// atomic word load/store compiles to a plain MOV on amd64 and arm64).
	for i := range h.table {
		atomic.StoreUint64(&h.table[i].key, emptySlot)
	}
	cCols := make([][]uint32, len(cmodes))
	for k, m := range cmodes {
		cCols[k] = y.Inds[m]
	}
	fCols := make([][]uint32, len(fmodes))
	for k, m := range fmodes {
		fCols[k] = y.Inds[m]
	}
	if n == 0 {
		h.itemOff = make([]int32, 1)
		return h
	}

	// Pass 1: claim slots with CAS and count items per slot (atomic adds on
	// a shared counts array — contention only between items of one key).
	threads = parallel.Clamp(threads, n)
	slotOf := make([]int32, n)
	counts := make([]int32, buckets)
	parallel.For(threads, n, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			key := radC.EncodeStrided(cCols, i)
			s := hashKey(key) & h.mask
			for {
				cur := atomic.LoadUint64(&h.table[s].key)
				if cur == key {
					break
				}
				if cur == emptySlot {
					if atomic.CompareAndSwapUint64(&h.table[s].key, emptySlot, key) {
						break
					}
					continue // lost the race for this slot; re-read it
				}
				s = (s + 1) & h.mask
			}
			slotOf[i] = int32(s)
			atomic.AddInt32(&counts[s], 1)
		}
	})

	// Merge: rank the claimed slots in slot order and prefix-sum the counts
	// into arena offsets; counts[s] then becomes the running scatter cursor
	// of its slot, and one serial sweep in non-zero order turns slotOf[i]
	// into the item's final arena position (stable: original Y order within
	// each key, independent of the thread count).
	for s := 0; s < buckets; s++ {
		key := atomic.LoadUint64(&h.table[s].key)
		if key == emptySlot {
			continue
		}
		h.table[s].rank = int32(h.NKeys)
		h.NKeys++
		h.keys = append(h.keys, key)
		h.itemOff = append(h.itemOff, int32(0))
	}
	invariant.Assertf(h.NKeys < buckets,
		"HtYFlat: %d keys filled all %d slots; probe sequences would not terminate", h.NKeys, buckets)
	h.itemOff = append(h.itemOff, 0)
	off := int32(0)
	for s := 0; s < buckets; s++ {
		if c := counts[s]; c > 0 {
			r := h.table[s].rank
			h.itemOff[r] = off
			off += c
			h.itemOff[r+1] = off
			if int(c) > h.MaxItems {
				h.MaxItems = int(c)
			}
			counts[s] = h.itemOff[r]
		}
	}
	invariant.Assertf(int(off) == n,
		"HtYFlat: arena offsets cover %d items, want nnz_Y = %d", off, n)
	for i := 0; i < n; i++ {
		s := slotOf[i]
		slotOf[i] = counts[s]
		counts[s]++
	}
	if invariant.Enabled {
		// The position sweep must be a bijection [0,n) -> [0,n): monotone
		// per slot (original Y order within each key) and within bounds.
		for r := 1; r < len(h.itemOff); r++ {
			invariant.Assertf(h.itemOff[r-1] <= h.itemOff[r],
				"HtYFlat: itemOff not monotone at rank %d: %d > %d", r, h.itemOff[r-1], h.itemOff[r])
		}
		for i := 0; i < n; i++ {
			invariant.Assertf(slotOf[i] >= 0 && int(slotOf[i]) < n,
				"HtYFlat: position sweep sent item %d to %d, outside [0,%d)", i, slotOf[i], n)
		}
	}

	// Pass 2: scatter every YItem to its precomputed arena position.
	h.items = make([]YItem, n)
	parallel.For(threads, n, func(tid, lo, hi int) {
		for i := lo; i < hi; i++ {
			h.items[slotOf[i]] = YItem{LNFree: radF.EncodeStrided(fCols, i), Val: y.Vals[i]}
		}
	})
	return h
}

// Lookup returns the item list for an LN contract key, or nil, plus the
// number of slot probes: one linear-probe sequence over the flat slot array,
// then a contiguous arena sub-slice. The probe count is derived from the
// displacement after the loop, keeping the loop body to one load and two
// compares.
//
// The body is written for bounds-check elimination (the -perf lint gate
// holds this function at zero escapes and zero bounds checks): the slot
// index is masked against len(table)-1 so the prover sees every table
// access in range, and the arena sub-slice is dominated by explicit range
// guards on conditions the build makes impossible, replacing the compiler's
// implicit checks on the hot path.
func (h *HtYFlat) Lookup(key uint64) ([]YItem, int) {
	table := h.table
	if len(table) == 0 {
		return nil, 0
	}
	mask := uint64(len(table) - 1)
	s0 := hashKey(key) & mask
	s := s0
	for {
		k := atomic.LoadUint64(&table[s&mask].key)
		if k == key {
			r := int(table[s&mask].rank)
			probes := int((s-s0)&mask) + 1
			itemOff, items := h.itemOff, h.items
			if r < 0 || r >= len(itemOff) {
				return nil, probes // impossible: ranks index itemOff[0:NKeys+1]
			}
			off := itemOff[r:]
			if len(off) < 2 {
				return nil, probes // impossible: itemOff always has rank+1 entries
			}
			lo, hi := int(off[0]), int(off[1])
			if lo < 0 || hi < lo || hi > len(items) {
				return nil, probes // impossible: arena offsets prefix-sum the item counts
			}
			return items[lo:hi], probes
		}
		if k == emptySlot {
			return nil, int((s-s0)&mask) + 1
		}
		if invariant.Enabled {
			// A full probe cycle means no free slot — the load-factor
			// clamp in BuildHtYFlat was violated.
			invariant.Assertf((s+1)&mask != s0,
				"HtYFlat.Lookup: probe sequence wrapped the whole table (%d slots) without a free slot", len(table))
		}
		s = (s + 1) & mask
	}
}

// NumBuckets returns the slot count of the key table.
func (h *HtYFlat) NumBuckets() int { return len(h.table) }

// NumKeys returns the number of distinct contract-index tuples (YTable).
func (h *HtYFlat) NumKeys() int { return h.NKeys }

// NumItems returns nnz_Y (YTable).
func (h *HtYFlat) NumItems() int { return h.NItems }

// MaxItemLen returns the largest item list (YTable).
func (h *HtYFlat) MaxItemLen() int { return h.MaxItems }

// Bytes reports the measured memory footprint: key table (16 per slot,
// key+rank interleaved) plus the CSR arena (8 per key, 4 per offset, 16 per
// item). The Eq. 5 estimate still upper-bounds this — the per-item cost
// drops from Size_idx*N_Y + Size_val + Size_ep chained bytes to a fixed 16,
// and the per-slot cost from 32 to 16.
func (h *HtYFlat) Bytes() uint64 {
	return uint64(len(h.table))*16 +
		uint64(len(h.keys))*8 + uint64(len(h.itemOff))*4 + uint64(len(h.items))*16
}
