// Package plan is the cost-based contraction-order optimizer for tensor
// networks (DESIGN.md §11). EvalChain executes user-supplied steps strictly
// left-to-right; a bad order can inflate intermediate nnz by orders of
// magnitude before the fast kernels ever see the data. This package
// estimates the nnz of every feasible intermediate from cheap per-mode
// statistics (distinct counts, self-join moments, heavy-hitter lists,
// nnz-per-index histograms — computed once per tensor and cached by the
// engine's content fingerprint), prices candidate contraction trees with a
// cost model fitted to the per-stage walls Reports already record, and
// searches the tree space exhaustively for small networks (subset DP) with
// a greedy fallback above.
package plan

import (
	"container/list"
	"sort"
	"sync"

	"sparta/internal/coo"
	"sparta/internal/engine"
	"sparta/internal/obs"
)

// HeavyHitters is the number of top (index, count) pairs kept per mode.
// Heavy lists make the pairwise match estimate skew-aware for leaf-leaf
// contractions: correlated Zipf heads (the common case — both tensors
// favor low indices) multiply through the heavy∩heavy term instead of
// being averaged away by the uniform-residual formula.
const HeavyHitters = 32

// HeavyHitter is one of a mode's most-populated index values.
type HeavyHitter struct {
	Index uint32 `json:"index"`
	Count uint64 `json:"count"`
}

// ModeStats summarizes one mode's index distribution. The JSON form is what
// `tns-tool describe -json` emits, so the planner and offline analysis
// consume identical stats.
type ModeStats struct {
	Size     uint64 `json:"size"`
	Distinct int    `json:"distinct"`
	MinIdx   uint32 `json:"min_idx"`
	MaxIdx   uint32 `json:"max_idx"`
	MaxCount uint64 `json:"max_count"`
	// MeanCount is nnz / distinct; Imbalance is MaxCount / MeanCount — the
	// quantity that drives sub-tensor load balance when this mode splits.
	MeanCount float64 `json:"mean_count"`
	Imbalance float64 `json:"imbalance"`
	// SelfJoin is Σ cᵢ² over the per-index non-zero counts cᵢ: the size of
	// the self-join on this mode, the second moment the skew-aware match
	// estimator uses.
	SelfJoin float64 `json:"self_join"`
	// Heavy lists the top-HeavyHitters indices by count, descending.
	Heavy []HeavyHitter `json:"heavy,omitempty"`
	// HistBounds/HistCounts is the nnz-per-used-index histogram in the
	// observability layer's probe bucketing (counts has one extra +Inf
	// bucket past the bounds).
	HistBounds []float64 `json:"hist_bounds"`
	HistCounts []uint64  `json:"hist_counts"`
}

// TensorStats is the per-tensor input of the planner's estimator.
type TensorStats struct {
	Dims    []uint64    `json:"dims"`
	NNZ     int         `json:"nnz"`
	Density float64     `json:"density"`
	Bytes   uint64      `json:"bytes"`
	Modes   []ModeStats `json:"modes"`
}

// StatsOf computes t's per-mode statistics in one counting pass per mode.
// The cost is O(nnz · order) — far below one contraction — and intended to
// be paid once per tensor via Cache.
func StatsOf(t *coo.Tensor) *TensorStats {
	card := 1.0
	for _, d := range t.Dims {
		card *= float64(d)
	}
	s := &TensorStats{
		Dims:  append([]uint64(nil), t.Dims...),
		NNZ:   t.NNZ(),
		Bytes: t.Bytes(),
		Modes: make([]ModeStats, t.Order()),
	}
	if card > 0 {
		s.Density = float64(t.NNZ()) / card
	}
	for m := range t.Dims {
		s.Modes[m] = modeStatsOf(t, m)
	}
	return s
}

// modeStatsOf counts mode m's index occupancy.
func modeStatsOf(t *coo.Tensor, m int) ModeStats {
	counts := make(map[uint32]uint64)
	ms := ModeStats{Size: t.Dims[m]}
	if t.NNZ() > 0 {
		ms.MinIdx = t.Inds[m][0]
		ms.MaxIdx = t.Inds[m][0]
	}
	for _, v := range t.Inds[m] {
		counts[v]++
		if v < ms.MinIdx {
			ms.MinIdx = v
		}
		if v > ms.MaxIdx {
			ms.MaxIdx = v
		}
	}
	ms.Distinct = len(counts)
	sh := obs.NewHistShard(obs.ProbeBuckets)
	hh := make([]HeavyHitter, 0, len(counts))
	for idx, c := range counts {
		sh.Observe(float64(c))
		ms.SelfJoin += float64(c) * float64(c)
		if c > ms.MaxCount {
			ms.MaxCount = c
		}
		hh = append(hh, HeavyHitter{Index: idx, Count: c})
	}
	if ms.Distinct > 0 {
		ms.MeanCount = float64(t.NNZ()) / float64(ms.Distinct)
		ms.Imbalance = float64(ms.MaxCount) / ms.MeanCount
	}
	// Top-HeavyHitters by count, ties broken by index for determinism.
	sort.Slice(hh, func(i, j int) bool {
		if hh[i].Count != hh[j].Count {
			return hh[i].Count > hh[j].Count
		}
		return hh[i].Index < hh[j].Index
	})
	if len(hh) > HeavyHitters {
		hh = hh[:HeavyHitters]
	}
	ms.Heavy = hh
	ms.HistBounds = append([]float64(nil), obs.ProbeBuckets...)
	ms.HistCounts = sh.Counts()
	return ms
}

// Cache memoizes TensorStats by the engine's 128-bit content fingerprint,
// so repeated plans over the same tensors (chains, serving) pay the
// counting pass once. The fingerprint is recomputed per lookup — O(nnz),
// the same content-addressing price the plan cache pays — which makes the
// cache immune to callers mutating tensors between plans.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[engine.Fingerprint]*list.Element
	lru *list.List // of cacheEntry, front = most recent
}

type cacheEntry struct {
	fp engine.Fingerprint
	st *TensorStats
}

// NewCache builds a stats cache holding at most capEntries tensors
// (capEntries <= 0 means DefaultCacheEntries).
func NewCache(capEntries int) *Cache {
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	return &Cache{cap: capEntries, m: make(map[engine.Fingerprint]*list.Element), lru: list.New()}
}

// DefaultCacheEntries caps the package-level stats cache.
const DefaultCacheEntries = 256

// defaultCache serves PlanSteps callers that do not bring their own.
var defaultCache = NewCache(DefaultCacheEntries)

// Stats returns t's statistics, computing them on first sight of this
// content fingerprint.
func (c *Cache) Stats(t *coo.Tensor, threads int) *TensorStats {
	fp := engine.FingerprintTensor(t, threads)
	c.mu.Lock()
	if el, ok := c.m[fp]; ok {
		c.lru.MoveToFront(el)
		st := el.Value.(cacheEntry).st
		c.mu.Unlock()
		return st
	}
	c.mu.Unlock()

	// Count outside the lock; first-store-wins on a race, like the plan
	// cache — both results are identical for identical content.
	st := StatsOf(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[fp]; ok {
		return el.Value.(cacheEntry).st
	}
	c.m[fp] = c.lru.PushFront(cacheEntry{fp: fp, st: st})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		delete(c.m, last.Value.(cacheEntry).fp)
		c.lru.Remove(last)
	}
	return st
}

// Len reports the resident entry count (for tests).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
