package plan

import (
	"sparta/internal/core"
	"sparta/internal/stats"
)

// Model prices one pairwise contraction in nanoseconds from the quantities
// the estimator predicts. The five coefficients mirror the per-stage walls
// Report records, so a model can be fitted from measured runs:
//
//	cost = SortX·nnzX + Build·nnzY + Probe·nnzX + Accum·products + Write·nnzZ
//
// SortX is stage ① minus the HtY build (X permute+sort), Build the COO→HtY
// conversion, Probe stage ② per driving X non-zero, Accum stage ③ per
// scalar product, Write stages ④+⑤ per output non-zero (the fused gather
// emits Z sorted, so the residual sort rides inside Write). Absolute values
// matter less than ratios: the DP only compares candidate trees under one
// model.
type Model struct {
	SortXNS float64 `json:"sortx_ns"`
	BuildNS float64 `json:"build_ns"`
	ProbeNS float64 `json:"probe_ns"`
	AccumNS float64 `json:"accum_ns"`
	WriteNS float64 `json:"write_ns"`
}

// DefaultModel holds laptop-measured per-element constants (flat kernels,
// 4 threads, scale 20000 — the BENCH_1 regime). They are starting points;
// FitModel refines them from this machine's Reports.
func DefaultModel() Model {
	return Model{SortXNS: 35, BuildNS: 80, ProbeNS: 45, AccumNS: 25, WriteNS: 60}
}

// StepCost prices one contraction.
func (m Model) StepCost(nnzX, nnzY, products, nnzZ float64) float64 {
	return m.SortXNS*nnzX + m.BuildNS*nnzY + m.ProbeNS*nnzX + m.AccumNS*products + m.WriteNS*nnzZ
}

// FitModel estimates the coefficients from measured contraction reports:
// each term's unit cost is the median over reports of the corresponding
// stage wall divided by its driving quantity (median, not mean — single
// cold-cache outliers would otherwise dominate). Terms with no usable
// sample keep the default. Reports from any algorithm are accepted, but
// the HtY-specific terms only learn from AlgSparta runs.
func FitModel(reports []*core.Report) Model {
	m := DefaultModel()
	var sortx, build, probe, accum, write []float64
	for _, r := range reports {
		if r == nil {
			continue
		}
		if r.NNZX > 0 {
			in := r.StageWall[core.StageInput] - r.HtYBuild
			if in > 0 {
				sortx = append(sortx, float64(in)/float64(r.NNZX))
			}
			if w := r.StageWall[core.StageSearch]; w > 0 {
				probe = append(probe, float64(w)/float64(r.NNZX))
			}
		}
		if r.Algorithm == core.AlgSparta && !r.HtYReused && r.NNZY > 0 && r.HtYBuild > 0 {
			build = append(build, float64(r.HtYBuild)/float64(r.NNZY))
		}
		if r.Products > 0 {
			if w := r.StageWall[core.StageAccum]; w > 0 {
				accum = append(accum, float64(w)/float64(r.Products))
			}
		}
		if r.NNZZ > 0 {
			w := r.StageWall[core.StageWrite] + r.StageWall[core.StageSort]
			if w > 0 {
				write = append(write, float64(w)/float64(r.NNZZ))
			}
		}
	}
	if v := stats.Median(sortx); v > 0 {
		m.SortXNS = v
	}
	if v := stats.Median(build); v > 0 {
		m.BuildNS = v
	}
	if v := stats.Median(probe); v > 0 {
		m.ProbeNS = v
	}
	if v := stats.Median(accum); v > 0 {
		m.AccumNS = v
	}
	if v := stats.Median(write); v > 0 {
		m.WriteNS = v
	}
	return m
}
