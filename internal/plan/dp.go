package plan

import (
	"fmt"
	"math"
	"strings"

	"sparta/internal/coo"
	"sparta/internal/invariant"
)

// DefaultExhaustiveLimit is the leaf count up to which the subset DP
// searches every feasible contraction tree; larger networks fall back to
// the greedy portfolio. 2^n DP states with 3^n splits stay well under a
// millisecond at 8 — far below one contraction.
const DefaultExhaustiveLimit = 8

// Config tunes the planner. The zero value selects the fitted-default cost
// model, the package stats cache, and DefaultExhaustiveLimit.
type Config struct {
	// Model prices candidate trees (nil = DefaultModel()).
	Model *Model
	// ExhaustiveLimit is the max leaf count for the subset DP (0 =
	// DefaultExhaustiveLimit; above it the greedy portfolio runs).
	ExhaustiveLimit int
	// Threads parallelizes the stats-cache fingerprint pass (<1 = cores).
	Threads int
	// Cache supplies per-tensor statistics (nil = package default cache).
	Cache *Cache
}

// Result reports what the planner decided. Steps always holds an
// executable chain: the reordered one when Planned, the input otherwise.
type Result struct {
	Steps   []Step
	Planned bool
	// Reason explains a Planned=false result ("written order is already
	// optimal", "intermediate consumed more than once", ...).
	Reason string
	// Order and NaiveOrder are the contraction trees as expressions over
	// input names, e.g. "((A×B)×(C×D))".
	Order      string
	NaiveOrder string
	// Model costs in ns; PlannedCostNS == NaiveCostNS when not planned.
	NaiveCostNS, PlannedCostNS float64
	// StepOrders[i] / EstNNZ[i] are the subtree expression and estimated
	// output nnz of planned step i (feeds Report.PlannedOrder/EstimatedNNZ).
	StepOrders []string
	EstNNZ     []int
	// EstPeakNNZ / NaiveEstPeakNNZ are the largest estimated step outputs.
	EstPeakNNZ, NaiveEstPeakNNZ int
	// Exhaustive is true when the subset DP searched every tree.
	Exhaustive bool
}

// tree is one candidate contraction tree. Internal nodes contract left (as
// X, the probing side) against right (as Y, the hashed side) — orientation
// is already folded in.
type tree struct {
	leafIdx     int // leaf index, or -1 for internal nodes
	left, right *tree
	est         estTensor
	products    float64 // of this node's contraction (internal only)
	cost        float64 // model ns for the whole subtree
	peak        float64 // largest step-output nnz estimate in the subtree
}

// combine contracts two disjoint subtrees in the given orientation, or
// returns nil when they share no mode (the engine has no outer product).
func combine(x, y *tree, net *network, m Model) *tree {
	shared := map[int]bool{}
	inX := map[int]bool{}
	for _, v := range x.est.vars {
		inX[v] = true
	}
	for _, v := range y.est.vars {
		if inX[v] {
			shared[v] = true
		}
	}
	if len(shared) == 0 {
		return nil
	}
	products, nnzZ, z := contractEstimate(x.est, y.est, shared, net.varSize)
	cost := x.cost + y.cost + m.StepCost(x.est.nnz, y.est.nnz, products, nnzZ)
	return &tree{
		leafIdx:  -1,
		left:     x,
		right:    y,
		est:      z,
		products: products,
		cost:     cost,
		peak:     math.Max(nnzZ, math.Max(x.peak, y.peak)),
	}
}

// combineBest tries both orientations and keeps the cheaper (ties go to
// a-as-X, keeping the search deterministic).
func combineBest(a, b *tree, net *network, m Model) *tree {
	ab := combine(a, b, net, m)
	ba := combine(b, a, net, m)
	switch {
	case ab == nil:
		return ba
	case ba == nil:
		return ab
	case ba.cost < ab.cost:
		return ba
	default:
		return ab
	}
}

// better orders candidate trees: cheaper wins, equal cost prefers the
// smaller peak intermediate.
func better(cand, best *tree) bool {
	if best == nil {
		return cand != nil
	}
	if cand == nil {
		return false
	}
	if cand.cost != best.cost {
		return cand.cost < best.cost
	}
	return cand.peak < best.peak
}

func leafTree(net *network, i int) *tree {
	return &tree{leafIdx: i, est: net.leaves[i].est}
}

// exhaustive is the subset DP: best[S] is the cheapest feasible tree
// contracting exactly the leaves in mask S, built from canonical splits
// (the half containing S's lowest bit is the enumerated one).
func exhaustive(net *network, m Model) *tree {
	n := len(net.leaves)
	best := make([]*tree, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = leafTree(net, i)
	}
	full := (1 << uint(n)) - 1
	for s := 3; s <= full; s++ {
		if s&(s-1) == 0 {
			continue // single leaf, already seeded
		}
		low := s & -s
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			if s1&low == 0 {
				continue
			}
			if invariant.Enabled {
				// Canonical split: both halves non-empty, disjoint, exactly
				// covering s, with s's lowest bit in the enumerated half.
				s2 := s ^ s1
				invariant.Assertf(s1 != 0 && s2 != 0 && s1&s2 == 0 && s1|s2 == s && s1&low != 0,
					"plan: DP split %#x + %#x is not a canonical partition of %#x", s1, s2, s)
			}
			t1, t2 := best[s1], best[s^s1]
			if t1 == nil || t2 == nil {
				continue
			}
			if cand := combineBest(t1, t2, net, m); better(cand, best[s]) {
				best[s] = cand
			}
		}
	}
	return best[full]
}

// greedy is the fallback above ExhaustiveLimit: repeatedly merge the
// feasible pair with the lowest marginal step cost. A second pass greedily
// minimizes the intermediate nnz instead; the portfolio keeps whichever
// full tree the model prices lower (cheap branch-and-bound in spirit: two
// descent heuristics bounded against each other and against the written
// order by the caller).
func greedy(net *network, m Model) *tree {
	byCost := greedyBy(net, m, func(t *tree) float64 { return t.cost })
	byNNZ := greedyBy(net, m, func(t *tree) float64 { return t.est.nnz })
	if byCost == nil {
		return byNNZ
	}
	if byNNZ != nil && byNNZ.cost < byCost.cost {
		return byNNZ
	}
	return byCost
}

// greedyBy merges the pair minimizing score(combined) until one tree
// remains. Scanning i<j in slice order keeps it deterministic.
func greedyBy(net *network, m Model, score func(*tree) float64) *tree {
	active := make([]*tree, len(net.leaves))
	for i := range net.leaves {
		active[i] = leafTree(net, i)
	}
	for len(active) > 1 {
		bi, bj := -1, -1
		var bt *tree
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				cand := combineBest(active[i], active[j], net, m)
				if cand == nil {
					continue
				}
				if bt == nil || score(cand) < score(bt) {
					bi, bj, bt = i, j, cand
				}
			}
		}
		if bt == nil {
			return nil // disconnected network; cannot happen for parsed chains
		}
		active[bi] = bt
		active = append(active[:bj], active[bj+1:]...)
	}
	return active[0]
}

// naiveTree replays the chain's written structure (and written X/Y
// orientation) through the estimator, pricing today's left-to-right
// execution under the same model the DP uses.
func naiveTree(net *network, m Model) *tree {
	mid := map[string]*tree{}
	resolve := func(ref operandRef) *tree {
		if ref.leaf >= 0 {
			return leafTree(net, ref.leaf)
		}
		return mid[ref.mid]
	}
	var t *tree
	for _, st := range net.steps {
		x, y := resolve(st.x), resolve(st.y)
		if x == nil || y == nil {
			return nil
		}
		t = combine(x, y, net, m)
		if t == nil {
			return nil
		}
		mid[st.out] = t
	}
	return t
}

// specLabels is the label pool for emitted specs; a step touching more
// modes than this is not expressible and planning bails.
const specLabels = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// emit linearizes a tree into executable steps (post-order), generating
// fresh intermediate names and einsum specs. Intermediate steps keep the
// engine's natural output order (X free modes then Y free), so they skip
// the output permutation entirely; only the root step carries the chain's
// original RHS order.
func emit(root *tree, net *network) (steps []Step, orders []string, estNNZ []int, err error) {
	reserved := map[string]bool{net.outName: true}
	for _, l := range net.leaves {
		reserved[l.name] = true
	}
	nextName := 0
	fresh := func() string {
		for {
			name := fmt.Sprintf("plan·%d", nextName)
			nextName++
			if !reserved[name] {
				reserved[name] = true
				return name
			}
		}
	}
	var walk func(t *tree) (name, order string, e error)
	walk = func(t *tree) (string, string, error) {
		if t.leafIdx >= 0 {
			return net.leaves[t.leafIdx].name, net.leaves[t.leafIdx].name, nil
		}
		xName, xOrder, e := walk(t.left)
		if e != nil {
			return "", "", e
		}
		yName, yOrder, e := walk(t.right)
		if e != nil {
			return "", "", e
		}
		outVars := t.est.vars
		isRoot := t == root
		if isRoot {
			outVars = net.outVars
		}
		spec, e := buildSpec(t.left.est.vars, t.right.est.vars, outVars)
		if e != nil {
			return "", "", e
		}
		name := net.outName
		if !isRoot {
			name = fresh()
		}
		order := "(" + xOrder + "×" + yOrder + ")"
		steps = append(steps, Step{Out: name, Spec: spec, X: xName, Y: yName})
		orders = append(orders, order)
		estNNZ = append(estNNZ, int(math.Round(t.est.nnz)))
		return name, order, nil
	}
	if _, _, err = walk(root); err != nil {
		return nil, nil, nil, err
	}
	return steps, orders, estNNZ, nil
}

// buildSpec renders one step's einsum spec from operand and output var
// lists, assigning labels in first-appearance order.
func buildSpec(xv, yv, outv []int) (string, error) {
	labelOf := map[int]byte{}
	next := 0
	assign := func(v int) (byte, error) {
		if l, ok := labelOf[v]; ok {
			return l, nil
		}
		if next >= len(specLabels) {
			return 0, notPlannable{"step exceeds the 52-label spec grammar"}
		}
		l := specLabels[next]
		next++
		labelOf[v] = l
		return l, nil
	}
	var b strings.Builder
	for _, v := range xv {
		l, err := assign(v)
		if err != nil {
			return "", err
		}
		b.WriteByte(l)
	}
	b.WriteByte(',')
	for _, v := range yv {
		l, err := assign(v)
		if err != nil {
			return "", err
		}
		b.WriteByte(l)
	}
	b.WriteString("->")
	for _, v := range outv {
		l, ok := labelOf[v]
		if !ok {
			return "", notPlannable{"internal: output var absent from operands"}
		}
		b.WriteByte(l)
	}
	return b.String(), nil
}

// PlanSteps plans a contraction chain: it unifies the steps into a tensor
// network, prices every feasible contraction tree (exhaustively up to
// cfg.ExhaustiveLimit leaves, greedily above), and returns the reordered
// steps when the model prices them below the written order. Chains the
// planner cannot reorder safely — an intermediate consumed twice, multiple
// unconsumed outputs — come back unchanged with Planned=false and a
// Reason; they are not errors (malformed chains surface their errors from
// naive execution, which the caller falls back to).
func PlanSteps(steps []Step, tensors map[string]*coo.Tensor, cfg Config) (*Result, error) {
	model := DefaultModel()
	if cfg.Model != nil {
		model = *cfg.Model
	}
	limit := cfg.ExhaustiveLimit
	if limit <= 0 {
		limit = DefaultExhaustiveLimit
	}
	cache := cfg.Cache
	if cache == nil {
		cache = defaultCache
	}
	res := &Result{Steps: steps}
	unplanned := func(reason string) (*Result, error) {
		res.Planned = false
		res.Reason = reason
		res.PlannedCostNS = res.NaiveCostNS
		return res, nil
	}

	net, err := fromSteps(steps, tensors, func(t *coo.Tensor) *TensorStats {
		return cache.Stats(t, cfg.Threads)
	})
	if err != nil {
		var np notPlannable
		if ok := asNotPlannable(err, &np); ok {
			return unplanned(np.reason)
		}
		return nil, err
	}

	naive := naiveTree(net, model)
	if naive == nil {
		return unplanned("written order is not replayable")
	}
	res.NaiveCostNS = naive.cost
	res.NaiveOrder = orderString(naive, net)
	res.NaiveEstPeakNNZ = int(math.Round(naive.peak))

	var root *tree
	if len(net.leaves) <= limit {
		root = exhaustive(net, model)
		res.Exhaustive = true
	} else {
		root = greedy(net, model)
	}
	if root == nil {
		return unplanned("no feasible contraction tree found")
	}
	if root.cost >= naive.cost {
		return unplanned("written order is already optimal under the model")
	}
	planned, orders, estNNZ, err := emit(root, net)
	if err != nil {
		var np notPlannable
		if ok := asNotPlannable(err, &np); ok {
			return unplanned(np.reason)
		}
		return nil, err
	}
	res.Steps = planned
	res.Planned = true
	res.Order = orderString(root, net)
	res.PlannedCostNS = root.cost
	res.StepOrders = orders
	res.EstNNZ = estNNZ
	res.EstPeakNNZ = int(math.Round(root.peak))
	return res, nil
}

// orderString renders a tree as a parenthesized expression of leaf names.
func orderString(t *tree, net *network) string {
	if t.leafIdx >= 0 {
		return net.leaves[t.leafIdx].name
	}
	return "(" + orderString(t.left, net) + "×" + orderString(t.right, net) + ")"
}

// asNotPlannable unwraps a notPlannable outcome.
func asNotPlannable(err error, out *notPlannable) bool {
	np, ok := err.(notPlannable)
	if ok {
		*out = np
	}
	return ok
}
