package plan

import (
	"fmt"
	"math"
	"testing"

	"sparta/internal/core"
	"sparta/internal/coo"
	"sparta/internal/einsum"
	"sparta/internal/gen"
)

// contractPair runs a real contraction of x's trailing k modes against y's
// leading k modes and returns the actual output nnz and product count.
func contractPair(t *testing.T, x, y *coo.Tensor, k int, kernel core.Kernel) (nnzZ int, products uint64) {
	t.Helper()
	cx := make([]int, k)
	cy := make([]int, k)
	for i := 0; i < k; i++ {
		cx[i] = x.Order() - k + i
		cy[i] = i
	}
	z, rep, err := core.Contract(x, y, cx, cy, core.Options{Algorithm: core.AlgSparta, Kernel: kernel})
	if err != nil {
		t.Fatal(err)
	}
	return z.NNZ(), rep.Products
}

// estimatePair runs the estimator over the same contraction: trailing k
// modes of x against leading k of y.
func estimatePair(x, y *coo.Tensor, k int) (products, nnzZ float64) {
	sx, sy := StatsOf(x), StatsOf(y)
	// Global vars: x gets 0..ox-1; y's first k modes alias x's last k.
	xv := make([]int, x.Order())
	for i := range xv {
		xv[i] = i
	}
	yv := make([]int, y.Order())
	shared := map[int]bool{}
	varSize := map[int]float64{}
	for i := range yv {
		if i < k {
			yv[i] = x.Order() - k + i
			shared[yv[i]] = true
		} else {
			yv[i] = x.Order() + i
		}
		varSize[yv[i]] = float64(y.Dims[i])
	}
	for i, d := range x.Dims {
		varSize[i] = float64(d)
	}
	ex, ey := leafEst(xv, sx), leafEst(yv, sy)
	products, nnzZ, _ = contractEstimate(ex, ey, shared, varSize)
	return products, nnzZ
}

// TestEstimatorAccuracy: across random tensors of orders 2–5, uniform and
// skewed, both kernels, the estimated products and output nnz must land
// within a bounded factor of the measured truth.
func TestEstimatorAccuracy(t *testing.T) {
	type tcase struct {
		ox, oy, k int
		nnzX      int
		nnzY      int
		dim       uint64
		skew      float64 // 0 = uniform
	}
	cases := []tcase{
		{2, 2, 1, 800, 800, 40, 0},
		{2, 2, 1, 800, 800, 40, 1.0},
		{3, 2, 1, 1500, 400, 24, 0},
		{3, 3, 2, 1500, 1500, 20, 0},
		{3, 3, 2, 1500, 1500, 20, 1.0},
		{4, 3, 2, 2000, 1200, 12, 0},
		{4, 4, 3, 2000, 2000, 10, 0.8},
		{5, 3, 2, 2500, 900, 8, 0},
		{5, 5, 4, 2500, 2500, 7, 1.0},
	}
	kernels := []core.Kernel{core.KernelFlat, core.KernelChained}
	// Uniform placements are what the balls-into-bins model assumes;
	// correlated skew earns a looser bound (heavy lists absorb most of it).
	const uniformBound, skewBound = 4.0, 8.0
	for ci, c := range cases {
		dimsX := make([]uint64, c.ox)
		for i := range dimsX {
			dimsX[i] = c.dim
		}
		dimsY := make([]uint64, c.oy)
		for i := range dimsY {
			dimsY[i] = c.dim
		}
		var x, y *coo.Tensor
		if c.skew > 0 {
			x = gen.RandomSkewed(dimsX, c.nnzX, c.skew, int64(100+ci))
			y = gen.RandomSkewed(dimsY, c.nnzY, c.skew, int64(200+ci))
		} else {
			x = gen.Random(dimsX, c.nnzX, int64(100+ci))
			y = gen.Random(dimsY, c.nnzY, int64(200+ci))
		}
		estP, estZ := estimatePair(x, y, c.k)
		bound := uniformBound
		if c.skew > 0 {
			bound = skewBound
		}
		for _, kern := range kernels {
			gotZ, gotP := contractPair(t, x, y, c.k, kern)
			name := fmt.Sprintf("case %d (ox=%d oy=%d k=%d skew=%.1f kern=%v)", ci, c.ox, c.oy, c.k, c.skew, kern)
			if gotP > 0 {
				if r := estP / float64(gotP); r > bound || r < 1/bound {
					t.Errorf("%s: products est %.0f vs actual %d (ratio %.2f)", name, estP, gotP, r)
				}
			}
			if gotZ > 0 {
				if r := estZ / float64(gotZ); r > bound || r < 1/bound {
					t.Errorf("%s: nnzZ est %.0f vs actual %d (ratio %.2f)", name, estZ, gotZ, r)
				}
			}
		}
	}
}

// intVals makes a tensor's values small positive integers (exact in
// float64 under any summation order).
func intVals(t *coo.Tensor) *coo.Tensor {
	for i := range t.Vals {
		t.Vals[i] = float64(1 + i%3)
	}
	return t
}

// duelNetwork is the known-bad-order chain shared with the bench duel: a
// left-associated matrix chain whose first product is ruinous.
func duelNetwork(seed int64) ([]Step, map[string]*coo.Tensor) {
	steps := []Step{
		{Out: "AB", Spec: "ab,bc->ac", X: "A", Y: "B"},
		{Out: "ABC", Spec: "ac,cd->ad", X: "AB", Y: "C"},
		{Out: "Z", Spec: "ad,de->ae", X: "ABC", Y: "D"},
	}
	tensors := map[string]*coo.Tensor{
		"A": intVals(gen.Random([]uint64{60, 60}, 2400, seed)),
		"B": intVals(gen.Random([]uint64{60, 60}, 2400, seed+1)),
		"C": intVals(gen.Random([]uint64{60, 60}, 2400, seed+2)),
		"D": intVals(gen.Random([]uint64{60, 4}, 40, seed+3)),
	}
	return steps, tensors
}

// runSteps executes a chain naively and returns the summed measured work:
// products plus per-step output nnz — a deterministic stand-in for wall
// time (the cost model's two dominant terms).
func runSteps(t *testing.T, steps []Step, tensors map[string]*coo.Tensor) (z *coo.Tensor, work float64) {
	t.Helper()
	env := map[string]*coo.Tensor{}
	for k, v := range tensors {
		env[k] = v
	}
	for _, st := range steps {
		p, err := einsum.Parse(st.Spec)
		if err != nil {
			t.Fatal(err)
		}
		zz, rep, err := core.Contract(env[st.X], env[st.Y], p.CmodesX, p.CmodesY, core.Options{Algorithm: core.AlgSparta})
		if err != nil {
			t.Fatalf("step %s: %v", st.Spec, err)
		}
		if !p.IdentityOut {
			if err := zz.Permute(p.OutPerm); err != nil {
				t.Fatal(err)
			}
			zz.Sort(0)
		}
		env[st.Out] = zz
		work += float64(rep.Products) + float64(zz.NNZ())
		z = zz
	}
	return z, work
}

// TestPlannerNeverWorseOnDuel: on the duel network the DP must find a tree
// whose *measured* work (products + intermediate nnz) beats the written
// order, and whose output is bitwise identical.
func TestPlannerNeverWorseOnDuel(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		steps, tensors := duelNetwork(1000 + 17*seed)
		res, err := PlanSteps(steps, tensors, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Planned {
			t.Fatalf("seed %d: planner kept the bad order: %s", seed, res.Reason)
		}
		if res.PlannedCostNS > res.NaiveCostNS {
			t.Fatalf("seed %d: planned model cost above naive", seed)
		}
		zNaive, workNaive := runSteps(t, steps, tensors)
		zPlan, workPlan := runSteps(t, res.Steps, tensors)
		if workPlan > workNaive {
			t.Errorf("seed %d: planned measured work %.0f > naive %.0f", seed, workPlan, workNaive)
		}
		if !zNaive.Equal(zPlan) {
			t.Errorf("seed %d: planned output differs from naive", seed)
		}
	}
}

// TestGreedyFallbackAboveLimit: a 10-leaf chain exceeds the exhaustive
// limit, takes the greedy path, and still never prices above the written
// order (the caller falls back when greedy cannot improve).
func TestGreedyFallbackAboveLimit(t *testing.T) {
	var steps []Step
	tensors := map[string]*coo.Tensor{}
	prev := "T0"
	tensors["T0"] = intVals(gen.Random([]uint64{20, 20}, 200, 900))
	for i := 1; i < 10; i++ {
		name := fmt.Sprintf("T%d", i)
		nnz := 200
		if i == 8 {
			nnz = 10 // the cheap collapse lives near the end
		}
		tensors[name] = intVals(gen.Random([]uint64{20, 20}, nnz, int64(900+i)))
		out := fmt.Sprintf("P%d", i)
		if i == 9 {
			out = "Z"
		}
		steps = append(steps, Step{Out: out, Spec: "ab,bc->ac", X: prev, Y: name})
		prev = out
	}
	res, err := PlanSteps(steps, tensors, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("10-leaf network claims exhaustive search")
	}
	if res.Planned {
		if res.PlannedCostNS >= res.NaiveCostNS {
			t.Fatalf("greedy planned a not-cheaper order")
		}
		zNaive, _ := runSteps(t, steps, tensors)
		zPlan, _ := runSteps(t, res.Steps, tensors)
		if !zNaive.Equal(zPlan) {
			t.Fatal("greedy-planned output differs from naive")
		}
	}
}

// TestStatsCache: repeated lookups of the same content hit the cache, and
// the cache distinguishes tensors by content, not identity.
func TestStatsCache(t *testing.T) {
	c := NewCache(4)
	a := gen.Random([]uint64{30, 30}, 400, 11)
	b := a.Clone()
	s1 := c.Stats(a, 0)
	s2 := c.Stats(b, 0) // same content, different object: must hit
	if s1 != s2 {
		t.Error("clone missed the stats cache")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// Mutating the tensor changes its fingerprint → fresh stats.
	b.Vals[0] += 1
	s3 := c.Stats(b, 0)
	if s3 == s1 {
		t.Error("mutated tensor served stale stats")
	}
	// LRU eviction caps the entry count.
	for i := 0; i < 10; i++ {
		c.Stats(gen.Random([]uint64{10, 10}, 50, int64(50+i)), 0)
	}
	if c.Len() > 4 {
		t.Errorf("cache grew to %d entries, cap 4", c.Len())
	}
}

// TestStatsOf sanity-checks the per-mode statistics on a known tensor.
func TestStatsOf(t *testing.T) {
	tn, err := coo.New([]uint64{4, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 0,0,1,3 — cols: 2,5,2,7.
	for _, e := range [][3]uint64{{0, 2, 1}, {0, 5, 2}, {1, 2, 3}, {3, 7, 4}} {
		tn.Append([]uint32{uint32(e[0]), uint32(e[1])}, float64(e[2]))
	}
	st := StatsOf(tn)
	if st.NNZ != 4 {
		t.Fatalf("nnz %d", st.NNZ)
	}
	m0 := st.Modes[0]
	if m0.Distinct != 3 || m0.MaxCount != 2 || m0.SelfJoin != 6 { // 2²+1+1
		t.Errorf("mode 0 stats: %+v", m0)
	}
	m1 := st.Modes[1]
	if m1.Distinct != 3 || m1.SelfJoin != 6 {
		t.Errorf("mode 1 stats: %+v", m1)
	}
	if math.Abs(st.Density-4.0/32.0) > 1e-12 {
		t.Errorf("density %v", st.Density)
	}
}

// TestNotPlannableReasons enumerates the fallback cases.
func TestNotPlannableReasons(t *testing.T) {
	a := gen.Random([]uint64{10, 10}, 50, 3)
	tensors := map[string]*coo.Tensor{"A": a}
	cases := []struct {
		name  string
		steps []Step
	}{
		{"empty", nil},
		{"twice-consumed", []Step{
			{Out: "W", Spec: "ab,bc->ac", X: "A", Y: "A"},
			{Out: "Z", Spec: "ac,ca->", X: "W", Y: "W"},
		}},
		{"undefined", []Step{{Out: "Z", Spec: "ab,bc->ac", X: "A", Y: "Q"}}},
		{"bad spec", []Step{{Out: "Z", Spec: "nope", X: "A", Y: "A"}}},
		{"dangling output", []Step{
			{Out: "W", Spec: "ab,bc->ac", X: "A", Y: "A"},
			{Out: "Z", Spec: "ab,bc->ac", X: "A", Y: "A"},
		}},
	}
	for _, c := range cases {
		res, err := PlanSteps(c.steps, tensors, Config{})
		if err != nil {
			t.Fatalf("%s: hard error %v", c.name, err)
		}
		if res.Planned {
			t.Errorf("%s: planned", c.name)
		}
		if res.Reason == "" {
			t.Errorf("%s: no reason", c.name)
		}
	}
}
