package plan

import (
	"math"

	"sparta/internal/invariant"
)

// This file is the sparsity estimator: given two tensors' per-mode
// statistics, predict the products performed and the output nnz of their
// contraction without touching the data. The model, mode by mode:
//
// Match probability. For one contracted mode of size s, the expected number
// of (x, y) non-zero pairs agreeing on that mode is Σᵢ cX(i)·cY(i) over the
// per-index counts. When both sides carry heavy-hitter lists (leaves), the
// sum splits into heavy∩heavy (exact), heavy×residual (heavy count times
// the residual side's mean density nnzR/s), and residual×residual
// (nnzRX·nnzRY/s — exact in expectation for independently placed indices).
// Intermediates have no heavy lists; they use the uniform nnzX·nnzY/s term.
// Modes are treated as independent, so the match probability of a full
// contract-key tuple is the product of per-mode probabilities.
//
// Products. P = nnzX · nnzY · Π_m J_m with J_m the per-mode match
// probability.
//
// Output nnz. P products scatter over the free-key space F = FX·FY, where
// each side's distinct free-tuple count is capped by its nnz (a tensor
// cannot have more distinct free tuples than non-zeros):
// FX = min(nnzX, Π distinct). Balls-into-bins collapse duplicates:
// nnzZ ≈ F·(1 − exp(−P/F)).
//
// Per-var distinct counts survive into the intermediate the same way:
// d_Z(v) ≈ d·(1 − exp(−nnzZ/d)), capped at the source tensor's distinct
// count — what the next level of the tree consumes.

// estTensor is the estimator's view of a real or hypothetical tensor:
// its vars (global mode identities, in storage order), nnz, per-var
// distinct estimates, and — for leaves only — the full ModeStats that
// enable the skew-aware match terms.
type estTensor struct {
	vars []int
	nnz  float64
	dist map[int]float64
	mode map[int]*ModeStats // nil entries for intermediates
}

// leafEst builds the estimator view of a concrete tensor.
func leafEst(vars []int, st *TensorStats) estTensor {
	e := estTensor{
		vars: vars,
		nnz:  float64(st.NNZ),
		dist: make(map[int]float64, len(vars)),
		mode: make(map[int]*ModeStats, len(vars)),
	}
	for m, v := range vars {
		e.dist[v] = float64(st.Modes[m].Distinct)
		e.mode[v] = &st.Modes[m]
	}
	return e
}

// matchProb estimates the per-mode match probability J_m = Σ cX·cY /
// (nnzX·nnzY) for var v of size between x and y.
func matchProb(x, y estTensor, v int, size float64) float64 {
	if x.nnz == 0 || y.nnz == 0 || size <= 0 {
		return 0
	}
	mx, okx := x.mode[v]
	my, oky := y.mode[v]
	if !okx || !oky || mx == nil || my == nil {
		// Intermediate on at least one side: uniform residual term only.
		return 1 / size
	}
	sum := matchSum(mx, my, size)
	return sum / (x.nnz * y.nnz)
}

// matchSum estimates Σᵢ cX(i)·cY(i) from two modes' heavy lists and
// residual masses.
func matchSum(mx, my *ModeStats, size float64) float64 {
	yHeavy := make(map[uint32]uint64, len(my.Heavy))
	var heavyYTotal uint64
	for _, h := range my.Heavy {
		yHeavy[h.Index] = h.Count
		heavyYTotal += h.Count
	}
	var heavyXTotal uint64
	var sum float64
	var xOnlyHeavy float64 // Σ cX over X-heavy indices not heavy in Y
	for _, h := range mx.Heavy {
		heavyXTotal += h.Count
		if cy, ok := yHeavy[h.Index]; ok {
			sum += float64(h.Count) * float64(cy) // heavy ∩ heavy, exact
		} else {
			xOnlyHeavy += float64(h.Count)
		}
	}
	var yOnlyHeavy float64
	xHeavy := make(map[uint32]bool, len(mx.Heavy))
	for _, h := range mx.Heavy {
		xHeavy[h.Index] = true
	}
	for _, h := range my.Heavy {
		if !xHeavy[h.Index] {
			yOnlyHeavy += float64(h.Count)
		}
	}
	resX := math.Max(0, float64(sumNNZ(mx))-float64(heavyXTotal))
	resY := math.Max(0, float64(sumNNZ(my))-float64(heavyYTotal))
	// Heavy × residual: the other side's residual mass spreads ~uniformly
	// over the mode's index space.
	sum += xOnlyHeavy * resY / size
	sum += yOnlyHeavy * resX / size
	// Residual × residual.
	sum += resX * resY / size
	return sum
}

// sumNNZ recovers the mode's total non-zero count (Σ cᵢ = nnz) from its
// stats: MeanCount · Distinct.
func sumNNZ(m *ModeStats) float64 {
	return m.MeanCount * float64(m.Distinct)
}

// contractEstimate predicts one pairwise contraction: x and y contract
// away the vars in shared (each var held by both operands and by nothing
// else in the network); the output keeps x's free vars then y's free vars.
// varSize maps every var to its mode size.
func contractEstimate(x, y estTensor, shared map[int]bool, varSize map[int]float64) (products, nnzZ float64, z estTensor) {
	products = x.nnz * y.nnz
	for v := range shared {
		products *= matchProb(x, y, v, varSize[v])
	}

	// Free-key space, per side, capped by nnz.
	freeSpace := func(t estTensor) float64 {
		f := 1.0
		for _, v := range t.vars {
			if shared[v] {
				continue
			}
			f *= math.Max(1, t.dist[v])
			if f > t.nnz {
				// Early cap: correlations between modes keep the true
				// distinct-tuple count at or below nnz.
				return math.Max(1, t.nnz)
			}
		}
		return math.Max(1, f)
	}
	fx, fy := freeSpace(x), freeSpace(y)
	space := fx * fy

	switch {
	case products <= 0:
		nnzZ = 0
	case space <= 1:
		nnzZ = 1 // fully contracted: scalar output
	default:
		nnzZ = space * -math.Expm1(-products/space)
		if nnzZ > products {
			nnzZ = products
		}
		if nnzZ < 1 {
			nnzZ = 1
		}
	}

	z = estTensor{nnz: nnzZ, dist: make(map[int]float64), mode: map[int]*ModeStats{}}
	appendFree := func(t estTensor) {
		for _, v := range t.vars {
			if shared[v] {
				continue
			}
			d := math.Max(1, t.dist[v])
			// Survival of distinct values under subsampling to nnzZ tuples.
			dz := d * -math.Expm1(-nnzZ/d)
			if dz > d {
				dz = d
			}
			if dz < 1 {
				dz = 1
			}
			z.vars = append(z.vars, v)
			z.dist[v] = dz
		}
	}
	appendFree(x)
	appendFree(y)
	if invariant.Enabled {
		// The estimator feeds the DP's cost comparisons: a negative or NaN
		// estimate would silently corrupt every tree price above it.
		invariant.Assertf(products >= 0 && !math.IsNaN(products),
			"plan: estimator produced negative/NaN products %v", products)
		invariant.Assertf(nnzZ >= 0 && !math.IsNaN(nnzZ),
			"plan: estimator produced negative/NaN output nnz %v", nnzZ)
		for v, d := range z.dist {
			invariant.Assertf(d >= 1 && !math.IsNaN(d),
				"plan: estimator produced distinct count %v < 1 for var %d", d, v)
		}
	}
	return products, nnzZ, z
}
