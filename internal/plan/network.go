package plan

import (
	"fmt"

	"sparta/internal/coo"
	"sparta/internal/einsum"
)

// Step mirrors sparta.ChainStep without importing the root package: one
// pairwise einsum binding Out to the contraction of X and Y.
type Step struct {
	Out  string
	Spec string
	X, Y string
}

// notPlannable reports why a chain was left in its written order. It is a
// normal outcome, not an error: EvalChain falls back to naive execution.
type notPlannable struct{ reason string }

func (e notPlannable) Error() string { return "plan: " + e.reason }

// leaf is one occurrence of an input tensor in the network. The same named
// tensor referenced by several steps yields several leaves — standard
// einsum semantics (each occurrence binds its own modes).
type leaf struct {
	name string
	vars []int // canonical var per mode, in storage order
	est  estTensor
}

// network is the n-ary einsum a plannable chain denotes: input-tensor
// leaves connected by shared mode variables, with one output var order.
//
// Invariants established by fromSteps (they hold for every chain whose
// specs parse, and are re-checked defensively): every var is held by
// exactly one or two leaves; two-leaf vars are contracted somewhere in any
// valid tree and never appear in the final output; one-leaf vars are
// exactly the final output's modes.
type network struct {
	leaves  []leaf
	outVars []int  // final output vars, in the final spec's RHS order
	outName string // final step's Out name
	varSize map[int]float64
	// holders[v] is the bitmask of leaves carrying var v.
	holders map[int]uint64
	// steps is the written chain in network terms, for replaying the naive
	// order through the estimator.
	steps []netStep
}

// operandRef points a replayed step operand at a leaf occurrence (leaf >= 0)
// or at an earlier step's output (mid).
type operandRef struct {
	leaf int
	mid  string
}

// netStep is one written step with operands resolved to network references.
type netStep struct {
	out  string
	x, y operandRef
}

// unionFind is a minimal path-halving union-find over var ids.
type unionFind struct{ parent []int }

func (u *unionFind) fresh() int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	return id
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// fromSteps unifies a chain's per-step local labels into global mode vars
// and builds the tensor network, or reports why the chain is not
// plannable: an intermediate consumed more than once (the executed value
// would be needed twice — reordering cannot preserve the sharing), more
// than one unconsumed output, or malformed steps (surfaced as errors by
// naive execution, not here).
func fromSteps(steps []Step, tensors map[string]*coo.Tensor, stats func(*coo.Tensor) *TensorStats) (*network, error) {
	if len(steps) == 0 {
		return nil, notPlannable{"empty chain"}
	}
	uf := &unionFind{}
	type leafSrc struct {
		name string
		vars []int
		st   *TensorStats
	}
	var leafSrcs []leafSrc
	outVarsOf := map[string][]int{} // step outputs, pre-canonical
	consumed := map[string]bool{}

	operand := func(name string, labels []rune) ([]int, operandRef, error) {
		if vars, isMid := outVarsOf[name]; isMid {
			if consumed[name] {
				return nil, operandRef{}, notPlannable{fmt.Sprintf("intermediate %q consumed more than once", name)}
			}
			consumed[name] = true
			if len(vars) != len(labels) {
				return nil, operandRef{}, notPlannable{fmt.Sprintf("intermediate %q arity mismatch", name)}
			}
			return vars, operandRef{leaf: -1, mid: name}, nil
		}
		t, ok := tensors[name]
		if !ok {
			return nil, operandRef{}, notPlannable{fmt.Sprintf("tensor %q undefined", name)}
		}
		if t.Order() != len(labels) {
			return nil, operandRef{}, notPlannable{fmt.Sprintf("tensor %q arity mismatch", name)}
		}
		vars := make([]int, len(labels))
		for i := range labels {
			vars[i] = uf.fresh()
		}
		ref := operandRef{leaf: len(leafSrcs)}
		leafSrcs = append(leafSrcs, leafSrc{name: name, vars: vars, st: stats(t)})
		return vars, ref, nil
	}

	var lastOut string
	var netSteps []netStep
	for _, st := range steps {
		ein, err := einsum.Parse(st.Spec)
		if err != nil {
			return nil, notPlannable{fmt.Sprintf("step %q: %v", st.Spec, err)}
		}
		xv, xref, err := operand(st.X, ein.X)
		if err != nil {
			return nil, err
		}
		yv, yref, err := operand(st.Y, ein.Y)
		if err != nil {
			return nil, err
		}
		netSteps = append(netSteps, netStep{out: st.Out, x: xref, y: yref})
		// Unify vars of labels shared between the two operands.
		posY := map[rune]int{}
		for i, r := range ein.Y {
			posY[r] = i
		}
		for i, r := range ein.X {
			if j, ok := posY[r]; ok {
				uf.union(xv[i], yv[j])
			}
		}
		// The step output's vars, in its RHS order.
		varOf := map[rune]int{}
		for i, r := range ein.X {
			varOf[r] = xv[i]
		}
		for i, r := range ein.Y {
			varOf[r] = yv[i]
		}
		ov := make([]int, len(ein.Out))
		for i, r := range ein.Out {
			ov[i] = varOf[r]
		}
		if _, dup := outVarsOf[st.Out]; dup || tensors[st.Out] != nil {
			return nil, notPlannable{fmt.Sprintf("step redefines %q", st.Out)}
		}
		outVarsOf[st.Out] = ov
		lastOut = st.Out
	}
	// Exactly one unconsumed output, necessarily the last step's.
	for name := range outVarsOf {
		if !consumed[name] && name != lastOut {
			return nil, notPlannable{fmt.Sprintf("output %q is never consumed", name)}
		}
	}

	// Canonicalize vars and materialize the network.
	net := &network{outName: lastOut, varSize: map[int]float64{}, holders: map[int]uint64{}, steps: netSteps}
	canon := func(vars []int) []int {
		out := make([]int, len(vars))
		for i, v := range vars {
			out[i] = uf.find(v)
		}
		return out
	}
	if len(leafSrcs) > 64 {
		return nil, notPlannable{"more than 64 input occurrences"}
	}
	for li, src := range leafSrcs {
		vars := canon(src.vars)
		seen := map[int]bool{}
		for m, v := range vars {
			if seen[v] {
				return nil, notPlannable{fmt.Sprintf("tensor %q mode aliasing (trace)", src.name)}
			}
			seen[v] = true
			size := float64(src.st.Dims[m])
			if have, ok := net.varSize[v]; ok && have != size {
				return nil, notPlannable{"unified modes disagree on size"}
			}
			net.varSize[v] = size
			net.holders[v] |= 1 << uint(li)
		}
		net.leaves = append(net.leaves, leaf{name: src.name, vars: vars, est: leafEst(vars, src.st)})
	}
	net.outVars = canon(outVarsOf[lastOut])
	if len(net.varSize) > 64 {
		return nil, notPlannable{"more than 64 distinct modes"}
	}

	// Defensive invariant checks (see the type comment).
	outSet := map[int]bool{}
	for _, v := range net.outVars {
		outSet[v] = true
	}
	for v, h := range net.holders {
		switch popcount(h) {
		case 1:
			if !outSet[v] {
				return nil, notPlannable{"internal: free var missing from output"}
			}
		case 2:
			if outSet[v] {
				return nil, notPlannable{"internal: contracted var kept in output"}
			}
		default:
			return nil, notPlannable{"internal: var held by more than two leaves"}
		}
	}
	return net, nil
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
