package bench

import (
	"math"
	"strings"
	"testing"

	"sparta/internal/obs"
)

// TestParseHistogramRoundTrip feeds a real WritePrometheus exposition back
// through the scrape parser: the recovered buckets must reproduce the
// histogram's own quantile estimates exactly.
func TestParseHistogramRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("sptc_serve_request_seconds", "t", obs.LatencyBuckets, "route", "contract")
	other := reg.Histogram("sptc_serve_request_seconds", "t", obs.LatencyBuckets, "route", "tensors")
	vals := []float64{0.0001, 0.0004, 0.001, 0.001, 0.002, 0.01, 0.05, 0.3, 2}
	for _, v := range vals {
		h.Observe(v)
	}
	other.Observe(42) // must not leak into the contract-route scrape

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sc := ParseHistogram(b.String(), "sptc_serve_request_seconds", map[string]string{"route": "contract"})
	if sc == nil {
		t.Fatal("histogram not found in exposition")
	}
	if sc.Count != uint64(len(vals)) {
		t.Fatalf("scraped count = %d, want %d", sc.Count, len(vals))
	}
	if len(sc.Bounds) != len(obs.LatencyBuckets) {
		t.Fatalf("scraped %d bounds, want %d", len(sc.Bounds), len(obs.LatencyBuckets))
	}
	delta := sc.Delta(nil)
	if delta == nil {
		t.Fatal("Delta(nil) failed")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := h.Quantile(q)
		got := obs.QuantileFromBuckets(sc.Bounds, delta, q)
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Errorf("q=%g: scraped quantile %g != histogram quantile %g", q, got, want)
		}
	}
}

// TestScrapedHistDelta: the before/after diff isolates one run's counts and
// rejects resets and layout changes.
func TestScrapedHistDelta(t *testing.T) {
	before := &ScrapedHist{Bounds: []float64{1, 2}, Counts: []uint64{1, 3, 4}}
	after := &ScrapedHist{Bounds: []float64{1, 2}, Counts: []uint64{2, 6, 9}}
	got := after.Delta(before)
	want := []uint64{1, 2, 2} // cumulative deltas 1,3,5 de-cumulated
	if len(got) != len(want) {
		t.Fatalf("delta = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delta = %v, want %v", got, want)
		}
	}
	if after.Delta(&ScrapedHist{Counts: []uint64{1}}) != nil {
		t.Error("mismatched layouts should yield nil")
	}
	if before.Delta(after) != nil {
		t.Error("counter reset (after < before) should yield nil")
	}
}

// TestParseCounters covers labeled counter extraction.
func TestParseCounters(t *testing.T) {
	text := `# HELP sptc_serve_shed_total requests shed by reason
# TYPE sptc_serve_shed_total counter
sptc_serve_shed_total{reason="inflight"} 7
sptc_serve_shed_total{reason="memory"} 2
sptc_other_total{reason="inflight"} 99
`
	got := ParseCounters(text, "sptc_serve_shed_total", "reason")
	if got["inflight"] != 7 || got["memory"] != 2 || len(got) != 2 {
		t.Fatalf("ParseCounters = %v", got)
	}
}

// TestAgreementPct pins the symmetric relative-gap definition.
func TestAgreementPct(t *testing.T) {
	if g := AgreementPct(1.0, 1.1); math.Abs(g-100*0.1/1.1) > 1e-9 {
		t.Errorf("AgreementPct(1,1.1) = %g", g)
	}
	if g := AgreementPct(0, 0); g != 0 {
		t.Errorf("AgreementPct(0,0) = %g", g)
	}
	if AgreementPct(2, 1) != AgreementPct(1, 2) {
		t.Error("AgreementPct not symmetric")
	}
}
