// Package bench drives the paper's evaluation (§5): one function per table
// and figure, each printing rows comparable to the published ones. The
// sptc-bench command exposes them on the CLI and the root bench_test.go
// wraps them in testing.B benchmarks.
package bench

import (
	"fmt"
	"sync"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/obs"
)

// Config scales the evaluation. The defaults target seconds-per-experiment
// on a laptop; raise Scale toward the presets' real nnz to approach paper
// scale.
type Config struct {
	// Scale is the target non-zero count for every generated preset.
	Scale int
	// Threads for all parallel stages (0 = all cores).
	Threads int
	// Seed for every generator.
	Seed int64
	// DRAMFraction sets the simulated DRAM budget as a fraction of each
	// workload's peak memory. The default 0.6 mirrors the paper's regime:
	// DRAM large enough for the four prioritized objects (HtY, HtA,
	// Zlocal, Z) on most workloads — the inputs alone exceed it — but not
	// for everything on output-heavy contractions.
	DRAMFraction float64
	// Tracer and Metrics, when non-nil, are threaded into every contraction
	// the experiments run (sptc-bench -trace / -metrics-addr). Note the
	// report cache: a cached cell re-emits nothing, so traces show each
	// distinct contraction once.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Commit labels JSON duel outputs with the source revision (sptc-bench
	// -commit; empty falls back to the binary's stamped vcs.revision).
	Commit string
}

// Default returns the standard laptop-scale configuration.
func Default() Config {
	return Config{Scale: 4000, Threads: 0, Seed: 42, DRAMFraction: 0.6}
}

// tensorCache memoizes generated preset tensors per (name, scale, seed) so
// multi-experiment runs generate each dataset once.
var tensorCache sync.Map

// Tensor returns the scaled synthetic tensor for a preset.
func (c Config) Tensor(p gen.Preset) *coo.Tensor {
	key := fmt.Sprintf("%s/%d/%d", p.Name, c.Scale, c.Seed)
	if v, ok := tensorCache.Load(key); ok {
		return v.(*coo.Tensor)
	}
	t := gen.Generate(p, c.Scale, c.Seed)
	tensorCache.Store(key, t)
	return t
}

// reportCache memoizes contraction results: several experiments (fig2,
// fig4, headline, fig7, fig9) visit the same workload-algorithm cells, and
// the baseline cells are the expensive ones.
var reportCache sync.Map

type runResult struct {
	z   *coo.Tensor
	rep *core.Report
}

// RunWorkload contracts a workload's tensor with itself using the given
// algorithm (and the default flat kernels) and returns the output and
// report. Results are cached per (workload, algorithm, config); callers
// must not mutate the returned tensor.
func (c Config) RunWorkload(w gen.Workload, alg core.Algorithm) (*coo.Tensor, *core.Report, error) {
	return c.RunWorkloadKernel(w, alg, core.KernelFlat)
}

// RunWorkloadKernel is RunWorkload with an explicit hash-kernel selection,
// for the chained-vs-flat duels.
func (c Config) RunWorkloadKernel(w gen.Workload, alg core.Algorithm, k core.Kernel) (*coo.Tensor, *core.Report, error) {
	key := fmt.Sprintf("%s/%v/%v/%d/%d/%d/%v", w.Preset.Name, alg, k, w.Modes, c.Scale, c.Seed, c.Threads)
	if w.Star {
		key += "*"
	}
	if v, ok := reportCache.Load(key); ok {
		r := v.(runResult)
		return r.z, r.rep, nil
	}
	x := c.Tensor(w.Preset)
	cx, cy := w.ContractModes()
	z, rep, err := core.Contract(x, x, cx, cy, core.Options{
		Algorithm: alg,
		Kernel:    k,
		Threads:   c.Threads,
		Tracer:    c.Tracer,
		Metrics:   c.Metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	reportCache.Store(key, runResult{z, rep})
	return z, rep, nil
}
