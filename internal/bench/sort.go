package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// This file is the -exp sort duel (BENCH_2.json): the seed comparison
// quicksort vs the sortx radix engine on the stage-① X sort, and the seed
// unfused writeback+full-sort vs the sort-fused gather on stage ④+⑤.

// sortStageRow is one (workload, threads) cell of the stage-① sorter duel:
// both engines sort the same permuted-unsorted clone of the workload tensor.
type sortStageRow struct {
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	NNZ      int    `json:"nnz"`
	QuickNS  int64  `json:"quick_ns"`
	RadixNS  int64  `json:"radix_ns"`
	// Speedup = quick/radix wall time (>1 means radix wins).
	Speedup float64 `json:"speedup_quick_over_radix"`
	// Identical reports that both engines produced the same sorted tensor
	// (bitwise, stability included) and that it is in lexicographic order.
	Identical bool `json:"identical_output"`
}

// sortWritebackRow is one (workload, algorithm, threads) cell of the fused
// writeback duel. Unfused stage ⑤ is the full radix sort of Z; the fused
// path's residual stage ⑤ is the per-run LN(Fy) subsorts inside the gather.
type sortWritebackRow struct {
	Workload       string `json:"workload"`
	Algorithm      string `json:"algorithm"`
	Threads        int    `json:"threads"`
	NNZZ           int    `json:"nnzz"`
	UnfusedWriteNS int64  `json:"unfused_write_ns"`
	UnfusedSortNS  int64  `json:"unfused_sort_ns"`
	FusedWriteNS   int64  `json:"fused_write_ns"`
	FusedSubsortNS int64  `json:"fused_subsort_ns"`
	// SortRatio = fused residual sort over the unfused stage-⑤ sort; the
	// acceptance bar is <= 0.05 on the Sparta path.
	SortRatio float64 `json:"fused_sort_over_unfused"`
	// Speedup = unfused (write+sort) over fused (write, subsorts included).
	Speedup float64 `json:"speedup_write_plus_sort"`
	// Identical reports the fused Z equals the unfused-then-sorted Z bitwise.
	Identical bool `json:"identical_output"`
}

// sortDuelFile is the BENCH_2.json schema, under the shared Meta header
// all BENCH_*.json files carry.
type sortDuelFile struct {
	Meta      Meta               `json:"meta"`
	StageSort []sortStageRow     `json:"stage_sort"`
	Writeback []sortWritebackRow `json:"writeback"`
}

// sortDuelReps matches the kernels duel: min wall time across reps per cell.
const sortDuelReps = 3

// unsortedInput reproduces what stage ① actually sorts: the workload tensor
// after the contraction's free-modes-first permutation (generated tensors
// come out of gen pre-sorted; permuting un-sorts them).
func unsortedInput(c Config, wl gen.Workload) (*coo.Tensor, error) {
	x := c.Tensor(wl.Preset).Clone()
	cx, _ := wl.ContractModes()
	in := make([]bool, len(x.Dims))
	for _, m := range cx {
		in[m] = true
	}
	var perm []int
	for m := range x.Dims {
		if !in[m] {
			perm = append(perm, m)
		}
	}
	perm = append(perm, cx...)
	if err := x.Permute(perm); err != nil {
		return nil, err
	}
	return x, nil
}

// runSortCell sorts clones of base with one engine sortDuelReps times and
// returns the minimum wall time plus the (deterministic) sorted result.
func runSortCell(base *coo.Tensor, algo coo.SortAlgo, threads int) (int64, *coo.Tensor) {
	best := int64(math.MaxInt64)
	var out *coo.Tensor
	for rep := 0; rep < sortDuelReps; rep++ {
		t := base.Clone()
		t0 := time.Now()
		t.SortWith(threads, algo)
		if ns := int64(time.Since(t0)); ns < best {
			best = ns
		}
		out = t
	}
	return best, out
}

// runWritebackCell contracts one workload with the writeback variant selected
// by unfused, keeping per-stage minima across reps and the last output.
func runWritebackCell(c Config, wl gen.Workload, alg core.Algorithm, threads int, unfused bool) (writeNS, sortNS, subsortNS int64, z *coo.Tensor, err error) {
	x := c.Tensor(wl.Preset)
	cx, cy := wl.ContractModes()
	writeNS, sortNS, subsortNS = math.MaxInt64, math.MaxInt64, math.MaxInt64
	for rep := 0; rep < sortDuelReps; rep++ {
		var r *core.Report
		z, r, err = core.Contract(x, x, cx, cy, core.Options{
			Algorithm:        alg,
			Threads:          threads,
			UnfusedWriteback: unfused,
			Tracer:           c.Tracer,
			Metrics:          c.Metrics,
		})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		writeNS = min64(writeNS, int64(r.StageWall[core.StageWrite]))
		sortNS = min64(sortNS, int64(r.StageWall[core.StageSort]))
		subsortNS = min64(subsortNS, int64(r.SubsortWall))
	}
	return writeNS, sortNS, subsortNS, z, nil
}

// Sort runs the sort duel and prints the two tables; SortJSON adds the
// BENCH_2.json output.
func Sort(w io.Writer, c Config) error { return SortJSON(w, c, "") }

// SortJSON is Sort with an optional JSON output path.
func SortJSON(w io.Writer, c Config, jsonPath string) error {
	threadSweep := []int{1, 4, 8}
	if c.Threads > 0 {
		threadSweep = []int{c.Threads}
	}
	file := sortDuelFile{Meta: c.meta("sort", "synthetic Table-3 presets (NIPS, Uber, Vast), leading- and trailing-mode contractions", sortDuelReps)}

	// Stage-① sorter duel: quicksort (seed) vs radix on the permuted input.
	// Starred workloads contract the *leading* modes, so the free-modes-first
	// permutation genuinely scrambles the (pre-sorted) generated tensor —
	// with trailing-mode contractions the permutation is the identity and
	// both engines short-circuit on already-sorted input.
	stageWorkloads := []gen.Workload{
		{Preset: mustPreset("NIPS"), Modes: 2, Star: true},
		{Preset: mustPreset("Uber"), Modes: 3, Star: true},
		{Preset: mustPreset("Vast"), Modes: 2, Star: true},
	}
	fmt.Fprintf(w, "Sort duel: seed quicksort vs sortx radix on the stage-① X sort, %d reps/cell (min)\n", sortDuelReps)
	tab := stats.NewTable("Workload", "Threads", "NNZ", "Quick", "Radix", "Radix x")
	for _, wl := range stageWorkloads {
		base, err := unsortedInput(c, wl)
		if err != nil {
			return err
		}
		for _, threads := range threadSweep {
			quickNS, zq := runSortCell(base, coo.SortQuick, threads)
			radixNS, zr := runSortCell(base, coo.SortRadix, threads)
			row := sortStageRow{
				Workload:  wl.Name(),
				Threads:   threads,
				NNZ:       base.NNZ(),
				QuickNS:   quickNS,
				RadixNS:   radixNS,
				Speedup:   float64(quickNS) / float64(radixNS),
				Identical: zq.Equal(zr) && zr.IsSorted(),
			}
			if !row.Identical {
				return fmt.Errorf("sort: %s threads=%d: engines disagree", wl.Name(), threads)
			}
			file.StageSort = append(file.StageSort, row)
			tab.Row(wl.Name(), threads, row.NNZ,
				time.Duration(quickNS), time.Duration(radixNS),
				fmt.Sprintf("%.2fx", row.Speedup))
		}
	}
	tab.Render(w)

	// Writeback duel: seed unfused gather + full stage-⑤ sort vs the fused
	// gather, on the Sparta path plus one baseline accumulator.
	fmt.Fprintf(w, "\nWriteback duel: unfused gather + full Z sort vs sort-fused gather\n")
	wb := stats.NewTable("Workload", "Alg", "Threads", "NNZZ", "Unf write", "Unf sort", "Fus write", "Fus subsort", "5 ratio", "x")
	// Workloads with substantial per-sub runs, where stage ⑤ is a real cost
	// (Vast 1-Mode's unfused Z sort runs seconds at scale 20000). Shapes
	// whose output has ~2 non-zeros per sub-tensor (NIPS 2-Mode) keep a
	// larger residual — per-run call overhead — and are covered by the
	// equality property tests rather than the duel.
	wbCases := []struct {
		wl   gen.Workload
		algs []core.Algorithm
	}{
		{gen.Workload{Preset: mustPreset("Vast"), Modes: 2}, []core.Algorithm{core.AlgSparta, core.AlgCOOHtA}},
		{gen.Workload{Preset: mustPreset("Vast"), Modes: 1}, []core.Algorithm{core.AlgSparta}},
	}
	for _, wc := range wbCases {
		wl := wc.wl
		for _, alg := range wc.algs {
			for _, threads := range threadSweep {
				uw, us, _, zu, err := runWritebackCell(c, wl, alg, threads, true)
				if err != nil {
					return err
				}
				fw, _, fs, zf, err := runWritebackCell(c, wl, alg, threads, false)
				if err != nil {
					return err
				}
				row := sortWritebackRow{
					Workload:       wl.Name(),
					Algorithm:      alg.String(),
					Threads:        threads,
					NNZZ:           zf.NNZ(),
					UnfusedWriteNS: uw,
					UnfusedSortNS:  us,
					FusedWriteNS:   fw,
					FusedSubsortNS: fs,
					SortRatio:      float64(fs) / float64(us),
					Speedup:        float64(uw+us) / float64(fw),
					Identical:      zf.Equal(zu) && zf.IsSorted(),
				}
				if !row.Identical {
					return fmt.Errorf("sort: %s %v threads=%d: fused and unfused Z differ",
						wl.Name(), alg, threads)
				}
				file.Writeback = append(file.Writeback, row)
				wb.Row(wl.Name(), alg.String(), threads, row.NNZZ,
					time.Duration(uw), time.Duration(us),
					time.Duration(fw), time.Duration(fs),
					fmt.Sprintf("%.3f", row.SortRatio),
					fmt.Sprintf("%.2fx", row.Speedup))
			}
		}
	}
	wb.Render(w)
	fmt.Fprintln(w, "5 ratio = fused residual sort over unfused stage-⑤ sort; x = unfused (write+sort) / fused write.")

	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
