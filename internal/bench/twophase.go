package bench

import (
	"fmt"
	"io"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// TwoPhase compares Sparta's dynamic output allocation against the
// traditional symbolic+numeric two-phase SpTC (§3.2's rejected alternative
// [47]) across the Figure 4 workloads. The paper's argument: since
// applications compute each SpTC only once, the symbolic pass is pure
// overhead; the only thing it buys is eliminating the Zlocal buffers and
// the gather. Both columns of that trade are reported.
func TwoPhase(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Two-phase (symbolic+numeric) vs Sparta's dynamic allocation")
	tab := stats.NewTable("Workload", "Sparta", "TwoPhase", "Symbolic share", "Sparta slowdown", "Zlocal saved")
	var slow []float64
	for _, wl := range gen.Fig4Workloads() {
		_, repS, err := c.RunWorkload(wl, core.AlgSparta)
		if err != nil {
			return err
		}
		_, repT, err := c.RunWorkload(wl, core.AlgTwoPhase)
		if err != nil {
			return err
		}
		symShare := 0.0
		if t := repT.Total(); t > 0 {
			symShare = 100 * float64(repT.Symbolic) / float64(t)
		}
		s := stats.Speedup(repT.Total(), repS.Total())
		slow = append(slow, s)
		tab.Row(wl.Name(), repS.Total(), repT.Total(),
			fmt.Sprintf("%.1f%%", symShare),
			fmt.Sprintf("%.2fx", s),
			stats.FormatBytes(repS.BytesZLocal))
	}
	tab.Render(w)
	fmt.Fprintf(w, "Sparta over two-phase: geomean %.2fx (the symbolic pass re-runs the whole "+
		"search+accumulation structure; its payoff is only the Zlocal memory in the last column)\n",
		stats.GeoMean(slow))
	return nil
}
