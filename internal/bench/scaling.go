package bench

import (
	"fmt"
	"io"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// Scaling sweeps the dataset size and reports the Sparta-over-SpTC-SPA
// speedup at each scale. The paper's headline range (28–576×) is measured
// at full FROSTT scale (3–76 M non-zeros); the baseline's cost grows
// roughly quadratically in nnz while Sparta's grows linearly, so the
// speedup climbs with scale — this experiment makes that trend visible at
// laptop sizes and lets the reader extrapolate to the paper's operating
// point.
func Scaling(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Scaling: Sparta speedup over SpTC-SPA vs dataset size")
	workloads := []gen.Workload{
		{Preset: mustPreset("Chicago"), Modes: 1},
		{Preset: mustPreset("NIPS"), Modes: 2},
		{Preset: mustPreset("Uracil"), Modes: 3},
	}
	scales := []int{1000, 2000, 4000, 8000}
	if c.Scale > 8000 {
		scales = append(scales, c.Scale)
	}
	tab := stats.NewTable("Workload", "nnz", "SpTC-SPA", "Sparta", "Speedup", "SPA search steps", "HtY probes")
	for _, wl := range workloads {
		for _, sc := range scales {
			cfg := c
			cfg.Scale = sc
			_, repS, err := cfg.RunWorkload(wl, core.AlgSPA)
			if err != nil {
				return err
			}
			_, repH, err := cfg.RunWorkload(wl, core.AlgSparta)
			if err != nil {
				return err
			}
			tab.Row(wl.Name(), repS.NNZX, repS.Total(), repH.Total(),
				fmt.Sprintf("%.1fx", stats.Speedup(repS.Total(), repH.Total())),
				repS.SearchSteps+repS.SPACompares, repH.ProbesHtY)
		}
	}
	tab.Render(w)
	fmt.Fprintln(w, "(SPA search steps grow superlinearly in nnz; HtY probes stay ~ nnzX — the Eq. 3 vs Eq. 4 gap)")
	return nil
}
