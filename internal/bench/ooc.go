package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/engine"
	"sparta/internal/gen"
	"sparta/internal/parallel"
	"sparta/internal/stats"
)

// This file is the -exp ooc duel (BENCH_5.json): the out-of-core streaming
// driver contracting an mmap-backed X whose modeled hetmem footprint is
// several times the DRAM budget, against the in-memory driver on the same
// inputs as oracle. Each row asserts the streamed output is bitwise
// identical (Equal + checksum), so the duel doubles as the end-to-end proof
// that window-aligned streaming preserves the paper's exact pipeline.

// oocDuelRow is one kernel's streamed-vs-in-memory cell.
type oocDuelRow struct {
	Kernel string `json:"kernel"`
	NNZX   int    `json:"nnzx"`
	NNZY   int    `json:"nnzy"`
	// FootprintBytes is the Eq. 5/6 modeled demand of the unwindowed run;
	// BudgetBytes the DRAM budget the streamed run was planned into.
	FootprintBytes      uint64  `json:"footprint_bytes"`
	BudgetBytes         uint64  `json:"budget_bytes"`
	FootprintOverBudget float64 `json:"footprint_over_budget"`
	Tier                string  `json:"tier"`
	WindowNNZ           int     `json:"window_nnz"`
	Windows             int     `json:"windows"`
	SpilledZ            bool    `json:"spilled_z"`
	// ZeroCopyMmap reports the X file really streamed through an mmap view
	// (false only on hosts without mmap, where the heap fallback ran).
	ZeroCopyMmap bool `json:"zero_copy_mmap"`
	// Walls are minima over oocDuelReps; the streamed wall includes opening
	// the mapped file and the final run merge (or spill materialization).
	StreamedNS int64   `json:"streamed_ns"`
	InMemNS    int64   `json:"inmem_ns"`
	Slowdown   float64 `json:"slowdown_streamed_over_inmem"`
	NNZZ       int     `json:"nnzz"`
	Checksum   string  `json:"checksum"`
	// Identical reports the streamed tensor is bitwise equal to the
	// in-memory oracle (dims, coordinates, values, in order).
	Identical bool `json:"identical_output"`
}

// oocDuelFile is the BENCH_5.json schema.
type oocDuelFile struct {
	Meta    Meta         `json:"meta"`
	Configs []oocDuelRow `json:"configs"`
}

// oocDuelReps matches the other duels: min wall across reps per driver.
const oocDuelReps = 3

// oocBudgetDivisor sets the DRAM budget to footprint/5, so the modeled
// demand is 5x the budget — comfortably past the >=4x acceptance bar while
// keeping HtY (the one object that must fit whole) resident.
const oocBudgetDivisor = 5

// checksum is the shared 9-significant-digit output fingerprint: enough to
// prove two drivers computed the same result, insensitive to
// accumulation-order ULPs (which cannot occur here anyway — both drivers
// run the identical per-sub-tensor kernel).
func checksum(z *coo.Tensor) string {
	sum := 0.0
	for _, v := range z.Vals {
		sum += math.Abs(v)
	}
	return fmt.Sprintf("%.9e", sum)
}

// OOC runs the out-of-core streaming duel (no JSON output).
func OOC(w io.Writer, c Config) error { return OOCJSON(w, c, "") }

// OOCJSON is the -exp ooc duel. X is written as a sorted v2 SPTN file in
// contraction order (free modes first), reopened as an mmap view, and
// contracted window by window under a DRAM budget one fifth of the modeled
// footprint; the in-memory driver on the original heap tensor is the
// oracle. Both hash kernels run. When jsonPath is non-empty the rows are
// written there (BENCH_5.json).
func OOCJSON(w io.Writer, c Config, jsonPath string) error {
	threads := c.Threads
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	scale := c.Scale
	if scale < 4000 {
		scale = 4000
	}
	// X: mode 0 is a wide free mode (many sub-tensor boundaries to cut
	// windows at), last mode is the contracted one — already in the
	// streaming driver's free-first order, so the file is exactly what
	// Mapped.Stream walks. Y is small: the whole point of the tier is that
	// HtY stays resident while everything else is windowed.
	nnzX := 4 * scale
	x := gen.Random([]uint64{2048, 48, 64}, nnzX, c.Seed)
	y := gen.Random([]uint64{64, 32}, scale/2+64, c.Seed+1)
	cmodesX, cmodesY := []int{2}, []int{0}

	dir, err := os.MkdirTemp("", "sptc-ooc-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	xPath := filepath.Join(dir, "x.sptn")
	xs := x.Clone()
	xs.Sort(threads)
	if err := xs.SaveBinV2(xPath); err != nil {
		return err
	}

	fmt.Fprintf(w, "Out-of-core duel: mmap-streamed vs in-memory, footprint %dx the DRAM budget, %d reps (min)\n",
		oocBudgetDivisor, oocDuelReps)
	file := oocDuelFile{Meta: c.meta("ooc",
		fmt.Sprintf("synthetic X 2048x48x64 (nnz=%d) x Y 64x32 (nnz=%d), contract X mode 2 vs Y mode 0, budget=footprint/%d",
			x.NNZ(), y.NNZ(), oocBudgetDivisor), oocDuelReps)}
	tab := stats.NewTable("Kernel", "Footprint", "Budget", "Window", "Windows", "SpillZ", "Streamed", "InMem", "Slowdown", "NNZZ", "Identical")

	for _, k := range []core.Kernel{core.KernelFlat, core.KernelChained} {
		opt := core.Options{
			Algorithm: core.AlgSparta,
			Kernel:    k,
			Threads:   threads,
			Tracer:    c.Tracer,
			Metrics:   c.Metrics,
		}
		pr, err := core.PrepareY(y, cmodesY, opt)
		if err != nil {
			return fmt.Errorf("ooc: prepare (%v): %w", k, err)
		}
		fp := engine.EstimateFootprint(x.NNZ(), pr)
		budget := fp.Total(threads) / oocBudgetDivisor
		adm := engine.Admission{DRAMBudget: budget}
		tier, res := adm.Plan(fp, threads, x.NNZ(), 0)
		if tier != engine.TierStreamed {
			return fmt.Errorf("ooc: planned tier %v under budget %d (footprint %d), want streamed — dataset too small for the duel",
				tier, budget, fp.Total(threads))
		}

		// Oracle: the in-memory driver on the original heap tensor.
		var zMem *coo.Tensor
		var memWall int64
		for rep := 0; rep < oocDuelReps; rep++ {
			t0 := time.Now()
			z, _, err := pr.Contract(context.Background(), x, cmodesX, opt)
			if err != nil {
				return fmt.Errorf("ooc: in-memory (%v): %w", k, err)
			}
			wall := int64(time.Since(t0))
			if rep == 0 || wall < memWall {
				memWall = wall
			}
			if zMem != nil && !z.Equal(zMem) {
				return fmt.Errorf("ooc: in-memory (%v): unstable output across reps", k)
			}
			zMem = z
		}

		// Streamed: reopen the mapped file each rep so the wall charges the
		// whole tier — open, window walk, and run merge/materialization.
		var zStr *coo.Tensor
		var strWall int64
		var row oocDuelRow
		for rep := 0; rep < oocDuelReps; rep++ {
			t0 := time.Now()
			m, err := coo.OpenMapped(xPath)
			if err != nil {
				return fmt.Errorf("ooc: open mapped (%v): %w", k, err)
			}
			st, err := m.Stream(res.WindowNNZ)
			if err != nil {
				return fmt.Errorf("ooc: stream (%v): %w", k, err)
			}
			z, rep2, err := core.ContractStream(context.Background(), st, pr, core.StreamOptions{
				Options:  opt,
				SpillZ:   res.SpillZ,
				SpillDir: dir,
			})
			if err != nil {
				return fmt.Errorf("ooc: streamed (%v): %w", k, err)
			}
			wall := int64(time.Since(t0))
			if rep == 0 || wall < strWall {
				strWall = wall
			}
			if zStr != nil && !z.Equal(zStr) {
				return fmt.Errorf("ooc: streamed (%v): unstable output across reps", k)
			}
			zStr = z
			row.Windows = rep2.Windows
			row.SpilledZ = rep2.SpilledZ
			row.ZeroCopyMmap = m.ZeroCopy()
			// A spilled Z is a view into the materialized output file; the
			// mapped X can be closed, the Z mapping keeps itself alive.
			_ = m.Close()
		}

		row.Kernel = k.String()
		row.NNZX = x.NNZ()
		row.NNZY = y.NNZ()
		row.FootprintBytes = fp.Total(threads)
		row.BudgetBytes = budget
		row.FootprintOverBudget = float64(fp.Total(threads)) / float64(budget)
		row.Tier = tier.String()
		row.WindowNNZ = res.WindowNNZ
		row.StreamedNS = strWall
		row.InMemNS = memWall
		row.Slowdown = float64(strWall) / float64(memWall)
		row.NNZZ = zStr.NNZ()
		row.Checksum = checksum(zStr)
		row.Identical = zStr.Equal(zMem) && row.Checksum == checksum(zMem)
		if !row.Identical {
			return fmt.Errorf("ooc: %v: streamed output differs from in-memory oracle (nnz %d vs %d, checksum %s vs %s)",
				k, zStr.NNZ(), zMem.NNZ(), row.Checksum, checksum(zMem))
		}
		if row.Windows < 2 {
			return fmt.Errorf("ooc: %v: streamed run used %d window(s) — not an out-of-core execution", k, row.Windows)
		}
		file.Configs = append(file.Configs, row)
		tab.Row(row.Kernel, row.FootprintBytes, row.BudgetBytes, row.WindowNNZ, row.Windows,
			row.SpilledZ, time.Duration(strWall), time.Duration(memWall),
			fmt.Sprintf("%.2fx", row.Slowdown), row.NNZZ, row.Identical)
	}
	tab.Render(w)
	fmt.Fprintln(w, "Slowdown = streamed wall / in-memory wall (streamed includes mmap open and run merge).")
	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
