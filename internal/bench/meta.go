package bench

import (
	"runtime"
	"runtime/debug"
)

// Meta is the shared metadata block every committed BENCH_*.json carries,
// so runs are comparable across machines and commits without guessing at
// the regime they were produced under. One schema for every duel file:
//
//	{"meta": {...}, <duel-specific row arrays>}
type Meta struct {
	// Bench names the experiment ("kernels", "sort", "planner").
	Bench string `json:"bench"`
	// Commit is the git revision the run was built from (sptc-bench
	// -commit, which the Makefile wires to `git rev-parse --short HEAD`;
	// falls back to the toolchain's stamped vcs.revision when present).
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the process's scheduler width at run time — the cap on
	// every -t sweep in the rows.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Scale and Seed are the generator regime shared by all rows.
	Scale int   `json:"scale"`
	Seed  int64 `json:"seed"`
	// Reps is the per-cell repetition count (cells keep min-of-reps walls).
	Reps int `json:"reps"`
	// Dataset describes what the rows contract.
	Dataset string `json:"dataset"`
}

// meta assembles the block for one duel run.
func (c Config) meta(bench, dataset string, reps int) Meta {
	commit := c.Commit
	if commit == "" {
		commit = vcsRevision()
	}
	return Meta{
		Bench:      bench,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      c.Scale,
		Seed:       c.Seed,
		Reps:       reps,
		Dataset:    dataset,
	}
}

// vcsRevision reads the build-info VCS stamp (present in `go build` from a
// clean checkout, absent under `go run`), abbreviated like git's default.
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}
