package bench

import (
	"fmt"
	"io"
	"time"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/hashtab"
	"sparta/internal/stats"
)

// Ablation exercises the design choices DESIGN.md calls out:
//
//  1. Y input processing: COO sort (O(n log n)) vs hash-table build (O(n)) —
//     §3.3's claimed input-processing win.
//  2. Accumulator: SPA vs HtA vs a plain Go map — §3.4's choice of a
//     custom chained table.
//  3. HtY bucket load factor: buckets = nnz_Y/4 … 4*nnz_Y.
func Ablation(w io.Writer, c Config) error {
	p := mustPreset("NIPS")
	y := c.Tensor(p)
	wl := gen.Workload{Preset: p, Modes: 2}
	cx, cy := wl.ContractModes()

	// --- 1. Y build: sort vs hash -------------------------------------
	fmt.Fprintln(w, "Ablation 1: Y input processing (sort vs COO-to-hashtable)")
	{
		tab := stats.NewTable("Approach", "Time")
		t0 := time.Now()
		ys := y.Clone()
		_ = ys.Permute(append(append([]int{}, cy...), freeModes(y.Order(), cy)...))
		ys.Sort(c.Threads)
		tab.Row("permute+sort (COOY)", time.Since(t0))

		radC, _ := y.RadixOf(cy)
		fmodes := freeModes(y.Order(), cy)
		radF, _ := y.RadixOf(fmodes)
		t0 = time.Now()
		hashtab.BuildHtY(y, cy, fmodes, radC, radF, 0, c.Threads)
		tab.Row("COO-to-HtY build (locked)", time.Since(t0))
		t0 = time.Now()
		hashtab.BuildHtY2P(y, cy, fmodes, radC, radF, 0, c.Threads)
		tab.Row("COO-to-HtY build (two-pass)", time.Since(t0))
		t0 = time.Now()
		hashtab.BuildHtYFlat(y, cy, fmodes, radC, radF, 0, c.Threads)
		tab.Row("COO-to-HtYFlat build (flat, lock-free)", time.Since(t0))
		tab.Render(w)
	}

	// --- 2. Accumulator choice ----------------------------------------
	fmt.Fprintln(w, "\nAblation 2: accumulator microbenchmark (one large sub-tensor's adds)")
	{
		// Replay a realistic accumulation key stream: the products of the
		// first big contraction sub-tensor.
		keys := accumKeyStream(c, wl, 200000)
		tab := stats.NewTable("Accumulator", "Adds", "Time", "ns/add")
		// Tables are constructed outside the timed region: the contraction
		// reuses one accumulator per thread across all sub-tensors, so
		// construction is not part of the per-add cost being compared.
		hta := hashtab.NewHtA(1024)
		t0 := time.Now()
		for _, k := range keys {
			hta.Add(k, 1)
		}
		dt := time.Since(t0)
		tab.Row("HtA (chained table)", len(keys), dt, fmt.Sprintf("%.1f", float64(dt.Nanoseconds())/float64(len(keys))))

		htaf := hashtab.NewHtAFlat(1024)
		t0 = time.Now()
		for _, k := range keys {
			htaf.Add(k, 1)
		}
		dt = time.Since(t0)
		tab.Row("HtAFlat (open addressing)", len(keys), dt, fmt.Sprintf("%.1f", float64(dt.Nanoseconds())/float64(len(keys))))

		m := make(map[uint64]float64, 1024)
		t0 = time.Now()
		for _, k := range keys {
			m[k] += 1
		}
		dt = time.Since(t0)
		tab.Row("Go map", len(keys), dt, fmt.Sprintf("%.1f", float64(dt.Nanoseconds())/float64(len(keys))))

		// SPA on the same stream (LN keys as 1-wide tuples); cap the adds
		// so the O(n^2) baseline finishes.
		spaKeys := keys
		if len(spaKeys) > 20000 {
			spaKeys = spaKeys[:20000]
		}
		t0 = time.Now()
		sp := newSPA1()
		for _, k := range spaKeys {
			sp.add(uint32(k), 1)
		}
		dt = time.Since(t0)
		tab.Row("SPA (linear scan)", len(spaKeys), dt, fmt.Sprintf("%.1f", float64(dt.Nanoseconds())/float64(len(spaKeys))))
		tab.Render(w)
	}

	// --- 3. Bucket load factor ----------------------------------------
	// Pinned to the chained kernel: only separate chaining supports bucket
	// counts below the key count (the flat kernel clamps them so its
	// open-addressed probes terminate, which would flatten the sweep).
	fmt.Fprintln(w, "\nAblation 3: HtY bucket count sweep (NIPS 2-mode contraction, chained kernel)")
	{
		x := c.Tensor(p)
		tab := stats.NewTable("Buckets", "Search+Accum", "Total")
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
			buckets := int(float64(y.NNZ()) * mult)
			if buckets < 1 {
				buckets = 1
			}
			_, rep, err := core.Contract(x, x, cx, cy, core.Options{
				Algorithm:  core.AlgSparta,
				Kernel:     core.KernelChained,
				Threads:    c.Threads,
				BucketsHtY: buckets,
				Tracer:     c.Tracer,
				Metrics:    c.Metrics,
			})
			if err != nil {
				return err
			}
			tab.Row(fmt.Sprintf("%.2gx nnzY", mult),
				rep.StageWall[core.StageSearch]+rep.StageWall[core.StageAccum], rep.Total())
		}
		tab.Render(w)
	}
	return nil
}

// accumKeyStream extracts the HtA key stream of a workload's largest
// sub-tensor by re-running the products.
func accumKeyStream(c Config, wl gen.Workload, cap int) []uint64 {
	x := c.Tensor(wl.Preset)
	cx, cy := wl.ContractModes()
	fmodes := freeModes(x.Order(), cy)
	radC, _ := x.RadixOf(cx)
	radF, _ := x.RadixOf(fmodes)
	hty := hashtab.BuildHtY(x, cy, fmodes, radC, radF, 0, c.Threads)
	xs := x.Clone()
	_ = xs.Permute(permFor(x.Order(), cx))
	xs.Sort(c.Threads)
	nfx := x.Order() - len(cx)
	cCols := xs.Inds[nfx:]
	keys := make([]uint64, 0, cap)
	for i := 0; i < xs.NNZ() && len(keys) < cap; i++ {
		items, _ := hty.Lookup(radC.EncodeStrided(cCols, i))
		for _, it := range items {
			if len(keys) == cap {
				break
			}
			keys = append(keys, it.LNFree)
		}
	}
	return keys
}

// permFor builds the free-first (contract-last) permutation used for X.
func permFor(order int, cmodes []int) []int {
	in := make([]bool, order)
	for _, m := range cmodes {
		in[m] = true
	}
	var perm []int
	for m := 0; m < order; m++ {
		if !in[m] {
			perm = append(perm, m)
		}
	}
	return append(perm, cmodes...)
}

// freeModes lists the modes not in cmodes.
func freeModes(order int, cmodes []int) []int {
	in := make([]bool, order)
	for _, m := range cmodes {
		in[m] = true
	}
	var out []int
	for m := 0; m < order; m++ {
		if !in[m] {
			out = append(out, m)
		}
	}
	return out
}

// spa1 is a 1-wide SPA used by the accumulator ablation (package spa's
// tuple SPA with stride 1, inlined here to keep the hot loop comparable).
type spa1 struct {
	keys []uint32
	vals []float64
}

func newSPA1() *spa1 { return &spa1{} }

func (s *spa1) add(k uint32, v float64) {
	for i, kk := range s.keys {
		if kk == k {
			s.vals[i] += v
			return
		}
	}
	s.keys = append(s.keys, k)
	s.vals = append(s.vals, v)
}
