package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"sparta"
	"sparta/internal/stats"
)

// This file is the -exp planner duel (BENCH_3.json): CCSD-style 4–6 step
// contraction networks evaluated in their written (naive) order vs the
// cost-based planner's order. Tensors carry small positive integer values,
// so every product and partial sum is exact in float64 and any contraction
// order must produce a bitwise-identical final tensor — which the duel
// asserts per row (identical_output).

// plannerDuelRow is one network's naive-vs-planned cell.
type plannerDuelRow struct {
	Network string `json:"network"`
	Steps   int    `json:"steps"`
	// Planned is false when the planner kept the written order (the
	// control network); Reason says why.
	Planned      bool   `json:"planned"`
	Reason       string `json:"reason,omitempty"`
	NaiveOrder   string `json:"naive_order"`
	PlannedOrder string `json:"planned_order"`
	// Model estimates (ns) the decision was made on.
	NaiveCostNS   float64 `json:"naive_cost_ns"`
	PlannedCostNS float64 `json:"planned_cost_ns"`
	// Measured end-to-end chain walls, min over reps; the planned wall
	// includes the planning pass itself (stats, estimator, DP).
	NaiveNS   int64 `json:"naive_ns"`
	PlannedNS int64 `json:"planned_ns"`
	// Speedup = naive/planned measured wall (>1 means planning won).
	Speedup float64 `json:"speedup_naive_over_planned"`
	// Measured work the model predicts: total products and the largest
	// intermediate nnz, both orders.
	NaiveProducts   uint64 `json:"naive_products"`
	PlannedProducts uint64 `json:"planned_products"`
	NaivePeakNNZ    int    `json:"naive_peak_nnz"`
	PlannedPeakNNZ  int    `json:"planned_peak_nnz"`
	// Identical reports the two final tensors are bitwise equal.
	Identical bool `json:"identical_output"`
}

// plannerDuelFile is the BENCH_3.json schema.
type plannerDuelFile struct {
	Meta     Meta             `json:"meta"`
	Networks []plannerDuelRow `json:"networks"`
}

// plannerDuelReps matches the other duels: min wall across reps per order.
const plannerDuelReps = 3

// plannerNetwork is one duel case: a named chain over named inputs.
type plannerNetwork struct {
	name    string
	steps   []sparta.ChainStep
	tensors map[string]*sparta.Tensor
}

// intValued replaces a tensor's values with small positive integers, making
// contraction arithmetic exact under any association order.
func intValued(t *sparta.Tensor) *sparta.Tensor {
	for i := range t.Vals {
		t.Vals[i] = float64(1 + i%3)
	}
	return t
}

// plannerNetworks builds the duel lineup, scaled by c.Scale (the big
// tensors' nnz). The written orders are adversarial on the first two
// networks — the largest tensors contract first, inflating every
// intermediate — and already optimal on the control.
func plannerNetworks(c Config) []plannerNetwork {
	scale := c.Scale
	if scale < 400 {
		scale = 400
	}
	seed := c.Seed

	// mc5-badorder: a 5-matrix chain written left-associated; the tiny last
	// matrix (4-wide) collapses everything, so the right association is
	// orders of magnitude cheaper.
	dim := uint64(60)
	mc5 := plannerNetwork{
		name: "mc5-badorder",
		steps: []sparta.ChainStep{
			{Out: "P1", Spec: "ab,bc->ac", X: "M1", Y: "M2"},
			{Out: "P2", Spec: "ac,cd->ad", X: "P1", Y: "M3"},
			{Out: "P3", Spec: "ad,de->ae", X: "P2", Y: "M4"},
			{Out: "Z", Spec: "ae,ef->af", X: "P3", Y: "M5"},
		},
		tensors: map[string]*sparta.Tensor{
			"M1": intValued(sparta.Random([]uint64{dim, dim}, scale, seed)),
			"M2": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+1)),
			"M3": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+2)),
			"M4": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+3)),
			"M5": intValued(sparta.Random([]uint64{dim, 4}, scale/50+8, seed+4)),
		},
	}

	// ccsd-badorder: CCSD-flavored — an order-4 amplitude tensor T[abij]
	// threaded through four mid-size integral matrices and a tiny
	// occupancy-like Q[di] that eliminates both remaining non-output modes.
	// Written so T (the big tensor) contracts first; the planner should
	// collapse from the Q end instead.
	d2 := uint64(24)
	ccsd := plannerNetwork{
		name: "ccsd-badorder",
		steps: []sparta.ChainStep{
			{Out: "W1", Spec: "abij,jk->abik", X: "T", Y: "V"},
			{Out: "W2", Spec: "abik,kl->abil", X: "W1", Y: "U"},
			{Out: "W3", Spec: "abil,lc->abic", X: "W2", Y: "S"},
			{Out: "W4", Spec: "abic,cd->abid", X: "W3", Y: "R"},
			{Out: "Z", Spec: "abid,di->ab", X: "W4", Y: "Q"},
		},
		tensors: map[string]*sparta.Tensor{
			"T": intValued(sparta.Random([]uint64{d2, d2, d2, d2}, 2*scale, seed+10)),
			"V": intValued(sparta.Random([]uint64{d2, d2}, scale/4+16, seed+11)),
			"U": intValued(sparta.Random([]uint64{d2, d2}, scale/4+16, seed+12)),
			"S": intValued(sparta.Random([]uint64{d2, d2}, scale/4+16, seed+13)),
			"R": intValued(sparta.Random([]uint64{d2, d2}, scale/4+16, seed+14)),
			"Q": intValued(sparta.Random([]uint64{d2, d2}, 20, seed+15)),
		},
	}

	// mc4-goodorder: the control — the same collapse-first shape already
	// written optimally. The planner must keep it (planned=false) and the
	// duel still asserts bitwise-identical execution.
	good := plannerNetwork{
		name: "mc4-goodorder",
		steps: []sparta.ChainStep{
			{Out: "P1", Spec: "cd,de->ce", X: "N3", Y: "N4"},
			{Out: "P2", Spec: "bc,ce->be", X: "N2", Y: "P1"},
			{Out: "Z", Spec: "ab,be->ae", X: "N1", Y: "P2"},
		},
		tensors: map[string]*sparta.Tensor{
			"N1": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+20)),
			"N2": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+21)),
			"N3": intValued(sparta.Random([]uint64{dim, dim}, scale, seed+22)),
			"N4": intValued(sparta.Random([]uint64{dim, 4}, scale/50+8, seed+23)),
		},
	}

	return []plannerNetwork{mc5, ccsd, good}
}

// runChainCell evaluates one network under one planner mode plannerDuelReps
// times, returning the final tensor, min wall, total products, and the
// largest intermediate nnz.
func runChainCell(c Config, n plannerNetwork, mode sparta.Planner) (*sparta.Tensor, int64, uint64, int, error) {
	opt := sparta.Options{
		Algorithm: sparta.AlgSparta,
		Threads:   c.Threads,
		Planner:   mode,
		Tracer:    c.Tracer,
		Metrics:   c.Metrics,
	}
	var z *sparta.Tensor
	var wall int64
	var products uint64
	var peak int
	for rep := 0; rep < plannerDuelReps; rep++ {
		t0 := time.Now()
		res, err := sparta.EvalChain(n.steps, n.tensors, opt)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("%s (%v): %w", n.name, mode, err)
		}
		w := int64(time.Since(t0))
		if rep == 0 || w < wall {
			wall = w
		}
		products, peak = 0, 0
		for _, r := range res.Reports {
			products += r.Products
			if r.NNZZ > peak {
				peak = r.NNZZ
			}
		}
		z = res.Tensors[n.steps[len(n.steps)-1].Out]
	}
	return z, wall, products, peak, nil
}

// Planner runs the contraction-order duel (no JSON output).
func Planner(w io.Writer, c Config) error { return PlannerJSON(w, c, "") }

// PlannerJSON is the -exp planner duel: each network runs in written order
// (PlannerOff) and planned order (PlannerAuto); walls, work, and output
// identity are compared. When jsonPath is non-empty the rows are written
// there (BENCH_3.json).
func PlannerJSON(w io.Writer, c Config, jsonPath string) error {
	fmt.Fprintf(w, "Contraction-order planner duel: written order vs cost-based plan, %d reps (min)\n", plannerDuelReps)
	file := plannerDuelFile{Meta: c.meta("planner", "synthetic CCSD-style chains, integer-valued (exact arithmetic)", plannerDuelReps)}
	tab := stats.NewTable("Network", "Steps", "Planned order", "Naive", "Planned", "Speedup", "Products n/p", "Identical")
	for _, n := range plannerNetworks(c) {
		pr, err := sparta.PlanChain(n.steps, n.tensors, sparta.Options{Threads: c.Threads})
		if err != nil {
			return fmt.Errorf("planner: %s: %w", n.name, err)
		}
		zn, nWall, nProd, nPeak, err := runChainCell(c, n, sparta.PlannerOff)
		if err != nil {
			return err
		}
		zp, pWall, pProd, pPeak, err := runChainCell(c, n, sparta.PlannerAuto)
		if err != nil {
			return err
		}
		row := plannerDuelRow{
			Network:         n.name,
			Steps:           len(n.steps),
			Planned:         pr.Planned,
			Reason:          pr.Reason,
			NaiveOrder:      pr.NaiveOrder,
			PlannedOrder:    pr.Order,
			NaiveCostNS:     pr.NaiveCostNS,
			PlannedCostNS:   pr.PlannedCostNS,
			NaiveNS:         nWall,
			PlannedNS:       pWall,
			Speedup:         float64(nWall) / float64(pWall),
			NaiveProducts:   nProd,
			PlannedProducts: pProd,
			NaivePeakNNZ:    nPeak,
			PlannedPeakNNZ:  pPeak,
			Identical:       zn.Equal(zp),
		}
		if !pr.Planned {
			row.PlannedOrder = pr.NaiveOrder
		}
		if !row.Identical {
			return fmt.Errorf("planner: %s: planned output differs from written order (nnz %d vs %d)",
				n.name, zp.NNZ(), zn.NNZ())
		}
		file.Networks = append(file.Networks, row)
		tab.Row(n.name, len(n.steps), row.PlannedOrder,
			time.Duration(nWall), time.Duration(pWall),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d/%d", nProd, pProd),
			row.Identical)
	}
	tab.Render(w)
	fmt.Fprintln(w, "Speedup = written-order wall / planned wall (planned includes the planning pass).")
	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
