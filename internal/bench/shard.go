package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/dist"
	"sparta/internal/gen"
	"sparta/internal/parallel"
	"sparta/internal/stats"
)

// This file is the -exp shard duel (BENCH_6.json): the sharded
// scatter/gather path (partition X by hashed free-mode tuples → contract
// each shard against the replicated prepared Y → merge the sorted runs)
// against the one-shot contraction on the same inputs. Every row asserts the
// merged output is bitwise identical (Equal + checksum), so the duel doubles
// as the macro-scale proof behind the internal/dist oracle suite.
//
// Two walls are reported per cell:
//
//   - scaleout_ns models the S-worker fleet: partition + max(per-shard
//     serial wall) + merge. The per-shard contractions are timed one at a
//     time, so the model holds on any host — including the single-core CI
//     boxes this duel runs on — the way the paper's Fig. 6 CPU-sum column
//     simulates its platforms.
//   - measured_ns is the real coordinator wall with S in-process executors.
//     On a single core the concurrent legs serialize and this lands near the
//     one-shot wall (plus partition+merge overhead); on an S-core host it
//     approaches the modeled wall.
type shardDuelRow struct {
	Kernel string `json:"kernel"`
	Shards int    `json:"shards"`
	NNZX   int    `json:"nnzx"`
	NNZY   int    `json:"nnzy"`
	NNZZ   int    `json:"nnzz"`
	// ShardBalance is max shard nnzx over the perfect nnzx/S split (1.0 =
	// perfectly balanced hash partition).
	ShardBalance float64 `json:"shard_balance"`
	PartitionNS  int64   `json:"partition_ns"`
	MaxShardNS   int64   `json:"max_shard_ns"`
	MergeNS      int64   `json:"merge_ns"`
	ScaleoutNS   int64   `json:"scaleout_ns"`
	MeasuredNS   int64   `json:"measured_ns"`
	OneshotNS    int64   `json:"oneshot_ns"`
	// SpeedupScaleout = oneshot / scaleout: the modeled S-worker speedup.
	SpeedupScaleout float64 `json:"speedup_scaleout"`
	SpeedupMeasured float64 `json:"speedup_measured"`
	Checksum        string  `json:"checksum"`
	// Identical: merged sharded Z is bitwise equal to the one-shot Z.
	Identical bool `json:"identical_output"`
}

type shardDuelFile struct {
	Meta    Meta           `json:"meta"`
	Configs []shardDuelRow `json:"configs"`
}

const shardDuelReps = 3

// shardMinSpeedup is the acceptance bar: the modeled 4-shard fleet must be
// at least this much faster than one-shot on both kernels.
const shardMinSpeedup = 1.5

// Shard runs the sharded scatter/gather duel (no JSON output).
func Shard(w io.Writer, c Config) error { return ShardJSON(w, c, "") }

// ShardJSON is the -exp shard duel. Both hash kernels run across
// S ∈ {1,2,4,8}; when jsonPath is non-empty the rows are written there
// (BENCH_6.json).
func ShardJSON(w io.Writer, c Config, jsonPath string) error {
	threads := c.Threads
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	scale := c.Scale
	if scale < 4000 {
		scale = 4000
	}
	// X: two free modes (512x48 = 24.5k free tuples hash-partition evenly,
	// ~6 nnz each so accumulation is heavy and Z stays far smaller than the
	// product count), last mode contracted against a small replicated Y —
	// the shape the scatter/gather path exists for: X dominates, Y rides the
	// plan cache, and per-shard contraction work dwarfs the run merge.
	x := gen.Random([]uint64{512, 48, 64}, 8*scale, c.Seed)
	y := gen.Random([]uint64{64, 48}, scale/2+64, c.Seed+1)
	cmodesX, cmodesY := []int{2}, []int{0}

	fmt.Fprintf(w, "Shard duel: scatter/gather vs one-shot, %d reps (min); scaleout = partition + max shard + merge\n",
		shardDuelReps)
	file := shardDuelFile{Meta: c.meta("shard",
		fmt.Sprintf("synthetic X 512x48x64 (nnz=%d) x Y 64x48 (nnz=%d), contract X mode 2 vs Y mode 0",
			x.NNZ(), y.NNZ()), shardDuelReps)}
	tab := stats.NewTable("Kernel", "S", "Balance", "Partition", "MaxShard", "Merge", "Scaleout", "Measured", "Oneshot", "Speedup", "Identical")

	for _, k := range []core.Kernel{core.KernelFlat, core.KernelChained} {
		opt := core.Options{
			Algorithm: core.AlgSparta,
			Kernel:    k,
			Threads:   threads,
			Tracer:    c.Tracer,
			Metrics:   c.Metrics,
		}
		// One warm prepared Y for the whole kernel: sharding replicates the
		// plan, so neither side charges the HtY build.
		pr, err := core.PrepareY(y, cmodesY, opt)
		if err != nil {
			return fmt.Errorf("shard: prepare (%v): %w", k, err)
		}
		zdims := append([]uint64{}, x.Dims[0], x.Dims[1], y.Dims[1])

		var zOne *coo.Tensor
		var oneWall int64
		for rep := 0; rep < shardDuelReps; rep++ {
			t0 := time.Now()
			z, _, err := pr.Contract(context.Background(), x, cmodesX, opt)
			if err != nil {
				return fmt.Errorf("shard: one-shot (%v): %w", k, err)
			}
			wall := int64(time.Since(t0))
			if rep == 0 || wall < oneWall {
				oneWall = wall
			}
			if zOne != nil && !z.Equal(zOne) {
				return fmt.Errorf("shard: one-shot (%v): unstable output across reps", k)
			}
			zOne = z
		}

		for _, S := range []int{1, 2, 4, 8} {
			names := make([]string, S)
			for i := range names {
				names[i] = fmt.Sprintf("shard-%d", i)
			}
			ring, err := dist.NewRing(names, 0)
			if err != nil {
				return err
			}

			var row shardDuelRow
			var parts []*coo.Tensor
			for rep := 0; rep < shardDuelReps; rep++ {
				t0 := time.Now()
				p, err := dist.Partition(x, cmodesX, ring, threads)
				if err != nil {
					return fmt.Errorf("shard: partition (%v, S=%d): %w", k, S, err)
				}
				wall := int64(time.Since(t0))
				if rep == 0 || wall < row.PartitionNS {
					row.PartitionNS = wall
				}
				parts = p
			}
			maxNNZ := 0
			for _, p := range parts {
				if p.NNZ() > maxNNZ {
					maxNNZ = p.NNZ()
				}
			}
			row.ShardBalance = float64(maxNNZ) * float64(S) / float64(x.NNZ())

			// Per-shard serial walls against the warm replicated plan: the
			// modeled fleet wall is the slowest leg.
			runs := make([]*coo.Tensor, len(parts))
			for s, p := range parts {
				if p.NNZ() == 0 {
					continue
				}
				var shardWall int64
				for rep := 0; rep < shardDuelReps; rep++ {
					t0 := time.Now()
					z, _, err := pr.Contract(context.Background(), p, cmodesX, opt)
					if err != nil {
						return fmt.Errorf("shard: shard %d (%v, S=%d): %w", s, k, S, err)
					}
					wall := int64(time.Since(t0))
					if rep == 0 || wall < shardWall {
						shardWall = wall
					}
					runs[s] = z
				}
				if shardWall > row.MaxShardNS {
					row.MaxShardNS = shardWall
				}
			}

			var zMerged *coo.Tensor
			for rep := 0; rep < shardDuelReps; rep++ {
				t0 := time.Now()
				z, err := coo.MergeRuns(zdims, runs)
				if err != nil {
					return fmt.Errorf("shard: merge (%v, S=%d): %w", k, S, err)
				}
				wall := int64(time.Since(t0))
				if rep == 0 || wall < row.MergeNS {
					row.MergeNS = wall
				}
				zMerged = z
			}

			// Measured wall: the real coordinator over S in-process shards,
			// warmed so every shard's plan cache holds the HtY.
			execs := make([]dist.Executor, S)
			for i := range execs {
				execs[i] = dist.NewLocal(names[i], dist.LocalConfig{})
			}
			coord, err := dist.NewCoordinator(dist.Config{Executors: execs})
			if err != nil {
				return err
			}
			var zCoord *coo.Tensor
			var measured int64
			for rep := 0; rep < shardDuelReps+1; rep++ {
				t0 := time.Now()
				z, _, err := coord.Contract(context.Background(), x, y, cmodesX, cmodesY, opt)
				if err != nil {
					return fmt.Errorf("shard: coordinator (%v, S=%d): %w", k, S, err)
				}
				if rep == 0 {
					continue // warm-up: first pass builds every shard's HtY
				}
				wall := int64(time.Since(t0))
				if rep == 1 || wall < measured {
					measured = wall
				}
				zCoord = z
			}
			_ = coord.Close()

			row.Kernel = k.String()
			row.Shards = S
			row.NNZX = x.NNZ()
			row.NNZY = y.NNZ()
			row.NNZZ = zMerged.NNZ()
			row.ScaleoutNS = row.PartitionNS + row.MaxShardNS + row.MergeNS
			row.MeasuredNS = measured
			row.OneshotNS = oneWall
			row.SpeedupScaleout = float64(oneWall) / float64(row.ScaleoutNS)
			row.SpeedupMeasured = float64(oneWall) / float64(measured)
			row.Checksum = checksum(zMerged)
			row.Identical = zMerged.Equal(zOne) && zCoord.Equal(zOne) && row.Checksum == checksum(zOne)
			if !row.Identical {
				return fmt.Errorf("shard: %v S=%d: sharded output differs from one-shot (nnz %d vs %d, checksum %s vs %s)",
					k, S, zMerged.NNZ(), zOne.NNZ(), row.Checksum, checksum(zOne))
			}
			if S == 4 && row.SpeedupScaleout < shardMinSpeedup {
				return fmt.Errorf("shard: %v S=4: modeled speedup %.2fx below the %.1fx bar (partition %v + max shard %v + merge %v vs oneshot %v)",
					k, row.SpeedupScaleout, shardMinSpeedup,
					time.Duration(row.PartitionNS), time.Duration(row.MaxShardNS),
					time.Duration(row.MergeNS), time.Duration(oneWall))
			}
			file.Configs = append(file.Configs, row)
			tab.Row(row.Kernel, S, fmt.Sprintf("%.2f", row.ShardBalance),
				time.Duration(row.PartitionNS), time.Duration(row.MaxShardNS), time.Duration(row.MergeNS),
				time.Duration(row.ScaleoutNS), time.Duration(measured), time.Duration(oneWall),
				fmt.Sprintf("%.2fx", row.SpeedupScaleout), row.Identical)
		}
	}
	tab.Render(w)
	fmt.Fprintln(w, "Speedup = oneshot / scaleout (modeled S-worker wall); Measured = real coordinator wall on this host.")
	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
