package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// kernelStageNS is one kernel's measured wall times (minimum over reps) and
// output fingerprint for a workload config, serialized into BENCH_1.json.
type kernelStageNS struct {
	HtYBuildNS int64  `json:"htybuild_ns"`
	SearchNS   int64  `json:"search_ns"`
	AccumNS    int64  `json:"accum_ns"`
	WriteNS    int64  `json:"write_ns"`
	TotalNS    int64  `json:"total_ns"`
	NNZZ       int    `json:"nnzz"`
	Checksum   string `json:"checksum"`
}

// hotNS is the stage-①(HtY build)+②+③ sum the ISSUE's acceptance criterion
// is stated over: the hash-kernel hot path, excluding X permute+sort (shared
// by both kernels), writeback and output sort.
func (k kernelStageNS) hotNS() int64 { return k.HtYBuildNS + k.SearchNS + k.AccumNS }

// kernelDuelRow is one (workload, threads) cell of the chained-vs-flat duel.
type kernelDuelRow struct {
	Workload string        `json:"workload"`
	Threads  int           `json:"threads"`
	Chained  kernelStageNS `json:"chained"`
	Flat     kernelStageNS `json:"flat"`
	// SpeedupHot = chained/flat on the HtY-build+search+accum sum.
	SpeedupHot float64 `json:"speedup_build_search_accum"`
	// SpeedupTotal = chained/flat on end-to-end wall time.
	SpeedupTotal float64 `json:"speedup_total"`
	// Identical reports whether NNZZ and checksum matched between kernels.
	Identical bool `json:"identical_output"`
}

// kernelDuelFile is the BENCH_1.json schema: the first point of the bench
// trajectory (chained seed kernels vs flat kernels, per stage), under the
// shared Meta header all BENCH_*.json files carry.
type kernelDuelFile struct {
	Meta    Meta            `json:"meta"`
	Configs []kernelDuelRow `json:"configs"`
}

// kernelDuelReps is the repetition count per cell; each stage keeps its
// minimum wall time across reps (standard min-of-N noise rejection).
const kernelDuelReps = 3

// runKernelCell contracts one workload with one kernel kernelDuelReps times
// and returns the per-stage minima plus the output fingerprint.
func runKernelCell(c Config, wl gen.Workload, k core.Kernel, threads int) (kernelStageNS, error) {
	x := c.Tensor(wl.Preset)
	cx, cy := wl.ContractModes()
	var cell kernelStageNS
	for rep := 0; rep < kernelDuelReps; rep++ {
		z, r, err := core.Contract(x, x, cx, cy, core.Options{
			Algorithm: core.AlgSparta,
			Kernel:    k,
			Threads:   threads,
			Tracer:    c.Tracer,
			Metrics:   c.Metrics,
		})
		if err != nil {
			return cell, err
		}
		sum := 0.0
		for _, v := range z.Vals {
			sum += math.Abs(v)
		}
		m := kernelStageNS{
			HtYBuildNS: int64(r.HtYBuild),
			SearchNS:   int64(r.StageWall[core.StageSearch]),
			AccumNS:    int64(r.StageWall[core.StageAccum]),
			WriteNS:    int64(r.StageWall[core.StageWrite]),
			TotalNS:    int64(r.Total()),
			NNZZ:       r.NNZZ,
			// 9 significant digits: enough to prove the kernels compute
			// the same result, insensitive to accumulation-order ULPs.
			Checksum: fmt.Sprintf("%.9e", sum),
		}
		if rep == 0 {
			cell = m
			continue
		}
		if m.NNZZ != cell.NNZZ || m.Checksum != cell.Checksum {
			return cell, fmt.Errorf("kernel %v: unstable output across reps", k)
		}
		cell.HtYBuildNS = min64(cell.HtYBuildNS, m.HtYBuildNS)
		cell.SearchNS = min64(cell.SearchNS, m.SearchNS)
		cell.AccumNS = min64(cell.AccumNS, m.AccumNS)
		cell.WriteNS = min64(cell.WriteNS, m.WriteNS)
		cell.TotalNS = min64(cell.TotalNS, m.TotalNS)
	}
	return cell, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Kernels runs the chained-vs-flat hash-kernel duel: per workload and thread
// count, both kernel families contract the same tensor, the per-stage walls
// are compared, and output equality (NNZZ + checksum) is asserted. When
// jsonPath is non-empty the rows are also written there (BENCH_1.json).
func Kernels(w io.Writer, c Config) error { return KernelsJSON(w, c, "") }

// KernelsJSON is Kernels with an optional JSON output path.
func KernelsJSON(w io.Writer, c Config, jsonPath string) error {
	// Shallow contractions (2-mode) keep the accumulator miss-heavy; deep
	// ones (3-mode) are build- and hit-dominated — together they cover both
	// ends of the hash-kernel hot path.
	workloads := []gen.Workload{
		{Preset: mustPreset("NIPS"), Modes: 2},
		{Preset: mustPreset("Vast"), Modes: 2},
		{Preset: mustPreset("NIPS"), Modes: 3},
		{Preset: mustPreset("Uber"), Modes: 3},
	}
	threadSweep := []int{1, 4}
	if c.Threads > 0 {
		threadSweep = []int{c.Threads}
	}
	fmt.Fprintf(w, "Hash-kernel duel: chained (seed) vs flat open-addressing, %d reps/cell (min)\n", kernelDuelReps)
	tab := stats.NewTable("Workload", "Threads", "Kernel", "HtYBuild", "Search", "Accum", "Write", "Total", "NNZZ", "Hot x")
	file := kernelDuelFile{Meta: c.meta("kernels", "synthetic Table-3 presets (NIPS, Vast, Uber), self-contractions", kernelDuelReps)}
	for _, wl := range workloads {
		for _, threads := range threadSweep {
			chained, err := runKernelCell(c, wl, core.KernelChained, threads)
			if err != nil {
				return err
			}
			flat, err := runKernelCell(c, wl, core.KernelFlat, threads)
			if err != nil {
				return err
			}
			row := kernelDuelRow{
				Workload:     wl.Name(),
				Threads:      threads,
				Chained:      chained,
				Flat:         flat,
				SpeedupHot:   float64(chained.hotNS()) / float64(flat.hotNS()),
				SpeedupTotal: float64(chained.TotalNS) / float64(flat.TotalNS),
				Identical:    chained.NNZZ == flat.NNZZ && chained.Checksum == flat.Checksum,
			}
			if !row.Identical {
				return fmt.Errorf("kernels: %s threads=%d: outputs differ (nnz %d/%d, checksum %s/%s)",
					wl.Name(), threads, chained.NNZZ, flat.NNZZ, chained.Checksum, flat.Checksum)
			}
			file.Configs = append(file.Configs, row)
			tab.Row(wl.Name(), threads, "chained",
				time.Duration(chained.HtYBuildNS), time.Duration(chained.SearchNS),
				time.Duration(chained.AccumNS), time.Duration(chained.WriteNS),
				time.Duration(chained.TotalNS), chained.NNZZ, "")
			tab.Row(wl.Name(), threads, "flat",
				time.Duration(flat.HtYBuildNS), time.Duration(flat.SearchNS),
				time.Duration(flat.AccumNS), time.Duration(flat.WriteNS),
				time.Duration(flat.TotalNS), flat.NNZZ, fmt.Sprintf("%.2fx", row.SpeedupHot))
		}
	}
	tab.Render(w)
	fmt.Fprintln(w, "Hot x = chained/flat speedup on the HtY-build + index-search + accumulation sum.")
	if jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
