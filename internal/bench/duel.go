package bench

import (
	"fmt"
	"io"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// Duel prints a stage-by-stage comparison of the three algorithms on one
// workload — the diagnostic view behind Figures 2 and 4 (which stages each
// data-structure choice actually buys back).
func Duel(w io.Writer, c Config) error {
	wl := gen.Workload{Preset: mustPreset("NIPS"), Modes: 1}
	fmt.Fprintf(w, "Stage-by-stage duel on %s (nnz %d)\n", wl.Name(), c.Scale)
	tab := stats.NewTable("Algorithm", "Input", "Search", "Accum", "Write", "Sort", "Total", "Products", "AccumProbes")
	for _, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgTwoPhase, core.AlgSparta} {
		_, rep, err := c.RunWorkload(wl, alg)
		if err != nil {
			return err
		}
		tab.Row(alg.String(),
			rep.StageWall[core.StageInput], rep.StageWall[core.StageSearch],
			rep.StageWall[core.StageAccum], rep.StageWall[core.StageWrite],
			rep.StageWall[core.StageSort], rep.Total(),
			rep.Products, rep.ProbesHtA+rep.SPACompares)
	}
	// The seed hash kernels, for the full chained-vs-flat picture (the
	// `kernels` experiment measures this duel per stage and in isolation).
	_, rep, err := c.RunWorkloadKernel(wl, core.AlgSparta, core.KernelChained)
	if err != nil {
		return err
	}
	tab.Row(core.AlgSparta.String()+" (chained)",
		rep.StageWall[core.StageInput], rep.StageWall[core.StageSearch],
		rep.StageWall[core.StageAccum], rep.StageWall[core.StageWrite],
		rep.StageWall[core.StageSort], rep.Total(),
		rep.Products, rep.ProbesHtA+rep.SPACompares)
	tab.Render(w)
	return nil
}
