package bench

import (
	"bufio"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the shared vocabulary of the load harness: the BENCH_4.json
// schema that sptc-loadgen writes and sptc-slo diffs, plus a small
// Prometheus text-exposition parser so the load generator can scrape the
// server's histograms and cross-check quantiles without a query engine.

// LoadReport is the BENCH_4.json document: the standard meta block plus one
// run record. (The other duel files carry row arrays; a load run is a single
// aggregate, so it is one object.)
type LoadReport struct {
	Meta Meta    `json:"meta"`
	Run  LoadRun `json:"run"`
}

// LoadRun aggregates one open-loop run against sptc-serve.
type LoadRun struct {
	// Offered load and what was achieved.
	TargetRPS   float64 `json:"target_rps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Errors      int     `json:"errors"`
	// Shed maps shed reason ("inflight", "memory") to request count;
	// ShedRate is sheds over total requests.
	Shed     map[string]int `json:"shed,omitempty"`
	ShedRate float64        `json:"shed_rate"`
	// AchievedRPS counts completed (OK) requests over the run wall.
	AchievedRPS float64 `json:"achieved_rps"`
	// Mix regime.
	HotRatio  float64 `json:"hot_ratio"`
	ColdPlans int     `json:"cold_plans"`
	Inflight  int     `json:"max_inflight"`
	// Client is measured at the generator; Server is scraped from /metrics
	// (the delta of the run's bucket counts); AgreementPct is the relative
	// client/server gap per quantile, the acceptance check's subject.
	Client       Quantiles          `json:"client"`
	Server       Quantiles          `json:"server"`
	AgreementPct map[string]float64 `json:"agreement_pct,omitempty"`
	// Plan-cache traffic over the run (from the engine counters).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Quantiles is one latency distribution summary in seconds.
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_sec"`
	P95   float64 `json:"p95_sec"`
	P99   float64 `json:"p99_sec"`
}

// AgreementPct is the relative gap between a client and server quantile in
// percent, on the larger of the two (symmetric, and defined when one side
// is zero only if both are).
func AgreementPct(client, server float64) float64 {
	if client == server {
		return 0
	}
	den := math.Max(math.Abs(client), math.Abs(server))
	if den == 0 {
		return 0
	}
	return 100 * math.Abs(client-server) / den
}

// LoadMeta assembles the meta block for a load run (the duel benches go
// through Config.meta; the load harness has no generator Config).
func LoadMeta(commit, dataset string, seed int64, rps float64) Meta {
	if commit == "" {
		commit = vcsRevision()
	}
	return Meta{
		Bench:      "loadgen",
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      int(rps), // the load regime's scale knob is offered RPS
		Seed:       seed,
		Reps:       1,
		Dataset:    dataset,
	}
}

// ScrapedHist is one histogram family member lifted from a /metrics page:
// cumulative counts per finite le bound plus the +Inf bucket, as exposed.
type ScrapedHist struct {
	Bounds []float64 // finite le bounds, ascending
	Counts []uint64  // cumulative; len(Bounds)+1 with +Inf last
	Sum    float64
	Count  uint64
}

// Delta returns the per-bucket (non-cumulative) counts of s minus an earlier
// scrape of the same family — the shape obs.QuantileFromBuckets consumes.
// A nil prev means "since process start". Mismatched bucket layouts return
// nil (the server was restarted or reconfigured mid-run).
func (s *ScrapedHist) Delta(prev *ScrapedHist) []uint64 {
	if s == nil {
		return nil
	}
	cum := make([]uint64, len(s.Counts))
	copy(cum, s.Counts)
	if prev != nil {
		if len(prev.Counts) != len(cum) {
			return nil
		}
		for i := range cum {
			if cum[i] < prev.Counts[i] {
				return nil // counter reset
			}
			cum[i] -= prev.Counts[i]
		}
	}
	// De-cumulate.
	out := make([]uint64, len(cum))
	var before uint64
	for i, c := range cum {
		if c < before {
			return nil
		}
		out[i] = c - before
		before = c
	}
	return out
}

// ParseHistogram extracts one histogram (name + fixed label selector,
// ignoring the le label) from Prometheus text exposition. Returns nil when
// the family is absent.
func ParseHistogram(text, name string, labels map[string]string) *ScrapedHist {
	type bucket struct {
		le float64
		n  uint64
	}
	var bs []bucket
	h := &ScrapedHist{}
	seen := false
	for sc := bufio.NewScanner(strings.NewReader(text)); sc.Scan(); {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, lbls, val, ok := parseSample(line)
		if !ok || !labelsMatch(lbls, labels) {
			continue
		}
		switch metric {
		case name + "_bucket":
			le, err := parseLE(lbls["le"])
			if err != nil {
				continue
			}
			bs = append(bs, bucket{le, uint64(val)})
			seen = true
		case name + "_sum":
			h.Sum = val
			seen = true
		case name + "_count":
			h.Count = uint64(val)
			seen = true
		}
	}
	if !seen || len(bs) == 0 {
		return nil
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	for _, b := range bs {
		if math.IsInf(b.le, 1) {
			h.Counts = append(h.Counts, b.n)
			continue
		}
		h.Bounds = append(h.Bounds, b.le)
		h.Counts = append(h.Counts, b.n)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		return nil // no +Inf bucket: not a well-formed exposition
	}
	return h
}

// ParseCounters extracts every sample of one counter family, keyed by the
// value of keyLabel (e.g. sptc_serve_shed_total keyed by "reason").
func ParseCounters(text, name, keyLabel string) map[string]float64 {
	out := map[string]float64{}
	for sc := bufio.NewScanner(strings.NewReader(text)); sc.Scan(); {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, lbls, val, ok := parseSample(line)
		if !ok || metric != name {
			continue
		}
		out[lbls[keyLabel]] += val
	}
	return out
}

// parseSample splits one exposition line into name, labels, and value.
func parseSample(line string) (name string, labels map[string]string, val float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", nil, 0, false
	}
	head := line[:sp]
	labels = map[string]string{}
	if i := strings.IndexByte(head, '{'); i >= 0 {
		if !strings.HasSuffix(head, "}") {
			return "", nil, 0, false
		}
		for _, pair := range splitLabelPairs(head[i+1 : len(head)-1]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				continue
			}
			k := pair[:eq]
			lv, err := strconv.Unquote(pair[eq+1:])
			if err != nil {
				continue
			}
			labels[k] = lv
		}
		head = head[:i]
	}
	return head, labels, v, true
}

// splitLabelPairs splits `a="1",b="x,y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// labelsMatch reports whether got carries every want pair (extra labels,
// like le, are fine).
func labelsMatch(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	if s == "" {
		return 0, fmt.Errorf("missing le")
	}
	return strconv.ParseFloat(s, 64)
}

// VCSRevision exposes the build-info VCS stamp to front ends outside the
// duel Config path (sptc-loadgen stamps its meta block with it).
func VCSRevision() string { return vcsRevision() }
