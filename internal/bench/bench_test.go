package bench

import (
	"io"
	"strings"
	"testing"

	"sparta/internal/core"
	"sparta/internal/gen"
)

// tinyConfig keeps every experiment fast enough for the unit-test suite.
func tinyConfig() Config {
	return Config{Scale: 600, Threads: 2, Seed: 7, DRAMFraction: 0.5}
}

func TestTensorCache(t *testing.T) {
	c := tinyConfig()
	p := mustPreset("Uber")
	a := c.Tensor(p)
	b := c.Tensor(p)
	if a != b {
		t.Fatal("tensor cache miss for identical config")
	}
	c2 := c
	c2.Seed = 8
	if c2.Tensor(p) == a {
		t.Fatal("different seed shared a cached tensor")
	}
}

func TestRunWorkloadAllAlgorithms(t *testing.T) {
	c := tinyConfig()
	wl := gen.Workload{Preset: mustPreset("Chicago"), Modes: 2}
	for _, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgSparta} {
		z, rep, err := c.RunWorkload(wl, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if z.NNZ() == 0 || rep.NNZZ != z.NNZ() {
			t.Fatalf("%v: bad result", alg)
		}
	}
}

// TestExperimentsRunEndToEnd executes every experiment at tiny scale and
// checks it produces output without error — the harness equivalent of an
// integration test.
func TestExperimentsRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	c := tinyConfig()
	exps := map[string]func(io.Writer, Config) error{
		"fig2":     Fig2,
		"table2":   Table2,
		"fig3":     Fig3,
		"fig4":     Fig4,
		"fig6":     Fig6,
		"fig7":     Fig7,
		"fig8":     Fig8,
		"fig9":     Fig9,
		"duel":     Duel,
		"twophase": TwoPhase,
		"formats":  Formats,
		"reorder":  Reorder,
		"search":   SearchAblation,
		"kernels":  Kernels,
	}
	for name, f := range exps {
		t.Run(name, func(t *testing.T) {
			var b strings.Builder
			if err := f(&b, c); err != nil {
				t.Fatal(err)
			}
			if len(b.String()) < 40 {
				t.Fatalf("suspiciously short output: %q", b.String())
			}
		})
	}
}

func TestHeadlineRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var b strings.Builder
	if err := Headline(&b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Sparta over SpTC-SPA") {
		t.Fatalf("missing headline: %s", b.String())
	}
}

func TestFig5AndTable4Run(t *testing.T) {
	if testing.Short() {
		t.Skip("Hubbard generation is slow")
	}
	var b strings.Builder
	if err := Table4(&b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SpTC10") {
		t.Fatal("Table 4 missing rows")
	}
	b.Reset()
	if err := Fig5(&b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "average speedup") {
		t.Fatal("Fig 5 missing summary")
	}
}

func TestScalingAndAblationRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var b strings.Builder
	if err := Scaling(&b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Speedup") {
		t.Fatal("scaling output missing")
	}
	b.Reset()
	if err := Ablation(&b, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in ablation output", want)
		}
	}
}

func TestPermAndFreeModes(t *testing.T) {
	perm := permFor(4, []int{1, 3})
	want := []int{0, 2, 1, 3}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("permFor = %v", perm)
		}
	}
	fm := freeModes(4, []int{1, 3})
	if len(fm) != 2 || fm[0] != 0 || fm[1] != 2 {
		t.Fatalf("freeModes = %v", fm)
	}
}
