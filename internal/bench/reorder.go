package bench

import (
	"fmt"
	"io"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/hicoo"
	"sparta/internal/reorder"
	"sparta/internal/stats"
)

// Reorder measures the effect of frequency-based index relabeling (Li et
// al., the paper's reference [38]) on (a) HiCOO block density — the
// classic payoff of reordering — and (b) Sparta contraction time on the
// relabeled tensor. Sparta's hash-based structures are largely
// label-agnostic, so (b) is expected to be flat; the experiment documents
// that the two lines of work are orthogonal, as the paper's related-work
// section asserts.
func Reorder(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Frequency reordering: HiCOO block density and Sparta time, before vs after")
	tab := stats.NewTable("Workload", "Blocks before", "Blocks after", "Avg nnz/block", "Sparta before", "Sparta after")
	for _, name := range []string{"NIPS", "Uber", "Vast"} {
		p := mustPreset(name)
		x := c.Tensor(p)
		wl := gen.Workload{Preset: p, Modes: 2}
		cx, cy := wl.ContractModes()

		h0, err := hicoo.FromCOO(x, 7)
		if err != nil {
			return err
		}
		_, rep0, err := core.Contract(x, x, cx, cy, core.Options{
			Algorithm: core.AlgSparta, Threads: c.Threads, Tracer: c.Tracer, Metrics: c.Metrics,
		})
		if err != nil {
			return err
		}

		r := reorder.ByFrequency(x)
		xr := x.Clone()
		if err := r.Apply(xr); err != nil {
			return err
		}
		xr.Sort(c.Threads)
		h1, err := hicoo.FromCOO(xr, 7)
		if err != nil {
			return err
		}
		_, rep1, err := core.Contract(xr, xr, cx, cy, core.Options{
			Algorithm: core.AlgSparta, Threads: c.Threads, Tracer: c.Tracer, Metrics: c.Metrics,
		})
		if err != nil {
			return err
		}
		tab.Row(wl.Name(), h0.NumBlocks(), h1.NumBlocks(),
			fmt.Sprintf("%.1f -> %.1f", h0.AvgBlockNNZ(), h1.AvgBlockNNZ()),
			rep0.Total(), rep1.Total())
	}
	tab.Render(w)
	fmt.Fprintln(w, "(reordering densifies blocks — a storage/locality win — while Sparta's hash structures are label-agnostic)")
	return nil
}
