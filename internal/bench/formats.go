package bench

import (
	"fmt"
	"io"
	"time"

	"sparta/internal/csf"
	"sparta/internal/hicoo"
	"sparta/internal/stats"
)

// Formats compares sparse-tensor storage formats on the evaluation
// datasets: COO (what Sparta computes on), CSF (§3.2's alternative), and
// HiCOO (the paper's declared future-work compression for X) at several
// block widths. Reports footprints and full-scan throughput — the
// trade-off behind the related-work section's "orthogonal to the tensor
// format works" remark.
func Formats(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Storage formats: footprint and full-scan throughput")
	tab := stats.NewTable("Tensor", "Format", "Bytes", "B/nnz", "Blocks", "Scan")
	for _, name := range []string{"Chicago", "Uracil", "NIPS", "Vast"} {
		p := mustPreset(name)
		u := c.Tensor(p)
		nnz := float64(u.NNZ())

		t0 := time.Now()
		var sink float64
		for i := 0; i < u.NNZ(); i++ {
			sink += u.Vals[i]
		}
		cooScan := time.Since(t0)
		tab.Row(name, "COO", stats.FormatBytes(u.Bytes()),
			fmt.Sprintf("%.1f", float64(u.Bytes())/nnz), "-", cooScan)

		cs, err := csf.FromCOO(u)
		if err != nil {
			return err
		}
		t0 = time.Now()
		cs.ToCOO() // CSF scan = tree expansion
		csfScan := time.Since(t0)
		tab.Row(name, "CSF", stats.FormatBytes(cs.Bytes()),
			fmt.Sprintf("%.1f", float64(cs.Bytes())/nnz), "-", csfScan)

		for _, bits := range []uint{4, 6, 8} {
			h, err := hicoo.FromCOO(u, bits)
			if err != nil {
				return err
			}
			t0 = time.Now()
			h.Scan(func(_ []uint32, v float64) { sink += v })
			hScan := time.Since(t0)
			tab.Row(name, fmt.Sprintf("HiCOO B=2^%d", bits),
				stats.FormatBytes(h.Bytes()),
				fmt.Sprintf("%.1f", float64(h.Bytes())/nnz),
				fmt.Sprintf("%d (avg %.1f nnz)", h.NumBlocks(), h.AvgBlockNNZ()),
				hScan)
		}
		_ = sink
	}
	tab.Render(w)
	fmt.Fprintln(w, "(HiCOO compresses when blocks are dense — the Uracil regime; scattered tensors pay for block headers)")
	return nil
}
