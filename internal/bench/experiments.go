package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"sparta/internal/blocksparse"
	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/stats"
)

// Fig2 prints the execution-time breakdown of SpTC-SPA (Algorithm 1) per
// stage for the 15 dataset-contraction combinations — the paper's Figure 2
// (index search + accumulation dominate; input/output processing < 1%).
func Fig2(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Figure 2: SpTC-SPA execution-time breakdown (%)")
	tab := stats.NewTable("Workload", "Input", "Search", "Accum", "Write", "Sort", "Total")
	for _, wl := range gen.Fig4Workloads() {
		_, rep, err := c.RunWorkload(wl, core.AlgSPA)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name(), err)
		}
		total := rep.Total()
		pct := func(s core.Stage) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(rep.StageWall[s])/float64(total))
		}
		tab.Row(wl.Name(), pct(core.StageInput), pct(core.StageSearch),
			pct(core.StageAccum), pct(core.StageWrite), pct(core.StageSort), total)
	}
	tab.Render(w)
	return nil
}

// Fig4 prints the speedups of HtY+HtA (Sparta) and COOY+HtA over COOY+SPA —
// the paper's Figure 4 (28–576× for Sparta).
func Fig4(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Figure 4: speedup over COOY+SPA")
	tab := stats.NewTable("Workload", "COOY+SPA", "COOY+HtA", "HtY+HtA", "HtA speedup", "Sparta speedup")
	var spartaSp, htaSp []float64
	for _, wl := range gen.Fig4Workloads() {
		var times [3]time.Duration
		for i, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgSparta} {
			_, rep, err := c.RunWorkload(wl, alg)
			if err != nil {
				return fmt.Errorf("%s/%v: %w", wl.Name(), alg, err)
			}
			times[i] = rep.Total()
		}
		s1 := stats.Speedup(times[0], times[1])
		s2 := stats.Speedup(times[0], times[2])
		htaSp = append(htaSp, s1)
		spartaSp = append(spartaSp, s2)
		tab.Row(wl.Name(), times[0], times[1], times[2],
			fmt.Sprintf("%.1fx", s1), fmt.Sprintf("%.1fx", s2))
	}
	tab.Render(w)
	lo, hi := stats.MinMax(spartaSp)
	fmt.Fprintf(w, "Sparta speedup over SpTC-SPA: %.1fx - %.1fx (geomean %.1fx)\n",
		lo, hi, stats.GeoMean(spartaSp))
	lo, hi = stats.MinMax(htaSp)
	fmt.Fprintf(w, "COOY+HtA speedup over SpTC-SPA: %.1fx - %.1fx (geomean %.1fx)\n",
		lo, hi, stats.GeoMean(htaSp))
	return nil
}

// Headline prints the §5.2 summary: Sparta-vs-SpTC-SPA range over the 15
// combinations plus Sparta's own stage breakdown averages.
func Headline(w io.Writer, c Config) error {
	var sp []float64
	var shares [core.NumStages]float64
	n := 0
	for _, wl := range gen.Fig4Workloads() {
		_, repS, err := c.RunWorkload(wl, core.AlgSPA)
		if err != nil {
			return err
		}
		_, repH, err := c.RunWorkload(wl, core.AlgSparta)
		if err != nil {
			return err
		}
		sp = append(sp, stats.Speedup(repS.Total(), repH.Total()))
		if t := repH.Total(); t > 0 {
			for s := core.Stage(0); s < core.NumStages; s++ {
				shares[s] += 100 * float64(repH.StageWall[s]) / float64(t)
			}
			n++
		}
	}
	lo, hi := stats.MinMax(sp)
	fmt.Fprintf(w, "Headline (paper: 28-576x): Sparta over SpTC-SPA %.0fx - %.0fx, geomean %.0fx across %d combinations\n",
		lo, hi, stats.GeoMean(sp), len(sp))
	fmt.Fprintf(w, "Sparta stage shares (paper: search 4.7%%, accum 61.6%%, write 9.6%%, input 3.3%%, sort 20.8%%):\n")
	for s := core.Stage(0); s < core.NumStages; s++ {
		fmt.Fprintf(w, "  %-17s %.1f%%\n", s.String(), shares[s]/float64(n))
	}
	return nil
}

// Fig5 compares element-wise Sparta against the block-sparse (ITensor-style)
// contraction on the ten Hubbard-2D pairs — the paper's Figure 5 (7.1×
// average speedup for Sparta).
func Fig5(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Figure 5: Sparta vs block-sparse (ITensor-style) on Hubbard-2D")
	tab := stats.NewTable("SpTC", "nnzX", "nnzY", "Block time", "Sparta time", "Speedup")
	var sp []float64
	for id := 1; id <= len(gen.HubbardSpecs); id++ {
		bx, by, spec, err := gen.Hubbard(id, c.Seed)
		if err != nil {
			return err
		}
		// Block-sparse side: contraction on dense blocks (conversion not
		// charged: ITensor holds its tensors in block form natively).
		t0 := time.Now()
		_, err = blocksparse.Contract(bx, by, spec.CModesX, spec.CModesY, c.Threads)
		if err != nil {
			return fmt.Errorf("SpTC%d block: %w", id, err)
		}
		blockTime := time.Since(t0)

		// Sparta side: element-wise tensors after the 1e-8 cutoff.
		x := bx.ToCOO(gen.HubbardCutoff)
		y := by.ToCOO(gen.HubbardCutoff)
		_, rep, err := core.Contract(x, y, spec.CModesX, spec.CModesY, core.Options{
			Algorithm: core.AlgSparta,
			Threads:   c.Threads,
			InPlace:   true,
			Tracer:    c.Tracer,
			Metrics:   c.Metrics,
		})
		if err != nil {
			return fmt.Errorf("SpTC%d sparta: %w", id, err)
		}
		s := stats.Speedup(blockTime, rep.Total())
		sp = append(sp, s)
		tab.Row(fmt.Sprintf("SpTC%d", id), x.NNZ(), y.NNZ(), blockTime, rep.Total(),
			fmt.Sprintf("%.1fx", s))
	}
	tab.Render(w)
	fmt.Fprintf(w, "average speedup %.1fx (paper: 7.1x)\n", stats.Mean(sp))
	return nil
}

// Fig6 measures thread scalability on the paper's three scaling workloads.
// On a single-core host the measured curve is flat; the simulated column
// shows the model's linear-region expectation from per-stage CPU time.
func Fig6(w io.Writer, c Config) error {
	fmt.Fprintf(w, "Figure 6: thread scalability (speedup over 1 thread; host has %d core(s) — "+
		"wall-clock speedup saturates there, the CPU-sum column shows how evenly the work split)\n",
		runtime.GOMAXPROCS(0))
	workloads := []gen.Workload{
		{Preset: mustPreset("NIPS"), Modes: 1},
		{Preset: mustPreset("Vast"), Modes: 2},
		{Preset: mustPreset("NIPS"), Modes: 3},
	}
	threadCounts := []int{1, 2, 4, 8, 12}
	tab := stats.NewTable("Workload", "Threads", "Wall", "Speedup", "CPU-sum speedup")
	for _, wl := range workloads {
		var base time.Duration
		for _, th := range threadCounts {
			cfg := c
			cfg.Threads = th
			_, rep, err := cfg.RunWorkload(wl, core.AlgSparta)
			if err != nil {
				return err
			}
			wall := rep.Total()
			if th == 1 {
				base = wall
			}
			// CPU-sum speedup: how well the work parallelized internally,
			// independent of physical core count.
			var cpu, wallSum time.Duration
			for s := core.StageSearch; s <= core.StageWrite; s++ {
				cpu += rep.StageCPU[s]
				wallSum += rep.StageWall[s]
			}
			cpuSp := 1.0
			if wallSum > 0 {
				cpuSp = float64(cpu) / float64(wallSum)
			}
			tab.Row(wl.Name(), th, wall,
				fmt.Sprintf("%.2fx", stats.Speedup(base, wall)),
				fmt.Sprintf("%.2fx", cpuSp))
		}
	}
	tab.Render(w)
	return nil
}

func mustPreset(name string) gen.Preset {
	p, err := gen.FindPreset(name)
	if err != nil {
		panic(err)
	}
	return p
}
