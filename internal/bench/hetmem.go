package bench

import (
	"fmt"
	"io"

	"sparta/internal/core"
	"sparta/internal/gen"
	"sparta/internal/hetmem"
	"sparta/internal/stats"
)

// profileWorkload runs Sparta on a workload and derives its memory profile.
func (c Config) profileWorkload(wl gen.Workload) (*hetmem.Profile, error) {
	x := c.Tensor(wl.Preset)
	z, rep, err := c.RunWorkload(wl, core.AlgSparta)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", wl.Name(), err)
	}
	return hetmem.FromReport(rep, x.Order(), x.Order(), z.Order()), nil
}

// Table2 prints the access-pattern classification of the six data objects
// across the five stages — the paper's Table 2.
func Table2(w io.Writer, c Config) error {
	wl := gen.Workload{Preset: mustPreset("Nell-2"), Modes: 2}
	pf, err := c.profileWorkload(wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: memory access patterns (%s)\n", wl.Name())
	grid := hetmem.Table2(pf)
	tab := stats.NewTable("Stage", "X", "Y", "HtY", "HtA", "Z_local", "Z")
	for s := core.Stage(0); s < core.NumStages; s++ {
		tab.Row(s.String(), grid[s][hetmem.ObjX], grid[s][hetmem.ObjY], grid[s][hetmem.ObjHtY],
			grid[s][hetmem.ObjHtA], grid[s][hetmem.ObjZLocal], grid[s][hetmem.ObjZ])
	}
	tab.Render(w)
	return nil
}

// Fig3 prints the placement characterization: simulated execution time with
// every object in DRAM versus one object at a time in PMM — the paper's
// Figure 3 (HtY hurts most, X and Y barely matter).
func Fig3(w io.Writer, c Config) error {
	wl := gen.Workload{Preset: mustPreset("Nell-2"), Modes: 2}
	pf, err := c.profileWorkload(wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3: simulated time with one object in PMM (%s)\n", wl.Name())
	tab := stats.NewTable("Placement", "Simulated time", "Loss vs all-DRAM")
	base := pf.Time(hetmem.AllDRAM())
	tab.Row("All in DRAM", base, "-")
	for o := hetmem.Object(0); o < hetmem.NumObjects; o++ {
		f := hetmem.AllDRAM()
		f[o] = 0
		t := pf.Time(f)
		tab.Row(o.String()+" in PMM", t, fmt.Sprintf("%.1f%%", 100*(float64(t)/float64(base)-1)))
	}
	tab.Render(w)
	return nil
}

// Fig7 prints the policy comparison: speedup of Sparta's static placement,
// IAL, Memory mode, and DRAM-only over Optane-only — the paper's Figure 7.
func Fig7(w io.Writer, c Config) error {
	fmt.Fprintf(w, "Figure 7: speedup over Optane-only (simulated, DRAM budget = %.0f%% of peak)\n",
		100*c.DRAMFraction)
	tab := stats.NewTable("Workload", "Sparta", "IAL", "Memory mode", "DRAM-only")
	agg := map[string][]float64{}
	for _, wl := range gen.Fig7Workloads() {
		pf, err := c.profileWorkload(wl)
		if err != nil {
			return err
		}
		dram := uint64(float64(pf.PeakBytes()) * c.DRAMFraction)
		opt := (hetmem.OptaneOnly{}).Evaluate(pf, dram).Total
		row := []interface{}{wl.Name()}
		for _, pol := range []hetmem.Policy{hetmem.SpartaStatic{}, hetmem.IAL{}, hetmem.MemoryMode{}, hetmem.DRAMOnly{}} {
			r := pol.Evaluate(pf, dram)
			s := stats.Speedup(opt, r.Total)
			agg[pol.Name()] = append(agg[pol.Name()], s)
			row = append(row, fmt.Sprintf("%.2f", s))
		}
		tab.Row(row...)
	}
	tab.Render(w)
	for _, name := range []string{"Sparta", "IAL", "Memory mode", "DRAM-only"} {
		lo, hi := stats.MinMax(agg[name])
		fmt.Fprintf(w, "%-12s mean %.2f  min %.2f  max %.2f\n", name, stats.Mean(agg[name]), lo, hi)
	}
	fmt.Fprintln(w, "(paper: Sparta beats IAL by 30.7% avg, Memory mode by 10.7%, Optane-only by 17%; within 6% of DRAM-only)")
	return nil
}

// Fig8 prints the DRAM and PMM bandwidth timelines of the four policies on
// Vast with a 1-mode contraction — the paper's Figure 8.
func Fig8(w io.Writer, c Config) error {
	wl := gen.Workload{Preset: mustPreset("Vast"), Modes: 1, Star: true}
	pf, err := c.profileWorkload(wl)
	if err != nil {
		return err
	}
	dram := uint64(float64(pf.PeakBytes()) * c.DRAMFraction)
	fmt.Fprintf(w, "Figure 8: bandwidth timelines (%s, GB/s, 20 samples per policy)\n", wl.Name())
	for _, pol := range []hetmem.Policy{hetmem.SpartaStatic{}, hetmem.IAL{}, hetmem.MemoryMode{}, hetmem.OptaneOnly{}} {
		r := pol.Evaluate(pf, dram)
		pts := hetmem.BandwidthTrace(r, 20)
		hetmem.EmitTraceEvents(c.Tracer, r.Policy, pts)
		fmt.Fprintf(w, "%s (total %v):\n  t(ms):", r.Policy, r.Total)
		for _, p := range pts {
			fmt.Fprintf(w, " %7.2f", float64(p.At)/1e6)
		}
		fmt.Fprint(w, "\n  DRAM: ")
		for _, p := range pts {
			fmt.Fprintf(w, " %7.2f", p.DRAM)
		}
		fmt.Fprint(w, "\n  PMM:  ")
		for _, p := range pts {
			fmt.Fprintf(w, " %7.2f", p.PMM)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 prints the peak memory consumption of the Fig. 7 workloads — the
// paper's Figure 9.
func Fig9(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Figure 9: peak memory consumption")
	tab := stats.NewTable("Workload", "X", "Y/HtY", "HtA", "Z_local", "Z", "Peak")
	for _, wl := range gen.Fig7Workloads() {
		pf, err := c.profileWorkload(wl)
		if err != nil {
			return err
		}
		tab.Row(wl.Name(),
			stats.FormatBytes(pf.Sizes[hetmem.ObjX]),
			stats.FormatBytes(pf.Sizes[hetmem.ObjY]+pf.Sizes[hetmem.ObjHtY]),
			stats.FormatBytes(pf.Sizes[hetmem.ObjHtA]),
			stats.FormatBytes(pf.Sizes[hetmem.ObjZLocal]),
			stats.FormatBytes(pf.Sizes[hetmem.ObjZ]),
			stats.FormatBytes(pf.PeakBytes()))
	}
	tab.Render(w)
	return nil
}

// Table4 prints the generated Hubbard-2D tensor characteristics against the
// paper's Table 4 targets.
func Table4(w io.Writer, c Config) error {
	fmt.Fprintln(w, "Table 4: Hubbard-2D tensors (generated vs target)")
	tab := stats.NewTable("SpTC", "X dims", "X nnz (target)", "X blocks", "Y nnz (target)", "Y blocks")
	for id := 1; id <= len(gen.HubbardSpecs); id++ {
		bx, by, spec, err := gen.Hubbard(id, c.Seed)
		if err != nil {
			return err
		}
		tab.Row(fmt.Sprintf("SpTC%d", id),
			fmt.Sprintf("%v", spec.XDims),
			fmt.Sprintf("%d (%d)", bx.NNZ(gen.HubbardCutoff), spec.XNNZ),
			bx.NumBlocks(),
			fmt.Sprintf("%d (%d)", by.NNZ(gen.HubbardCutoff), spec.YNNZ),
			by.NumBlocks())
	}
	tab.Render(w)
	return nil
}
