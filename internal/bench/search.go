package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"sparta/internal/csf"
	"sparta/internal/gen"
	"sparta/internal/hashtab"
	"sparta/internal/stats"
)

// SearchAblation compares the four Y index-search structures §3.2/§3.3
// discuss for resolving X's contract tuples to Y sub-tensors:
//
//   - COO linear scan over distinct contract-key runs (Algorithm 1)
//   - COO binary search over the same runs (a stronger baseline than the
//     paper's, included for completeness)
//   - CSF per-level binary search (the format the paper declines, §3.2)
//   - HtY hash probe with LN keys (Sparta, §3.3)
//
// The query stream is the real one: the contract tuples of X in sorted-X
// order.
func SearchAblation(w io.Writer, c Config) error {
	p := mustPreset("NIPS")
	y := c.Tensor(p)
	wl := gen.Workload{Preset: p, Modes: 2}
	cx, cy := wl.ContractModes()

	// Sorted, contract-leading copy of Y for the COO and CSF searches.
	ys := y.Clone()
	if err := ys.Permute(append(append([]int{}, cy...), freeModes(y.Order(), cy)...)); err != nil {
		return err
	}
	ys.Sort(c.Threads)
	ys.Dedup()
	ptrCY, err := ys.SubPtr(len(cy))
	if err != nil {
		return err
	}
	cs, err := csf.FromCOO(ys)
	if err != nil {
		return err
	}
	fmodes := freeModes(y.Order(), cy)
	radC, err := y.RadixOf(cy)
	if err != nil {
		return err
	}
	radF, err := y.RadixOf(fmodes)
	if err != nil {
		return err
	}
	hty := hashtab.BuildHtY(y, cy, fmodes, radC, radF, 0, c.Threads)

	// Query stream: X's contract tuples in sorted order.
	xs := c.Tensor(p).Clone()
	if err := xs.Permute(permFor(xs.Order(), cx)); err != nil {
		return err
	}
	xs.Sort(c.Threads)
	nfx := xs.Order() - len(cx)
	cCols := xs.Inds[nfx:]
	nq := xs.NNZ()
	ncm := len(cy)

	fmt.Fprintln(w, "Ablation 4: Y index-search structures (query stream = X contract tuples)")
	tab := stats.NewTable("Structure", "Queries", "Hits", "Time", "ns/query")

	var hits int
	run := func(name string, f func(i int) bool) {
		hits = 0
		t0 := time.Now()
		for i := 0; i < nq; i++ {
			if f(i) {
				hits++
			}
		}
		dt := time.Since(t0)
		tab.Row(name, nq, hits, dt, fmt.Sprintf("%.1f", float64(dt.Nanoseconds())/float64(nq)))
	}

	cmpAt := func(pos int, i int) int {
		for m := 0; m < ncm; m++ {
			a, b := ys.Inds[m][pos], cCols[m][i]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	run("COO linear (SpTC-SPA)", func(i int) bool {
		for r := 0; r+1 < len(ptrCY); r++ {
			switch cmpAt(ptrCY[r], i) {
			case 0:
				return true
			case 1:
				return false
			}
		}
		return false
	})
	run("COO binary search", func(i int) bool {
		k := sort.Search(len(ptrCY)-1, func(r int) bool { return cmpAt(ptrCY[r], i) >= 0 })
		return k < len(ptrCY)-1 && cmpAt(ptrCY[k], i) == 0
	})
	prefix := make([]uint32, ncm)
	run("CSF per-level search", func(i int) bool {
		for m := 0; m < ncm; m++ {
			prefix[m] = cCols[m][i]
		}
		_, _, _, ok := cs.LookupPrefix(prefix)
		return ok
	})
	run("HtY hash probe (Sparta)", func(i int) bool {
		items, _ := hty.Lookup(radC.EncodeStrided(cCols, i))
		return items != nil
	})
	htyf := hashtab.BuildHtYFlat(y, cy, fmodes, radC, radF, 0, c.Threads)
	run("HtYFlat probe (open addressing)", func(i int) bool {
		items, _ := htyf.Lookup(radC.EncodeStrided(cCols, i))
		return items != nil
	})
	tab.Render(w)
	fmt.Fprintf(w, "footprints: COO %s, CSF %s, HtY %s, HtYFlat %s\n",
		stats.FormatBytes(ys.Bytes()), stats.FormatBytes(cs.Bytes()),
		stats.FormatBytes(hty.Bytes()), stats.FormatBytes(htyf.Bytes()))
	return nil
}
