package dense

import "sparta/internal/parallel"

// Gemm computes C += A * B for row-major matrices: A is m×k, B is k×n,
// C is m×n. It is the stdlib-only stand-in for the OpenBLAS call the
// paper's block-sparse baseline makes per dense block pair. Register
// blocking over j with a k-major inner loop keeps B accesses streaming.
func Gemm(m, k, n int, a, b, c []float64) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("dense: Gemm buffer too small")
	}
	const jb = 64 // column block fitting comfortably in L1 alongside a row of A
	for jc := 0; jc < n; jc += jb {
		je := jc + jb
		if je > n {
			je = n
		}
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n : p*n+n]
				for j := jc; j < je; j++ {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// GemmParallel splits the rows of C across threads; each row range is
// independent so no synchronization is needed.
func GemmParallel(m, k, n int, a, b, c []float64, threads int) {
	if m*n < 1<<14 || threads == 1 {
		Gemm(m, k, n, a, b, c)
		return
	}
	parallel.For(threads, m, func(_, lo, hi int) {
		Gemm(hi-lo, k, n, a[lo*k:hi*k], b, c[lo*n:hi*n])
	})
}

// GemmNaive is the textbook triple loop, kept as the oracle the blocked
// kernel is tested against.
func GemmNaive(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				sum += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] += sum
		}
	}
}
