package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewGuards(t *testing.T) {
	if _, err := New([]uint64{1000, 1000}, 100); err == nil {
		t.Fatal("maxElems guard did not trip")
	}
	if _, err := New([]uint64{0}, 0); err == nil {
		t.Fatal("zero mode accepted")
	}
}

func TestSetAtAdd(t *testing.T) {
	d := MustNew([]uint64{3, 4}, 0)
	d.Set([]uint32{1, 2}, 5)
	d.AddAt([]uint32{1, 2}, 2)
	if d.At([]uint32{1, 2}) != 7 {
		t.Fatal("Set/AddAt/At broken")
	}
	if d.At([]uint32{0, 0}) != 0 {
		t.Fatal("unset element not zero")
	}
}

func TestCOORoundTrip(t *testing.T) {
	d := MustNew([]uint64{4, 5, 6}, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		d.Set([]uint32{uint32(rng.Intn(4)), uint32(rng.Intn(5)), uint32(rng.Intn(6))}, 1+rng.Float64())
	}
	s := d.ToCOO(0)
	back, err := FromCOO(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := MaxAbsDiff(d, back)
	if err != nil || diff != 0 {
		t.Fatalf("round trip diff %v err %v", diff, err)
	}
}

func TestToCOOCutoff(t *testing.T) {
	d := MustNew([]uint64{4}, 0)
	d.Set([]uint32{0}, 1e-10)
	d.Set([]uint32{1}, -1e-10)
	d.Set([]uint32{2}, 0.5)
	d.Set([]uint32{3}, -0.5)
	s := d.ToCOO(1e-8)
	if s.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", s.NNZ())
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 33}, {64, 64, 64}, {65, 1, 130}, {2, 100, 3}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Gemm(m, k, n, a, b, c1)
		GemmNaive(m, k, n, a, b, c2)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-9 {
				t.Fatalf("dims %v: c[%d] = %v vs %v", dims, i, c1[i], c2[i])
			}
		}
		// Gemm must accumulate, not overwrite.
		Gemm(m, k, n, a, b, c1)
		for i := range c1 {
			if math.Abs(c1[i]-2*c2[i]) > 1e-9 {
				t.Fatalf("dims %v: Gemm is not accumulating", dims)
			}
		}
	}
}

func TestGemmParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 150, 40, 160
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	c1 := make([]float64, m*n)
	c2 := make([]float64, m*n)
	Gemm(m, k, n, a, b, c1)
	GemmParallel(m, k, n, a, b, c2, 4)
	for i := range c1 {
		if math.Abs(c1[i]-c2[i]) > 1e-9 {
			t.Fatal("parallel GEMM mismatch")
		}
	}
}

func TestGemmPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(2, 2, 2, make([]float64, 3), make([]float64, 4), make([]float64, 4))
}

// TestContractMatrixCase checks the dense contraction against a hand
// computation: matrix multiply as mode-(1)(0) contraction.
func TestContractMatrixCase(t *testing.T) {
	a := MustNew([]uint64{2, 3}, 0)
	b := MustNew([]uint64{3, 2}, 0)
	// a = [[1 2 3],[4 5 6]], b = [[7 8],[9 10],[11 12]]
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	z, err := Contract(a, b, []int{1}, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if math.Abs(z.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("z = %v, want %v", z.Data, want)
		}
	}
}

func TestContractScalarResult(t *testing.T) {
	a := MustNew([]uint64{3}, 0)
	b := MustNew([]uint64{3}, 0)
	copy(a.Data, []float64{1, 2, 3})
	copy(b.Data, []float64{4, 5, 6})
	z, err := Contract(a, b, []int{0}, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Data) != 1 || math.Abs(z.Data[0]-32) > 1e-12 {
		t.Fatalf("inner product = %v", z.Data)
	}
}

func TestContractSizeMismatch(t *testing.T) {
	a := MustNew([]uint64{2, 3}, 0)
	b := MustNew([]uint64{4, 2}, 0)
	if _, err := Contract(a, b, []int{1}, []int{0}, 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
