// Package dense provides the dense-tensor substrate: a row-major
// multi-dimensional array, a blocked float64 GEMM, and a brute-force dense
// tensor contraction. The block-sparse baseline (package blocksparse) calls
// the GEMM the way ITensor calls BLAS; the tests use the brute-force
// contraction as the ground truth every sparse algorithm must match.
package dense

import (
	"errors"
	"fmt"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// Tensor is a dense row-major tensor.
type Tensor struct {
	Dims []uint64
	Data []float64
	rad  *lnum.Radix
}

// New allocates a zeroed dense tensor; fails if the element count overflows
// or exceeds maxElems (a guard against accidentally materializing a huge
// sparse index space).
func New(dims []uint64, maxElems uint64) (*Tensor, error) {
	r, err := lnum.NewRadix(dims)
	if err != nil {
		return nil, err
	}
	if maxElems > 0 && r.Card() > maxElems {
		return nil, fmt.Errorf("dense: %d elements exceeds cap %d", r.Card(), maxElems)
	}
	return &Tensor{
		Dims: append([]uint64(nil), dims...),
		Data: make([]float64, r.Card()),
		rad:  r,
	}, nil
}

// MustNew is New with a panic on error.
func MustNew(dims []uint64, maxElems uint64) *Tensor {
	t, err := New(dims, maxElems)
	if err != nil {
		panic(err)
	}
	return t
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Dims) }

// At returns the element at idx.
func (t *Tensor) At(idx []uint32) float64 { return t.Data[t.rad.Encode(idx)] }

// Set stores v at idx.
func (t *Tensor) Set(idx []uint32, v float64) { t.Data[t.rad.Encode(idx)] = v }

// AddAt accumulates v at idx.
func (t *Tensor) AddAt(idx []uint32, v float64) { t.Data[t.rad.Encode(idx)] += v }

// FromCOO materializes a sparse tensor densely (duplicates accumulate).
func FromCOO(s *coo.Tensor, maxElems uint64) (*Tensor, error) {
	t, err := New(s.Dims, maxElems)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s.NNZ(); i++ {
		t.Data[t.rad.EncodeStrided(s.Inds, i)] += s.Vals[i]
	}
	return t, nil
}

// ToCOO extracts the non-zeros (|v| > cutoff) into a COO tensor.
func (t *Tensor) ToCOO(cutoff float64) *coo.Tensor {
	s := coo.MustNew(t.Dims, 0)
	idx := make([]uint32, t.Order())
	for ln, v := range t.Data {
		if v > cutoff || v < -cutoff {
			t.rad.Decode(uint64(ln), idx)
			s.Append(idx, v)
		}
	}
	return s
}

// Contract computes the dense contraction Z = X ×_{cx}^{cy} Y by brute
// force: output modes are X's free modes then Y's free modes, exactly the
// convention of core.Contract. Intended for small test tensors.
func Contract(x, y *Tensor, cmodesX, cmodesY []int, maxElems uint64) (*Tensor, error) {
	if len(cmodesX) != len(cmodesY) {
		return nil, errors.New("dense: contract mode count mismatch")
	}
	inX := make([]bool, x.Order())
	for _, m := range cmodesX {
		inX[m] = true
	}
	inY := make([]bool, y.Order())
	for _, m := range cmodesY {
		inY[m] = true
	}
	var fmodesX, fmodesY []int
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			fmodesX = append(fmodesX, m)
		}
	}
	for m := 0; m < y.Order(); m++ {
		if !inY[m] {
			fmodesY = append(fmodesY, m)
		}
	}
	var zdims []uint64
	for _, m := range fmodesX {
		zdims = append(zdims, x.Dims[m])
	}
	for _, m := range fmodesY {
		zdims = append(zdims, y.Dims[m])
	}
	scalar := len(zdims) == 0
	if scalar {
		zdims = []uint64{1}
	}
	var cdims []uint64
	for k, m := range cmodesX {
		if x.Dims[m] != y.Dims[cmodesY[k]] {
			return nil, fmt.Errorf("dense: contract pair %d size mismatch", k)
		}
		cdims = append(cdims, x.Dims[m])
	}
	z, err := New(zdims, maxElems)
	if err != nil {
		return nil, err
	}
	radFX := lnum.MustRadix(dimsOf(x.Dims, fmodesX))
	radFY := lnum.MustRadix(dimsOf(y.Dims, fmodesY))
	radC := lnum.MustRadix(cdims)

	xi := make([]uint32, x.Order())
	yi := make([]uint32, y.Order())
	fx := make([]uint32, len(fmodesX))
	fy := make([]uint32, len(fmodesY))
	ci := make([]uint32, len(cmodesX))
	for lfx := uint64(0); lfx < radFX.Card(); lfx++ {
		radFX.Decode(lfx, fx)
		for k, m := range fmodesX {
			xi[m] = fx[k]
		}
		for lfy := uint64(0); lfy < radFY.Card(); lfy++ {
			radFY.Decode(lfy, fy)
			for k, m := range fmodesY {
				yi[m] = fy[k]
			}
			var sum float64
			for lc := uint64(0); lc < radC.Card(); lc++ {
				radC.Decode(lc, ci)
				for k, m := range cmodesX {
					xi[m] = ci[k]
				}
				for k, m := range cmodesY {
					yi[m] = ci[k]
				}
				sum += x.At(xi) * y.At(yi)
			}
			var zln uint64
			if !scalar {
				zln = lfx*radFY.Card() + lfy
			}
			z.Data[zln] += sum
		}
	}
	return z, nil
}

func dimsOf(dims []uint64, modes []int) []uint64 {
	// An empty mode list yields the empty radix (card 1, order 0), which
	// makes the scalar/full-contraction cases fall out of the general loop.
	out := make([]uint64, len(modes))
	for k, m := range modes {
		out[k] = dims[m]
	}
	return out
}

// MaxAbsDiff returns the largest absolute element difference between two
// same-shape tensors.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if len(a.Data) != len(b.Data) {
		return 0, errors.New("dense: shape mismatch")
	}
	var max float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}
