package gen

import (
	"testing"

	"sparta/internal/coo"
	"sparta/internal/core"
)

func TestPresetsTable3(t *testing.T) {
	if len(Presets) != 8 {
		t.Fatalf("Table 3 has 8 tensors, got %d", len(Presets))
	}
	for _, p := range Presets {
		if p.NNZ <= 0 || len(p.Dims) < 3 {
			t.Errorf("%s: bad preset", p.Name)
		}
	}
	if _, err := FindPreset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	p, err := FindPreset("Vast")
	if err != nil || len(p.Dims) != 5 {
		t.Errorf("Vast preset: %v %v", p, err)
	}
}

func TestGenerateScalesAndDeterministic(t *testing.T) {
	p, _ := FindPreset("Chicago")
	a := Generate(p, 5000, 7)
	b := Generate(p, 5000, 7)
	if !a.Equal(b) {
		t.Fatal("generator not deterministic")
	}
	if a.NNZ() < 4000 || a.NNZ() > 5000 {
		t.Fatalf("nnz = %d, want ~5000", a.NNZ())
	}
	if !a.IsSorted() {
		t.Fatal("generated tensor not sorted")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// No duplicate coordinates after dedup.
	for i := 1; i < a.NNZ(); i++ {
		if a.Compare(i-1, i) == 0 {
			t.Fatal("duplicate coordinate survived")
		}
	}
	c := Generate(p, 5000, 8)
	if a.Equal(c) {
		t.Fatal("different seeds gave identical tensors")
	}
}

func TestGenerateKeepsDensityRegime(t *testing.T) {
	p, _ := FindPreset("Uracil")
	a := Generate(p, 20000, 1)
	card := 1.0
	for _, d := range a.Dims {
		card *= float64(d)
	}
	density := float64(a.NNZ()) / card
	// Uracil's density is 4.2e-2; scaled version must stay within ~4x.
	if density < p.Density/4 || density > p.Density*4 {
		t.Fatalf("density %.3g, preset %.3g", density, p.Density)
	}
}

func TestWorkloadContractModes(t *testing.T) {
	p, _ := FindPreset("Chicago") // order 4
	w := Workload{Preset: p, Modes: 2}
	cx, cy := w.ContractModes()
	if len(cx) != 2 || cx[0] != 2 || cx[1] != 3 {
		t.Fatalf("trailing modes = %v", cx)
	}
	ws := Workload{Preset: p, Modes: 2, Star: true}
	sx, _ := ws.ContractModes()
	if sx[0] != 0 || sx[1] != 1 {
		t.Fatalf("starred leading modes = %v", sx)
	}
	if w.Name() != "Chicago 2-Mode" || ws.Name() != "Chicago* 2-Mode" {
		t.Fatalf("names: %q %q", w.Name(), ws.Name())
	}
	_ = cy
	// Modes capped at order-1 so at least one free mode remains.
	w4 := Workload{Preset: p, Modes: 9}
	cx4, _ := w4.ContractModes()
	if len(cx4) != 3 {
		t.Fatalf("capped modes = %v", cx4)
	}
}

func TestFig4AndFig7Workloads(t *testing.T) {
	if got := len(Fig4Workloads()); got != 15 {
		t.Fatalf("Fig4 has %d workloads, want 15", got)
	}
	if got := len(Fig7Workloads()); got != 15 {
		t.Fatalf("Fig7 has %d workloads, want 15", got)
	}
}

// TestWorkloadRunsEndToEnd generates a small workload and contracts it with
// all three algorithms, checking agreement.
func TestWorkloadRunsEndToEnd(t *testing.T) {
	p, _ := FindPreset("Uber")
	x := Generate(p, 1500, 3)
	w := Workload{Preset: p, Modes: 2}
	cx, cy := w.ContractModes()
	var ref *coo.Tensor
	for _, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgSparta} {
		z, rep, err := core.Contract(x, x, cx, cy, core.Options{Algorithm: alg, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if rep.NNZZ == 0 {
			t.Fatalf("%v: empty result for a self-contraction", alg)
		}
		if ref == nil {
			ref = z
			continue
		}
		if z.NNZ() != ref.NNZ() {
			t.Fatalf("%v: nnz %d vs %d", alg, z.NNZ(), ref.NNZ())
		}
		for i := 0; i < z.NNZ(); i++ {
			d := z.Vals[i] - ref.Vals[i]
			if d < -1e-6 || d > 1e-6 {
				t.Fatalf("%v: value mismatch at %d", alg, i)
			}
		}
	}
}

func TestHubbardSpecsTable4(t *testing.T) {
	if len(HubbardSpecs) != 10 {
		t.Fatalf("Table 4 has 10 rows, got %d", len(HubbardSpecs))
	}
	for _, s := range HubbardSpecs {
		if len(s.XDims) != 5 || len(s.YDims) != 4 {
			t.Errorf("SpTC%d: orders wrong", s.ID)
		}
		for k := range s.CModesX {
			if s.XDims[s.CModesX[k]] != s.YDims[s.CModesY[k]] {
				t.Errorf("SpTC%d: contract pair %d dims %d vs %d", s.ID, k,
					s.XDims[s.CModesX[k]], s.YDims[s.CModesY[k]])
			}
		}
	}
	if _, _, _, err := Hubbard(0, 1); err == nil {
		t.Error("id 0 accepted")
	}
	if _, _, _, err := Hubbard(11, 1); err == nil {
		t.Error("id 11 accepted")
	}
}

func TestHubbardGeneration(t *testing.T) {
	x, y, spec, err := Hubbard(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Block counts are capped by the uniform partition's sector-tuple
	// space; they must never exceed the table and must be substantial.
	if x.NumBlocks() > spec.XBlocks || x.NumBlocks() < spec.XBlocks/2 {
		t.Fatalf("X blocks = %d, target %d", x.NumBlocks(), spec.XBlocks)
	}
	if y.NumBlocks() == 0 || y.NumBlocks() > spec.YBlocks {
		t.Fatalf("Y blocks = %d, target %d", y.NumBlocks(), spec.YBlocks)
	}
	xd := x.Dims()
	for m := range xd {
		if xd[m] != spec.XDims[m] {
			t.Fatalf("X dims = %v", xd)
		}
	}
	// The mechanism Fig. 5 relies on: only a small fraction of the dense
	// block elements survive the cutoff (element-wise sparsity inside
	// blocks), and the absolute count is near the table's target scaled
	// by the realized block coverage.
	nnz := x.NNZ(HubbardCutoff)
	fill := float64(nnz) / float64(x.DenseElems())
	if fill > 0.05 {
		t.Fatalf("in-block fill %.3f, want < 5%%", fill)
	}
	want := spec.XNNZ
	if nnz < want/2 || nnz > want*3/2 {
		t.Fatalf("X nnz = %d, want within 50%% of %d", nnz, want)
	}
	// Deterministic.
	x2, _, _, _ := Hubbard(1, 42)
	if x2.NNZ(HubbardCutoff) != nnz {
		t.Fatal("Hubbard generation not deterministic")
	}
}

func TestHubbardPartition(t *testing.T) {
	p := hubbardPartition(7)
	var sum uint64
	for _, s := range p {
		sum += s
	}
	if sum != 7 || len(p) != 2 {
		t.Fatalf("partition(7) = %v", p)
	}
	if len(hubbardPartition(129)) != 33 {
		t.Fatalf("partition(129) = %v", hubbardPartition(129))
	}
}

func TestRandomSkewedSkews(t *testing.T) {
	// With alpha >> 1, mass concentrates at low indices.
	skew := RandomSkewed([]uint64{1000}, 3000, 3.0, 1)
	uni := RandomSkewed([]uint64{1000}, 3000, 1.0, 1)
	msk, mun := 0.0, 0.0
	for i := 0; i < skew.NNZ(); i++ {
		msk += float64(skew.Inds[0][i])
	}
	for i := 0; i < uni.NNZ(); i++ {
		mun += float64(uni.Inds[0][i])
	}
	if msk/float64(skew.NNZ()) >= mun/float64(uni.NNZ()) {
		t.Fatal("alpha=3 did not skew toward low indices")
	}
}
