// Package gen produces the evaluation workloads. The paper's datasets are
// multi-GB FROSTT tensors and a quantum-chemistry CCSD tensor; per the
// reproduction's substitution policy (DESIGN.md §2) each is replaced by a
// deterministic synthetic generator that preserves the features SpTC cost
// depends on — order, relative mode sizes, non-zero density, and index skew
// — scaled so the whole evaluation runs on one machine.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sparta/internal/coo"
)

// Preset describes one of the paper's datasets (Table 3).
type Preset struct {
	Name    string
	Dims    []uint64 // the paper's full mode sizes
	NNZ     int      // the paper's non-zero count
	Density float64  // as reported in Table 3
	// Alpha is the index-skew exponent: mode indices are drawn as
	// floor(dim * u^Alpha); 1 = uniform, >1 concentrates mass near low
	// indices the way real web/social tensors do.
	Alpha float64
}

// Presets lists Table 3 in the paper's order.
var Presets = []Preset{
	{Name: "Nell-2", Dims: []uint64{12092, 9184, 28818}, NNZ: 76879419, Density: 2.4e-5, Alpha: 1.6},
	{Name: "NIPS", Dims: []uint64{2482, 2862, 14036, 17}, NNZ: 3101609, Density: 1.8e-6, Alpha: 1.3},
	{Name: "Uber", Dims: []uint64{183, 24, 1140, 1717}, NNZ: 3309490, Density: 2e-4, Alpha: 1.2},
	{Name: "Chicago", Dims: []uint64{6186, 24, 77, 32}, NNZ: 5330673, Density: 1e-2, Alpha: 1.1},
	{Name: "Uracil", Dims: []uint64{90, 90, 174, 174}, NNZ: 10292910, Density: 4.2e-2, Alpha: 1.0},
	{Name: "Flickr", Dims: []uint64{319686, 28153045, 1607191, 731}, NNZ: 112890310, Density: 1.1e-4, Alpha: 1.8},
	{Name: "Delicious", Dims: []uint64{532924, 17262471, 2480308, 1443}, NNZ: 140126181, Density: 4.3e-5, Alpha: 1.8},
	{Name: "Vast", Dims: []uint64{165427, 11374, 2, 100, 89}, NNZ: 26021945, Density: 8e-7, Alpha: 1.2},
}

// FindPreset returns the preset with the given (case-sensitive) name.
func FindPreset(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("gen: unknown preset %q", name)
}

// Generate synthesizes a preset scaled to about targetNNZ non-zeros.
// Every mode size is scaled by the same factor f with f^order =
// targetNNZ / preset.NNZ, which preserves the non-zero density and the
// relative mode sizes. The result is sorted and duplicate-free.
func Generate(p Preset, targetNNZ int, seed int64) *coo.Tensor {
	if targetNNZ <= 0 || targetNNZ > p.NNZ {
		targetNNZ = p.NNZ
	}
	order := len(p.Dims)
	f := math.Pow(float64(targetNNZ)/float64(p.NNZ), 1/float64(order))
	dims := make([]uint64, order)
	for m, d := range p.Dims {
		s := uint64(math.Round(float64(d) * f))
		if s < 2 {
			s = 2
		}
		if s > d {
			s = d
		}
		dims[m] = s
	}
	return RandomSkewed(dims, targetNNZ, p.Alpha, seed)
}

// RandomSkewed draws a sparse tensor with about nnz distinct non-zeros,
// mode indices skewed by alpha, values uniform in (0.1, 1.1]. Deterministic
// in seed. The tensor is sorted with duplicates merged, so the realized
// non-zero count can be slightly below the request.
func RandomSkewed(dims []uint64, nnz int, alpha float64, seed int64) *coo.Tensor {
	t := coo.MustNew(dims, nnz)
	rng := rand.New(rand.NewSource(seed))
	idx := make([]uint32, len(dims))
	// Oversample a little; sorting + dedup removes collisions.
	n := nnz + nnz/16 + 4
	for i := 0; i < n; i++ {
		for m, d := range dims {
			u := rng.Float64()
			if alpha != 1.0 {
				u = math.Pow(u, alpha)
			}
			v := uint64(u * float64(d))
			if v >= d {
				v = d - 1
			}
			idx[m] = uint32(v)
		}
		t.Append(idx, 0.1+rng.Float64())
	}
	t.Sort(1)
	t.Dedup()
	trim(t, nnz)
	return t
}

// Random draws a uniform sparse tensor (alpha = 1).
func Random(dims []uint64, nnz int, seed int64) *coo.Tensor {
	return RandomSkewed(dims, nnz, 1.0, seed)
}

// trim drops non-zeros past n, keeping the tensor sorted. Dropping a random
// subset would be marginally more uniform, but the draws are i.i.d. so a
// prefix of the sorted order is itself an unbiased coordinate sample.
func trim(t *coo.Tensor, n int) {
	if t.NNZ() <= n {
		return
	}
	// Drop every k-th element to reach n without biasing toward low
	// coordinates.
	keep := make([]int, 0, n)
	total := t.NNZ()
	for i := 0; i < n; i++ {
		keep = append(keep, i*total/n)
	}
	for m := range t.Inds {
		col := t.Inds[m]
		for w, src := range keep {
			col[w] = col[src]
		}
		t.Inds[m] = col[:n]
	}
	for w, src := range keep {
		t.Vals[w] = t.Vals[src]
	}
	t.Vals = t.Vals[:n]
}

// Workload is one of the paper's 15 dataset-contraction combinations:
// a preset plus the number of contract modes. Star marks the alternative
// expression ("Chicago*" etc.) used in the heterogeneous-memory section,
// which contracts the *leading* modes instead of the trailing ones.
type Workload struct {
	Preset Preset
	Modes  int // number of contract modes (1, 2, or 3)
	Star   bool
}

// Name renders e.g. "Chicago 2-Mode" or "NIPS* 3-Mode".
func (w Workload) Name() string {
	star := ""
	if w.Star {
		star = "*"
	}
	return fmt.Sprintf("%s%s %d-Mode", w.Preset.Name, star, w.Modes)
}

// ContractModes returns the (cmodesX, cmodesY) lists for a self-contraction
// of an order-N preset tensor: the trailing Modes modes of both tensors
// (leading modes for starred expressions). Using the same mode list on both
// sides keeps paired mode sizes trivially equal.
func (w Workload) ContractModes() (cx, cy []int) {
	order := len(w.Preset.Dims)
	m := w.Modes
	if m > order-1 {
		m = order - 1
	}
	cx = make([]int, m)
	for k := 0; k < m; k++ {
		if w.Star {
			cx[k] = k
		} else {
			cx[k] = order - m + k
		}
	}
	cy = append([]int(nil), cx...)
	return cx, cy
}

// Fig4Workloads are the 15 combinations of Figure 4 (and the 28–576×
// headline): Chicago, NIPS, Uber, Vast, Uracil × 1/2/3-mode.
func Fig4Workloads() []Workload {
	names := []string{"Chicago", "NIPS", "Uber", "Vast", "Uracil"}
	var ws []Workload
	for _, modes := range []int{1, 2, 3} {
		for _, n := range names {
			p, _ := FindPreset(n)
			ws = append(ws, Workload{Preset: p, Modes: modes})
		}
	}
	return ws
}

// Fig7Workloads are the heterogeneous-memory combinations of Figures 7/9:
// starred Chicago/NIPS/Vast plus Flickr, Delicious, Nell-2 at 1/2/3 modes
// (Table: some combinations are absent in the paper because they exceed the
// machine's memory; we keep the paper's visible set).
func Fig7Workloads() []Workload {
	type spec struct {
		name string
		star bool
	}
	rows := map[int][]spec{
		1: {{"Chicago", true}, {"NIPS", true}, {"Vast", true}, {"Flickr", false}},
		2: {{"Chicago", true}, {"NIPS", true}, {"Vast", true}, {"Flickr", false}, {"Delicious", false}, {"Nell-2", false}},
		3: {{"Chicago", true}, {"NIPS", true}, {"Vast", true}, {"Flickr", false}, {"Delicious", false}},
	}
	var ws []Workload
	for _, modes := range []int{1, 2, 3} {
		for _, s := range rows[modes] {
			p, _ := FindPreset(s.name)
			ws = append(ws, Workload{Preset: p, Modes: modes, Star: s.star})
		}
	}
	return ws
}

// SortPresetNames returns preset names sorted, for CLI listings.
func SortPresetNames() []string {
	names := make([]string, len(Presets))
	for i, p := range Presets {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
