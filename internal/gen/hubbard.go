package gen

import (
	"fmt"
	"math/rand"

	"sparta/internal/blocksparse"
)

// HubbardSpec describes one of the ten SpTC pairs of Table 4 (tensors from
// ITensor's Hubbard-2D model): tensor shapes, target element-wise non-zero
// counts (after the 1e-8 cutoff), block counts, and the contract modes used
// for the Figure 5 comparison.
type HubbardSpec struct {
	ID                 int
	XDims              []uint64
	XNNZ, XBlocks      int
	YDims              []uint64
	YNNZ, YBlocks      int
	CModesX, CModesY   []int
	XDensity, YDensity float64
}

// HubbardCutoff is the truncation threshold the paper applies to the
// Hubbard-2D tensors before feeding them to Sparta.
const HubbardCutoff = 1e-8

// HubbardSpecs is Table 4. Contract modes pair X's quantum-number-shared
// modes with Y's (sizes 24-or-36 and 4), chosen per row so paired dims
// match.
var HubbardSpecs = []HubbardSpec{
	{ID: 1, XDims: []uint64{129, 4, 184, 24, 4}, XNNZ: 109287, XBlocks: 10453, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 4.8e-3, YDensity: 6.9e-3},
	{ID: 2, XDims: []uint64{129, 4, 184, 24, 4}, XNNZ: 114877, XBlocks: 12044, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 5.0e-3, YDensity: 6.9e-3},
	{ID: 3, XDims: []uint64{4, 129, 184, 24, 4}, XNNZ: 114877, XBlocks: 12044, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 5.0e-3, YDensity: 6.9e-3},
	{ID: 4, XDims: []uint64{4, 131, 4, 24, 413}, XNNZ: 262218, XBlocks: 12345, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 2}, CModesY: []int{0, 2}, XDensity: 6.3e-3, YDensity: 6.9e-3},
	{ID: 5, XDims: []uint64{131, 4, 413, 36, 4}, XNNZ: 377629, XBlocks: 17594, YDims: []uint64{36, 24, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 4.8e-3, YDensity: 5.9e-3},
	{ID: 6, XDims: []uint64{4, 131, 4, 24, 413}, XNNZ: 268813, XBlocks: 13288, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 2}, CModesY: []int{0, 2}, XDensity: 6.4e-3, YDensity: 6.9e-3},
	{ID: 7, XDims: []uint64{131, 4, 413, 36, 4}, XNNZ: 388132, XBlocks: 19367, YDims: []uint64{36, 24, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 5.2e-3, YDensity: 5.9e-3},
	{ID: 8, XDims: []uint64{4, 4, 131, 24, 413}, XNNZ: 268813, XBlocks: 13288, YDims: []uint64{24, 36, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 1}, CModesY: []int{0, 2}, XDensity: 6.5e-3, YDensity: 6.9e-3},
	{ID: 9, XDims: []uint64{4, 131, 413, 36, 4}, XNNZ: 388132, XBlocks: 19367, YDims: []uint64{36, 24, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 4}, CModesY: []int{0, 2}, XDensity: 5.2e-3, YDensity: 5.9e-3},
	{ID: 10, XDims: []uint64{4, 110, 4, 36, 486}, XNNZ: 396193, XBlocks: 17152, YDims: []uint64{36, 24, 4, 4}, YNNZ: 360, YBlocks: 218, CModesX: []int{3, 2}, CModesY: []int{0, 2}, XDensity: 6.4e-3, YDensity: 5.9e-3},
}

// hubbardPartition splits a mode of size d into quantum-number sectors of
// size 4 (plus a remainder). Size 4 matches the average block extents the
// Table 4 block counts and densities imply (~4^order elements per block,
// with ~0.5-2% of in-block elements surviving the 1e-8 cutoff — the
// element-wise sparsity inside dense blocks that Fig. 5 exploits). The same
// function is used for every tensor, so paired contract modes always have
// identical partitions.
func hubbardPartition(d uint64) []uint64 {
	var parts []uint64
	for d >= 4 {
		parts = append(parts, 4)
		d -= 4
	}
	if d > 0 {
		parts = append(parts, d)
	}
	return parts
}

// Hubbard synthesizes the SpTC pair for Table 4 row id (1-based) at full
// paper scale. Blocks are distinct random sector tuples; inside each block,
// elements exceed the 1e-8 cutoff with the probability that makes the
// expected post-cutoff non-zero count match the table.
func Hubbard(id int, seed int64) (x, y *blocksparse.Tensor, spec HubbardSpec, err error) {
	if id < 1 || id > len(HubbardSpecs) {
		return nil, nil, HubbardSpec{}, fmt.Errorf("gen: Hubbard id %d out of range [1,%d]", id, len(HubbardSpecs))
	}
	spec = HubbardSpecs[id-1]
	rng := rand.New(rand.NewSource(seed + int64(id)*7919))
	if x, err = hubbardTensor(spec.XDims, spec.XBlocks, spec.XNNZ, rng); err != nil {
		return nil, nil, spec, err
	}
	if y, err = hubbardTensor(spec.YDims, spec.YBlocks, spec.YNNZ, rng); err != nil {
		return nil, nil, spec, err
	}
	return x, y, spec, nil
}

func hubbardTensor(dims []uint64, nblocks, nnz int, rng *rand.Rand) (*blocksparse.Tensor, error) {
	parts := make([][]uint64, len(dims))
	secCount := make([]int, len(dims))
	possible := 1.0
	for m, d := range dims {
		parts[m] = hubbardPartition(d)
		secCount[m] = len(parts[m])
		possible *= float64(secCount[m])
	}
	// The real quantum-number partitions are irregular and admit more
	// sector tuples than our uniform size-4 partition; when the table asks
	// for more blocks than exist, take them all (the generated counts are
	// reported next to the targets by sptc-bench -exp table4).
	if float64(nblocks) > possible {
		nblocks = int(possible)
	}
	t, err := blocksparse.New(parts)
	if err != nil {
		return nil, err
	}
	// Draw distinct sector tuples.
	chosen := make(map[string]bool, nblocks)
	sec := make([]uint32, len(dims))
	capacity := 0
	var secs [][]uint32
	for len(secs) < nblocks {
		key := ""
		for m := range dims {
			sec[m] = uint32(rng.Intn(secCount[m]))
			key += fmt.Sprintf("%d,", sec[m])
		}
		if chosen[key] {
			continue
		}
		chosen[key] = true
		s := append([]uint32(nil), sec...)
		secs = append(secs, s)
		capacity += t.BlockElems(s)
	}
	fill := float64(nnz) / float64(capacity)
	if fill > 1 {
		fill = 1
	}
	for _, s := range secs {
		data := make([]float64, t.BlockElems(s))
		for i := range data {
			if rng.Float64() < fill {
				data[i] = (0.1 + 0.9*rng.Float64()) * sign(rng)
			} else {
				// Below the cutoff: present in the dense block but
				// truncated away in the element-wise view.
				data[i] = 1e-10 * rng.Float64() * sign(rng)
			}
		}
		if err := t.SetBlock(s, data); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
