package core

import (
	"time"

	"sparta/internal/obs"
)

// stageKey maps a Stage to its Prometheus label value (short, stable,
// lowercase — Stage.String() stays the human-facing table label).
var stageKey = [NumStages]string{
	StageInput:  "input",
	StageSearch: "search",
	StageAccum:  "accum",
	StageWrite:  "write",
	StageSort:   "sort",
}

// publishMetrics folds one finished contraction into the registry: the
// Report's per-stage wall times and counters, plus the distribution metrics
// only the workers hold — probe-length shards, per-worker busy time, Zlocal
// growth, and the resulting load imbalance. symWs carries the two-phase
// symbolic workers (nil otherwise). Everything here runs once per Contract,
// after the parallel sections — never on the hot path.
func publishMetrics(reg *obs.Registry, rep *Report, ws, symWs []*worker) {
	if reg == nil {
		return
	}
	alg, kern := rep.Algorithm.String(), rep.Kernel.String()
	reg.Counter("sptc_contractions_total", "contractions completed",
		"alg", alg, "kernel", kern).Inc()
	reg.Counter("sptc_threads_used_total", "worker threads summed over contractions").Add(uint64(rep.Threads))

	for s := Stage(0); s < NumStages; s++ {
		reg.Histogram("sptc_stage_wall_seconds", "wall time per SpTC stage",
			obs.TimeBuckets, "stage", stageKey[s]).Observe(rep.StageWall[s].Seconds())
	}
	if rep.HtYBuild > 0 {
		reg.Histogram("sptc_hty_build_seconds", "COO Y to HtY conversion wall time",
			obs.TimeBuckets, "kernel", kern).Observe(rep.HtYBuild.Seconds())
	}
	if rep.Symbolic > 0 {
		reg.Histogram("sptc_symbolic_wall_seconds", "two-phase symbolic phase wall time",
			obs.TimeBuckets).Observe(rep.Symbolic.Seconds())
	}

	reg.Counter("sptc_hty_probes_total", "HtY bucket/slot inspections").Add(rep.ProbesHtY)
	reg.Counter("sptc_hta_probes_total", "HtA chain/slot inspections").Add(rep.ProbesHtA)
	reg.Counter("sptc_products_total", "scalar multiply-adds", "alg", alg).Add(rep.Products)
	reg.Counter("sptc_search_steps_total", "baseline COO-Y linear search steps").Add(rep.SearchSteps)
	reg.Counter("sptc_y_lookups_total", "index-search outcomes", "outcome", "hit").Add(rep.HitsY)
	reg.Counter("sptc_y_lookups_total", "index-search outcomes", "outcome", "miss").Add(rep.MissY)
	reg.Counter("sptc_accum_total", "accumulator Add outcomes", "outcome", "hit").Add(rep.AccumHits)
	reg.Counter("sptc_accum_total", "accumulator Add outcomes", "outcome", "miss").Add(rep.AccumMiss)

	byteGauges := []struct {
		object string
		v      uint64
	}{
		{"x", rep.BytesX}, {"y", rep.BytesY}, {"hty", rep.BytesHtY},
		{"hta", rep.BytesHtA}, {"zlocal", rep.BytesZLocal}, {"z", rep.BytesZ},
	}
	for _, g := range byteGauges {
		reg.Gauge("sptc_object_bytes", "memory footprint of the last contraction's objects",
			"object", g.object).Set(float64(g.v))
	}
	reg.Gauge("sptc_output_nnz", "non-zeros of the last output tensor Z").Set(float64(rep.NNZZ))

	// Radix-sort engine telemetry (stage ①): partition count plus a skew
	// ratio — largest MSD partition over the perfectly balanced share, so
	// 1.0 means uniform key bytes and 256.0 means one byte value held every
	// key. Pass counters expose how much the constant-byte skip saves.
	if st := rep.XSort.Stats; rep.XSort.Radix {
		reg.Counter("sptc_sort_radix_passes_total", "radix byte passes executed by the X sort").Add(uint64(st.Passes))
		reg.Counter("sptc_sort_radix_skipped_total", "radix byte passes skipped as constant").Add(uint64(st.Skipped))
		if st.Partitions > 0 && rep.NNZX > 0 {
			reg.Gauge("sptc_sort_partitions", "non-empty MSD partitions in the last X sort").
				Set(float64(st.Partitions))
			reg.Gauge("sptc_sort_partition_skew", "largest MSD partition over the balanced share (1.0 = uniform)").
				Set(float64(st.MaxRun) * float64(st.Partitions) / float64(rep.NNZX))
		}
	}
	if rep.SubsortWall > 0 {
		reg.Histogram("sptc_fused_subsort_seconds", "per-run LN(Fy) sort time inside the fused writeback",
			obs.TimeBuckets).Observe(rep.SubsortWall.Seconds())
	}

	htyH := reg.Histogram("sptc_hty_probe_length", "HtY probes per index-search lookup",
		obs.ProbeBuckets, "kernel", kern)
	htaH := reg.Histogram("sptc_hta_probe_length", "HtA chain/probe length per accumulate",
		obs.ProbeBuckets, "kernel", kern)
	busyH := reg.Histogram("sptc_worker_busy_seconds", "per-worker compute time (search+accum+write)",
		obs.TimeBuckets)
	zlocalH := reg.Histogram("sptc_zlocal_bytes", "per-worker Zlocal buffer footprint",
		obs.ByteBuckets)

	var maxBusy, sumBusy float64
	mergeWorkers := func(workers []*worker, numeric bool) {
		for _, w := range workers {
			htyH.Merge(w.htyProbe)
			if w.hta != nil {
				htaH.Merge(w.hta.ProbeHist)
			}
			if w.htaF != nil {
				htaH.Merge(w.htaF.ProbeHist)
			}
			if !numeric {
				continue
			}
			busy := time.Duration(w.searchNS + w.accumNS + w.writeNS).Seconds()
			busyH.Observe(busy)
			sumBusy += busy
			if busy > maxBusy {
				maxBusy = busy
			}
			if b := w.z.bytes(); b > 0 {
				zlocalH.Observe(float64(b))
			}
		}
	}
	mergeWorkers(ws, true)
	mergeWorkers(symWs, false)

	// Load imbalance = slowest worker over the mean: 1.0 is a perfect split
	// of the sub-tensor chunks, 2.0 means one worker did twice its share.
	if mean := sumBusy / float64(len(ws)); mean > 0 {
		reg.Gauge("sptc_worker_load_imbalance", "max worker busy time over mean (1.0 = balanced)").
			Set(maxBusy / mean)
	}
}
