package core

import (
	"testing"

	"sparta/internal/obs"
)

// BenchmarkContract pins the cost of the observability layer on the full
// contraction path: "off" is the default nil-Tracer/nil-Metrics
// configuration (the DESIGN.md §8 near-zero-cost claim), the other
// sub-benchmarks turn the layers on. Compare off against a pre-obs build to
// bound the unconfigured overhead.
func BenchmarkContract(b *testing.B) {
	x := randomSparse([]uint64{60, 70, 50}, 8000, 1)
	y := randomSparse([]uint64{70, 50, 65}, 8000, 2)
	run := func(b *testing.B, opt Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, _, err := Contract(x, y, []int{1, 2}, []int{0, 1}, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, k := range []Kernel{KernelFlat, KernelChained} {
		base := Options{Algorithm: AlgSparta, Kernel: k, Threads: 2}
		b.Run("off/"+k.String(), func(b *testing.B) {
			run(b, base)
		})
		b.Run("metrics/"+k.String(), func(b *testing.B) {
			opt := base
			opt.Metrics = obs.NewRegistry()
			run(b, opt)
		})
		b.Run("trace+metrics/"+k.String(), func(b *testing.B) {
			opt := base
			opt.Tracer = obs.NewTracer()
			opt.Metrics = obs.NewRegistry()
			run(b, opt)
		})
	}
}
