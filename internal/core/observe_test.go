package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sparta/internal/obs"
)

// findSnap returns the first snapshot matching name and a label substring
// ("" matches any label set).
func findSnap(snaps []obs.Snapshot, name, labelSub string) *obs.Snapshot {
	for i := range snaps {
		if snaps[i].Name == name && strings.Contains(snaps[i].Labels, labelSub) {
			return &snaps[i]
		}
	}
	return nil
}

// TestContractObservability runs an instrumented contraction and checks the
// three pillars at once: the trace has spans, the registry has the probe
// histograms, and the published stage-wall metrics agree with Report.StageWall.
func TestContractObservability(t *testing.T) {
	x := randomSparse([]uint64{40, 50, 30}, 1500, 1)
	y := randomSparse([]uint64{50, 30, 45}, 1500, 2)

	for _, alg := range []Algorithm{AlgSparta, AlgTwoPhase} {
		for _, kern := range []Kernel{KernelFlat, KernelChained} {
			tr := obs.NewTracer()
			reg := obs.NewRegistry()
			_, rep, err := Contract(x, y, []int{1, 2}, []int{0, 1}, Options{
				Algorithm: alg, Kernel: kern, Threads: 3, Tracer: tr, Metrics: reg,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, kern, err)
			}
			if tr.Len() == 0 {
				t.Fatalf("%v/%v: tracer recorded no events", alg, kern)
			}
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Fatalf("%v/%v: trace export is not valid JSON", alg, kern)
			}

			snaps := reg.Snapshot()
			hty := findSnap(snaps, "sptc_hty_probe_length", "")
			if hty == nil || hty.Count == 0 {
				t.Fatalf("%v/%v: HtY probe histogram missing or empty", alg, kern)
			}
			if hty.Count != rep.HitsY+rep.MissY {
				t.Errorf("%v/%v: HtY probe observations %d != lookups %d",
					alg, kern, hty.Count, rep.HitsY+rep.MissY)
			}
			hta := findSnap(snaps, "sptc_hta_probe_length", "")
			if hta == nil || hta.Count == 0 {
				t.Fatalf("%v/%v: HtA probe histogram missing or empty", alg, kern)
			}
			// One Add per product; the two-phase symbolic workers add a
			// second structural pass, so >= is the invariant across algs.
			if hta.Count < rep.Products {
				t.Errorf("%v/%v: HtA probe observations %d < products %d",
					alg, kern, hta.Count, rep.Products)
			}

			// Consistency with Report.StageWall: each stage's wall time was
			// observed once, so the histogram sum over all stages equals the
			// report total (sans HtY build, which is inside StageInput).
			var sumWall float64
			for s := Stage(0); s < NumStages; s++ {
				sn := findSnap(snaps, "sptc_stage_wall_seconds", `stage="`+stageKey[s]+`"`)
				if sn == nil || sn.Count != 1 {
					t.Fatalf("%v/%v: stage %v wall metric missing", alg, kern, s)
				}
				if got, want := sn.Sum, rep.StageWall[s].Seconds(); got != want {
					t.Errorf("%v/%v: stage %v wall metric %v != report %v", alg, kern, s, got, want)
				}
				sumWall += sn.Sum
			}
			var wantWall float64
			for s := Stage(0); s < NumStages; s++ {
				wantWall += rep.StageWall[s].Seconds()
			}
			if got := sumWall; got < wantWall*0.999 || got > wantWall*1.001 {
				t.Errorf("%v/%v: stage wall sum %v != report sum %v", alg, kern, got, wantWall)
			}

			if g := findSnap(snaps, "sptc_output_nnz", ""); g == nil || g.Value != float64(rep.NNZZ) {
				t.Errorf("%v/%v: output nnz gauge inconsistent with report", alg, kern)
			}
			if g := findSnap(snaps, "sptc_worker_load_imbalance", ""); g == nil || g.Value < 1 {
				t.Errorf("%v/%v: load imbalance gauge missing or < 1", alg, kern)
			}
		}
	}
}

// TestContractUnconfigured pins the zero-cost path: no tracer, no registry,
// and the contraction is oblivious.
func TestContractUnconfigured(t *testing.T) {
	x := randomSparse([]uint64{20, 20}, 200, 3)
	y := randomSparse([]uint64{20, 20}, 200, 4)
	z, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() == 0 || rep == nil {
		t.Fatal("contraction under nil observability failed")
	}
}
