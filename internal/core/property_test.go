package core

import (
	"math"
	"testing"

	"sparta/internal/coo"
)

// TestModeOrderInvariance: permuting the modes of X (and remapping the
// contract-mode list accordingly) must not change the *set* of output
// non-zeros when the free-mode order is preserved. This is the algebraic
// identity behind the paper's input-processing stage: permutation is
// bookkeeping, not computation.
func TestModeOrderInvariance(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		x := randomSparse([]uint64{5, 6, 4, 3}, 60, int64(400+trial))
		y := randomSparse([]uint64{4, 3, 7}, 30, int64(500+trial))
		ref, _, err := Contract(x, y, []int{2, 3}, []int{0, 1}, Options{Algorithm: AlgSparta})
		if err != nil {
			t.Fatal(err)
		}

		// Swap X's two contract modes (modes 2 and 3) and the pairing.
		xp := x.Clone()
		if err := xp.Permute([]int{0, 1, 3, 2}); err != nil {
			t.Fatal(err)
		}
		z2, _, err := Contract(xp, y, []int{3, 2}, []int{0, 1}, Options{Algorithm: AlgSparta})
		if err != nil {
			t.Fatal(err)
		}
		if !tensorsAlmostEqual(ref, z2) {
			t.Fatalf("trial %d: contract-mode permutation changed the result", trial)
		}

		// Also permute Y's contract modes and the pairing order together.
		yp := y.Clone()
		if err := yp.Permute([]int{1, 0, 2}); err != nil {
			t.Fatal(err)
		}
		z3, _, err := Contract(x, yp, []int{2, 3}, []int{1, 0}, Options{Algorithm: AlgSparta})
		if err != nil {
			t.Fatal(err)
		}
		if !tensorsAlmostEqual(ref, z3) {
			t.Fatalf("trial %d: Y-mode permutation changed the result", trial)
		}
	}
}

func tensorsAlmostEqual(a, b *coo.Tensor) bool {
	if a.NNZ() != b.NNZ() || len(a.Dims) != len(b.Dims) {
		return false
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return false
		}
		for i := range a.Inds[m] {
			if a.Inds[m][i] != b.Inds[m][i] {
				return false
			}
		}
	}
	for i := range a.Vals {
		if math.Abs(a.Vals[i]-b.Vals[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// TestKernelEquivalence: for a grid of random tensor shapes, mode choices,
// algorithms, and thread counts, the chained (seed) and flat kernels must
// produce identical sorted outputs — same coordinates, values equal up to
// accumulation-order rounding.
func TestKernelEquivalence(t *testing.T) {
	type shape struct {
		xd, yd []uint64
		cx, cy []int
	}
	shapes := []shape{
		{[]uint64{5, 6, 4, 3}, []uint64{4, 3, 7}, []int{2, 3}, []int{0, 1}},
		{[]uint64{8, 9}, []uint64{9, 7}, []int{1}, []int{0}},
		{[]uint64{4, 5, 3, 6}, []uint64{6, 2, 5}, []int{3, 1}, []int{0, 2}},
		{[]uint64{3, 20}, []uint64{20}, []int{1}, []int{0}}, // scalar-ish free side
		{[]uint64{6, 5}, []uint64{5, 6}, []int{0, 1}, []int{1, 0}},
	}
	for si, s := range shapes {
		for trial := 0; trial < 3; trial++ {
			x := randomSparse(s.xd, 20*len(s.xd)*(trial+1), int64(900+10*si+trial))
			y := randomSparse(s.yd, 15*len(s.yd)*(trial+1), int64(990+10*si+trial))
			for _, alg := range []Algorithm{AlgSparta, AlgCOOHtA, AlgTwoPhase} {
				for _, threads := range []int{1, 4} {
					ref, repC, err := Contract(x, y, s.cx, s.cy, Options{
						Algorithm: alg, Kernel: KernelChained, Threads: threads,
					})
					if err != nil {
						t.Fatalf("shape %d %v chained: %v", si, alg, err)
					}
					got, repF, err := Contract(x, y, s.cx, s.cy, Options{
						Algorithm: alg, Kernel: KernelFlat, Threads: threads,
					})
					if err != nil {
						t.Fatalf("shape %d %v flat: %v", si, alg, err)
					}
					if repC.Kernel != KernelChained || repF.Kernel != KernelFlat {
						t.Fatalf("report kernel not recorded: %v/%v", repC.Kernel, repF.Kernel)
					}
					if ref.NNZ() != got.NNZ() {
						t.Fatalf("shape %d %v threads=%d: nnz %d vs %d",
							si, alg, threads, ref.NNZ(), got.NNZ())
					}
					for i := 0; i < ref.NNZ(); i++ {
						for m := range ref.Inds {
							if ref.Inds[m][i] != got.Inds[m][i] {
								t.Fatalf("shape %d %v threads=%d: coordinate mismatch at %d",
									si, alg, threads, i)
							}
						}
						d := ref.Vals[i] - got.Vals[i]
						if d < -1e-9 || d > 1e-9 {
							t.Fatalf("shape %d %v threads=%d: value mismatch at %d: %v vs %v",
								si, alg, threads, i, ref.Vals[i], got.Vals[i])
						}
					}
				}
			}
		}
	}
}

// TestBadKernelRejected: out-of-range kernel selectors fail cleanly.
func TestBadKernelRejected(t *testing.T) {
	x := randomSparse([]uint64{4, 5}, 10, 1)
	y := randomSparse([]uint64{5, 3}, 10, 2)
	if _, _, err := Contract(x, y, []int{1}, []int{0}, Options{
		Algorithm: AlgSparta, Kernel: Kernel(7),
	}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestAdditivity: contracting (X1 ∪ X2) equals the element-wise sum of the
// two partial contractions (bilinearity in the first argument).
func TestAdditivity(t *testing.T) {
	x1 := randomSparse([]uint64{6, 5}, 20, 601)
	x2 := randomSparse([]uint64{6, 5}, 20, 602)
	y := randomSparse([]uint64{5, 7}, 25, 603)

	// Union with value accumulation on duplicates.
	xu := x1.Clone()
	idx := make([]uint32, 2)
	for i := 0; i < x2.NNZ(); i++ {
		x2.Index(i, idx)
		xu.Append(idx, x2.Vals[i])
	}
	xu.Sort(1)
	xu.Dedup()

	zu, _, err := Contract(xu, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	z1, _, err := Contract(x1, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	z2, _, err := Contract(x2, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	sum := map[[2]uint32]float64{}
	for _, z := range []*coo.Tensor{z1, z2} {
		for i := 0; i < z.NNZ(); i++ {
			sum[[2]uint32{z.Inds[0][i], z.Inds[1][i]}] += z.Vals[i]
		}
	}
	for i := 0; i < zu.NNZ(); i++ {
		k := [2]uint32{zu.Inds[0][i], zu.Inds[1][i]}
		if math.Abs(sum[k]-zu.Vals[i]) > 1e-9 {
			t.Fatalf("additivity violated at %v: %v vs %v", k, sum[k], zu.Vals[i])
		}
		delete(sum, k)
	}
	for k, v := range sum {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("coordinate %v missing from union contraction (value %v)", k, v)
		}
	}
}

// TestLNOverflowRejected: mode-size products beyond uint64 must fail
// cleanly at planning time, not corrupt keys.
func TestLNOverflowRejected(t *testing.T) {
	huge := []uint64{1 << 32, 1 << 32, 1 << 32}
	x := coo.MustNew([]uint64{4, 1 << 32}, 0)
	y := coo.MustNew(huge, 0)
	y.Append([]uint32{0, 0, 0}, 1)
	x.Append([]uint32{0, 0}, 1)
	// Contract X mode 1 with Y mode 0: Y's free dims are 2^32 * 2^32 =
	// 2^64, overflowing the LN representation.
	if _, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta}); err == nil {
		t.Fatal("free-mode overflow accepted")
	}
	// Contract modes themselves overflowing must also fail.
	x2 := coo.MustNew(huge, 0)
	y2 := coo.MustNew(huge, 0)
	if _, _, err := Contract(x2, y2, []int{0, 1, 2}, []int{0, 1, 2}, Options{Algorithm: AlgSparta}); err == nil {
		t.Fatal("contract-mode overflow accepted")
	}
}

// TestFusedWritebackMatchesSeed: the sort-fused gather must produce EXACTLY
// the tensor the seed pipeline produced — unfused worker-order gather
// followed by the full quicksort stage ⑤. Equality is bitwise (coo.Equal),
// not approximate: fused vs unfused move the same accumulated values, they
// never recombine them. Swept across algorithms, kernels, thread counts, and
// shapes including scalar outputs and free-side-only Y.
func TestFusedWritebackMatchesSeed(t *testing.T) {
	type shape struct {
		xd, yd []uint64
		cx, cy []int
	}
	shapes := []shape{
		{[]uint64{5, 6, 4, 3}, []uint64{4, 3, 7}, []int{2, 3}, []int{0, 1}},
		{[]uint64{8, 9}, []uint64{9, 7}, []int{1}, []int{0}},
		{[]uint64{4, 5, 3, 6}, []uint64{6, 2, 5}, []int{3, 1}, []int{0, 2}},
		{[]uint64{3, 20}, []uint64{20}, []int{1}, []int{0}},        // Z has no Y modes
		{[]uint64{6, 5}, []uint64{5, 6}, []int{0, 1}, []int{1, 0}}, // scalar Z
		{[]uint64{20}, []uint64{20, 9, 8}, []int{0}, []int{0}},     // Z has no X modes
	}
	for si, s := range shapes {
		x := randomSparse(s.xd, 40*len(s.xd), int64(1700+si))
		y := randomSparse(s.yd, 30*len(s.yd), int64(1800+si))
		for _, alg := range []Algorithm{AlgSPA, AlgCOOHtA, AlgSparta} {
			for _, kern := range []Kernel{KernelFlat, KernelChained} {
				for _, threads := range []int{1, 4} {
					fused, repF, err := Contract(x, y, s.cx, s.cy, Options{
						Algorithm: alg, Kernel: kern, Threads: threads,
					})
					if err != nil {
						t.Fatalf("shape %d %v fused: %v", si, alg, err)
					}
					// Seed path: unfused gather, then the seed quicksort.
					seed, repU, err := Contract(x, y, s.cx, s.cy, Options{
						Algorithm: alg, Kernel: kern, Threads: threads,
						UnfusedWriteback: true, SkipOutputSort: true,
					})
					if err != nil {
						t.Fatalf("shape %d %v unfused: %v", si, alg, err)
					}
					seed.SortWith(threads, coo.SortQuick)
					if !fused.IsSorted() {
						t.Fatalf("shape %d %v %v threads=%d: fused Z not sorted",
							si, alg, kern, threads)
					}
					if !fused.Equal(seed) {
						t.Fatalf("shape %d %v %v threads=%d: fused Z differs from seed pipeline",
							si, alg, kern, threads)
					}
					if repU.SubsortWall != 0 {
						t.Fatalf("unfused path reported a fused subsort time: %v", repU.SubsortWall)
					}
					_ = repF // SubsortWall can legitimately round to 0 on tiny inputs
				}
			}
		}
	}
}

// TestDuplicateInputCoordinates: inputs with repeated coordinates are legal
// COO (values accumulate implicitly through the products).
func TestDuplicateInputCoordinates(t *testing.T) {
	x := coo.MustNew([]uint64{3, 4}, 0)
	x.Append([]uint32{1, 2}, 2)
	x.Append([]uint32{1, 2}, 3) // duplicate
	y := coo.MustNew([]uint64{4, 2}, 0)
	y.Append([]uint32{2, 1}, 10)
	for _, alg := range allAlgorithms {
		z, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if z.NNZ() != 1 || math.Abs(z.Vals[0]-50) > 1e-12 {
			t.Fatalf("%v: duplicates mishandled: %v", alg, z.Vals)
		}
	}
}
