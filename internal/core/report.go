package core

import (
	"fmt"
	"strings"
	"time"

	"sparta/internal/coo"
)

// Algorithm selects the SpTC variant, numbered like the artifact's
// EXPERIMENT_MODES environment variable.
type Algorithm int

const (
	// AlgSPA is SpTC-SPA: COO Y with linear index search plus the
	// vector sparse accumulator (Algorithm 1). EXPERIMENT_MODES=0.
	AlgSPA Algorithm = 0
	// AlgCOOHtA keeps the COO Y linear search but accumulates into the
	// hash-table accumulator HtA. EXPERIMENT_MODES=1.
	AlgCOOHtA Algorithm = 1
	// AlgTwoPhase is the traditional symbolic+numeric SpTC the paper's
	// §3.2 argues against: a structure-only pass counts the exact output
	// size, then a second pass computes values into the exactly-sized Z
	// with no thread-local buffers and no gather. EXPERIMENT_MODES=2.
	AlgTwoPhase Algorithm = 2
	// AlgSparta is the full Sparta algorithm: hash-table Y and hash-table
	// accumulator (Algorithm 2). EXPERIMENT_MODES=3.
	AlgSparta Algorithm = 3
)

// String names the algorithm the way the paper's figures do.
func (a Algorithm) String() string {
	switch a {
	case AlgSPA:
		return "COOY+SPA"
	case AlgCOOHtA:
		return "COOY+HtA"
	case AlgTwoPhase:
		return "TwoPhase"
	case AlgSparta:
		return "HtY+HtA"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Kernel selects the hash-kernel layout family used by the HtY-probing
// algorithms (AlgSparta, AlgTwoPhase) and the HtA-accumulating ones
// (AlgSparta, AlgCOOHtA, AlgTwoPhase). The zero value is the flat family —
// the measured-faster default; the chained family is the seed implementation,
// kept selectable for A/B duels (sptc-bench -exp kernels).
type Kernel int

const (
	// KernelFlat uses the open-addressed flat kernels: HtYFlat (lock-free
	// two-pass build, CSR item arena, linear-probe key table) and HtAFlat
	// (inline key slots, no chain nodes).
	KernelFlat Kernel = 0
	// KernelChained uses the seed kernels: bucket-locked chained HtY
	// (or the two-pass chained build when Options.TwoPassHtY is set) and
	// the index-chained HtA.
	KernelChained Kernel = 1
)

// String names the kernel family.
func (k Kernel) String() string {
	switch k {
	case KernelFlat:
		return "flat"
	case KernelChained:
		return "chained"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Planner controls chain-level contraction-order planning. Only
// sparta.EvalChain consults it; single contractions ignore the field.
type Planner int

const (
	// PlannerOff executes chains exactly as written (the default).
	PlannerOff Planner = 0
	// PlannerAuto lets EvalChain reorder a chain's contractions when the
	// cost model prices a different tree below the written order. The
	// final output keeps its name, value, and mode order; intermediate
	// names become planner-generated.
	PlannerAuto Planner = 1
)

// String names the planner mode.
func (p Planner) String() string {
	switch p {
	case PlannerOff:
		return "off"
	case PlannerAuto:
		return "auto"
	default:
		return fmt.Sprintf("Planner(%d)", int(p))
	}
}

// Stage identifies one of the five SpTC stages (§3.1).
type Stage int

const (
	StageInput  Stage = iota // ① input processing
	StageSearch              // ② index search
	StageAccum               // ③ accumulation
	StageWrite               // ④ writeback
	StageSort                // ⑤ output sorting
	NumStages
)

// String returns the paper's stage name.
func (s Stage) String() string {
	switch s {
	case StageInput:
		return "Input Processing"
	case StageSearch:
		return "Index Search"
	case StageAccum:
		return "Accumulation"
	case StageWrite:
		return "Writeback"
	case StageSort:
		return "Output Sorting"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Report carries everything the evaluation harness needs from one
// contraction: per-stage wall times, operation counters (the quantities in
// Eqs. 3 and 4), and the sizes of the six data objects the
// heterogeneous-memory planner places (Table 2).
type Report struct {
	Algorithm Algorithm
	Kernel    Kernel // hash-kernel family the run used (AlgSparta/AlgTwoPhase/AlgCOOHtA)
	Threads   int

	// HtYBuild is the COO→HtY conversion wall time, separated from the
	// rest of StageInput (X permute+sort) so kernel duels compare exactly
	// the hash-table work. Zero when the build was skipped (HtYReused).
	HtYBuild time.Duration
	// HtYReused is true when this contraction skipped the COO→HtY build
	// because a *PreparedY (possibly from the engine plan cache) supplied
	// an already-built table. The "hty build" span is absent from traces
	// of such runs and HtYBuild is zero.
	HtYReused bool
	// XSort reports which engine sorted X in stage ① and, on the radix
	// path, its partition/pass stats (feeds the sptc_sort_* skew metrics).
	XSort coo.SortInfo
	// SubsortWall is the residual stage-⑤ cost on the fused-writeback
	// path: the per-run LN(Fy) sorts inside the gather, max across workers.
	// Zero on the unfused path (where StageSort holds the full Z sort).
	SubsortWall time.Duration

	// StageWall approximates the wall-clock time of each stage. For the
	// three computation stages, which interleave inside the parallel
	// sub-tensor loop, it is the maximum per-thread accumulated time; for
	// input processing and output sorting it is directly measured.
	StageWall [NumStages]time.Duration
	// StageCPU is the per-thread-summed time of each stage.
	StageCPU [NumStages]time.Duration
	// Symbolic is the symbolic-phase wall time (AlgTwoPhase only); it is
	// included in Total.
	Symbolic time.Duration

	// Tensor features.
	NNZX, NNZY, NNZZ int
	NF               int // number of mode-FX sub-tensors of X
	MaxSubNNZX       int // nnz_Fmax of X
	MaxSubNNZY       int // nnz_Fmax of Y (largest HtY item list / Y key run)
	DistinctKeysY    int // distinct contract tuples in Y
	BucketsHtY       int

	// Operation counters.
	SearchSteps uint64 // COO-Y linear-search key comparisons (Alg 0/1)
	ProbesHtY   uint64 // HtY bucket-entry probes (Alg 3)
	HitsY       uint64 // X non-zeros whose contract key exists in Y
	MissY       uint64 // X non-zeros with no matching Y sub-tensor
	Products    uint64 // scalar multiply-adds performed
	SPACompares uint64 // SPA key-element comparisons (Alg 0)
	ProbesHtA   uint64 // HtA chain probes (Alg 1/3)
	AccumHits   uint64 // accumulator add-into-existing
	AccumMiss   uint64 // accumulator fresh inserts

	// Streamed is true when the contraction ran the out-of-core windowed
	// driver (ContractStream) instead of materializing X's working set at
	// once; Windows is how many X windows it walked and SpilledZ whether
	// the output was staged through a file-backed spool rather than heap.
	Streamed bool
	Windows  int
	SpilledZ bool

	// Shards is how many shard contractions a distributed coordinator
	// (internal/dist) fanned this request out to; 0 means a single-process
	// run. On a sharded report the stage walls are maxima across shards
	// (the scatter/gather critical path), the CPU sums and operation
	// counters are summed, and the partition/merge walls below are folded
	// into StageInput and StageWrite respectively so Total() stays
	// end-to-end.
	Shards int
	// ShardRetries counts shard attempts that failed and were re-dispatched
	// to another executor before the request succeeded.
	ShardRetries int
	// PartitionWall is the coordinator's X scatter time (hash free-mode
	// tuples, count, and stable-scatter into per-shard tensors).
	PartitionWall time.Duration
	// MergeWall is the coordinator's k-way merge of the per-shard sorted Z
	// runs.
	MergeWall time.Duration

	// PlannedOrder is the contraction-order planner's subtree expression
	// for this step ("(A×B)" over input names); empty when the chain ran
	// in its written order.
	PlannedOrder string
	// EstimatedNNZ is the planner's predicted output nnz for this step
	// (0 when the chain was not planned).
	EstimatedNNZ int

	// Data-object sizes in bytes (peak), for Figs. 3, 7, 9.
	BytesX, BytesY   uint64
	BytesHtY         uint64
	BytesHtA         uint64 // summed across threads (paper: 10-50 MB per thread)
	BytesHtAPerThr   uint64 // largest single thread's HtA
	BytesZLocal      uint64 // summed across threads
	BytesZ           uint64
	EstBytesHtY      uint64 // Eq. 5
	EstBytesHtAPerTh uint64 // Eq. 6 (per thread upper bound)
}

// Total returns the end-to-end wall time (sum of stage walls plus the
// symbolic phase, when one ran).
func (r *Report) Total() time.Duration {
	t := r.Symbolic
	for _, d := range r.StageWall {
		t += d
	}
	return t
}

// ComputeTime returns the time of the computation stages (②+③+④), the
// quantity Fig. 4 speedups are dominated by.
func (r *Report) ComputeTime() time.Duration {
	return r.StageWall[StageSearch] + r.StageWall[StageAccum] + r.StageWall[StageWrite]
}

// PeakBytes estimates peak resident payload: inputs + HtY + accumulators +
// Zlocal + Z all live simultaneously at the end of writeback.
func (r *Report) PeakBytes() uint64 {
	return r.BytesX + r.BytesY + r.BytesHtY + r.BytesHtA + r.BytesZLocal + r.BytesZ
}

// Breakdown renders the five-stage percentage split (Fig. 2 rows).
func (r *Report) Breakdown() string {
	total := r.Total()
	if total <= 0 {
		return "(no time recorded)"
	}
	var b strings.Builder
	for s := Stage(0); s < NumStages; s++ {
		if s > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %.1f%%", s, 100*float64(r.StageWall[s])/float64(total))
	}
	return b.String()
}
