package core

import (
	"context"
	"time"

	"sparta/internal/coo"
	"sparta/internal/invariant"
	"sparta/internal/obs"
	"sparta/internal/parallel"
)

// This file implements the two-phase (symbolic + numeric) SpTC that §3.2 of
// the paper describes as the traditional SpGEMM answer to the
// unknown-output-size problem [47] — and argues against: "every SpTC is
// attached to both a symbolic phase and SpTC computation, which is very
// expensive", particularly because applications compute each SpTC only once
// in a long contraction sequence, so the symbolic work is never amortized.
//
// The symbolic phase runs the full index-search + accumulation structure
// with keys only (no floating-point values) to count the exact output
// non-zeros per X sub-tensor; the numeric phase then recomputes the
// products and writes them directly into the exactly-allocated Z — no
// thread-local Zlocal buffers and no gather, the one advantage two-phase
// has over Sparta's dynamic approach. The ablation (sptc-bench -exp
// twophase) measures the trade both ways.

// contractTwoPhase runs Z = X × Y with HtY + HtA data structures but
// two-phase output allocation. Inputs are pre-validated by Contract. Both
// parallel phases checkpoint ctx between chunk claims.
func contractTwoPhase(ctx context.Context, p *plan, opt Options, rep *Report) (*coo.Tensor, error) {
	threads := rep.Threads
	tr, track, reqMode := traceTarget(ctx, opt)

	// ① Input processing — identical to Sparta's.
	spInput := tr.Start("input processing", track)
	t0 := time.Now()
	xw := p.x
	if !opt.InPlace {
		xw = xw.Clone()
	}
	if err := xw.Permute(p.permX); err != nil {
		return nil, err
	}
	spXSort := tr.Start("x sort", track)
	rep.XSort = xw.SortWith(threads, coo.SortAuto)
	spXSort.End()
	ptrFX, err := xw.SubPtr(p.nfx)
	if err != nil {
		return nil, err
	}
	rep.NF = len(ptrFX) - 1
	rep.MaxSubNNZX = coo.MaxSubNNZ(ptrFX)
	rep.BytesX = xw.Bytes()

	hty, err := buildYTable(ctx, p, opt, threads, rep)
	if err != nil {
		return nil, err
	}
	rep.StageWall[StageInput] = time.Since(t0)
	rep.StageCPU[StageInput] = rep.StageWall[StageInput]
	spInput.End()

	// chunk < 1 defers the chunk size to ForChunked's own heuristic.
	nf := rep.NF
	cCols := xw.Inds[p.nfx:]

	// --- Symbolic phase: count exact output non-zeros per sub-tensor ----
	// The symbolic accumulators follow the kernel selector like the
	// numeric ones (makeWorkers); symWorkers reuses that switch.
	spSym := tr.Start("symbolic phase", track)
	t0 = time.Now()
	counts := make([]int, nf)
	symWorkers := makeWorkers(threads, p, Options{
		Algorithm: AlgSparta, Kernel: opt.Kernel, HtACapHint: opt.HtACapHint,
		Metrics: opt.Metrics,
	})
	symErr := parallel.ForChunkedWorkCtx(ctx, threads, nf, 0, int64(xw.NNZ()), func(tid, lo, hi int) {
		var sp obs.Span
		if !reqMode {
			sp = tr.Start("symbolic chunk", tid+1)
		}
		defer sp.End()
		w := symWorkers[tid]
		for f := lo; f < hi; f++ {
			if w.htaF != nil {
				for i := ptrFX[f]; i < ptrFX[f+1]; i++ {
					items, _ := hty.Lookup(p.radC.EncodeStrided(cCols, i))
					for _, it := range items {
						w.htaF.Add(it.LNFree, 0) // structure only; values ignored
					}
				}
				counts[f] = w.htaF.Len()
				w.htaF.Reset()
			} else {
				for i := ptrFX[f]; i < ptrFX[f+1]; i++ {
					items, _ := hty.Lookup(p.radC.EncodeStrided(cCols, i))
					for _, it := range items {
						w.hta.Add(it.LNFree, 0)
					}
				}
				counts[f] = w.hta.Len()
				w.hta.Reset()
			}
		}
	})
	rep.Symbolic = time.Since(t0)
	spSym.End()
	if symErr != nil {
		return nil, symErr
	}
	zoff, total := parallel.PrefixSum(counts)
	if opt.MaxOutputNNZ > 0 && total > opt.MaxOutputNNZ {
		return nil, errOutputTooLarge{total, opt.MaxOutputNNZ}
	}

	// Exact allocation — the symbolic phase's payoff.
	z, err := coo.New(p.zdims, 0)
	if err != nil {
		return nil, err
	}
	for m := range z.Inds {
		z.Inds[m] = make([]uint32, total)
	}
	z.Vals = make([]float64, total)

	// --- Numeric phase: recompute with values, write straight into Z ----
	ws := makeWorkers(threads, p, Options{
		Algorithm: AlgSparta, Kernel: opt.Kernel, HtACapHint: opt.HtACapHint,
		Metrics: opt.Metrics,
	})
	spNum := tr.Start("numeric phase", track)
	numErr := parallel.ForChunkedWorkCtx(ctx, threads, nf, 0, int64(xw.NNZ()), func(tid, lo, hi int) {
		var sp obs.Span
		if !reqMode {
			sp = tr.Start("subtensor chunk", tid+1)
		}
		defer sp.End()
		w := ws[tid]
		buf := make([]uint32, p.nfy)
		for f := lo; f < hi; f++ {
			// ② index search
			t := time.Now()
			w.scratch = w.scratch[:0]
			for i := ptrFX[f]; i < ptrFX[f+1]; i++ {
				key := p.radC.EncodeStrided(cCols, i)
				items, probes := hty.Lookup(key)
				w.probesHtY += uint64(probes)
				if w.htyProbe != nil {
					w.htyProbe.Observe(float64(probes))
				}
				if items == nil {
					w.miss++
					continue
				}
				w.hits++
				w.scratch = append(w.scratch, match{items: items, xv: xw.Vals[i]})
			}
			w.searchNS += int64(time.Since(t))

			// ③ accumulation
			t = time.Now()
			if w.htaF != nil {
				for _, m := range w.scratch {
					v := m.xv
					for _, it := range m.items {
						w.htaF.Add(it.LNFree, it.Val*v)
					}
					w.products += uint64(len(m.items))
				}
			} else {
				for _, m := range w.scratch {
					v := m.xv
					for _, it := range m.items {
						w.hta.Add(it.LNFree, it.Val*v)
					}
					w.products += uint64(len(m.items))
				}
			}
			w.accumNS += int64(time.Since(t))

			// ④ writeback: straight into the pre-sized Z at this
			// sub-tensor's exact offset.
			t = time.Now()
			pos := zoff[f]
			xAt := ptrFX[f]
			var keys []uint64
			var vals []float64
			if w.htaF != nil {
				keys, vals = w.htaF.Keys(), w.htaF.Vals()
			} else {
				keys, vals = w.hta.Keys(), w.hta.Vals()
			}
			if invariant.Enabled {
				// The numeric phase re-runs the exact index structure the
				// symbolic phase counted; a mismatch would smear this
				// sub-tensor's rows over its neighbor's pre-allocated range.
				invariant.Assertf(len(keys) == counts[f],
					"two-phase: sub-tensor %d produced %d keys numerically but %d symbolically",
					f, len(keys), counts[f])
			}
			for k := range keys {
				for m := 0; m < p.nfx; m++ {
					z.Inds[m][pos] = xw.Inds[m][xAt]
				}
				p.radFY.Decode(keys[k], buf)
				for m := 0; m < p.nfy; m++ {
					z.Inds[p.nfx+m][pos] = buf[m]
				}
				z.Vals[pos] = vals[k]
				pos++
			}
			if invariant.Enabled {
				invariant.Assertf(pos-zoff[f] == counts[f],
					"two-phase: sub-tensor %d wrote %d rows into a range sized %d",
					f, pos-zoff[f], counts[f])
			}
			if w.htaF != nil {
				w.htaF.Reset()
			} else {
				w.hta.Reset()
			}
			w.writeNS += int64(time.Since(t))
		}
	})
	spNum.End()
	if numErr != nil {
		return nil, numErr
	}
	mergeWorkerStats(rep, ws)
	for _, sw := range symWorkers {
		var b uint64
		if sw.htaF != nil {
			b = sw.htaF.Bytes()
		} else {
			b = sw.hta.Bytes()
		}
		rep.BytesHtA += b
		if b > rep.BytesHtAPerThr {
			rep.BytesHtAPerThr = b
		}
	}
	rep.NNZZ = z.NNZ()
	rep.BytesZ = z.Bytes()
	// BytesZLocal stays 0: two-phase has no thread-local output buffers.

	// ⑤ Output sorting.
	if !opt.SkipOutputSort {
		spSort := tr.Start("output sort", track)
		t0 = time.Now()
		z.Sort(threads)
		rep.StageWall[StageSort] = time.Since(t0)
		rep.StageCPU[StageSort] = rep.StageWall[StageSort]
		spSort.End()
	}
	publishMetrics(opt.Metrics, rep, ws, symWorkers)
	return z, nil
}

// errOutputTooLarge mirrors the MaxOutputNNZ error of the one-phase path.
type errOutputTooLarge [2]int

func (e errOutputTooLarge) Error() string {
	return "core: output has " + itoa(e[0]) + " non-zeros, exceeding MaxOutputNNZ " + itoa(e[1])
}

// itoa avoids pulling strconv into the hot-path file for one error.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
