package core

import (
	"context"
	"strings"
	"testing"

	"sparta/internal/coo"
)

// TestContractStreamMatchesInMemory is the out-of-core driver's bitwise
// oracle: for both hash kernels, a sweep of window sizes, and both Z sinks
// (heap merge and file spool), the streamed result must equal the one-shot
// in-memory contraction exactly — same coordinates, same values, same
// order. This is the property the v2 window alignment exists to guarantee.
func TestContractStreamMatchesInMemory(t *testing.T) {
	x := randomSparse([]uint64{40, 9, 8}, 700, 31)
	y := randomSparse([]uint64{8, 7}, 80, 32)
	cmX, cmY := []int{2}, []int{0}
	for _, kernel := range []Kernel{KernelFlat, KernelChained} {
		opt := Options{Algorithm: AlgSparta, Kernel: kernel, Threads: 2}
		pr, err := PrepareY(y, cmY, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := pr.Contract(context.Background(), x, cmX, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, windowNNZ := range []int{0, 13, 100, 1 << 20} {
			for _, spill := range []bool{false, true} {
				xs, err := NewTensorStream(x, cmX, windowNNZ, 1, false)
				if err != nil {
					t.Fatal(err)
				}
				z, rep, err := ContractStream(context.Background(), xs, pr,
					StreamOptions{Options: opt, SpillZ: spill, SpillDir: t.TempDir()})
				if err != nil {
					t.Fatalf("kernel %v window %d spill %v: %v", kernel, windowNNZ, spill, err)
				}
				if !z.Equal(want) {
					t.Fatalf("kernel %v window %d spill %v: streamed output differs from in-memory",
						kernel, windowNNZ, spill)
				}
				if !rep.Streamed {
					t.Error("report not marked streamed")
				}
				if rep.SpilledZ != spill {
					t.Errorf("report SpilledZ = %v, want %v", rep.SpilledZ, spill)
				}
				if windowNNZ == 13 && rep.Windows < 2 {
					t.Errorf("window cap 13 ran in %d windows", rep.Windows)
				}
				if windowNNZ == 1<<20 && rep.Windows != 1 {
					t.Errorf("uncapped stream ran in %d windows", rep.Windows)
				}
				if rep.NNZZ != want.NNZ() {
					t.Errorf("report NNZZ = %d, want %d", rep.NNZZ, want.NNZ())
				}
			}
		}
	}
}

// TestContractStreamMappedFile runs the full out-of-core loop: X saved as a
// sorted v2 file, opened as an mmap view, streamed against the prepared
// table, and compared bitwise with the in-memory result.
func TestContractStreamMappedFile(t *testing.T) {
	// X already in contraction order (free modes first) so the sorted file
	// is directly streamable; enough non-zeros that the file stores more
	// than one DefaultWindowNNZ chunk.
	x := randomSparse([]uint64{4096, 6, 5}, 12000, 33)
	y := randomSparse([]uint64{5, 9}, 70, 34)
	cmX, cmY := []int{2}, []int{0}
	opt := Options{Algorithm: AlgSparta, Kernel: KernelFlat, Threads: 2}
	pr, err := PrepareY(y, cmY, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pr.Contract(context.Background(), x, cmX, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x.sptn"
	if err := x.SaveBinV2(path); err != nil {
		t.Fatal(err)
	}
	m, err := coo.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	xs, err := m.Stream(200)
	if err != nil {
		t.Fatal(err)
	}
	z, rep, err := ContractStream(context.Background(), xs, pr, StreamOptions{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want) {
		t.Fatal("mmap-streamed output differs from in-memory")
	}
	if rep.Windows < 2 {
		t.Fatalf("expected multiple windows, got %d", rep.Windows)
	}
}

func TestNewTensorStreamErrors(t *testing.T) {
	x := randomSparse([]uint64{6, 5, 4}, 40, 35)
	if _, err := NewTensorStream(nil, []int{0}, 0, 1, false); err == nil {
		t.Error("nil tensor accepted")
	}
	if _, err := NewTensorStream(x, nil, 0, 1, false); err == nil {
		t.Error("empty contract-mode list accepted")
	}
	if _, err := NewTensorStream(x, []int{0, 1, 2}, 0, 1, false); err == nil {
		t.Error("fully contracted X accepted (no free mode to window on)")
	}
	if _, err := NewTensorStream(x, []int{7}, 0, 1, false); err == nil {
		t.Error("out-of-range contract mode accepted")
	}
}

func TestNewTensorStreamPermutes(t *testing.T) {
	// Contract mode in front: the stream must re-order to free-first and
	// still produce the in-memory result.
	x := randomSparse([]uint64{5, 20, 6}, 300, 36)
	y := randomSparse([]uint64{5, 8}, 40, 37)
	opt := Options{Algorithm: AlgSparta, Kernel: KernelFlat}
	pr, err := PrepareY(y, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := pr.Contract(context.Background(), x, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	clone := x.Clone()
	xs, err := NewTensorStream(x, []int{0}, 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(clone) {
		t.Fatal("inPlace=false mutated the caller's tensor")
	}
	z, _, err := ContractStream(context.Background(), xs, pr, StreamOptions{Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equal(want) {
		t.Fatal("permuted stream differs from in-memory")
	}
}

func TestContractStreamErrors(t *testing.T) {
	x := randomSparse([]uint64{10, 6, 5}, 120, 38)
	y := randomSparse([]uint64{5, 4}, 30, 39)
	opt := Options{Algorithm: AlgSparta, Kernel: KernelFlat}
	pr, err := PrepareY(y, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	mkStream := func() XStream {
		xs, err := NewTensorStream(x, []int{2}, 0, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return xs
	}

	if _, _, err := ContractStream(context.Background(), nil, pr, StreamOptions{Options: opt}); err == nil {
		t.Error("nil stream accepted")
	}
	if _, _, err := ContractStream(context.Background(), mkStream(), nil, StreamOptions{Options: opt}); err == nil {
		t.Error("nil prepared table accepted")
	}
	bad := opt
	bad.Algorithm = AlgSPA
	if _, _, err := ContractStream(context.Background(), mkStream(), pr, StreamOptions{Options: bad}); err == nil {
		t.Error("non-Sparta algorithm accepted")
	}
	bad = opt
	bad.Kernel = KernelChained
	if _, _, err := ContractStream(context.Background(), mkStream(), pr, StreamOptions{Options: bad}); err == nil {
		t.Error("kernel mismatch with the prepared table accepted")
	}

	// Contract-dim mismatch between the stream and the prepared Y.
	x2 := randomSparse([]uint64{10, 6, 7}, 120, 40)
	xs2, err := NewTensorStream(x2, []int{2}, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ContractStream(context.Background(), xs2, pr, StreamOptions{Options: opt})
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("dim mismatch: got %v", err)
	}

	// Output cap enforcement mid-stream.
	capped := opt
	capped.MaxOutputNNZ = 1
	if _, _, err := ContractStream(context.Background(), mkStream(), pr, StreamOptions{Options: capped}); err == nil {
		t.Error("MaxOutputNNZ=1 did not abort")
	}

	// Context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ContractStream(ctx, mkStream(), pr, StreamOptions{Options: opt}); err == nil {
		t.Error("cancelled context accepted")
	}
}
