package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sparta/internal/coo"
	"sparta/internal/hashtab"
	"sparta/internal/lnum"
	"sparta/internal/parallel"
)

// PreparedY is the reusable half of a contraction: Y converted to its HtY
// hash-table form with the contract/free radices that probing and Z decoding
// need. Building one runs the stage-① work the paper charges to every SpTC
// call; a chain of contractions against the same Y (tensor-network chains,
// repeated serving queries) amortizes it by calling Contract on the same
// PreparedY many times.
//
// A PreparedY is self-contained: it snapshots Y's dims and derived radices
// and never touches the source tensor again, so later in-place mutation of Y
// (chain steps with Options.InPlace) cannot corrupt it. It is immutable
// after PrepareY returns and safe for concurrent Contract calls.
type PreparedY struct {
	hty hashtab.YTable

	cdims  []uint64 // contract-mode sizes in pairing order
	fydims []uint64 // Y free-mode sizes in mode order
	radC   *lnum.Radix
	radFY  *lnum.Radix

	kernel Kernel
	nnzY   int
	orderY int
	bytesY uint64

	// build is the HtY conversion wall time, reported on the first
	// contraction (where it plays the role of Report.HtYBuild) and then
	// dropped — reuses report HtYBuild=0, HtYReused=true.
	build time.Duration
	uses  atomic.Uint64
}

// PrepareY runs the COO→HtY conversion for Z = X ×_{?}^{cmodesY} Y once,
// with the kernel/bucket/thread settings of opt (only Kernel, BucketsHtY,
// TwoPassHtY, Threads, Tracer are consulted — the prepared table serves any
// AlgSparta contraction regardless of the other options). Y is read but
// never mutated; the result references none of Y's storage.
func PrepareY(y *coo.Tensor, cmodesY []int, opt Options) (*PreparedY, error) {
	if y == nil {
		return nil, fmt.Errorf("core: PrepareY: nil tensor")
	}
	switch opt.Kernel {
	case KernelFlat, KernelChained:
	default:
		return nil, errBadKernel(opt.Kernel)
	}
	if len(cmodesY) == 0 {
		return nil, fmt.Errorf("core: contraction needs at least one contract-mode pair")
	}
	inY, err := modeSet(y.Order(), cmodesY, "Y")
	if err != nil {
		return nil, err
	}
	pr := &PreparedY{
		kernel: opt.Kernel,
		nnzY:   y.NNZ(),
		orderY: y.Order(),
		bytesY: y.Bytes(),
	}
	var fmodesY []int
	for _, m := range cmodesY {
		pr.cdims = append(pr.cdims, y.Dims[m])
	}
	for m := 0; m < y.Order(); m++ {
		if !inY[m] {
			fmodesY = append(fmodesY, m)
			pr.fydims = append(pr.fydims, y.Dims[m])
		}
	}
	if pr.radC, err = lnum.NewRadix(pr.cdims); err != nil {
		return nil, fmt.Errorf("core: contract modes: %w", err)
	}
	if pr.radFY, err = lnum.NewRadix(pr.fydims); err != nil {
		return nil, fmt.Errorf("core: Y free modes: %w", err)
	}

	threads := opt.Threads
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	sp := opt.Tracer.Start("hty build", 0)
	defer sp.End()
	t0 := time.Now()
	if opt.Kernel == KernelChained {
		build := hashtab.BuildHtY
		if opt.TwoPassHtY {
			build = hashtab.BuildHtY2P
		}
		pr.hty = build(y, cmodesY, fmodesY, pr.radC, pr.radFY, opt.BucketsHtY, threads)
	} else {
		pr.hty = hashtab.BuildHtYFlat(y, cmodesY, fmodesY, pr.radC, pr.radFY, opt.BucketsHtY, threads)
	}
	pr.build = time.Since(t0)
	return pr, nil
}

// Contract computes Z = X ×_{cmodesX} Y against the prepared table:
// cmodesX[k] of X pairs with the k-th prepared contract mode of Y. Only
// AlgSparta is supported (the baseline algorithms probe COO Y directly and
// have nothing to reuse). The first Contract on a fresh PreparedY charges
// the build time to Report.HtYBuild exactly like the one-shot path; every
// later call reports HtYReused=true with HtYBuild=0 and opens no "hty
// build" span. Output is bitwise identical to the one-shot Contract with
// the same options, because the same table, radices, and stage ②–⑤ code
// run in both paths.
func (pr *PreparedY) Contract(ctx context.Context, x *coo.Tensor, cmodesX []int, opt Options) (*coo.Tensor, *Report, error) {
	if opt.Algorithm != AlgSparta {
		return nil, nil, fmt.Errorf("core: prepared contraction supports only %v, got %v", AlgSparta, opt.Algorithm)
	}
	if opt.Kernel != pr.kernel {
		return nil, nil, fmt.Errorf("core: prepared with kernel %v, contraction requested %v", pr.kernel, opt.Kernel)
	}
	p, err := pr.newPlanX(x, cmodesX)
	if err != nil {
		return nil, nil, err
	}
	rep, err := checkOptions(opt, x.NNZ(), pr.nnzY)
	if err != nil {
		return nil, nil, err
	}
	z, rep, err := contractMain(ctx, p, pr, opt, rep)
	if err != nil {
		return nil, nil, err
	}
	if pr.uses.Add(1) == 1 {
		// First use: this call conceptually ran the build, so report it
		// the way the one-shot path would.
		rep.HtYReused = false
		rep.HtYBuild = pr.build
	}
	return z, rep, nil
}

// newPlanX builds the contraction plan for an X against the prepared Y,
// validating the pairing the way newPlan does for two COO tensors.
func (pr *PreparedY) newPlanX(x *coo.Tensor, cmodesX []int) (*plan, error) {
	if x == nil {
		return nil, fmt.Errorf("core: nil X tensor")
	}
	if len(cmodesX) != len(pr.cdims) {
		return nil, fmt.Errorf("core: %d contract modes for X but %d prepared for Y", len(cmodesX), len(pr.cdims))
	}
	if len(cmodesX) > x.Order() {
		return nil, fmt.Errorf("core: more contract modes than tensor modes")
	}
	inX, err := modeSet(x.Order(), cmodesX, "X")
	if err != nil {
		return nil, err
	}
	for k := range cmodesX {
		if dx := x.Dims[cmodesX[k]]; dx != pr.cdims[k] {
			return nil, fmt.Errorf("core: contract pair %d: X mode %d has size %d but prepared Y mode has size %d",
				k, cmodesX[k], dx, pr.cdims[k])
		}
	}
	p := &plan{
		x:     x,
		ncm:   len(cmodesX),
		nfx:   x.Order() - len(cmodesX),
		nfy:   len(pr.fydims),
		radC:  pr.radC,
		radFY: pr.radFY,
	}
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			p.permX = append(p.permX, m)
		}
	}
	p.permX = append(p.permX, cmodesX...)
	for _, m := range p.permX[:p.nfx] {
		p.zdims = append(p.zdims, x.Dims[m])
	}
	p.zdims = append(p.zdims, pr.fydims...)
	if len(p.zdims) == 0 {
		p.zdims = []uint64{1}
		p.scalar = true
	}
	return p, nil
}

// fillReport copies the table-side statistics buildYTable would have
// recorded, so warm-path reports stay comparable to cold ones.
func (pr *PreparedY) fillReport(rep *Report) {
	rep.BytesY = pr.bytesY
	rep.BytesHtY = pr.hty.Bytes()
	rep.BucketsHtY = pr.hty.NumBuckets()
	rep.DistinctKeysY = pr.hty.NumKeys()
	rep.MaxSubNNZY = pr.hty.MaxItemLen()
	rep.EstBytesHtY = hashtab.EstimateHtYBytes(pr.nnzY, pr.orderY, pr.hty.NumBuckets())
}

// Kernel returns the hash-kernel family the table was built with.
func (pr *PreparedY) Kernel() Kernel { return pr.kernel }

// NNZY returns the non-zero count of the prepared Y.
func (pr *PreparedY) NNZY() int { return pr.nnzY }

// OrderY returns the mode count of the prepared Y.
func (pr *PreparedY) OrderY() int { return pr.orderY }

// NumFreeModes returns the number of free (kept) Y modes.
func (pr *PreparedY) NumFreeModes() int { return len(pr.fydims) }

// MaxItemLen returns nnz_Fmax of the prepared Y (Eq. 6 input).
func (pr *PreparedY) MaxItemLen() int { return pr.hty.MaxItemLen() }

// NumBuckets returns the prepared key table's bucket/slot count.
func (pr *PreparedY) NumBuckets() int { return pr.hty.NumBuckets() }

// BuildTime returns the wall time of the COO→HtY conversion.
func (pr *PreparedY) BuildTime() time.Duration { return pr.build }

// Bytes reports the resident footprint of the prepared plan: the hash table
// plus the radix/dim bookkeeping. The engine's LRU cache budgets on this.
func (pr *PreparedY) Bytes() uint64 {
	return pr.hty.Bytes() + uint64(len(pr.cdims)+len(pr.fydims))*8 + 160
}

// EstBytesHtY returns the Eq. 5 size estimate for the prepared table.
func (pr *PreparedY) EstBytesHtY() uint64 {
	return hashtab.EstimateHtYBytes(pr.nnzY, pr.orderY, pr.hty.NumBuckets())
}
