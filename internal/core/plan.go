// Package core implements the three SpTC algorithms the paper evaluates:
//
//   - AlgSPA:    COO Y + sparse accumulator (Algorithm 1, "SpTC-SPA")
//   - AlgCOOHtA: COO Y + hash-table accumulator (the middle bar of Fig. 4)
//   - AlgSparta: hash-table Y + hash-table accumulator (Algorithm 2, Sparta)
//
// All three share the five-stage structure — input processing, index search,
// accumulation, writeback, output sorting — and report per-stage timing and
// operation counters so every figure of the evaluation can be regenerated.
package core

import (
	"fmt"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// plan holds the mode bookkeeping for one contraction Z = X ×_{cx}^{cy} Y.
type plan struct {
	x, y *coo.Tensor // inputs after (optional) clone; x gets permuted

	nfx, nfy int // number of free modes of X and Y
	ncm      int // number of contract-mode pairs

	permX []int // X permutation: free modes first, contract modes last
	permY []int // Y permutation: contract modes first (used by COO-Y algorithms)

	// After permX is applied, X's modes are [free... contract...]. These
	// radices are built over the *paired* contract dims and Y's free dims.
	radC  *lnum.Radix // contract-key encoder (shared by X probes and Y build)
	radFY *lnum.Radix // Y free-index encoder (HtA keys, Z decode)

	// For HtY construction on the un-permuted Y.
	cmodesY, fmodesY []int

	zdims  []uint64 // free dims of X ++ free dims of Y; [1] for full contraction
	scalar bool     // true when both tensors are fully contracted
}

// newPlan validates the contraction spec and computes permutations, radices
// and output dims. cmodesX[k] of X is contracted with cmodesY[k] of Y; the
// paired mode sizes must match.
func newPlan(x, y *coo.Tensor, cmodesX, cmodesY []int) (*plan, error) {
	if len(cmodesX) != len(cmodesY) {
		return nil, fmt.Errorf("core: %d contract modes for X but %d for Y", len(cmodesX), len(cmodesY))
	}
	if len(cmodesX) == 0 {
		return nil, fmt.Errorf("core: contraction needs at least one contract-mode pair")
	}
	if len(cmodesX) > x.Order() || len(cmodesY) > y.Order() {
		return nil, fmt.Errorf("core: more contract modes than tensor modes")
	}
	inX, err := modeSet(x.Order(), cmodesX, "X")
	if err != nil {
		return nil, err
	}
	inY, err := modeSet(y.Order(), cmodesY, "Y")
	if err != nil {
		return nil, err
	}
	cdims := make([]uint64, len(cmodesX))
	for k := range cmodesX {
		dx, dy := x.Dims[cmodesX[k]], y.Dims[cmodesY[k]]
		if dx != dy {
			return nil, fmt.Errorf("core: contract pair %d: X mode %d has size %d but Y mode %d has size %d",
				k, cmodesX[k], dx, cmodesY[k], dy)
		}
		cdims[k] = dx
	}

	p := &plan{
		x:   x,
		y:   y,
		ncm: len(cmodesX),
		nfx: x.Order() - len(cmodesX),
		nfy: y.Order() - len(cmodesY),
	}

	// "Correct mode order" (§3.1): free modes of X first (keeping their
	// original relative order), contract modes last in pairing order.
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			p.permX = append(p.permX, m)
		}
	}
	p.permX = append(p.permX, cmodesX...)

	// Y: contract modes first in pairing order, then free modes.
	p.permY = append(p.permY, cmodesY...)
	for m := 0; m < y.Order(); m++ {
		if !inY[m] {
			p.permY = append(p.permY, m)
			p.fmodesY = append(p.fmodesY, m)
		}
	}
	p.cmodesY = append([]int(nil), cmodesY...)

	if p.radC, err = lnum.NewRadix(cdims); err != nil {
		return nil, fmt.Errorf("core: contract modes: %w", err)
	}
	fydims := make([]uint64, 0, p.nfy)
	for _, m := range p.fmodesY {
		fydims = append(fydims, y.Dims[m])
	}
	if p.radFY, err = lnum.NewRadix(fydims); err != nil {
		return nil, fmt.Errorf("core: Y free modes: %w", err)
	}

	for _, m := range p.permX[:p.nfx] {
		p.zdims = append(p.zdims, x.Dims[m])
	}
	p.zdims = append(p.zdims, fydims...)
	if len(p.zdims) == 0 {
		// Full contraction: Z is a scalar, represented as a 1-mode tensor
		// of size 1 with a single non-zero at index 0.
		p.zdims = []uint64{1}
		p.scalar = true
	}
	return p, nil
}

// modeSet validates a contract-mode list and returns its membership mask.
func modeSet(order int, modes []int, name string) ([]bool, error) {
	in := make([]bool, order)
	for _, m := range modes {
		if m < 0 || m >= order {
			return nil, fmt.Errorf("core: contract mode %d out of range for %s (order %d)", m, name, order)
		}
		if in[m] {
			return nil, fmt.Errorf("core: contract mode %d listed twice for %s", m, name)
		}
		in[m] = true
	}
	return in, nil
}

// zOrder returns the output order (>=1 even for scalars).
func (p *plan) zOrder() int { return len(p.zdims) }
