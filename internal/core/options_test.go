package core

import (
	"strings"
	"testing"
)

// TestTwoPassHtYMatchesDefault: the lock-free build must produce identical
// contraction results.
func TestTwoPassHtYMatchesDefault(t *testing.T) {
	x := randomSparse([]uint64{7, 6, 5, 4}, 300, 71)
	y := randomSparse([]uint64{5, 4, 8}, 200, 72)
	a, _, err := Contract(x, y, []int{2, 3}, []int{0, 1}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Contract(x, y, []int{2, 3}, []int{0, 1}, Options{Algorithm: AlgSparta, TwoPassHtY: true, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz differs: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := 0; i < a.NNZ(); i++ {
		for m := range a.Inds {
			if a.Inds[m][i] != b.Inds[m][i] {
				t.Fatalf("coordinate mismatch at %d", i)
			}
		}
		d := a.Vals[i] - b.Vals[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("value mismatch at %d", i)
		}
	}
}

// TestTwoPhaseReport: the symbolic phase must be timed, and two-phase must
// report no thread-local output buffers (its one advantage over Sparta).
func TestTwoPhaseReport(t *testing.T) {
	x := randomSparse([]uint64{9, 8, 7}, 400, 81)
	y := randomSparse([]uint64{7, 9}, 150, 82)
	z, rep, err := Contract(x, y, []int{2}, []int{0}, Options{Algorithm: AlgTwoPhase, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Symbolic <= 0 {
		t.Error("symbolic phase not timed")
	}
	if rep.BytesZLocal != 0 {
		t.Errorf("two-phase reported %d Zlocal bytes", rep.BytesZLocal)
	}
	if rep.Total() <= rep.Symbolic {
		t.Error("Total must include the numeric stages")
	}
	// Exact allocation: capacity equals length on every output column.
	for m := range z.Inds {
		if cap(z.Inds[m]) != z.NNZ() {
			t.Errorf("mode %d over-allocated: cap %d for %d non-zeros", m, cap(z.Inds[m]), z.NNZ())
		}
	}
	// Sparta on the same inputs does carry Zlocal.
	_, repS, err := Contract(x, y, []int{2}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if repS.BytesZLocal == 0 && repS.NNZZ > 0 {
		t.Error("Sparta reported no Zlocal bytes")
	}
	if repS.Symbolic != 0 {
		t.Error("Sparta reported a symbolic phase")
	}
}

// TestMaxOutputNNZ: the guard trips before Z is materialized and passes
// when the bound is sufficient.
func TestMaxOutputNNZ(t *testing.T) {
	x := randomSparse([]uint64{10, 8}, 60, 73)
	y := randomSparse([]uint64{8, 10}, 60, 74)
	z, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta, MaxOutputNNZ: z.NNZ() - 1})
	if err == nil || !strings.Contains(err.Error(), "MaxOutputNNZ") {
		t.Fatalf("guard did not trip: %v", err)
	}
	z2, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta, MaxOutputNNZ: z.NNZ()})
	if err != nil {
		t.Fatalf("exact bound rejected: %v", err)
	}
	if !z.Equal(z2) {
		t.Fatal("bounded run differs")
	}
	// The guard applies to the baselines too.
	for _, alg := range []Algorithm{AlgSPA, AlgCOOHtA, AlgTwoPhase} {
		_, _, err = Contract(x, y, []int{1}, []int{0}, Options{Algorithm: alg, MaxOutputNNZ: 1})
		if err == nil {
			t.Fatalf("%v: guard did not trip", alg)
		}
	}
}
