package core

import (
	"time"

	"sparta/internal/coo"
	"sparta/internal/hashtab"
	"sparta/internal/obs"
	"sparta/internal/spa"
)

// zsub records that one X sub-tensor contributed n consecutive output
// non-zeros to a thread's Zlocal.
type zsub struct {
	f int32
	n int32
}

// zlocalBuf is the thread-local dynamic output buffer Zlocal from §3.5:
// free-Y keys and values appended sub-tensor by sub-tensor; the free-X
// coordinates are recovered from X via the sub-tensor id during gather.
type zlocalBuf struct {
	subs []zsub
	lns  []uint64
	vals []float64
}

func (z *zlocalBuf) bytes() uint64 {
	return uint64(cap(z.subs))*8 + uint64(cap(z.lns))*8 + uint64(cap(z.vals))*8
}

// reset empties the buffer keeping its capacity; the streaming driver calls
// it between windows so one window's worth of Zlocal is the steady-state
// footprint regardless of how many windows the contraction spans.
func (z *zlocalBuf) reset() {
	z.subs = z.subs[:0]
	z.lns = z.lns[:0]
	z.vals = z.vals[:0]
}

// match is one X non-zero with a resolved Y item list (Sparta path).
type match struct {
	items []hashtab.YItem
	xv    float64
}

// rangeMatch is one X non-zero with a resolved COO-Y range (baseline paths).
type rangeMatch struct {
	lo, hi int
	xv     float64
}

// worker is the per-thread state of the computation stages. Exactly one of
// hta/htaF is non-nil for the accumulating algorithms, selected by
// Options.Kernel; the accumulation and flush loops branch once per
// sub-tensor on that, keeping the per-product Add monomorphic (no interface
// dispatch on the hottest call in the repo).
type worker struct {
	hta  *hashtab.HtA
	htaF *hashtab.HtAFlat
	spa  *spa.SPA
	z    zlocalBuf

	scratch  []match
	scratchR []rangeMatch
	keyBuf   []uint32

	searchNS, accumNS, writeNS int64
	searchSteps                uint64
	probesHtY                  uint64
	hits, miss                 uint64
	products                   uint64
	spaHits, spaMiss           uint64

	// htyProbe records the probe length of each HtY lookup when metrics are
	// configured (Options.Metrics); nil otherwise, guarded by one branch in
	// the search loops. Thread-private like the rest of the worker, merged
	// into the registry by publishMetrics after the parallel section.
	htyProbe *obs.HistShard
}

func makeWorkers(threads int, p *plan, opt Options) []*worker {
	ws := make([]*worker, threads)
	hint := opt.HtACapHint
	if hint <= 0 {
		hint = 1024
	}
	for i := range ws {
		w := &worker{keyBuf: make([]uint32, p.nfy)}
		switch opt.Algorithm {
		case AlgSparta, AlgCOOHtA:
			if opt.Kernel == KernelChained {
				w.hta = hashtab.NewHtA(hint)
			} else {
				w.htaF = hashtab.NewHtAFlat(hint)
			}
		case AlgSPA:
			w.spa = spa.New(p.nfy)
		}
		if opt.Metrics != nil {
			w.htyProbe = obs.NewHistShard(obs.ProbeBuckets)
			if w.hta != nil {
				w.hta.ProbeHist = obs.NewHistShard(obs.ProbeBuckets)
			}
			if w.htaF != nil {
				w.htaF.ProbeHist = obs.NewHistShard(obs.ProbeBuckets)
			}
		}
		ws[i] = w
	}
	return ws
}

// subSparta processes X sub-tensor f with Algorithm 2: HtY probes for the
// index search, HtA for accumulation, Zlocal flush for writeback. The three
// phases are timed separately so Fig. 2-style breakdowns are exact.
func (w *worker) subSparta(p *plan, xw *coo.Tensor, hty hashtab.YTable, ptrFX []int, f int) {
	lo, hi := ptrFX[f], ptrFX[f+1]
	cCols := xw.Inds[p.nfx:]

	// ② index search
	t := time.Now()
	w.scratch = w.scratch[:0]
	for i := lo; i < hi; i++ {
		key := p.radC.EncodeStrided(cCols, i)
		items, probes := hty.Lookup(key)
		w.probesHtY += uint64(probes)
		if w.htyProbe != nil {
			w.htyProbe.Observe(float64(probes))
		}
		if items == nil {
			w.miss++
			continue
		}
		w.hits++
		w.scratch = append(w.scratch, match{items: items, xv: xw.Vals[i]})
	}
	w.searchNS += int64(time.Since(t))

	// ③ accumulation
	t = time.Now()
	if w.htaF != nil {
		for _, m := range w.scratch {
			v := m.xv
			for _, it := range m.items {
				w.htaF.Add(it.LNFree, it.Val*v)
			}
			w.products += uint64(len(m.items))
		}
	} else {
		for _, m := range w.scratch {
			v := m.xv
			for _, it := range m.items {
				w.hta.Add(it.LNFree, it.Val*v)
			}
			w.products += uint64(len(m.items))
		}
	}
	w.accumNS += int64(time.Since(t))

	// ④ writeback into Zlocal
	t = time.Now()
	w.flushHtA(f)
	w.writeNS += int64(time.Since(t))
}

// searchCOOY performs the baseline linear index search (Algorithm 1): scan
// the distinct contract-key runs of the sorted COO Y until the key matches
// or exceeds the probe. Each run inspection counts one search step; the
// worst case is O(distinct keys) ~ O(nnz_Y) per X non-zero.
func (w *worker) searchCOOY(p *plan, xw, yw *coo.Tensor, ptrCY []int, i int) (int, int, bool) {
	cColsX := xw.Inds[p.nfx:]
	cColsY := yw.Inds[:p.ncm]
	for r := 0; r+1 < len(ptrCY); r++ {
		w.searchSteps++
		at := ptrCY[r]
		cmp := 0
		for m := 0; m < p.ncm; m++ {
			a, b := cColsY[m][at], cColsX[m][i]
			if a != b {
				if a < b {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		if cmp == 0 {
			return ptrCY[r], ptrCY[r+1], true
		}
		if cmp > 0 {
			return 0, 0, false // sorted: key exceeded the probe
		}
	}
	return 0, 0, false
}

// subCOOHtA processes X sub-tensor f with COO-Y linear search + HtA.
func (w *worker) subCOOHtA(p *plan, xw, yw *coo.Tensor, ptrFX, ptrCY []int, f int) {
	lo, hi := ptrFX[f], ptrFX[f+1]

	t := time.Now()
	w.scratchR = w.scratchR[:0]
	for i := lo; i < hi; i++ {
		ylo, yhi, ok := w.searchCOOY(p, xw, yw, ptrCY, i)
		if !ok {
			w.miss++
			continue
		}
		w.hits++
		w.scratchR = append(w.scratchR, rangeMatch{lo: ylo, hi: yhi, xv: xw.Vals[i]})
	}
	w.searchNS += int64(time.Since(t))

	t = time.Now()
	fCols := yw.Inds[p.ncm:]
	if w.htaF != nil {
		for _, m := range w.scratchR {
			v := m.xv
			for j := m.lo; j < m.hi; j++ {
				w.htaF.Add(p.radFY.EncodeStrided(fCols, j), yw.Vals[j]*v)
			}
			w.products += uint64(m.hi - m.lo)
		}
	} else {
		for _, m := range w.scratchR {
			v := m.xv
			for j := m.lo; j < m.hi; j++ {
				w.hta.Add(p.radFY.EncodeStrided(fCols, j), yw.Vals[j]*v)
			}
			w.products += uint64(m.hi - m.lo)
		}
	}
	w.accumNS += int64(time.Since(t))

	t = time.Now()
	w.flushHtA(f)
	w.writeNS += int64(time.Since(t))
}

// subSPA processes X sub-tensor f with Algorithm 1: COO-Y linear search +
// vector SPA keyed by the raw free-index tuple of Y.
func (w *worker) subSPA(p *plan, xw, yw *coo.Tensor, ptrFX, ptrCY []int, f int) {
	lo, hi := ptrFX[f], ptrFX[f+1]

	t := time.Now()
	w.scratchR = w.scratchR[:0]
	for i := lo; i < hi; i++ {
		ylo, yhi, ok := w.searchCOOY(p, xw, yw, ptrCY, i)
		if !ok {
			w.miss++
			continue
		}
		w.hits++
		w.scratchR = append(w.scratchR, rangeMatch{lo: ylo, hi: yhi, xv: xw.Vals[i]})
	}
	w.searchNS += int64(time.Since(t))

	t = time.Now()
	fCols := yw.Inds[p.ncm:]
	for _, m := range w.scratchR {
		v := m.xv
		for j := m.lo; j < m.hi; j++ {
			before := w.spa.Len()
			for k := 0; k < p.nfy; k++ {
				w.keyBuf[k] = fCols[k][j]
			}
			w.spa.Add(w.keyBuf, yw.Vals[j]*v)
			if w.spa.Len() == before {
				w.spaHits++
			} else {
				w.spaMiss++
			}
		}
		w.products += uint64(m.hi - m.lo)
	}
	w.accumNS += int64(time.Since(t))

	t = time.Now()
	w.flushSPA(p, f)
	w.writeNS += int64(time.Since(t))
}

// flushHtA appends the accumulator contents to Zlocal and resets it. Both
// accumulator layouts expose the same insertion-order Keys/Vals arrays, so
// the Zlocal writeback contract is identical.
func (w *worker) flushHtA(f int) {
	var n int
	var keys []uint64
	var vals []float64
	if w.htaF != nil {
		n, keys, vals = w.htaF.Len(), w.htaF.Keys(), w.htaF.Vals()
	} else {
		n, keys, vals = w.hta.Len(), w.hta.Keys(), w.hta.Vals()
	}
	if n > 0 {
		w.z.subs = append(w.z.subs, zsub{f: int32(f), n: int32(n)})
		w.z.lns = append(w.z.lns, keys...)
		w.z.vals = append(w.z.vals, vals...)
	}
	if w.htaF != nil {
		w.htaF.Reset()
	} else {
		w.hta.Reset()
	}
}

// flushSPA appends the SPA contents (LN-encoding each tuple once) and
// resets it.
func (w *worker) flushSPA(p *plan, f int) {
	n := w.spa.Len()
	if n > 0 {
		w.z.subs = append(w.z.subs, zsub{f: int32(f), n: int32(n)})
		for i := 0; i < n; i++ {
			key, v := w.spa.Entry(i)
			w.z.lns = append(w.z.lns, p.radFY.Encode(key))
			w.z.vals = append(w.z.vals, v)
		}
	}
	w.spa.Reset()
}
