package core

import (
	"context"
	"fmt"
	"time"

	"sparta/internal/coo"
	"sparta/internal/hashtab"
	"sparta/internal/parallel"
)

// XStream yields sorted X windows in contraction mode order (free modes
// first, contract modes last). Implementations: coo.WindowStream (both the
// mmap-backed and in-memory variants) — every window boundary must be a
// mode-0 index change, which is what makes per-window outputs disjoint.
type XStream interface {
	// Dims returns the streamed tensor's mode sizes, already permuted to
	// contraction order.
	Dims() []uint64
	// NNZ returns the total non-zero count across all windows.
	NNZ() int
	// Next returns the next sorted window view, or (nil, nil) at the end.
	Next() (*coo.Tensor, error)
	// Reset rewinds the stream to the first window.
	Reset() error
}

// NewTensorStream adapts an in-memory X to an XStream: permute to
// contraction order (free modes first, cmodesX last), sort, and cut into
// windows of at most windowNNZ non-zeros at mode-0 boundaries. This is the
// serving path's degrade tier — X is already resident, but streaming bounds
// the HtA/Zlocal/Z working set to one window. inPlace reuses the caller's
// tensor like Options.InPlace does.
func NewTensorStream(x *coo.Tensor, cmodesX []int, windowNNZ, threads int, inPlace bool) (XStream, error) {
	if x == nil {
		return nil, fmt.Errorf("core: nil X tensor")
	}
	if len(cmodesX) == 0 {
		return nil, fmt.Errorf("core: contraction needs at least one contract-mode pair")
	}
	if len(cmodesX) >= x.Order() {
		return nil, fmt.Errorf("core: streamed contraction needs at least one free X mode")
	}
	inX, err := modeSet(x.Order(), cmodesX, "X")
	if err != nil {
		return nil, err
	}
	perm := make([]int, 0, x.Order())
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			perm = append(perm, m)
		}
	}
	perm = append(perm, cmodesX...)
	xw := x
	if !inPlace {
		xw = x.Clone()
	}
	if err := xw.Permute(perm); err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	xw.SortWith(threads, coo.SortAuto)
	return coo.StreamSorted(xw, windowNNZ), nil
}

// StreamOptions configures ContractStream. The embedded Options mean the
// same as everywhere else (Algorithm must be AlgSparta and Kernel must
// match the prepared table).
type StreamOptions struct {
	Options
	// SpillZ stages the output through a file-backed RunSpool instead of
	// heap, for contractions whose Z itself exceeds the DRAM budget. The
	// returned tensor is then an mmap view whose pages the kernel may
	// evict (hetmem.Residency.SpillZ decides this from the budget).
	SpillZ bool
	// SpillDir hosts the spool and materialized output files when SpillZ
	// is set ("" = the default temp directory).
	SpillDir string
}

// ContractStream computes Z = X ×^{prepared} Y walking X window by window:
// only HtY, one window of X, and one window's accumulators are ever hot at
// once — the out-of-core execution tier that turns the paper's
// heterogeneous-memory placement priority into an actual capability.
//
// Output is bitwise identical to PreparedY.Contract with the same options:
// window boundaries fall only on mode-0 index changes, so no free-prefix
// sub-tensor is ever split, each sub-tensor runs through the same
// subSparta/gatherFused code in the same order, and the per-window sorted
// runs are disjoint and ascending — their concatenation IS the in-memory
// output, and stage ⑤ stays dead.
//
// The contraction must keep at least one free X mode; a fully contracted X
// has a single sub-tensor spanning everything and cannot be windowed.
func ContractStream(ctx context.Context, xs XStream, pr *PreparedY, opt StreamOptions) (*coo.Tensor, *Report, error) {
	if xs == nil {
		return nil, nil, fmt.Errorf("core: nil X stream")
	}
	if pr == nil {
		return nil, nil, fmt.Errorf("core: nil prepared Y")
	}
	if opt.Algorithm != AlgSparta {
		return nil, nil, fmt.Errorf("core: streamed contraction supports only %v, got %v", AlgSparta, opt.Algorithm)
	}
	if opt.Kernel != pr.kernel {
		return nil, nil, fmt.Errorf("core: prepared with kernel %v, contraction requested %v", pr.kernel, opt.Kernel)
	}
	dims := xs.Dims()
	ncm := len(pr.cdims)
	nfx := len(dims) - ncm
	if nfx < 1 {
		return nil, nil, fmt.Errorf("core: streamed contraction needs at least one free X mode (fully contracted X must run in memory)")
	}
	for k := 0; k < ncm; k++ {
		if dims[nfx+k] != pr.cdims[k] {
			return nil, nil, fmt.Errorf("core: contract pair %d: streamed X mode %d has size %d but prepared Y mode has size %d",
				k, nfx+k, dims[nfx+k], pr.cdims[k])
		}
	}
	p := &plan{ncm: ncm, nfx: nfx, nfy: len(pr.fydims), radC: pr.radC, radFY: pr.radFY}
	p.zdims = append(append(make([]uint64, 0, nfx+p.nfy), dims[:nfx]...), pr.fydims...)

	rep, err := checkOptions(opt.Options, xs.NNZ(), pr.nnzY)
	if err != nil {
		return nil, nil, err
	}
	threads := rep.Threads
	rep.Streamed = true
	rep.HtYReused = true
	rep.BytesX = uint64(xs.NNZ()) * uint64(4*len(dims)+8)
	pr.fillReport(rep)

	tr, track, _ := traceTarget(ctx, opt.Options)
	ws := makeWorkers(threads, p, opt.Options)
	var sink zSink
	if opt.SpillZ {
		if sink, err = newSpillSink(opt.SpillDir, p.zdims); err != nil {
			return nil, nil, err
		}
	} else {
		sink = &heapSink{dims: p.zdims}
	}
	defer sink.abort()

	total := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		t0 := time.Now()
		win, err := xs.Next()
		if err != nil {
			return nil, nil, err
		}
		if win == nil {
			break
		}
		if win.NNZ() == 0 {
			continue
		}
		// mmap'd files skip full validation at open; check each window's
		// indices as its pages fault in, so a corrupt file errors instead
		// of producing garbage output.
		if err := validateWindow(win, dims); err != nil {
			return nil, nil, err
		}
		ptrFX, err := win.SubPtr(nfx)
		if err != nil {
			return nil, nil, err
		}
		rep.NF += len(ptrFX) - 1
		if ms := coo.MaxSubNNZ(ptrFX); ms > rep.MaxSubNNZX {
			rep.MaxSubNNZX = ms
		}
		d := time.Since(t0)
		rep.StageWall[StageInput] += d
		rep.StageCPU[StageInput] += d

		sp := tr.Start("x window", track)
		cerr := parallel.ForChunkedWorkCtx(ctx, threads, len(ptrFX)-1, 0, int64(win.NNZ()), func(tid, lo, hi int) {
			w := ws[tid]
			for f := lo; f < hi; f++ {
				w.subSparta(p, win, pr.hty, ptrFX, f)
			}
		})
		if cerr != nil {
			sp.End()
			return nil, nil, cerr
		}
		if opt.MaxOutputNNZ > 0 {
			winOut := 0
			for _, w := range ws {
				winOut += len(w.z.vals)
			}
			if total+winOut > opt.MaxOutputNNZ {
				sp.End()
				return nil, nil, fmt.Errorf("core: output exceeds MaxOutputNNZ %d", opt.MaxOutputNNZ)
			}
		}
		t0 = time.Now()
		run, err := gatherFused(p, win, ptrFX, ws, rep)
		for _, w := range ws {
			w.z.reset()
		}
		if err != nil {
			sp.End()
			return nil, nil, err
		}
		d = time.Since(t0)
		rep.StageWall[StageWrite] += d
		rep.StageCPU[StageWrite] += d
		total += run.NNZ()
		if err := sink.append(run); err != nil {
			sp.End()
			return nil, nil, err
		}
		rep.Windows++
		sp.End()
	}
	mergeWorkerStats(rep, ws)

	spM := tr.Start("z merge", track)
	t0 := time.Now()
	z, err := sink.finish()
	d := time.Since(t0)
	spM.End()
	if err != nil {
		return nil, nil, err
	}
	rep.StageWall[StageWrite] += d
	rep.StageCPU[StageWrite] += d
	rep.NNZZ = z.NNZ()
	rep.BytesZ = z.Bytes()
	rep.SpilledZ = opt.SpillZ
	if p.nfy > 0 && rep.MaxSubNNZY > 0 {
		rep.EstBytesHtAPerTh = hashtab.EstimateHtABytes(
			hashtab.NextPow2(rep.MaxSubNNZY), rep.MaxSubNNZX, rep.MaxSubNNZY, p.nfy)
	}
	if pr.uses.Add(1) == 1 {
		rep.HtYReused = false
		rep.HtYBuild = pr.build
	}
	publishMetrics(opt.Metrics, rep, ws, nil)
	return z, rep, nil
}

// validateWindow bounds-checks one window's indices against the mode sizes;
// the per-window slice of the full-tensor validation mmap loading defers.
func validateWindow(win *coo.Tensor, dims []uint64) error {
	for m, col := range win.Inds {
		d := dims[m]
		for _, v := range col {
			if uint64(v) >= d {
				return fmt.Errorf("core: streamed X window: index %d out of range for mode %d (size %d)", v, m, d)
			}
		}
	}
	return nil
}

// zSink collects the per-window sorted output runs. abort is idempotent and
// safe after finish.
type zSink interface {
	append(run *coo.Tensor) error
	finish() (*coo.Tensor, error)
	abort()
}

// heapSink accumulates runs in memory and merges at the end — the tier for
// outputs that fit the budget even when X does not.
type heapSink struct {
	dims []uint64
	runs []*coo.Tensor
	done bool
}

func (s *heapSink) append(run *coo.Tensor) error {
	s.runs = append(s.runs, run)
	return nil
}

func (s *heapSink) finish() (*coo.Tensor, error) {
	s.done = true
	return coo.MergeRuns(s.dims, s.runs)
}

func (s *heapSink) abort() { s.runs = nil }

// spillSink stages runs through a file-backed RunSpool and hands back an
// mmap view, so Z is never heap-resident.
type spillSink struct {
	spool *coo.RunSpool
	done  bool
}

func newSpillSink(dir string, dims []uint64) (*spillSink, error) {
	sp, err := coo.NewRunSpool(dir, dims)
	if err != nil {
		return nil, err
	}
	return &spillSink{spool: sp}, nil
}

func (s *spillSink) append(run *coo.Tensor) error { return s.spool.Append(run) }

func (s *spillSink) finish() (*coo.Tensor, error) {
	s.done = true
	m, err := s.spool.Materialize()
	if err != nil {
		return nil, err
	}
	return m.Tensor(), nil
}

func (s *spillSink) abort() {
	if !s.done {
		_ = s.spool.Close()
	}
}
