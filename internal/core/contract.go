package core

import (
	"context"
	"fmt"
	"time"

	"sparta/internal/coo"
	"sparta/internal/hashtab"
	"sparta/internal/obs"
	"sparta/internal/parallel"
	"sparta/internal/sortx"
)

// Options configures a contraction. The zero value is the paper's default
// configuration of Algorithm 2 except for the algorithm selector: Sparta
// (HtY+HtA), all cores, sorted output, cloned inputs.
type Options struct {
	// Algorithm selects the SpTC variant. NOTE: the zero value is AlgSPA
	// (to match EXPERIMENT_MODES numbering); use AlgSparta for Sparta.
	Algorithm Algorithm
	// Threads is the worker count for every parallel stage; <1 means
	// GOMAXPROCS.
	Threads int
	// SkipOutputSort leaves Z unsorted (stage ⑤ is on by default, as in
	// the paper's evaluation).
	SkipOutputSort bool
	// UnfusedWriteback restores the seed writeback: gather Zlocal in worker
	// order, then run the full stage-⑤ sort over Z. The default (false)
	// fuses ordering into the gather — Zlocal runs scatter to f-ordered
	// destinations and each run is radix-sorted by LN(Fy) in place, so Z
	// comes out sorted and stage ⑤ is a no-op. Kept selectable for the
	// sptc-bench -exp sort duel and as a belt-and-braces escape hatch.
	UnfusedWriteback bool
	// InPlace lets the algorithm permute and sort the caller's tensors
	// instead of cloning them, saving one copy of each input.
	InPlace bool
	// Kernel selects the hash-kernel layout family (KernelFlat, the
	// default, or KernelChained — the seed implementation). Both produce
	// identical outputs; the flat kernels are the measured-faster path
	// (see BENCH_1.json and sptc-bench -exp kernels).
	Kernel Kernel
	// BucketsHtY overrides the HtY bucket/slot count (0 = kernel default:
	// next power of two >= nnz_Y chained, >= 2*nnz_Y flat). Rounded up to
	// a power of two; the flat kernel additionally clamps it above nnz_Y
	// so its open-addressed probes terminate.
	BucketsHtY int
	// HtACapHint pre-sizes each thread's accumulator (0 = heuristic).
	HtACapHint int
	// TwoPassHtY selects the lock-free two-pass construction of the
	// *chained* HtY instead of the bucket-locked parallel build
	// (KernelChained only; the flat kernel is always two-pass and
	// lock-free). The results are identical; the two-pass build avoids
	// lock contention on tensors with few distinct contract keys at the
	// cost of an extra pass over Y.
	TwoPassHtY bool
	// Planner enables chain-level contraction-order planning
	// (PlannerAuto). Only EvalChain consults it; single contractions
	// accept and ignore the field so one Options value can drive both.
	Planner Planner
	// MaxOutputNNZ aborts the contraction with an error when the output
	// would exceed this many non-zeros (0 = unlimited). SpTC outputs can
	// dwarf both inputs (the paper's challenge 3); the bound is checked
	// after the compute stages, before Z is materialized.
	MaxOutputNNZ int
	// Tracer, when non-nil, records stage spans and per-worker chunk spans
	// for Chrome trace-event export (sptc-bench -trace). Nil costs nothing.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives counters, gauges, and distribution
	// histograms (probe lengths, worker load, Zlocal growth) after each
	// contraction. Nil costs one predictable branch per hot-loop record.
	Metrics *obs.Registry
}

// Contract computes Z = X ×_{cmodesX}^{cmodesY} Y with the selected
// algorithm: contract mode cmodesX[k] of X against cmodesY[k] of Y. The
// output modes are X's free modes (original order) followed by Y's free
// modes. A fully contracted result is returned as a 1-mode, size-1 tensor
// holding the scalar at index 0.
func Contract(x, y *coo.Tensor, cmodesX, cmodesY []int, opt Options) (*coo.Tensor, *Report, error) {
	return ContractCtx(context.Background(), x, y, cmodesX, cmodesY, opt)
}

// ContractCtx is Contract with cancellation: the parallel stage loops
// checkpoint ctx between chunk claims, so a canceled context or an expired
// deadline stops the contraction at the next chunk boundary and returns
// ctx.Err(). Partially computed state is discarded. A Background context
// costs nothing on the hot path.
func ContractCtx(ctx context.Context, x, y *coo.Tensor, cmodesX, cmodesY []int, opt Options) (*coo.Tensor, *Report, error) {
	p, err := newPlan(x, y, cmodesX, cmodesY)
	if err != nil {
		return nil, nil, err
	}
	rep, err := checkOptions(opt, x.NNZ(), y.NNZ())
	if err != nil {
		return nil, nil, err
	}
	if opt.Algorithm == AlgTwoPhase {
		z, err := contractTwoPhase(ctx, p, opt, rep)
		if err != nil {
			return nil, nil, err
		}
		return z, rep, nil
	}
	return contractMain(ctx, p, nil, opt, rep)
}

// checkOptions validates the algorithm/kernel selectors and builds the
// Report skeleton shared by the one-shot and prepared entry points.
func checkOptions(opt Options, nnzX, nnzY int) (*Report, error) {
	switch opt.Algorithm {
	case AlgSPA, AlgCOOHtA, AlgSparta, AlgTwoPhase:
	default:
		return nil, errBadAlgorithm(opt.Algorithm)
	}
	switch opt.Kernel {
	case KernelFlat, KernelChained:
	default:
		return nil, errBadKernel(opt.Kernel)
	}
	switch opt.Planner {
	case PlannerOff, PlannerAuto:
	default:
		return nil, fmt.Errorf("core: unknown planner mode %d", int(opt.Planner))
	}
	threads := opt.Threads
	if threads < 1 {
		threads = parallel.DefaultThreads()
	}
	return &Report{
		Algorithm: opt.Algorithm,
		Kernel:    opt.Kernel,
		Threads:   threads,
		NNZX:      nnzX,
		NNZY:      nnzY,
	}, nil
}

// traceTarget resolves where stage spans go: a request trace in ctx wins
// over the bench-level Options.Tracer, putting the spans on the request's
// private track so concurrent requests never interleave their span trees.
// reqMode additionally suppresses per-worker chunk spans — worker tracks
// are only meaningful for the single-run bench timeline.
func traceTarget(ctx context.Context, opt Options) (tr *obs.Tracer, track int, reqMode bool) {
	if rt := obs.ReqFrom(ctx); rt != nil {
		return rt.Tracer(), rt.Track(), true
	}
	return opt.Tracer, 0, false
}

// contractMain runs stages ①–⑤ for the Zlocal-buffered algorithms. When
// prep is non-nil the COO→HtY conversion is skipped entirely — the prepared
// table is probed instead and the report is marked HtYReused (no "hty
// build" span is opened).
func contractMain(ctx context.Context, p *plan, prep *PreparedY, opt Options, rep *Report) (*coo.Tensor, *Report, error) {
	threads := rep.Threads

	// ① Input processing -------------------------------------------------
	// Spans pair with the stage timers; error paths leave a span un-ended,
	// which the tracer simply never records (End is what appends events).
	tr, track, reqMode := traceTarget(ctx, opt)
	spInput := tr.Start("input processing", track)
	t0 := time.Now()
	xw := p.x
	if !opt.InPlace {
		xw = xw.Clone()
	}
	if err := xw.Permute(p.permX); err != nil {
		return nil, nil, err
	}
	spXSort := tr.Start("x sort", track)
	rep.XSort = xw.SortWith(threads, coo.SortAuto)
	spXSort.End()
	ptrFX, err := xw.SubPtr(p.nfx)
	if err != nil {
		return nil, nil, err
	}
	rep.NF = len(ptrFX) - 1
	rep.MaxSubNNZX = coo.MaxSubNNZ(ptrFX)
	rep.BytesX = xw.Bytes()

	var hty hashtab.YTable
	var yw *coo.Tensor
	var ptrCY []int
	if prep != nil {
		hty = prep.hty
		rep.HtYReused = true
		prep.fillReport(rep)
	} else if opt.Algorithm == AlgSparta {
		if hty, err = buildYTable(ctx, p, opt, threads, rep); err != nil {
			return nil, nil, err
		}
	} else {
		yw = p.y
		if !opt.InPlace {
			yw = yw.Clone()
		}
		if err := yw.Permute(p.permY); err != nil {
			return nil, nil, err
		}
		yw.Sort(threads)
		if ptrCY, err = yw.SubPtr(p.ncm); err != nil {
			return nil, nil, err
		}
		rep.BytesY = yw.Bytes()
		rep.DistinctKeysY = len(ptrCY) - 1
		rep.MaxSubNNZY = coo.MaxSubNNZ(ptrCY)
	}
	rep.StageWall[StageInput] = time.Since(t0)
	rep.StageCPU[StageInput] = rep.StageWall[StageInput]
	spInput.End()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// ②③④ Computation; chunk < 1 defers the chunk size to ForChunked's
	// own heuristic (the single source of truth for chunking). -----------
	ws := makeWorkers(threads, p, opt)
	nf := rep.NF
	spCompute := tr.Start("compute", track)
	cerr := parallel.ForChunkedWorkCtx(ctx, threads, nf, 0, int64(xw.NNZ()), func(tid, lo, hi int) {
		var sp obs.Span
		if !reqMode {
			sp = tr.Start("subtensor chunk", tid+1)
		}
		w := ws[tid]
		for f := lo; f < hi; f++ {
			switch opt.Algorithm {
			case AlgSparta:
				w.subSparta(p, xw, hty, ptrFX, f)
			case AlgCOOHtA:
				w.subCOOHtA(p, xw, yw, ptrFX, ptrCY, f)
			case AlgSPA:
				w.subSPA(p, xw, yw, ptrFX, ptrCY, f)
			}
		}
		sp.End()
	})
	spCompute.End()
	if cerr != nil {
		return nil, nil, cerr
	}
	mergeWorkerStats(rep, ws)

	// ④ Writeback: gather thread-local Zlocal into Z ---------------------
	if opt.MaxOutputNNZ > 0 {
		total := 0
		for _, w := range ws {
			total += len(w.z.vals)
		}
		if total > opt.MaxOutputNNZ {
			return nil, nil, fmt.Errorf("core: output has %d non-zeros, exceeding MaxOutputNNZ %d", total, opt.MaxOutputNNZ)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	fused := !opt.UnfusedWriteback
	spGather := tr.Start("writeback gather", track)
	t0 = time.Now()
	var z *coo.Tensor
	if fused {
		z, err = gatherFused(p, xw, ptrFX, ws, rep)
	} else {
		z, err = gather(p, xw, ptrFX, ws, threads)
	}
	if err != nil {
		return nil, nil, err
	}
	gatherTime := time.Since(t0)
	spGather.End()
	rep.StageWall[StageWrite] += gatherTime
	rep.StageCPU[StageWrite] += gatherTime
	rep.NNZZ = z.NNZ()
	rep.BytesZ = z.Bytes()
	if p.nfy > 0 {
		rep.EstBytesHtAPerTh = hashtab.EstimateHtABytes(
			hashtab.NextPow2(rep.MaxSubNNZY), rep.MaxSubNNZX, rep.MaxSubNNZY, p.nfy)
	}

	// ⑤ Output sorting: the fused gather already produced Z in lexicographic
	// order (f-ordered scatter + per-run LN(Fy) sorts), so the stage runs
	// only on the unfused path. The residual per-run sort time is reported
	// separately as rep.SubsortWall, charged to StageWrite where it ran.
	if !opt.SkipOutputSort && !fused {
		spSort := tr.Start("output sort", track)
		t0 = time.Now()
		z.Sort(threads)
		rep.StageWall[StageSort] = time.Since(t0)
		rep.StageCPU[StageSort] = rep.StageWall[StageSort]
		spSort.End()
	}
	publishMetrics(opt.Metrics, rep, ws, nil)
	return z, rep, nil
}

// errBadAlgorithm keeps the error text alongside the enum.
type errBadAlgorithm Algorithm

func (e errBadAlgorithm) Error() string {
	return "core: unknown algorithm " + Algorithm(e).String()
}

// errBadKernel mirrors errBadAlgorithm for the kernel selector.
type errBadKernel Kernel

func (e errBadKernel) Error() string {
	return "core: unknown kernel " + Kernel(e).String()
}

// buildYTable runs the selected COO→HtY conversion kernel and records the
// table stats plus the build-only wall time (rep.HtYBuild) so kernel duels
// compare exactly the hash-table work, not X's permute+sort. The two-pass
// chained build threads ctx (its bucket assembly checkpoints between chunk
// claims); the other builds are checkpointed by contractMain around the
// call.
func buildYTable(ctx context.Context, p *plan, opt Options, threads int, rep *Report) (hashtab.YTable, error) {
	tr, track, _ := traceTarget(ctx, opt)
	sp := tr.Start("hty build", track)
	defer sp.End()
	t0 := time.Now()
	var hty hashtab.YTable
	if opt.Kernel == KernelChained {
		if opt.TwoPassHtY {
			var err error
			hty, err = hashtab.BuildHtY2PCtx(ctx, p.y, p.cmodesY, p.fmodesY, p.radC, p.radFY, opt.BucketsHtY, threads)
			if err != nil {
				return nil, err
			}
		} else {
			hty = hashtab.BuildHtY(p.y, p.cmodesY, p.fmodesY, p.radC, p.radFY, opt.BucketsHtY, threads)
		}
	} else {
		hty = hashtab.BuildHtYFlat(p.y, p.cmodesY, p.fmodesY, p.radC, p.radFY, opt.BucketsHtY, threads)
	}
	rep.HtYBuild = time.Since(t0)
	rep.BytesY = p.y.Bytes()
	rep.BytesHtY = hty.Bytes()
	rep.BucketsHtY = hty.NumBuckets()
	rep.DistinctKeysY = hty.NumKeys()
	rep.MaxSubNNZY = hty.MaxItemLen()
	rep.EstBytesHtY = hashtab.EstimateHtYBytes(p.y.NNZ(), p.y.Order(), hty.NumBuckets())
	return hty, nil
}

// gather allocates Z exactly (the sum of all Zlocal sizes is known — the
// paper's answer to the unknown-output-size challenge) and copies every
// thread's buffer into a disjoint range in parallel.
func gather(p *plan, xw *coo.Tensor, ptrFX []int, ws []*worker, threads int) (*coo.Tensor, error) {
	counts := make([]int, len(ws))
	for i, w := range ws {
		counts[i] = len(w.z.vals)
	}
	offsets, total := parallel.PrefixSum(counts)
	z, err := coo.New(p.zdims, 0)
	if err != nil {
		return nil, err
	}
	for m := range z.Inds {
		z.Inds[m] = make([]uint32, total)
	}
	z.Vals = make([]float64, total)

	xCols := xw.Inds[:p.nfx]
	parallel.For(len(ws), len(ws), func(_, lo, hi int) {
		buf := make([]uint32, p.nfy)
		for wi := lo; wi < hi; wi++ {
			w := ws[wi]
			pos := offsets[wi]
			k := 0
			for _, sub := range w.z.subs {
				xAt := ptrFX[sub.f]
				for j := 0; j < int(sub.n); j++ {
					for m := 0; m < p.nfx; m++ {
						z.Inds[m][pos] = xCols[m][xAt]
					}
					p.radFY.Decode(w.z.lns[k], buf)
					for m := 0; m < p.nfy; m++ {
						z.Inds[p.nfx+m][pos] = buf[m]
					}
					z.Vals[pos] = w.z.vals[k]
					pos++
					k++
				}
			}
		}
	})
	return z, nil
}

// gatherFused is the sort-fused writeback: it allocates Z exactly like
// gather, but scatters each sub-tensor's run to a destination computed from
// the sub-tensor id f — a prefix sum over per-f output counts — instead of
// worker order, after radix-sorting the run by LN(Fy) in place.
//
// Why that yields a fully sorted Z: X is sorted, so ascending f enumerates
// the distinct free-X tuples in lexicographic order; within one f the free-X
// columns are constant and the accumulator keys (unique per run) sort the
// free-Y columns. Every f is processed by exactly one worker, so the per-f
// counts never collide. Stage ⑤ on this path is the per-run sorts, reported
// as rep.SubsortWall (max across workers, as stage walls are).
func gatherFused(p *plan, xw *coo.Tensor, ptrFX []int, ws []*worker, rep *Report) (*coo.Tensor, error) {
	nf := len(ptrFX) - 1
	counts := make([]int, nf)
	for _, w := range ws {
		for _, sub := range w.z.subs {
			counts[sub.f] = int(sub.n)
		}
	}
	offsets, total := parallel.PrefixSum(counts)
	z, err := coo.New(p.zdims, 0)
	if err != nil {
		return nil, err
	}
	for m := range z.Inds {
		z.Inds[m] = make([]uint32, total)
	}
	z.Vals = make([]float64, total)

	var maxKey uint64
	if c := p.radFY.Card(); c > 0 {
		maxKey = c - 1
	}
	xCols := xw.Inds[:p.nfx]
	zIndsX := z.Inds[:p.nfx]
	zIndsY := z.Inds[p.nfx:]
	zVals := z.Vals
	radFY := p.radFY
	// Per-worker scratch lives out here so the scatter closure itself stays
	// allocation-free; the -perf lint gate holds the closure at zero heap
	// escapes and zero bounds checks. The guards on impossible conditions
	// below (runs tiling Zlocal, offsets tiling [0,total)) exist for the
	// bounds-check prover and replace the compiler's implicit panics.
	bufs := make([][]uint32, len(ws))
	for i := range bufs {
		bufs[i] = make([]uint32, p.nfy)
	}
	sks := make([][]uint64, len(ws))
	svs := make([][]float64, len(ws))
	subsortNS := make([]int64, len(ws))
	parallel.For(len(ws), len(ws), func(_, wlo, whi int) {
		if wlo < 0 || whi > len(ws) || whi > len(bufs) ||
			whi > len(sks) || whi > len(svs) || whi > len(subsortNS) {
			return // impossible: parallel.For splits [0,len(ws))
		}
		for wi := wlo; wi < whi; wi++ {
			w := ws[wi]
			buf := bufs[wi]
			// Pass 1: sort every run by LN(Fy). Timed as a block so the
			// residual stage-⑤ cost is exact without per-run clock calls.
			// Runs are mostly tiny (output nnz over nf is often ~2), so
			// one- and two-element runs are handled inline and longer runs
			// only enter SortPairs when a cheap sweep finds them unsorted
			// (HtY item lists frequently come out of the build key-ordered).
			t0 := time.Now()
			lns, vals := w.z.lns, w.z.vals
			k := 0
			for _, sub := range w.z.subs {
				n := int(sub.n)
				end := k + n
				if n < 0 || k < 0 || end < k || end > len(lns) || end > len(vals) {
					break // impossible: runs tile Zlocal exactly
				}
				runK := lns[k:end]
				runV := vals[k:end]
				switch {
				case n < 2:
				case n == 2:
					if runK[0] > runK[1] {
						runK[0], runK[1] = runK[1], runK[0]
						runV[0], runV[1] = runV[1], runV[0]
					}
				default:
					sortx.SortPairs(runK, runV, maxKey, &sks[wi], &svs[wi])
				}
				k = end
			}
			subsortNS[wi] = int64(time.Since(t0))
			// Pass 2: scatter the sorted runs to their f-ordered slots.
			k = 0
			for _, sub := range w.z.subs {
				n := int(sub.n)
				f := int(sub.f)
				end := k + n
				if n < 0 || k < 0 || end < k || end > len(lns) || end > len(vals) ||
					f < 0 || f >= len(offsets) || f >= len(ptrFX) {
					break // impossible: subs reference valid sub-tensors
				}
				runK := lns[k:end]
				runV := vals[k:end]
				pos := offsets[f]
				xAt := ptrFX[f]
				zend := pos + n
				if pos < 0 || zend < pos || zend > len(zVals) {
					break // impossible: per-f offsets tile [0,total)
				}
				copy(zVals[pos:zend], runV)
				// Free-X columns are constant across one run.
				for m, col := range xCols {
					if m >= len(zIndsX) || xAt < 0 || xAt >= len(col) {
						continue // impossible: X columns span nnz_X
					}
					v := col[xAt]
					dst := zIndsX[m]
					if pos < 0 || zend < pos || zend > len(dst) {
						continue // impossible: Z columns span total
					}
					run := dst[pos:zend]
					for j := range run {
						run[j] = v
					}
				}
				// Free-Y columns decode per item.
				for j, ln := range runK {
					radFY.Decode(ln, buf)
					zp := pos + j
					for m, v := range buf {
						if m >= len(zIndsY) {
							continue // impossible: buf has one entry per free-Y mode
						}
						dst := zIndsY[m]
						if uint(zp) >= uint(len(dst)) {
							continue // impossible: Z columns span total
						}
						dst[zp] = v
					}
				}
				k = end
			}
		}
	})
	for _, ns := range subsortNS {
		if d := time.Duration(ns); d > rep.SubsortWall {
			rep.SubsortWall = d
		}
	}
	return z, nil
}

// mergeWorkerStats folds per-thread timing and counters into the report:
// wall = max across threads (the stages run concurrently), cpu = sum.
func mergeWorkerStats(rep *Report, ws []*worker) {
	for _, w := range ws {
		walls := [...]time.Duration{
			StageSearch: time.Duration(w.searchNS),
			StageAccum:  time.Duration(w.accumNS),
			StageWrite:  time.Duration(w.writeNS),
		}
		for s := StageSearch; s <= StageWrite; s++ {
			if walls[s] > rep.StageWall[s] {
				rep.StageWall[s] = walls[s]
			}
			rep.StageCPU[s] += walls[s]
		}
		rep.SearchSteps += w.searchSteps
		rep.ProbesHtY += w.probesHtY
		rep.HitsY += w.hits
		rep.MissY += w.miss
		rep.Products += w.products
		if w.hta != nil {
			rep.ProbesHtA += w.hta.Probes
			rep.AccumHits += w.hta.Hits
			rep.AccumMiss += w.hta.Misses
			b := w.hta.Bytes()
			rep.BytesHtA += b
			if b > rep.BytesHtAPerThr {
				rep.BytesHtAPerThr = b
			}
		}
		if w.htaF != nil {
			rep.ProbesHtA += w.htaF.Probes
			rep.AccumHits += w.htaF.Hits
			rep.AccumMiss += w.htaF.Misses
			b := w.htaF.Bytes()
			rep.BytesHtA += b
			if b > rep.BytesHtAPerThr {
				rep.BytesHtAPerThr = b
			}
		}
		if w.spa != nil {
			rep.SPACompares += w.spa.Compares
			rep.AccumHits += w.spaHits
			rep.AccumMiss += w.spaMiss
			b := w.spa.Bytes()
			rep.BytesHtA += b
			if b > rep.BytesHtAPerThr {
				rep.BytesHtAPerThr = b
			}
		}
		rep.BytesZLocal += w.z.bytes()
	}
}
