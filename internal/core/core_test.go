package core

import (
	"math"
	"math/rand"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/dense"
)

var allAlgorithms = []Algorithm{AlgSPA, AlgCOOHtA, AlgSparta, AlgTwoPhase}

func randomSparse(dims []uint64, nnz int, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := coo.MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		t.Append(idx, rng.NormFloat64())
	}
	t.Sort(1)
	t.Dedup()
	return t
}

// checkAgainstDense verifies one contraction against the brute-force dense
// reference for every algorithm and 1 & 3 threads.
func checkAgainstDense(t *testing.T, x, y *coo.Tensor, cmX, cmY []int) {
	t.Helper()
	dx, err := dense.FromCOO(x, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := dense.FromCOO(y, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dense.Contract(dx, dy, cmX, cmY, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		for _, threads := range []int{1, 3} {
			z, rep, err := Contract(x, y, cmX, cmY, Options{Algorithm: alg, Threads: threads})
			if err != nil {
				t.Fatalf("%v threads=%d: %v", alg, threads, err)
			}
			if err := z.Validate(); err != nil {
				t.Fatalf("%v: invalid output: %v", alg, err)
			}
			if !z.IsSorted() {
				t.Fatalf("%v: output not sorted", alg)
			}
			// Output coordinates must be unique.
			for i := 1; i < z.NNZ(); i++ {
				if z.Compare(i-1, i) == 0 {
					t.Fatalf("%v: duplicate output coordinate at %d", alg, i)
				}
			}
			got, err := dense.FromCOO(z, 1<<24)
			if err != nil {
				t.Fatal(err)
			}
			diff, err := dense.MaxAbsDiff(got, want)
			if err != nil {
				t.Fatalf("%v: shape mismatch: Z dims %v", alg, z.Dims)
			}
			if diff > 1e-9 {
				t.Fatalf("%v threads=%d: max diff %v", alg, threads, diff)
			}
			if rep.NNZZ != z.NNZ() {
				t.Fatalf("%v: report NNZZ %d != %d", alg, rep.NNZZ, z.NNZ())
			}
		}
	}
}

func TestContractMatrixMultiply(t *testing.T) {
	x := randomSparse([]uint64{8, 9}, 30, 1)
	y := randomSparse([]uint64{9, 7}, 30, 2)
	checkAgainstDense(t, x, y, []int{1}, []int{0})
}

func TestContractPaperExample(t *testing.T) {
	// The §2.2 walk-through: 4-order × 4-order over two modes.
	x := randomSparse([]uint64{5, 6, 4, 3}, 60, 3)
	y := randomSparse([]uint64{4, 3, 5, 5}, 60, 4)
	checkAgainstDense(t, x, y, []int{2, 3}, []int{0, 1})
}

func TestContractNonAdjacentModes(t *testing.T) {
	// Contract modes that are neither leading nor trailing, in scrambled
	// pairing order.
	x := randomSparse([]uint64{4, 5, 3, 6}, 50, 5)
	y := randomSparse([]uint64{6, 2, 5}, 25, 6)
	checkAgainstDense(t, x, y, []int{3, 1}, []int{0, 2})
}

func TestContractAllModesOfX(t *testing.T) {
	// X fully contracted: output = Y free modes only.
	x := randomSparse([]uint64{4, 5}, 15, 7)
	y := randomSparse([]uint64{4, 5, 6}, 40, 8)
	checkAgainstDense(t, x, y, []int{0, 1}, []int{0, 1})
}

func TestContractScalarOutput(t *testing.T) {
	// Both fully contracted: Z is the inner product, as a [1] tensor.
	x := randomSparse([]uint64{5, 4}, 15, 9)
	y := randomSparse([]uint64{5, 4}, 15, 10)
	dx, _ := dense.FromCOO(x, 0)
	dy, _ := dense.FromCOO(y, 0)
	var want float64
	for i := range dx.Data {
		want += dx.Data[i] * dy.Data[i]
	}
	for _, alg := range allAlgorithms {
		z, _, err := Contract(x, y, []int{0, 1}, []int{0, 1}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(z.Dims) != 1 || z.Dims[0] != 1 {
			t.Fatalf("%v: scalar dims %v", alg, z.Dims)
		}
		var got float64
		for _, v := range z.Vals {
			got += v
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%v: inner product %v, want %v", alg, got, want)
		}
	}
}

func TestContractHighOrder(t *testing.T) {
	x := randomSparse([]uint64{3, 4, 2, 3, 2}, 60, 11)
	y := randomSparse([]uint64{2, 3, 3, 2}, 30, 12)
	checkAgainstDense(t, x, y, []int{2, 3}, []int{0, 1})
}

func TestContractEmptyInputs(t *testing.T) {
	x := coo.MustNew([]uint64{4, 5}, 0)
	y := randomSparse([]uint64{5, 3}, 10, 13)
	for _, alg := range allAlgorithms {
		z, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if z.NNZ() != 0 || rep.NNZZ != 0 {
			t.Fatalf("%v: empty X gave %d non-zeros", alg, z.NNZ())
		}
		z, _, err = Contract(y, x, []int{0}, []int{1}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if z.NNZ() != 0 {
			t.Fatalf("%v: empty Y gave %d non-zeros", alg, z.NNZ())
		}
	}
}

func TestContractNoMatches(t *testing.T) {
	// Disjoint contract indices: X uses index 0, Y uses index 1.
	x := coo.MustNew([]uint64{3, 2}, 0)
	x.Append([]uint32{0, 0}, 1)
	x.Append([]uint32{1, 0}, 2)
	y := coo.MustNew([]uint64{2, 3}, 0)
	y.Append([]uint32{1, 0}, 3)
	for _, alg := range allAlgorithms {
		z, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if z.NNZ() != 0 {
			t.Fatalf("%v: expected empty output", alg)
		}
		if rep.HitsY != 0 || rep.MissY != 2 {
			t.Fatalf("%v: hits=%d miss=%d", alg, rep.HitsY, rep.MissY)
		}
	}
}

func TestContractValidation(t *testing.T) {
	x := randomSparse([]uint64{4, 5}, 10, 14)
	y := randomSparse([]uint64{5, 4}, 10, 15)
	cases := []struct {
		cmX, cmY []int
	}{
		{[]int{0}, []int{0, 1}},    // arity mismatch
		{[]int{}, []int{}},         // no contract modes
		{[]int{2}, []int{0}},       // X mode out of range
		{[]int{0}, []int{5}},       // Y mode out of range
		{[]int{0, 0}, []int{0, 1}}, // duplicate X mode
		{[]int{0}, []int{1}},       // size mismatch (4 vs 4? no: X0=4, Y1=4 matches) -- replaced below
	}
	cases[5] = struct{ cmX, cmY []int }{[]int{0}, []int{0}} // 4 vs 5 mismatch
	for _, c := range cases {
		if _, _, err := Contract(x, y, c.cmX, c.cmY, Options{Algorithm: AlgSparta}); err == nil {
			t.Errorf("cmX=%v cmY=%v accepted", c.cmX, c.cmY)
		}
	}
	if _, _, err := Contract(x, y, []int{0}, []int{1}, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestInPlaceMatchesClone(t *testing.T) {
	x := randomSparse([]uint64{6, 5, 4}, 80, 16)
	y := randomSparse([]uint64{4, 6}, 20, 17)
	z1, _, err := Contract(x, y, []int{2}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	xc, yc := x.Clone(), y.Clone()
	z2, _, err := Contract(xc, yc, []int{2}, []int{0}, Options{Algorithm: AlgSparta, InPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !z1.Equal(z2) {
		t.Fatal("in-place result differs")
	}
}

func TestSkipOutputSort(t *testing.T) {
	x := randomSparse([]uint64{6, 5}, 25, 18)
	y := randomSparse([]uint64{5, 6}, 25, 19)
	z, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta, SkipOutputSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StageWall[StageSort] != 0 {
		t.Fatal("sort stage timed despite skip")
	}
	z.Sort(1)
	zs, _, _ := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if !z.Equal(zs) {
		t.Fatal("unsorted output does not sort to the sorted output")
	}
}

func TestBilinearity(t *testing.T) {
	// Contract(c*X, Y) == c * Contract(X, Y)
	x := randomSparse([]uint64{5, 4}, 15, 20)
	y := randomSparse([]uint64{4, 5}, 15, 21)
	z1, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	xs := x.Clone()
	xs.Scale(3)
	z2, _, err := Contract(xs, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if z1.NNZ() != z2.NNZ() {
		t.Fatal("scaled contraction changed the non-zero pattern")
	}
	for i := range z1.Vals {
		if math.Abs(z2.Vals[i]-3*z1.Vals[i]) > 1e-9 {
			t.Fatal("bilinearity violated")
		}
	}
}

// TestAlgorithmsAgreeRandom fuzzes shapes and mode choices and checks the
// three algorithms agree with each other (values within fp tolerance).
func TestAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		orderX := 2 + rng.Intn(3)
		orderY := 2 + rng.Intn(3)
		ncm := 1 + rng.Intn(min(orderX, orderY))
		dimsX := make([]uint64, orderX)
		for m := range dimsX {
			dimsX[m] = uint64(2 + rng.Intn(6))
		}
		dimsY := make([]uint64, orderY)
		for m := range dimsY {
			dimsY[m] = uint64(2 + rng.Intn(6))
		}
		cmX := rng.Perm(orderX)[:ncm]
		cmY := rng.Perm(orderY)[:ncm]
		for k := range cmX {
			dimsY[cmY[k]] = dimsX[cmX[k]]
		}
		x := randomSparse(dimsX, 5+rng.Intn(60), int64(trial*2+1000))
		y := randomSparse(dimsY, 5+rng.Intn(60), int64(trial*2+1001))
		var ref *coo.Tensor
		for _, alg := range allAlgorithms {
			z, _, err := Contract(x, y, cmX, cmY, Options{Algorithm: alg, Threads: 1 + rng.Intn(3)})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, alg, err)
			}
			if ref == nil {
				ref = z
				continue
			}
			if z.NNZ() != ref.NNZ() {
				t.Fatalf("trial %d %v: nnz %d vs %d", trial, alg, z.NNZ(), ref.NNZ())
			}
			for i := 0; i < z.NNZ(); i++ {
				if z.Compare(i, i) != 0 { // self-compare sanity
					t.Fatal("compare broken")
				}
				for m := range z.Inds {
					if z.Inds[m][i] != ref.Inds[m][i] {
						t.Fatalf("trial %d %v: coordinate mismatch at %d", trial, alg, i)
					}
				}
				if math.Abs(z.Vals[i]-ref.Vals[i]) > 1e-9 {
					t.Fatalf("trial %d %v: value mismatch at %d: %v vs %v", trial, alg, i, z.Vals[i], ref.Vals[i])
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
