package core

import (
	"strings"
	"testing"
	"time"

	"sparta/internal/coo"
)

// TestCounterInvariants checks the Eq. 3/4 bookkeeping across algorithms:
// every X non-zero resolves to a hit or a miss, every product lands in the
// accumulator exactly once, and the output size equals the number of
// accumulator inserts.
func TestCounterInvariants(t *testing.T) {
	x := randomSparse([]uint64{9, 8, 7, 6}, 300, 31)
	y := randomSparse([]uint64{7, 6, 9, 5}, 300, 32)
	for _, alg := range allAlgorithms {
		for _, threads := range []int{1, 4} {
			z, rep, err := Contract(x, y, []int{2, 3}, []int{0, 1}, Options{Algorithm: alg, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			if rep.HitsY+rep.MissY != uint64(x.NNZ()) {
				t.Errorf("%v: hits+miss = %d, want nnzX %d", alg, rep.HitsY+rep.MissY, x.NNZ())
			}
			if rep.Products != rep.AccumHits+rep.AccumMiss {
				t.Errorf("%v: products %d != accum hits %d + miss %d",
					alg, rep.Products, rep.AccumHits, rep.AccumMiss)
			}
			if rep.AccumMiss != uint64(z.NNZ()) {
				t.Errorf("%v: accumulator inserts %d != nnzZ %d", alg, rep.AccumMiss, z.NNZ())
			}
			switch alg {
			case AlgSparta, AlgTwoPhase:
				if rep.ProbesHtY == 0 || rep.SearchSteps != 0 {
					t.Errorf("%v: probe counters wrong: %d/%d", alg, rep.ProbesHtY, rep.SearchSteps)
				}
				// Chained table with load factor <= 1: average probes per
				// lookup stay O(1); 8x nnzX is a generous ceiling.
				if rep.ProbesHtY > 8*uint64(x.NNZ()) {
					t.Errorf("%v: %d probes for %d lookups", alg, rep.ProbesHtY, x.NNZ())
				}
			case AlgSPA, AlgCOOHtA:
				if rep.SearchSteps == 0 || rep.ProbesHtY != 0 {
					t.Errorf("%v: search counters wrong: %d/%d", alg, rep.SearchSteps, rep.ProbesHtY)
				}
				// Linear search visits at most every distinct Y key per
				// X non-zero — the O(nnzX * nnzY) term of Eq. 3.
				max := uint64(x.NNZ()) * uint64(rep.DistinctKeysY)
				if rep.SearchSteps > max {
					t.Errorf("%v: %d search steps exceeds bound %d", alg, rep.SearchSteps, max)
				}
			}
			if alg == AlgSPA && rep.SPACompares == 0 && rep.AccumHits > 0 {
				t.Errorf("%v: SPA compares not counted", alg)
			}
			if rep.BytesZ == 0 && z.NNZ() > 0 {
				t.Errorf("%v: BytesZ not recorded", alg)
			}
		}
	}
}

// TestEq4BeatsEq3 checks the complexity claim behind Figure 4: on the same
// inputs, Sparta's index-search work (hash probes) is far below the
// baseline's linear-search work once Y has many distinct contract keys.
func TestEq4BeatsEq3(t *testing.T) {
	x := randomSparse([]uint64{40, 50, 60}, 2000, 33)
	y := randomSparse([]uint64{50, 60, 30}, 2000, 34)
	_, repSPA, err := Contract(x, y, []int{1, 2}, []int{0, 1}, Options{Algorithm: AlgSPA})
	if err != nil {
		t.Fatal(err)
	}
	_, repSparta, err := Contract(x, y, []int{1, 2}, []int{0, 1}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if repSparta.ProbesHtY*10 > repSPA.SearchSteps {
		t.Fatalf("hash probes %d not << linear steps %d", repSparta.ProbesHtY, repSPA.SearchSteps)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgSPA.String() != "COOY+SPA" || AlgCOOHtA.String() != "COOY+HtA" || AlgSparta.String() != "HtY+HtA" {
		t.Fatal("algorithm names drifted from the paper's")
	}
	if AlgTwoPhase.String() != "TwoPhase" || int(AlgTwoPhase) != 2 {
		t.Fatal("two-phase algorithm identity drifted")
	}
	if !strings.Contains(Algorithm(9).String(), "9") {
		t.Fatal("unknown algorithm should render its number")
	}
}

func TestStageString(t *testing.T) {
	want := []string{"Input Processing", "Index Search", "Accumulation", "Writeback", "Output Sorting"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("stage %d = %q", s, s.String())
		}
	}
	if !strings.Contains(Stage(9).String(), "9") {
		t.Fatal("unknown stage should render its number")
	}
}

func TestReportDerived(t *testing.T) {
	r := &Report{}
	r.StageWall[StageInput] = time.Second
	r.StageWall[StageSearch] = 2 * time.Second
	r.StageWall[StageAccum] = 3 * time.Second
	r.StageWall[StageWrite] = time.Second
	r.StageWall[StageSort] = time.Second
	if r.Total() != 8*time.Second {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.ComputeTime() != 6*time.Second {
		t.Fatalf("ComputeTime = %v", r.ComputeTime())
	}
	bd := r.Breakdown()
	if !strings.Contains(bd, "Index Search 25.0%") {
		t.Fatalf("Breakdown = %q", bd)
	}
	empty := &Report{}
	if !strings.Contains(empty.Breakdown(), "no time") {
		t.Fatal("empty breakdown should say so")
	}
	r.BytesX, r.BytesHtY = 10, 20
	if r.PeakBytes() != 30 {
		t.Fatalf("PeakBytes = %d", r.PeakBytes())
	}
}

func TestErrBadAlgorithm(t *testing.T) {
	err := errBadAlgorithm(7)
	if !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("error text %q", err.Error())
	}
}

// TestMaxSubStats verifies NF / nnz_Fmax bookkeeping on a crafted tensor:
// two sub-tensors over the free mode, the larger holding three non-zeros.
func TestMaxSubStats(t *testing.T) {
	x := coo.MustNew([]uint64{5, 4}, 0)
	x.Append([]uint32{0, 0}, 1)
	x.Append([]uint32{0, 1}, 1)
	x.Append([]uint32{0, 2}, 1)
	x.Append([]uint32{3, 1}, 1)
	y := randomSparse([]uint64{4, 9}, 20, 35)
	_, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NF != 2 {
		t.Fatalf("NF = %d, want 2", rep.NF)
	}
	if rep.MaxSubNNZX != 3 {
		t.Fatalf("MaxSubNNZX = %d, want 3", rep.MaxSubNNZX)
	}
	if rep.MaxSubNNZY == 0 || rep.DistinctKeysY == 0 || rep.BucketsHtY == 0 {
		t.Fatalf("Y-side stats missing: %+v", rep)
	}
}
