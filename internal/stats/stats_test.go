package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("A", "Blong")
	tab.Row("x", 1)
	tab.Row("yy", 2.5)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.Contains(lines[0], "Blong") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[3], "2.5") {
		t.Fatalf("row %q", lines[3])
	}
	// Columns align: "Blong" starts at the same offset in every line.
	off := strings.Index(lines[0], "Blong")
	if strings.Index(lines[2], "1") < off {
		t.Fatalf("misaligned: %q", lines[2])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("A")
	tab.Row("x", "extra", "more")
	var b strings.Builder
	tab.Render(&b) // must not panic
	if !strings.Contains(b.String(), "more") {
		t.Fatal("extra cells dropped")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.5s",
		1500 * time.Microsecond: "1.5ms",
		900 * time.Nanosecond:   "900ns",
		2 * time.Microsecond:    "2µs",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	if got := FormatFloat(1.5); got != "1.5" {
		t.Errorf("1.5 -> %q", got)
	}
	if got := FormatFloat(3.0); got != "3" {
		t.Errorf("3.0 -> %q", got)
	}
	if got := FormatFloat(1e-9); got != "1e-09" {
		t.Errorf("1e-9 -> %q", got)
	}
	if got := FormatFloat(0); got != "0" {
		t.Errorf("0 -> %q", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for b, want := range cases {
		if got := FormatBytes(b); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Fatalf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Fatal("zero denominator should be +Inf")
	}
}

func TestAggregates(t *testing.T) {
	vals := []float64{1, 2, 4}
	if m := Mean(vals); math.Abs(m-7.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if g := GeoMean(vals); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	lo, hi := MinMax(vals)
	if lo != 1 || hi != 4 {
		t.Fatalf("MinMax = %v %v", lo, hi)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive value should yield 0 geomean")
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax")
	}
}
