package stats

import (
	"strings"
	"testing"
)

func TestRenderHistogram(t *testing.T) {
	var b strings.Builder
	RenderHistogram(&b, "probe length", []float64{1, 2, 4}, []uint64{6, 3, 0, 1})
	out := b.String()
	for _, want := range []string{
		"probe length (n=10)",
		"<= 1", "<= 2", "<= 4", "> 4",
		"60.0", "30.0", "100.0",
		"##############################", // the max bucket gets a full bar
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderHistogramEmpty(t *testing.T) {
	var b strings.Builder
	RenderHistogram(&b, "empty", []float64{1, 2}, []uint64{0, 0, 0})
	if !strings.Contains(b.String(), "no observations") {
		t.Errorf("empty histogram rendered a table:\n%s", b.String())
	}
}
