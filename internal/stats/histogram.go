package stats

import (
	"fmt"
	"io"
	"strings"
)

// RenderHistogram writes a fixed-bucket histogram as a text table: one row
// per bucket with its count, share, cumulative share, and a proportional bar.
// bounds are inclusive upper limits; counts must have len(bounds)+1 entries
// (the last is the overflow bucket), matching the obs registry's snapshots.
// Empty histograms render as a single note instead of an all-zero table.
func RenderHistogram(w io.Writer, title string, bounds []float64, counts []uint64) {
	var total, max uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	fmt.Fprintf(w, "%s (n=%d)\n", title, total)
	if total == 0 {
		fmt.Fprintln(w, "  (no observations)")
		return
	}
	const barWidth = 30
	t := NewTable("bucket", "count", "%", "cum%", "")
	var cum uint64
	for i, c := range counts {
		label := "all"
		switch {
		case i < len(bounds):
			label = "<= " + FormatFloat(bounds[i])
		case len(bounds) > 0:
			label = "> " + FormatFloat(bounds[len(bounds)-1])
		}
		cum += c
		bar := strings.Repeat("#", int(uint64(barWidth)*c/max))
		t.Row(label, c,
			fmt.Sprintf("%5.1f", 100*float64(c)/float64(total)),
			fmt.Sprintf("%5.1f", 100*float64(cum)/float64(total)),
			bar)
	}
	t.Render(w)
}
