// Package stats renders the evaluation harness's tables: fixed-width text
// tables, percentage breakdowns, and speedup summaries matching the rows
// and series the paper's figures report.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	// Widths count runes, not bytes: cell text routinely carries multi-byte
	// characters (µs durations, the planner's × order expressions).
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > width[i] {
				width[i] = n
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	line := func(r []string) {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-utf8.RuneCountInString(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// FormatDuration renders a duration with three significant figures.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.3gµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// FormatFloat renders with three significant figures, switching to
// scientific notation for extreme magnitudes.
func FormatFloat(v float64) string {
	a := math.Abs(v)
	if a != 0 && (a < 1e-3 || a >= 1e6) {
		return fmt.Sprintf("%.3g", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Speedup returns base/v guarding against zero.
func Speedup(base, v time.Duration) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return float64(base) / float64(v)
}

// GeoMean returns the geometric mean of positive values (0 for none).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Mean returns the arithmetic mean (0 for none).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// MinMax returns the extremes of vals (0,0 for none).
func MinMax(vals []float64) (float64, float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
