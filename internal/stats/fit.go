package stats

import "sort"

// Median returns the middle value of vals (mean of the central pair for
// even counts, 0 for none). The input is not modified.
func Median(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
