// Package lnum implements the "large-number" (LN) representation from the
// Sparta paper (PPoPP'21, §3.3): a mixed-radix linearization that converts a
// multi-dimensional index tuple into a single uint64 so that hash-table key
// comparison is a single integer compare instead of a tuple compare.
//
// For a tuple (i0, i1, ..., ik) over mode sizes (d0, d1, ..., dk) the large
// number is (((i0*d1)+i1)*d2+i2)... — i.e. row-major linearization. The
// mapping is a bijection between the index box and [0, d0*d1*...*dk).
package lnum

import (
	"errors"
	"fmt"
	"math/bits"

	"sparta/internal/invariant"
)

// ErrOverflow is reported when the product of mode sizes does not fit in a
// uint64, which would make the LN representation ambiguous.
var ErrOverflow = errors.New("lnum: mode-size product overflows uint64")

// Radix is a precomputed mixed-radix encoder for a fixed tuple of mode sizes.
// The zero value is a valid encoder for the empty tuple (always encoding 0).
type Radix struct {
	dims    []uint64 // mode sizes
	strides []uint64 // strides[m] = product of dims[m+1:]
	card    uint64   // product of all dims (0 if any dim is 0 and len>0)
}

// NewRadix builds an encoder for the given mode sizes. It fails with
// ErrOverflow when the total cardinality exceeds uint64, and rejects
// zero-sized modes (a tensor mode always has size >= 1).
func NewRadix(dims []uint64) (*Radix, error) {
	r := &Radix{
		dims:    append([]uint64(nil), dims...),
		strides: make([]uint64, len(dims)),
		card:    1,
	}
	for m := len(dims) - 1; m >= 0; m-- {
		d := dims[m]
		if d == 0 {
			return nil, fmt.Errorf("lnum: mode %d has size 0", m)
		}
		r.strides[m] = r.card
		hi, lo := mul64(r.card, d)
		if hi != 0 {
			return nil, ErrOverflow
		}
		r.card = lo
	}
	return r, nil
}

// MustRadix is NewRadix that panics on error; for use with dims already
// validated by the caller.
func MustRadix(dims []uint64) *Radix {
	r, err := NewRadix(dims)
	if err != nil {
		panic(err)
	}
	return r
}

// Order returns the number of modes the encoder covers.
func (r *Radix) Order() int { return len(r.dims) }

// Card returns the total cardinality (product of mode sizes).
func (r *Radix) Card() uint64 { return r.card }

// Dims returns the mode sizes (shared slice; do not mutate).
func (r *Radix) Dims() []uint64 { return r.dims }

// Encode linearizes idx. idx must have exactly Order() entries, each within
// its mode size; violations panic (they indicate a caller bug, not input
// error — inputs are validated at tensor construction).
func (r *Radix) Encode(idx []uint32) uint64 {
	if len(idx) != len(r.dims) {
		panic(fmt.Sprintf("lnum: Encode arity %d, want %d", len(idx), len(r.dims)))
	}
	var ln uint64
	for m, v := range idx {
		if uint64(v) >= r.dims[m] {
			panic(fmt.Sprintf("lnum: index %d out of range for mode %d (size %d)", v, m, r.dims[m]))
		}
		// Cannot wrap: each step keeps ln < strides[m-1] <= card, and
		// NewRadix proved card fits in a uint64 with a 128-bit multiply.
		//lint:ignore lnoverflow ln stays below Card, whose uint64 fit NewRadix checked with bits.Mul64
		ln = ln*r.dims[m] + uint64(v)
	}
	return ln
}

// EncodeStrided linearizes a subset of the columns of a mode-major index
// store: idx[k][at] supplies the k-th tuple element. This avoids gathering a
// temporary tuple in hot loops; unlike Encode it performs no per-element
// range check (inputs are validated at tensor construction), so the
// in-range invariant is asserted only under -tags assert.
func (r *Radix) EncodeStrided(idx [][]uint32, at int) uint64 {
	var ln uint64
	for m := range r.dims {
		if invariant.Enabled {
			invariant.Assertf(uint64(idx[m][at]) < r.dims[m],
				"lnum: index %d out of range for mode %d (size %d); encode would wrap past Card",
				idx[m][at], m, r.dims[m])
		}
		//lint:ignore lnoverflow ln stays below Card, whose uint64 fit NewRadix checked with bits.Mul64
		ln = ln*r.dims[m] + uint64(idx[m][at])
	}
	return ln
}

// Decode inverts Encode into dst, which must have Order() entries.
func (r *Radix) Decode(ln uint64, dst []uint32) {
	if len(dst) != len(r.dims) {
		panic(fmt.Sprintf("lnum: Decode arity %d, want %d", len(dst), len(r.dims)))
	}
	for m := len(r.dims) - 1; m >= 0; m-- {
		d := r.dims[m]
		dst[m] = uint32(ln % d)
		ln /= d
	}
}

// At extracts the m-th tuple element of an encoded value without decoding
// the whole tuple.
func (r *Radix) At(ln uint64, m int) uint32 {
	return uint32(ln / r.strides[m] % r.dims[m])
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }
