package lnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRadixRejectsZeroMode(t *testing.T) {
	if _, err := NewRadix([]uint64{3, 0, 2}); err == nil {
		t.Fatal("expected error for zero-sized mode")
	}
}

func TestNewRadixOverflow(t *testing.T) {
	if _, err := NewRadix([]uint64{math.MaxUint64, 2}); err != ErrOverflow {
		t.Fatalf("expected ErrOverflow, got %v", err)
	}
	// Exactly 2^64 overflows; 2^63 does not.
	if _, err := NewRadix([]uint64{1 << 32, 1 << 32}); err != ErrOverflow {
		t.Fatalf("expected ErrOverflow for 2^64 card, got %v", err)
	}
	r, err := NewRadix([]uint64{1 << 31, 1 << 32})
	if err != nil {
		t.Fatalf("2^63 card should fit: %v", err)
	}
	if r.Card() != 1<<63 {
		t.Fatalf("card = %d, want 2^63", r.Card())
	}
}

func TestEmptyRadix(t *testing.T) {
	r, err := NewRadix(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Card() != 1 || r.Order() != 0 {
		t.Fatalf("empty radix: card=%d order=%d", r.Card(), r.Order())
	}
	if got := r.Encode(nil); got != 0 {
		t.Fatalf("empty Encode = %d, want 0", got)
	}
	r.Decode(0, nil) // must not panic
}

func TestEncodeDecodeExhaustiveSmall(t *testing.T) {
	r := MustRadix([]uint64{3, 4, 5})
	if r.Card() != 60 {
		t.Fatalf("card = %d, want 60", r.Card())
	}
	seen := make(map[uint64]bool)
	idx := make([]uint32, 3)
	dec := make([]uint32, 3)
	for i := uint32(0); i < 3; i++ {
		for j := uint32(0); j < 4; j++ {
			for k := uint32(0); k < 5; k++ {
				idx[0], idx[1], idx[2] = i, j, k
				ln := r.Encode(idx)
				if ln >= 60 {
					t.Fatalf("Encode(%v) = %d out of range", idx, ln)
				}
				if seen[ln] {
					t.Fatalf("Encode(%v) = %d not unique", idx, ln)
				}
				seen[ln] = true
				r.Decode(ln, dec)
				if dec[0] != i || dec[1] != j || dec[2] != k {
					t.Fatalf("Decode(%d) = %v, want %v", ln, dec, idx)
				}
				for m := 0; m < 3; m++ {
					if r.At(ln, m) != idx[m] {
						t.Fatalf("At(%d, %d) = %d, want %d", ln, m, r.At(ln, m), idx[m])
					}
				}
			}
		}
	}
}

func TestEncodeOrderSensitivity(t *testing.T) {
	// (1,2) over dims (3,4) is 1*4+2=6; over dims (4,3) it is 1*3+2=5.
	a := MustRadix([]uint64{3, 4})
	b := MustRadix([]uint64{4, 3})
	if a.Encode([]uint32{1, 2}) != 6 {
		t.Fatal("row-major encode broken")
	}
	if b.Encode([]uint32{1, 2}) != 5 {
		t.Fatal("row-major encode broken for swapped dims")
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	r := MustRadix([]uint64{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	r.Encode([]uint32{2, 0})
}

func TestEncodePanicsArity(t *testing.T) {
	r := MustRadix([]uint64{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	r.Encode([]uint32{1})
}

func TestEncodeStridedMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []uint64{7, 13, 5, 11}
	r := MustRadix(dims)
	const n = 200
	cols := make([][]uint32, len(dims))
	for m := range cols {
		cols[m] = make([]uint32, n)
		for i := range cols[m] {
			cols[m][i] = uint32(rng.Intn(int(dims[m])))
		}
	}
	idx := make([]uint32, len(dims))
	for i := 0; i < n; i++ {
		for m := range dims {
			idx[m] = cols[m][i]
		}
		if got, want := r.EncodeStrided(cols, i), r.Encode(idx); got != want {
			t.Fatalf("EncodeStrided at %d = %d, want %d", i, got, want)
		}
	}
}

// Property: Decode is a left inverse of Encode for arbitrary dims/indices.
func TestQuickRoundTrip(t *testing.T) {
	f := func(rawDims [4]uint16, rawIdx [4]uint32) bool {
		dims := make([]uint64, 4)
		idx := make([]uint32, 4)
		for m := range dims {
			dims[m] = uint64(rawDims[m]%500) + 1
			idx[m] = rawIdx[m] % uint32(dims[m])
		}
		r, err := NewRadix(dims)
		if err != nil {
			return false
		}
		ln := r.Encode(idx)
		dec := make([]uint32, 4)
		r.Decode(ln, dec)
		for m := range idx {
			if dec[m] != idx[m] {
				return false
			}
		}
		return ln < r.Card()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode is strictly monotone in lexicographic index order.
func TestQuickMonotone(t *testing.T) {
	dims := []uint64{9, 7, 8}
	r := MustRadix(dims)
	f := func(a0, a1, a2, b0, b1, b2 uint32) bool {
		a := []uint32{a0 % 9, a1 % 7, a2 % 8}
		b := []uint32{b0 % 9, b1 % 7, b2 % 8}
		cmp := 0
		for m := range a {
			if a[m] != b[m] {
				if a[m] < b[m] {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		la, lb := r.Encode(a), r.Encode(b)
		switch cmp {
		case -1:
			return la < lb
		case 1:
			return la > lb
		default:
			return la == lb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
