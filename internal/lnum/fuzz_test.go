package lnum

import (
	"math"
	"math/big"
	"testing"
)

// TestNewRadixBoundaryFit pins the exact uint64 boundary: 2^32 * (2^32-1)
// fits (card 2^64 - 2^32), one more row overflows. The largest encodable
// tuple must round-trip right at the edge.
func TestNewRadixBoundaryFit(t *testing.T) {
	r, err := NewRadix([]uint64{1 << 32, (1 << 32) - 1})
	if err != nil {
		t.Fatalf("2^64-2^32 card should fit: %v", err)
	}
	if want := uint64(1<<32) * ((1 << 32) - 1); r.Card() != want {
		t.Fatalf("card = %d, want %d", r.Card(), want)
	}
	top := []uint32{math.MaxUint32, math.MaxUint32 - 1} // largest valid tuple
	ln := r.Encode(top)
	if ln != r.Card()-1 {
		t.Fatalf("Encode(max tuple) = %d, want card-1 = %d", ln, r.Card()-1)
	}
	dec := make([]uint32, 2)
	r.Decode(ln, dec)
	if dec[0] != top[0] || dec[1] != top[1] {
		t.Fatalf("Decode(card-1) = %v, want %v", dec, top)
	}
	// The single-mode degenerate case: a full 2^64-1 cardinality still fits.
	r1, err := NewRadix([]uint64{math.MaxUint64})
	if err != nil {
		t.Fatalf("single mode of size 2^64-1 should fit: %v", err)
	}
	if r1.Card() != math.MaxUint64 {
		t.Fatalf("card = %d", r1.Card())
	}
}

// FuzzLNRoundTrip cross-checks NewRadix's overflow verdict against a
// math/big oracle, then round-trips Encode/Decode/At/EncodeStrided for
// in-range tuples. Seed corpus sits right on the 2^64 boundary.
func FuzzLNRoundTrip(f *testing.F) {
	f.Add(uint64(3), uint64(4), uint64(5), uint32(2), uint32(3), uint32(4))
	f.Add(uint64(1)<<32, uint64(1)<<32, uint64(1), uint32(0), uint32(0), uint32(0))      // exactly 2^64: overflow
	f.Add(uint64(1)<<32, uint64(1<<32)-1, uint64(1), uint32(1<<31), uint32(7), uint32(0)) // 2^64-2^32: fits
	f.Add(uint64(math.MaxUint64), uint64(1), uint64(1), uint32(9), uint32(0), uint32(0))
	f.Add(uint64(1), uint64(0), uint64(3), uint32(0), uint32(0), uint32(0)) // zero mode: rejected
	f.Fuzz(func(t *testing.T, d0, d1, d2 uint64, i0, i1, i2 uint32) {
		dims := []uint64{d0, d1, d2}
		r, err := NewRadix(dims)

		// Oracle: the product over math/big decides whether the encoder
		// should exist.
		zero := false
		prod := big.NewInt(1)
		for _, d := range dims {
			if d == 0 {
				zero = true
			}
			prod.Mul(prod, new(big.Int).SetUint64(d))
		}
		fits := !zero && prod.Cmp(new(big.Int).Lsh(big.NewInt(1), 64)) < 0
		if (err == nil) != fits {
			t.Fatalf("NewRadix(%v) err=%v, but big.Int product %v (zero=%v)", dims, err, prod, zero)
		}
		if err != nil {
			return
		}
		if r.Card() != prod.Uint64() {
			t.Fatalf("Card() = %d, oracle %v", r.Card(), prod)
		}

		idx := []uint32{
			uint32(uint64(i0) % d0),
			uint32(uint64(i1) % d1),
			uint32(uint64(i2) % d2),
		}
		ln := r.Encode(idx)
		if ln >= r.Card() {
			t.Fatalf("Encode(%v) = %d >= card %d", idx, ln, r.Card())
		}
		dec := make([]uint32, 3)
		r.Decode(ln, dec)
		for m := range idx {
			if dec[m] != idx[m] {
				t.Fatalf("Decode(Encode(%v)) = %v", idx, dec)
			}
			if got := r.At(ln, m); got != idx[m] {
				t.Fatalf("At(%d, %d) = %d, want %d", ln, m, got, idx[m])
			}
		}
		cols := [][]uint32{{idx[0]}, {idx[1]}, {idx[2]}}
		if got := r.EncodeStrided(cols, 0); got != ln {
			t.Fatalf("EncodeStrided = %d, Encode = %d", got, ln)
		}
	})
}
