// Package einsum parses the Einstein-summation specs the facade and the
// serving engine accept ("abef,efcd->abcd"). Parsing lives below the root
// package so that internal/engine — which resolves specs against its plan
// cache — can share one grammar with sparta.Einsum.
package einsum

import (
	"fmt"
	"strings"
)

// Plan is the parsed form of an einsum spec.
type Plan struct {
	X, Y, Out []rune // per-operand mode labels

	// CmodesX[k] of X is contracted against CmodesY[k] of Y.
	CmodesX, CmodesY []int

	// OutPerm permutes Z from the engine's natural order (X free modes
	// then Y free modes) into the spec's right-hand-side order.
	OutPerm []int
	// IdentityOut is true when no output permutation is needed.
	IdentityOut bool
}

// Parse validates a spec. Rules: exactly two inputs and one output; every
// label names one mode (one letter per mode, case-sensitive); a label shared
// by both inputs and absent from the output is contracted; every other input
// label must appear in the output exactly once. Repeated labels within one
// operand (traces) and batched modes are not supported.
func Parse(spec string) (*Plan, error) {
	clean := strings.ReplaceAll(spec, " ", "")
	parts := strings.Split(clean, "->")
	if len(parts) != 2 {
		return nil, fmt.Errorf("einsum: spec %q needs exactly one '->'", clean)
	}
	ins := strings.Split(parts[0], ",")
	if len(ins) != 2 {
		return nil, fmt.Errorf("einsum: spec %q needs exactly two inputs", clean)
	}
	p := &Plan{X: []rune(ins[0]), Y: []rune(ins[1]), Out: []rune(parts[1])}
	if len(p.X) == 0 || len(p.Y) == 0 {
		return nil, fmt.Errorf("einsum: empty operand in %q", clean)
	}
	for _, set := range [][]rune{p.X, p.Y, p.Out} {
		seen := map[rune]bool{}
		for _, r := range set {
			if !isLabel(r) {
				return nil, fmt.Errorf("einsum: invalid label %q in %q", r, clean)
			}
			if seen[r] {
				return nil, fmt.Errorf("einsum: repeated label %q within one operand of %q (traces unsupported)", r, clean)
			}
			seen[r] = true
		}
	}
	posX := map[rune]int{}
	for i, r := range p.X {
		posX[r] = i
	}
	posY := map[rune]int{}
	for i, r := range p.Y {
		posY[r] = i
	}
	outSet := map[rune]bool{}
	for _, r := range p.Out {
		outSet[r] = true
	}

	// Contracted labels: in both inputs, not in the output.
	for _, r := range p.X {
		yi, shared := posY[r]
		switch {
		case shared && !outSet[r]:
			p.CmodesX = append(p.CmodesX, posX[r])
			p.CmodesY = append(p.CmodesY, yi)
		case shared && outSet[r]:
			return nil, fmt.Errorf("einsum: label %q is shared by both inputs and kept in the output (batched modes unsupported)", r)
		case !shared && !outSet[r]:
			return nil, fmt.Errorf("einsum: label %q of X appears in neither Y nor the output", r)
		}
	}
	if len(p.CmodesX) == 0 {
		return nil, fmt.Errorf("einsum: %q contracts no modes", clean)
	}
	for _, r := range p.Y {
		if _, shared := posX[r]; !shared && !outSet[r] {
			return nil, fmt.Errorf("einsum: label %q of Y appears in neither X nor the output", r)
		}
	}

	// Natural output order: X free labels (original order) then Y free.
	var natural []rune
	for _, r := range p.X {
		if outSet[r] {
			natural = append(natural, r)
		}
	}
	for _, r := range p.Y {
		if outSet[r] {
			natural = append(natural, r)
		}
	}
	if len(natural) != len(p.Out) {
		return nil, fmt.Errorf("einsum: output %q does not cover the free labels %q", string(p.Out), string(natural))
	}
	natPos := map[rune]int{}
	for i, r := range natural {
		natPos[r] = i
	}
	p.IdentityOut = true
	p.OutPerm = make([]int, len(p.Out))
	for i, r := range p.Out {
		j, ok := natPos[r]
		if !ok {
			return nil, fmt.Errorf("einsum: output label %q is not a free label", r)
		}
		p.OutPerm[i] = j
		if i != j {
			p.IdentityOut = false
		}
	}
	if len(p.Out) == 0 {
		// Scalar result: Z is the 1-mode size-1 tensor; nothing to permute.
		p.IdentityOut = true
	}
	return p, nil
}

// CheckRanks verifies the spec's operand arities against concrete tensors.
func (p *Plan) CheckRanks(spec string, orderX, orderY int) error {
	if len(p.X) != orderX {
		return fmt.Errorf("einsum: spec %q gives X %d modes, tensor has %d", spec, len(p.X), orderX)
	}
	if len(p.Y) != orderY {
		return fmt.Errorf("einsum: spec %q gives Y %d modes, tensor has %d", spec, len(p.Y), orderY)
	}
	return nil
}

func isLabel(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}
