package einsum

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		spec             string
		cmodesX, cmodesY []int
		outPerm          []int
		identity         bool
	}{
		{"abef,efcd->abcd", []int{2, 3}, []int{0, 1}, []int{0, 1, 2, 3}, true},
		{"ab,bc->ac", []int{1}, []int{0}, []int{0, 1}, true},
		{"ab,bc->ca", []int{1}, []int{0}, []int{1, 0}, false},
		{"abcd,abcd->", []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, []int{}, true},
		{"ij, jk -> ik", []int{1}, []int{0}, []int{0, 1}, true}, // spaces stripped
		{"aXb,Xc->abc", []int{1}, []int{0}, []int{0, 1, 2}, true},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(p.CmodesX, c.cmodesX) || !reflect.DeepEqual(p.CmodesY, c.cmodesY) {
			t.Errorf("Parse(%q): cmodes (%v, %v), want (%v, %v)",
				c.spec, p.CmodesX, p.CmodesY, c.cmodesX, c.cmodesY)
		}
		if p.IdentityOut != c.identity {
			t.Errorf("Parse(%q): IdentityOut = %v, want %v", c.spec, p.IdentityOut, c.identity)
		}
		if !c.identity && !reflect.DeepEqual(p.OutPerm, c.outPerm) {
			t.Errorf("Parse(%q): OutPerm = %v, want %v", c.spec, p.OutPerm, c.outPerm)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantSub string
	}{
		{"no arrow", "ab,bc", "exactly one '->'"},
		{"two arrows", "ab->bc->ac", "exactly one '->'"},
		{"one input", "abc->abc", "exactly two inputs"},
		{"three inputs", "ab,bc,cd->ad", "exactly two inputs"},
		{"empty X", ",bc->c", "empty operand"},
		{"empty Y", "ab,->ab", "empty operand"},
		{"duplicate label in X", "aab,bc->ac", "repeated label"},
		{"duplicate label in Y", "ab,bbc->ac", "repeated label"},
		{"duplicate label in out", "ab,bc->aac", "repeated label"},
		{"invalid label digit", "a1,1c->ac", "invalid label"},
		{"invalid label symbol", "a_,_c->ac", "invalid label"},
		{"batched shared label", "ab,bc->abc", "batched modes unsupported"},
		{"dangling X label", "ab,cd->ad", "appears in neither"},
		{"dangling Y label", "ab,bc->a", "appears in neither"},
		{"no contraction", "ab,cd->abcd", "contracts no modes"},
		{"out longer than free labels", "ab,bc->acx", "does not cover"},
		{"out misses a free label", "ab,bc->a", "appears in neither"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.spec)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.spec, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Parse(%q) error %q does not contain %q", c.spec, err, c.wantSub)
			}
		})
	}
}

func TestCheckRanks(t *testing.T) {
	p, err := Parse("abc,cd->abd")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckRanks("abc,cd->abd", 3, 2); err != nil {
		t.Errorf("matching ranks rejected: %v", err)
	}
	if err := p.CheckRanks("abc,cd->abd", 2, 2); err == nil ||
		!strings.Contains(err.Error(), "gives X 3 modes, tensor has 2") {
		t.Errorf("X rank mismatch: %v", err)
	}
	if err := p.CheckRanks("abc,cd->abd", 3, 4); err == nil ||
		!strings.Contains(err.Error(), "gives Y 2 modes, tensor has 4") {
		t.Errorf("Y rank mismatch: %v", err)
	}
}
