package blocksparse

import (
	"context"
	"fmt"
	"sync"

	"sparta/internal/dense"
	"sparta/internal/lnum"
	"sparta/internal/parallel"
)

// Contract computes Z = X ×_{cmodesX}^{cmodesY} Y in the block-sparse way
// (§5.3's ITensor baseline): for every pair of blocks whose contract-mode
// sectors match, matricize both blocks and GEMM them into the output block
// addressed by the free sectors. Output modes are X's free modes followed
// by Y's free modes, matching core.Contract's convention.
func Contract(x, y *Tensor, cmodesX, cmodesY []int, threads int) (*Tensor, error) {
	return ContractCtx(context.Background(), x, y, cmodesX, cmodesY, threads)
}

// ContractCtx is Contract with cooperative cancellation: the block-pair GEMM
// loop checkpoints ctx between chunk claims and returns ctx.Err() (discarding
// the partial output) once the context is done.
func ContractCtx(ctx context.Context, x, y *Tensor, cmodesX, cmodesY []int, threads int) (*Tensor, error) {
	if len(cmodesX) != len(cmodesY) {
		return nil, fmt.Errorf("blocksparse: contract mode count mismatch")
	}
	inX := make([]bool, x.Order())
	for _, m := range cmodesX {
		if m < 0 || m >= x.Order() || inX[m] {
			return nil, fmt.Errorf("blocksparse: bad X contract mode %d", m)
		}
		inX[m] = true
	}
	inY := make([]bool, y.Order())
	for _, m := range cmodesY {
		if m < 0 || m >= y.Order() || inY[m] {
			return nil, fmt.Errorf("blocksparse: bad Y contract mode %d", m)
		}
		inY[m] = true
	}
	// Sector partitions of paired contract modes must be identical — the
	// block structures must agree for block-pair matching to be exact.
	for k := range cmodesX {
		px, py := x.Parts[cmodesX[k]], y.Parts[cmodesY[k]]
		if len(px) != len(py) {
			return nil, fmt.Errorf("blocksparse: contract pair %d sector count mismatch", k)
		}
		for s := range px {
			if px[s] != py[s] {
				return nil, fmt.Errorf("blocksparse: contract pair %d sector %d size mismatch", k, s)
			}
		}
	}
	var fmodesX, fmodesY []int
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			fmodesX = append(fmodesX, m)
		}
	}
	for m := 0; m < y.Order(); m++ {
		if !inY[m] {
			fmodesY = append(fmodesY, m)
		}
	}
	zparts := make([][]uint64, 0, len(fmodesX)+len(fmodesY))
	for _, m := range fmodesX {
		zparts = append(zparts, x.Parts[m])
	}
	for _, m := range fmodesY {
		zparts = append(zparts, y.Parts[m])
	}
	scalar := len(zparts) == 0
	if scalar {
		zparts = [][]uint64{{1}}
	}
	z, err := New(zparts)
	if err != nil {
		return nil, err
	}

	// Pre-matricize once per block: X blocks as (freeX × contract) "A"
	// matrices, Y blocks as (contract × freeY) "B" matrices.
	csecRad, err := contractSectorRadix(x, cmodesX)
	if err != nil {
		return nil, err
	}
	amats := matricizeAll(x, fmodesX, cmodesX, threads)
	bmats := matricizeAll(y, cmodesY, fmodesY, threads)

	// Index Y blocks by their contract-sector key.
	ybyC := make(map[uint64][]*bmat)
	for _, b := range bmats {
		key := encodeSectors(csecRad, b.blk.Sec, cmodesY)
		ybyC[key] = append(ybyC[key], b)
	}

	// Group X blocks by their free-sector tuple: each group writes a
	// disjoint set of Z blocks, so groups parallelize without locking Z
	// block payloads (the Z map itself is guarded once per new block).
	groups := make(map[uint64][]*bmat)
	var gkeys []uint64
	for _, a := range amats {
		key := encodeSectors(z.secRad, a.blk.Sec, fmodesX) // freeX part only; freeY bits are 0
		if _, ok := groups[key]; !ok {
			gkeys = append(gkeys, key)
		}
		groups[key] = append(groups[key], a)
	}

	var zmu sync.Mutex
	getZ := func(sec []uint32) *Block {
		zmu.Lock()
		defer zmu.Unlock()
		key := z.secRad.Encode(sec)
		blk := z.blocks[key]
		if blk == nil {
			blk = &Block{Sec: append([]uint32(nil), sec...), Data: make([]float64, z.blockLen(sec))}
			z.blocks[key] = blk
			z.ordered = nil
		}
		return blk
	}

	cerr := parallel.ForChunkedCtx(ctx, threads, len(gkeys), 1, func(_, lo, hi int) {
		zsec := make([]uint32, z.Order())
		for g := lo; g < hi; g++ {
			for _, a := range groups[gkeys[g]] {
				ckey := encodeSectors(csecRad, a.blk.Sec, cmodesX)
				for _, b := range ybyC[ckey] {
					if a.inner != b.outer {
						panic("blocksparse: inner dimension mismatch")
					}
					if !scalar {
						for k, m := range fmodesX {
							zsec[k] = a.blk.Sec[m]
						}
						for k, m := range fmodesY {
							zsec[len(fmodesX)+k] = b.blk.Sec[m]
						}
					} else {
						zsec[0] = 0
					}
					cblk := getZ(zsec)
					dense.Gemm(a.outer, a.inner, b.inner, a.data, b.data, cblk.Data)
				}
			}
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	return z, nil
}

// bmat is a matricized block: data laid out as outer × inner row-major.
type bmat struct {
	blk          *Block
	data         []float64
	outer, inner int
}

// matricizeAll permutes each block of t to (rowModes..., colModes...) order
// and flattens it to a rows × cols matrix.
func matricizeAll(t *Tensor, rowModes, colModes []int, threads int) []*bmat {
	blocks := t.Blocks()
	out := make([]*bmat, len(blocks))
	perm := append(append([]int{}, rowModes...), colModes...)
	parallel.For(threads, len(blocks), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b := blocks[i]
			ext := make([]uint64, t.Order())
			for m, s := range b.Sec {
				ext[m] = t.Parts[m][s]
			}
			rows, cols := 1, 1
			for _, m := range rowModes {
				rows *= int(ext[m])
			}
			for _, m := range colModes {
				cols *= int(ext[m])
			}
			out[i] = &bmat{
				blk:   b,
				data:  permuteDense(b.Data, ext, perm),
				outer: rows,
				inner: cols,
			}
		}
	})
	return out
}

// permuteDense returns a copy of row-major data with modes reordered so new
// mode k is old mode perm[k]. Identity permutations share the input slice.
func permuteDense(data []float64, ext []uint64, perm []int) []float64 {
	identity := true
	for k, m := range perm {
		if k != m {
			identity = false
			break
		}
	}
	if identity {
		return data
	}
	srcRad := lnum.MustRadix(ext)
	next := make([]uint64, len(perm))
	for k, m := range perm {
		next[k] = ext[m]
	}
	dstRad := lnum.MustRadix(next)
	out := make([]float64, len(data))
	src := make([]uint32, len(ext))
	dst := make([]uint32, len(ext))
	for ln := range data {
		srcRad.Decode(uint64(ln), src)
		for k, m := range perm {
			dst[k] = src[m]
		}
		out[dstRad.Encode(dst)] = data[ln]
	}
	return out
}

// contractSectorRadix builds a radix over the sector counts of the contract
// modes (validated identical between X and Y by Contract).
func contractSectorRadix(x *Tensor, cmodesX []int) (*lnum.Radix, error) {
	dims := make([]uint64, len(cmodesX))
	for k, m := range cmodesX {
		dims[k] = uint64(len(x.Parts[m]))
	}
	if len(dims) == 0 {
		dims = []uint64{1}
	}
	return lnum.NewRadix(dims)
}

// encodeSectors linearizes the sector ids of the listed modes. When rad has
// more positions than modes (the Z free-key case), missing positions encode
// as 0.
func encodeSectors(rad *lnum.Radix, sec []uint32, modes []int) uint64 {
	var ln uint64
	for k := 0; k < rad.Order(); k++ {
		var v uint32
		if k < len(modes) {
			v = sec[modes[k]]
		}
		//lint:ignore lnoverflow ln stays below rad.Card(), whose uint64 fit NewRadix checked at construction
		ln = ln*rad.Dims()[k] + uint64(v)
	}
	return ln
}
