package blocksparse

import (
	"math"
	"math/rand"
	"testing"

	"sparta/internal/dense"
)

// randomBlockTensor fills a fraction of the sector tuples with random dense
// blocks.
func randomBlockTensor(t *testing.T, parts [][]uint64, nblocks int, seed int64) *Tensor {
	t.Helper()
	bt, err := New(parts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	secCount := make([]int, len(parts))
	possible := 1
	for m := range parts {
		secCount[m] = len(parts[m])
		possible *= secCount[m]
	}
	if nblocks > possible {
		nblocks = possible
	}
	tried := map[uint64]bool{}
	sec := make([]uint32, len(parts))
	for placed := 0; placed < nblocks; {
		key := uint64(0)
		for m := range sec {
			sec[m] = uint32(rng.Intn(secCount[m]))
			key = key*uint64(secCount[m]) + uint64(sec[m])
		}
		if tried[key] {
			continue
		}
		tried[key] = true
		data := make([]float64, bt.BlockElems(sec))
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		if err := bt.SetBlock(sec, data); err != nil {
			t.Fatal(err)
		}
		placed++
	}
	return bt
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("no modes accepted")
	}
	if _, err := New([][]uint64{{}}); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := New([][]uint64{{2, 0}}); err == nil {
		t.Error("zero sector accepted")
	}
}

func TestSetGetBlock(t *testing.T) {
	bt, _ := New([][]uint64{{2, 3}, {4}})
	if err := bt.SetBlock([]uint32{1, 0}, make([]float64, 12)); err != nil {
		t.Fatal(err)
	}
	if err := bt.SetBlock([]uint32{1, 0}, make([]float64, 5)); err == nil {
		t.Error("wrong data length accepted")
	}
	if err := bt.SetBlock([]uint32{2, 0}, make([]float64, 8)); err == nil {
		t.Error("sector out of range accepted")
	}
	if err := bt.SetBlock([]uint32{1}, nil); err == nil {
		t.Error("wrong arity accepted")
	}
	if bt.GetBlock([]uint32{1, 0}) == nil {
		t.Error("stored block not found")
	}
	if bt.GetBlock([]uint32{0, 0}) != nil {
		t.Error("phantom block")
	}
	if bt.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d", bt.NumBlocks())
	}
}

func TestDimsAndElems(t *testing.T) {
	bt, _ := New([][]uint64{{2, 3}, {4, 1}})
	d := bt.Dims()
	if d[0] != 5 || d[1] != 5 {
		t.Fatalf("dims = %v", d)
	}
	if got := bt.BlockElems([]uint32{1, 0}); got != 12 {
		t.Fatalf("BlockElems = %d", got)
	}
	bd := bt.BlockDims([]uint32{0, 1})
	if bd[0] != 2 || bd[1] != 1 {
		t.Fatalf("BlockDims = %v", bd)
	}
}

func TestToCOOAndNNZ(t *testing.T) {
	bt, _ := New([][]uint64{{2, 2}, {3}})
	data := []float64{1, 0, 2, 1e-10, -3, 0}
	if err := bt.SetBlock([]uint32{1, 0}, data); err != nil {
		t.Fatal(err)
	}
	if got := bt.NNZ(1e-8); got != 3 {
		t.Fatalf("NNZ = %d", got)
	}
	s := bt.ToCOO(1e-8)
	if s.NNZ() != 3 {
		t.Fatalf("COO nnz = %d", s.NNZ())
	}
	// Block (1,0) covers rows 2-3, cols 0-2: check global offsets.
	d, err := dense.FromCOO(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.At([]uint32{2, 0}) != 1 || d.At([]uint32{2, 2}) != 2 || d.At([]uint32{3, 1}) != -3 {
		t.Fatal("global coordinates wrong")
	}
}

// toDense materializes the block tensor for reference comparison.
func toDense(t *testing.T, bt *Tensor) *dense.Tensor {
	t.Helper()
	d, err := dense.FromCOO(bt.ToCOO(0), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestContractMatchesDense(t *testing.T) {
	cases := []struct {
		partsX, partsY [][]uint64
		cmX, cmY       []int
	}{
		{ // matrix multiply with ragged sectors
			[][]uint64{{2, 3}, {1, 2, 2}},
			[][]uint64{{1, 2, 2}, {4}},
			[]int{1}, []int{0},
		},
		{ // order-3 × order-3 over two modes
			[][]uint64{{2, 2}, {3, 1}, {2}},
			[][]uint64{{3, 1}, {2}, {2, 3}},
			[]int{1, 2}, []int{0, 1},
		},
		{ // non-adjacent, scrambled pairing
			[][]uint64{{2}, {2, 2}, {3}},
			[][]uint64{{3}, {2}, {2, 2}},
			[]int{2, 1}, []int{0, 2},
		},
	}
	for ci, c := range cases {
		x := randomBlockTensor(t, c.partsX, 3, int64(ci*2+1))
		y := randomBlockTensor(t, c.partsY, 3, int64(ci*2+2))
		for _, threads := range []int{1, 3} {
			z, err := Contract(x, y, c.cmX, c.cmY, threads)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			want, err := dense.Contract(toDense(t, x), toDense(t, y), c.cmX, c.cmY, 1<<24)
			if err != nil {
				t.Fatal(err)
			}
			got := toDense(t, z)
			diff, err := dense.MaxAbsDiff(got, want)
			if err != nil {
				t.Fatalf("case %d: shape mismatch: %v vs %v", ci, got.Dims, want.Dims)
			}
			if diff > 1e-9 {
				t.Fatalf("case %d threads=%d: max diff %v", ci, threads, diff)
			}
		}
	}
}

func TestContractScalar(t *testing.T) {
	parts := [][]uint64{{2, 2}, {3}}
	x := randomBlockTensor(t, parts, 4, 5)
	y := randomBlockTensor(t, parts, 4, 6)
	z, err := Contract(x, y, []int{0, 1}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, b := range z.Blocks() {
		for _, v := range b.Data {
			got += v
		}
	}
	dx, dy := toDense(t, x), toDense(t, y)
	var want float64
	for i := range dx.Data {
		want += dx.Data[i] * dy.Data[i]
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("scalar contraction %v, want %v", got, want)
	}
}

func TestContractSectorMismatch(t *testing.T) {
	x, _ := New([][]uint64{{2, 3}})
	y, _ := New([][]uint64{{3, 2}})
	if _, err := Contract(x, y, []int{0}, []int{0}, 1); err == nil {
		t.Fatal("sector mismatch accepted")
	}
	y2, _ := New([][]uint64{{2, 3, 1}})
	// total dim differs -> also sector count mismatch
	if _, err := Contract(x, y2, []int{0}, []int{0}, 1); err == nil {
		t.Fatal("sector count mismatch accepted")
	}
}

func TestContractModeValidation(t *testing.T) {
	x, _ := New([][]uint64{{2}, {2}})
	y, _ := New([][]uint64{{2}, {2}})
	for _, c := range []struct{ cmX, cmY []int }{
		{[]int{0}, []int{0, 1}},
		{[]int{2}, []int{0}},
		{[]int{0, 0}, []int{0, 1}},
	} {
		if _, err := Contract(x, y, c.cmX, c.cmY, 1); err == nil {
			t.Errorf("cmX=%v cmY=%v accepted", c.cmX, c.cmY)
		}
	}
}

func TestPermuteDense(t *testing.T) {
	// 2x3 row-major [[1,2,3],[4,5,6]] transposed -> 3x2.
	data := []float64{1, 2, 3, 4, 5, 6}
	out := permuteDense(data, []uint64{2, 3}, []int{1, 0})
	want := []float64{1, 4, 2, 5, 3, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("transpose = %v", out)
		}
	}
	// Identity shares storage.
	id := permuteDense(data, []uint64{2, 3}, []int{0, 1})
	if &id[0] != &data[0] {
		t.Fatal("identity permutation copied")
	}
}

func TestBlocksDeterministicOrder(t *testing.T) {
	bt := randomBlockTensor(t, [][]uint64{{2, 2, 2}, {2, 2}}, 5, 9)
	a := bt.Blocks()
	b := bt.Blocks()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Blocks() order unstable")
		}
	}
}
