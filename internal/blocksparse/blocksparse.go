// Package blocksparse implements the block-sparse tensor representation and
// contraction that state-of-the-art quantum chemistry/physics libraries
// (ITensor, libtensor, TiledArray) use, and that §5.3 of the paper compares
// Sparta against: every mode is partitioned into sectors (quantum-number
// blocks), non-zero data lives in dense blocks addressed by sector tuples,
// and contraction extracts matching dense block pairs and multiplies them
// with GEMM into a pre-allocated output block.
package blocksparse

import (
	"fmt"
	"sort"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// Block is one dense non-zero block: the sector tuple addressing it and its
// row-major dense payload (size = product of the sector extents).
type Block struct {
	Sec  []uint32
	Data []float64
}

// Tensor is a block-sparse tensor. Parts[m] lists the sector sizes of mode
// m (summing to the mode size); blocks are stored sparsely by sector tuple.
type Tensor struct {
	Parts   [][]uint64 // per-mode sector sizes
	offs    [][]uint64 // per-mode sector start offsets
	blocks  map[uint64]*Block
	secRad  *lnum.Radix // radix over per-mode sector counts
	dims    []uint64    // total mode sizes
	ordered []uint64    // cached sorted keys (invalidated on insert)
}

// New builds an empty block tensor from per-mode sector partitions.
func New(parts [][]uint64) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("blocksparse: need at least one mode")
	}
	t := &Tensor{
		Parts:  make([][]uint64, len(parts)),
		offs:   make([][]uint64, len(parts)),
		blocks: make(map[uint64]*Block),
		dims:   make([]uint64, len(parts)),
	}
	nsec := make([]uint64, len(parts))
	for m, ps := range parts {
		if len(ps) == 0 {
			return nil, fmt.Errorf("blocksparse: mode %d has no sectors", m)
		}
		t.Parts[m] = append([]uint64(nil), ps...)
		t.offs[m] = make([]uint64, len(ps)+1)
		for s, sz := range ps {
			if sz == 0 {
				return nil, fmt.Errorf("blocksparse: mode %d sector %d has size 0", m, s)
			}
			t.offs[m][s+1] = t.offs[m][s] + sz
		}
		t.dims[m] = t.offs[m][len(ps)]
		nsec[m] = uint64(len(ps))
	}
	var err error
	if t.secRad, err = lnum.NewRadix(nsec); err != nil {
		return nil, err
	}
	return t, nil
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Parts) }

// Dims returns the total mode sizes.
func (t *Tensor) Dims() []uint64 { return t.dims }

// NumBlocks returns the number of stored dense blocks.
func (t *Tensor) NumBlocks() int { return len(t.blocks) }

// BlockDims returns the extents of the block at sector tuple sec.
func (t *Tensor) BlockDims(sec []uint32) []uint64 {
	d := make([]uint64, t.Order())
	for m, s := range sec {
		d[m] = t.Parts[m][s]
	}
	return d
}

// BlockElems returns the dense element count of the block at sec.
func (t *Tensor) BlockElems(sec []uint32) int { return t.blockLen(sec) }

// blockLen returns the dense element count of a block at sec.
func (t *Tensor) blockLen(sec []uint32) int {
	n := 1
	for m, s := range sec {
		n *= int(t.Parts[m][s])
	}
	return n
}

// SetBlock installs (or replaces) the dense block at sector tuple sec. The
// data length must match the block extents; data is not copied.
func (t *Tensor) SetBlock(sec []uint32, data []float64) error {
	if len(sec) != t.Order() {
		return fmt.Errorf("blocksparse: sector tuple arity %d, want %d", len(sec), t.Order())
	}
	for m, s := range sec {
		if int(s) >= len(t.Parts[m]) {
			return fmt.Errorf("blocksparse: sector %d out of range for mode %d", s, m)
		}
	}
	if want := t.blockLen(sec); len(data) != want {
		return fmt.Errorf("blocksparse: block data length %d, want %d", len(data), want)
	}
	t.blocks[t.secRad.Encode(sec)] = &Block{Sec: append([]uint32(nil), sec...), Data: data}
	t.ordered = nil
	return nil
}

// GetBlock returns the block at sec, or nil.
func (t *Tensor) GetBlock(sec []uint32) *Block {
	return t.blocks[t.secRad.Encode(sec)]
}

// Blocks iterates the blocks in deterministic (sector-key) order.
func (t *Tensor) Blocks() []*Block {
	if t.ordered == nil {
		t.ordered = make([]uint64, 0, len(t.blocks))
		for k := range t.blocks {
			t.ordered = append(t.ordered, k)
		}
		sort.Slice(t.ordered, func(i, j int) bool { return t.ordered[i] < t.ordered[j] })
	}
	out := make([]*Block, len(t.ordered))
	for i, k := range t.ordered {
		out[i] = t.blocks[k]
	}
	return out
}

// NNZ counts stored elements with |v| > cutoff — the element-wise non-zero
// count Table 4 reports after the 1e-8 truncation.
func (t *Tensor) NNZ(cutoff float64) int {
	n := 0
	for _, b := range t.blocks {
		for _, v := range b.Data {
			if v > cutoff || v < -cutoff {
				n++
			}
		}
	}
	return n
}

// DenseElems returns the total dense capacity of the stored blocks.
func (t *Tensor) DenseElems() int {
	n := 0
	for _, b := range t.blocks {
		n += len(b.Data)
	}
	return n
}

// ToCOO converts the block tensor to element-wise COO, dropping |v| <=
// cutoff — how the paper feeds ITensor's Hubbard-2D tensors to Sparta.
func (t *Tensor) ToCOO(cutoff float64) *coo.Tensor {
	s := coo.MustNew(t.dims, 0)
	order := t.Order()
	idx := make([]uint32, order)
	ext := make([]uint64, order)
	for _, b := range t.Blocks() {
		for m, sec := range b.Sec {
			ext[m] = t.Parts[m][sec]
		}
		rad := lnum.MustRadix(ext)
		local := make([]uint32, order)
		for ln, v := range b.Data {
			if v <= cutoff && v >= -cutoff {
				continue
			}
			rad.Decode(uint64(ln), local)
			for m := 0; m < order; m++ {
				idx[m] = uint32(t.offs[m][b.Sec[m]]) + local[m]
			}
			s.Append(idx, v)
		}
	}
	return s
}

// Bytes estimates the dense payload footprint.
func (t *Tensor) Bytes() uint64 { return uint64(t.DenseElems()) * 8 }
