// Package reorder implements mode-index relabeling for sparse tensors —
// the locality-oriented reordering of Li et al. (ICS'19, the paper's
// reference [38]). Relabeling each mode's indices by descending non-zero
// frequency clusters the heavy fibers at low coordinates, which compacts
// the sub-tensor structure SpTC parallelizes over and improves the block
// density HiCOO-style formats compress.
//
// A relabeling is a bijection per mode, so contraction results on
// relabeled tensors are the original results with relabeled coordinates;
// Undo restores them. When contracting X with Y, paired contract modes
// must share one relabeling (BuildJoint).
package reorder

import (
	"fmt"
	"sort"

	"sparta/internal/coo"
)

// Relabeling maps original index values to new ones (Fwd) and back (Inv),
// per mode.
type Relabeling struct {
	Fwd [][]uint32
	Inv [][]uint32
}

// ByFrequency builds the frequency relabeling of t: on every mode, the
// index value with the most non-zeros becomes 0, the next 1, and so on
// (ties broken by original value for determinism).
func ByFrequency(t *coo.Tensor) *Relabeling {
	r := &Relabeling{
		Fwd: make([][]uint32, t.Order()),
		Inv: make([][]uint32, t.Order()),
	}
	for m, d := range t.Dims {
		counts := make([]int, d)
		for _, v := range t.Inds[m] {
			counts[v]++
		}
		order := make([]uint32, d)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := counts[order[a]], counts[order[b]]
			if ca != cb {
				return ca > cb
			}
			return order[a] < order[b]
		})
		r.Fwd[m] = make([]uint32, d)
		r.Inv[m] = order
		for newV, oldV := range order {
			r.Fwd[m][oldV] = uint32(newV)
		}
	}
	return r
}

// Apply relabels t in place (indices only; values and non-zero order are
// untouched, so re-sort afterwards if sorted order is needed).
func (r *Relabeling) Apply(t *coo.Tensor) error {
	if err := r.check(t); err != nil {
		return err
	}
	for m := range t.Inds {
		fwd := r.Fwd[m]
		col := t.Inds[m]
		for i, v := range col {
			col[i] = fwd[v]
		}
	}
	return nil
}

// Undo restores original labels on a tensor in the relabeled space. For a
// contraction output, pass a relabeling whose modes line up with Z's modes
// (see ForOutput).
func (r *Relabeling) Undo(t *coo.Tensor) error {
	if err := r.check(t); err != nil {
		return err
	}
	for m := range t.Inds {
		inv := r.Inv[m]
		col := t.Inds[m]
		for i, v := range col {
			col[i] = inv[v]
		}
	}
	return nil
}

func (r *Relabeling) check(t *coo.Tensor) error {
	if len(r.Fwd) != t.Order() {
		return fmt.Errorf("reorder: relabeling has %d modes, tensor %d", len(r.Fwd), t.Order())
	}
	for m, d := range t.Dims {
		if uint64(len(r.Fwd[m])) != d {
			return fmt.Errorf("reorder: mode %d relabeling covers %d of %d values", m, len(r.Fwd[m]), d)
		}
	}
	return nil
}

// ForOutput assembles the relabeling that applies to a contraction output
// Z = X × Y under our mode convention (X free modes in original order, then
// Y free modes): the X relabeling's free modes followed by the Y
// relabeling's free modes.
func ForOutput(rx, ry *Relabeling, cmodesX, cmodesY []int) *Relabeling {
	out := &Relabeling{}
	inX := make(map[int]bool, len(cmodesX))
	for _, m := range cmodesX {
		inX[m] = true
	}
	inY := make(map[int]bool, len(cmodesY))
	for _, m := range cmodesY {
		inY[m] = true
	}
	for m := range rx.Fwd {
		if !inX[m] {
			out.Fwd = append(out.Fwd, rx.Fwd[m])
			out.Inv = append(out.Inv, rx.Inv[m])
		}
	}
	for m := range ry.Fwd {
		if !inY[m] {
			out.Fwd = append(out.Fwd, ry.Fwd[m])
			out.Inv = append(out.Inv, ry.Inv[m])
		}
	}
	return out
}
