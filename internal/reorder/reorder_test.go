package reorder

import (
	"math"
	"math/rand"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/gen"
)

func randomSorted(dims []uint64, nnz int, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := coo.MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		t.Append(idx, rng.NormFloat64())
	}
	t.Sort(1)
	t.Dedup()
	return t
}

func TestApplyUndoRoundTrip(t *testing.T) {
	u := randomSorted([]uint64{20, 30, 10}, 200, 1)
	snap := u.Clone()
	r := ByFrequency(u)
	if err := r.Apply(u); err != nil {
		t.Fatal(err)
	}
	if u.Equal(snap) {
		t.Fatal("relabeling was a no-op on a random tensor")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Undo(u); err != nil {
		t.Fatal(err)
	}
	if !u.Equal(snap) {
		t.Fatal("Undo did not restore the original labels")
	}
}

func TestFrequencyOrdering(t *testing.T) {
	// Mode 0: value 7 has 3 non-zeros, value 2 has 1 -> 7 relabels to 0.
	u := coo.MustNew([]uint64{10, 2}, 0)
	u.Append([]uint32{7, 0}, 1)
	u.Append([]uint32{7, 1}, 1)
	u.Append([]uint32{2, 0}, 1)
	u.Append([]uint32{7, 0}, 1) // duplicate coordinate is fine for counting
	r := ByFrequency(u)
	if r.Fwd[0][7] != 0 {
		t.Fatalf("hottest value relabeled to %d, want 0", r.Fwd[0][7])
	}
	if r.Fwd[0][2] != 1 {
		t.Fatalf("second value relabeled to %d, want 1", r.Fwd[0][2])
	}
	// Bijectivity on every mode.
	for m := range r.Fwd {
		seen := map[uint32]bool{}
		for _, v := range r.Fwd[m] {
			if seen[v] {
				t.Fatalf("mode %d: relabeling not injective", m)
			}
			seen[v] = true
		}
		for old, nw := range r.Fwd[m] {
			if r.Inv[m][nw] != uint32(old) {
				t.Fatalf("mode %d: Inv does not invert Fwd", m)
			}
		}
	}
}

func TestArityChecks(t *testing.T) {
	u := randomSorted([]uint64{5, 5}, 10, 2)
	r := ByFrequency(u)
	other := randomSorted([]uint64{5, 5, 5}, 10, 3)
	if err := r.Apply(other); err == nil {
		t.Error("order mismatch accepted")
	}
	small := randomSorted([]uint64{4, 5}, 10, 4)
	if err := r.Apply(small); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// TestContractionEquivariance: contracting relabeled tensors and undoing
// the output labels gives the original contraction result.
func TestContractionEquivariance(t *testing.T) {
	p, err := gen.FindPreset("Uber")
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate(p, 1200, 5)
	wl := gen.Workload{Preset: p, Modes: 2}
	cx, cy := wl.ContractModes()

	want, _, err := core.Contract(x, x, cx, cy, core.Options{Algorithm: core.AlgSparta})
	if err != nil {
		t.Fatal(err)
	}

	// Self-contraction with matching contract-mode lists: one relabeling
	// serves both sides consistently.
	r := ByFrequency(x)
	xr := x.Clone()
	if err := r.Apply(xr); err != nil {
		t.Fatal(err)
	}
	xr.Sort(1)
	zr, _, err := core.Contract(xr, xr, cx, cy, core.Options{Algorithm: core.AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	zOut := ForOutput(r, r, cx, cy)
	if err := zOut.Undo(zr); err != nil {
		t.Fatal(err)
	}
	zr.Sort(1)

	if zr.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d vs %d", zr.NNZ(), want.NNZ())
	}
	for i := 0; i < zr.NNZ(); i++ {
		for m := range zr.Inds {
			if zr.Inds[m][i] != want.Inds[m][i] {
				t.Fatalf("coordinate mismatch at %d", i)
			}
		}
		if math.Abs(zr.Vals[i]-want.Vals[i]) > 1e-9 {
			t.Fatalf("value mismatch at %d", i)
		}
	}
}
