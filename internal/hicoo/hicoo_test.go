package hicoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparta/internal/coo"
)

func randomSorted(dims []uint64, nnz int, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := coo.MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		t.Append(idx, rng.NormFloat64())
	}
	t.Sort(1)
	t.Dedup()
	return t
}

func TestFromCOOValidation(t *testing.T) {
	u := randomSorted([]uint64{10, 10}, 20, 1)
	for _, bits := range []uint{0, 9} {
		if _, err := FromCOO(u, bits); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
	dup := coo.MustNew([]uint64{4, 4}, 0)
	dup.Append([]uint32{1, 1}, 1)
	dup.Append([]uint32{1, 1}, 2)
	if _, err := FromCOO(dup, 4); err == nil {
		t.Error("duplicates accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, dims := range [][]uint64{{300}, {100, 90}, {40, 50, 60}, {20, 20, 20, 20}} {
		for _, bits := range []uint{1, 4, 7, 8} {
			u := randomSorted(dims, 300, int64(len(dims))*10+int64(bits))
			h, err := FromCOO(u, bits)
			if err != nil {
				t.Fatalf("dims %v bits %d: %v", dims, bits, err)
			}
			if h.NNZ() != u.NNZ() {
				t.Fatalf("nnz %d != %d", h.NNZ(), u.NNZ())
			}
			back := h.ToCOO()
			back.Sort(1)
			if !u.Equal(back) {
				t.Fatalf("dims %v bits %d: round trip mismatch", dims, bits)
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	u := coo.MustNew([]uint64{8, 8}, 0)
	h, err := FromCOO(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.NNZ() != 0 || h.NumBlocks() != 0 || h.AvgBlockNNZ() != 0 {
		t.Fatal("empty tensor mishandled")
	}
	if h.ToCOO().NNZ() != 0 {
		t.Fatal("empty expand broken")
	}
}

func TestBlockStructure(t *testing.T) {
	// 2-bit blocks (extent 4): coordinates 0-3 share block 0, 4-7 block 1.
	u := coo.MustNew([]uint64{16, 16}, 0)
	u.Append([]uint32{0, 0}, 1)
	u.Append([]uint32{3, 3}, 2) // same block as (0,0)
	u.Append([]uint32{0, 4}, 3) // block (0,1)
	u.Append([]uint32{4, 0}, 4) // block (1,0)
	h, err := FromCOO(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", h.NumBlocks())
	}
	if h.AvgBlockNNZ() != 4.0/3.0 {
		t.Fatalf("avg block nnz = %v", h.AvgBlockNNZ())
	}
	// Block 0 holds two elements with local offsets (0,0) and (3,3).
	if h.BPtr[1]-h.BPtr[0] != 2 {
		t.Fatalf("block 0 span = %d", h.BPtr[1]-h.BPtr[0])
	}
	if h.EInds[0][1] != 3 || h.EInds[1][1] != 3 {
		t.Fatalf("local offsets = %d,%d", h.EInds[0][1], h.EInds[1][1])
	}
	idx := make([]uint32, 2)
	h.Index(1, idx)
	if idx[0] != 3 || idx[1] != 3 {
		t.Fatalf("Index(1) = %v", idx)
	}
	h.Index(3, idx) // last element, block (1,0)
	if idx[0] != 4 || idx[1] != 0 {
		t.Fatalf("Index(3) = %v", idx)
	}
}

// TestCompression: on a block-dense tensor HiCOO must be much smaller than
// COO; on a pathological one-nnz-per-block tensor it may be larger.
func TestCompression(t *testing.T) {
	// Dense 32x32 corner of a large tensor: one 2^5... use bits=5? max 8.
	u := coo.MustNew([]uint64{1 << 12, 1 << 12}, 0)
	for i := uint32(0); i < 64; i++ {
		for j := uint32(0); j < 64; j++ {
			u.Append([]uint32{i, j}, 1)
		}
	}
	u.Sort(1)
	h, err := FromCOO(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", h.NumBlocks())
	}
	// COO: 16 B/elem; HiCOO here: ~10 B/elem.
	if h.Bytes() >= u.Bytes() {
		t.Fatalf("HiCOO %d >= COO %d on a block-dense tensor", h.Bytes(), u.Bytes())
	}

	// Scattered tensor: every non-zero its own block — HiCOO pays for the
	// block headers.
	v := coo.MustNew([]uint64{1 << 20}, 0)
	for i := 0; i < 100; i++ {
		v.Append([]uint32{uint32(i) << 10}, 1)
	}
	hv, err := FromCOO(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hv.NumBlocks() != 100 {
		t.Fatalf("scattered blocks = %d", hv.NumBlocks())
	}
}

func TestScanMatchesIndex(t *testing.T) {
	u := randomSorted([]uint64{50, 60, 70}, 400, 7)
	h, err := FromCOO(u, 4)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	idx2 := make([]uint32, 3)
	h.Scan(func(idx []uint32, v float64) {
		h.Index(i, idx2)
		for m := range idx {
			if idx[m] != idx2[m] {
				t.Fatalf("position %d: Scan %v vs Index %v", i, idx, idx2)
			}
		}
		if v != h.Vals[i] {
			t.Fatalf("position %d: value mismatch", i)
		}
		i++
	})
	if i != h.NNZ() {
		t.Fatalf("Scan visited %d of %d", i, h.NNZ())
	}
}

// Property: round trip preserves the tensor for arbitrary inputs and bits.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, rawBits, rawN uint8) bool {
		bits := uint(rawBits)%8 + 1
		nnz := int(rawN)%200 + 1
		u := randomSorted([]uint64{64, 48, 32}, nnz, seed)
		h, err := FromCOO(u, bits)
		if err != nil {
			return false
		}
		back := h.ToCOO()
		back.Sort(1)
		return u.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
