// Package hicoo implements the hierarchical coordinate (HiCOO) sparse
// tensor format (Li et al., SC'18 — the paper's reference [37]). Sparta's
// related-work section commits to it as future work: "[this work] will
// adopt a more compressed format for the sparse tensor X according to SpTC
// operations". HiCOO groups non-zeros into aligned 2^bits-wide blocks per
// mode; each non-zero then stores one byte per mode of local offset instead
// of four, with the block coordinates amortized across the block.
//
// The package provides the format itself (build, expand, iterate,
// footprint) and the measurement hooks the evaluation uses
// (sptc-bench -exp hicoo): compression ratio versus COO and CSF, and scan
// throughput. Full contraction on HiCOO-compressed X is exactly the
// paper's declared future work and is intentionally out of scope here.
package hicoo

import (
	"errors"
	"fmt"
	"sort"

	"sparta/internal/coo"
	"sparta/internal/lnum"
)

// Tensor is a HiCOO tensor: non-zeros are grouped into blocks of extent
// 2^Bits per mode. Blocks appear in block-lexicographic order; within a
// block, elements are in local-lexicographic order.
type Tensor struct {
	Dims []uint64
	Bits uint
	// BPtr delimits block b's elements: [BPtr[b], BPtr[b+1]).
	BPtr []int32
	// BInds[m][b] is the block coordinate of block b on mode m.
	BInds [][]uint32
	// EInds[m][i] is the one-byte local offset of non-zero i on mode m.
	EInds [][]uint8
	// Vals[i] is the value of non-zero i.
	Vals []float64
}

// FromCOO compresses a duplicate-free COO tensor into HiCOO with 2^bits
// block extents (1 <= bits <= 8 so local offsets fit one byte). The input
// is re-sorted into block-major order internally; the original tensor is
// not modified.
func FromCOO(t *coo.Tensor, bits uint) (*Tensor, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("hicoo: bits %d out of range [1,8]", bits)
	}
	order := t.Order()
	n := t.NNZ()
	h := &Tensor{
		Dims:  append([]uint64(nil), t.Dims...),
		Bits:  bits,
		BInds: make([][]uint32, order),
		EInds: make([][]uint8, order),
		Vals:  make([]float64, 0, n),
	}
	if n == 0 {
		h.BPtr = []int32{0}
		return h, nil
	}

	// Sort positions into block-major order: primary key = LN-encoded
	// block tuple; ties (same block) break on the raw coordinates, whose
	// lexicographic order within one block equals local-offset order.
	blockDims := make([]uint64, order)
	for m, d := range t.Dims {
		blockDims[m] = (d-1)>>bits + 1
	}
	if _, err := lnum.NewRadix(blockDims); err != nil {
		return nil, fmt.Errorf("hicoo: block index space overflows: %w", err)
	}
	bks := make([]uint64, n)
	for i := 0; i < n; i++ {
		var bk uint64
		for m := 0; m < order; m++ {
			bk = bk*blockDims[m] + uint64(t.Inds[m][i]>>bits)
		}
		bks[i] = bk
	}
	cmpIdx := func(a, b int) int {
		for m := 0; m < order; m++ {
			va, vb := t.Inds[m][a], t.Inds[m][b]
			if va != vb {
				if va < vb {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		pa, pb := pos[a], pos[b]
		if bks[pa] != bks[pb] {
			return bks[pa] < bks[pb]
		}
		return cmpIdx(pa, pb) < 0
	})

	// Duplicate check: same block and same coordinates.
	for k := 1; k < n; k++ {
		if bks[pos[k]] == bks[pos[k-1]] && cmpIdx(pos[k], pos[k-1]) == 0 {
			return nil, errors.New("hicoo: duplicate coordinates")
		}
	}

	for m := 0; m < order; m++ {
		h.EInds[m] = make([]uint8, 0, n)
	}
	mask := uint32(1<<bits - 1)
	var lastBK uint64
	for k, p := range pos {
		if k == 0 || bks[p] != lastBK {
			h.BPtr = append(h.BPtr, int32(k))
			for m := 0; m < order; m++ {
				h.BInds[m] = append(h.BInds[m], t.Inds[m][p]>>bits)
			}
			lastBK = bks[p]
		}
		for m := 0; m < order; m++ {
			h.EInds[m] = append(h.EInds[m], uint8(t.Inds[m][p]&mask))
		}
		h.Vals = append(h.Vals, t.Vals[p])
	}
	h.BPtr = append(h.BPtr, int32(n))
	return h, nil
}

// NNZ returns the number of stored non-zeros.
func (h *Tensor) NNZ() int { return len(h.Vals) }

// Order returns the number of modes.
func (h *Tensor) Order() int { return len(h.Dims) }

// NumBlocks returns the number of non-empty blocks.
func (h *Tensor) NumBlocks() int { return len(h.BPtr) - 1 }

// AvgBlockNNZ returns the mean non-zeros per block (0 for empty tensors) —
// the block density cb that HiCOO's compression depends on.
func (h *Tensor) AvgBlockNNZ() float64 {
	if h.NumBlocks() == 0 {
		return 0
	}
	return float64(h.NNZ()) / float64(h.NumBlocks())
}

// Index reconstructs the full coordinate tuple of non-zero i into dst.
// The owning block is found by binary search; scanning code should use
// Blocks/Block iteration instead.
func (h *Tensor) Index(i int, dst []uint32) {
	b := sort.Search(len(h.BPtr)-1, func(b int) bool { return h.BPtr[b+1] > int32(i) })
	for m := 0; m < h.Order(); m++ {
		dst[m] = h.BInds[m][b]<<h.Bits | uint32(h.EInds[m][i])
	}
}

// Scan walks every non-zero in block-major order, calling f with the
// reconstructed coordinates (valid only during the call) and value.
func (h *Tensor) Scan(f func(idx []uint32, v float64)) {
	order := h.Order()
	idx := make([]uint32, order)
	base := make([]uint32, order)
	for b := 0; b+1 < len(h.BPtr); b++ {
		for m := 0; m < order; m++ {
			base[m] = h.BInds[m][b] << h.Bits
		}
		for i := h.BPtr[b]; i < h.BPtr[b+1]; i++ {
			for m := 0; m < order; m++ {
				idx[m] = base[m] | uint32(h.EInds[m][i])
			}
			f(idx, h.Vals[i])
		}
	}
}

// ToCOO expands back to COO. The result is in block-major order, not
// lexicographic order; call Sort to re-sort if needed.
func (h *Tensor) ToCOO() *coo.Tensor {
	t := coo.MustNew(h.Dims, h.NNZ())
	h.Scan(func(idx []uint32, v float64) { t.Append(idx, v) })
	return t
}

// Bytes reports the payload footprint: block pointers and coordinates plus
// one byte per mode per non-zero and the values — the quantity HiCOO
// compresses relative to COO's 4 bytes per mode per non-zero.
func (h *Tensor) Bytes() uint64 {
	b := uint64(len(h.BPtr)) * 4
	for m := range h.BInds {
		b += uint64(len(h.BInds[m]))*4 + uint64(len(h.EInds[m]))
	}
	return b + uint64(len(h.Vals))*8
}
