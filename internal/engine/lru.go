package engine

import (
	"container/list"

	"sparta/internal/core"
)

// planKey identifies one cached prepared plan: the content fingerprint of Y
// plus everything that changes the built table — the contract-mode spec and
// the kernel/bucket build settings. Thread count is deliberately excluded
// (it changes build speed, not the table).
type planKey struct {
	fp      Fingerprint
	modes   string // canonical "2,0"-style encoding of cmodesY
	kernel  core.Kernel
	buckets int
	twoPass bool
}

// lruEntry is one resident plan with its accounted size.
type lruEntry struct {
	key   planKey
	prep  *core.PreparedY
	bytes uint64
}

// lruCache is a doubly-linked-list LRU over prepared plans with an entry
// cap and an optional byte budget. Not self-locking — the Engine serializes
// access (cache operations are pointer shuffles; the expensive work, the
// HtY build, happens outside the lock).
type lruCache struct {
	maxEntries int
	maxBytes   uint64 // 0 = no byte budget

	bytes uint64
	ll    *list.List // front = most recently used
	items map[planKey]*list.Element
}

func newLRU(maxEntries int, maxBytes uint64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[planKey]*list.Element{},
	}
}

// get returns the plan for k, promoting it to most-recently-used.
func (c *lruCache) get(k planKey) (*core.PreparedY, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).prep, true
}

// add inserts a plan (keeping an existing entry for the same key — the
// first build wins so concurrent preparers converge on one table) and
// evicts from the cold end until both budgets hold. It returns the plan
// now cached under k and the number of evictions.
func (c *lruCache) add(k planKey, prep *core.PreparedY) (*core.PreparedY, int) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry).prep, 0
	}
	e := &lruEntry{key: k, prep: prep, bytes: prep.Bytes()}
	c.items[k] = c.ll.PushFront(e)
	c.bytes += e.bytes
	evicted := 0
	for c.over() {
		back := c.ll.Back()
		if back == nil || back.Value.(*lruEntry).key == k {
			break // never evict the entry just inserted
		}
		c.remove(back)
		evicted++
	}
	return prep, evicted
}

// over reports whether either budget is exceeded (an oversized single entry
// is allowed to stay — the cache must be able to hold the working plan).
func (c *lruCache) over() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1
}

func (c *lruCache) remove(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

func (c *lruCache) len() int { return c.ll.Len() }
