package engine

import (
	"container/list"

	"sparta/internal/core"
	"sparta/internal/invariant"
)

// planKey identifies one cached prepared plan: the content fingerprint of Y
// plus everything that changes the built table — the contract-mode spec and
// the kernel/bucket build settings. Thread count is deliberately excluded
// (it changes build speed, not the table).
type planKey struct {
	fp      Fingerprint
	modes   string // canonical "2,0"-style encoding of cmodesY
	kernel  core.Kernel
	buckets int
	twoPass bool
}

// lruEntry is one resident plan with its accounted size and last-touch
// generation (the recency witness the -tags assert build cross-checks
// against the list order).
type lruEntry struct {
	key   planKey
	prep  *core.PreparedY
	bytes uint64
	gen   uint64
}

// lruCache is a doubly-linked-list LRU over prepared plans with an entry
// cap and an optional byte budget. Not self-locking — the Engine serializes
// access (cache operations are pointer shuffles; the expensive work, the
// HtY build, happens outside the lock).
type lruCache struct {
	maxEntries int
	maxBytes   uint64 // 0 = no byte budget

	bytes uint64
	gen   uint64     // monotone touch counter; every hit or insert increments it
	ll    *list.List // front = most recently used
	items map[planKey]*list.Element
}

func newLRU(maxEntries int, maxBytes uint64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[planKey]*list.Element{},
	}
}

// get returns the plan for k, promoting it to most-recently-used.
func (c *lruCache) get(k planKey) (*core.PreparedY, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.touch(el.Value.(*lruEntry))
	if invariant.Enabled {
		c.checkRecency()
	}
	return el.Value.(*lruEntry).prep, true
}

// touch stamps e with the next generation. Generations only grow, so the
// recency list can be cross-checked against them under -tags assert: list
// order and generation order must never disagree.
func (c *lruCache) touch(e *lruEntry) {
	c.gen++
	e.gen = c.gen
}

// checkRecency asserts the cache's structural invariants: generations
// strictly decrease front to back (the list is exactly recency order), the
// map points at the list elements it indexes, and the byte gauge sums the
// resident entries.
func (c *lruCache) checkRecency() {
	last := ^uint64(0)
	var bytes uint64
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		invariant.Assertf(e.gen < last,
			"engine: LRU generations not monotone: gen %d follows gen %d", e.gen, last)
		invariant.Assertf(c.items[e.key] == el,
			"engine: LRU map does not point at the list element holding its key")
		last = e.gen
		bytes += e.bytes
		n++
	}
	invariant.Assertf(n == len(c.items),
		"engine: LRU list holds %d entries, map holds %d", n, len(c.items))
	invariant.Assertf(bytes == c.bytes,
		"engine: LRU byte gauge says %d, resident entries sum to %d", c.bytes, bytes)
}

// add inserts a plan (keeping an existing entry for the same key — the
// first build wins so concurrent preparers converge on one table) and
// evicts from the cold end until both budgets hold. It returns the plan
// now cached under k and the number of evictions.
func (c *lruCache) add(k planKey, prep *core.PreparedY) (*core.PreparedY, int) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.touch(el.Value.(*lruEntry))
		if invariant.Enabled {
			c.checkRecency()
		}
		return el.Value.(*lruEntry).prep, 0
	}
	e := &lruEntry{key: k, prep: prep, bytes: prep.Bytes()}
	c.touch(e)
	c.items[k] = c.ll.PushFront(e)
	c.bytes += e.bytes
	evicted := 0
	for c.over() {
		back := c.ll.Back()
		if back == nil || back.Value.(*lruEntry).key == k {
			break // never evict the entry just inserted
		}
		c.remove(back)
		evicted++
	}
	if invariant.Enabled {
		c.checkRecency()
	}
	return prep, evicted
}

// over reports whether either budget is exceeded (an oversized single entry
// is allowed to stay — the cache must be able to hold the working plan).
func (c *lruCache) over() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1
}

func (c *lruCache) remove(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

func (c *lruCache) len() int { return c.ll.Len() }
