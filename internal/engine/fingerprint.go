package engine

import (
	"fmt"
	"math"

	"sparta/internal/coo"
	"sparta/internal/parallel"
)

// Fingerprint is a 128-bit content hash of a COO tensor: mode count, mode
// sizes, non-zero count, and the multiset of (index tuple, value) entries.
// It is insertion-order independent — the same tensor stored in any non-zero
// order fingerprints identically — so the plan cache recognizes a Y tensor
// without requiring (or paying for) a sort.
//
// Scheme: a header hash chains order, dims, and nnz through splitmix64; each
// non-zero chains its mode indices (in mode order) and raw IEEE-754 value
// bits into one 64-bit entry hash; entries combine commutatively — one lane
// sums the entry hashes, the other XORs an independent remix — and the two
// lanes are finalized against the header. Identical duplicate entries cancel
// in the XOR lane but are counted by the sum lane and nnz, so duplicated
// coordinates still separate tensors. Collisions require the sum AND xor of
// the per-entry hashes to agree under the same header — FuzzFingerprint
// drives this against a canonical-serialization oracle.
type Fingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// IsZero reports whether f is the zero fingerprint (no tensor hashed).
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// mix64 is the splitmix64 finalizer, the same mixer the hash kernels use.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fpHeaderSeed = 0x5349_4752_4150_5346 // arbitrary distinct seeds
	fpEntrySeed  = 0x9e37_79b9_7f4a_7c15
	fpLaneSeed   = 0xc2b2_ae3d_27d4_eb4f
)

// FingerprintTensor hashes t with the given worker count (<1 = all cores).
// The commutative entry combine makes the parallel split exact: per-thread
// partial sums/xors fold into the same result as a serial walk.
func FingerprintTensor(t *coo.Tensor, threads int) Fingerprint {
	h := mix64(fpHeaderSeed ^ uint64(len(t.Dims)))
	for _, d := range t.Dims {
		h = mix64(h ^ d)
	}
	n := t.NNZ()
	h = mix64(h ^ uint64(n))

	threads = parallel.ClampWork(threads, n, int64(n)*int64(len(t.Dims)))
	sums := make([]uint64, threads)
	xors := make([]uint64, threads)
	parallel.For(threads, n, func(tid, lo, hi int) {
		var sum, xr uint64
		for i := lo; i < hi; i++ {
			e := uint64(fpEntrySeed)
			for m := range t.Inds {
				e = mix64(e ^ uint64(t.Inds[m][i]))
			}
			e = mix64(e ^ math.Float64bits(t.Vals[i]))
			sum += e
			xr ^= mix64(e ^ fpLaneSeed)
		}
		sums[tid] = sum
		xors[tid] = xr
	})
	var sum, xr uint64
	for i := range sums {
		sum += sums[i]
		xr ^= xors[i]
	}
	return Fingerprint{
		Hi: mix64(h ^ sum),
		Lo: mix64(h ^ xr ^ (sum<<32 | sum>>32)),
	}
}
