package engine

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/dense"
	"sparta/internal/obs"
)

func randomSparse(dims []uint64, nnz int, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := coo.MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		t.Append(idx, rng.NormFloat64())
	}
	t.Sort(1)
	t.Dedup()
	return t
}

// diffCase is one randomized contraction configuration.
type diffCase struct {
	xd, yd           []uint64
	cmodesX, cmodesY []int
	nnzX, nnzY       int
	seed             int64
}

// randomCase draws a contraction with X/Y orders in [2,5] and 1..min(order)
// contracted mode pairs; paired dims match by construction.
func randomCase(rng *rand.Rand, trial int) diffCase {
	orderX := 2 + rng.Intn(4)
	orderY := 2 + rng.Intn(4)
	nc := 1 + rng.Intn(min(orderX, orderY))
	xd := make([]uint64, orderX)
	for m := range xd {
		xd[m] = uint64(2 + rng.Intn(6))
	}
	yd := make([]uint64, orderY)
	for m := range yd {
		yd[m] = uint64(2 + rng.Intn(6))
	}
	cx := rng.Perm(orderX)[:nc]
	cy := rng.Perm(orderY)[:nc]
	for k := range cx {
		yd[cy[k]] = xd[cx[k]]
	}
	return diffCase{
		xd: xd, yd: yd, cmodesX: cx, cmodesY: cy,
		nnzX: 20 + rng.Intn(120), nnzY: 20 + rng.Intn(120),
		seed: int64(1000 + trial),
	}
}

// kernelConfigs are the deterministic build configurations: the flat kernel
// is always lock-free two-pass; the chained kernel is deterministic only
// with TwoPassHtY (the bucket-locked build appends in arrival order).
var kernelConfigs = []struct {
	name string
	opt  func(o core.Options) core.Options
}{
	{"flat", func(o core.Options) core.Options {
		o.Kernel = core.KernelFlat
		return o
	}},
	{"chained2p", func(o core.Options) core.Options {
		o.Kernel = core.KernelChained
		o.TwoPassHtY = true
		return o
	}},
}

// TestPreparedDiff is the main equivalence sweep: ~200 randomized
// contractions across orders 2-5, both kernels, and 1/4/8 threads. The
// prepared path must be bitwise identical to the one-shot Contract, and
// both must match the dense einsum oracle within accumulation tolerance.
func TestPreparedDiff(t *testing.T) {
	trials := 34 // x2 kernels x3 thread counts = 204 configurations
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		c := randomCase(rng, trial)
		x := randomSparse(c.xd, c.nnzX, c.seed)
		y := randomSparse(c.yd, c.nnzY, c.seed+500)

		// Dense oracle once per case (thread- and kernel-independent).
		dx, err := dense.FromCOO(x, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := dense.FromCOO(y, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dense.Contract(dx, dy, c.cmodesX, c.cmodesY, 1<<22)
		if err != nil {
			t.Fatal(err)
		}

		for _, kc := range kernelConfigs {
			for _, threads := range []int{1, 4, 8} {
				opt := kc.opt(core.Options{Algorithm: core.AlgSparta, Threads: threads})

				zRef, _, err := core.ContractCtx(ctx, x, y, c.cmodesX, c.cmodesY, opt)
				if err != nil {
					t.Fatalf("trial %d %s t=%d: one-shot: %v", trial, kc.name, threads, err)
				}
				pr, err := core.PrepareY(y, c.cmodesY, opt)
				if err != nil {
					t.Fatalf("trial %d %s t=%d: prepare: %v", trial, kc.name, threads, err)
				}
				zPrep, rep, err := pr.Contract(ctx, x, c.cmodesX, opt)
				if err != nil {
					t.Fatalf("trial %d %s t=%d: prepared: %v", trial, kc.name, threads, err)
				}
				if !zPrep.Equal(zRef) {
					t.Fatalf("trial %d %s t=%d: prepared output differs from one-shot (case %+v)",
						trial, kc.name, threads, c)
				}
				if rep.HtYReused {
					t.Errorf("trial %d: first prepared use claims HtYReused", trial)
				}

				// Second use of the same plan: warm, still identical.
				zWarm, repWarm, err := pr.Contract(ctx, x, c.cmodesX, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !zWarm.Equal(zRef) {
					t.Fatalf("trial %d %s t=%d: warm prepared output differs", trial, kc.name, threads)
				}
				if !repWarm.HtYReused || repWarm.HtYBuild != 0 {
					t.Errorf("trial %d: warm use not reported as reuse (%+v)", trial, repWarm.HtYReused)
				}

				got, err := dense.FromCOO(zRef, 1<<22)
				if err != nil {
					t.Fatal(err)
				}
				diff, err := dense.MaxAbsDiff(got, want)
				if err != nil {
					t.Fatalf("trial %d: oracle shape mismatch: Z dims %v", trial, zRef.Dims)
				}
				if diff > 1e-9 {
					t.Fatalf("trial %d %s t=%d: max diff vs dense oracle %g", trial, kc.name, threads, diff)
				}
			}
		}
	}
}

// TestEngineWarmSkipsBuild asserts the acceptance criterion directly: a
// warm engine contraction reports HtYReused, emits no "hty build" stage
// span, and returns the bitwise-identical tensor.
func TestEngineWarmSkipsBuild(t *testing.T) {
	x := randomSparse([]uint64{9, 7, 6}, 150, 1)
	y := randomSparse([]uint64{6, 8, 5}, 120, 2)
	eng := New(Config{})
	ctx := context.Background()

	coldTr := obs.NewTracer()
	opt := core.Options{Algorithm: core.AlgSparta, Tracer: coldTr}
	zCold, repCold, err := eng.Contract(ctx, x, y, []int{2}, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if repCold.HtYReused {
		t.Error("cold contraction claims HtYReused")
	}
	if !traceHas(t, coldTr, "hty build") {
		t.Error(`cold trace lacks the "hty build" span`)
	}

	warmTr := obs.NewTracer()
	opt.Tracer = warmTr
	zWarm, repWarm, err := eng.Contract(ctx, x, y, []int{2}, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !repWarm.HtYReused || repWarm.HtYBuild != 0 {
		t.Errorf("warm contraction not reported as reuse: reused=%v build=%v",
			repWarm.HtYReused, repWarm.HtYBuild)
	}
	if traceHas(t, warmTr, "hty build") {
		t.Error(`warm trace still contains the "hty build" span`)
	}
	if !zWarm.Equal(zCold) {
		t.Error("warm output not bitwise identical to cold")
	}
	if s := eng.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func traceHas(t *testing.T, tr *obs.Tracer, name string) bool {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return strings.Contains(buf.String(), name)
}

// TestMetamorphicModePermutation: permuting X's modes (remapping the
// contract pairing accordingly) must not change the prepared-path result.
func TestMetamorphicModePermutation(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		x := randomSparse([]uint64{5, 6, 4, 3}, 80, int64(600+trial))
		y := randomSparse([]uint64{4, 3, 7}, 50, int64(700+trial))
		opt := core.Options{Algorithm: core.AlgSparta, Threads: 1 + rng.Intn(4)}

		pr, err := core.PrepareY(y, []int{0, 1}, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := pr.Contract(ctx, x, []int{2, 3}, opt)
		if err != nil {
			t.Fatal(err)
		}

		// Swap X's contract modes 2 and 3 and the pairing with them; the
		// same prepared Y must serve both phrasings.
		xp := x.Clone()
		if err := xp.Permute([]int{0, 1, 3, 2}); err != nil {
			t.Fatal(err)
		}
		pr2, err := core.PrepareY(y, []int{0, 1}, opt)
		if err != nil {
			t.Fatal(err)
		}
		z2, _, err := pr2.Contract(ctx, xp, []int{3, 2}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(ref, z2) {
			t.Fatalf("trial %d: X mode permutation changed the prepared result", trial)
		}
	}
}

// TestMetamorphicScalarLinearity: Contract(aX, Y) == a*Contract(X, Y).
func TestMetamorphicScalarLinearity(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		x := randomSparse([]uint64{8, 6, 5}, 90, int64(800+trial))
		y := randomSparse([]uint64{5, 7}, 40, int64(900+trial))
		opt := core.Options{Algorithm: core.AlgSparta, Threads: 4}
		pr, err := core.PrepareY(y, []int{0}, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := pr.Contract(ctx, x, []int{2}, opt)
		if err != nil {
			t.Fatal(err)
		}
		const alpha = 3.0
		xs := x.Clone()
		xs.Scale(alpha)
		zs, _, err := pr.Contract(ctx, xs, []int{2}, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref.Scale(alpha)
		if !almostEqual(ref, zs) {
			t.Fatalf("trial %d: scalar linearity violated", trial)
		}
	}
}

// almostEqual compares coordinates exactly and values to accumulation
// tolerance (metamorphic transforms reorder float additions).
func almostEqual(a, b *coo.Tensor) bool {
	if a.NNZ() != b.NNZ() || len(a.Dims) != len(b.Dims) {
		return false
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return false
		}
		for i := range a.Inds[m] {
			if a.Inds[m][i] != b.Inds[m][i] {
				return false
			}
		}
	}
	for i := range a.Vals {
		if math.Abs(a.Vals[i]-b.Vals[i]) > 1e-9*math.Max(1, math.Abs(a.Vals[i])) {
			return false
		}
	}
	return true
}
