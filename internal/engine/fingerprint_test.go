package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"sparta/internal/coo"
)

// tensorFromBytes deterministically decodes fuzz data into a small COO
// tensor: first byte picks the order (1..4), the next bytes the dims
// (2..17), then 9-byte records of (mode indices, value byte) until the data
// runs out. Values come from a tiny alphabet so the fuzzer can hit
// duplicate entries easily.
func tensorFromBytes(data []byte) *coo.Tensor {
	if len(data) == 0 {
		data = []byte{0}
	}
	order := 1 + int(data[0]%4)
	data = data[1:]
	dims := make([]uint64, order)
	for m := range dims {
		d := byte(3)
		if len(data) > 0 {
			d = data[0]
			data = data[1:]
		}
		dims[m] = 2 + uint64(d%16)
	}
	t := coo.MustNew(dims, 8)
	idx := make([]uint32, order)
	for len(data) >= order+1 {
		for m := range idx {
			idx[m] = uint32(data[m]) % uint32(dims[m])
		}
		v := float64(int8(data[order])) / 4
		t.Append(idx, v)
		data = data[order+1:]
	}
	return t
}

// canonical serializes a tensor into an order-independent string: the
// sorted multiset of entries under the dims header — exactly the identity
// the fingerprint is supposed to capture.
func canonical(t *coo.Tensor) string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%v;", t.Dims)
	lines := make([]string, t.NNZ())
	for i := 0; i < t.NNZ(); i++ {
		var e strings.Builder
		for m := range t.Inds {
			fmt.Fprintf(&e, "%d,", t.Inds[m][i])
		}
		fmt.Fprintf(&e, "=%016x", math.Float64bits(t.Vals[i]))
		lines[i] = e.String()
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, ";"))
	return b.String()
}

// shuffled returns t with its entries in a different storage order.
func shuffled(t *coo.Tensor, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	s := t.Clone()
	n := s.NNZ()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		for m := range s.Inds {
			s.Inds[m][i], s.Inds[m][j] = s.Inds[m][j], s.Inds[m][i]
		}
		s.Vals[i], s.Vals[j] = s.Vals[j], s.Vals[i]
	}
	return s
}

// seen maps canonical serializations to fingerprints across the whole fuzz
// run — the collision oracle.
var seen sync.Map

// FuzzFingerprint drives FingerprintTensor against the canonical-
// serialization oracle: equal canonical forms must fingerprint equally
// (including across storage order and thread counts), and distinct
// canonical forms must not collide.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 1, 2, 3})
	f.Add([]byte{1, 3, 3, 0, 0, 7, 1, 1, 7})            // duplicate entries
	f.Add([]byte{2, 4, 4, 4, 1, 2, 3, 9, 3, 2, 1, 9})   // order 3
	f.Add([]byte{3, 2, 2, 2, 2, 0, 1, 0, 1, 128})       // negative value
	f.Add(bytesOf(0, 9, 1, 1, 5, 2, 1, 6, 2, 2, 7, 3)) // several entries, order 1
	f.Fuzz(func(t *testing.T, data []byte) {
		tensor := tensorFromBytes(data)
		fp := FingerprintTensor(tensor, 1)

		// Parallel split is exact.
		if fp4 := FingerprintTensor(tensor, 4); fp4 != fp {
			t.Fatalf("threads=4 fingerprint %v != serial %v", fp4, fp)
		}
		// Storage order is irrelevant.
		if fps := FingerprintTensor(shuffled(tensor, 42), 2); fps != fp {
			t.Fatalf("shuffled fingerprint %v != original %v", fps, fp)
		}

		key := canonical(tensor)
		if prev, loaded := seen.LoadOrStore(key, fp); loaded && prev.(Fingerprint) != fp {
			t.Fatalf("same canonical form, different fingerprints: %v vs %v", prev, fp)
		}
		// Reverse direction: scan for a collision between this fingerprint
		// and any previously seen distinct canonical form.
		seen.Range(func(k, v interface{}) bool {
			if v.(Fingerprint) == fp && k.(string) != key {
				t.Fatalf("fingerprint collision:\n  %s\n  %s", k.(string), key)
			}
			return true
		})
	})
}

func bytesOf(bs ...byte) []byte { return bs }

// TestFingerprintBasics pins the cheap invariants outside the fuzzer.
func TestFingerprintBasics(t *testing.T) {
	a := randomSparse([]uint64{9, 8, 7}, 300, 1)
	fp := FingerprintTensor(a, 1)
	if fp.IsZero() {
		t.Fatal("fingerprint of a real tensor is zero")
	}
	if got := FingerprintTensor(a.Clone(), 3); got != fp {
		t.Errorf("clone fingerprints differently: %v vs %v", got, fp)
	}
	if len(fp.String()) != 32 {
		t.Errorf("String() = %q, want 32 hex digits", fp.String())
	}

	// Any single-entry perturbation must change the fingerprint.
	b := a.Clone()
	b.Vals[17] += 1e-9
	if FingerprintTensor(b, 1) == fp {
		t.Error("value perturbation not detected")
	}
	c := a.Clone()
	c.Inds[1][3] ^= 1
	if FingerprintTensor(c, 1) == fp {
		t.Error("index perturbation not detected")
	}

	// Same entries under different dims are different tensors.
	d := a.Clone()
	d.Dims = append([]uint64{}, a.Dims...)
	d.Dims[0]++
	if FingerprintTensor(d, 1) == fp {
		t.Error("dims change not detected")
	}

	// Duplicate pair does not cancel (the sum lane and nnz see it).
	e := randomSparse([]uint64{5, 5}, 40, 2)
	dup := coo.MustNew(e.Dims, e.NNZ()+1)
	idx := make([]uint32, 2)
	for i := 0; i < e.NNZ(); i++ {
		idx[0], idx[1] = e.Inds[0][i], e.Inds[1][i]
		dup.Append(idx, e.Vals[i])
	}
	idx[0], idx[1] = e.Inds[0][0], e.Inds[1][0]
	dup.Append(idx, e.Vals[0]) // exact duplicate of entry 0
	if FingerprintTensor(dup, 1) == FingerprintTensor(e, 1) {
		t.Error("exact duplicate entry canceled out of the fingerprint")
	}
}
