package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sparta/internal/core"
	"sparta/internal/obs"
)

func prepFor(t *testing.T, seed int64, nnz int) *core.PreparedY {
	t.Helper()
	y := randomSparse([]uint64{8, 7, 6}, nnz, seed)
	pr, err := core.PrepareY(y, []int{0}, core.Options{Algorithm: core.AlgSparta, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func keyN(n uint64) planKey { return planKey{fp: Fingerprint{Hi: n, Lo: ^n}, modes: "0"} }

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(2, 0)
	p1, p2, p3 := prepFor(t, 1, 100), prepFor(t, 2, 100), prepFor(t, 3, 100)
	c.add(keyN(1), p1)
	c.add(keyN(2), p2)
	if _, ok := c.get(keyN(1)); !ok { // promote 1; 2 becomes coldest
		t.Fatal("key 1 missing")
	}
	if _, ev := c.add(keyN(3), p3); ev != 1 {
		t.Fatalf("evicted %d entries, want 1", ev)
	}
	if _, ok := c.get(keyN(2)); ok {
		t.Error("coldest entry (2) survived the eviction")
	}
	if _, ok := c.get(keyN(1)); !ok {
		t.Error("promoted entry (1) was evicted")
	}
	if _, ok := c.get(keyN(3)); !ok {
		t.Error("just-inserted entry (3) missing")
	}
}

func TestLRUFirstBuildWins(t *testing.T) {
	c := newLRU(4, 0)
	first, second := prepFor(t, 1, 100), prepFor(t, 1, 100)
	got, _ := c.add(keyN(9), first)
	if got != first {
		t.Fatal("first add did not return its own plan")
	}
	got, ev := c.add(keyN(9), second)
	if got != first || ev != 0 {
		t.Error("duplicate add replaced the resident plan")
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

func TestLRUByteBudget(t *testing.T) {
	p := prepFor(t, 1, 200)
	// Budget below two plans but above one: inserting a second must evict
	// the first; a single oversized plan must still be admitted.
	c := newLRU(10, p.Bytes()+p.Bytes()/2)
	c.add(keyN(1), p)
	c.add(keyN(2), prepFor(t, 2, 200))
	if c.len() != 1 {
		t.Fatalf("byte budget kept %d entries, want 1", c.len())
	}
	tiny := newLRU(10, 1) // budget below any plan
	tiny.add(keyN(3), p)
	if tiny.len() != 1 {
		t.Error("oversized single plan was refused")
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	eng := New(Config{CacheEntries: -1})
	y := randomSparse([]uint64{6, 5}, 80, 1)
	opt := core.Options{Algorithm: core.AlgSparta}
	for i := 0; i < 2; i++ {
		if _, hit, err := eng.Prepare(y, []int{0}, opt); err != nil || hit {
			t.Fatalf("disabled cache: hit=%v err=%v", hit, err)
		}
	}
	if s := eng.Stats(); s.Entries != 0 || s.Hits != 0 {
		t.Errorf("disabled cache counted: %+v", s)
	}
}

// TestEngineKeySeparation: different build settings or mode specs must not
// share cache entries, while a byte-identical clone must hit.
func TestEngineKeySeparation(t *testing.T) {
	eng := New(Config{})
	y := randomSparse([]uint64{6, 5, 4}, 90, 1)
	base := core.Options{Algorithm: core.AlgSparta}

	if _, hit, err := eng.Prepare(y, []int{0}, base); err != nil || hit {
		t.Fatalf("first prepare: hit=%v err=%v", hit, err)
	}
	if _, hit, _ := eng.Prepare(y.Clone(), []int{0}, base); !hit {
		t.Error("identical clone missed the cache")
	}
	if _, hit, _ := eng.Prepare(y, []int{1}, base); hit {
		t.Error("different cmodesY hit the cache")
	}
	chained := base
	chained.Kernel = core.KernelChained
	if _, hit, _ := eng.Prepare(y, []int{0}, chained); hit {
		t.Error("different kernel hit the cache")
	}
	buckets := base
	buckets.BucketsHtY = 4096
	if _, hit, _ := eng.Prepare(y, []int{0}, buckets); hit {
		t.Error("different bucket override hit the cache")
	}

	// Mutating the tensor invalidates by content, not by pointer.
	y.Vals[0] += 1
	if _, hit, _ := eng.Prepare(y, []int{0}, base); hit {
		t.Error("mutated tensor still hit the cache")
	}
}

func TestEngineMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Config{CacheEntries: 1, Metrics: reg})
	opt := core.Options{Algorithm: core.AlgSparta}
	y1 := randomSparse([]uint64{6, 5}, 60, 1)
	y2 := randomSparse([]uint64{6, 5}, 60, 2)
	eng.Prepare(y1, []int{0}, opt)
	eng.Prepare(y1, []int{0}, opt) // hit
	eng.Prepare(y2, []int{0}, opt) // miss, evicts y1's plan
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`sptc_engine_cache_total{outcome="hit"} 1`,
		`sptc_engine_cache_total{outcome="miss"} 2`,
		`sptc_engine_cache_evictions_total 1`,
		`sptc_engine_cache_entries 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestEngineNonSpartaFallthrough: baseline algorithms bypass the cache but
// still produce results through the engine entry point.
func TestEngineNonSpartaFallthrough(t *testing.T) {
	eng := New(Config{})
	x := randomSparse([]uint64{6, 5}, 60, 1)
	y := randomSparse([]uint64{5, 4}, 40, 2)
	for _, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgTwoPhase} {
		z, rep, err := eng.Contract(context.Background(), x, y, []int{1}, []int{0}, core.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %v: %v", alg, err)
		}
		if z.NNZ() == 0 || rep.HtYReused {
			t.Errorf("alg %v: nnz=%d reused=%v", alg, z.NNZ(), rep.HtYReused)
		}
	}
	if s := eng.Stats(); s.Hits+s.Misses != 0 {
		t.Errorf("baseline algorithms touched the cache: %+v", s)
	}
}

func TestAdmission(t *testing.T) {
	pr := prepFor(t, 1, 300)
	fp := EstimateFootprint(500, pr)
	if fp.HtY != pr.Bytes() || fp.HtAPerThread == 0 || fp.ZLocal == 0 {
		t.Fatalf("degenerate footprint %+v", fp)
	}
	if got := fp.Total(4); got != fp.HtY+4*fp.HtAPerThread+fp.ZLocal {
		t.Errorf("Total(4) = %d", got)
	}

	// Budget 0 disables the gate.
	if ok, _ := (Admission{}).Admit(fp, 4, 1<<40); !ok {
		t.Error("zero budget did not admit")
	}
	// A generous budget admits; a tiny one sheds.
	if ok, _ := (Admission{DRAMBudget: fp.Total(4) * 2}).Admit(fp, 4, 0); !ok {
		t.Error("generous budget shed the request")
	}
	if ok, _ := (Admission{DRAMBudget: 1024}).Admit(fp, 4, 0); ok {
		t.Error("tiny budget admitted the request")
	}
	// In-use bytes shrink the effective budget.
	budget := fp.Total(1) + 512
	adm := Admission{DRAMBudget: budget}
	if ok, _ := adm.Admit(fp, 1, 0); !ok {
		t.Error("exact-fit request shed")
	}
	if ok, _ := adm.Admit(fp, 1, budget-10); ok {
		t.Error("admitted past the in-use budget")
	}
}
