package engine

import (
	"testing"

	"sparta/internal/hetmem"
)

func TestPlanTiers(t *testing.T) {
	f := Footprint{HtY: 1 << 20, HtAPerThread: 1 << 20, ZLocal: 1 << 20}
	const nnzX = 1 << 20

	// Admission disabled: always the fast path, no windowing.
	tier, res := Admission{}.Plan(f, 2, nnzX, 0)
	if tier != TierDRAM || res.WindowNNZ != nnzX {
		t.Fatalf("no budget: tier %v res %+v", tier, res)
	}

	// Everything fits: DRAM tier.
	adm := Admission{DRAMBudget: 1 << 30}
	tier, res = adm.Plan(f, 2, nnzX, 0)
	if tier != TierDRAM || !res.HtYResident || res.SpillZ {
		t.Fatalf("generous budget: tier %v res %+v", tier, res)
	}

	// HtY fits but the working set does not: streamed, with a window
	// strictly smaller than X and at least the format's floor.
	adm = Admission{DRAMBudget: f.HtY + f.HtY/2}
	tier, res = adm.Plan(f, 2, nnzX, 0)
	if tier != TierStreamed {
		t.Fatalf("mid budget: tier %v", tier)
	}
	if !res.HtYResident {
		t.Fatal("streamed tier requires a resident HtY")
	}
	if res.WindowNNZ >= nnzX || res.WindowNNZ < hetmem.MinWindowNNZ {
		t.Fatalf("streamed window %d outside [%d, %d)", res.WindowNNZ, hetmem.MinWindowNNZ, nnzX)
	}
	// The windowed demand must undercut the full-footprint demand.
	if w, full := f.WindowedTotal(2, res.WindowNNZ, nnzX), f.Total(2); w >= full {
		t.Fatalf("windowed total %d not below full total %d", w, full)
	}

	// Even the table alone is too big: shed.
	adm = Admission{DRAMBudget: f.HtY / 2}
	tier, res = adm.Plan(f, 2, nnzX, 0)
	if tier != TierShed || res.HtYResident {
		t.Fatalf("tiny budget: tier %v res %+v", tier, res)
	}

	// In-use bytes shrink the effective budget: a generous budget nearly
	// consumed by admitted work sheds too.
	adm = Admission{DRAMBudget: 1 << 30}
	tier, _ = adm.Plan(f, 2, nnzX, (1<<30)-f.HtY/2)
	if tier != TierShed {
		t.Fatalf("budget consumed by in-use work: tier %v", tier)
	}
}

func TestWindowedTotal(t *testing.T) {
	f := Footprint{HtY: 1000, HtAPerThread: 100, ZLocal: 200}
	// A window spanning all of X is the full footprint.
	if got, want := f.WindowedTotal(4, 1<<20, 1<<20), f.Total(4); got != want {
		t.Fatalf("full window: %d, want %d", got, want)
	}
	// Half the window halves the per-window demand but never HtY.
	got := f.WindowedTotal(4, 1<<19, 1<<20)
	want := f.HtY + (f.HtAPerThread*4+f.ZLocal)/2
	if got != want {
		t.Fatalf("half window: %d, want %d", got, want)
	}
	// Thread defaulting matches Total.
	if f.WindowedTotal(0, 1<<20, 1<<20) != f.Total(0) {
		t.Fatal("thread defaulting differs between Total and WindowedTotal")
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierDRAM:     "dram",
		TierStreamed: "streamed",
		TierShed:     "shed",
		Tier(9):      "Tier(9)",
	} {
		if got := tier.String(); got != want {
			t.Errorf("Tier %d: %q, want %q", int(tier), got, want)
		}
	}
}
