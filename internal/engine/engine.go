// Package engine is the prepared-contraction layer over internal/core: it
// splits an SpTC into Prepare (permute + HtY build — the stage-① work the
// paper charges to every call) and Contract (stages ②–⑤ against the
// prepared table), and caches prepared plans in an LRU keyed by a content
// fingerprint of Y plus the contract-mode spec. Tensor-network chains and
// serving workloads that contract many X's against one Y skip the HtY build
// on every warm call (Report.HtYReused).
package engine

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/einsum"
	"sparta/internal/obs"
)

// Config sizes an Engine.
type Config struct {
	// CacheEntries caps the number of resident prepared plans
	// (0 = DefaultCacheEntries, negative = cache disabled: every
	// contraction prepares fresh).
	CacheEntries int
	// CacheBytes caps the summed PreparedY.Bytes() of resident plans
	// (0 = no byte budget). A single oversized plan is still admitted.
	CacheBytes uint64
	// Metrics, when non-nil, receives cache hit/miss/eviction counters and
	// residency gauges under the sptc_engine_* families.
	Metrics *obs.Registry
}

// DefaultCacheEntries is the plan-cache entry cap when Config leaves it 0.
const DefaultCacheEntries = 64

// Engine caches prepared contractions. Safe for concurrent use; the lock
// covers only cache bookkeeping — fingerprints and HtY builds run outside
// it, so concurrent distinct preparations proceed in parallel.
type Engine struct {
	mu    sync.Mutex
	cache *lruCache

	metrics   *obs.Registry
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	// pubEvictions is how many evictions have already been added to the
	// metrics counter; the delta-on-publish keeps the counter monotone
	// without holding the lock while touching the registry.
	pubEvictions atomic.Uint64
}

// Stats is a point-in-time snapshot of the plan cache.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes                   uint64
}

// New builds an engine from cfg.
func New(cfg Config) *Engine {
	e := &Engine{metrics: cfg.Metrics}
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	if entries > 0 {
		e.cache = newLRU(entries, cfg.CacheBytes)
	}
	return e
}

// modesString canonicalizes a contract-mode list for the cache key.
func modesString(modes []int) string {
	var b strings.Builder
	for i, m := range modes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	return b.String()
}

// keyFor derives the plan-cache key for (y, cmodesY) under opt's build
// settings. Exposed to tests through Fingerprint-level fuzzing only.
func keyFor(fp Fingerprint, cmodesY []int, opt core.Options) planKey {
	return planKey{
		fp:      fp,
		modes:   modesString(cmodesY),
		kernel:  opt.Kernel,
		buckets: opt.BucketsHtY,
		twoPass: opt.TwoPassHtY,
	}
}

// Prepare returns a prepared plan for contracting against cmodesY of y,
// reusing a cached one when y's content fingerprint and the build settings
// match. The returned bool is true on a cache hit (the HtY build was
// skipped). The fingerprint pass is O(nnz_Y) and runs on every call — it is
// what makes the cache safe against mutated tensors — but it is far cheaper
// than the build it saves (no allocation, no hashing-table construction).
func (e *Engine) Prepare(y *coo.Tensor, cmodesY []int, opt core.Options) (*core.PreparedY, bool, error) {
	return e.PrepareCtx(context.Background(), y, cmodesY, opt)
}

// PrepareCtx is Prepare with request-trace awareness: when ctx carries an
// obs.ReqTrace (serving requests do), the fingerprint+lookup and the HtY
// build become "cache lookup" / "hty prepare" phases of the request's span
// tree, and the plan fingerprint plus hit/miss outcome are tagged on it —
// that is how a slow POST /contract is attributed to a plan-cache miss
// rather than queue wait.
func (e *Engine) PrepareCtx(ctx context.Context, y *coo.Tensor, cmodesY []int, opt core.Options) (*core.PreparedY, bool, error) {
	rt := obs.ReqFrom(ctx)
	if e.cache == nil {
		sp := rt.StartPhase("hty prepare")
		pr, err := core.PrepareY(y, cmodesY, opt)
		sp.End()
		return pr, false, err
	}
	sp := rt.StartPhase("cache lookup")
	fp := FingerprintTensor(y, opt.Threads)
	k := keyFor(fp, cmodesY, opt)

	e.mu.Lock()
	pr, ok := e.cache.get(k)
	e.mu.Unlock()
	sp.End()
	rt.SetTag("plan_fp", fp.String())
	if ok {
		rt.SetTag("plan_cache", "hit")
		e.hits.Add(1)
		e.publishCache("hit")
		return pr, true, nil
	}
	rt.SetTag("plan_cache", "miss")

	// Miss: build outside the lock, then insert. If another goroutine
	// prepared the same key meanwhile, its table wins and ours is dropped —
	// both are equivalent, and converging on one keeps reuse exact.
	spB := rt.StartPhase("hty prepare")
	pr, err := core.PrepareY(y, cmodesY, opt)
	spB.End()
	if err != nil {
		return nil, false, err
	}
	e.mu.Lock()
	cached, evicted := e.cache.add(k, pr)
	e.mu.Unlock()
	e.misses.Add(1)
	e.evictions.Add(uint64(evicted))
	e.publishCache("miss")
	return cached, false, nil
}

// Contract computes Z = X ×_{cmodesX}^{cmodesY} Y through the plan cache
// when the algorithm supports it (AlgSparta); the baseline algorithms fall
// through to the one-shot path, so the Engine is a drop-in front end for
// every variant. Report.HtYReused tells the caller whether the warm path
// ran.
func (e *Engine) Contract(ctx context.Context, x, y *coo.Tensor, cmodesX, cmodesY []int, opt core.Options) (*coo.Tensor, *core.Report, error) {
	if opt.Algorithm != core.AlgSparta {
		return core.ContractCtx(ctx, x, y, cmodesX, cmodesY, opt)
	}
	pr, hit, err := e.PrepareCtx(ctx, y, cmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	z, rep, err := pr.Contract(ctx, x, cmodesX, opt)
	if err != nil {
		return nil, nil, err
	}
	if hit {
		// A cache hit is a reuse even if this engine instance never ran
		// the prep before (e.g. a plan inherited from a concurrent build).
		rep.HtYReused = true
		rep.HtYBuild = 0
	}
	return z, rep, nil
}

// Einsum is Contract with an Einstein-summation spec, including the
// output-mode permutation of the spec's right-hand side.
func (e *Engine) Einsum(ctx context.Context, spec string, x, y *coo.Tensor, opt core.Options) (*coo.Tensor, *core.Report, error) {
	ein, err := einsum.Parse(spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ein.CheckRanks(spec, x.Order(), y.Order()); err != nil {
		return nil, nil, err
	}
	z, rep, err := e.Contract(ctx, x, y, ein.CmodesX, ein.CmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	if !ein.IdentityOut {
		if err := z.Permute(ein.OutPerm); err != nil {
			return nil, nil, err
		}
		if !opt.SkipOutputSort {
			z.Sort(opt.Threads)
		}
	}
	return z, rep, nil
}

// Stats snapshots the cache counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Evictions: e.evictions.Load(),
	}
	if e.cache != nil {
		e.mu.Lock()
		s.Entries = e.cache.len()
		s.Bytes = e.cache.bytes
		e.mu.Unlock()
	}
	return s
}

// publishCache folds one cache outcome into the metrics registry.
func (e *Engine) publishCache(outcome string) {
	if e.metrics == nil {
		return
	}
	e.metrics.Counter("sptc_engine_cache_total", "plan cache lookups", "outcome", outcome).Inc()
	s := e.Stats()
	old := e.pubEvictions.Swap(s.Evictions)
	if s.Evictions > old {
		e.metrics.Counter("sptc_engine_cache_evictions_total", "plans evicted from the cache").Add(s.Evictions - old)
	}
	e.metrics.Gauge("sptc_engine_cache_entries", "resident prepared plans").Set(float64(s.Entries))
	e.metrics.Gauge("sptc_engine_cache_bytes", "summed bytes of resident prepared plans").Set(float64(s.Bytes))
}
