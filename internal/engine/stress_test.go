package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
)

// TestConcurrentSharedPrepared is the -race stress: many goroutines
// contract through one shared *PreparedY and one shared Engine while
// deadline contexts repeatedly fire mid-flight. Every completion must be
// either a correct result (identical to the serial reference) or a clean
// ctx error, and no goroutines may leak.
func TestConcurrentSharedPrepared(t *testing.T) {
	workers := 8
	rounds := 30
	if testing.Short() {
		workers, rounds = 4, 8
	}

	x := randomSparse([]uint64{12, 10, 8}, 600, 1)
	y := randomSparse([]uint64{8, 9, 7}, 500, 2)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}

	pr, err := core.PrepareY(y, []int{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := pr.Contract(context.Background(), x, []int{2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{CacheEntries: 4})

	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if r%3 == 1 {
					// A deadline short enough to sometimes fire mid-flight.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(r%5)*100*time.Microsecond)
				}
				var z *coo.Tensor
				var err error
				if r%2 == 0 {
					z, _, err = pr.Contract(ctx, x, []int{2}, opt)
				} else {
					z, _, err = eng.Contract(ctx, x, y, []int{2}, []int{0}, opt)
				}
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					if !z.Equal(ref) {
						errs <- fmt.Errorf("worker %d round %d: output differs", w, r)
					}
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					// Clean cancellation is a valid outcome.
				default:
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Leak check: allow the runtime a moment to retire worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, after)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if s := eng.Stats(); s.Hits+s.Misses == 0 {
		t.Error("engine saw no cache traffic")
	}
}

// TestConcurrentDistinctPreparations races many goroutines preparing
// different (and some identical) Y tensors through one engine; identical
// keys must converge on one cached plan ("first build wins").
func TestConcurrentDistinctPreparations(t *testing.T) {
	eng := New(Config{CacheEntries: 8})
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	ys := make([]*coo.Tensor, 4)
	for i := range ys {
		ys[i] = randomSparse([]uint64{7, 6, 5}, 200, int64(40+i))
	}

	var wg sync.WaitGroup
	plans := make([]*core.PreparedY, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pr, _, err := eng.Prepare(ys[g%len(ys)], []int{0}, opt)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g] = pr
		}(g)
	}
	wg.Wait()

	// All goroutines that prepared the same Y must hold the same plan.
	for g := range plans {
		base := plans[g%len(ys)]
		if plans[g] != base {
			t.Errorf("goroutine %d: got a different plan than goroutine %d for the same Y",
				g, g%len(ys))
		}
	}
	if s := eng.Stats(); s.Entries != len(ys) {
		t.Errorf("cache holds %d entries, want %d", s.Entries, len(ys))
	}
}
