package engine

import (
	"sparta/internal/core"
	"sparta/internal/hetmem"
)

// Footprint is the pre-run DRAM demand estimate for one contraction: the
// prepared HtY plus the per-thread accumulator tables and local output
// buffers the compute stages allocate. It feeds the same static planner the
// hetmem layer uses for placement (§4.2), so admission and placement agree
// on what "fits".
type Footprint struct {
	HtY          uint64 // resident prepared table (exact once built)
	HtAPerThread uint64 // Eq. 6 upper bound per worker
	ZLocal       uint64 // per-thread output staging upper bound
}

// zlEntryBytes is the accounted size of one Z_local entry (value + packed
// key), matching the profile layer's accounting.
const zlEntryBytes = 16

// EstimateFootprint bounds the memory a contraction of an nnzX-nonzero X
// against the prepared plan will demand. HtY is the table's exact resident
// size. HtA and Z_local do not exist yet, so both use worst-case bounds:
// Eq. 6 with nnz_Fmax(X) = nnzX (every X nonzero sharing one contract key)
// and the prepared table's true nnz_Fmax(Y); Z_local assumes every X nonzero
// matches a maximal Y fiber. Deliberately conservative — admission exists to
// protect the DRAM budget, and a shed request can retry, while an admitted
// request that thrashes cannot.
func EstimateFootprint(nnzX int, pr *core.PreparedY) Footprint {
	maxY := pr.MaxItemLen()
	return Footprint{
		HtY:          pr.Bytes(),
		HtAPerThread: hetmemEq6(pr.NumBuckets(), nnzX, maxY, pr.NumFreeModes()),
		ZLocal:       uint64(nnzX) * uint64(maxY) * zlEntryBytes,
	}
}

// hetmemEq6 mirrors hashtab.EstimateHtABytes without importing it here
// (identical constants); kept local so the admission formula is readable in
// one place: Size_ep*#Buckets + nnzFmaxX*nnzFmaxY*(Size_idx*|F_Y| + Size_val
// + Size_ep).
func hetmemEq6(buckets, nnzFmaxX, nnzFmaxY, freeModesY int) uint64 {
	const sizeEP, sizeIdx, sizeVal = 8, 8, 8
	return uint64(buckets)*sizeEP +
		uint64(nnzFmaxX)*uint64(nnzFmaxY)*(sizeIdx*uint64(freeModesY)+sizeVal+sizeEP)
}

// Total is the summed demand across threads.
func (f Footprint) Total(threads int) uint64 {
	if threads < 1 {
		threads = 1
	}
	return f.HtY + f.HtAPerThread*uint64(threads) + f.ZLocal
}

// Admission gates contractions against a DRAM budget shared with any
// already-admitted work. A zero budget disables the gate entirely.
type Admission struct {
	// DRAMBudget is the total byte budget (0 = admission disabled).
	DRAMBudget uint64
}

// Admit plans f's objects into the remaining budget (DRAMBudget minus
// inUse) with hetmem.PlanStatic under the paper's priority order and admits
// only when every object fits entirely — a partially resident HtA or HtY is
// exactly the slow path admission exists to avoid. The returned Frac is the
// planner's verdict, useful for logging which object failed to fit.
func (a Admission) Admit(f Footprint, threads int, inUse uint64) (bool, hetmem.Frac) {
	if a.DRAMBudget == 0 {
		return true, hetmem.AllDRAM()
	}
	rem := uint64(0)
	if a.DRAMBudget > inUse {
		rem = a.DRAMBudget - inUse
	}
	if threads < 1 {
		threads = 1
	}
	var sizes [hetmem.NumObjects]uint64
	sizes[hetmem.ObjHtY] = f.HtY
	sizes[hetmem.ObjHtA] = f.HtAPerThread * uint64(threads)
	sizes[hetmem.ObjZLocal] = f.ZLocal
	frac := hetmem.PlanStatic(sizes, rem, hetmem.SpartaPriority)
	ok := frac[hetmem.ObjHtY] >= 1 && frac[hetmem.ObjHtA] >= 1 && frac[hetmem.ObjZLocal] >= 1
	return ok, frac
}
