package engine

import (
	"fmt"

	"sparta/internal/core"
	"sparta/internal/hetmem"
)

// Footprint is the pre-run DRAM demand estimate for one contraction: the
// prepared HtY plus the per-thread accumulator tables and local output
// buffers the compute stages allocate. It feeds the same static planner the
// hetmem layer uses for placement (§4.2), so admission and placement agree
// on what "fits".
type Footprint struct {
	HtY          uint64 // resident prepared table (exact once built)
	HtAPerThread uint64 // Eq. 6 upper bound per worker
	ZLocal       uint64 // per-thread output staging upper bound
}

// zlEntryBytes is the accounted size of one Z_local entry (value + packed
// key), matching the profile layer's accounting.
const zlEntryBytes = 16

// EstimateFootprint bounds the memory a contraction of an nnzX-nonzero X
// against the prepared plan will demand. HtY is the table's exact resident
// size. HtA and Z_local do not exist yet, so both use worst-case bounds:
// Eq. 6 with nnz_Fmax(X) = nnzX (every X nonzero sharing one contract key)
// and the prepared table's true nnz_Fmax(Y); Z_local assumes every X nonzero
// matches a maximal Y fiber. Deliberately conservative — admission exists to
// protect the DRAM budget, and a shed request can retry, while an admitted
// request that thrashes cannot.
func EstimateFootprint(nnzX int, pr *core.PreparedY) Footprint {
	maxY := pr.MaxItemLen()
	return Footprint{
		HtY:          pr.Bytes(),
		HtAPerThread: hetmemEq6(pr.NumBuckets(), nnzX, maxY, pr.NumFreeModes()),
		ZLocal:       uint64(nnzX) * uint64(maxY) * zlEntryBytes,
	}
}

// hetmemEq6 mirrors hashtab.EstimateHtABytes without importing it here
// (identical constants); kept local so the admission formula is readable in
// one place: Size_ep*#Buckets + nnzFmaxX*nnzFmaxY*(Size_idx*|F_Y| + Size_val
// + Size_ep).
func hetmemEq6(buckets, nnzFmaxX, nnzFmaxY, freeModesY int) uint64 {
	const sizeEP, sizeIdx, sizeVal = 8, 8, 8
	return uint64(buckets)*sizeEP +
		uint64(nnzFmaxX)*uint64(nnzFmaxY)*(sizeIdx*uint64(freeModesY)+sizeVal+sizeEP)
}

// Total is the summed demand across threads.
func (f Footprint) Total(threads int) uint64 {
	if threads < 1 {
		threads = 1
	}
	return f.HtY + f.HtAPerThread*uint64(threads) + f.ZLocal
}

// WindowedTotal bounds the resident demand of a streamed run that walks X
// in windows of windowNNZ of nnzX non-zeros: the whole table plus the
// window-scaled accumulator and staging bounds (both Eq. 6-style bounds are
// proportional to the X non-zeros in flight).
func (f Footprint) WindowedTotal(threads, windowNNZ, nnzX int) uint64 {
	if threads < 1 {
		threads = 1
	}
	frac := 1.0
	if nnzX > 0 && windowNNZ < nnzX {
		frac = float64(windowNNZ) / float64(nnzX)
	}
	scaled := float64(f.HtAPerThread*uint64(threads)+f.ZLocal) * frac
	return f.HtY + uint64(scaled)
}

// Admission gates contractions against a DRAM budget shared with any
// already-admitted work. A zero budget disables the gate entirely.
type Admission struct {
	// DRAMBudget is the total byte budget (0 = admission disabled).
	DRAMBudget uint64
}

// Admit plans f's objects into the remaining budget (DRAMBudget minus
// inUse) with hetmem.PlanStatic under the paper's priority order and admits
// only when every object fits entirely — a partially resident HtA or HtY is
// exactly the slow path admission exists to avoid. The returned Frac is the
// planner's verdict, useful for logging which object failed to fit.
func (a Admission) Admit(f Footprint, threads int, inUse uint64) (bool, hetmem.Frac) {
	if a.DRAMBudget == 0 {
		return true, hetmem.AllDRAM()
	}
	rem := uint64(0)
	if a.DRAMBudget > inUse {
		rem = a.DRAMBudget - inUse
	}
	if threads < 1 {
		threads = 1
	}
	frac := hetmem.PlanStatic(a.sizes(f, threads), rem, hetmem.SpartaPriority)
	ok := frac[hetmem.ObjHtY] >= 1 && frac[hetmem.ObjHtA] >= 1 && frac[hetmem.ObjZLocal] >= 1
	return ok, frac
}

// sizes lays f out as the planner's object vector. Z does not exist before
// the run; its demand is proxied by the ZLocal bound (every staged entry
// becomes at most one output non-zero of comparable byte weight), which is
// what decides heap-vs-spill for the output.
func (a Admission) sizes(f Footprint, threads int) [hetmem.NumObjects]uint64 {
	var sizes [hetmem.NumObjects]uint64
	sizes[hetmem.ObjHtY] = f.HtY
	sizes[hetmem.ObjHtA] = f.HtAPerThread * uint64(threads)
	sizes[hetmem.ObjZLocal] = f.ZLocal
	sizes[hetmem.ObjZ] = f.ZLocal
	return sizes
}

// Tier is the execution tier admission assigns a contraction.
type Tier int

const (
	// TierDRAM is the fast path: the whole footprint fits, the in-memory
	// driver runs.
	TierDRAM Tier = iota
	// TierStreamed is the degrade-gracefully path: HtY fits but the full
	// working set does not, so the windowed out-of-core driver runs with
	// the residency the planner picked.
	TierStreamed
	// TierShed means even the prepared table alone exceeds the budget —
	// streaming probes HtY randomly on every non-zero, so a partially
	// resident table would thrash; this is the only remaining 503 case.
	TierShed
)

// String names the tier for trace tags, replies, and metrics labels.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierStreamed:
		return "streamed"
	case TierShed:
		return "shed"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Plan assigns f the cheapest tier the remaining budget allows: the
// in-memory path when everything fits, the windowed streaming path when
// only the full working set misses (with the window size and Z spill
// decision from hetmem.PlanResidency), and shedding only when HtY alone
// cannot fit. nnzX scales the window; threads defaulting matches Admit.
func (a Admission) Plan(f Footprint, threads, nnzX int, inUse uint64) (Tier, hetmem.Residency) {
	if a.DRAMBudget == 0 {
		return TierDRAM, hetmem.Residency{Frac: hetmem.AllDRAM(), HtYResident: true, WindowNNZ: nnzX}
	}
	if threads < 1 {
		threads = 1
	}
	ok, frac := a.Admit(f, threads, inUse)
	if ok {
		res := hetmem.Residency{Frac: frac, HtYResident: true, WindowNNZ: nnzX}
		res.SpillZ = frac[hetmem.ObjZ] < 1
		return TierDRAM, res
	}
	rem := uint64(0)
	if a.DRAMBudget > inUse {
		rem = a.DRAMBudget - inUse
	}
	res := hetmem.PlanResidency(a.sizes(f, threads), nnzX, rem)
	if !res.HtYResident {
		return TierShed, res
	}
	return TierStreamed, res
}
