// Package spa implements the sparse accumulator (SPA) used by the baseline
// SpTC-SPA algorithm (Algorithm 1 in the paper): a dynamic array of
// (free-index tuple, value) pairs searched linearly, exactly the SpGEMM SPA
// of Gilbert/Moler/Schreiber extended to arbitrary-order free-index tuples.
//
// Its O(|SPA|) lookup is the accumulation bottleneck Figure 2 attributes 54%
// of SpTC time to; package hashtab's HtA replaces it in Sparta.
package spa

// SPA accumulates products keyed by the free-index tuple of Y. Tuples are
// stored flat with a fixed stride to avoid per-entry allocations.
type SPA struct {
	stride int      // number of free modes in a key tuple (may be 0)
	keys   []uint32 // len = stride * Len()
	vals   []float64
	// Compares counts key-element comparisons performed by Add, the
	// quantity behind the O(2 * nnz_X * nnz_Y) term of Eq. 3.
	Compares uint64
}

// New returns a SPA for key tuples of the given stride.
func New(stride int) *SPA {
	return &SPA{stride: stride}
}

// Len returns the number of distinct keys currently held.
func (s *SPA) Len() int { return len(s.vals) }

// Reset clears the accumulator for the next sub-tensor, keeping capacity.
func (s *SPA) Reset() {
	s.keys = s.keys[:0]
	s.vals = s.vals[:0]
}

// Add accumulates v under the tuple key (len == stride): linear search, add
// when present, append otherwise — Lines 7-10 of Algorithm 1.
func (s *SPA) Add(key []uint32, v float64) {
	n := len(s.vals)
	st := s.stride
search:
	for i := 0; i < n; i++ {
		base := i * st
		for k := 0; k < st; k++ {
			s.Compares++
			if s.keys[base+k] != key[k] {
				continue search
			}
		}
		s.vals[i] += v
		return
	}
	s.keys = append(s.keys, key...)
	s.vals = append(s.vals, v)
}

// Entry returns the i-th (key tuple, value) pair in insertion order; the key
// slice aliases internal storage and is valid until the next Reset.
func (s *SPA) Entry(i int) ([]uint32, float64) {
	return s.keys[i*s.stride : (i+1)*s.stride], s.vals[i]
}

// Bytes reports the current payload footprint, for memory accounting.
func (s *SPA) Bytes() uint64 {
	return uint64(len(s.keys))*4 + uint64(len(s.vals))*8
}
