package spa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAccumulates(t *testing.T) {
	s := New(2)
	s.Add([]uint32{1, 2}, 1.5)
	s.Add([]uint32{3, 4}, 2.0)
	s.Add([]uint32{1, 2}, 0.5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	k, v := s.Entry(0)
	if k[0] != 1 || k[1] != 2 || v != 2.0 {
		t.Fatalf("entry 0 = %v %v", k, v)
	}
	k, v = s.Entry(1)
	if k[0] != 3 || k[1] != 4 || v != 2.0 {
		t.Fatalf("entry 1 = %v %v", k, v)
	}
}

func TestReset(t *testing.T) {
	s := New(1)
	s.Add([]uint32{7}, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	s.Add([]uint32{7}, 2)
	if _, v := s.Entry(0); v != 2 {
		t.Fatal("stale value after reset")
	}
}

func TestZeroStride(t *testing.T) {
	// Full contraction: every Add hits the single empty-tuple key.
	s := New(0)
	s.Add(nil, 1)
	s.Add(nil, 2)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if _, v := s.Entry(0); v != 3 {
		t.Fatalf("v = %v, want 3", v)
	}
}

func TestComparesCounted(t *testing.T) {
	s := New(1)
	s.Add([]uint32{0}, 1)
	before := s.Compares
	s.Add([]uint32{0}, 1) // one entry, one comparison
	if s.Compares != before+1 {
		t.Fatalf("Compares delta = %d", s.Compares-before)
	}
}

// Property: SPA total equals a map-based accumulation regardless of order.
func TestQuickMatchesMap(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(2)
		ref := map[[2]uint32]float64{}
		key := make([]uint32, 2)
		for i := 0; i < n; i++ {
			key[0], key[1] = uint32(rng.Intn(5)), uint32(rng.Intn(5))
			v := rng.Float64()
			s.Add(key, v)
			ref[[2]uint32{key[0], key[1]}] += v
		}
		if s.Len() != len(ref) {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			k, v := s.Entry(i)
			want := ref[[2]uint32{k[0], k[1]}]
			d := v - want
			if d < -1e-12 || d > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	s := New(3)
	s.Add([]uint32{1, 2, 3}, 1)
	if s.Bytes() != 3*4+8 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}
