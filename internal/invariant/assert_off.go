//go:build !assert

package invariant

// Enabled reports whether assertions are compiled in. It is a constant so
// `if invariant.Enabled { ... }` blocks vanish entirely from default builds.
const Enabled = false

// Assert is a no-op without the assert build tag.
func Assert(bool, string) {}

// Assertf is a no-op without the assert build tag.
func Assertf(bool, string, ...any) {}
