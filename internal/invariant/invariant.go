// Package invariant provides assertion helpers for the documented invariants
// of the lock-free SpTC hot path — the properties PR 1 moved out of the type
// system and into comments: probe tables keep a free slot so probe sequences
// terminate, accumulators stay below load factor 1/2, the two-pass HtY build's
// position sweep is a bijection onto the item arena, and LN encodes never
// exceed the radix cardinality checked at construction.
//
// Assertions compile to nothing by default. Building with `-tags assert`
// turns them into panics, which is how `make verify` runs the race tests of
// the hot packages:
//
//	go test -race -tags assert ./internal/hashtab ./internal/core
//
// Hot loops must gate their assertion blocks on the Enabled constant so the
// default build pays nothing — the compiler deletes the whole block:
//
//	if invariant.Enabled {
//		invariant.Assertf(probes <= max, "probe overrun: %d > %d", probes, max)
//	}
//
// Cold paths (construction, merge phases) may call Assert directly; the
// no-assert stubs are empty and inline away, but argument expressions are
// still evaluated, so anything with a measurable cost belongs behind Enabled.
package invariant
