package invariant

import "testing"

// The package has two personalities; this test is written to pass under
// both, so it can run inside the plain and the -tags assert verify sweeps.

func TestAssertTrueNeverPanics(t *testing.T) {
	Assert(true, "must not fire")
	Assertf(true, "must not fire %d", 1)
}

func TestAssertFalse(t *testing.T) {
	fired := func(f func()) (p bool) {
		defer func() { p = recover() != nil }()
		f()
		return
	}
	if got := fired(func() { Assert(false, "boom") }); got != Enabled {
		t.Fatalf("Assert(false) panicked=%v, want %v (Enabled)", got, Enabled)
	}
	if got := fired(func() { Assertf(false, "boom %d", 2) }); got != Enabled {
		t.Fatalf("Assertf(false) panicked=%v, want %v (Enabled)", got, Enabled)
	}
}
