//go:build assert

package invariant

import "fmt"

// Enabled reports whether assertions are compiled in. It is a constant so
// `if invariant.Enabled { ... }` blocks vanish entirely from default builds.
const Enabled = true

// Assert panics with msg when cond is false.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant violated: " + msg)
	}
}

// Assertf panics with the formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
