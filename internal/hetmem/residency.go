package hetmem

import "sparta/internal/coo"

// Residency is the static placement priority (§4.2) repurposed for real
// tiered execution: instead of simulating which fraction of each object
// would sit in DRAM vs PMM, it decides which objects live in anonymous
// memory (heap) and which must be file-backed or windowed so the
// contraction *runs* inside the budget rather than being shed.
type Residency struct {
	// Frac is PlanStatic's verdict over the full (unwindowed) footprint —
	// the same fractions admission logs, kept for diagnostics.
	Frac Frac
	// HtYResident reports whether the prepared table fits the budget
	// whole. The streamed driver probes HtY randomly on every X non-zero;
	// a partially resident table is the thrashing case the paper's
	// priority order exists to avoid, so HtY either fits or the request
	// genuinely cannot run (the only remaining shed case).
	HtYResident bool
	// SpillZ directs the output through a file-backed spool: the planner
	// could not fit Z in the budget left after the hotter objects.
	SpillZ bool
	// WindowNNZ caps the X non-zeros per streamed window so that one
	// window's accumulators and output staging fit in the budget HtY
	// leaves behind. Equal to nnzX when no windowing is needed.
	WindowNNZ int
}

// MinWindowNNZ floors the planned window size at the v2 file format's chunk
// granularity — mapped streams cannot cut windows finer than the stored
// index, and microscopic windows would drown the contraction in per-window
// overhead anyway. A budget too small even for this still runs; it just
// overshoots the budget by at most one chunk's working set.
const MinWindowNNZ = coo.DefaultWindowNNZ

// PlanResidency turns a footprint and a DRAM budget into an executable
// placement. sizes carries the Eq. 5/6 bounds for the full contraction
// (HtA summed across threads); nnzX scales the window: HtA and Zlocal
// bounds are proportional to the X non-zeros in flight, so capping the
// window at w caps their demand at sizes*(w/nnzX). A zero budget means
// "unconstrained": everything resident, one window.
func PlanResidency(sizes [NumObjects]uint64, nnzX int, dramBytes uint64) Residency {
	if dramBytes == 0 {
		return Residency{Frac: AllDRAM(), HtYResident: true, WindowNNZ: nnzX}
	}
	frac := PlanStatic(sizes, dramBytes, SpartaPriority)
	r := Residency{
		Frac:        frac,
		HtYResident: frac[ObjHtY] >= 1,
		SpillZ:      frac[ObjZ] < 1,
		WindowNNZ:   nnzX,
	}
	if !r.HtYResident {
		return r
	}
	// Budget left for the per-window working set after the whole table.
	rem := dramBytes - sizes[ObjHtY]
	working := sizes[ObjHtA] + sizes[ObjZLocal]
	if working <= rem || nnzX == 0 {
		return r // fits unwindowed
	}
	w := int(float64(nnzX) * float64(rem) / float64(working))
	if w < MinWindowNNZ {
		w = MinWindowNNZ
	}
	if w > nnzX {
		w = nnzX
	}
	r.WindowNNZ = w
	return r
}
