package hetmem

import (
	"time"

	"sparta/internal/core"
)

// Frac is a static placement: the fraction of each object resident in DRAM
// (the rest is on PMM). The paper's placements are whole-object except when
// an object only partially fits, which the fraction models directly.
type Frac [NumObjects]float64

// AllDRAM and AllPMM are the two extreme placements.
func AllDRAM() Frac {
	var f Frac
	for i := range f {
		f[i] = 1
	}
	return f
}

func AllPMM() Frac { return Frac{} }

// DefaultMemStall is the default memory-stall fraction: the share of each
// stage's wall time that is exposed memory latency/bandwidth and therefore
// scales with device placement. The rest (compute, cache hits, overlapped
// misses) is placement-invariant. The paper's end-to-end DRAM-vs-Optane
// gaps (DRAM-only ~24% over Optane-only on average, up to ~65%) pin this
// well below 1 even though SpTC is "memory-intensive": out-of-order cores
// and many threads hide most of the raw device difference.
const DefaultMemStall = 0.12

// modelNS returns the raw modeled nanoseconds of one stage under a
// placement: each object's traffic costs a DRAM/PMM blend.
func (pf *Profile) modelNS(s core.Stage, f Frac) float64 {
	var ns float64
	for o := Object(0); o < NumObjects; o++ {
		tr := pf.Traffic[s][o]
		if tr.zero() {
			continue
		}
		ns += f[o]*DRAM.cost(tr) + (1-f[o])*PMM.cost(tr)
	}
	return ns
}

// StageTime returns the simulated stage time under placement f with
// extraModelNS of policy-induced traffic (model-space nanoseconds, e.g.
// cache fills or page migrations) added. The measured all-DRAM wall
// anchors the absolute scale; the model sets the slowdown ratio, applied
// to the memory-stall share of the stage.
func (pf *Profile) StageTime(s core.Stage, f Frac, extraModelNS float64) time.Duration {
	model := pf.modelNS(s, f) + extraModelNS
	base := pf.modelNS(s, AllDRAM())
	beta := pf.MemStall
	if beta <= 0 || beta > 1 {
		beta = DefaultMemStall
	}
	if pf.Measured[s] > 0 && base > 0 {
		ratio := model / base
		return time.Duration(float64(pf.Measured[s]) * ((1 - beta) + beta*ratio))
	}
	threads := pf.Threads
	if threads < 1 {
		threads = 1
	}
	return time.Duration(model / float64(threads))
}

// Time is the simulated end-to-end time under a static placement.
func (pf *Profile) Time(f Frac) time.Duration {
	var t time.Duration
	for s := core.Stage(0); s < core.NumStages; s++ {
		t += pf.StageTime(s, f, 0)
	}
	return t
}

// Result is one policy's simulated outcome.
type Result struct {
	Policy    string
	StageTime [core.NumStages]time.Duration
	Total     time.Duration
	// Frac is the (average effective) DRAM fraction per object.
	Frac Frac
	// MigratedBytes is the data-movement volume the policy induced beyond
	// demand traffic (page migrations, cache fills/evictions).
	MigratedBytes uint64
	// DRAMBytes/PMMBytes are total demand bytes served by each device,
	// feeding the Fig. 8 bandwidth traces.
	DRAMBytes, PMMBytes [core.NumStages]uint64
}

// finishResult fills stage times (adding per-stage model-space overhead)
// and traffic splits for a static effective placement.
func (pf *Profile) finishResult(name string, f Frac, overheadNS [core.NumStages]float64, migrated uint64) Result {
	r := Result{Policy: name, Frac: f, MigratedBytes: migrated}
	for s := core.Stage(0); s < core.NumStages; s++ {
		t := pf.StageTime(s, f, overheadNS[s])
		r.StageTime[s] = t
		r.Total += t
		for o := Object(0); o < NumObjects; o++ {
			tr := pf.Traffic[s][o]
			bytes := tr.SeqReadBytes + tr.SeqWriteBytes + (tr.RandReads+tr.RandWrites)*tr.OpBytes
			r.DRAMBytes[s] += uint64(float64(bytes) * f[o])
			r.PMMBytes[s] += uint64(float64(bytes) * (1 - f[o]))
		}
	}
	return r
}
