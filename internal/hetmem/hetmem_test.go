package hetmem

import (
	"testing"
	"time"

	"sparta/internal/core"
	"sparta/internal/gen"
)

// runProfile contracts a small preset with Sparta and derives its profile.
func runProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := gen.FindPreset("Chicago")
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate(p, 4000, 1)
	w := gen.Workload{Preset: p, Modes: 2}
	cx, cy := w.ContractModes()
	z, rep, err := core.Contract(x, x, cx, cy, core.Options{Algorithm: core.AlgSparta, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf := FromReport(rep, x.Order(), x.Order(), z.Order())
	// Replace the measured stage walls (timing noise on a loaded machine)
	// with the model's own all-DRAM baseline so assertions about the
	// model's structure are deterministic.
	for s := core.Stage(0); s < core.NumStages; s++ {
		pf.Measured[s] = time.Duration(pf.modelNS(s, AllDRAM()))
	}
	return pf
}

func TestTable2Classification(t *testing.T) {
	pf := runProfile(t)
	tab := Table2(pf)
	// The paper's Table 2, row by row.
	want := map[[2]int]string{
		{int(core.StageInput), int(ObjX)}:      "Ran, RW",
		{int(core.StageInput), int(ObjY)}:      "Seq, RO",
		{int(core.StageInput), int(ObjHtY)}:    "Ran, RW",
		{int(core.StageSearch), int(ObjX)}:     "Seq, RO",
		{int(core.StageSearch), int(ObjHtY)}:   "Ran, RO",
		{int(core.StageAccum), int(ObjHtA)}:    "Ran, RW",
		{int(core.StageAccum), int(ObjZLocal)}: "Seq, WO",
		{int(core.StageWrite), int(ObjZLocal)}: "Seq, RO",
		{int(core.StageWrite), int(ObjZ)}:      "Seq, WO",
		{int(core.StageSort), int(ObjZ)}:       "Ran, RW",
	}
	for k, v := range want {
		if got := tab[k[0]][k[1]]; got != v {
			t.Errorf("stage %v obj %v: %q, want %q", core.Stage(k[0]), Object(k[1]), got, v)
		}
	}
	// Cells the paper leaves empty must be empty.
	if tab[int(core.StageSearch)][int(ObjHtA)] != "-" {
		t.Error("HtA should be untouched in index search")
	}
	if tab[int(core.StageSort)][int(ObjX)] != "-" {
		t.Error("X should be untouched in output sorting")
	}
}

func TestDeviceCostOrdering(t *testing.T) {
	// PMM must never be faster than DRAM for the same pattern.
	pats := []Pattern{
		{SeqReadBytes: 1 << 24},
		{SeqWriteBytes: 1 << 24},
		{RandReads: 1 << 16, OpBytes: 64},
		{RandWrites: 1 << 16, OpBytes: 64},
		{SeqReadBytes: 1 << 20, RandWrites: 1 << 10, OpBytes: 16},
	}
	for i, p := range pats {
		if PMM.cost(p) < DRAM.cost(p) {
			t.Errorf("pattern %d: PMM cheaper than DRAM", i)
		}
	}
	// Random reads must hurt more than sequential reads on PMM,
	// relatively speaking (the paper's observation 2).
	seq := Pattern{SeqReadBytes: 1 << 22}
	rnd := Pattern{RandReads: (1 << 22) / 64, OpBytes: 64}
	seqRatio := PMM.cost(seq) / DRAM.cost(seq)
	rndRatio := PMM.cost(rnd) / DRAM.cost(rnd)
	if rndRatio <= seqRatio {
		t.Errorf("random ratio %.2f <= sequential ratio %.2f", rndRatio, seqRatio)
	}
}

// nell2LikeProfile fabricates a profile with the paper's Nell-2 2-mode
// traffic balance (nnz_Z comparable to nnz_X, probe-heavy index search) so
// the Fig. 3 ordering assertions are about the model, not about which
// synthetic workload happened to be generated.
func nell2LikeProfile() *Profile {
	rep := &core.Report{
		Algorithm: core.AlgSparta, Threads: 12,
		NNZX: 1_000_000, NNZY: 1_000_000, NNZZ: 1_200_000,
		ProbesHtY: 1_100_000, HitsY: 900_000, MissY: 100_000,
		Products: 4_000_000, ProbesHtA: 5_000_000,
		AccumHits: 2_800_000, AccumMiss: 1_200_000,
		BytesX: 20 << 20, BytesY: 20 << 20, BytesHtY: 40 << 20,
		BytesHtA: 8 << 20, BytesZLocal: 20 << 20, BytesZ: 24 << 20,
	}
	pf := FromReport(rep, 3, 3, 2)
	for s := core.Stage(0); s < core.NumStages; s++ {
		pf.Measured[s] = time.Duration(pf.modelNS(s, AllDRAM()))
	}
	return pf
}

func TestFig3Shape(t *testing.T) {
	pf := nell2LikeProfile()
	base := pf.Time(AllDRAM())
	var times [NumObjects]time.Duration
	for o := Object(0); o < NumObjects; o++ {
		f := AllDRAM()
		f[o] = 0
		times[o] = pf.Time(f)
		if times[o] < base {
			t.Errorf("placing %v in PMM made the run faster", o)
		}
	}
	// Observation 3: X and Y placement barely matters (< 12% loss).
	for _, o := range []Object{ObjX, ObjY} {
		loss := float64(times[o]-base) / float64(base)
		if loss > 0.12 {
			t.Errorf("placing %v in PMM costs %.1f%%, expected negligible", o, 100*loss)
		}
	}
	// HtY must be the most placement-sensitive object (Fig. 3's tallest
	// bar) and more sensitive than Z.
	for o := Object(0); o < NumObjects; o++ {
		if o != ObjHtY && times[o] > times[ObjHtY] {
			t.Errorf("%v more sensitive than HtY", o)
		}
	}
	if times[ObjHtA] <= times[ObjZ] {
		t.Error("HtA should be more placement-sensitive than Z")
	}
	// The real recorded profile must still respect the universal
	// invariants (never faster on PMM; X/Y streams negligible).
	real := runProfile(t)
	rbase := real.Time(AllDRAM())
	for o := Object(0); o < NumObjects; o++ {
		f := AllDRAM()
		f[o] = 0
		if real.Time(f) < rbase {
			t.Errorf("recorded profile: placing %v in PMM made the run faster", o)
		}
	}
}

func TestPlanStaticPriority(t *testing.T) {
	var sizes [NumObjects]uint64
	sizes[ObjHtY] = 100
	sizes[ObjHtA] = 50
	sizes[ObjZLocal] = 50
	sizes[ObjZ] = 200
	// Budget covers HtY fully and half of HtA.
	f := PlanStatic(sizes, 125, SpartaPriority)
	if f[ObjHtY] != 1 {
		t.Errorf("HtY frac = %v", f[ObjHtY])
	}
	if f[ObjHtA] != 0.5 {
		t.Errorf("HtA frac = %v", f[ObjHtA])
	}
	if f[ObjZLocal] != 0 || f[ObjZ] != 0 {
		t.Error("lower-priority objects should be on PMM")
	}
	if f[ObjX] != 0 || f[ObjY] != 0 {
		t.Error("X/Y must stay on PMM")
	}
	// Unlimited budget: everything listed fits.
	f = PlanStatic(sizes, 1<<40, SpartaPriority)
	for _, o := range SpartaPriority {
		if f[o] != 1 {
			t.Errorf("%v not fully placed with huge budget", o)
		}
	}
}

func TestPoliciesOrdering(t *testing.T) {
	pf := nell2LikeProfile()
	dram := pf.PeakBytes() / 4
	res := map[string]Result{}
	for _, pol := range AllPolicies() {
		res[pol.Name()] = pol.Evaluate(pf, dram)
	}
	dramOnly := res["DRAM-only"].Total
	optane := res["Optane-only"].Total
	sparta := res["Sparta"].Total
	mem := res["Memory mode"].Total
	ial := res["IAL"].Total
	if !(dramOnly <= sparta && sparta <= optane) {
		t.Errorf("expected DRAM <= Sparta <= Optane, got %v %v %v", dramOnly, sparta, optane)
	}
	if sparta > mem {
		// Sparta must beat the hardware cache.
		t.Errorf("Sparta (%v) slower than Memory mode (%v)", sparta, mem)
	}
	if sparta > ial {
		t.Errorf("Sparta (%v) slower than IAL (%v)", sparta, ial)
	}
	if mem > ial {
		// The paper: Memory mode beats IAL (IAL's migrations are costly).
		t.Errorf("Memory mode (%v) slower than IAL (%v)", mem, ial)
	}
	// §5.5: IAL's migration overhead eats its placement benefit — on
	// average it must not meaningfully beat Optane-only.
	if float64(ial) < 0.95*float64(optane) {
		t.Errorf("IAL (%v) beats Optane-only (%v) by more than 5%%", ial, optane)
	}
	// Migration accounting: only the dynamic policies move data.
	if res["Sparta"].MigratedBytes != 0 || res["DRAM-only"].MigratedBytes != 0 {
		t.Error("static policies reported migrations")
	}
	if res["IAL"].MigratedBytes == 0 || res["Memory mode"].MigratedBytes == 0 {
		t.Error("dynamic policies reported no migrations")
	}
}

func TestPolicyBudgetMonotonicity(t *testing.T) {
	pf := runProfile(t)
	peak := pf.PeakBytes()
	var prev time.Duration
	for i, frac := range []uint64{0, peak / 8, peak / 2, peak, peak * 2} {
		tot := (SpartaStatic{}).Evaluate(pf, frac).Total
		if i > 0 && tot > prev+prev/100 {
			t.Errorf("more DRAM made Sparta slower: %v -> %v", prev, tot)
		}
		prev = tot
	}
	// Zero budget equals Optane-only.
	zero := (SpartaStatic{}).Evaluate(pf, 0).Total
	opt := (OptaneOnly{}).Evaluate(pf, 0).Total
	d := float64(zero-opt) / float64(opt)
	if d < -0.01 || d > 0.01 {
		t.Errorf("Sparta with zero DRAM (%v) != Optane-only (%v)", zero, opt)
	}
}

func TestBandwidthTrace(t *testing.T) {
	pf := runProfile(t)
	r := (SpartaStatic{}).Evaluate(pf, pf.PeakBytes()/4)
	pts := BandwidthTrace(r, 50)
	if len(pts) < int(core.NumStages) {
		t.Fatalf("trace has %d points", len(pts))
	}
	var last time.Duration
	for _, p := range pts {
		if p.At < last {
			t.Fatal("trace not monotone in time")
		}
		last = p.At
		if p.DRAM < 0 || p.PMM < 0 {
			t.Fatal("negative bandwidth")
		}
	}
	if BandwidthTrace(Result{}, 10) != nil {
		t.Fatal("empty result should give empty trace")
	}
}

func TestPeakBytes(t *testing.T) {
	pf := runProfile(t)
	if pf.PeakBytes() == 0 {
		t.Fatal("peak bytes zero")
	}
	var sum uint64
	for _, s := range pf.Sizes {
		sum += s
	}
	if pf.PeakBytes() != sum {
		t.Fatal("peak != sum of sizes")
	}
}

func TestPatternKind(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Pattern{}, "-"},
		{Pattern{SeqReadBytes: 1}, "Seq, RO"},
		{Pattern{SeqWriteBytes: 1}, "Seq, WO"},
		{Pattern{SeqReadBytes: 1, SeqWriteBytes: 1}, "Seq, RW"},
		{Pattern{RandReads: 1}, "Ran, RO"},
		{Pattern{RandWrites: 1}, "Ran, WO"},
		{Pattern{RandReads: 1, RandWrites: 1}, "Ran, RW"},
		{Pattern{SeqReadBytes: 1, RandWrites: 1}, "Ran, RW"},
	}
	for _, c := range cases {
		if got := c.p.Kind(); got != c.want {
			t.Errorf("Kind(%+v) = %q, want %q", c.p, got, c.want)
		}
	}
}

// syntheticResult builds a Result with every stage active and known traffic,
// for exact-accounting tests of BandwidthTrace.
func syntheticResult() Result {
	var r Result
	durs := []time.Duration{7 * time.Millisecond, 31 * time.Millisecond,
		13 * time.Millisecond, 3 * time.Millisecond, 11 * time.Millisecond}
	for s := core.Stage(0); s < core.NumStages; s++ {
		r.StageTime[s] = durs[s]
		r.Total += durs[s]
		r.DRAMBytes[s] = uint64(1000003 * (int(s) + 1))
		r.PMMBytes[s] = uint64(700001 * (5 - int(s)))
	}
	r.MigratedBytes = 2500007
	return r
}

// TestBandwidthTracePointCount pins the sample-allocation fix: the trace must
// contain exactly the requested number of points (the truncating-division
// version under-allocated), for counts from "fewer than stages" upward.
func TestBandwidthTracePointCount(t *testing.T) {
	r := syntheticResult()
	for _, samples := range []int{1, 3, 5, 7, 19, 20, 50, 100, 997} {
		pts := BandwidthTrace(r, samples)
		want := samples
		if want < int(core.NumStages) {
			want = int(core.NumStages) // one point per active stage minimum
		}
		if len(pts) != want {
			t.Errorf("samples=%d: got %d points, want %d", samples, len(pts), want)
		}
		var last time.Duration
		for i, p := range pts {
			if p.At <= last {
				t.Fatalf("samples=%d: point %d at %v not after %v", samples, i, p.At, last)
			}
			last = p.At
		}
		if last != r.Total {
			t.Errorf("samples=%d: last point at %v, want run end %v", samples, last, r.Total)
		}
	}
}

// TestBandwidthTraceByteConservation: integrating bandwidth over the point
// intervals must recover the demand bytes plus the migration split, per
// device — the invariant that makes the Fig. 8 trace an honest rendering of
// the cost model rather than a sketch.
func TestBandwidthTraceByteConservation(t *testing.T) {
	r := syntheticResult()
	for _, samples := range []int{5, 23, 64, 500} {
		pts := BandwidthTrace(r, samples)
		var dram, pmm float64
		var prev time.Duration
		for _, p := range pts {
			w := float64(p.At - prev) // ns; bandwidth is bytes/ns
			dram += p.DRAM * w
			pmm += p.PMM * w
			prev = p.At
		}
		var wantDRAM, wantPMM float64
		for s := core.Stage(0); s < core.NumStages; s++ {
			wantDRAM += float64(r.DRAMBytes[s])
			wantPMM += float64(r.PMMBytes[s])
		}
		wantDRAM += float64(r.MigratedBytes) / 2
		wantPMM += float64(r.MigratedBytes) / 2
		for _, c := range []struct {
			name      string
			got, want float64
		}{{"DRAM", dram, wantDRAM}, {"PMM", pmm, wantPMM}} {
			diff := c.got - c.want
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*c.want {
				t.Errorf("samples=%d: %s bytes %.1f, want %.1f", samples, c.name, c.got, c.want)
			}
		}
	}
}
