package hetmem

import (
	"sparta/internal/core"
)

// Policy simulates one data-placement strategy on a recorded profile with a
// given DRAM budget.
type Policy interface {
	Name() string
	Evaluate(pf *Profile, dramBytes uint64) Result
}

// ---------------------------------------------------------------------------
// Extremes

// DRAMOnly places everything in DRAM regardless of budget (the paper's
// upper-bound configuration).
type DRAMOnly struct{}

func (DRAMOnly) Name() string { return "DRAM-only" }

func (DRAMOnly) Evaluate(pf *Profile, _ uint64) Result {
	return pf.finishResult("DRAM-only", AllDRAM(), [core.NumStages]float64{}, 0)
}

// OptaneOnly places everything on PMM (AppDirect with no DRAM use) — the
// baseline of Fig. 7.
type OptaneOnly struct{}

func (OptaneOnly) Name() string { return "Optane-only" }

func (OptaneOnly) Evaluate(pf *Profile, _ uint64) Result {
	return pf.finishResult("Optane-only", AllPMM(), [core.NumStages]float64{}, 0)
}

// ---------------------------------------------------------------------------
// Sparta's static, algorithm-aware placement (§4.2)

// SpartaStatic implements the paper's strategy: X and Y always on PMM
// (observation 3), then best-effort DRAM placement in priority order
// HtY > HtA > Zlocal > Z using the Eq. 5/6 size *estimates* (placement is
// decided before the structures exist). Partially fitting objects are split.
type SpartaStatic struct{}

func (SpartaStatic) Name() string { return "Sparta" }

// SpartaPriority is the paper's default priority order.
var SpartaPriority = []Object{ObjHtY, ObjHtA, ObjZLocal, ObjZ}

func (SpartaStatic) Evaluate(pf *Profile, dramBytes uint64) Result {
	// Plan with the estimates (that is all the planner has before the
	// run), then convert the planned byte budget per object into the
	// fraction of the *actual* object that ends up resident.
	plan := PlanStatic(pf.EstSizes, dramBytes, SpartaPriority)
	var f Frac
	for o := Object(0); o < NumObjects; o++ {
		if pf.Sizes[o] == 0 {
			f[o] = plan[o]
			continue
		}
		planned := plan[o] * float64(pf.EstSizes[o])
		f[o] = planned / float64(pf.Sizes[o])
		if f[o] > 1 {
			f[o] = 1
		}
	}
	return pf.finishResult("Sparta", f, [core.NumStages]float64{}, 0)
}

// PlanStatic fills DRAM with the listed objects in priority order using the
// given size estimates; unlisted objects stay on PMM. Exported so callers
// (and the examples) can plan placements with their own priorities — §4.2
// notes four datasets prefer HtA > HtY.
func PlanStatic(sizes [NumObjects]uint64, dramBytes uint64, priority []Object) Frac {
	var f Frac
	rem := dramBytes
	for _, o := range priority {
		sz := sizes[o]
		if sz == 0 {
			f[o] = 1 // zero-size objects fit trivially
			continue
		}
		if rem >= sz {
			f[o] = 1
			rem -= sz
		} else {
			f[o] = float64(rem) / float64(sz)
			rem = 0
		}
	}
	return f
}

// ---------------------------------------------------------------------------
// PMM "Memory mode": DRAM as a hardware-managed direct-mapped cache

// MemoryMode models the hardware cache: every object's accesses hit DRAM
// with a probability set by the cache-to-working-set ratio and the access
// pattern, and every miss induces fill traffic (and dirty evictions) the
// demand accesses must share the devices with.
type MemoryMode struct{}

func (MemoryMode) Name() string { return "Memory mode" }

func (MemoryMode) Evaluate(pf *Profile, dramBytes uint64) Result {
	w := pf.PeakBytes()
	c := 1.0
	if w > 0 && dramBytes < w {
		c = float64(dramBytes) / float64(w)
	}
	var f Frac
	var overhead [core.NumStages]float64
	var migrated uint64
	var weight [NumObjects]float64
	var fsum [NumObjects]float64
	for s := core.Stage(0); s < core.NumStages; s++ {
		for o := Object(0); o < NumObjects; o++ {
			tr := pf.Traffic[s][o]
			if tr.zero() {
				continue
			}
			randBytes := (tr.RandReads + tr.RandWrites) * tr.OpBytes
			seqBytes := tr.SeqReadBytes + tr.SeqWriteBytes
			// Random accesses over the object hit with probability ~ c
			// degraded by direct-mapped conflict misses; streams see
			// almost no reuse, so their hit rate is only the residual
			// residency of a cache being continuously refilled.
			hRand, hSeq := 0.85*c, 0.15*c
			hitBytes := float64(randBytes)*hRand + float64(seqBytes)*hSeq
			missBytes := float64(randBytes)*(1-hRand) + float64(seqBytes)*(1-hSeq)
			// Every miss fills a DRAM line from PMM; about a third of the
			// evictions are dirty and write back to PMM.
			fill := missBytes
			overhead[s] += fill/DRAM.WriteBW + 0.35*fill/PMM.WriteBW
			migrated += uint64(fill)
			total := float64(randBytes + seqBytes)
			if total > 0 {
				fsum[o] += hitBytes
				weight[o] += total
			}
		}
	}
	for o := Object(0); o < NumObjects; o++ {
		if weight[o] > 0 {
			f[o] = fsum[o] / weight[o]
		} else {
			f[o] = c
		}
	}
	return pf.finishResult("Memory mode", f, overhead, migrated)
}

// ---------------------------------------------------------------------------
// IAL: software page-hotness tracking with dynamic migration

// IAL models the Improved Active List runtime the paper compares against
// (Yan et al., adapted by [77]): per-epoch page-hotness sampling promotes
// the hottest pages into DRAM. Being application-agnostic it (a) promotes
// streaming pages whose usefulness has already passed, (b) reacts one epoch
// late on random-access objects whose pages all look lukewarm, and (c) pays
// migration traffic on both devices. The paper observes exactly these
// failure modes (§4.2, §5.5) — IAL ends up *slower than PMM-only* on
// average.
type IAL struct{}

func (IAL) Name() string { return "IAL" }

// Realized benefit factors per pattern class: how much of the ideal DRAM
// residency IAL converts into actual hits.
const (
	ialStreamRealize = 0.05 // promoted after the stream has passed
	ialRandomRealize = 0.25 // one-epoch tracking delay, partial promotion
)

func (IAL) Evaluate(pf *Profile, dramBytes uint64) Result {
	w := pf.PeakBytes()
	c := 1.0
	if w > 0 && dramBytes < w {
		c = float64(dramBytes) / float64(w)
	}
	var f Frac
	var overhead [core.NumStages]float64
	var migrated uint64
	var weight, fsum [NumObjects]float64
	for s := core.Stage(0); s < core.NumStages; s++ {
		for o := Object(0); o < NumObjects; o++ {
			tr := pf.Traffic[s][o]
			if tr.zero() {
				continue
			}
			randBytes := (tr.RandReads + tr.RandWrites) * tr.OpBytes
			seqBytes := tr.SeqReadBytes + tr.SeqWriteBytes
			hit := float64(randBytes)*c*ialRandomRealize + float64(seqBytes)*c*ialStreamRealize
			total := float64(randBytes + seqBytes)
			fsum[o] += hit
			weight[o] += total
			// Migration volume: IAL keeps moving the pages it just found
			// hot. Per stage it re-migrates roughly the DRAM-resident
			// share of the object's touched footprint, read from PMM and
			// written to DRAM, with the evicted pages going the other way.
			// Several tracking epochs elapse per stage; each re-migrates
			// the DRAM-resident share of the object's footprint.
			const epochsPerStage = 4
			sz := float64(pf.Sizes[o])
			mig := epochsPerStage * c * sz
			if mig > total {
				mig = total // cannot migrate more than it observed
			}
			overhead[s] += mig*(1/PMM.ReadBW+1/DRAM.WriteBW) + mig*(1/DRAM.ReadBW+1/PMM.WriteBW)
			migrated += uint64(2 * mig)
		}
	}
	for o := Object(0); o < NumObjects; o++ {
		if weight[o] > 0 {
			f[o] = fsum[o] / weight[o]
		}
	}
	return pf.finishResult("IAL", f, overhead, migrated)
}

// AllPolicies returns the Fig. 7 lineup in presentation order.
func AllPolicies() []Policy {
	return []Policy{SpartaStatic{}, IAL{}, MemoryMode{}, OptaneOnly{}, DRAMOnly{}}
}
