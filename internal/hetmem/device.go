// Package hetmem simulates the DRAM + Intel Optane DC PMM heterogeneous
// memory system of §4. The paper's HM results are driven by two things:
// (a) which data objects see sequential vs random and read vs write traffic
// in each stage (their Table 2), and (b) PMM's asymmetric latency and
// bandwidth (§2.3). This package records (a) exactly — from the operation
// counters the real contraction keeps — and applies (b) analytically.
//
// Calibration: the all-DRAM simulated stage times are anchored to the
// *measured* stage walls of the real run (this machine is DRAM-only), so
// the model only decides ratios — how much each stage slows down when some
// object moves to PMM — which is exactly the part the device parameters
// determine. Absolute seconds under PMM placements are therefore simulated,
// while orderings and crossovers reflect the recorded access structure.
package hetmem

// Device models one memory tier with the latency/bandwidth numbers the
// paper reports for its evaluation platform (§2.3).
type Device struct {
	Name string
	// Latencies in nanoseconds.
	SeqReadLat, RandReadLat   float64
	SeqWriteLat, RandWriteLat float64
	// Bandwidths in GB/s (≈ bytes per nanosecond).
	ReadBW, WriteBW float64
}

// DRAM and PMM are the paper's measured device parameters.
var (
	DRAM = Device{
		Name:       "DRAM",
		SeqReadLat: 79, RandReadLat: 87,
		SeqWriteLat: 86, RandWriteLat: 87,
		ReadBW: 104, WriteBW: 80,
	}
	PMM = Device{
		Name:       "Optane",
		SeqReadLat: 174, RandReadLat: 304,
		SeqWriteLat: 104, RandWriteLat: 127,
		ReadBW: 39, WriteBW: 13,
	}
)

// mlp is the assumed memory-level parallelism for random accesses: several
// misses are in flight at once, so the effective per-access stall is
// latency/mlp.
const mlp = 4.0

// cost returns the modeled nanoseconds for an access pattern on the device.
func (d Device) cost(p Pattern) float64 {
	ns := float64(p.SeqReadBytes)/d.ReadBW + float64(p.SeqWriteBytes)/d.WriteBW
	ns += float64(p.RandReads) * d.RandReadLat / mlp
	ns += float64(p.RandWrites) * d.RandWriteLat / mlp
	// Random accesses still move their cache lines through the device.
	ns += float64(p.RandReads*p.OpBytes)/d.ReadBW + float64(p.RandWrites*p.OpBytes)/d.WriteBW
	return ns
}
