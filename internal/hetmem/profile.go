package hetmem

import (
	"fmt"
	"math"
	"time"

	"sparta/internal/core"
)

// Object identifies one of the six data objects of Table 2.
type Object int

const (
	ObjX Object = iota
	ObjY
	ObjHtY
	ObjHtA
	ObjZLocal
	ObjZ
	NumObjects
)

// String names the object the way the paper's figures do.
func (o Object) String() string {
	switch o {
	case ObjX:
		return "X"
	case ObjY:
		return "Y"
	case ObjHtY:
		return "HtY"
	case ObjHtA:
		return "HtA"
	case ObjZLocal:
		return "Z_local"
	case ObjZ:
		return "Z"
	default:
		return fmt.Sprintf("Object(%d)", int(o))
	}
}

// Pattern aggregates the traffic one object sees in one stage: streamed
// bytes and random operations (each touching OpBytes).
type Pattern struct {
	SeqReadBytes  uint64
	SeqWriteBytes uint64
	RandReads     uint64
	RandWrites    uint64
	OpBytes       uint64 // payload bytes moved per random op
}

// zero reports whether the pattern has no traffic at all.
func (p Pattern) zero() bool {
	return p.SeqReadBytes == 0 && p.SeqWriteBytes == 0 && p.RandReads == 0 && p.RandWrites == 0
}

// Kind renders the Table 2 classification ("Ran, RW", "Seq, RO", ...).
func (p Pattern) Kind() string {
	if p.zero() {
		return "-"
	}
	rand := p.RandReads+p.RandWrites > 0
	// Random ops dominate classification when both exist, matching the
	// paper's table.
	acc := "Seq"
	if rand {
		acc = "Ran"
	}
	reads := p.SeqReadBytes > 0 || p.RandReads > 0
	writes := p.SeqWriteBytes > 0 || p.RandWrites > 0
	switch {
	case reads && writes:
		return acc + ", RW"
	case reads:
		return acc + ", RO"
	default:
		return acc + ", WO"
	}
}

// Profile is the full access profile of one contraction: per-stage,
// per-object traffic plus object sizes and the measured stage walls used as
// the all-DRAM anchor.
type Profile struct {
	Traffic  [core.NumStages][NumObjects]Pattern
	Sizes    [NumObjects]uint64
	Measured [core.NumStages]time.Duration
	Threads  int
	// EstSizes carries the Eq. 5/6 pre-run size estimates for the objects
	// the static planner must place before they exist (HtY, HtA).
	EstSizes [NumObjects]uint64
	// MemStall is the memory-stall fraction used by StageTime
	// (0 = DefaultMemStall).
	MemStall float64
}

// FromReport derives the access profile of a Sparta (AlgSparta) run from
// its report and the tensor orders. The per-access byte figures follow the
// layouts in packages coo and hashtab.
func FromReport(rep *core.Report, orderX, orderY, orderZ int) *Profile {
	pf := &Profile{Threads: rep.Threads, Measured: rep.StageWall}

	elemX := uint64(4*orderX + 8)
	elemZ := uint64(4*orderZ + 8)
	itemY := uint64(16)    // YItem: LN free + value
	htaEntry := uint64(20) // key + value + chain link
	zlEntry := uint64(16)  // LN + value

	nnzX, nnzY, nnzZ := uint64(rep.NNZX), uint64(rep.NNZY), uint64(rep.NNZZ)

	// ① Input processing: X is permuted and sorted. At the memory level a
	// quicksort is log(nnz) *streaming* partition passes (each partition
	// scan is sequential; the working set of a partition smaller than LLC
	// never leaves the cache) plus one final random-gather permutation —
	// classified Ran,RW like the paper's Table 2, but with the byte volume
	// dominated by the streamed passes.
	passX := sortPasses(nnzX * elemX)
	pf.Traffic[core.StageInput][ObjX] = Pattern{
		SeqReadBytes:  nnzX * passX * elemX,
		SeqWriteBytes: nnzX * passX * elemX,
		RandReads:     nnzX, // final permutation: random gather, streaming store
		OpBytes:       elemX,
	}
	pf.Traffic[core.StageInput][ObjY] = Pattern{SeqReadBytes: nnzY * uint64(4*orderY+8)}
	pf.Traffic[core.StageInput][ObjHtY] = Pattern{
		RandReads:  nnzY, // bucket inspection
		RandWrites: nnzY, // entry/item append
		OpBytes:    itemY,
	}

	// ② Index search: X streamed; HtY probed randomly. Each hit chases two
	// further pointers (entry -> item-list header -> list storage at a
	// random heap address); only the within-list scan streams.
	pf.Traffic[core.StageSearch][ObjX] = Pattern{SeqReadBytes: nnzX * elemX}
	pf.Traffic[core.StageSearch][ObjHtY] = Pattern{
		RandReads:    rep.ProbesHtY + 2*rep.HitsY,
		OpBytes:      32, // bucket header + entry
		SeqReadBytes: rep.Products * itemY,
	}

	// ③ Accumulation: HtA random read-modify-write per product; Zlocal is
	// appended sequentially (flush is charged here as the paper's Table 2
	// does). HtA is thread-private and deliberately small (the paper:
	// 10-50 MB per thread), so most of its accesses are absorbed by the
	// last-level cache and never reach the memory device — only the
	// htaCacheMiss fraction is device traffic.
	const htaCacheMiss = 0.25
	pf.Traffic[core.StageAccum][ObjHtA] = Pattern{
		RandReads:  uint64(htaCacheMiss * float64(rep.ProbesHtA)),
		RandWrites: uint64(htaCacheMiss * float64(rep.AccumHits+rep.AccumMiss)),
		OpBytes:    htaEntry,
	}
	pf.Traffic[core.StageAccum][ObjZLocal] = Pattern{SeqWriteBytes: nnzZ * zlEntry}

	// ④ Writeback: Zlocal streamed back, Z written sequentially.
	pf.Traffic[core.StageWrite][ObjZLocal] = Pattern{SeqReadBytes: nnzZ * zlEntry}
	pf.Traffic[core.StageWrite][ObjZ] = Pattern{SeqWriteBytes: nnzZ * elemZ}

	// ⑤ Output sorting: same quicksort shape over Z — log(nnz) streaming
	// partition passes plus a random-gather permutation (Ran,RW in the
	// Table 2 classification).
	passZ := sortPasses(nnzZ * elemZ)
	pf.Traffic[core.StageSort][ObjZ] = Pattern{
		SeqReadBytes:  nnzZ * passZ * elemZ,
		SeqWriteBytes: nnzZ * passZ * elemZ,
		RandReads:     nnzZ, // final permutation: random gather, streaming store
		OpBytes:       elemZ,
	}

	pf.Sizes[ObjX] = rep.BytesX
	pf.Sizes[ObjY] = rep.BytesY
	// HtY's size uses the Eq. 5 figure, which the paper notes is *exact*
	// for its C layout; the Go structure carries extra per-bucket headers
	// that would misstate the memory the modeled system needs.
	pf.Sizes[ObjHtY] = rep.BytesHtY
	if rep.EstBytesHtY > 0 {
		pf.Sizes[ObjHtY] = rep.EstBytesHtY
	}
	pf.Sizes[ObjHtA] = rep.BytesHtA
	pf.Sizes[ObjZLocal] = rep.BytesZLocal
	pf.Sizes[ObjZ] = rep.BytesZ

	pf.EstSizes = pf.Sizes
	if rep.EstBytesHtY > 0 {
		pf.EstSizes[ObjHtY] = rep.EstBytesHtY
	}
	if rep.EstBytesHtAPerTh > 0 {
		pf.EstSizes[ObjHtA] = rep.EstBytesHtAPerTh * uint64(rep.Threads)
	}
	return pf
}

// llcBytes approximates the last-level cache: quicksort partition levels
// whose working set fits here never touch the memory devices.
const llcBytes = 32 << 20

// sortPasses returns how many times a quicksort streams `bytes` of payload
// through the memory system: one pass per partition level whose working set
// exceeds the LLC, with a floor of one pass (the initial read/write).
func sortPasses(bytes uint64) uint64 {
	p := uint64(1)
	for bytes > llcBytes {
		p++
		bytes /= 2
	}
	return p
}

// log2c returns ceil(log2(n)) with a floor of 1.
func log2c(n uint64) uint64 {
	if n < 2 {
		return 1
	}
	return uint64(math.Ceil(math.Log2(float64(n))))
}

// PeakBytes is the simultaneous footprint of all six objects.
func (pf *Profile) PeakBytes() uint64 {
	var t uint64
	for _, s := range pf.Sizes {
		t += s
	}
	return t
}

// Table2 renders the access-pattern classification per stage and object —
// the reproduction of the paper's Table 2.
func Table2(pf *Profile) [core.NumStages][NumObjects]string {
	var out [core.NumStages][NumObjects]string
	for s := core.Stage(0); s < core.NumStages; s++ {
		for o := Object(0); o < NumObjects; o++ {
			out[s][o] = pf.Traffic[s][o].Kind()
		}
	}
	return out
}
