package hetmem

import "testing"

// mkSizes lays out an object-size vector in priority order.
func mkSizes(hty, hta, zlocal, z uint64) [NumObjects]uint64 {
	var s [NumObjects]uint64
	s[ObjHtY] = hty
	s[ObjHtA] = hta
	s[ObjZLocal] = zlocal
	s[ObjZ] = z
	return s
}

func TestPlanResidencyUnbudgeted(t *testing.T) {
	r := PlanResidency(mkSizes(100, 100, 100, 100), 5000, 0)
	if !r.HtYResident || r.SpillZ {
		t.Fatalf("zero budget must mean everything resident: %+v", r)
	}
	if r.WindowNNZ != 5000 {
		t.Fatalf("zero budget must not window: WindowNNZ = %d", r.WindowNNZ)
	}
}

func TestPlanResidencyEverythingFits(t *testing.T) {
	r := PlanResidency(mkSizes(100, 100, 100, 100), 5000, 1000)
	if !r.HtYResident || r.SpillZ {
		t.Fatalf("generous budget: %+v", r)
	}
	if r.WindowNNZ != 5000 {
		t.Fatalf("fitting working set must not window: WindowNNZ = %d", r.WindowNNZ)
	}
}

func TestPlanResidencyHtYDoesNotFit(t *testing.T) {
	r := PlanResidency(mkSizes(1000, 100, 100, 100), 5000, 500)
	if r.HtYResident {
		t.Fatal("HtY larger than the budget reported resident")
	}
	if r.Frac[ObjHtY] >= 1 {
		t.Fatalf("Frac[HtY] = %v, want < 1", r.Frac[ObjHtY])
	}
}

func TestPlanResidencyWindowScaling(t *testing.T) {
	// HtY fits whole; 1/10 of the working set fits in what remains, so the
	// window should be ~nnzX/10. The planner cannot fit Z at all, so the
	// output spills.
	nnzX := 1 << 20
	r := PlanResidency(mkSizes(100, 1000, 1000, 500), nnzX, 300)
	if !r.HtYResident {
		t.Fatal("HtY fits the budget but reported non-resident")
	}
	if !r.SpillZ {
		t.Fatal("Z cannot fit; SpillZ should be set")
	}
	want := nnzX / 10
	if r.WindowNNZ < want*9/10 || r.WindowNNZ > want*11/10 {
		t.Fatalf("WindowNNZ = %d, want ~%d", r.WindowNNZ, want)
	}
	if r.WindowNNZ < MinWindowNNZ || r.WindowNNZ > nnzX {
		t.Fatalf("WindowNNZ = %d outside [%d, %d]", r.WindowNNZ, MinWindowNNZ, nnzX)
	}
}

func TestPlanResidencyWindowClamps(t *testing.T) {
	// A budget with almost nothing left after HtY would plan a microscopic
	// window; the file format's chunk granularity floors it.
	r := PlanResidency(mkSizes(100, 1<<30, 1<<30, 0), 1<<20, 101)
	if !r.HtYResident {
		t.Fatal("HtY fits")
	}
	if r.WindowNNZ != MinWindowNNZ {
		t.Fatalf("WindowNNZ = %d, want the %d floor", r.WindowNNZ, MinWindowNNZ)
	}
	// And the window never exceeds the tensor: a tiny X with a mid-size
	// budget plans at most nnzX.
	r = PlanResidency(mkSizes(100, 1000, 1000, 0), 64, 600)
	if r.WindowNNZ > 64 {
		t.Fatalf("WindowNNZ = %d exceeds nnzX", r.WindowNNZ)
	}
	// nnzX = 0 degenerates to the unwindowed plan.
	r = PlanResidency(mkSizes(100, 1000, 1000, 0), 0, 200)
	if r.WindowNNZ != 0 {
		t.Fatalf("nnzX=0: WindowNNZ = %d", r.WindowNNZ)
	}
}
