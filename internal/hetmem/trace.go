package hetmem

import (
	"time"

	"sparta/internal/core"
	"sparta/internal/obs"
)

// TracePoint is one sample of a Fig. 8-style bandwidth timeline.
type TracePoint struct {
	At   time.Duration
	DRAM float64 // GB/s
	PMM  float64 // GB/s
}

// BandwidthTrace expands a policy result into a time series: each stage
// contributes samples at its average DRAM and PMM bandwidth (demand traffic
// plus an even share of the policy's migration traffic). samples sets the
// total number of points across the run; each point reports the bandwidth of
// the interval ending at its timestamp, so intervals tile the run exactly and
// bandwidth × width sums back to the byte totals.
func BandwidthTrace(r Result, samples int) []TracePoint {
	if samples < 1 {
		samples = 1
	}
	if r.Total <= 0 {
		return nil
	}
	// Proportional sample allocation with remainder distribution. Truncating
	// division alone under-allocates (e.g. five equal stages at samples=20
	// would emit 20 but three stages of weight 1/3 at samples=20 would emit
	// 18), so the remainder is handed out largest-interval-first until the
	// count is exact; every active stage keeps at least one point.
	type alloc struct {
		s   core.Stage
		dur time.Duration
		n   int
	}
	var active []alloc
	var sumDur time.Duration
	for s := core.Stage(0); s < core.NumStages; s++ {
		if r.StageTime[s] > 0 {
			active = append(active, alloc{s: s, dur: r.StageTime[s]})
			sumDur += r.StageTime[s]
		}
	}
	if len(active) == 0 {
		return nil
	}
	if samples < len(active) {
		samples = len(active)
	}
	total := 0
	for i := range active {
		n := int(int64(samples) * int64(active[i].dur) / int64(sumDur))
		if n < 1 {
			n = 1
		}
		active[i].n = n
		total += n
	}
	// width(i) = dur/n is the stage's current sampling interval: grow the
	// coarsest stage, shrink the finest (only while it can spare a point).
	width := func(a alloc) float64 { return float64(a.dur) / float64(a.n) }
	for total < samples {
		best := 0
		for i := range active {
			if width(active[i]) > width(active[best]) {
				best = i
			}
		}
		active[best].n++
		total++
	}
	for total > samples {
		best := -1
		for i := range active {
			if active[i].n > 1 && (best < 0 || width(active[i]) < width(active[best])) {
				best = i
			}
		}
		if best < 0 {
			break // every stage is down to one point
		}
		active[best].n--
		total--
	}

	var totalBytes uint64
	for s := core.Stage(0); s < core.NumStages; s++ {
		totalBytes += r.DRAMBytes[s] + r.PMMBytes[s]
	}
	pts := make([]TracePoint, 0, total)
	var start time.Duration
	for _, a := range active {
		// Migration traffic splits across stages by their demand share.
		var mig float64
		if totalBytes > 0 {
			mig = float64(r.MigratedBytes) * float64(r.DRAMBytes[a.s]+r.PMMBytes[a.s]) / float64(totalBytes)
		}
		durNS := float64(a.dur)
		dramBW := (float64(r.DRAMBytes[a.s]) + mig/2) / durNS
		pmmBW := (float64(r.PMMBytes[a.s]) + mig/2) / durNS
		// Integer subdivision pins the last point to the stage end exactly,
		// so the point intervals tile [start, start+dur] with no drift.
		for i := 0; i < a.n; i++ {
			at := start + time.Duration(int64(a.dur)*int64(i+1)/int64(a.n))
			pts = append(pts, TracePoint{At: at, DRAM: dramBW, PMM: pmmBW})
		}
		start += a.dur
	}
	return pts
}

// EmitTraceEvents re-emits a bandwidth timeline as Chrome trace-event counter
// tracks ("C" events), so a Fig. 8 timeline renders as a stacked counter next
// to the span timeline in Perfetto. One track per policy; each sample carries
// the DRAM and PMM series. A nil tracer is a no-op.
func EmitTraceEvents(tr *obs.Tracer, policy string, pts []TracePoint) {
	if tr == nil {
		return
	}
	for _, p := range pts {
		tr.CounterAt("bandwidth "+policy, p.At, map[string]float64{
			"dram_gbps": p.DRAM,
			"pmm_gbps":  p.PMM,
		})
	}
}
