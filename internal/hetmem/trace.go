package hetmem

import (
	"time"

	"sparta/internal/core"
)

// TracePoint is one sample of a Fig. 8-style bandwidth timeline.
type TracePoint struct {
	At   time.Duration
	DRAM float64 // GB/s
	PMM  float64 // GB/s
}

// BandwidthTrace expands a policy result into a time series: each stage
// contributes samples at its average DRAM and PMM bandwidth (demand traffic
// plus an even share of the policy's migration traffic). samples sets the
// total number of points across the run.
func BandwidthTrace(r Result, samples int) []TracePoint {
	if samples < 1 {
		samples = 1
	}
	if r.Total <= 0 {
		return nil
	}
	var pts []TracePoint
	var at time.Duration
	var totalBytes uint64
	for s := core.Stage(0); s < core.NumStages; s++ {
		totalBytes += r.DRAMBytes[s] + r.PMMBytes[s]
	}
	for s := core.Stage(0); s < core.NumStages; s++ {
		dur := r.StageTime[s]
		if dur <= 0 {
			continue
		}
		n := int(int64(samples) * int64(dur) / int64(r.Total))
		if n < 1 {
			n = 1
		}
		// Migration traffic splits across stages by their demand share.
		var mig float64
		if totalBytes > 0 {
			mig = float64(r.MigratedBytes) * float64(r.DRAMBytes[s]+r.PMMBytes[s]) / float64(totalBytes)
		}
		durNS := float64(dur)
		dramBW := (float64(r.DRAMBytes[s]) + mig/2) / durNS
		pmmBW := (float64(r.PMMBytes[s]) + mig/2) / durNS
		step := dur / time.Duration(n)
		for i := 0; i < n; i++ {
			at += step
			pts = append(pts, TracePoint{At: at, DRAM: dramBW, PMM: pmmBW})
		}
	}
	return pts
}
