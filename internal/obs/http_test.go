package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServerEndpoints boots the exposition server on an ephemeral port and
// scrapes every route group: /metrics, /debug/vars, /debug/pprof/.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sptc_contractions_total", "contractions run").Add(3)

	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	base := "http://" + srv.Addr()

	body := get(t, base+"/metrics")
	if !strings.Contains(body, "sptc_contractions_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(get(t, base+"/debug/vars"), "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if !strings.Contains(get(t, base+"/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
