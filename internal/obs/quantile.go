package obs

// Quantile estimation over merged-shard bucket counts. The registry's
// histograms accumulate fixed-bucket counts (per-worker HistShards merged
// in); a pXX estimate interpolates linearly inside the bucket holding the
// target rank — the same estimator Prometheus's histogram_quantile applies
// server-side, computed here so /metrics can export p50/p95/p99 directly
// and the load generator can cross-check its client-side histogram against
// the server's without a query engine in between.
//
// Accuracy is bounded by bucket resolution: the estimate lands in the same
// bucket as the exact order statistic, so the worst-case relative error is
// one bucket's relative width (LatencyBuckets grow by 7% per bucket).
// Crucially, two histograms with the same bounds and near-identical data
// produce near-identical estimates, which is what the client/server
// agreement check in sptc-loadgen leans on.

// LatencyBuckets is the request-latency bucket layout shared by the server's
// RED histograms and sptc-loadgen's client-side histogram: log-spaced at
// 7% growth from 50µs to >120s. The growth rate is the cross-check's error
// budget: a sparse tail can shift an interpolated quantile by a full bucket,
// so one bucket must stay under the 10% client/server agreement gate.
var LatencyBuckets = func() []float64 {
	var b []float64
	for v := 50e-6; ; v *= 1.07 {
		b = append(b, v)
		if v > 120 {
			return b
		}
	}
}()

// QuantileFromBuckets estimates the q-quantile (0 < q <= 1) of a
// distribution recorded as fixed-bucket counts: counts[i] observations in
// (bounds[i-1], bounds[i]], counts[len(bounds)] in the overflow bucket.
// Returns 0 for an empty distribution. Ranks in the overflow bucket clamp
// to the highest finite bound (there is no upper edge to interpolate
// toward), and the first bucket interpolates from 0.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile of the histogram's merged distribution.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return QuantileFromBuckets(h.bounds, counts, q)
}

// Quantile estimates the q-quantile of a histogram snapshot (0 for
// non-histogram snapshots).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Type != "histogram" {
		return 0
	}
	return QuantileFromBuckets(s.Bounds, s.Counts, q)
}

// exportQuantiles is the pXX set WritePrometheus appends per histogram.
var exportQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}
