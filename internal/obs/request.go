package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: one ReqTrace per served request threads through
// context into the engine and core so every request yields its own span tree
// — queue wait, admission, cache lookup, HtY prepare, the contraction stages
// — on a private trace track, tagged with the request ID and plan
// fingerprint. The same ReqTrace accumulates per-phase wall times and string
// tags for the structured access log, so the Chrome trace and the log line
// describe the identical request: the log's request_id resolves to the
// trace's "request" span and its children.
//
// Everything is nil-safe in both directions: a ReqTrace built over a nil
// *Tracer records phases and tags but no trace events (access log without
// tracing), and a nil *ReqTrace no-ops entirely (neither configured), so
// instrumented code never branches on configuration.

// ReqTrace is one request's trace context: a dedicated trace track, the
// phase walls, and the string tags that end up in the access log and on the
// request span's args.
type ReqTrace struct {
	tr    *Tracer
	id    string
	route string
	tid   int32
	start time.Time
	// startNS is the request start relative to the tracer epoch (valid only
	// when tr is non-nil).
	startNS int64

	mu       sync.Mutex
	phases   []PhaseWall
	tags     []arg
	finished bool
}

// PhaseWall is one named interval of a request, for the access log.
type PhaseWall struct {
	Name string
	Dur  time.Duration
}

// reqIDCounter backs the fallback request-ID generator.
var reqIDCounter atomic.Uint64

// NewRequestID returns a 16-hex-character request ID (64 random bits;
// falls back to a time+counter mix if the system randomness source fails).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		v := uint64(time.Now().UnixNano())*2654435761 + reqIDCounter.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// StartRequest opens a request trace on its own track of tr. A nil tracer
// still yields a working ReqTrace (phases and tags only), so the access log
// works with tracing disabled.
func StartRequest(tr *Tracer, route, id string) *ReqTrace {
	rt := &ReqTrace{tr: tr, id: id, route: route, start: time.Now()}
	if tr != nil {
		rt.tid = int32(tr.NewTID())
		rt.startNS = int64(time.Since(tr.epoch))
	}
	return rt
}

// ID returns the request ID ("" on nil).
func (rt *ReqTrace) ID() string {
	if rt == nil {
		return ""
	}
	return rt.id
}

// Route returns the route label the request was started under.
func (rt *ReqTrace) Route() string {
	if rt == nil {
		return ""
	}
	return rt.route
}

// Tracer returns the underlying tracer (nil when tracing is disabled) —
// instrumented layers below the handler use it for stage spans on Track.
func (rt *ReqTrace) Tracer() *Tracer {
	if rt == nil {
		return nil
	}
	return rt.tr
}

// Track returns the request's dedicated trace track.
func (rt *ReqTrace) Track() int {
	if rt == nil {
		return 0
	}
	return int(rt.tid)
}

// PhaseSpan is one in-flight request phase. End records the phase wall and,
// when tracing is live, the span on the request's track. Every StartPhase
// must be paired with an End — the sptc-lint spanleak analyzer enforces
// this statically, exactly as it does for Tracer.Start.
type PhaseSpan struct {
	rt      *ReqTrace
	name    string
	start   time.Time
	startNS int64
}

// StartPhase opens a named phase (e.g. "queue wait", "cache lookup").
func (rt *ReqTrace) StartPhase(name string) PhaseSpan {
	if rt == nil {
		return PhaseSpan{}
	}
	ps := PhaseSpan{rt: rt, name: name, start: time.Now()}
	if rt.tr != nil {
		ps.startNS = int64(time.Since(rt.tr.epoch))
	}
	return ps
}

// End closes the phase.
func (ps PhaseSpan) End() {
	if ps.rt == nil {
		return
	}
	d := time.Since(ps.start)
	ps.rt.mu.Lock()
	ps.rt.phases = append(ps.rt.phases, PhaseWall{Name: ps.name, Dur: d})
	ps.rt.mu.Unlock()
	if tr := ps.rt.tr; tr != nil {
		end := int64(time.Since(tr.epoch))
		if end < ps.startNS {
			end = ps.startNS
		}
		tr.appendSpan(ps.name, ps.rt.tid, ps.startNS, end, nil)
	}
}

// AddPhase injects an externally measured interval (e.g. the per-stage walls
// a core Report carries) into the phase list, so the access log can break a
// contraction down below span granularity.
func (rt *ReqTrace) AddPhase(name string, d time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.phases = append(rt.phases, PhaseWall{Name: name, Dur: d})
	rt.mu.Unlock()
}

// SetTag attaches a string tag (plan fingerprint, outcome, hty_reused…).
// Later values win for a repeated key.
func (rt *ReqTrace) SetTag(k, v string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	for i := range rt.tags {
		if rt.tags[i].k == k {
			rt.tags[i].v = v
			rt.mu.Unlock()
			return
		}
	}
	rt.tags = append(rt.tags, arg{k, v})
	rt.mu.Unlock()
}

// Phases returns a copy of the recorded phase walls, in recording order.
func (rt *ReqTrace) Phases() []PhaseWall {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]PhaseWall(nil), rt.phases...)
}

// Tags returns the tags as a map copy.
func (rt *ReqTrace) Tags() map[string]string {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := make(map[string]string, len(rt.tags))
	for _, a := range rt.tags {
		if s, ok := a.v.(string); ok {
			m[a.k] = s
		}
	}
	return m
}

// Finish closes the request: the outer "request" span covering the whole
// lifetime lands on the request's track with the request ID, route, and
// every tag as span args. Returns the request wall time. Idempotent — the
// second Finish only reads the wall.
func (rt *ReqTrace) Finish() time.Duration {
	if rt == nil {
		return 0
	}
	d := time.Since(rt.start)
	rt.mu.Lock()
	if rt.finished {
		rt.mu.Unlock()
		return d
	}
	rt.finished = true
	args := make([]arg, 0, 2+len(rt.tags))
	args = append(args, arg{"request_id", rt.id}, arg{"route", rt.route})
	args = append(args, rt.tags...)
	rt.mu.Unlock()
	if tr := rt.tr; tr != nil {
		end := int64(time.Since(tr.epoch))
		if end < rt.startNS {
			end = rt.startNS
		}
		tr.appendSpan("request", rt.tid, rt.startNS, end, args)
	}
	return d
}

// reqKey keys the ReqTrace in a context. reqKeyVal is the key pre-boxed
// into an interface: passing reqKey{} to Value directly boxes at every
// call site, which the hot-path escape budget (sptc-lint -perf) would
// charge to core.traceTarget after inlining.
type reqKey struct{}

var reqKeyVal any = reqKey{}

// WithReq returns ctx carrying rt (ctx unchanged when rt is nil).
func WithReq(ctx context.Context, rt *ReqTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, reqKeyVal, rt)
}

// DetachReq returns ctx without its request trace (ctx unchanged when none
// is attached). The sharded coordinator's fan-out legs run concurrently, and
// core's stage spans assume exclusive ownership of the request's trace track
// — so each leg detaches the trace and the coordinator folds the per-shard
// walls back onto the parent as summary phases (AddPhase is mutex-guarded
// and safe from the gather goroutines).
func DetachReq(ctx context.Context) context.Context {
	if ReqFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, reqKeyVal, (*ReqTrace)(nil))
}

// ReqFrom extracts the request trace from ctx (nil when absent). Layers
// below the HTTP handler — the engine's prepare path, core's stage spans —
// consult this so per-request span trees need no extra plumbing through
// Options.
func ReqFrom(ctx context.Context) *ReqTrace {
	if ctx == nil {
		return nil
	}
	rt, _ := ctx.Value(reqKeyVal).(*ReqTrace)
	return rt
}
