package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bound lands in that bound's bucket (inclusive upper limits), anything
// above the last bound lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // <= 1
		{1.5, 1}, {2, 1}, // <= 2
		{3, 2}, {4, 2}, // <= 4
		{4.001, 3}, {100, 3}, {math.Inf(1), 3}, // overflow
	}
	for _, c := range cases {
		if got := bucketOf(bounds, c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}

	h := newHistogram(bounds)
	for _, c := range cases {
		h.Observe(c.v)
	}
	wantCounts := []uint64{3, 2, 2, 3}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != wantCounts[i] {
			t.Errorf("bucket %d: count %d, want %d", i, got, wantCounts[i])
		}
	}
	if h.Count() != 10 {
		t.Errorf("Count() = %d, want 10", h.Count())
	}
}

// TestHistogramShardMergeConcurrent is the -race check of the ISSUE: many
// workers observe into private shards in parallel, then merge into one
// registry histogram concurrently. Counts and sums must be conserved.
func TestHistogramShardMergeConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("merge_test", "t", ProbeBuckets)
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sh := NewHistShard(ProbeBuckets)
			for i := 0; i < perWorker; i++ {
				sh.Observe(float64(i%140 + 1))
			}
			// Interleave direct Observes with the Merge to exercise the
			// atomic bucket counters from both entry points.
			h.Observe(float64(w + 1))
			h.Merge(sh)
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker+workers); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%140 + 1)
	}
	wantSum *= workers
	for w := 0; w < workers; w++ {
		wantSum += float64(w + 1)
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("merged sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestWritePrometheusGolden pins the full text exposition byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sptc_products_total", "scalar multiply-adds", "alg", "HtY+HtA").Add(42)
	reg.Gauge("sptc_output_nnz", "non-zeros of the last Z").Set(1234)
	h := reg.Histogram("sptc_hty_probe_length", "HtY probes per lookup", []float64{1, 2, 4})
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sptc_hty_probe_length HtY probes per lookup
# TYPE sptc_hty_probe_length histogram
sptc_hty_probe_length_bucket{le="1"} 2
sptc_hty_probe_length_bucket{le="2"} 3
sptc_hty_probe_length_bucket{le="4"} 4
sptc_hty_probe_length_bucket{le="+Inf"} 5
sptc_hty_probe_length_sum 16
sptc_hty_probe_length_count 5
sptc_hty_probe_length_quantile{quantile="0.5"} 1.5
sptc_hty_probe_length_quantile{quantile="0.95"} 4
sptc_hty_probe_length_quantile{quantile="0.99"} 4
# HELP sptc_output_nnz non-zeros of the last Z
# TYPE sptc_output_nnz gauge
sptc_output_nnz 1234
# HELP sptc_products_total scalar multiply-adds
# TYPE sptc_products_total counter
sptc_products_total{alg="HtY+HtA"} 42
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestNilSafety: the disabled configuration must be inert, not crash.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a", "h").Inc()
	reg.Gauge("b", "h").Set(1)
	reg.Histogram("c", "h", ProbeBuckets).Observe(1)
	if s := reg.Snapshot(); s != nil {
		t.Errorf("nil registry snapshot = %v", s)
	}
	var sh *HistShard
	sh.Observe(3)
	if sh.Count() != 0 {
		t.Error("nil shard counted")
	}
	var h *Histogram
	h.Observe(1)
	h.Merge(NewHistShard(ProbeBuckets))
	var tr *Tracer
	sp := tr.Start("x", 0)
	sp.End()
	tr.CounterAt("c", 0, map[string]float64{"v": 1})
	if tr.Len() != 0 {
		t.Error("nil tracer recorded")
	}
}

// TestTypeMismatch: re-registering a name as a different type must yield an
// inert metric, not corrupt the family.
func TestTypeMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h").Add(7)
	g := reg.Gauge("m", "h")
	g.Set(3) // no-op: m is a counter family
	snaps := reg.Snapshot()
	if len(snaps) != 1 || snaps[0].Type != "counter" || snaps[0].Value != 7 {
		t.Fatalf("snapshot after mismatch: %+v", snaps)
	}
}

// TestLabelCanonicalization: label order must not split metric identities.
func TestLabelCanonicalization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "h", "b", "2", "a", "1").Inc()
	reg.Counter("c", "h", "a", "1", "b", "2").Inc()
	snaps := reg.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d metrics, want 1 (label order split identity)", len(snaps))
	}
	if snaps[0].Labels != `{a="1",b="2"}` || snaps[0].Value != 2 {
		t.Fatalf("canonical labels: %+v", snaps[0])
	}
}
