// Package obs is Sparta's zero-dependency observability layer: a span/trace
// recorder exportable as Chrome trace-event JSON (chrome://tracing or
// Perfetto), a metrics registry (counters, gauges, fixed-bucket histograms)
// exposable in Prometheus text format, and an HTTP endpoint bundling the
// registry with net/http/pprof and expvar.
//
// The layer is designed around the same principle as internal/invariant:
// when nothing is configured it must cost (near) nothing. Every type is
// nil-safe — a nil *Tracer returns no-op spans, a nil *Registry returns nil
// metrics whose methods are no-ops — so the pipeline threads a single
// pointer through and hot loops guard recording with one predictable
// nil-check branch:
//
//	if w.htyProbe != nil {
//		w.htyProbe.Observe(float64(probes))
//	}
//
// Hot-path distributions are recorded into per-worker HistShard values
// (plain counters, no atomics, no sharing) and merged into the registry's
// atomic Histograms after the parallel section, mirroring how package core
// merges worker counters into the Report (mergeWorkerStats).
package obs
