package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !re.MatchString(id) {
			t.Fatalf("malformed request id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

// TestRequestSpanTree: a finished request yields its span tree on a private
// track, the request span carrying request_id/route/tags as args.
func TestRequestSpanTree(t *testing.T) {
	tr := NewTracer()
	rt := StartRequest(tr, "contract", "deadbeef00000001")

	ps := rt.StartPhase("queue wait")
	ps.End()
	ps = rt.StartPhase("cache lookup")
	ps.End()
	rt.SetTag("plan_fp", "abc123")
	rt.SetTag("hty_reused", "true")
	rt.AddPhase("stage_input", 5*time.Millisecond)
	if d := rt.Finish(); d <= 0 {
		t.Errorf("Finish returned %v", d)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Tid  int32           `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}

	var reqTid int32 = -1
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "B" {
			continue
		}
		names[ev.Name] = true
		if ev.Name == "request" {
			reqTid = ev.Tid
			var args map[string]string
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Fatalf("request span args: %v (%s)", err, ev.Args)
			}
			for k, want := range map[string]string{
				"request_id": "deadbeef00000001",
				"route":      "contract",
				"plan_fp":    "abc123",
				"hty_reused": "true",
			} {
				if args[k] != want {
					t.Errorf("request span arg %s = %q, want %q", k, args[k], want)
				}
			}
		}
	}
	for _, want := range []string{"request", "queue wait", "cache lookup"} {
		if !names[want] {
			t.Errorf("span %q missing from trace", want)
		}
	}
	if reqTid < 1024 {
		t.Errorf("request track %d not from the NewTID range", reqTid)
	}
	for _, ev := range tf.TraceEvents {
		if ev.Name != "request" && ev.Ph == "B" && ev.Tid != reqTid {
			t.Errorf("span %q on track %d, want request track %d", ev.Name, ev.Tid, reqTid)
		}
	}

	// Phase walls include both measured and injected phases, in order.
	var names2 []string
	for _, p := range rt.Phases() {
		names2 = append(names2, p.Name)
	}
	want := []string{"queue wait", "cache lookup", "stage_input"}
	if len(names2) != len(want) {
		t.Fatalf("phases %v, want %v", names2, want)
	}
	for i := range want {
		if names2[i] != want[i] {
			t.Fatalf("phases %v, want %v", names2, want)
		}
	}
	if tags := rt.Tags(); tags["plan_fp"] != "abc123" {
		t.Errorf("Tags() = %v", tags)
	}
}

// TestRequestNilSafety: nil tracer still records phases/tags; nil ReqTrace
// no-ops everywhere (the two disabled configurations).
func TestRequestNilSafety(t *testing.T) {
	rt := StartRequest(nil, "contract", "id1")
	ps := rt.StartPhase("queue wait")
	ps.End()
	rt.SetTag("k", "v")
	rt.Finish()
	if got := rt.Phases(); len(got) != 1 || got[0].Name != "queue wait" {
		t.Errorf("nil-tracer phases = %v", got)
	}
	if rt.Tracer() != nil || rt.Track() != 0 {
		t.Error("nil-tracer ReqTrace leaked a tracer or track")
	}

	var nilRT *ReqTrace
	nilRT.StartPhase("x").End()
	nilRT.SetTag("a", "b")
	nilRT.AddPhase("y", time.Second)
	nilRT.Finish()
	if nilRT.Phases() != nil || nilRT.Tags() != nil || nilRT.ID() != "" {
		t.Error("nil ReqTrace recorded something")
	}
}

func TestWithReqRoundTrip(t *testing.T) {
	if got := ReqFrom(context.Background()); got != nil {
		t.Errorf("empty context yielded %v", got)
	}
	rt := StartRequest(nil, "r", "id")
	ctx := WithReq(context.Background(), rt)
	if got := ReqFrom(ctx); got != rt {
		t.Errorf("round trip lost the ReqTrace: %v", got)
	}
	if ctx2 := WithReq(context.Background(), nil); ReqFrom(ctx2) != nil {
		t.Error("nil ReqTrace stored in context")
	}
}

// TestTracerLimit: the event cap drops (and counts) spans instead of growing
// the buffer — a serving process must bound its trace memory.
func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(4) // room for two spans
	for i := 0; i < 5; i++ {
		tr.Start("s", 0).End()
	}
	if n := tr.Len(); n != 4 {
		t.Errorf("buffered %d events, want 4", n)
	}
	if d := tr.Dropped(); d != 3 {
		t.Errorf("dropped %d, want 3", d)
	}
	tr.SetLimit(0)
	tr.Start("s", 0).End()
	if n := tr.Len(); n != 6 {
		t.Errorf("after lifting the cap: %d events, want 6", n)
	}
	// Distinct requests land on distinct tracks.
	a, b := StartRequest(tr, "r", "a"), StartRequest(tr, "r", "b")
	if a.Track() == b.Track() {
		t.Errorf("two requests share track %d", a.Track())
	}
}
