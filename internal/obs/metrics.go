package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default bucket boundaries. Bounds are inclusive upper limits (Prometheus
// "le"); every histogram carries one extra overflow bucket beyond the last
// bound.
var (
	// ProbeBuckets suits probe/chain-length distributions: open-addressed
	// probes cluster at 1-2 below load factor 1/2, the tail is what matters.
	ProbeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
	// TimeBuckets (seconds) spans microsecond stages to multi-second runs.
	TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}
	// ByteBuckets spans per-thread accumulators (KiB) to whole tensors (GiB).
	ByteBuckets = []float64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30}
)

// Registry holds named metric families. All accessors are get-or-create and
// safe for concurrent use; a nil *Registry returns nil metrics whose methods
// are no-ops, so instrumented code needs no configuration branches.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: its metadata plus one metric per label set.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	byLabel         map[string]interface{}
	order           []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// metric returns the family's metric for the given label set, creating both
// on first use. A name re-registered with a different type yields nil (the
// caller's writes become no-ops) rather than corrupting the exposition.
func (r *Registry) metric(name, help, typ string, labels []string, mk func() interface{}) interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabel: map[string]interface{}{}}
		r.fams[name] = f
	}
	r.mu.Unlock()
	if f.typ != typ {
		return nil
	}
	key := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.byLabel[key]
	if m == nil {
		m = mk()
		f.byLabel[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the counter for name + labels (alternating key, value).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m, _ := r.metric(name, help, "counter", labels, func() interface{} { return &Counter{} }).(*Counter)
	return m
}

// Gauge returns the gauge for name + labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m, _ := r.metric(name, help, "gauge", labels, func() interface{} { return &Gauge{} }).(*Gauge)
	return m
}

// Histogram returns the fixed-bucket histogram for name + labels. The bounds
// of the first registration win; later calls reuse the existing buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m, _ := r.metric(name, help, "histogram", labels, func() interface{} { return newHistogram(bounds) }).(*Histogram)
	return m
}

// labelString renders labels (alternating key, value) canonically:
// `{k1="v1",k2="v2"}` sorted by key, "" for none. An odd trailing key gets
// an empty value — observability must never take the pipeline down.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i < len(labels); i += 2 {
		v := ""
		if i+1 < len(labels) {
			v = labels[i+1]
		}
		pairs = append(pairs, kv{labels[i], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter is a monotonically increasing uint64. Nil-safe.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters, so
// concurrent Observes and shard Merges race-free. counts[len(bounds)] is the
// overflow bucket (le="+Inf").
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(h.bounds, v)].Add(1)
	h.addSum(v)
}

// addSum accumulates into the float64-bits sum with a CAS loop.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Merge folds a per-worker shard into the histogram. Shards with different
// bucketing are ignored (the caller built them from different bounds).
func (h *Histogram) Merge(s *HistShard) {
	if h == nil || s == nil || len(s.counts) != len(h.counts) {
		return
	}
	for i, c := range s.counts {
		if c > 0 {
			h.counts[i].Add(c)
		}
	}
	if s.sum != 0 {
		h.addSum(s.sum)
	}
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// bucketOf returns the index of the first bound >= v (len(bounds) for the
// overflow bucket). Bounds are short fixed slices, so a linear scan beats a
// binary search in practice.
func bucketOf(bounds []float64, v float64) int {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	return i
}

// HistShard is the per-worker, non-atomic histogram the hot path records
// into; the owning worker merges it into a registry Histogram after the
// parallel section (Histogram.Merge). Observe on a nil shard is a no-op,
// but hot loops should guard the call with a nil check so the disabled
// configuration pays only one predictable branch.
type HistShard struct {
	bounds []float64
	counts []uint64
	sum    float64
}

// NewHistShard returns a shard bucketed like Histogram with the same bounds.
func NewHistShard(bounds []float64) *HistShard {
	return &HistShard{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value (plain increments, single-owner).
func (s *HistShard) Observe(v float64) {
	if s == nil {
		return
	}
	s.counts[bucketOf(s.bounds, v)]++
	s.sum += v
}

// Counts exposes the per-bucket counts (len(bounds)+1 entries, overflow
// last) — the layout Snapshot.Counts and stats.RenderHistogram use.
func (s *HistShard) Counts() []uint64 {
	if s == nil {
		return nil
	}
	return s.counts
}

// Count returns the number of recorded observations.
func (s *HistShard) Count() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for _, c := range s.counts {
		n += c
	}
	return n
}

// Snapshot is one metric's point-in-time state, for tests and renderers.
type Snapshot struct {
	Name   string
	Type   string // "counter", "gauge", "histogram"
	Help   string
	Labels string // canonical `{k="v",...}` or ""

	Value float64 // counter and gauge

	Bounds []float64 // histogram: bucket upper bounds
	Counts []uint64  // histogram: per-bucket (NOT cumulative), len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot returns every metric, sorted by name then label string.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Snapshot
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := Snapshot{Name: f.name, Type: f.typ, Help: f.help, Labels: key}
			switch m := f.byLabel[key].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Bounds = m.bounds
				s.Counts = make([]uint64, len(m.counts))
				for i := range m.counts {
					s.Counts[i] = m.counts[i].Load()
				}
				s.Sum = m.Sum()
				for _, c := range s.Counts {
					s.Count += c
				}
			}
			out = append(out, s)
		}
		f.mu.Unlock()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, cumulative histogram buckets
// with le labels, _sum and _count series. Output is deterministic (sorted by
// family name, then label string).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	lastFam := ""
	for _, s := range snaps {
		if s.Name != lastFam {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			lastFam = s.Name
		}
		switch s.Type {
		case "histogram":
			var cum uint64
			for i := range s.Counts {
				cum += s.Counts[i]
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, withLabel(s.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.Labels, formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.Labels, s.Count); err != nil {
				return err
			}
			// Merged-shard quantile estimates, exported as a sibling series
			// (summary-style quantile label) so dashboards and the loadgen
			// cross-check read pXX without reconstructing bucket math.
			if s.Count > 0 {
				for _, eq := range exportQuantiles {
					if _, err := fmt.Fprintf(w, "%s_quantile%s %s\n",
						s.Name, withLabel(s.Labels, "quantile", eq.label),
						formatFloat(s.Quantile(eq.q))); err != nil {
						return err
					}
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLabel appends one label to a canonical label string.
func withLabel(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
