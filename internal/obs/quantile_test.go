package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestQuantileAgainstSortOracle merges several worker shards into one
// histogram and compares its interpolated quantiles against the exact
// order statistics of the raw sample. The estimator's error is bounded by
// one bucket's relative width (7% for LatencyBuckets), so 8% is the
// honest tolerance.
func TestQuantileAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := NewRegistry()
	h := reg.Histogram("lat", "latencies", LatencyBuckets)

	const workers, perWorker = 4, 5000
	var all []float64
	for w := 0; w < workers; w++ {
		sh := NewHistShard(LatencyBuckets)
		for i := 0; i < perWorker; i++ {
			// Log-uniform over [100µs, 5s): spans many buckets, like a
			// latency distribution with a heavy tail.
			v := 1e-4 * math.Pow(5e4, rng.Float64())
			sh.Observe(v)
			all = append(all, v)
		}
		h.Merge(sh)
	}
	sort.Float64s(all)

	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := all[int(math.Ceil(q*float64(len(all))))-1]
		est := h.Quantile(q)
		if relErr := math.Abs(est-exact) / exact; relErr > 0.08 {
			t.Errorf("q=%g: estimate %.6g vs exact %.6g (rel err %.3f > 0.08)", q, est, exact, relErr)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	if got := QuantileFromBuckets(bounds, make([]uint64, 5), 0.5); got != 0 {
		t.Errorf("empty distribution: got %g, want 0", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{0, 3, 0, 0, 0}, 0.5); got <= 1 || got > 2 {
		t.Errorf("single-bucket mass: got %g, want in (1,2]", got)
	}
	// All mass in the overflow bucket clamps to the last finite bound.
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0, 10}, 0.99); got != 8 {
		t.Errorf("overflow clamp: got %g, want 8", got)
	}
	// Mismatched shapes are refused, not mis-read.
	if got := QuantileFromBuckets(bounds, []uint64{1, 2}, 0.5); got != 0 {
		t.Errorf("mismatched counts: got %g, want 0", got)
	}
	// First bucket interpolates from zero.
	if got := QuantileFromBuckets(bounds, []uint64{4, 0, 0, 0, 0}, 0.5); got <= 0 || got > 1 {
		t.Errorf("first bucket: got %g, want in (0,1]", got)
	}
}

// TestPrometheusQuantileExport: histogram families now carry
// <name>_quantile{quantile="..."} series on /metrics.
func TestPrometheusQuantileExport(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sptc_test_seconds", "test", LatencyBuckets, "route", "contract")
	for i := 0; i < 100; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sptc_test_seconds_quantile{route="contract",quantile="0.5"}`,
		`sptc_test_seconds_quantile{route="contract",quantile="0.95"}`,
		`sptc_test_seconds_quantile{route="contract",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s\n%s", want, out)
		}
	}
	// An empty histogram exports no quantile lines (0 would be a lie).
	reg2 := NewRegistry()
	reg2.Histogram("empty_seconds", "test", LatencyBuckets)
	b.Reset()
	if err := reg2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "empty_seconds_quantile") {
		t.Error("empty histogram exported quantile lines")
	}
}

func TestLatencyBucketsShape(t *testing.T) {
	if len(LatencyBuckets) < 50 {
		t.Fatalf("only %d latency buckets; too coarse for pXX cross-checks", len(LatencyBuckets))
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		ratio := LatencyBuckets[i] / LatencyBuckets[i-1]
		// One bucket's width is the client/server cross-check's error
		// budget; it must stay under the 10% agreement gate.
		if ratio <= 1 || ratio > 1.0701 {
			t.Fatalf("bucket %d growth %.4f outside (1, 1.07]", i, ratio)
		}
	}
	if last := LatencyBuckets[len(LatencyBuckets)-1]; last < 120 {
		t.Fatalf("last bucket %.3g < 120s", last)
	}
}
