package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans and counter samples for export in the Chrome
// trace-event JSON format. A nil *Tracer is valid and records nothing, so
// instrumented code never branches on configuration — it just calls Start
// and End.
//
// Spans are buffered as matched B/E ("duration begin/end") event pairs;
// counter samples become "C" events. WriteJSON sorts everything by
// timestamp, which is the layout chrome://tracing and Perfetto expect.
type Tracer struct {
	epoch time.Time
	// nextTID hands out request-scoped tracks (NewTID); bench-style callers
	// pick tids 0..threads by hand and never touch it.
	nextTID atomic.Int32
	// limit bounds the buffered event count (0 = unbounded); dropped counts
	// events refused at the cap — a serving process must not grow its trace
	// buffer forever under sustained traffic.
	limit   atomic.Int64
	dropped atomic.Uint64
	mu      sync.Mutex
	evs     []event
}

// event is one trace-event record; ts is nanoseconds since the tracer epoch
// (the JSON encodes microseconds, the format's native unit).
type event struct {
	name string
	ph   byte // 'B', 'E', 'C'
	tid  int32
	ts   int64
	args []arg // 'C' events, and 'B' events of tagged spans
}

// arg is one args-object entry; v marshals with encoding/json (float64 for
// counter series, string for request tags).
type arg struct {
	k string
	v interface{}
}

// NewTracer starts a tracer; all span timestamps are relative to this call.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is one in-flight interval. End records it; a Span from a nil Tracer
// (or the zero Span) ends as a no-op. Every Start must be paired with an
// End — the sptc-lint spanleak analyzer enforces this statically.
type Span struct {
	t     *Tracer
	name  string
	tid   int32
	start int64
}

// Start opens a span on the given logical track (tid). Track 0 is the
// orchestrating goroutine by convention; workers use tid+1.
func (t *Tracer) Start(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: int32(tid), start: int64(time.Since(t.epoch))}
}

// End closes the span, appending its matched B/E event pair.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := int64(time.Since(s.t.epoch))
	if end < s.start {
		end = s.start
	}
	s.t.appendSpan(s.name, s.tid, s.start, end, nil)
}

// appendSpan records one completed interval as its matched B/E pair, with
// optional args attached to the B event. Honors the event cap.
func (t *Tracer) appendSpan(name string, tid int32, start, end int64, args []arg) {
	t.mu.Lock()
	if lim := t.limit.Load(); lim > 0 && int64(len(t.evs))+2 > lim {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.evs = append(t.evs,
		event{name: name, ph: 'B', tid: tid, ts: start, args: args},
		event{name: name, ph: 'E', tid: tid, ts: end})
	t.mu.Unlock()
}

// NewTID allocates a fresh logical track, disjoint from every other NewTID
// track. Request-scoped traces use one track per request so concurrent
// requests never interleave their span trees; the first allocation is track
// 1024, far above any hand-picked bench worker tid.
func (t *Tracer) NewTID() int {
	if t == nil {
		return 0
	}
	return 1023 + int(t.nextTID.Add(1))
}

// SetLimit caps the buffered event count (0 restores unbounded buffering).
// Once the cap is reached new spans and counter samples are dropped and
// counted (Dropped) — the trace truncates instead of the process growing.
func (t *Tracer) SetLimit(n int) {
	if t != nil {
		t.limit.Store(int64(n))
	}
}

// Dropped reports how many events were refused at the SetLimit cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// CounterAt records a counter sample ("C" event) at a fixed offset from the
// tracer epoch. Each key becomes one series of the counter track — this is
// how hetmem re-emits Fig. 8 bandwidth timelines next to the span timeline.
func (t *Tracer) CounterAt(name string, at time.Duration, series map[string]float64) {
	if t == nil {
		return
	}
	args := make([]arg, 0, len(series))
	for k, v := range series {
		args = append(args, arg{k, v})
	}
	sort.Slice(args, func(i, j int) bool { return args[i].k < args[j].k })
	t.mu.Lock()
	if lim := t.limit.Load(); lim > 0 && int64(len(t.evs))+1 > lim {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.evs = append(t.evs, event{name: name, ph: 'C', ts: int64(at), args: args})
	t.mu.Unlock()
}

// Len returns the number of buffered trace events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// jsonEvent is the trace-event wire format. Args uses an ordered map
// replacement (marshalled by hand below) to keep output deterministic.
type jsonEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int32           `json:"tid"`
	Ts   float64         `json:"ts"` // microseconds
	Args json.RawMessage `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteJSON exports the buffered events as a Chrome trace-event JSON object,
// sorted by timestamp (stable, so a nested span's E precedes its parent's E
// when they coincide).
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"))
		return err
	}
	t.mu.Lock()
	evs := make([]event, len(t.evs))
	copy(evs, t.evs)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	out := traceFile{TraceEvents: make([]jsonEvent, 0, len(evs)), DisplayTimeUnit: "ms"}
	for _, e := range evs {
		je := jsonEvent{
			Name: e.name,
			Ph:   string(rune(e.ph)),
			Pid:  1,
			Tid:  e.tid,
			Ts:   float64(e.ts) / 1e3,
		}
		if len(e.args) > 0 {
			var b []byte
			b = append(b, '{')
			for i, a := range e.args {
				if i > 0 {
					b = append(b, ',')
				}
				kb, err := json.Marshal(a.k)
				if err != nil {
					return err
				}
				vb, err := json.Marshal(a.v)
				if err != nil {
					return err
				}
				b = append(b, kb...)
				b = append(b, ':')
				b = append(b, vb...)
			}
			b = append(b, '}')
			je.Args = b
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile exports the trace to a file (the sptc-bench -trace flag).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
