package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the exposition mux: the registry in Prometheus text format
// at /metrics, the Go runtime's expvar JSON at /debug/vars, and the pprof
// profiling handlers under /debug/pprof/ — everything a long benchmark needs
// to be scraped and profiled live.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves the registry in the Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The connection is gone if this fails; nothing useful to do.
		_ = reg.WritePrometheus(w)
	})
}

// Server is a running exposition endpoint (sptc-bench -metrics-addr).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (":9090", "127.0.0.1:0", ...) and serves the
// exposition mux in the background until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	//lint:ignore chunkloop HTTP accept loop, not data-parallel work for parallel.For
	go func() {
		// ErrServerClosed after Close is the expected shutdown path; any
		// earlier error just ends the exposition endpoint, never the run.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0" listeners).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
