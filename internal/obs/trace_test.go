package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// decodedEvent mirrors the trace-event wire format for schema checking.
type decodedEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Pid  int                `json:"pid"`
	Tid  int32              `json:"tid"`
	Ts   float64            `json:"ts"`
	Args map[string]float64 `json:"args"`
}

type decodedTrace struct {
	TraceEvents     []decodedEvent `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
}

// TestTraceJSONSchema is the ISSUE's schema check: the export must be valid
// JSON, timestamps must be monotonically non-decreasing, and every B must
// have a matching E on the same track, properly nested.
func TestTraceJSONSchema(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("contract", 0)
	for w := 0; w < 3; w++ {
		sp := tr.Start("subtensor chunk", w+1)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	stage := tr.Start("accumulation", 0)
	stage.End()
	outer.End()
	tr.CounterAt("bandwidth", 2*time.Millisecond, map[string]float64{"dram_gbps": 12.5, "pmm_gbps": 3.25})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dec decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &dec); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if dec.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", dec.DisplayTimeUnit)
	}
	if len(dec.TraceEvents) != 11 { // 5 spans x (B+E) + 1 counter
		t.Fatalf("got %d events, want 11", len(dec.TraceEvents))
	}

	lastTs := -1.0
	open := map[int32][]string{} // per-track stack of open span names
	counters := 0
	for i, e := range dec.TraceEvents {
		if e.Ts < lastTs {
			t.Fatalf("event %d: ts %v < previous %v (not monotonic)", i, e.Ts, lastTs)
		}
		lastTs = e.Ts
		switch e.Ph {
		case "B":
			open[e.Tid] = append(open[e.Tid], e.Name)
		case "E":
			st := open[e.Tid]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on tid %d with no open span", i, e.Name, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				t.Fatalf("event %d: E %q does not match open span %q (bad nesting)", i, e.Name, top)
			}
			open[e.Tid] = st[:len(st)-1]
		case "C":
			counters++
			if e.Args["dram_gbps"] != 12.5 || e.Args["pmm_gbps"] != 3.25 {
				t.Errorf("counter args = %v", e.Args)
			}
		default:
			t.Fatalf("event %d: unknown ph %q", i, e.Ph)
		}
		if e.Pid != 1 {
			t.Errorf("event %d: pid = %d, want 1", i, e.Pid)
		}
	}
	for tid, st := range open {
		if len(st) != 0 {
			t.Errorf("tid %d: unmatched B events %v", tid, st)
		}
	}
	if counters != 1 {
		t.Errorf("got %d counter events, want 1", counters)
	}
}

// TestTraceNilExport: a nil tracer still writes a loadable (empty) trace.
func TestTraceNilExport(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dec decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &dec); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
	if len(dec.TraceEvents) != 0 {
		t.Errorf("nil tracer exported %d events", len(dec.TraceEvents))
	}
}

// TestTraceWriteFile round-trips through the -trace flag's file path.
func TestTraceWriteFile(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("x", 0)
	sp.End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dec decodedTrace
	if err := json.Unmarshal(b, &dec); err != nil {
		t.Fatal(err)
	}
	if len(dec.TraceEvents) != 2 {
		t.Errorf("got %d events, want 2", len(dec.TraceEvents))
	}
}
