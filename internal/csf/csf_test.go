package csf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparta/internal/coo"
)

func randomSorted(dims []uint64, nnz int, seed int64) *coo.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := coo.MustNew(dims, nnz)
	idx := make([]uint32, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			idx[m] = uint32(rng.Intn(int(d)))
		}
		t.Append(idx, rng.NormFloat64())
	}
	t.Sort(1)
	t.Dedup()
	return t
}

func TestFromCOORequiresSorted(t *testing.T) {
	u := coo.MustNew([]uint64{4, 4}, 0)
	u.Append([]uint32{2, 0}, 1)
	u.Append([]uint32{0, 0}, 1)
	if _, err := FromCOO(u); err == nil {
		t.Fatal("unsorted input accepted")
	}
}

func TestFromCOORejectsDuplicates(t *testing.T) {
	u := coo.MustNew([]uint64{4, 4}, 0)
	u.Append([]uint32{1, 1}, 1)
	u.Append([]uint32{1, 1}, 2)
	if _, err := FromCOO(u); err == nil {
		t.Fatal("duplicate coordinates accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, dims := range [][]uint64{{7}, {5, 6}, {4, 5, 6}, {3, 4, 3, 4}} {
		u := randomSorted(dims, 60, int64(len(dims)))
		c, err := FromCOO(u)
		if err != nil {
			t.Fatal(err)
		}
		back := c.ToCOO()
		if !u.Equal(back) {
			t.Fatalf("dims %v: round trip mismatch", dims)
		}
		if c.NNZ() != u.NNZ() {
			t.Fatalf("nnz %d != %d", c.NNZ(), u.NNZ())
		}
	}
}

func TestEmptyTensor(t *testing.T) {
	u := coo.MustNew([]uint64{3, 3, 3}, 0)
	c, err := FromCOO(u)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 || c.ToCOO().NNZ() != 0 {
		t.Fatal("empty tensor mishandled")
	}
	if _, _, _, ok := c.LookupPrefix([]uint32{0}); ok {
		t.Fatal("lookup in empty tensor succeeded")
	}
}

func TestKnownStructure(t *testing.T) {
	// Tensor from the SubPtr test: known fiber structure.
	u := coo.MustNew([]uint64{3, 3, 3}, 0)
	for _, r := range [][]uint32{
		{0, 0, 1}, {0, 0, 2}, {0, 1, 0}, {1, 2, 2}, {2, 0, 0}, {2, 0, 1}, {2, 2, 2},
	} {
		u.Append(r, 1)
	}
	c, err := FromCOO(u)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFibers(0) != 3 { // roots 0, 1, 2
		t.Fatalf("level-0 fibers = %d", c.NumFibers(0))
	}
	if c.NumFibers(1) != 5 { // (0,0) (0,1) (1,2) (2,0) (2,2)
		t.Fatalf("level-1 fibers = %d", c.NumFibers(1))
	}
	if c.NumFibers(2) != 7 {
		t.Fatalf("leaves = %d", c.NumFibers(2))
	}
	lo, hi, _, ok := c.LookupPrefix([]uint32{0, 0})
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("LookupPrefix(0,0) = [%d,%d) ok=%v", lo, hi, ok)
	}
	lo, hi, _, ok = c.LookupPrefix([]uint32{2})
	if !ok || lo != 4 || hi != 7 {
		t.Fatalf("LookupPrefix(2) = [%d,%d) ok=%v", lo, hi, ok)
	}
	if _, _, _, ok = c.LookupPrefix([]uint32{1, 0}); ok {
		t.Fatal("absent prefix found")
	}
	if _, _, _, ok = c.LookupPrefix(nil); ok {
		t.Fatal("empty prefix accepted")
	}
	if _, _, _, ok = c.LookupPrefix([]uint32{0, 0, 1, 0}); ok {
		t.Fatal("over-long prefix accepted")
	}
}

// TestLookupMatchesSubPtr cross-checks LookupPrefix against the COO
// sub-tensor pointers for every existing prefix.
func TestLookupMatchesSubPtr(t *testing.T) {
	u := randomSorted([]uint64{6, 5, 4, 3}, 200, 9)
	c, err := FromCOO(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, plen := range []int{1, 2, 3, 4} {
		ptr, err := u.SubPtr(plen)
		if err != nil {
			t.Fatal(err)
		}
		prefix := make([]uint32, plen)
		for f := 0; f+1 < len(ptr); f++ {
			at := ptr[f]
			for m := 0; m < plen; m++ {
				prefix[m] = u.Inds[m][at]
			}
			lo, hi, _, ok := c.LookupPrefix(prefix)
			if !ok {
				t.Fatalf("plen %d: prefix %v not found", plen, prefix)
			}
			if lo != ptr[f] || hi != ptr[f+1] {
				t.Fatalf("plen %d prefix %v: [%d,%d), want [%d,%d)",
					plen, prefix, lo, hi, ptr[f], ptr[f+1])
			}
		}
	}
}

// TestQuickRoundTrip fuzzes shapes through the COO→CSF→COO cycle.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		nnz := int(raw)%150 + 1
		u := randomSorted([]uint64{5, 4, 6}, nnz, seed)
		c, err := FromCOO(u)
		if err != nil {
			return false
		}
		return u.Equal(c.ToCOO())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCompression: CSF must not exceed COO's footprint on tensors with
// shared prefixes (its raison d'être).
func TestCompression(t *testing.T) {
	u := coo.MustNew([]uint64{4, 1000}, 0)
	for j := uint32(0); j < 1000; j++ {
		u.Append([]uint32{1, j}, 1) // single root fiber
	}
	c, err := FromCOO(u)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes() >= u.Bytes() {
		t.Fatalf("CSF %d bytes >= COO %d bytes on a compressible tensor", c.Bytes(), u.Bytes())
	}
}

// TestLeafValues checks leaf accessor alignment with LN ordering.
func TestLeafValues(t *testing.T) {
	u := randomSorted([]uint64{4, 4, 4}, 30, 3)
	c, err := FromCOO(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < u.NNZ(); i++ {
		id, v := c.Leaf(i)
		if id != u.Inds[2][i] || v != u.Vals[i] {
			t.Fatalf("leaf %d = (%d, %v), want (%d, %v)", i, id, v, u.Inds[2][i], u.Vals[i])
		}
	}
}
