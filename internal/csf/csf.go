// Package csf implements the compressed sparse fiber (CSF) format (Smith &
// Karypis, SPLATT) that §3.2 of the Sparta paper weighs against COO and the
// hash-table representation for the second input tensor. CSF stores a
// sorted sparse tensor as a tree of fibers: level m holds the distinct
// mode-m indices under each level-(m-1) fiber, with pointer arrays
// delimiting children.
//
// The paper's argument, which this package lets the evaluation demonstrate
// (sptc-bench -exp ablation, BenchmarkAblation_IndexSearch): locating the
// sub-tensor Y(c1, c2, :, :) in CSF takes one binary search per contract
// level — O(Σ log(fanout)) with pointer chasing between levels — whereas
// the LN-keyed hash table HtY answers the same query with one O(1) probe.
package csf

import (
	"errors"
	"fmt"
	"sort"

	"sparta/internal/coo"
)

// Tensor is a CSF tensor.
//
// Fids[m] lists the mode-m indices of the level-m fibers in tree order; the
// leaf level (m = order-1) has exactly one fiber per non-zero, aligned with
// Vals. For m < order-1, fiber k's children occupy positions
// Fptr[m][k] .. Fptr[m][k+1] of level m+1. Fptr[order-1] is unused (nil).
type Tensor struct {
	Dims []uint64
	Fids [][]uint32
	Fptr [][]int32
	Vals []float64
}

// FromCOO builds a CSF tensor from a *sorted*, duplicate-free COO tensor
// (lexicographic in its current mode order — resort/permute first to choose
// a different CSF mode order).
func FromCOO(t *coo.Tensor) (*Tensor, error) {
	if !t.IsSorted() {
		return nil, errors.New("csf: input must be sorted")
	}
	order := t.Order()
	n := t.NNZ()
	c := &Tensor{
		Dims: append([]uint64(nil), t.Dims...),
		Fids: make([][]uint32, order),
		Fptr: make([][]int32, order),
		Vals: append([]float64(nil), t.Vals...),
	}
	// newAt[i] is the shallowest level at which non-zero i differs from
	// its predecessor; i starts a fiber at every level >= newAt[i].
	newAt := make([]int, n)
	for i := 1; i < n; i++ {
		lvl := order
		for m := 0; m < order; m++ {
			if t.Inds[m][i] != t.Inds[m][i-1] {
				lvl = m
				break
			}
		}
		if lvl == order {
			return nil, fmt.Errorf("csf: duplicate coordinate at position %d", i)
		}
		newAt[i] = lvl
	}
	for m := 0; m < order; m++ {
		last := m == order-1
		var childCount int32
		for i := 0; i < n; i++ {
			if i == 0 || newAt[i] <= m {
				c.Fids[m] = append(c.Fids[m], t.Inds[m][i])
				if !last {
					// This fiber's children begin with the child fiber
					// that starts at this same non-zero.
					c.Fptr[m] = append(c.Fptr[m], childCount)
				}
			}
			if !last && (i == 0 || newAt[i] <= m+1) {
				childCount++
			}
		}
		if !last {
			c.Fptr[m] = append(c.Fptr[m], childCount)
		}
	}
	if n == 0 {
		for m := 0; m < order-1; m++ {
			c.Fptr[m] = []int32{0}
		}
	}
	return c, nil
}

// NNZ returns the number of stored non-zeros.
func (c *Tensor) NNZ() int { return len(c.Vals) }

// Order returns the number of modes.
func (c *Tensor) Order() int { return len(c.Dims) }

// NumFibers returns the fiber count at a level.
func (c *Tensor) NumFibers(level int) int { return len(c.Fids[level]) }

// ToCOO expands the fiber tree back into sorted COO form.
func (c *Tensor) ToCOO() *coo.Tensor {
	order := c.Order()
	t := coo.MustNew(c.Dims, c.NNZ())
	idx := make([]uint32, order)
	var walk func(level, fiber int)
	walk = func(level, fiber int) {
		idx[level] = c.Fids[level][fiber]
		if level == order-1 {
			t.Append(idx, c.Vals[fiber])
			return
		}
		for ch := c.Fptr[level][fiber]; ch < c.Fptr[level][fiber+1]; ch++ {
			walk(level+1, int(ch))
		}
	}
	for f := 0; f < c.NumFibers(0); f++ {
		walk(0, f)
	}
	return t
}

// LookupPrefix locates the sub-tensor whose first len(prefix) mode indices
// equal prefix, returning its leaf range [lo, hi) (positions into Vals and
// the leaf Fids) plus the number of index comparisons performed. This is
// the CSF index search of §3.2: one binary search per level, each over the
// children of the fiber found at the previous level.
func (c *Tensor) LookupPrefix(prefix []uint32) (lo, hi int, probes int, ok bool) {
	if len(prefix) == 0 || len(prefix) > c.Order() {
		return 0, 0, 0, false
	}
	flo, fhi := 0, c.NumFibers(0)
	for m, want := range prefix {
		ids := c.Fids[m][flo:fhi]
		k := sort.Search(len(ids), func(i int) bool { return ids[i] >= want })
		probes += log2i(len(ids)) + 1
		if k == len(ids) || ids[k] != want {
			return 0, 0, probes, false
		}
		f := flo + k
		if m == len(prefix)-1 {
			l, h := f, f+1
			for lvl := m; lvl < c.Order()-1; lvl++ {
				l, h = int(c.Fptr[lvl][l]), int(c.Fptr[lvl][h])
			}
			return l, h, probes, true
		}
		flo, fhi = int(c.Fptr[m][f]), int(c.Fptr[m][f+1])
	}
	return 0, 0, probes, false
}

// Leaf returns the last-mode index and value of leaf position i.
func (c *Tensor) Leaf(i int) (uint32, float64) {
	return c.Fids[c.Order()-1][i], c.Vals[i]
}

// Bytes estimates the memory footprint of the fiber arrays — CSF's
// compression advantage over COO that §3.2 concedes before rejecting it for
// the index-search cost.
func (c *Tensor) Bytes() uint64 {
	var b uint64
	for m := range c.Fids {
		b += uint64(len(c.Fids[m]))*4 + uint64(len(c.Fptr[m]))*4
	}
	return b + uint64(len(c.Vals))*8
}

func log2i(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
