// Package dist is the scatter/gather execution layer that takes one SpTC
// past a single process: a Coordinator partitions X into S shards by hashing
// each non-zero's free-mode index tuple on a consistent-hash ring, contracts
// every shard against a replicated prepared Y on an Executor (in-process
// engine or remote sptc-serve worker), and k-way merges the per-shard sorted
// Z runs with coo.MergeRuns — the sort-fused pipeline's stage ⑤ stays dead
// end-to-end.
//
// Partitioning by the *free*-mode tuple (not the contract key) is what keeps
// the distributed output bitwise identical to the one-shot contraction: a
// free-mode prefix names one output sub-tensor, so every non-zero that
// contributes to a given Z coordinate lands on the same shard, each shard
// runs the identical per-sub-tensor kernel in the identical order, and the
// merged runs are pairwise disjoint — no cross-shard floating-point
// summation ever happens. Hashing the contract key instead would split
// output coordinates across shards and force a value merge whose addition
// order differs from the one-shot run. See DESIGN.md §15.
package dist

import (
	"context"
	"fmt"

	"sparta/internal/coo"
	"sparta/internal/core"
)

// Job carries the per-request contraction parameters an Executor needs
// beyond the tensors themselves: the contract-mode pairing and the kernel /
// thread / tracing options. Executors treat the X they receive as private
// (the coordinator hands each shard a freshly scattered tensor), so
// Options.InPlace is safe and set by the coordinator.
type Job struct {
	CmodesX []int
	CmodesY []int
	Options core.Options
}

// Executor contracts one shard of X against a replicated Y. Implementations
// must be safe for concurrent Contract calls (the coordinator fans out one
// goroutine per non-empty shard) and must honor ctx cancellation. Local runs
// in-process through a private engine; HTTP dispatches to a remote
// sptc-serve worker's /shard/contract endpoint.
type Executor interface {
	// Name identifies the shard for routing, retry accounting, and traces.
	Name() string
	// Contract runs Z_s = X_s ×_{cmodesX}^{cmodesY} Y and returns the
	// shard's sorted run plus its stage report.
	Contract(ctx context.Context, x, y *coo.Tensor, job Job) (*coo.Tensor, *core.Report, error)
	// Close releases executor resources (idle connections, caches).
	Close() error
}

// ShardError is the coordinator's terminal failure for one shard: every
// allowed attempt (primary plus failovers) failed. sptc-serve maps it to a
// named shed reason (shed_shards) so clients and metrics can tell a
// distributed failure from a local one.
type ShardError struct {
	// Shard names the primary executor the partition hashed to.
	Shard string
	// Attempts is how many executors were tried before giving up.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %s failed after %d attempt(s): %v", e.Shard, e.Attempts, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }
