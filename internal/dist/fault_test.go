package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
)

// faulty wraps an Executor with injectable failure modes: fail the first N
// Contract calls, or hang until the call's context is canceled. It is the
// "worker killed / worker wedged mid-contract" stand-in for the in-process
// fleet.
type faulty struct {
	Executor
	failN int32 // fail this many calls before recovering
	hang  bool  // block until ctx is done, then return ctx.Err()
	calls int32
}

func (f *faulty) Contract(ctx context.Context, x, y *coo.Tensor, job Job) (*coo.Tensor, *core.Report, error) {
	atomic.AddInt32(&f.calls, 1)
	if f.hang {
		<-ctx.Done()
		return nil, nil, ctx.Err()
	}
	if atomic.AddInt32(&f.failN, -1) >= 0 {
		return nil, nil, errors.New("injected worker crash")
	}
	return f.Executor.Contract(ctx, x, y, job)
}

func faultFleet(t *testing.T, S int, wrap func(i int, ex Executor) Executor, cfg Config) *Coordinator {
	t.Helper()
	execs := make([]Executor, S)
	for i := range execs {
		var ex Executor = NewLocal(fmt.Sprintf("shard-%d", i), LocalConfig{})
		if wrap != nil {
			ex = wrap(i, ex)
		}
		execs[i] = ex
	}
	cfg.Executors = execs
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestShardRetryFailover kills one worker's first attempt; the coordinator
// must fail over to the next ring shard and still produce output bitwise
// identical to the healthy run.
func TestShardRetryFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tc := randomContractCase(rng, 3, 311)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	want := oneshot(t, tc, opt)

	var crashed *faulty
	c := faultFleet(t, 4, func(i int, ex Executor) Executor {
		if i == 1 {
			crashed = &faulty{Executor: ex, failN: 1}
			return crashed
		}
		return ex
	}, Config{})

	z, rep, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
	if err != nil {
		t.Fatalf("coordinator did not survive a single worker crash: %v", err)
	}
	requireIdentical(t, "failover", z, want)
	if atomic.LoadInt32(&crashed.calls) == 0 {
		t.Skip("no partition routed to the crashed shard for this case")
	}
	if rep.ShardRetries == 0 {
		t.Error("report shows zero retries despite an injected crash")
	}
}

// TestShardAllAttemptsFail wedges every worker; the coordinator must fail
// cleanly with a *ShardError naming the primary shard and the attempt count —
// the typed error sptc-serve maps to its named shed reason.
func TestShardAllAttemptsFail(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tc := randomContractCase(rng, 3, 331)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}

	c := faultFleet(t, 3, func(i int, ex Executor) Executor {
		return &faulty{Executor: ex, failN: 1 << 20}
	}, Config{MaxAttempts: 2})

	_, _, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
	if err == nil {
		t.Fatal("coordinator succeeded with every worker failing")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *ShardError", err, err)
	}
	if se.Attempts != 2 {
		t.Errorf("ShardError.Attempts = %d, want 2", se.Attempts)
	}
	if se.Shard == "" {
		t.Error("ShardError does not name the primary shard")
	}
	if !errors.Is(err, se.Err) && se.Err == nil {
		t.Error("ShardError does not wrap the underlying cause")
	}
}

// TestShardHangTimesOut wedges one worker forever; the per-attempt timeout
// must cut it loose and fail over to a healthy shard.
func TestShardHangTimesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tc := randomContractCase(rng, 3, 351)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	want := oneshot(t, tc, opt)

	var hung *faulty
	c := faultFleet(t, 4, func(i int, ex Executor) Executor {
		if i == 2 {
			hung = &faulty{Executor: ex, hang: true}
			return hung
		}
		return ex
	}, Config{ShardTimeout: 50 * time.Millisecond})

	start := time.Now()
	z, _, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
	if err != nil {
		t.Fatalf("coordinator did not survive a hung worker: %v", err)
	}
	requireIdentical(t, "hung worker failover", z, want)
	if atomic.LoadInt32(&hung.calls) > 0 && time.Since(start) > 5*time.Second {
		t.Errorf("request took %v; the hung attempt was not cut by the %v shard timeout",
			time.Since(start), 50*time.Millisecond)
	}
}

// TestShardParentCancellation cancels the request mid-flight: Contract must
// return promptly with the context error (not a shard casualty) and leave no
// goroutine behind.
func TestShardParentCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tc := randomContractCase(rng, 3, 371)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}

	c := faultFleet(t, 4, func(i int, ex Executor) Executor {
		return &faulty{Executor: ex, hang: true}
	}, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Contract(ctx, tc.x, tc.y, tc.cx, tc.cy, opt)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled request returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Contract did not return within 5s of request cancellation")
	}
}

// TestShardNoGoroutineLeak runs healthy, failing, and canceled requests and
// asserts the goroutine count settles back to the baseline — the buffered
// fan-out channel guarantees every leg can deliver and exit.
func TestShardNoGoroutineLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	tc := randomContractCase(rng, 3, 391)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}

	before := runtime.NumGoroutine()

	// Healthy requests.
	c := localFleet(t, 4, LocalConfig{})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt); err != nil {
			t.Fatal(err)
		}
	}
	// All-fail requests.
	cf := faultFleet(t, 4, func(i int, ex Executor) Executor {
		return &faulty{Executor: ex, failN: 1 << 20}
	}, Config{})
	for i := 0; i < 3; i++ {
		if _, _, err := cf.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt); err == nil {
			t.Fatal("expected failure")
		}
	}
	// Canceled-midway requests against hung workers.
	ch := faultFleet(t, 4, func(i int, ex Executor) Executor {
		return &faulty{Executor: ex, hang: true}
	}, Config{})
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, _, _ = ch.Contract(ctx, tc.x, tc.y, tc.cx, tc.cy, opt)
		cancel()
	}

	// Settle: give exiting goroutines a moment to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestShardBackpressure bounds per-shard concurrency: with MaxInflight=1 on
// every shard, concurrent requests still complete and stay identical.
func TestShardBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tc := randomContractCase(rng, 3, 411)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	want := oneshot(t, tc, opt)

	c := localFleet(t, 4, LocalConfig{MaxInflight: 1})
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func() {
			z, _, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
			if err == nil && !z.Equal(want) {
				err = errors.New("concurrent sharded output differs from oneshot")
			}
			errs <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
