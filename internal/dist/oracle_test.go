package dist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/engine"
	"sparta/internal/gen"
)

// The oracle suite: sharded scatter/gather must be bitwise identical to the
// single-process contraction — same kernel, same thread count, any shard
// count. Free-mode partitioning makes the per-shard output runs disjoint, so
// the merge never re-sums floats across shards and the equality is exact
// (tensor Equal + content fingerprint), not approximate.

// contractCase is one randomized contraction shape.
type contractCase struct {
	x, y   *coo.Tensor
	cx, cy []int
	label  string
}

// randomContractCase draws a contraction with X of the given order: 1..order-1
// contract modes at random positions, Y carrying the matched contract dims
// plus 0–2 free modes, dims 3–9, dense enough for accumulator collisions.
func randomContractCase(rng *rand.Rand, order int, seed int64) contractCase {
	k := 1 + rng.Intn(order-1)
	fy := rng.Intn(3)
	if k+fy > 5 {
		fy = 5 - k
	}
	oy := k + fy
	if oy < 1 {
		oy = 1
	}

	xdims := make([]uint64, order)
	for i := range xdims {
		xdims[i] = uint64(3 + rng.Intn(7))
	}
	cx := rng.Perm(order)[:k]
	cy := rng.Perm(oy)[:k]
	ydims := make([]uint64, oy)
	for i := range ydims {
		ydims[i] = uint64(3 + rng.Intn(7))
	}
	for j := range cx {
		ydims[cy[j]] = xdims[cx[j]]
	}

	x := gen.Random(xdims, 200+rng.Intn(600), seed)
	y := gen.Random(ydims, 100+rng.Intn(300), seed+1)
	return contractCase{
		x: x, y: y, cx: cx, cy: cy,
		label: fmt.Sprintf("x%v cx%v y%v cy%v", xdims, cx, ydims, cy),
	}
}

// localFleet builds a coordinator over S in-process shards.
func localFleet(t *testing.T, S int, cfg LocalConfig) *Coordinator {
	t.Helper()
	execs := make([]Executor, S)
	for i := range execs {
		execs[i] = NewLocal(fmt.Sprintf("shard-%d", i), cfg)
	}
	c, err := NewCoordinator(Config{Executors: execs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// oneshot is the oracle: single-process PrepareY + Contract with the exact
// same kernel and thread count as the sharded run under test.
func oneshot(t *testing.T, tc contractCase, opt core.Options) *coo.Tensor {
	t.Helper()
	pr, err := core.PrepareY(tc.y, tc.cy, opt)
	if err != nil {
		t.Fatalf("%s: oracle PrepareY: %v", tc.label, err)
	}
	z, _, err := pr.Contract(context.Background(), tc.x, tc.cx, opt)
	if err != nil {
		t.Fatalf("%s: oracle Contract: %v", tc.label, err)
	}
	return z
}

// requireIdentical asserts bitwise identity: structural Equal plus the
// engine's 128-bit content fingerprint (full coordinate + value coverage).
func requireIdentical(t *testing.T, label string, got, want *coo.Tensor) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: sharded output differs from oneshot (got nnz=%d, want nnz=%d)",
			label, got.NNZ(), want.NNZ())
	}
	gf, wf := engine.FingerprintTensor(got, 1), engine.FingerprintTensor(want, 1)
	if gf != wf {
		t.Fatalf("%s: fingerprint mismatch: got %s want %s", label, gf.String(), wf.String())
	}
}

// TestShardOracleSweep is the randomized property sweep from the issue:
// orders 2–5 × both kernels × S ∈ {1,2,4,8} × several thread counts, merged
// sharded Z bitwise identical to the single-process contraction.
func TestShardOracleSweep(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	kernels := []core.Kernel{core.KernelFlat, core.KernelChained}
	threadCounts := []int{1, 4, 8}
	casesPerOrder := 2
	if testing.Short() {
		threadCounts = []int{1, 4}
		casesPerOrder = 1
	}

	rng := rand.New(rand.NewSource(42))
	for order := 2; order <= 5; order++ {
		for cse := 0; cse < casesPerOrder; cse++ {
			tc := randomContractCase(rng, order, int64(1000*order+cse))
			for _, kernel := range kernels {
				for _, threads := range threadCounts {
					opt := core.Options{Algorithm: core.AlgSparta, Kernel: kernel, Threads: threads}
					want := oneshot(t, tc, opt)
					for _, S := range shardCounts {
						name := fmt.Sprintf("order=%d case=%d kernel=%v threads=%d S=%d", order, cse, kernel, threads, S)
						c := localFleet(t, S, LocalConfig{})
						z, rep, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
						if err != nil {
							t.Fatalf("%s (%s): %v", name, tc.label, err)
						}
						requireIdentical(t, name+" ("+tc.label+")", z, want)
						if rep.Shards < 1 || rep.Shards > S {
							t.Fatalf("%s: report claims %d shards dispatched", name, rep.Shards)
						}
						if rep.NNZZ != z.NNZ() {
							t.Fatalf("%s: report NNZZ=%d, tensor has %d", name, rep.NNZZ, z.NNZ())
						}
					}
				}
			}
		}
	}
}

// TestShardOraclePermutedOutput drives the spec path: Coordinator.Einsum must
// match engine.Einsum including the output permutation and re-sort.
func TestShardOraclePermutedOutput(t *testing.T) {
	specs := []struct {
		spec   string
		xd, yd []uint64
	}{
		{"ab,bc->ca", []uint64{40, 24}, []uint64{24, 32}},
		{"abc,cd->dba", []uint64{12, 10, 14}, []uint64{14, 9}},
		{"abcd,db->ca", []uint64{8, 7, 9, 6}, []uint64{6, 7}},
	}
	eng := engine.New(engine.Config{})
	for _, s := range specs {
		x := gen.Random(s.xd, 700, 11)
		y := gen.Random(s.yd, 350, 13)
		for _, S := range []int{1, 4} {
			for _, kernel := range []core.Kernel{core.KernelFlat, core.KernelChained} {
				opt := core.Options{Algorithm: core.AlgSparta, Kernel: kernel, Threads: 2}
				want, _, err := eng.Einsum(context.Background(), s.spec, x, y, opt)
				if err != nil {
					t.Fatalf("%s: oracle: %v", s.spec, err)
				}
				c := localFleet(t, S, LocalConfig{})
				got, _, err := c.Einsum(context.Background(), s.spec, x, y, opt)
				if err != nil {
					t.Fatalf("%s S=%d: %v", s.spec, S, err)
				}
				requireIdentical(t, fmt.Sprintf("%s S=%d kernel=%v", s.spec, S, kernel), got, want)
			}
		}
	}
}

// TestShardOracleStreamedTier runs every shard through the windowed streaming
// driver (the memory-pressure execution tier) and still demands bitwise
// identity with the in-memory oneshot.
func TestShardOracleStreamedTier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for order := 3; order <= 4; order++ {
		tc := randomContractCase(rng, order, int64(77*order))
		for _, kernel := range []core.Kernel{core.KernelFlat, core.KernelChained} {
			opt := core.Options{Algorithm: core.AlgSparta, Kernel: kernel, Threads: 2}
			want := oneshot(t, tc, opt)
			for _, S := range []int{2, 4} {
				c := localFleet(t, S, LocalConfig{WindowNNZ: 64})
				z, rep, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
				if err != nil {
					t.Fatalf("streamed S=%d kernel=%v (%s): %v", S, kernel, tc.label, err)
				}
				requireIdentical(t, fmt.Sprintf("streamed S=%d kernel=%v (%s)", S, kernel, tc.label), z, want)
				if !rep.Streamed {
					t.Errorf("streamed S=%d: report does not mark the streamed tier", S)
				}
			}
		}
	}
}

// TestShardOracleFullContraction pins the scalar edge: with every X mode
// contracted there is no free tuple to hash, so all of X lands on one shard
// and the result is the [1]-dim scalar tensor — still identical to oneshot.
func TestShardOracleFullContraction(t *testing.T) {
	x := gen.Random([]uint64{16, 12}, 150, 3)
	y := gen.Random([]uint64{16, 12}, 140, 4)
	tc := contractCase{x: x, y: y, cx: []int{0, 1}, cy: []int{0, 1}, label: "full contraction"}
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	want := oneshot(t, tc, opt)
	c := localFleet(t, 4, LocalConfig{})
	z, rep, err := c.Contract(context.Background(), x, y, tc.cx, tc.cy, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, tc.label, z, want)
	if rep.Shards != 1 {
		t.Errorf("full contraction dispatched %d shards, want 1 (empty free tuple has a single hash)", rep.Shards)
	}
}

// TestShardWarmPlanReuse: the second request through the same fleet must hit
// every shard's plan cache (HtYReused aggregates with AND across shards).
func TestShardWarmPlanReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tc := randomContractCase(rng, 3, 501)
	opt := core.Options{Algorithm: core.AlgSparta, Threads: 2}
	c := localFleet(t, 4, LocalConfig{})
	z1, rep1, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.HtYReused {
		t.Error("first request reports a warm HtY")
	}
	z2, rep2, err := c.Contract(context.Background(), tc.x, tc.y, tc.cx, tc.cy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.HtYReused {
		t.Error("second request through the same fleet did not reuse the shards' HtY plans")
	}
	requireIdentical(t, "warm vs cold", z2, z1)
}

// TestPartitionProperties checks the scatter pass directly: the partitions
// tile X (no loss, no duplication), rows keep their relative order within a
// shard (stable scatter), and every row sharing a free-mode tuple lands on
// the same shard — the invariant that makes the merged output exact.
func TestPartitionProperties(t *testing.T) {
	x := gen.Random([]uint64{24, 10, 18}, 3000, 21)
	cx := []int{1}
	free := []int{0, 2}
	for _, threads := range []int{1, 4} {
		ring, err := NewRing(ringNames(4), 0)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := Partition(x, cx, ring, threads)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, p := range parts {
			total += p.NNZ()
		}
		if total != x.NNZ() {
			t.Fatalf("threads=%d: partitions hold %d nnz, input has %d", threads, total, x.NNZ())
		}

		// Recompute each row's owner and replay the scatter sequentially; a
		// stable partition must reproduce each shard's rows in order.
		cursor := make([]int, len(parts))
		tupleShard := make(map[[2]uint32]int)
		for i := 0; i < x.NNZ(); i++ {
			h := uint64(partitionSeed)
			for _, m := range free {
				h = mix64(h ^ uint64(x.Inds[m][i]))
			}
			s := ring.Owner(h)
			key := [2]uint32{x.Inds[0][i], x.Inds[2][i]}
			if prev, ok := tupleShard[key]; ok && prev != s {
				t.Fatalf("free tuple %v routed to both shard %d and %d", key, prev, s)
			}
			tupleShard[key] = s
			p, j := parts[s], cursor[s]
			if j >= p.NNZ() {
				t.Fatalf("threads=%d: shard %d ran out of rows at input row %d", threads, s, i)
			}
			for m := 0; m < x.Order(); m++ {
				if p.Inds[m][j] != x.Inds[m][i] {
					t.Fatalf("threads=%d: shard %d row %d is not input row %d (scatter not stable)", threads, s, j, i)
				}
			}
			if p.Vals[j] != x.Vals[i] {
				t.Fatalf("threads=%d: shard %d row %d carries the wrong value", threads, s, j)
			}
			cursor[s]++
		}
	}
}

// TestPartitionValidation rejects malformed mode lists.
func TestPartitionValidation(t *testing.T) {
	x := gen.Random([]uint64{8, 8}, 50, 1)
	ring, _ := NewRing(ringNames(2), 0)
	if _, err := Partition(x, []int{2}, ring, 1); err == nil {
		t.Error("out-of-range contract mode accepted")
	}
	if _, err := Partition(x, []int{0, 0}, ring, 1); err == nil {
		t.Error("duplicate contract mode accepted")
	}
	if _, err := Partition(x, []int{-1}, ring, 1); err == nil {
		t.Error("negative contract mode accepted")
	}
}
