package dist

import (
	"context"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/engine"
	"sparta/internal/obs"
)

// LocalConfig sizes one in-process shard executor.
type LocalConfig struct {
	// CacheEntries / CacheBytes size the shard's private plan cache
	// (engine.Config semantics: 0 = default, negative entries = disabled).
	CacheEntries int
	CacheBytes   uint64
	// MaxInflight bounds concurrent contractions on this shard (per-shard
	// backpressure; 0 = unbounded). Blocked callers respect ctx.
	MaxInflight int
	// WindowNNZ, when >0, runs the shard through the windowed streaming
	// driver (core.ContractStream) with this window size — the oracle
	// suite's streamed-tier case. Shards whose X cannot be streamed (no
	// free mode) fall back to the in-memory driver; both produce bitwise
	// identical output.
	WindowNNZ int
	// Metrics, when non-nil, receives the shard engine's cache counters.
	Metrics *obs.Registry
}

// Local is an in-process shard: a private plan-cache engine plus a counting
// semaphore for backpressure. Safe for concurrent Contract calls.
type Local struct {
	name      string
	eng       *engine.Engine
	sem       chan struct{}
	windowNNZ int
}

// NewLocal builds an in-process shard executor.
func NewLocal(name string, cfg LocalConfig) *Local {
	l := &Local{
		name: name,
		eng: engine.New(engine.Config{
			CacheEntries: cfg.CacheEntries,
			CacheBytes:   cfg.CacheBytes,
			Metrics:      cfg.Metrics,
		}),
		windowNNZ: cfg.WindowNNZ,
	}
	if cfg.MaxInflight > 0 {
		l.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return l
}

// Name implements Executor.
func (l *Local) Name() string { return l.name }

// Engine exposes the shard's plan cache for stats scraping.
func (l *Local) Engine() *engine.Engine { return l.eng }

// Contract implements Executor: prepare (or reuse) the HtY through the
// shard's plan cache, then contract the shard's X against it.
func (l *Local) Contract(ctx context.Context, x, y *coo.Tensor, job Job) (*coo.Tensor, *core.Report, error) {
	if l.sem != nil {
		select {
		case l.sem <- struct{}{}:
			defer func() { <-l.sem }()
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	opt := job.Options
	pr, hit, err := l.eng.PrepareCtx(ctx, y, job.CmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	if l.windowNNZ > 0 {
		if xs, serr := core.NewTensorStream(x, job.CmodesX, l.windowNNZ, opt.Threads, opt.InPlace); serr == nil {
			return core.ContractStream(ctx, xs, pr, core.StreamOptions{Options: opt})
		}
		// Unstreamable shard (e.g. fully contracted X): in-memory fallback,
		// bitwise identical by the stream driver's own invariant.
	}
	z, rep, err := pr.Contract(ctx, x, job.CmodesX, opt)
	if err != nil {
		return nil, nil, err
	}
	if hit {
		rep.HtYReused = true
		rep.HtYBuild = 0
	}
	return z, rep, nil
}

// Close implements Executor (nothing to release in-process).
func (l *Local) Close() error { return nil }
